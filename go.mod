module boltondp

go 1.22
