// Fraud scoring: a KDDCup-99-style intrusion/fraud detection workload
// (large, nearly separable, binary) demonstrating two things the paper
// emphasizes:
//
//  1. At large m, differential privacy is nearly free for the bolt-on
//     algorithm (Figure 8): the strongly convex sensitivity 2L/(γm)
//     vanishes with m.
//  2. Private hyperparameter tuning (Algorithm 3) picks (k, λ) without
//     leaking the validation data.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"boltondp"
)

func main() {
	r := rand.New(rand.NewSource(7))
	train, test := boltondp.KDDSim(r, 0.2) // ~99k training rows
	fmt.Printf("fraud dataset: m=%d, d=%d\n", train.Len(), train.Dim())

	budget := boltondp.Budget{Epsilon: 0.2} // a tight budget
	fmt.Printf("budget: %v\n", budget)

	// Show the m-dependence first: the same ε on increasing slices.
	for _, frac := range []float64{0.05, 0.25, 1.0} {
		sub := train
		if frac < 1 {
			sub, _ = train.Split(r, frac)
		}
		lambda := 0.1
		res, err := boltondp.Train(sub, boltondp.NewLogisticLoss(lambda), boltondp.TrainOptions{
			Budget: budget, Passes: 5, Batch: 50, Radius: 1 / lambda, Rand: r,
		})
		if err != nil {
			log.Fatal(err)
		}
		acc := boltondp.Accuracy(test, &boltondp.LinearClassifier{W: res.W})
		fmt.Printf("m=%6d  Δ₂=%.3g  ‖κ‖=%.4f  test accuracy=%.4f\n",
			sub.Len(), res.Sensitivity, res.NoiseNorm, acc)
	}

	// Now tune (k, λ) privately with Algorithm 3 over the paper's grid.
	tuned, err := boltondp.PrivateTune(train, boltondp.PaperTuningGrid(), budget,
		func(part *boltondp.Dataset, p boltondp.TuningParams) (boltondp.Classifier, error) {
			res, err := boltondp.Train(part, boltondp.NewLogisticLoss(p.Lambda), boltondp.TrainOptions{
				Budget: budget, Passes: p.K, Batch: p.B, Radius: 1 / p.Lambda, Rand: r,
			})
			if err != nil {
				return nil, err
			}
			return &boltondp.LinearClassifier{W: res.W}, nil
		}, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privately tuned params: %v (validation errors: %d)\n", tuned.Params, tuned.Errors)
	fmt.Printf("tuned model test accuracy: %.4f\n", boltondp.Accuracy(test, tuned.Model))
}
