// In-database: the Figure 1 story in code. Load a table into the
// Bismarck-style page store, shuffle it ("ORDER BY RANDOM()"), run SGD
// as a user-defined aggregate — and contrast the two privacy
// integration points: the bolt-on algorithm perturbs the final model in
// the driver (no UDA changes, no per-batch cost), while SCS13/BST14
// must sample noise inside the transition function on every mini-batch.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"boltondp"
	"boltondp/internal/bismarck"
)

func main() {
	r := rand.New(rand.NewSource(11))
	train, test := boltondp.CovtypeSim(r, 0.05) // ~25k rows, d=54
	lambda := 0.01
	f := boltondp.NewLogisticLoss(lambda)
	budget := boltondp.Budget{Epsilon: 0.1, Delta: 1e-9}

	// A disk-backed table with a buffer pool of 64 pages (~0.5 MB):
	// larger-than-memory operation, like Figure 2(b).
	dir, err := os.MkdirTemp("", "boltondp-indb-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("loading %d rows into a paged table (page size %d B)\n", train.Len(), bismarck.PageSize)

	for _, alg := range []bismarck.Algorithm{
		boltondp.UDANoiseless, boltondp.UDAOutputPerturb, boltondp.UDASCS13, boltondp.UDABST14,
	} {
		tab, err := boltondp.CreateDiskTable(filepath.Join(dir, alg.String()+".tbl"), train.Dim(), 64)
		if err != nil {
			log.Fatal(err)
		}
		if err := tab.InsertAll(train); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := boltondp.TrainInRDBMS(tab, f, boltondp.UDATrainConfig{
			Algorithm: alg,
			Budget:    budget,
			Passes:    5, Batch: 10,
			Radius: 1 / lambda,
			Rand:   r,
			// This example reproduces the paper's Figure 1 comparison,
			// so it uses the paper's noise calibration (see the finding
			// on dp.SensitivityStronglyConvex).
			PaperBatchSensitivity: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		dur := time.Since(start)
		acc := boltondp.Accuracy(test, &boltondp.LinearClassifier{W: res.W})
		fmt.Printf("%-10s  runtime=%-10v  noise draws=%-5d  page reads=%-6d  test acc=%.4f\n",
			alg, dur.Round(time.Millisecond), res.NoiseDraws, res.Stats.Reads, acc)
		tab.Remove()
	}
	fmt.Println("\nours == noiseless runtime (1 noise draw total); scs13/bst14 pay one draw per mini-batch.")
}
