// Multiclass: the paper's MNIST recipe end-to-end (§4.3) — random-
// project 784 dimensions down to 50 to keep the privacy noise small,
// train ten one-vs-all binary models with the privacy budget split
// evenly across them (simple composition), and compare against the
// noiseless baseline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"boltondp"
)

func main() {
	r := rand.New(rand.NewSource(3))

	// MNIST-sized task: 10 classes, 784 raw dimensions. Scale 0.1 ⇒
	// 6k train / 1k test rows for a fast demo.
	rawTrain, rawTest := boltondp.MNISTSim(r, 0.1)
	fmt.Printf("raw: m=%d, d=%d, classes=%d\n", rawTrain.Len(), rawTrain.Dim(), rawTrain.Classes)

	// Random projection 784 → 50 (privacy-free preprocessing: the map
	// is data-independent, and neighboring datasets stay neighboring).
	proj := boltondp.NewProjection(r, 784, 50)
	train := &boltondp.Dataset{Name: "mnist-p50", Classes: 10, Y: rawTrain.Y}
	test := &boltondp.Dataset{Name: "mnist-p50-test", Classes: 10, Y: rawTest.Y}
	for _, x := range rawTrain.X {
		train.X = append(train.X, proj.Apply(x))
	}
	for _, x := range rawTest.X {
		test.X = append(test.X, proj.Apply(x))
	}

	lambda := 0.05
	f := boltondp.NewLogisticLoss(lambda)
	total := boltondp.Budget{Epsilon: 10} // split ten ways below
	perClass := total.Split(10)
	fmt.Printf("total budget %v → per-class budget %v\n", total, perClass)

	private, err := boltondp.TrainOneVsAll(train, 10, func(view boltondp.Samples, class int) ([]float64, error) {
		res, err := boltondp.Train(view, f, boltondp.TrainOptions{
			Budget: perClass, Passes: 10, Batch: 50, Radius: 1 / lambda, Rand: r,
		})
		if err != nil {
			return nil, err
		}
		return res.W, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	noiseless, err := boltondp.TrainOneVsAll(train, 10, func(view boltondp.Samples, class int) ([]float64, error) {
		res, err := boltondp.NoiselessSGD(view, f, boltondp.BaselineOptions{
			Passes: 10, Batch: 50, Radius: 1 / lambda, Rand: r,
		})
		if err != nil {
			return nil, err
		}
		return res.W, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("noiseless test accuracy: %.4f\n", boltondp.Accuracy(test, noiseless))
	fmt.Printf("ε=10 private accuracy:   %.4f\n", boltondp.Accuracy(test, private))
}
