// Multiclass: the paper's MNIST recipe end-to-end (§4.3) — random-
// project 784 dimensions down to 50 to keep the privacy noise small,
// train ten one-vs-all binary models with the privacy budget split
// evenly across them (simple composition), and compare against the
// noiseless baseline.
//
// The split is drawn from a privacy-budget accountant: Split hands out
// the ten per-class shares AND debits them, so the ten sub-models
// provably sum to the stated ε = 10 guarantee — a stray eleventh draw
// from the same accountant fails closed. The whole build is
// cancellable through the context passed to TrainOneVsAllCtx/TrainCtx.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"

	"boltondp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r := rand.New(rand.NewSource(3))

	// MNIST-sized task: 10 classes, 784 raw dimensions. Scale 0.1 ⇒
	// 6k train / 1k test rows for a fast demo.
	rawTrain, rawTest := boltondp.MNISTSim(r, 0.1)
	fmt.Printf("raw: m=%d, d=%d, classes=%d\n", rawTrain.Len(), rawTrain.Dim(), rawTrain.Classes)

	// Random projection 784 → 50 (privacy-free preprocessing: the map
	// is data-independent, and neighboring datasets stay neighboring).
	proj := boltondp.NewProjection(r, 784, 50)
	train := &boltondp.Dataset{Name: "mnist-p50", Classes: 10, Y: rawTrain.Y}
	test := &boltondp.Dataset{Name: "mnist-p50-test", Classes: 10, Y: rawTest.Y}
	for _, x := range rawTrain.X {
		train.X = append(train.X, proj.Apply(x))
	}
	for _, x := range rawTest.X {
		test.X = append(test.X, proj.Apply(x))
	}

	lambda := 0.05
	f := boltondp.NewLogisticLoss(lambda)

	// The accountant owns the total ε = 10; Split debits ten equal
	// per-class shares in one auditable ledger (simple composition).
	acct, err := boltondp.NewAccountant(boltondp.Budget{Epsilon: 10})
	if err != nil {
		log.Fatal(err)
	}
	perClass, err := acct.Split("onevsall", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total budget %v → per-class budget %v (ledger: %d entries)\n",
		acct.Total(), perClass[0], len(acct.Ledger().Entries))

	private, err := boltondp.TrainOneVsAllCtx(ctx, train, 10, func(view boltondp.Samples, class int) ([]float64, error) {
		res, err := boltondp.TrainCtx(ctx, view, f,
			boltondp.WithBudget(perClass[class]),
			boltondp.WithSpendLabel(fmt.Sprintf("class %d", class)),
			boltondp.WithPasses(10), boltondp.WithBatch(50),
			boltondp.WithRadius(1/lambda), boltondp.WithRand(r))
		if err != nil {
			return nil, err
		}
		return res.W, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	noiseless, err := boltondp.TrainOneVsAllCtx(ctx, train, 10, func(view boltondp.Samples, class int) ([]float64, error) {
		res, err := boltondp.NoiselessSGD(view, f, boltondp.BaselineOptions{
			Passes: 10, Batch: 50, Radius: 1 / lambda, Rand: r, Ctx: ctx,
		})
		if err != nil {
			return nil, err
		}
		return res.W, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("noiseless test accuracy: %.4f\n", boltondp.Accuracy(test, noiseless))
	fmt.Printf("ε=10 private accuracy:   %.4f\n", boltondp.Accuracy(test, private))

	// Back-compat note: budget shares can still be cut by hand with
	// total.Split(10) (dp.Budget.Split) — the accountant form above is
	// the same arithmetic with the summing enforced and audited.
}
