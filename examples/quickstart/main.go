// Quickstart: train an (ε = 0.1)-differentially private logistic
// regression model in a dozen lines, the bolt-on way — run ordinary
// SGD, add calibrated noise to the final model, release it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"boltondp"
)

func main() {
	r := rand.New(rand.NewSource(42))

	// A Protein-sized binary classification task (72k training rows at
	// scale 1; 0.2 keeps the demo fast).
	train, test := boltondp.ProteinSim(r, 0.2)
	fmt.Printf("training on %s: m=%d, d=%d\n", train.Name, train.Len(), train.Dim())

	// L2-regularized logistic regression: strongly convex, so the
	// sensitivity is 2L/(γm) — independent of the number of passes
	// (and of the batch size; see dp.SensitivityStronglyConvex).
	lambda := 0.05
	f := boltondp.NewLogisticLoss(lambda)

	res, err := boltondp.Train(train, f, boltondp.TrainOptions{
		Budget: boltondp.Budget{Epsilon: 0.5}, // pure ε-DP
		Passes: 10,
		Batch:  50,
		Radius: 1 / lambda, // the paper's R = 1/λ convention
		Rand:   r,
	})
	if err != nil {
		log.Fatal(err)
	}

	private := &boltondp.LinearClassifier{W: res.W}
	baseline := &boltondp.LinearClassifier{W: res.NonPrivate}
	fmt.Printf("sensitivity Δ₂ = %.2g, realized noise ‖κ‖ = %.3f\n", res.Sensitivity, res.NoiseNorm)
	fmt.Printf("non-private test accuracy: %.4f\n", boltondp.Accuracy(test, baseline))
	fmt.Printf("ε=0.5 private accuracy:    %.4f\n", boltondp.Accuracy(test, private))
	fmt.Println("res.W is safe to publish; res.NonPrivate is not.")
}
