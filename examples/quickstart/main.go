// Quickstart: train an (ε = 0.5)-differentially private logistic
// regression model in a dozen lines, the bolt-on way — run ordinary
// SGD, add calibrated noise to the final model, release it.
//
// The run draws its budget from a privacy-budget accountant (the
// audited owner of the total (ε, δ) guarantee) and is cancellable
// through a context: Ctrl-C, a deadline, or an HTTP request context
// all stop training within one epoch slice.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"

	"boltondp"
)

func main() {
	// Ctrl-C cancels the run mid-epoch instead of finishing all passes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r := rand.New(rand.NewSource(42))

	// A Protein-sized binary classification task (72k training rows at
	// scale 1; 0.2 keeps the demo fast).
	train, test := boltondp.ProteinSim(r, 0.2)
	fmt.Printf("training on %s: m=%d, d=%d\n", train.Name, train.Len(), train.Dim())

	// The accountant owns the total budget: this run draws all of it,
	// the spend lands in an auditable ledger, and a second draw from
	// the same accountant would fail closed with ErrBudgetOverdraw.
	acct, err := boltondp.NewAccountant(boltondp.Budget{Epsilon: 0.5}) // pure ε-DP
	if err != nil {
		log.Fatal(err)
	}

	// L2-regularized logistic regression: strongly convex, so the
	// sensitivity is 2L/(γm) — independent of the number of passes
	// (and of the batch size; see dp.SensitivityStronglyConvex).
	lambda := 0.05
	f := boltondp.NewLogisticLoss(lambda)

	res, err := boltondp.TrainCtx(ctx, train, f,
		boltondp.WithAccountant(acct),
		boltondp.WithPasses(10),
		boltondp.WithBatch(50),
		boltondp.WithRadius(1/lambda), // the paper's R = 1/λ convention
		boltondp.WithProgress(func(epoch int, risk float64) {
			fmt.Printf("  epoch %2d: empirical risk %.5f (pre-noise — do not publish)\n", epoch, risk)
		}),
		boltondp.WithRand(r))
	if err != nil {
		log.Fatal(err) // ctx.Err() if interrupted, ErrBudgetOverdraw if overdrawn
	}

	private := &boltondp.LinearClassifier{W: res.W}
	baseline := &boltondp.LinearClassifier{W: res.NonPrivate}
	fmt.Printf("sensitivity Δ₂ = %.2g, realized noise ‖κ‖ = %.3f\n", res.Sensitivity, res.NoiseNorm)
	fmt.Printf("non-private test accuracy: %.4f\n", boltondp.Accuracy(test, baseline))
	fmt.Printf("ε=0.5 private accuracy:    %.4f\n", boltondp.Accuracy(test, private))
	fmt.Printf("accountant: spent %v of %v across %d spend(s)\n",
		acct.Spent(), acct.Total(), len(acct.Ledger().Entries))
	fmt.Println("res.W is safe to publish; res.NonPrivate is not.")

	// Back-compat note: the pre-accountant form is still supported —
	//
	//	boltondp.Train(train, f, boltondp.TrainOptions{
	//		Budget: boltondp.Budget{Epsilon: 0.5},
	//		Passes: 10, Batch: 50, Radius: 1 / lambda, Rand: r,
	//	})
	//
	// but it records no ledger and cannot be cancelled.
}
