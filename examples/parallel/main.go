// Parallel: shared-nothing private training through the execution
// engine's sharded strategy — the paper's multicore deployment (and,
// via footnote 2, its MapReduce extension). The dataset is cut into P
// disjoint shards; every epoch each worker advances permutation SGD one
// pass over its shard and the models are merged by averaging. The
// punchline: the merged model is perturbed with the *same* sensitivity
// as the sequential strongly convex algorithm, Δ = 2L/(γ(m/P))/P =
// 2L/(γm). Parallelism costs nothing in privacy.
//
// (The older in-RDBMS entry point boltondp.ParallelTrainInRDBMS still
// works but is deprecated — it is now a thin wrapper over the same
// engine.)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"boltondp"
)

func main() {
	r := rand.New(rand.NewSource(9))
	train, test := boltondp.CovtypeSim(r, 0.2) // ~100k rows
	lambda := 0.05
	f := boltondp.NewLogisticLoss(lambda)
	budget := boltondp.Budget{Epsilon: 0.1}

	fmt.Printf("dataset: m=%d d=%d, %d CPUs\n", train.Len(), train.Dim(), runtime.NumCPU())

	// Sharded with one worker is bit-for-bit the sequential engine, so
	// the P=1 row doubles as the sequential baseline.
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := boltondp.Train(train, f, boltondp.TrainOptions{
			Budget:   budget,
			Passes:   5,
			Batch:    10,
			Radius:   1 / lambda,
			Strategy: boltondp.StrategySharded,
			Workers:  workers,
			Rand:     rand.New(rand.NewSource(int64(100 + workers))),
		})
		if err != nil {
			log.Fatal(err)
		}
		dur := time.Since(start)
		acc := boltondp.Accuracy(test, &boltondp.LinearClassifier{W: res.W})
		fmt.Printf("P=%d  wall=%-8v  Δ₂=%.3g  test accuracy=%.4f\n",
			workers, dur.Round(time.Millisecond), res.Sensitivity, acc)
	}
	fmt.Println("\nsame ε, same Δ₂, near-linear speedup: privacy-free parallelism.")
}
