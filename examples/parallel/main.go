// Parallel: shared-nothing private training, the way Bismarck
// parallelizes UDAs across segments (and the paper's footnote 2 maps
// onto MapReduce). The table is partitioned, each worker trains an
// independent PSGD model on its segment, the models are merged by
// averaging, and — the punchline — the merged model is perturbed with
// the *same* sensitivity as the sequential strongly convex algorithm:
// Δ = 2L/(γ(m/P))/P = 2L/(γm). Parallelism costs nothing in privacy.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"boltondp"
)

func main() {
	r := rand.New(rand.NewSource(9))
	train, test := boltondp.CovtypeSim(r, 0.2) // ~100k rows
	lambda := 0.05
	f := boltondp.NewLogisticLoss(lambda)
	budget := boltondp.Budget{Epsilon: 0.1}

	fmt.Printf("dataset: m=%d d=%d, %d CPUs\n", train.Len(), train.Dim(), runtime.NumCPU())

	for _, workers := range []int{1, 2, 4, 8} {
		tab := boltondp.NewMemTable("covtype", train.Dim())
		if err := tab.InsertAll(train); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := boltondp.ParallelTrainInRDBMS(tab, f, boltondp.ParallelTrainConfig{
			Workers:   workers,
			Algorithm: boltondp.UDAOutputPerturb,
			Budget:    budget,
			Passes:    5, Batch: 10,
			Radius: 1 / lambda,
			Rand:   r,
		})
		if err != nil {
			log.Fatal(err)
		}
		dur := time.Since(start)
		acc := boltondp.Accuracy(test, &boltondp.LinearClassifier{W: res.W})
		fmt.Printf("P=%d  wall=%-8v  Δ₂=%.3g  test accuracy=%.4f\n",
			workers, dur.Round(time.Millisecond), res.Sensitivity, acc)
	}
	fmt.Println("\nsame ε, same Δ₂ order, near-linear speedup: privacy-free parallelism.")
}
