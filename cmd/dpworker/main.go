// Command dpworker runs one training worker of the distributed
// sharded trainer: it serves shard-install and epoch requests from a
// dpcoord coordinator over HTTP and keeps no authoritative state — a
// restarted worker re-derives everything from the next request.
//
// Usage:
//
//	dpworker -addr :8090
//
// Endpoints: POST /dist/shard (install a shard: an inline CSR payload
// or a chunk range of an on-disk columnar store the worker opens
// itself), POST /dist/epoch (run one epoch slice over the installed
// shard and return the O(d) model), GET /dist/healthz. All training on
// the worker is noiseless — privacy noise is added exactly once, by
// the coordinator's caller, above this process. SIGINT/SIGTERM shuts
// the worker down gracefully and closes any open store readers. See
// internal/dist and DESIGN.md §8.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"boltondp/internal/cli"
)

func main() {
	cfg, err := cli.ParseDPWorker(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpworker: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.RunDPWorkerCtx(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dpworker: %v\n", err)
		os.Exit(1)
	}
}
