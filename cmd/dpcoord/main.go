// Command dpcoord coordinates a distributed private training run over
// a pool of dpworker processes: it partitions the dataset into shard
// manifests, drives the per-epoch train/average/redistribute loop, and
// releases one noised model under the requested (ε, δ) budget. The
// result is pinned bit-identical to the single-process
// `dpsgd -strategy sharded -workers P` run under the same seed.
//
// Usage:
//
//	dpcoord -workers http://a:8090,http://b:8090 -sim protein -eps 0.1
//	dpcoord -workers http://a:8090 -store train.bolt -shards 4 -save model.json
//	dpcoord -workers http://a:8090 -publish ./registry   # then: dpserve -models ./registry
//
// With -store, workers open the same store file themselves and the
// wire carries only chunk ranges and CRCs; otherwise the simulator
// dataset ships inline in the shard-install requests. Worker failures
// are retried, then the shard is reassigned to a live worker whose
// deterministic rewind preserves bit-parity; with no live worker left
// the run aborts fail-closed — no model, single budget reservation.
// See internal/dist and DESIGN.md §8.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"boltondp/internal/cli"
)

func main() {
	cfg, err := cli.ParseDPCoord(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpcoord: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.RunDPCoordCtx(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dpcoord: %v\n", err)
		os.Exit(1)
	}
}
