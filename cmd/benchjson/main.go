// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document — the format CI publishes as the
// BENCH_<n>.json workflow artifact, so the repository's performance
// trajectory can be tracked across commits instead of evaporating with
// each job's logs.
//
// Usage:
//
//	go test -bench X ./... | tee bench-x.txt
//	benchjson -o BENCH.json bench-engine.txt bench-sparse.txt ...
//
// Each input file becomes a suite named after the file's stem (a
// "bench-" prefix and the extension are stripped). Every benchmark
// result line contributes one entry with its iteration count and all
// reported metrics (ns/op, B/op, allocs/op and any custom
// testing.B.ReportMetric units such as rows/s). Non-benchmark lines
// (goos/pkg/PASS/ok) are skipped, except cpu lines, which are captured
// for context. Gate-test failures do not reach this tool: CI fails the
// bench step itself before conversion.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	Suite      string             `json:"suite"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// document is the emitted artifact.
type document struct {
	Schema  string   `json:"schema"`
	Go      string   `json:"go"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no input files")
		os.Exit(2)
	}

	doc := document{Schema: "boltondp-bench/v1", Go: runtime.Version(), Results: []result{}}
	for _, path := range flag.Args() {
		if err := parseFile(path, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// suiteName maps bench-engine.txt → engine.
func suiteName(path string) string {
	s := filepath.Base(path)
	s = strings.TrimSuffix(s, filepath.Ext(s))
	s = strings.TrimPrefix(s, "bench-")
	return strings.TrimPrefix(s, "bench_")
}

func parseFile(path string, doc *document) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	suite := suiteName(path)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.CPU = cpu
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseBenchLine(suite, line)
		if !ok {
			continue
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// parseBenchLine parses "BenchmarkName-P  iters  v1 unit1  v2 unit2 ...".
func parseBenchLine(suite, line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	name := fields[0]
	procs := 0
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return result{}, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		metrics[fields[i+1]] = v
	}
	return result{Suite: suite, Name: name, Procs: procs, Iterations: iters, Metrics: metrics}, true
}
