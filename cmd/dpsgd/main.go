// Command dpsgd trains one differentially private linear model and
// reports its test accuracy, the calibrated sensitivity and the
// realized noise. It accepts a LIBSVM file or one of the built-in
// dataset simulators.
//
// Usage:
//
//	dpsgd -sim protein -eps 0.1 -lambda 0.001 -passes 10 -batch 50
//	dpsgd -data train.libsvm -eps 1 -delta 1e-6 -algo bst14
//	dpsgd -sim kdd -algo noiseless -save model.json
//	dpsgd -sim kdd -eps 1 -publish ./registry   # then: dpserve -models ./registry
//	dpsgd -sim higgs -scale 1 -timeout 2m       # deadline the run
//	dpsgd -data big.libsvm -cache big.bolt      # convert once, train out-of-core
//
// Algorithms: ours (bolt-on output perturbation, the default),
// noiseless, scs13, bst14. A SIGINT/SIGTERM (or -timeout expiry)
// cancels training through the engine's context plumbing: the process
// exits within one epoch slice instead of finishing the remaining
// passes. Private runs draw their budget from a privacy-budget
// accountant, so -save/-publish model files carry an audited spend
// ledger in their metadata.
//
// -cache FILE converts the -data LIBSVM file into the on-disk columnar
// store (internal/store, DESIGN.md §7) in one streaming parse pass and
// trains from the store, holding one chunk — not the dataset — in
// memory, so files 10–100× larger than RAM train under any -strategy.
// Re-running with the same -cache skips the conversion entirely. See
// internal/cli for the implementation.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"boltondp/internal/cli"
)

func main() {
	cfg, err := cli.ParseDPSGD(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.RunDPSGDCtx(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dpsgd: %v\n", err)
		os.Exit(1)
	}
}
