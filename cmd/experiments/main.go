// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig3 [-scale 0.05] [-seed 1] [-quick]
//	experiments -run all
//
// Each experiment prints a text table whose rows/series correspond to
// the paper's artifact; see DESIGN.md §3 for the index and
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"boltondp/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id to run, or \"all\"")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", 0.05, "dataset scale factor (1.0 = paper-sized)")
		seed    = flag.Int64("seed", 1, "random seed")
		quick   = flag.Bool("quick", false, "trim grids for a fast smoke run")
		repeats = flag.Int("repeats", 1, "average accuracy cells over this many runs")
		workers = flag.Int("workers", 1, "run ours/noiseless training sharded across this many engine workers")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Out: os.Stdout, Quick: *quick, Repeats: *repeats, Workers: *workers}
	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		if err := experiments.Run(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v --\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
