// Command dpserve serves trained models over HTTP: single-row and
// batch prediction against a hot-swappable model registry, with the
// production plumbing a replica fleet needs — metrics, admission
// control, registry watching, and canary rollouts.
//
// Usage:
//
//	dpserve -models ./registry                 # serve a dpsgd -publish registry
//	dpserve -models ./registry -live protein   # pick among several versions
//	dpserve -model model.json -addr :9090      # serve one dpsgd -save file
//	dpserve -models ./registry -watch          # follow publishes/swaps from other processes
//	dpserve -models ./registry -live v1 -canary v2 -canary-pct 10
//	dpserve -models ./registry -max-inflight 32 -max-queue 64 -queue-timeout 500ms
//
// Endpoints: POST /predict (one row, dense "x" or sparse "idx"/"val"),
// POST /predict/batch (amortized scoring; sparse rows go through the
// O(rows·classes·nnz) sparse tier), GET /healthz (reports shed-state),
// GET /modelz (which includes each model's privacy-budget ledger when
// it was published through an accountant, and the active canary), and
// GET /metrics (Prometheus text exposition).
//
// With -max-inflight set, scoring requests beyond the slot and queue
// limits are shed fast with 429 + Retry-After. With -watch, N dpserve
// replicas over one shared -models directory converge on publishes and
// live-swaps without restart. With -canary, the named version takes
// -canary-pct percent of live batch rows (deterministic row hash) and
// is rolled back automatically if its error rate regresses.
//
// SIGINT/SIGTERM shuts the server down gracefully: the listener
// closes, in-flight requests drain, and running batch scorings are
// cancelled through their request contexts. See internal/serve for the
// subsystem and DESIGN.md §5–6 and §10 for its invariants.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"boltondp/internal/cli"
)

func main() {
	cfg, err := cli.ParseDPServe(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpserve: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.RunDPServeCtx(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dpserve: %v\n", err)
		os.Exit(1)
	}
}
