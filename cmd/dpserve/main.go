// Command dpserve serves trained models over HTTP: single-row and
// batch prediction against a hot-swappable model registry.
//
// Usage:
//
//	dpserve -models ./registry                 # serve a dpsgd -publish registry
//	dpserve -models ./registry -live protein   # pick among several versions
//	dpserve -model model.json -addr :9090      # serve one dpsgd -save file
//
// Endpoints: POST /predict (one row, dense "x" or sparse "idx"/"val"),
// POST /predict/batch (amortized scoring; sparse rows go through the
// O(rows·classes·nnz) sparse tier), GET /healthz, GET /modelz (which
// includes each model's privacy-budget ledger when it was published
// through an accountant). SIGINT/SIGTERM shuts the server down
// gracefully: the listener closes, in-flight requests drain, and
// running batch scorings are cancelled through their request contexts.
// See internal/serve for the subsystem and DESIGN.md §5–6 for its
// invariants.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"boltondp/internal/cli"
)

func main() {
	cfg, err := cli.ParseDPServe(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpserve: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cli.RunDPServeCtx(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dpserve: %v\n", err)
		os.Exit(1)
	}
}
