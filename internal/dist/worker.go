package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"

	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// Worker executes shard assignments: it installs validated shard
// manifests and advances them one merge epoch at a time with the
// noiseless Sequential kernel, exactly as an in-process sharded worker
// would. A Worker holds no privacy state — noise lives strictly above
// the coordinator, in internal/core.
//
// Epoch determinism is the worker's one non-obvious duty: a shard's
// permutation stream is fully determined by its seed (one permutation
// per epoch, in epoch order), so a worker asked for epoch e while its
// local generator stands at a different epoch rewinds — reseed, discard
// e permutations — before training. That makes every epoch request
// idempotent and lets the coordinator replay a lost response or move a
// shard to a fresh worker without skewing the randomness.
type Worker struct {
	mu   sync.Mutex
	jobs map[string]map[int]*shardState
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{jobs: make(map[string]map[int]*shardState)}
}

// shardState is one installed (job, shard) assignment.
type shardState struct {
	mu      sync.Mutex
	spec    TrainSpec
	lossFn  loss.Function
	step    sgd.Schedule
	samples sgd.Samples
	closer  io.Closer
	rows    int
	dim     int

	// seed/rng drive the per-epoch permutation stream (multi-shard
	// runs); perm is the delegated single-shard permutation instead.
	seed int64
	rng  *rand.Rand
	perm []int
	// next is the epoch the generator is positioned at, or -1 when a
	// failed run left it in an unknown state (forces a rewind).
	next int
}

// Handler returns the worker's HTTP surface:
//
//	GET  /dist/healthz — liveness + protocol handshake
//	POST /dist/shard   — install (or replace) a shard assignment
//	POST /dist/epoch   — advance an installed shard one merge epoch
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealthz, wk.handleHealthz)
	mux.HandleFunc(PathShard, wk.handleShard)
	mux.HandleFunc(PathEpoch, wk.handleEpoch)
	return mux
}

// Close releases every installed shard's underlying resources (store
// readers). The worker is unusable afterwards.
func (wk *Worker) Close() error {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	var first error
	for _, shards := range wk.jobs {
		for _, st := range shards {
			if st.closer != nil {
				if err := st.closer.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	wk.jobs = make(map[string]map[int]*shardState)
	return first
}

func (wk *Worker) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	wk.mu.Lock()
	jobs, shards := len(wk.jobs), 0
	for _, m := range wk.jobs {
		shards += len(m)
	}
	wk.mu.Unlock()
	writeJSON(w, http.StatusOK, HealthResponse{
		Version: ProtocolVersion, Status: "ok", Jobs: jobs, Shards: shards,
	})
}

func (wk *Worker) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := checkVersion(req.Version); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Job == "" {
		httpError(w, http.StatusBadRequest, "dist: empty job id")
		return
	}
	if err := req.Spec.validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	lossFn, err := req.Spec.Loss.Build()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	step, err := req.Spec.Step.Build()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	samples, closer, rows, dim, err := openShard(&req.Manifest)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Perm != nil && len(req.Perm) != rows {
		if closer != nil {
			closer.Close()
		}
		httpError(w, http.StatusBadRequest, "dist: permutation length %d, shard holds %d rows", len(req.Perm), rows)
		return
	}
	st := &shardState{
		spec: req.Spec, lossFn: lossFn, step: step,
		samples: samples, closer: closer, rows: rows, dim: dim,
		seed: req.Seed, perm: req.Perm,
	}
	if st.perm == nil {
		st.rng = rand.New(rand.NewSource(st.seed))
	}

	wk.mu.Lock()
	shards := wk.jobs[req.Job]
	if shards == nil {
		shards = make(map[int]*shardState)
		wk.jobs[req.Job] = shards
	}
	// Re-installing the same (job, shard) replaces the previous state —
	// the reassignment path after a worker failure.
	if old := shards[req.Manifest.Shard]; old != nil && old.closer != nil {
		old.closer.Close()
	}
	shards[req.Manifest.Shard] = st
	wk.mu.Unlock()

	writeJSON(w, http.StatusOK, ShardResponse{
		Version: ProtocolVersion, Job: req.Job, Shard: req.Manifest.Shard,
		Rows: rows, Dim: dim,
	})
}

func (wk *Worker) handleEpoch(w http.ResponseWriter, r *http.Request) {
	var req EpochRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := checkVersion(req.Version); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wk.mu.Lock()
	st := wk.jobs[req.Job][req.Shard]
	wk.mu.Unlock()
	if st == nil {
		httpError(w, http.StatusNotFound, "dist: no shard %d installed for job %q", req.Shard, req.Job)
		return
	}
	w0, err := req.W.Decode()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(w0) != st.dim {
		httpError(w, http.StatusBadRequest, "dist: model has dim %d, shard data has dim %d", len(w0), st.dim)
		return
	}
	if req.Epoch < 0 || req.Passes < 1 || req.T0 < 0 {
		httpError(w, http.StatusBadRequest, "dist: epoch=%d passes=%d t0=%d invalid", req.Epoch, req.Passes, req.T0)
		return
	}

	st.mu.Lock()
	res, err := st.runEpoch(&req, w0)
	st.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := EpochResponse{
		Version: ProtocolVersion, Job: req.Job, Shard: req.Shard, Epoch: req.Epoch,
		W: EncodeVec(res.W), Updates: res.Updates, Passes: res.Passes,
	}
	if res.WAvg != nil {
		v := EncodeVec(res.WAvg)
		resp.WAvg = &v
	}
	writeJSON(w, http.StatusOK, resp)
}

// runEpoch advances the shard under its own lock. Two modes, mirroring
// the engine's two sharded paths:
//
//   - Delegated permutation (P = 1): the installed explicit permutation
//     is used and all passes run in one continuous sgd.Run — the
//     engine's one-worker delegation to the sequential path, whose
//     iterate-average arithmetic differs bitwise from per-epoch merging.
//     Only epoch 0 exists.
//
//   - Seeded (P > 1): exactly one pass from the shared model, consuming
//     one permutation from the seeded generator. If the generator is
//     not positioned at the requested epoch, rewind deterministically
//     first.
func (st *shardState) runEpoch(req *EpochRequest, w0 []float64) (*sgd.Result, error) {
	cfg := sgd.Config{
		Loss:          st.lossFn,
		Step:          st.step,
		Batch:         st.spec.Batch,
		Radius:        st.spec.Radius,
		Average:       st.spec.Average,
		KernelWorkers: st.spec.KernelWorkers,
		W0:            w0,
		T0:            req.T0,
	}
	if st.perm != nil {
		if req.Epoch != 0 {
			return nil, fmt.Errorf("dist: delegated single-shard runs have only epoch 0, got %d", req.Epoch)
		}
		cfg.Passes = req.Passes
		cfg.Perm = st.perm
		return sgd.Run(st.samples, cfg)
	}
	if req.Passes != 1 {
		return nil, fmt.Errorf("dist: seeded shards advance one pass per epoch, got passes=%d", req.Passes)
	}
	if st.next != req.Epoch {
		// Deterministic rewind: the permutation stream is a pure
		// function of (seed, epoch), so a retry, a replayed request or
		// a reassignment lands on exactly the permutation the original
		// schedule would have drawn.
		st.rng = rand.New(rand.NewSource(st.seed))
		for i := 0; i < req.Epoch; i++ {
			st.rng.Perm(st.rows)
		}
		st.next = req.Epoch
	}
	cfg.Passes = 1
	cfg.Rand = st.rng
	res, err := sgd.Run(st.samples, cfg)
	if err != nil {
		// The generator may or may not have consumed its permutation;
		// force a rewind on the next request rather than guess.
		st.next = -1
		return nil, err
	}
	st.next = req.Epoch + 1
	return res, nil
}

// ---------------------------------------------------------------------
// Shared HTTP helpers (the serve-tier idiom).
// ---------------------------------------------------------------------

// maxBody bounds request bodies: inline shard payloads dominate, and
// 1 GiB comfortably covers any dataset that should be shipped inline
// rather than through a store file.
const maxBody = 1 << 30

func decodeRequest(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	// A typo'd field must be a 400, not a silently dropped key — the
	// same strictness as the serving tier's request decoding.
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
