package dist

import (
	"fmt"

	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// Step-spec kinds — the wire names of the sgd schedule constructors.
const (
	StepConstant       = "constant"
	StepDecreasing     = "decreasing"
	StepSqrt           = "sqrt"
	StepStronglyConvex = "stronglyconvex"
)

// Loss-spec kinds — the wire names of the internal/loss types.
const (
	LossLogistic     = "logistic"
	LossHuber        = "huber"
	LossLeastSquares = "leastsquares"
)

// LossSpecFor derives the wire form of f. Only the three internal/loss
// types are expressible; anything else is an error (a custom loss has
// no wire identity the worker could reconstruct).
func LossSpecFor(f loss.Function) (LossSpec, error) {
	switch l := f.(type) {
	case *loss.Logistic:
		return LossSpec{Kind: LossLogistic, Lambda: l.Lambda, R: l.R}, nil
	case *loss.Huber:
		return LossSpec{Kind: LossHuber, Lambda: l.Lambda, H: l.H, R: l.R}, nil
	case *loss.LeastSquares:
		return LossSpec{Kind: LossLeastSquares, Lambda: l.Lambda, R: l.R}, nil
	default:
		return LossSpec{}, fmt.Errorf("dist: loss %q has no wire form (want one of the internal/loss types)", f.Name())
	}
}

// Build reconstructs the loss. Struct literals, not constructors: the
// spec carries the resolved fields verbatim, so the rebuilt loss is
// arithmetic-identical to the coordinator's — no re-defaulting of R.
func (s LossSpec) Build() (loss.Function, error) {
	switch s.Kind {
	case LossLogistic:
		if s.Lambda < 0 {
			return nil, fmt.Errorf("dist: negative lambda %v", s.Lambda)
		}
		return &loss.Logistic{Lambda: s.Lambda, R: s.R}, nil
	case LossHuber:
		if s.H <= 0 {
			return nil, fmt.Errorf("dist: huber loss needs h > 0, got %v", s.H)
		}
		if s.Lambda < 0 {
			return nil, fmt.Errorf("dist: negative lambda %v", s.Lambda)
		}
		return &loss.Huber{H: s.H, Lambda: s.Lambda, R: s.R}, nil
	case LossLeastSquares:
		if s.Lambda < 0 {
			return nil, fmt.Errorf("dist: negative lambda %v", s.Lambda)
		}
		return &loss.LeastSquares{Lambda: s.Lambda, R: s.R}, nil
	default:
		return nil, fmt.Errorf("dist: unknown loss kind %q", s.Kind)
	}
}

// Build reconstructs the schedule from its resolved parameters. The
// constructors are pure functions of the spec's numbers, so both sides
// evaluate the exact same η_t sequence.
func (s StepSpec) Build() (sgd.Schedule, error) {
	switch s.Kind {
	case StepConstant:
		return sgd.Constant(s.Eta), nil
	case StepDecreasing:
		if s.Beta <= 0 || s.M < 1 {
			return nil, fmt.Errorf("dist: decreasing step needs beta > 0 and m >= 1, got beta=%v m=%d", s.Beta, s.M)
		}
		return sgd.DecreasingConvex(s.Beta, s.M, s.C), nil
	case StepSqrt:
		if s.Beta <= 0 || s.M < 1 {
			return nil, fmt.Errorf("dist: sqrt step needs beta > 0 and m >= 1, got beta=%v m=%d", s.Beta, s.M)
		}
		return sgd.SqrtConvex(s.Beta, s.M, s.C), nil
	case StepStronglyConvex:
		if s.Beta <= 0 || s.Gamma <= 0 {
			return nil, fmt.Errorf("dist: strongly convex step needs beta > 0 and gamma > 0, got beta=%v gamma=%v", s.Beta, s.Gamma)
		}
		return sgd.StronglyConvexPaper(s.Beta, s.Gamma), nil
	default:
		return nil, fmt.Errorf("dist: unknown step kind %q", s.Kind)
	}
}

// validate checks the spec fields every shard shares, before any data
// is opened.
func (s *TrainSpec) validate() error {
	if s.Batch < 1 {
		return fmt.Errorf("dist: batch %d < 1", s.Batch)
	}
	if s.KernelWorkers < 0 {
		return fmt.Errorf("dist: kernelWorkers %d < 0", s.KernelWorkers)
	}
	if _, err := s.Loss.Build(); err != nil {
		return err
	}
	if _, err := s.Step.Build(); err != nil {
		return err
	}
	return nil
}
