package dist_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"boltondp/internal/account"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dist"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
)

// bitsEqual pins bit-for-bit identity — the parity contract is exact,
// not approximate.
func bitsEqual(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: dim %d != %d", tag, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: w[%d] = %x, want %x — distributed run diverged from single-process Sharded", tag, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// pool is a loopback coordinator/worker deployment: n in-process
// workers behind httptest servers, registered with one coordinator.
type pool struct {
	coord   *dist.Coordinator
	workers []*dist.Worker
	urls    []string
}

func newPool(t testing.TB, n int) *pool {
	t.Helper()
	p := &pool{coord: dist.NewCoordinator(dist.CoordinatorConfig{
		Retries: 1, Backoff: time.Millisecond,
	})}
	p.addWorkers(t, n, nil)
	return p
}

// addWorkers spins up n workers (optionally behind a middleware wrapper
// — the fault-injection hook) and registers them.
func (p *pool) addWorkers(t testing.TB, n int, wrap func(i int, h http.Handler) http.Handler) {
	t.Helper()
	for i := 0; i < n; i++ {
		wk := dist.NewWorker()
		h := http.Handler(wk.Handler())
		if wrap != nil {
			h = wrap(len(p.workers), h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		t.Cleanup(func() { wk.Close() })
		if err := p.coord.Register(context.Background(), ts.URL); err != nil {
			t.Fatalf("Register: %v", err)
		}
		p.workers = append(p.workers, wk)
		p.urls = append(p.urls, ts.URL)
	}
}

// sources builds the two coordinator-side views of the same synthetic
// dataset — in-memory dense and store-backed — plus the samples the
// single-process baseline trains on for each.
func sources(t *testing.T) map[string]struct {
	src      dist.Source
	baseline sgd.Samples
} {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	sparse := data.SparseSynthetic(r, 240, 30, 6, 0.1)
	dense := data.Synthetic(rand.New(rand.NewSource(98)), data.GenConfig{M: 240, D: 30, Classes: 2, Spread: 1.5})
	path := filepath.Join(t.TempDir(), "parity.bolt")
	if err := store.Write(path, sparse, store.Options{ChunkRows: 64}); err != nil {
		t.Fatalf("store.Write: %v", err)
	}
	rd, err := store.Open(path)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { rd.Close() })
	return map[string]struct {
		src      dist.Source
		baseline sgd.Samples
	}{
		"inmemory": {src: dist.NewInlineSource(dense), baseline: dense},
		"store":    {src: dist.NewStoreSource(rd), baseline: rd},
	}
}

// TestDistParitySharded is the headline acceptance test: a
// 1-coordinator + P-worker loopback run is bit-identical to the
// single-process Sharded(P) run under a fixed seed — P ∈ {1, 2, 4},
// noiseless and private, in-memory and store-backed, models and (for
// the private case) accountant ledgers compared bit for bit.
func TestDistParitySharded(t *testing.T) {
	srcs := sources(t)
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()

	for name, sc := range srcs {
		for _, P := range []int{1, 2, 4} {
			sc, P := sc, P
			t.Run(fmt.Sprintf("%s/P%d", name, P), func(t *testing.T) {
				t.Run("noiseless", func(t *testing.T) {
					pool := newPool(t, 2)
					m := sc.src.Rows()
					n := engine.MinShard(m, P)
					spec := dist.TrainSpec{
						Loss:    mustLossSpec(t, f),
						Step:    dist.StepSpec{Kind: dist.StepSqrt, Beta: p.Beta, M: n, C: 0.5},
						Batch:   8,
						Radius:  50,
						Average: true,
					}
					step := sgd.SqrtConvex(p.Beta, n, 0.5)

					want, err := engine.Run(sc.baseline, engine.Config{
						Strategy: engine.Sharded, Workers: P,
						SGD: sgd.Config{
							Loss: f, Step: step, Passes: 3, Batch: 8,
							Radius: 50, Average: true,
							Rand: rand.New(rand.NewSource(7)),
						},
					})
					if err != nil {
						t.Fatalf("engine.Run: %v", err)
					}
					got, err := pool.coord.Train(context.Background(), sc.src, dist.Job{
						ID: "parity", Spec: spec, Shards: P, Passes: 3,
					}, rand.New(rand.NewSource(7)))
					if err != nil {
						t.Fatalf("coord.Train: %v", err)
					}
					bitsEqual(t, "W", got.W, want.W)
					bitsEqual(t, "WAvg", got.WAvg, want.WAvg)
					if got.Updates != want.Updates || got.Passes != want.Passes {
						t.Fatalf("updates/passes %d/%d, want %d/%d", got.Updates, got.Passes, want.Updates, want.Passes)
					}
					if len(got.ShardModels) != P {
						t.Fatalf("ShardModels holds %d shards, want %d", len(got.ShardModels), P)
					}
				})

				t.Run("private", func(t *testing.T) {
					pool := newPool(t, 2)
					budget := dp.Budget{Epsilon: 0.5}

					wantAcct := account.MustNew(dp.Budget{Epsilon: 2})
					want, err := core.TrainCtx(context.Background(), sc.baseline, f,
						core.WithStrategy(engine.Sharded, P),
						core.WithBudget(budget), core.WithAccountant(wantAcct),
						core.WithPasses(3), core.WithBatch(8), core.WithRadius(1/1e-2),
						core.WithRand(rand.New(rand.NewSource(11))))
					if err != nil {
						t.Fatalf("core.TrainCtx: %v", err)
					}

					gotAcct := account.MustNew(dp.Budget{Epsilon: 2})
					got, err := core.TrainDistributed(context.Background(), pool.coord, sc.src, f,
						core.WithStrategy(engine.Sharded, P),
						core.WithBudget(budget), core.WithAccountant(gotAcct),
						core.WithPasses(3), core.WithBatch(8), core.WithRadius(1/1e-2),
						core.WithRand(rand.New(rand.NewSource(11))))
					if err != nil {
						t.Fatalf("core.TrainDistributed: %v", err)
					}

					bitsEqual(t, "W (private)", got.W, want.W)
					bitsEqual(t, "NonPrivate", got.NonPrivate, want.NonPrivate)
					if math.Float64bits(got.Sensitivity) != math.Float64bits(want.Sensitivity) {
						t.Fatalf("Sensitivity %v != %v", got.Sensitivity, want.Sensitivity)
					}
					if math.Float64bits(got.NoiseNorm) != math.Float64bits(want.NoiseNorm) {
						t.Fatalf("NoiseNorm %v != %v", got.NoiseNorm, want.NoiseNorm)
					}
					if !gotAcct.Ledger().Same(wantAcct.Ledger()) {
						t.Fatalf("ledgers differ:\n got %+v\nwant %+v", gotAcct.Ledger(), wantAcct.Ledger())
					}
				})
			})
		}
	}
}

// TestDistParityAveragedPrivate covers the iterate-averaged private
// release (the model the paper's convergence results are stated for):
// the averaged distributed model, perturbed, must still match bitwise.
func TestDistParityAveragedPrivate(t *testing.T) {
	srcs := sources(t)
	sc := srcs["store"]
	f := loss.NewLogistic(1e-2, 0)
	base := core.Options{
		Budget: dp.Budget{Epsilon: 1, Delta: 1e-6},
		Passes: 2, Batch: 4, Radius: 100, Average: true,
		Strategy: engine.Sharded, Workers: 2,
	}

	pool := newPool(t, 2)
	wantOpts := base
	wantOpts.Rand = rand.New(rand.NewSource(5))
	want, err := core.Train(sc.baseline, f, wantOpts)
	if err != nil {
		t.Fatalf("core.Train: %v", err)
	}
	got, err := core.TrainDistributed(context.Background(), pool.coord, sc.src, f,
		core.WithOptions(base), core.WithRand(rand.New(rand.NewSource(5))))
	if err != nil {
		t.Fatalf("core.TrainDistributed: %v", err)
	}
	bitsEqual(t, "W (averaged, (ε,δ))", got.W, want.W)
	bitsEqual(t, "NonPrivate", got.NonPrivate, want.NonPrivate)
}

// TestTrainDistributedRejections pins the option surface: parameters
// whose semantics need the whole dataset mid-run (or change the
// randomness schedule) are refused up front, not silently dropped.
func TestTrainDistributedRejections(t *testing.T) {
	pool := newPool(t, 1)
	ds := data.Synthetic(rand.New(rand.NewSource(3)), data.GenConfig{M: 40, D: 5, Classes: 2, Spread: 1})
	src := dist.NewInlineSource(ds)
	f := loss.NewLogistic(1e-2, 0)
	base := []core.Option{
		core.WithBudget(dp.Budget{Epsilon: 1}),
		core.WithRand(rand.New(rand.NewSource(1))),
	}
	cases := map[string]core.Option{
		"tol":         core.WithTol(1e-3),
		"progress":    core.WithProgress(func(int, float64) {}),
		"averagetail": core.WithOptions(core.Options{Budget: dp.Budget{Epsilon: 1}, AverageTail: true}),
		"freshperm":   core.WithOptions(core.Options{Budget: dp.Budget{Epsilon: 1}, FreshPerm: true}),
	}
	for name, opt := range cases {
		t.Run(name, func(t *testing.T) {
			opts := append(append([]core.Option{}, base...), opt)
			if name == "averagetail" || name == "freshperm" {
				opts = append(opts, core.WithRand(rand.New(rand.NewSource(1))))
			}
			if _, err := core.TrainDistributed(context.Background(), pool.coord, src, f, opts...); err == nil {
				t.Fatalf("%s accepted; want rejection", name)
			}
		})
	}
}

func mustLossSpec(t testing.TB, f loss.Function) dist.LossSpec {
	t.Helper()
	s, err := dist.LossSpecFor(f)
	if err != nil {
		t.Fatalf("LossSpecFor: %v", err)
	}
	return s
}
