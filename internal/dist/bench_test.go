package dist_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/dist"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// benchData is the fixed workload both Dist benchmarks train: large
// enough that the per-epoch kernel work dominates a single HTTP round
// trip, small enough for a CI smoke run.
func benchData() *data.Dataset {
	return data.Synthetic(rand.New(rand.NewSource(17)),
		data.GenConfig{M: 2000, D: 40, Classes: 2, Spread: 1.2})
}

const (
	benchPasses = 2
	benchBatch  = 10
)

// BenchmarkDistEpochs drives the full coordinator/worker epoch loop
// over loopback HTTP at different shard counts: install + per-epoch
// fan-out/average/redistribute, exactly the traffic a real deployment
// pays per epoch (JSON framing, base64 vectors, CRC checks).
func BenchmarkDistEpochs(b *testing.B) {
	ds := benchData()
	src := dist.NewInlineSource(ds)
	f := loss.NewLogistic(1e-2, 0)
	spec := dist.TrainSpec{
		Loss:    mustLossSpec(b, f),
		Step:    dist.StepSpec{Kind: dist.StepConstant, Eta: 0.05},
		Batch:   benchBatch,
		Radius:  100,
		Average: true,
	}
	for _, P := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("P%d", P), func(b *testing.B) {
			pool := newPool(b, P)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fixed job ID reuses the installed shard state; the
				// reinstall each Train issues is part of the measured
				// protocol cost.
				if _, err := pool.coord.Train(context.Background(), src, dist.Job{
					ID: "bench", Spec: spec, Shards: P, Passes: benchPasses,
				}, rand.New(rand.NewSource(7))); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ds.Len()), "rows")
		})
	}
}

// BenchmarkDistBaseline is the single-process Sharded(P) run the
// distributed loop is pinned bit-identical to. The ratio
// DistEpochs/DistBaseline at equal P is the pure wire overhead —
// EXPERIMENTS.md tracks it.
func BenchmarkDistBaseline(b *testing.B) {
	ds := benchData()
	f := loss.NewLogistic(1e-2, 0)
	for _, P := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("P%d", P), func(b *testing.B) {
			b.ReportMetric(float64(ds.Len()), "rows")
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(ds, engine.Config{
					Strategy: engine.Sharded, Workers: P,
					SGD: sgd.Config{
						Loss: f, Step: sgd.Constant(0.05),
						Passes: benchPasses, Batch: benchBatch,
						Radius: 100, Average: true,
						Rand: rand.New(rand.NewSource(7)),
					},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
