package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// TestVecRoundTrip: every float64 bit pattern that can appear in a
// model — negative zero, subnormals, extremes — must survive the wire
// exactly.
func TestVecRoundTrip(t *testing.T) {
	cases := [][]float64{
		{},
		{0},
		{0.5, -1.25, 3.5},
		{math.Copysign(0, -1), math.SmallestNonzeroFloat64, -math.MaxFloat64, math.Pi},
	}
	r := rand.New(rand.NewSource(1))
	big := make([]float64, 1000)
	for i := range big {
		big[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(40)-20))
	}
	cases = append(cases, big)
	for _, w := range cases {
		got, err := EncodeVec(w).Decode()
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if len(got) != len(w) {
			t.Fatalf("len %d != %d", len(got), len(w))
		}
		for i := range w {
			if math.Float64bits(got[i]) != math.Float64bits(w[i]) {
				t.Fatalf("w[%d]: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(w[i]))
			}
		}
	}
}

// TestVecFailClosed: any inconsistency between the three Vec fields is
// an error, never a silently wrong vector.
func TestVecFailClosed(t *testing.T) {
	v := EncodeVec([]float64{1, 2, 3})
	cases := map[string]Vec{
		"bad base64":   {N: v.N, B64: "!!!not base64!!!", CRC: v.CRC},
		"short count":  {N: 2, B64: v.B64, CRC: v.CRC},
		"long count":   {N: 4, B64: v.B64, CRC: v.CRC},
		"bad checksum": {N: v.N, B64: v.B64, CRC: v.CRC ^ 1},
	}
	for name, bad := range cases {
		if _, err := bad.Decode(); err == nil {
			t.Errorf("%s: Decode accepted a corrupt vector", name)
		}
	}
}

// TestInlinePayloadFailClosed: the CSR invariants of the store format
// are enforced on decode — corrupt geometry never reaches a kernel.
func TestInlinePayloadFailClosed(t *testing.T) {
	good := func() *InlinePayload {
		src := NewInlineSource(&sgd.SliceSamples{
			X: [][]float64{{1, 0, 2}, {0, 3, 0}},
			Y: []float64{1, -1},
		})
		m, err := src.manifest(0, 0, 2)
		if err != nil {
			t.Fatalf("manifest: %v", err)
		}
		return m.Inline
	}

	if _, _, _, _, err := good().decode(); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}

	mutations := map[string]func(*InlinePayload){
		"bad crc":       func(p *InlinePayload) { p.CRC ^= 1 },
		"bad base64":    func(p *InlinePayload) { p.B64 = "***" },
		"wrong rows":    func(p *InlinePayload) { p.Rows = 3 },
		"wrong nnz":     func(p *InlinePayload) { p.NNZ = 5 },
		"zero dim":      func(p *InlinePayload) { p.Dim = 0 },
		"column beyond": func(p *InlinePayload) { p.Dim = 2 }, // row 0 has column 2
	}
	for name, mutate := range mutations {
		p := good()
		mutate(p)
		if _, _, _, _, err := p.decode(); err == nil {
			t.Errorf("%s: decode accepted a corrupt payload", name)
		}
	}
}

// TestInlineSourceTier: the worker-side reconstruction must present
// exactly the tier the coordinator-side source presented — a dense
// source must NOT come back sparse (it would switch kernels and break
// bit-parity with the single-process run).
func TestInlineSourceTier(t *testing.T) {
	dense := &sgd.SliceSamples{X: [][]float64{{1, 0}, {0, 2}}, Y: []float64{1, -1}}
	m, err := NewInlineSource(dense).manifest(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Inline.Sparse {
		t.Fatal("dense source produced a sparse-tier payload")
	}
	s, _, _, _, err := openShard(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(sgd.SparseSamples); ok {
		t.Fatal("dense-tier payload reconstructed with an AtSparse method — kernel tier would flip")
	}
	x, y := s.At(1)
	if x[0] != 0 || x[1] != 2 || y != -1 {
		t.Fatalf("row 1 = (%v, %v), want ([0 2], -1)", x, y)
	}
}

// TestLossSpecRoundTrip: spec → Build must reproduce the exact struct
// fields (no constructor re-defaulting of R on the worker side).
func TestLossSpecRoundTrip(t *testing.T) {
	fns := []loss.Function{
		loss.NewLogistic(1e-3, 0),   // R defaults to 1/λ
		loss.NewLogistic(0, 0),      // unregularized
		loss.NewHuber(0.1, 1e-4, 0), // paper's Huber SVM
		loss.NewLeastSquares(1e-2, 0),
	}
	for _, f := range fns {
		spec, err := LossSpecFor(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		back, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: Build: %v", f.Name(), err)
		}
		if got, want := back.Params(), f.Params(); got != want {
			t.Errorf("%s: params %+v != %+v after wire round-trip", f.Name(), got, want)
		}
		if back.Name() != f.Name() {
			t.Errorf("name %q != %q after wire round-trip", back.Name(), f.Name())
		}
	}
	if _, err := LossSpecFor(&customLoss{}); err == nil {
		t.Error("custom loss accepted; it has no wire identity")
	}
}

type customLoss struct{ loss.Logistic }

func (c *customLoss) Name() string { return "custom" }

// TestStepSpecRoundTrip: each schedule kind must rebuild to the same
// η_t sequence (schedules are pure functions of the spec numbers).
func TestStepSpecRoundTrip(t *testing.T) {
	cases := []struct {
		spec StepSpec
		want sgd.Schedule
	}{
		{StepSpec{Kind: StepConstant, Eta: 0.05}, sgd.Constant(0.05)},
		{StepSpec{Kind: StepDecreasing, Beta: 0.25, M: 100, C: 0.5}, sgd.DecreasingConvex(0.25, 100, 0.5)},
		{StepSpec{Kind: StepSqrt, Beta: 0.25, M: 100, C: 0.5}, sgd.SqrtConvex(0.25, 100, 0.5)},
		{StepSpec{Kind: StepStronglyConvex, Beta: 0.25, Gamma: 0.001}, sgd.StronglyConvexPaper(0.25, 0.001)},
	}
	for _, tc := range cases {
		got, err := tc.spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Kind, err)
		}
		for _, tt := range []int{1, 2, 10, 1000, 100000} {
			if g, w := got.Eta(tt), tc.want.Eta(tt); math.Float64bits(g) != math.Float64bits(w) {
				t.Errorf("%s: η(%d) = %v, want %v", tc.spec.Kind, tt, g, w)
			}
		}
	}
	for name, bad := range map[string]StepSpec{
		"unknown kind": {Kind: "warp"},
		"bad beta":     {Kind: StepSqrt, Beta: -1, M: 10},
		"bad gamma":    {Kind: StepStronglyConvex, Beta: 1, Gamma: 0},
	} {
		if _, err := bad.Build(); err == nil {
			t.Errorf("%s: Build accepted an invalid spec", name)
		}
	}
}

// TestCheckVersion pins the fail-closed version gate and its error
// wording (operators grep for "version skew").
func TestCheckVersion(t *testing.T) {
	if err := checkVersion(ProtocolVersion); err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	err := checkVersion(ProtocolVersion + 1)
	if err == nil {
		t.Fatal("future version accepted")
	}
	if !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("skew error %q does not name the condition", err)
	}
}
