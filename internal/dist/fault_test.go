package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"boltondp/internal/account"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dist"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// faultSetup builds the dataset, spec and single-process baseline the
// fault tests compare against: the invariant under every injected
// fault is EITHER bit-identical recovery OR a clean abort — never a
// silently different model.
type faultSetup struct {
	ds   *data.Dataset
	src  dist.Source
	spec dist.TrainSpec
	want *engine.Result
}

func newFaultSetup(t *testing.T) *faultSetup {
	t.Helper()
	ds := data.Synthetic(rand.New(rand.NewSource(31)), data.GenConfig{M: 120, D: 12, Classes: 2, Spread: 1.2})
	f := loss.NewLogistic(1e-2, 0)
	want, err := engine.Run(ds, engine.Config{
		Strategy: engine.Sharded, Workers: 2,
		SGD: sgd.Config{
			Loss: f, Step: sgd.Constant(0.1), Passes: 3, Batch: 4,
			Radius: 50, Average: true,
			Rand: rand.New(rand.NewSource(13)),
		},
	})
	if err != nil {
		t.Fatalf("engine.Run: %v", err)
	}
	return &faultSetup{
		ds:  ds,
		src: dist.NewInlineSource(ds),
		spec: dist.TrainSpec{
			Loss:    mustLossSpec(t, f),
			Step:    dist.StepSpec{Kind: dist.StepConstant, Eta: 0.1},
			Batch:   4,
			Radius:  50,
			Average: true,
		},
		want: want,
	}
}

func (fs *faultSetup) train(t *testing.T, coord *dist.Coordinator, ctx context.Context) (*dist.Result, error) {
	t.Helper()
	return coord.Train(ctx, fs.src, dist.Job{
		ID: "fault", Spec: fs.spec, Shards: 2, Passes: 3,
	}, rand.New(rand.NewSource(13)))
}

// dieAfter serves the first n epoch requests, then answers 503 to
// everything — a worker that trained for a while and fell over.
func dieAfter(n int) func(int, http.Handler) http.Handler {
	return func(_ int, inner http.Handler) http.Handler {
		var mu sync.Mutex
		served := 0
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == dist.PathEpoch {
				mu.Lock()
				served++
				dead := served > n
				mu.Unlock()
				if dead {
					http.Error(w, "worker died", http.StatusServiceUnavailable)
					return
				}
			}
			inner.ServeHTTP(w, r)
		})
	}
}

// TestFaultWorkerDiesMidRun kills one worker after its first epoch
// response: the coordinator must retry, declare it dead, reassign its
// shard to the surviving worker — whose deterministic rewind replays
// the dead worker's permutation stream — and finish bit-identical to
// the clean single-process run.
func TestFaultWorkerDiesMidRun(t *testing.T) {
	fs := newFaultSetup(t)
	p := &pool{coord: dist.NewCoordinator(dist.CoordinatorConfig{Retries: 1, Backoff: 0})}
	first := true
	p.addWorkers(t, 2, func(i int, h http.Handler) http.Handler {
		if first {
			first = false
			return dieAfter(1)(i, h)
		}
		return h
	})

	got, err := fs.train(t, p.coord, context.Background())
	if err != nil {
		t.Fatalf("Train with dying worker: %v", err)
	}
	bitsEqual(t, "W after reassignment", got.W, fs.want.W)
	bitsEqual(t, "WAvg after reassignment", got.WAvg, fs.want.WAvg)
	if live := p.coord.Workers(); len(live) != 1 {
		t.Fatalf("live workers = %v, want exactly the survivor", live)
	}
}

// TestFaultAllWorkersDie exhausts the pool: with every worker dead the
// run must abort fail-closed, not return a partial average.
func TestFaultAllWorkersDie(t *testing.T) {
	fs := newFaultSetup(t)
	p := &pool{coord: dist.NewCoordinator(dist.CoordinatorConfig{Retries: 1, Backoff: 0})}
	p.addWorkers(t, 2, dieAfter(0))

	if _, err := fs.train(t, p.coord, context.Background()); err == nil {
		t.Fatal("Train with no surviving workers succeeded; want fail-closed abort")
	} else if !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("abort error %q does not name the cause", err)
	}
}

// flakyFirstAttempt fails the first delivery of every distinct epoch
// request with 503 and serves the retry — deterministic transient
// flakiness. Same-worker retry must absorb it with zero drift.
func flakyFirstAttempt() func(int, http.Handler) http.Handler {
	return func(_ int, inner http.Handler) http.Handler {
		var mu sync.Mutex
		seen := map[string]bool{}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == dist.PathEpoch {
				body, err := io.ReadAll(r.Body)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				r.Body = io.NopCloser(bytes.NewReader(body))
				var req dist.EpochRequest
				if json.Unmarshal(body, &req) == nil {
					key := req.Job + "/" + string(rune('0'+req.Shard)) + "/" + string(rune('0'+req.Epoch))
					mu.Lock()
					firstTime := !seen[key]
					seen[key] = true
					mu.Unlock()
					if firstTime {
						http.Error(w, "transient flake", http.StatusServiceUnavailable)
						return
					}
				}
			}
			inner.ServeHTTP(w, r)
		})
	}
}

// TestFaultFlakyWorkerRetry: every epoch request fails once and
// succeeds on the same-worker retry. The worker processed nothing on
// the failed delivery, so the retry path alone must preserve parity.
func TestFaultFlakyWorkerRetry(t *testing.T) {
	fs := newFaultSetup(t)
	p := &pool{coord: dist.NewCoordinator(dist.CoordinatorConfig{Retries: 2, Backoff: 0})}
	p.addWorkers(t, 2, flakyFirstAttempt())

	got, err := fs.train(t, p.coord, context.Background())
	if err != nil {
		t.Fatalf("Train with flaky workers: %v", err)
	}
	bitsEqual(t, "W under flaky delivery", got.W, fs.want.W)
	bitsEqual(t, "WAvg under flaky delivery", got.WAvg, fs.want.WAvg)
	if live := p.coord.Workers(); len(live) != 2 {
		t.Fatalf("flaky-but-recovering workers were declared dead: live=%v", live)
	}
}

// tamperEpoch rewrites the epoch echo of the first (or every) epoch
// response — the stale/misrouted-model hazard the coordinator must
// reject fail-closed.
func tamperEpoch(always bool) func(int, http.Handler) http.Handler {
	return func(_ int, inner http.Handler) http.Handler {
		var mu sync.Mutex
		tampered := false
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != dist.PathEpoch {
				inner.ServeHTTP(w, r)
				return
			}
			mu.Lock()
			tamper := always || !tampered
			tampered = true
			mu.Unlock()
			if !tamper {
				inner.ServeHTTP(w, r)
				return
			}
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			if rec.Code != http.StatusOK {
				w.WriteHeader(rec.Code)
				w.Write(rec.Body.Bytes())
				return
			}
			var resp dist.EpochResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			resp.Epoch++ // the model is real, but from the wrong epoch
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(resp)
		})
	}
}

// TestFaultStaleEpochRejected: a response carrying a wrong epoch echo
// must never enter an average. With a second worker available the
// shard is reassigned and the run recovers bit-identically; with no
// alternative the run aborts.
func TestFaultStaleEpochRejected(t *testing.T) {
	t.Run("recovers", func(t *testing.T) {
		fs := newFaultSetup(t)
		p := &pool{coord: dist.NewCoordinator(dist.CoordinatorConfig{Retries: 1, Backoff: 0})}
		first := true
		p.addWorkers(t, 2, func(i int, h http.Handler) http.Handler {
			if first {
				first = false
				return tamperEpoch(false)(i, h)
			}
			return h
		})
		got, err := fs.train(t, p.coord, context.Background())
		if err != nil {
			t.Fatalf("Train with one tampered response: %v", err)
		}
		bitsEqual(t, "W after stale rejection", got.W, fs.want.W)
		bitsEqual(t, "WAvg after stale rejection", got.WAvg, fs.want.WAvg)
	})
	t.Run("aborts", func(t *testing.T) {
		fs := newFaultSetup(t)
		p := &pool{coord: dist.NewCoordinator(dist.CoordinatorConfig{Retries: 1, Backoff: 0})}
		p.addWorkers(t, 1, tamperEpoch(true))
		if _, err := fs.train(t, p.coord, context.Background()); err == nil {
			t.Fatal("Train over an always-tampering worker succeeded; want abort")
		}
	})
}

// TestFaultCtxCancelMidRound cancels the run context from inside the
// first epoch request: Train must return ctx.Err() within the round,
// and — driven through the private facade — the accountant must show
// exactly the one reservation made before training, never a second
// spend (reservations are not refunded, and an aborted run must not
// re-reserve).
func TestFaultCtxCancelMidRound(t *testing.T) {
	ds := data.Synthetic(rand.New(rand.NewSource(41)), data.GenConfig{M: 80, D: 8, Classes: 2, Spread: 1})
	f := loss.NewLogistic(1e-2, 0)
	ctx, cancel := context.WithCancel(context.Background())

	p := &pool{coord: dist.NewCoordinator(dist.CoordinatorConfig{Retries: 1, Backoff: 0})}
	p.addWorkers(t, 2, func(_ int, inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == dist.PathEpoch {
				cancel() // the round is in flight — kill the run now
			}
			inner.ServeHTTP(w, r)
		})
	})

	acct := account.MustNew(dp.Budget{Epsilon: 1})
	_, err := core.TrainDistributed(ctx, p.coord, dist.NewInlineSource(ds), f,
		core.WithBudget(dp.Budget{Epsilon: 0.5}),
		core.WithAccountant(acct),
		core.WithPasses(5), core.WithBatch(4),
		core.WithRand(rand.New(rand.NewSource(2))))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	l := acct.Ledger()
	if len(l.Entries) != 1 {
		t.Fatalf("ledger holds %d entries after cancelled run, want exactly the single reservation: %+v", len(l.Entries), l.Entries)
	}
	if l.SpentEpsilon != 0.5 {
		t.Fatalf("spent ε = %v, want the single 0.5 reservation (no double spend, no refund)", l.SpentEpsilon)
	}
}
