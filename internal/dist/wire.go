// Package dist is the distributed execution tier: a coordinator/worker
// pair that runs the engine's Sharded strategy across processes,
// speaking JSON over HTTP in the same idiom as the serving tier
// (internal/serve) — context-aware requests, strict decoding, graceful
// drain.
//
// The division of labor follows the paper's MapReduce footnote
// composed with the repository's own layers: the coordinator partitions
// the training set into P shard manifests (store chunk ranges + CRCs,
// or inline CSR payloads), assigns them to registered workers, and runs
// the per-epoch loop — each worker advances noiseless permutation SGD
// one pass over its own shard from the shared model, ships its O(d)
// model vector back, the coordinator merges by uniform averaging and
// redistributes. Per-round traffic is O(P·d) models, never data rows
// (the dynamic-evaluation discipline: maintain the result under
// updates, don't re-ship the input). Privacy stays strictly above this
// package: internal/core calibrates the Sharded sensitivity and adds
// the noise exactly once to the final averaged model, so the
// distributed executor is as noise-free a black box as the in-process
// engine.
//
// # Parity contract
//
// A coordinator + P-worker run is bit-identical to single-process
// engine.Run with Strategy=Sharded and Workers=P under the same seed,
// including the accountant ledger of a private run (pinned by
// TestDistParitySharded). Three mechanisms carry the contract:
//
//   - Shard layout comes from engine.PlanShards — the same authority
//     the in-process executor partitions by.
//   - Per-shard randomness is a seed drawn from the caller's generator
//     in shard order (exactly the engine's per-worker seeding), and a
//     worker consumes it identically: one permutation per epoch. A
//     worker that picks up a shard mid-run (restart, reassignment)
//     rewinds deterministically by re-seeding and discarding the
//     permutations of the epochs already played. P = 1 delegates like
//     the engine does: the coordinator draws the single permutation
//     from the caller's generator and ships it explicitly, and the
//     worker runs all passes in one call.
//   - Model vectors cross the wire as raw IEEE-754 bits (base64 of the
//     little-endian encoding) with a CRC32, so no decimal formatting
//     sits between the averaged iterates — what the worker computed is
//     what the coordinator averages, bit for bit.
//
// # Robustness
//
// Everything that crosses the wire is validated fail-closed (protocol
// version, shard geometry, chunk CRCs against the manifest, vector
// CRCs and dimensions, epoch/job echoes), in the integrity-first
// tradition of the deductive-database literature: a mismatch is an
// error before any training work, never a silently wrong model. The
// coordinator retries transient worker failures with backoff,
// reassigns shards of dead workers (the rewind above makes that exact),
// and aborts the run — with the accountant's reservation intact and no
// partial average released — when a shard cannot be recovered.
package dist

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"boltondp/internal/store"
)

// ProtocolVersion is the wire-protocol version both sides must agree
// on. Every request carries it; a worker refuses a request from a
// coordinator speaking a different version (and vice versa for
// responses), so version skew surfaces as an explicit error at the
// first exchange — the golden-file tests in golden_test.go pin the
// encoded forms so a drift inside one version is caught in review.
const ProtocolVersion = 1

// Wire paths of the worker's HTTP surface.
const (
	// PathHealthz is the worker liveness/handshake endpoint (GET).
	PathHealthz = "/dist/healthz"
	// PathShard installs a shard assignment on a worker (POST).
	PathShard = "/dist/shard"
	// PathEpoch runs one epoch of an installed shard (POST).
	PathEpoch = "/dist/epoch"
)

// Vec is a model vector on the wire: the base64 encoding of the
// little-endian IEEE-754 bits, with an element count and a CRC32 over
// the raw bytes. Encoding the bits — rather than decimal JSON numbers —
// is what makes the parity contract unconditional: no formatting or
// parsing sits between what one side computed and what the other side
// averages.
type Vec struct {
	N   int    `json:"n"`
	B64 string `json:"b64"`
	CRC uint32 `json:"crc"`
}

// EncodeVec packs w into its wire form.
func EncodeVec(w []float64) Vec {
	raw := make([]byte, 8*len(w))
	for i, v := range w {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	return Vec{
		N:   len(w),
		B64: base64.StdEncoding.EncodeToString(raw),
		CRC: crc32.ChecksumIEEE(raw),
	}
}

// Decode unpacks the vector, failing closed on any inconsistency
// (bad base64, length mismatch, checksum mismatch).
func (v Vec) Decode() ([]float64, error) {
	raw, err := base64.StdEncoding.DecodeString(v.B64)
	if err != nil {
		return nil, fmt.Errorf("dist: vector payload: %w", err)
	}
	if len(raw) != 8*v.N {
		return nil, fmt.Errorf("dist: vector payload holds %d bytes, want %d for n=%d", len(raw), 8*v.N, v.N)
	}
	if got := crc32.ChecksumIEEE(raw); got != v.CRC {
		return nil, fmt.Errorf("dist: vector checksum mismatch (%08x != %08x)", got, v.CRC)
	}
	out := make([]float64, v.N)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// StoreManifest references shard data living in a store file the
// worker can open itself (shared filesystem or local copy): the path,
// the geometry the worker must find there, and the CRCs of every chunk
// the shard's row range touches. The worker verifies all of it before
// training — a stale or rewritten file under the same name is an
// error, never silently different data.
type StoreManifest struct {
	Path      string           `json:"path"`
	Rows      int              `json:"rows"`
	Dim       int              `json:"dim"`
	ChunkRows int              `json:"chunk_rows"`
	Flags     uint32           `json:"flags,omitempty"`
	Chunks    []store.ChunkRef `json:"chunks"`
}

// InlinePayload carries a shard's rows inline, for training sets that
// live in the coordinator's memory. The encoding is the store format's
// chunk payload layout verbatim — val f64[nnz] | y f64[rows] |
// indptr i64[rows+1] | idx i64[nnz], little-endian, CRC32 over the
// whole payload — so the wire form inherits the store's validation
// discipline (CRC plus CSR invariants) and its bit-exactness.
type InlinePayload struct {
	Rows int `json:"rows"`
	NNZ  int `json:"nnz"`
	Dim  int `json:"dim"`
	// Sparse records which tier of the engine's data contract the
	// worker-side source must present: a sparse-tier source trains on
	// the sparse kernel, a dense-tier one on the dense kernel. The flag
	// mirrors the coordinator-side source so the distributed run picks
	// the same kernel as the single-process run it must match.
	Sparse bool   `json:"sparse,omitempty"`
	B64    string `json:"b64"`
	CRC    uint32 `json:"crc"`
}

// ShardManifest describes one shard: its index, its global row range,
// and exactly one data reference (store-backed or inline).
type ShardManifest struct {
	Shard  int            `json:"shard"`
	Lo     int            `json:"lo"`
	Hi     int            `json:"hi"`
	Store  *StoreManifest `json:"store,omitempty"`
	Inline *InlinePayload `json:"inline,omitempty"`
}

// LossSpec is the wire form of a loss function: the struct fields of
// the internal/loss types, copied verbatim so the worker reconstructs
// arithmetic-identical losses (no constructor defaulting on the far
// side).
type LossSpec struct {
	// Kind is "logistic", "huber" or "leastsquares".
	Kind   string  `json:"kind"`
	Lambda float64 `json:"lambda,omitempty"`
	// H is the Huber smoothing width (Huber only).
	H float64 `json:"h,omitempty"`
	// R is the hypothesis-space radius the constants were derived at.
	R float64 `json:"r,omitempty"`
}

// StepSpec is the wire form of a step-size schedule: the resolved
// numeric parameters of the sgd schedule constructors. The coordinator
// resolves defaults (e.g. η = 1/√n at the shard size) before encoding,
// so both sides evaluate the exact same schedule.
type StepSpec struct {
	// Kind is "constant", "decreasing", "sqrt" or "stronglyconvex".
	Kind string  `json:"kind"`
	Eta  float64 `json:"eta,omitempty"`
	Beta float64 `json:"beta,omitempty"`
	// Gamma is the strong-convexity modulus (stronglyconvex only).
	Gamma float64 `json:"gamma,omitempty"`
	// M is the dataset size the schedule is evaluated at — the
	// smallest shard size for sharded runs (decreasing/sqrt only).
	M int `json:"m,omitempty"`
	// C is the m^c offset exponent (decreasing/sqrt only).
	C float64 `json:"c,omitempty"`
}

// TrainSpec carries the SGD parameters shared by every shard of a run.
type TrainSpec struct {
	Loss    LossSpec `json:"loss"`
	Step    StepSpec `json:"step"`
	Batch   int      `json:"batch"`
	Radius  float64  `json:"radius,omitempty"`
	Average bool     `json:"average,omitempty"`
	// KernelWorkers is the intra-batch parallelism degree of the
	// worker-side SGD kernel (sgd.Config.KernelWorkers; 0 or 1 =
	// sequential). The parallel kernel is bit-identical to the
	// sequential one, so the field affects worker CPU use only, never
	// the trained bytes — which is why it can ride inside protocol
	// version 1 as an additive omitempty field: a spec that leaves it
	// unset encodes exactly as before (all golden fixtures are
	// byte-stable), and an old worker handed a non-zero value fails
	// loudly through its DisallowUnknownFields decoder instead of
	// silently training something different.
	KernelWorkers int `json:"kernelWorkers,omitempty"`
}

// ShardRequest installs one shard assignment on a worker. Re-sending
// the same (job, shard) replaces the previous installation — that is
// how a shard moves to a new worker after a failure.
type ShardRequest struct {
	Version  int           `json:"version"`
	Job      string        `json:"job"`
	Manifest ShardManifest `json:"manifest"`
	Spec     TrainSpec     `json:"spec"`
	// Seed seeds the shard's permutation generator (multi-shard runs):
	// the worker consumes it exactly as an in-process sharded worker
	// consumes its pre-drawn generator — one permutation per epoch.
	Seed int64 `json:"seed"`
	// Perm is the explicit permutation of a single-shard run (P = 1),
	// where the engine delegates to the sequential path and the
	// permutation comes from the caller's own generator. Mutually
	// exclusive with per-epoch reseeding; such shards train all passes
	// in one epoch call.
	Perm []int `json:"perm,omitempty"`
}

// ShardResponse acknowledges a validated installation.
type ShardResponse struct {
	Version int    `json:"version"`
	Job     string `json:"job"`
	Shard   int    `json:"shard"`
	Rows    int    `json:"rows"`
	Dim     int    `json:"dim"`
}

// EpochRequest asks a worker to advance one installed shard: run
// Passes passes of noiseless PSGD from the shared model W, with the
// update counter starting at T0 (the engine's cross-epoch schedule
// continuation).
type EpochRequest struct {
	Version int    `json:"version"`
	Job     string `json:"job"`
	Shard   int    `json:"shard"`
	// Epoch is the 0-based merge-epoch number. A worker whose local
	// state is at a different epoch rewinds deterministically before
	// running, so retries and reassignments cannot skew the randomness.
	Epoch  int `json:"epoch"`
	Passes int `json:"passes"`
	T0     int `json:"t0"`
	W      Vec `json:"w"`
}

// EpochResponse returns the shard's post-epoch model. The coordinator
// rejects any response whose echoes (job, shard, epoch) do not match
// the request — a stale or misrouted model never enters an average.
type EpochResponse struct {
	Version int    `json:"version"`
	Job     string `json:"job"`
	Shard   int    `json:"shard"`
	Epoch   int    `json:"epoch"`
	W       Vec    `json:"w"`
	// WAvg is the shard's uniform iterate average (present iff the
	// spec asked for averaging).
	WAvg *Vec `json:"w_avg,omitempty"`
	// Updates is the number of gradient updates this epoch performed —
	// the coordinator advances the shard's T0 by it.
	Updates int `json:"updates"`
	Passes  int `json:"passes"`
}

// HealthResponse is the worker handshake: protocol version plus a
// liveness summary. The coordinator validates the version at
// registration and on every heartbeat.
type HealthResponse struct {
	Version int    `json:"version"`
	Status  string `json:"status"`
	Jobs    int    `json:"jobs"`
	Shards  int    `json:"shards"`
}

// ErrorResponse is the JSON body of every non-2xx worker reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// checkVersion is the shared fail-closed version gate.
func checkVersion(got int) error {
	if got != ProtocolVersion {
		return fmt.Errorf("dist: protocol version %d, want %d (coordinator/worker version skew)", got, ProtocolVersion)
	}
	return nil
}
