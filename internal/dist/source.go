package dist

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"boltondp/internal/sgd"
	"boltondp/internal/store"
	"boltondp/internal/vec"
)

// Source is the coordinator-side description of a training set: the
// geometry the shard plan is computed over, plus the ability to cut any
// row range into a shard manifest a worker can open and verify. The
// two implementations mirror the repository's two data tiers — a store
// file workers open themselves (manifests are chunk refs, no rows on
// the wire) and in-memory samples shipped inline as CSR payloads.
type Source interface {
	// Rows returns the total row count m.
	Rows() int
	// Dim returns the feature dimension d.
	Dim() int
	// manifest cuts rows [lo, hi) into shard's manifest.
	manifest(shard, lo, hi int) (*ShardManifest, error)
}

// NewStoreSource describes a training set living in a store file. The
// shard manifests reference the reader's path with the CRCs of every
// chunk each shard touches, so workers — which must be able to open the
// same path (shared filesystem, or a local copy at the same location) —
// prove they see byte-identical data before training.
func NewStoreSource(r *store.Reader) Source {
	return &storeSource{r: r}
}

type storeSource struct {
	r *store.Reader
}

func (s *storeSource) Rows() int { return s.r.Len() }
func (s *storeSource) Dim() int  { return s.r.Dim() }

func (s *storeSource) manifest(shard, lo, hi int) (*ShardManifest, error) {
	refs, err := s.r.ChunkRefsForRows(lo, hi)
	if err != nil {
		return nil, err
	}
	return &ShardManifest{
		Shard: shard, Lo: lo, Hi: hi,
		Store: &StoreManifest{
			Path:      s.r.Path(),
			Rows:      s.r.Len(),
			Dim:       s.r.Dim(),
			ChunkRows: s.r.ChunkRows(),
			Flags:     s.r.Flags(),
			Chunks:    refs,
		},
	}, nil
}

// NewInlineSource describes an in-memory training set whose shards are
// shipped to workers inline, as CSR payloads in the store format's
// chunk layout. The payload records which data tier the source
// presents (sparse when it implements sgd.SparseSamples), and the
// worker-side reconstruction presents the same tier, so the
// distributed run executes on the same kernel as its single-process
// counterpart.
func NewInlineSource(s sgd.Samples) Source {
	src := &inlineSource{s: s}
	_, src.sparse = s.(sgd.SparseSamples)
	return src
}

type inlineSource struct {
	s      sgd.Samples
	sparse bool
}

func (s *inlineSource) Rows() int { return s.s.Len() }
func (s *inlineSource) Dim() int  { return s.s.Dim() }

func (s *inlineSource) manifest(shard, lo, hi int) (*ShardManifest, error) {
	if lo < 0 || hi < lo || hi > s.s.Len() {
		return nil, fmt.Errorf("dist: shard range [%d,%d) out of bounds for %d rows", lo, hi, s.s.Len())
	}
	rows := hi - lo
	indptr := make([]int, 1, rows+1)
	var idx []int
	var val, y []float64
	if s.sparse {
		ss := s.s.(sgd.SparseSamples)
		for i := lo; i < hi; i++ {
			sp, yv := ss.AtSparse(i)
			idx = append(idx, sp.Idx...)
			val = append(val, sp.Val...)
			y = append(y, yv)
			indptr = append(indptr, len(idx))
		}
	} else {
		for i := lo; i < hi; i++ {
			x, yv := s.s.At(i)
			for j, v := range x {
				if v != 0 {
					idx = append(idx, j)
					val = append(val, v)
				}
			}
			y = append(y, yv)
			indptr = append(indptr, len(idx))
		}
	}
	payload := encodeCSRPayload(indptr, idx, val, y)
	return &ShardManifest{
		Shard: shard, Lo: lo, Hi: hi,
		Inline: &InlinePayload{
			Rows:   rows,
			NNZ:    len(idx),
			Dim:    s.s.Dim(),
			Sparse: s.sparse,
			B64:    base64.StdEncoding.EncodeToString(payload),
			CRC:    crc32.ChecksumIEEE(payload),
		},
	}, nil
}

// encodeCSRPayload packs a CSR block in the store chunk payload layout:
// val f64[nnz] | y f64[rows] | indptr i64[rows+1] | idx i64[nnz],
// little-endian throughout.
func encodeCSRPayload(indptr, idx []int, val, y []float64) []byte {
	nnz, rows := len(idx), len(y)
	buf := make([]byte, 8*(2*nnz+2*rows+1))
	o := 0
	for _, v := range val {
		binary.LittleEndian.PutUint64(buf[o:], math.Float64bits(v))
		o += 8
	}
	for _, v := range y {
		binary.LittleEndian.PutUint64(buf[o:], math.Float64bits(v))
		o += 8
	}
	for _, v := range indptr {
		binary.LittleEndian.PutUint64(buf[o:], uint64(v))
		o += 8
	}
	for _, v := range idx {
		binary.LittleEndian.PutUint64(buf[o:], uint64(v))
		o += 8
	}
	return buf
}

// decode validates and unpacks an inline payload, failing closed on
// checksum, geometry or CSR-invariant violations — the same discipline
// a store chunk decode applies.
func (p *InlinePayload) decode() (indptr, idx []int, val, y []float64, err error) {
	if p.Rows < 1 || p.NNZ < 0 || p.Dim < 1 {
		return nil, nil, nil, nil, fmt.Errorf("dist: inline shard geometry rows=%d nnz=%d dim=%d invalid", p.Rows, p.NNZ, p.Dim)
	}
	raw, err := base64.StdEncoding.DecodeString(p.B64)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("dist: inline shard payload: %w", err)
	}
	want := 8 * (2*p.NNZ + 2*p.Rows + 1)
	if len(raw) != want {
		return nil, nil, nil, nil, fmt.Errorf("dist: inline shard payload holds %d bytes, want %d", len(raw), want)
	}
	if got := crc32.ChecksumIEEE(raw); got != p.CRC {
		return nil, nil, nil, nil, fmt.Errorf("dist: inline shard checksum mismatch (%08x != %08x)", got, p.CRC)
	}
	val = make([]float64, p.NNZ)
	o := 0
	for i := range val {
		val[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[o:]))
		o += 8
	}
	y = make([]float64, p.Rows)
	for i := range y {
		y[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[o:]))
		o += 8
	}
	indptr = make([]int, p.Rows+1)
	for i := range indptr {
		indptr[i] = int(binary.LittleEndian.Uint64(raw[o:]))
		o += 8
	}
	idx = make([]int, p.NNZ)
	for i := range idx {
		idx[i] = int(binary.LittleEndian.Uint64(raw[o:]))
		o += 8
	}
	prev := 0
	for i, v := range indptr {
		if (i == 0 && v != 0) || v < prev || v > p.NNZ {
			return nil, nil, nil, nil, fmt.Errorf("dist: inline shard row index corrupt at %d", i)
		}
		prev = v
	}
	if prev != p.NNZ {
		return nil, nil, nil, nil, fmt.Errorf("dist: inline shard row index does not cover %d non-zeros", p.NNZ)
	}
	for row := 0; row < p.Rows; row++ {
		last := -1
		for k := indptr[row]; k < indptr[row+1]; k++ {
			v := idx[k]
			if v <= last || v >= p.Dim {
				return nil, nil, nil, nil, fmt.Errorf("dist: inline shard row %d columns out of range or not strictly increasing", row)
			}
			last = v
		}
	}
	return indptr, idx, val, y, nil
}

// ---------------------------------------------------------------------
// Worker-side shard data.
// ---------------------------------------------------------------------

// openShard materializes a manifest's data on the worker: the samples
// to train on, a closer for any underlying file, and the validated
// geometry. Everything the manifest claims is checked before a row is
// served.
func openShard(m *ShardManifest) (s sgd.Samples, closer io.Closer, rows, dim int, err error) {
	switch {
	case (m.Store == nil) == (m.Inline == nil):
		return nil, nil, 0, 0, fmt.Errorf("dist: shard manifest must carry exactly one of store/inline data")
	case m.Lo < 0 || m.Hi <= m.Lo:
		return nil, nil, 0, 0, fmt.Errorf("dist: shard range [%d,%d) invalid", m.Lo, m.Hi)
	case m.Store != nil:
		return openStoreShard(m)
	default:
		return openInlineShard(m)
	}
}

func openStoreShard(m *ShardManifest) (sgd.Samples, io.Closer, int, int, error) {
	sm := m.Store
	r, err := store.Open(sm.Path)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	fail := func(err error) (sgd.Samples, io.Closer, int, int, error) {
		r.Close()
		return nil, nil, 0, 0, err
	}
	if r.Len() != sm.Rows || r.Dim() != sm.Dim || r.ChunkRows() != sm.ChunkRows || r.Flags() != sm.Flags {
		return fail(fmt.Errorf("dist: %s: geometry (rows=%d dim=%d chunkRows=%d flags=%#x) does not match manifest (rows=%d dim=%d chunkRows=%d flags=%#x)",
			sm.Path, r.Len(), r.Dim(), r.ChunkRows(), r.Flags(), sm.Rows, sm.Dim, sm.ChunkRows, sm.Flags))
	}
	if m.Hi > r.Len() {
		return fail(fmt.Errorf("dist: shard range [%d,%d) out of bounds for %d rows", m.Lo, m.Hi, r.Len()))
	}
	for _, ref := range sm.Chunks {
		got, err := r.ChunkRef(ref.Index)
		if err != nil {
			return fail(err)
		}
		if got != ref {
			return fail(fmt.Errorf("dist: %s: chunk %d is (rows=%d crc=%08x), manifest says (rows=%d crc=%08x) — stale or rewritten store file",
				sm.Path, ref.Index, got.Rows, got.CRC, ref.Rows, ref.CRC))
		}
	}
	return r.Shard(m.Lo, m.Hi), r, m.Hi - m.Lo, r.Dim(), nil
}

func openInlineShard(m *ShardManifest) (sgd.Samples, io.Closer, int, int, error) {
	p := m.Inline
	if p.Rows != m.Hi-m.Lo {
		return nil, nil, 0, 0, fmt.Errorf("dist: inline shard holds %d rows, manifest range [%d,%d) wants %d", p.Rows, m.Lo, m.Hi, m.Hi-m.Lo)
	}
	indptr, idx, val, y, err := p.decode()
	if err != nil {
		return nil, nil, 0, 0, err
	}
	base := inlineRows{dim: p.Dim, indptr: indptr, idx: idx, val: val, y: y}
	if p.Sparse {
		return &inlineSparseRows{inlineRows: base}, nil, p.Rows, p.Dim, nil
	}
	return &base, nil, p.Rows, p.Dim, nil
}

// inlineRows is the dense-tier reconstruction of an inline shard: rows
// scatter into a reused scratch buffer, and — deliberately — no
// AtSparse method, so the engine's kernel dispatch picks the dense
// kernel exactly as it does for the coordinator-side dense source.
type inlineRows struct {
	dim     int
	indptr  []int
	idx     []int
	val     []float64
	y       []float64
	scratch []float64
}

func (s *inlineRows) Len() int { return len(s.y) }
func (s *inlineRows) Dim() int { return s.dim }

func (s *inlineRows) At(i int) ([]float64, float64) {
	if s.scratch == nil {
		s.scratch = make([]float64, s.dim)
	}
	vec.Zero(s.scratch)
	for k := s.indptr[i]; k < s.indptr[i+1]; k++ {
		s.scratch[s.idx[k]] = s.val[k]
	}
	return s.scratch, s.y[i]
}

// Shard implements engine.Sharder: At scatters into a reused scratch,
// so concurrent readers — the intra-batch parallel kernel included —
// need views with scratch of their own. indptr entries are absolute
// offsets into idx/val, so a view only narrows indptr and y.
func (s *inlineRows) Shard(lo, hi int) sgd.Samples {
	if lo < 0 || hi < lo || hi > len(s.y) {
		panic(fmt.Sprintf("dist: inline shard view [%d,%d) out of bounds for %d rows", lo, hi, len(s.y)))
	}
	return &inlineRows{dim: s.dim, indptr: s.indptr[lo : hi+1], idx: s.idx, val: s.val, y: s.y[lo:hi]}
}

// inlineSparseRows is the sparse-tier reconstruction — a separate type
// so the sgd.SparseSamples assertion stays truthful about the tier the
// coordinator's source presented.
type inlineSparseRows struct {
	inlineRows
	row vec.Sparse
}

func (s *inlineSparseRows) AtSparse(i int) (*vec.Sparse, float64) {
	lo, hi := s.indptr[i], s.indptr[i+1]
	s.row.Idx = s.idx[lo:hi]
	s.row.Val = s.val[lo:hi]
	return &s.row, s.y[i]
}

// Shard implements engine.Sharder, preserving the sparse tier (the row
// header is per-view state, so each view is independently readable).
func (s *inlineSparseRows) Shard(lo, hi int) sgd.Samples {
	if lo < 0 || hi < lo || hi > len(s.y) {
		panic(fmt.Sprintf("dist: inline shard view [%d,%d) out of bounds for %d rows", lo, hi, len(s.y)))
	}
	return &inlineSparseRows{inlineRows: inlineRows{
		dim: s.dim, indptr: s.indptr[lo : hi+1], idx: s.idx, val: s.val, y: s.y[lo:hi],
	}}
}
