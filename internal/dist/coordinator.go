package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"boltondp/internal/engine"
	"boltondp/internal/vec"
)

// CoordinatorConfig tunes a coordinator's HTTP behavior and failure
// policy. The zero value is usable.
type CoordinatorConfig struct {
	// Client is the HTTP client worker calls go through (default
	// http.DefaultClient). Parity tests inject an httptest client here.
	Client *http.Client

	// EpochTimeout bounds each worker call (shard install, epoch run).
	// Zero means no per-call deadline beyond the run context's.
	EpochTimeout time.Duration

	// Retries is how many times a failed call is retried on the SAME
	// worker before the worker is declared dead and its shards are
	// reassigned (default 1).
	Retries int

	// Backoff is the base delay between retries, doubled per attempt
	// (default 10ms). The run context cancels a sleeping retry.
	Backoff time.Duration
}

func (c *CoordinatorConfig) withDefaults() CoordinatorConfig {
	out := *c
	if out.Client == nil {
		out.Client = http.DefaultClient
	}
	if out.Retries == 0 {
		out.Retries = 1
	}
	if out.Backoff == 0 {
		out.Backoff = 10 * time.Millisecond
	}
	return out
}

// Coordinator drives distributed sharded training runs over a pool of
// registered workers. It is safe for concurrent use, but a single
// Train call is the unit the parity contract is stated for.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	workers []*workerRef
}

type workerRef struct {
	url  string
	dead bool
}

// NewCoordinator returns a coordinator with no registered workers.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{cfg: cfg.withDefaults()}
}

// Register performs the handshake with the worker at baseURL (scheme +
// host[:port]) and adds it to the pool. The handshake validates the
// protocol version fail-closed, so a version-skewed worker is rejected
// at registration, not mid-run.
func (c *Coordinator) Register(ctx context.Context, baseURL string) error {
	baseURL = strings.TrimRight(baseURL, "/")
	if _, err := url.Parse(baseURL); err != nil || baseURL == "" {
		return fmt.Errorf("dist: worker url %q invalid", baseURL)
	}
	var h HealthResponse
	if err := c.get(ctx, baseURL+PathHealthz, &h); err != nil {
		return fmt.Errorf("dist: worker %s handshake: %w", baseURL, err)
	}
	if err := checkVersion(h.Version); err != nil {
		return fmt.Errorf("dist: worker %s: %w", baseURL, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.url == baseURL {
			w.dead = false // re-registration revives a dead worker
			return nil
		}
	}
	c.workers = append(c.workers, &workerRef{url: baseURL})
	return nil
}

// Workers returns the URLs of the live registered workers, in
// registration order.
func (c *Coordinator) Workers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.workers))
	for _, w := range c.workers {
		if !w.dead {
			out = append(out, w.url)
		}
	}
	return out
}

// RegistrationHandler returns the coordinator's own HTTP surface, for
// deployments where workers dial in (cmd/dpcoord):
//
//	POST /register {"url": "<worker base url>"} — register a worker
//	GET  /healthz                               — liveness + pool size
func (c *Coordinator) RegistrationHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/register", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			URL string `json:"url"`
		}
		if !decodeRequest(w, r, &req) {
			return
		}
		if err := c.Register(r.Context(), req.URL); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"workers": len(c.Workers())})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": len(c.Workers())})
	})
	return mux
}

// Job describes one distributed training run.
type Job struct {
	// ID names the run on the wire; every shard and epoch request
	// carries it and every response must echo it.
	ID string
	// Spec is the per-shard SGD parameterization, fully resolved (the
	// caller — internal/core — applies defaults and calibration before
	// building it).
	Spec TrainSpec
	// Shards is the shard count P. The parity target is the in-process
	// engine run with Strategy=Sharded, Workers=P.
	Shards int
	// Passes is the merge-epoch count k.
	Passes int
	// W0 is the starting model (nil means the origin).
	W0 []float64
}

// Result is the outcome of a distributed run — the distributed
// counterpart of engine.Result, bit-identical to it under the parity
// contract.
type Result struct {
	// W is the final merged model. NOT private: the caller perturbs it.
	W []float64
	// WAvg is the uniform iterate average (nil unless Spec.Average).
	WAvg []float64
	// ShardModels are the final per-shard models before the last merge.
	ShardModels [][]float64
	// Updates is the total update count across shards and epochs;
	// Passes counts merge epochs; Workers echoes the shard count.
	Updates int
	Passes  int
	Workers int
}

// Train runs one distributed sharded training job and returns the
// merged (noiseless) model. r plays exactly the role engine.Run's
// cfg.SGD.Rand plays for the in-process Sharded strategy, and is
// consumed identically: P = 1 draws one permutation of the whole
// dataset; P > 1 draws P shard seeds via Int63 in shard order. A caller
// drawing noise from r afterwards therefore sees the same values either
// way — the keystone of private-run parity.
//
// Failure policy: a failed worker call is retried on the same worker
// with backoff; a worker that exhausts its retries is marked dead and
// its shards are reassigned (install + deterministic epoch rewind) to
// the next live worker; when no live workers remain, or ctx is done,
// the run aborts fail-closed — no partial average is ever returned.
func (c *Coordinator) Train(ctx context.Context, src Source, job Job, r *rand.Rand) (*Result, error) {
	if r == nil {
		return nil, errors.New("dist: Train requires a *rand.Rand (the parity contract is stated against its state)")
	}
	if job.Passes < 1 {
		return nil, fmt.Errorf("dist: Passes must be >= 1, got %d", job.Passes)
	}
	if job.ID == "" {
		return nil, errors.New("dist: Job.ID is required")
	}
	if err := job.Spec.validate(); err != nil {
		return nil, err
	}
	plan, err := engine.PlanShards(src.Rows(), job.Shards)
	if err != nil {
		return nil, err
	}
	d := src.Dim()
	if job.W0 != nil && len(job.W0) != d {
		return nil, fmt.Errorf("dist: W0 has dim %d, want %d", len(job.W0), d)
	}
	if len(c.Workers()) == 0 {
		return nil, errors.New("dist: no live workers registered")
	}
	if plan.Workers == 1 {
		return c.trainSingle(ctx, src, job, r)
	}
	return c.trainSharded(ctx, src, job, plan, r)
}

// trainSingle is the P = 1 path: like the engine, it delegates to one
// continuous sequential run. The single permutation is drawn here, from
// the caller's generator — exactly the draw sgd.Run would have made —
// and shipped explicitly, so the worker consumes no randomness of its
// own and the iterate-average arithmetic is the sequential one.
func (c *Coordinator) trainSingle(ctx context.Context, src Source, job Job, r *rand.Rand) (*Result, error) {
	m := src.Rows()
	perm := r.Perm(m)
	man, err := src.manifest(0, 0, m)
	if err != nil {
		return nil, err
	}
	sh := &shard{index: 0, manifest: man, perm: perm}
	if err := c.assign(ctx, job, sh); err != nil {
		return nil, err
	}
	resp, err := c.epoch(ctx, job, sh, &EpochRequest{
		Version: ProtocolVersion, Job: job.ID, Shard: 0,
		Epoch: 0, Passes: job.Passes, T0: 0, W: encodeW0(job.W0, src.Dim()),
	})
	if err != nil {
		return nil, err
	}
	w, wavg, err := decodeModels(resp, src.Dim(), job.Spec.Average)
	if err != nil {
		return nil, err
	}
	return &Result{
		W: w, WAvg: wavg, ShardModels: [][]float64{w},
		Updates: resp.Updates, Passes: resp.Passes, Workers: 1,
	}, nil
}

// shard is the coordinator's bookkeeping for one shard: its manifest,
// its randomness (seed or delegated permutation), and the worker
// currently holding it.
type shard struct {
	index    int
	manifest *ShardManifest
	seed     int64
	perm     []int
	worker   *workerRef
}

func (c *Coordinator) trainSharded(ctx context.Context, src Source, job Job, plan *engine.Plan, r *rand.Rand) (*Result, error) {
	P := plan.Workers
	d := src.Dim()

	// Seeds are drawn in shard order before any network work — the
	// exact Int63 sequence engine.runSharded consumes to seed its
	// per-worker generators, so r's post-draw state matches.
	shards := make([]*shard, P)
	for i := 0; i < P; i++ {
		man, err := src.manifest(i, plan.Bounds[i][0], plan.Bounds[i][1])
		if err != nil {
			return nil, err
		}
		shards[i] = &shard{index: i, manifest: man, seed: r.Int63()}
	}

	// Install every shard on its initial worker (round-robin over the
	// live pool), in parallel.
	var wg sync.WaitGroup
	errs := make([]error, P)
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.assign(ctx, job, shards[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	w := make([]float64, d)
	if job.W0 != nil {
		copy(w, job.W0)
	}
	var wsum, epochAvg []float64
	if job.Spec.Average {
		wsum = make([]float64, d)
		epochAvg = make([]float64, d)
	}
	models := make([][]float64, P)
	avgs := make([][]float64, P)
	counts := make([]int, P)
	offsets := make([]int, P)

	totalUpdates := 0
	passes := 0
	for epoch := 0; epoch < job.Passes; epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wv := EncodeVec(w)
		for i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := c.epoch(ctx, job, shards[i], &EpochRequest{
					Version: ProtocolVersion, Job: job.ID, Shard: i,
					Epoch: epoch, Passes: 1, T0: offsets[i], W: wv,
				})
				if err != nil {
					errs[i] = err
					return
				}
				models[i], avgs[i], errs[i] = decodeModels(resp, d, job.Spec.Average)
				counts[i] = resp.Updates
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// Merge — the same arithmetic, in the same order, as the
		// in-process sharded executor: uniform model averaging, then the
		// update-weighted accumulation of the per-shard iterate averages.
		vec.Mean(w, models...)
		epochUpdates := 0
		for i := range counts {
			offsets[i] += counts[i]
			epochUpdates += counts[i]
		}
		totalUpdates += epochUpdates
		if job.Spec.Average {
			vec.Mean(epochAvg, avgs...)
			vec.Axpy(wsum, float64(epochUpdates), epochAvg)
		}
		passes++
	}

	out := &Result{
		W: w, ShardModels: models,
		Updates: totalUpdates, Passes: passes, Workers: P,
	}
	if job.Spec.Average && totalUpdates > 0 {
		vec.Scale(wsum, 1/float64(totalUpdates))
		out.WAvg = wsum
	}
	return out, nil
}

// encodeW0 encodes the starting model (origin when nil).
func encodeW0(w0 []float64, d int) Vec {
	if w0 == nil {
		w0 = make([]float64, d)
	}
	return EncodeVec(w0)
}

// decodeModels unpacks and validates an epoch response's model
// vector(s).
func decodeModels(resp *EpochResponse, d int, average bool) (w, wavg []float64, err error) {
	w, err = resp.W.Decode()
	if err != nil {
		return nil, nil, err
	}
	if len(w) != d {
		return nil, nil, fmt.Errorf("dist: shard %d returned a model of dim %d, want %d", resp.Shard, len(w), d)
	}
	if average {
		if resp.WAvg == nil {
			return nil, nil, fmt.Errorf("dist: shard %d returned no iterate average for an averaging run", resp.Shard)
		}
		wavg, err = resp.WAvg.Decode()
		if err != nil {
			return nil, nil, err
		}
		if len(wavg) != d {
			return nil, nil, fmt.Errorf("dist: shard %d returned an iterate average of dim %d, want %d", resp.Shard, len(wavg), d)
		}
	}
	return w, wavg, nil
}

// ---------------------------------------------------------------------
// Worker calls: assignment, epochs, retry and reassignment.
// ---------------------------------------------------------------------

// errTerminal wraps failures retrying cannot fix (the worker parsed the
// request and rejected it, or its response failed validation in a way a
// replay would repeat).
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// assign installs sh on a live worker, moving to the next live worker
// on failure. On success sh.worker holds the assignment.
func (c *Coordinator) assign(ctx context.Context, job Job, sh *shard) error {
	req := &ShardRequest{
		Version: ProtocolVersion, Job: job.ID, Manifest: *sh.manifest,
		Spec: job.Spec, Seed: sh.seed, Perm: sh.perm,
	}
	for {
		wr := c.pick(sh.index)
		if wr == nil {
			return fmt.Errorf("dist: job %s: no live workers left to hold shard %d — aborting fail-closed", job.ID, sh.index)
		}
		var resp ShardResponse
		err := c.callWorker(ctx, wr, PathShard, req, &resp)
		if err == nil {
			if resp.Job != job.ID || resp.Shard != sh.index {
				err = &terminalError{fmt.Errorf("dist: worker %s acknowledged (job=%q shard=%d), want (job=%q shard=%d)",
					wr.url, resp.Job, resp.Shard, job.ID, sh.index)}
			} else if err2 := checkVersion(resp.Version); err2 != nil {
				err = &terminalError{err2}
			}
		}
		if err == nil {
			sh.worker = wr
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var term *terminalError
		if errors.As(err, &term) {
			return term.err
		}
		c.markDead(wr)
	}
}

// epoch runs one epoch request against the shard's worker, retrying on
// the same worker, then reassigning the shard to the next live worker
// (whose deterministic rewind reproduces the lost state exactly). All
// response echoes are validated fail-closed: a stale or misrouted model
// never enters an average.
func (c *Coordinator) epoch(ctx context.Context, job Job, sh *shard, req *EpochRequest) (*EpochResponse, error) {
	for {
		if sh.worker == nil || c.isDead(sh.worker) {
			if err := c.assign(ctx, job, sh); err != nil {
				return nil, err
			}
		}
		var resp EpochResponse
		err := c.callWorker(ctx, sh.worker, PathEpoch, req, &resp)
		if err == nil {
			if resp.Job != req.Job || resp.Shard != req.Shard || resp.Epoch != req.Epoch {
				// A wrong echo is the stale-model hazard — reject the
				// response; the retry path replays the request, which the
				// worker-side rewind makes idempotent.
				err = fmt.Errorf("dist: worker %s answered (job=%q shard=%d epoch=%d), want (job=%q shard=%d epoch=%d) — stale response rejected",
					sh.worker.url, resp.Job, resp.Shard, resp.Epoch, req.Job, req.Shard, req.Epoch)
			} else if err2 := checkVersion(resp.Version); err2 != nil {
				err = &terminalError{err2}
			}
		}
		if err == nil {
			return &resp, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var term *terminalError
		if errors.As(err, &term) {
			return nil, term.err
		}
		// This worker is out of retries: declare it dead and let the
		// loop reassign the shard (re-install + rewind) elsewhere.
		c.markDead(sh.worker)
		sh.worker = nil
	}
}

// pick returns a live worker for shard index (round-robin over the live
// pool), or nil when none remain.
func (c *Coordinator) pick(index int) *workerRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := make([]*workerRef, 0, len(c.workers))
	for _, w := range c.workers {
		if !w.dead {
			live = append(live, w)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return live[index%len(live)]
}

func (c *Coordinator) markDead(w *workerRef) {
	c.mu.Lock()
	w.dead = true
	c.mu.Unlock()
}

func (c *Coordinator) isDead(w *workerRef) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return w.dead
}

// callWorker POSTs req to the worker with per-call deadline, strict
// response decoding, and same-worker retries with doubling backoff.
// 4xx responses are terminal (the worker understood and refused);
// transport errors and 5xx responses are transient.
func (c *Coordinator) callWorker(ctx context.Context, wr *workerRef, path string, in, out any) error {
	var lastErr error
	backoff := c.cfg.Backoff
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
			backoff *= 2
		}
		lastErr = c.post(ctx, wr.url+path, in, out)
		if lastErr == nil {
			return nil
		}
		var term *terminalError
		if errors.As(lastErr, &term) || ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}

func (c *Coordinator) post(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return &terminalError{fmt.Errorf("dist: encoding request: %w", err)}
	}
	if c.cfg.EpochTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.EpochTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return &terminalError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Coordinator) get(ctx context.Context, url string, out any) error {
	if c.cfg.EpochTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.EpochTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return &terminalError{err}
	}
	return c.do(req, out)
}

func (c *Coordinator) do(req *http.Request, out any) error {
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e)
		err := fmt.Errorf("dist: %s %s: http %d: %s", req.Method, req.URL, resp.StatusCode, e.Error)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return &terminalError{err}
		}
		return err
	}
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("dist: decoding response from %s: %w", req.URL, err)
	}
	return nil
}
