package dist

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"boltondp/internal/store"
)

// updateGolden regenerates the committed wire-protocol fixtures:
//
//	go test ./internal/dist -run Golden -update-golden
//
// Only do this for a deliberate, reviewed protocol change — and bump
// ProtocolVersion when the change is not backward compatible: a silent
// drift inside one version would let a coordinator and a worker
// disagree about the bytes between them.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden wire fixtures")

// goldenMessages pins one fully-populated exemplar of every wire
// message, byte-for-byte. Vector payloads use dyadic rationals so the
// base64/CRC forms are stable and human-checkable.
func goldenMessages() []struct {
	file string
	msg  any
} {
	wv := EncodeVec([]float64{0.5, -1.25, 0, 3.5})
	av := EncodeVec([]float64{0.25, 0.25, -0.5, 1})
	// A real 2-row CSR block (rows {0.5·e0 − 0.3125·e2, 3·e3}, labels
	// +1/−1) in the store payload layout, so the fixture's base64 and
	// CRC are honest encoder output, not invented bytes.
	payload := encodeCSRPayload([]int{0, 2, 3}, []int{0, 2, 3}, []float64{0.5, -0.3125, 3}, []float64{1, -1})
	return []struct {
		file string
		msg  any
	}{
		{
			file: "shard_request_store.golden.json",
			msg: &ShardRequest{
				Version: ProtocolVersion,
				Job:     "train-logistic-1",
				Manifest: ShardManifest{
					Shard: 1, Lo: 100, Hi: 200,
					Store: &StoreManifest{
						Path: "/data/train.bolt", Rows: 400, Dim: 4, ChunkRows: 64, Flags: 1,
						Chunks: []store.ChunkRef{
							{Index: 1, Rows: 64, CRC: 0xdeadbeef},
							{Index: 2, Rows: 64, CRC: 0x01020304},
							{Index: 3, Rows: 64, CRC: 0xcafef00d},
						},
					},
				},
				Spec: TrainSpec{
					Loss:    LossSpec{Kind: LossLogistic, Lambda: 0.001, R: 1000},
					Step:    StepSpec{Kind: StepStronglyConvex, Beta: 0.25, Gamma: 0.001},
					Batch:   50,
					Radius:  1000,
					Average: true,
				},
				Seed: 4242424242,
			},
		},
		{
			file: "shard_request_inline.golden.json",
			msg: &ShardRequest{
				Version: ProtocolVersion,
				Job:     "train-huber-2",
				Manifest: ShardManifest{
					Shard: 0, Lo: 0, Hi: 2,
					Inline: &InlinePayload{
						Rows: 2, NNZ: 3, Dim: 4, Sparse: true,
						B64: base64.StdEncoding.EncodeToString(payload),
						CRC: crc32.ChecksumIEEE(payload),
					},
				},
				Spec: TrainSpec{
					Loss:  LossSpec{Kind: LossHuber, Lambda: 0.0001, H: 0.1, R: 10000},
					Step:  StepSpec{Kind: StepSqrt, Beta: 0.25, M: 100, C: 0.5},
					Batch: 1,
				},
				Seed: 7,
				Perm: []int{1, 0},
			},
		},
		{
			file: "shard_response.golden.json",
			msg: &ShardResponse{
				Version: ProtocolVersion, Job: "train-logistic-1",
				Shard: 1, Rows: 100, Dim: 4,
			},
		},
		{
			file: "epoch_request.golden.json",
			msg: &EpochRequest{
				Version: ProtocolVersion, Job: "train-logistic-1",
				Shard: 1, Epoch: 2, Passes: 1, T0: 200, W: wv,
			},
		},
		{
			file: "epoch_response.golden.json",
			msg: &EpochResponse{
				Version: ProtocolVersion, Job: "train-logistic-1",
				Shard: 1, Epoch: 2, W: wv, WAvg: &av, Updates: 100, Passes: 1,
			},
		},
		{
			file: "health_response.golden.json",
			msg: &HealthResponse{
				Version: ProtocolVersion, Status: "ok", Jobs: 1, Shards: 2,
			},
		},
		{
			file: "error_response.golden.json",
			msg:  &ErrorResponse{Error: "dist: vector checksum mismatch (0000002a != 0000002b)"},
		},
	}
}

// TestGoldenWireMessages pins the encoded form of every wire message
// byte-for-byte against the committed fixtures — the same discipline
// the eval save-format goldens apply to model files.
func TestGoldenWireMessages(t *testing.T) {
	for _, tc := range goldenMessages() {
		golden := filepath.Join("testdata", tc.file)
		got, err := json.MarshalIndent(tc.msg, "", "  ")
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		got = append(got, '\n')
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s", golden)
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update-golden)", tc.file, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: wire encoding drifted from the committed fixture.\ngot:\n%s\nwant:\n%s\n"+
				"The protocol changed — if intentional, rerun with -update-golden and bump "+
				"ProtocolVersion unless the change is backward compatible.", tc.file, got, want)
		}
	}
}

// TestGoldenWireMessagesLoad proves today's decoder still accepts the
// committed fixtures and recovers the exact original message (decoder
// compatibility is independent of encoder stability).
func TestGoldenWireMessagesLoad(t *testing.T) {
	for _, tc := range goldenMessages() {
		raw, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update-golden)", tc.file, err)
		}
		into := reflect.New(reflect.TypeOf(tc.msg).Elem()).Interface()
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(into); err != nil {
			t.Fatalf("%s: decoding committed fixture: %v", tc.file, err)
		}
		if !reflect.DeepEqual(into, tc.msg) {
			t.Errorf("%s: fixture decoded to\n%+v\nwant\n%+v", tc.file, into, tc.msg)
		}
	}
}
