package bismarck

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/baselines"
	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/rng"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Driver is the front-end controller of Figure 1(A) (Bismarck's Python
// controller): it issues one aggregate "query" (a full table scan
// through the UDA) per epoch, feeds the previous epoch's model back via
// Initialize, and applies the convergence test.
type Driver struct {
	Table  *Table
	Agg    Agg
	Epochs int
	// Tol, when positive and the aggregate returns a []float64 model,
	// stops early once the model moves less than Tol in L2 between
	// epochs.
	Tol float64
}

// Run executes up to Epochs scans and returns the final aggregate value
// and the number of epochs actually run.
func (d *Driver) Run() (any, int, error) {
	if d.Table == nil || d.Agg == nil {
		return nil, 0, errors.New("bismarck: Driver needs a Table and an Agg")
	}
	if d.Epochs < 1 {
		return nil, 0, fmt.Errorf("bismarck: Epochs = %d", d.Epochs)
	}
	var prev any
	var prevW []float64
	epochs := 0
	for e := 0; e < d.Epochs; e++ {
		d.Agg.Initialize(prev)
		if err := d.Table.Scan(func(x []float64, y float64) error {
			d.Agg.Transition(x, y)
			return nil
		}); err != nil {
			return nil, epochs, err
		}
		prev = d.Agg.Terminate()
		epochs++
		if w, ok := prev.([]float64); ok && d.Tol > 0 {
			if prevW != nil && vec.Dist(w, prevW) < d.Tol {
				break
			}
			prevW = vec.Copy(w)
		}
	}
	return prev, epochs, nil
}

// Algorithm selects which private SGD variant TrainUDA runs inside the
// UDA architecture.
type Algorithm int

const (
	// Noiseless is plain Bismarck SGD.
	Noiseless Algorithm = iota
	// OutputPerturb is the paper's bolt-on approach: unmodified UDA,
	// noise added once by the driver (integration point B).
	OutputPerturb
	// AlgSCS13 injects per-batch noise inside the transition function
	// (integration point C).
	AlgSCS13
	// AlgBST14 injects the extended-BST14 per-batch Gaussian noise
	// inside the transition function (integration point C).
	AlgBST14
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Noiseless:
		return "noiseless"
	case OutputPerturb:
		return "ours"
	case AlgSCS13:
		return "scs13"
	case AlgBST14:
		return "bst14"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// TrainConfig configures TrainUDA.
type TrainConfig struct {
	Algorithm Algorithm
	Budget    dp.Budget // ignored by Noiseless
	Passes    int       // epochs k (default 1)
	Batch     int       // mini-batch size b (default 1)
	Radius    float64   // projection radius (required for AlgBST14)
	Tol       float64   // optional convergence threshold (model L2 move)
	// PaperBatchSensitivity mirrors core.Options.PaperBatchSensitivity:
	// calibrate the strongly convex OutputPerturb noise to the paper's
	// 2L/(γmb) instead of the sound 2L/(γm). For reproducing the
	// paper's figures only.
	PaperBatchSensitivity bool
	// Shuffle controls whether the table is materialized in random
	// order first (Figure 1's Shuffle step). Defaults to true; tests
	// may disable it for determinism.
	NoShuffle bool
	Rand      *rand.Rand
}

// TrainResult reports a TrainUDA run.
type TrainResult struct {
	W           []float64
	Epochs      int
	Updates     int
	NoiseDraws  int
	Sensitivity float64 // OutputPerturb only
	Stats       PoolStats
}

// TrainUDA trains a model over the table through the UDA architecture,
// reproducing the four integrations of Figure 1 and §4.2. It is the
// in-RDBMS counterpart of core.Train / the baselines package and the
// engine behind the runtime and scalability experiments (Figures 2
// and 5).
func TrainUDA(t *Table, f loss.Function, cfg TrainConfig) (*TrainResult, error) {
	if cfg.Rand == nil {
		return nil, errors.New("bismarck: TrainConfig.Rand is required")
	}
	if t.Len() == 0 {
		return nil, errors.New("bismarck: empty table")
	}
	if cfg.Passes == 0 {
		cfg.Passes = 1
	}
	if cfg.Batch == 0 {
		cfg.Batch = 1
	}
	if cfg.Algorithm != Noiseless {
		if err := cfg.Budget.Validate(); err != nil {
			return nil, err
		}
	}
	m := t.Len()
	d := t.Dim()
	p := f.Params()
	if cfg.Batch > m {
		cfg.Batch = m // mirror the engine's clamp for sensitivity
	}

	// Step sizes per Table 4.
	var step sgd.Schedule
	var sens float64
	switch cfg.Algorithm {
	case Noiseless:
		if p.StronglyConvex() {
			step = sgd.InvT(p.Gamma)
		} else {
			step = sgd.Constant(1 / math.Sqrt(float64(m)))
		}
	case OutputPerturb:
		if p.StronglyConvex() {
			step = sgd.StronglyConvexPaper(p.Beta, p.Gamma)
			if cfg.PaperBatchSensitivity {
				sens = dp.SensitivityStronglyConvexPaperBatch(p.L, p.Gamma, m, cfg.Batch)
			} else {
				sens = dp.SensitivityStronglyConvex(p.L, p.Gamma, m)
			}
		} else {
			eta := math.Min(1/math.Sqrt(float64(m)), 2/p.Beta)
			step = sgd.Constant(eta)
			sens = dp.SensitivityConvexConstant(p.L, eta, cfg.Passes, cfg.Batch)
			if cfg.Tol > 0 {
				return nil, errors.New("bismarck: convergence-based stopping is not private for the convex bolt-on algorithm")
			}
		}
	case AlgSCS13, AlgBST14:
		step = sgd.InvSqrtT(1)
		if cfg.Algorithm == AlgBST14 {
			if cfg.Budget.Pure() {
				return nil, errors.New("bismarck: BST14 requires δ > 0")
			}
			if cfg.Radius <= 0 {
				return nil, errors.New("bismarck: BST14 requires a positive Radius")
			}
			if p.StronglyConvex() {
				step = sgd.InvT(p.Gamma)
			} else {
				_, sigma := baselines.BST14NoiseParams(cfg.Budget.Epsilon, cfg.Budget.Delta, cfg.Passes, m, cfg.Batch)
				g := math.Sqrt(float64(d)*sigma*sigma + float64(cfg.Batch*cfg.Batch)*p.L*p.L)
				step = bst14ConvexStep{r: cfg.Radius, g: g}
			}
		}
	default:
		return nil, fmt.Errorf("bismarck: unknown algorithm %v", cfg.Algorithm)
	}

	agg := NewSGDAgg(d, f, step, cfg.Batch, cfg.Radius)
	agg.SetEpochRows(m)
	draws := 0
	noise := make([]float64, d)
	switch cfg.Algorithm {
	case AlgSCS13:
		perPass := cfg.Budget.Split(cfg.Passes)
		sensIter := 2 * p.L / float64(cfg.Batch)
		agg.NoiseInject = func(tt int, grad []float64) {
			if perPass.Pure() {
				rng.GammaSphere(cfg.Rand, noise, sensIter, perPass.Epsilon)
			} else {
				sigma := rng.GaussianSigma(sensIter, perPass.Epsilon, perPass.Delta)
				rng.GaussianVec(cfg.Rand, noise, sigma)
			}
			draws++
			vec.Axpy(grad, 1, noise)
		}
	case AlgBST14:
		_, sigma := baselines.BST14NoiseParams(cfg.Budget.Epsilon, cfg.Budget.Delta, cfg.Passes, m, cfg.Batch)
		agg.NoiseInject = func(tt int, grad []float64) {
			rng.GaussianVec(cfg.Rand, noise, sigma)
			draws++
			vec.Axpy(grad, 1, noise)
		}
	}

	if !cfg.NoShuffle {
		if err := t.Shuffle(cfg.Rand); err != nil {
			return nil, err
		}
	}

	drv := &Driver{Table: t, Agg: agg, Epochs: cfg.Passes, Tol: cfg.Tol}
	out, epochs, err := drv.Run()
	if err != nil {
		return nil, err
	}
	w := out.([]float64)

	// Integration point (B): the bolt-on noise — the only private step
	// our algorithm needs, roughly the "10 lines of Python" of §4.2.
	if cfg.Algorithm == OutputPerturb {
		w, err = cfg.Budget.Perturb(cfg.Rand, w, sens)
		if err != nil {
			return nil, err
		}
		draws++
	}

	return &TrainResult{
		W: w, Epochs: epochs, Updates: agg.Updates(),
		NoiseDraws: draws, Sensitivity: sens, Stats: t.Stats(),
	}, nil
}

// bst14ConvexStep is η_t = 2R/(G√t) (Algorithm 4, line 12).
type bst14ConvexStep struct{ r, g float64 }

func (s bst14ConvexStep) Name() string { return fmt.Sprintf("2R/(G√t), R=%g G=%g", s.r, s.g) }
func (s bst14ConvexStep) Eta(t int) float64 {
	return 2 * s.r / (s.g * math.Sqrt(float64(t)))
}
