package bismarck

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"sync"
)

// PoolStats counts buffer-pool traffic. Reads is the number of pages
// fetched from the backing file (the I/O cost that dominates the
// disk-based scalability runs of Figure 2(b)).
type PoolStats struct {
	Hits   int
	Misses int
	Reads  int
}

// bufferPool is a fixed-capacity LRU cache of read-only pages backed by
// a file. It is the minimal analogue of PostgreSQL's shared buffers:
// when every page fits, scans are CPU-bound ("in-memory"); when the
// table exceeds the capacity, scans pay real file I/O ("disk-based").
//
// The pool is safe for concurrent readers (shared-nothing parallel
// training scans segments of one table from several goroutines). Pages
// are immutable once read, so an evicted page's buffer stays valid for
// any caller still holding it.
type bufferPool struct {
	mu       sync.Mutex
	file     *os.File
	capacity int
	pages    map[int]*list.Element
	lru      *list.List // front = most recent
	stats    PoolStats
}

type poolEntry struct {
	id   int
	data []byte
}

func newBufferPool(file *os.File, capacity int) *bufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &bufferPool{
		file:     file,
		capacity: capacity,
		pages:    make(map[int]*list.Element),
		lru:      list.New(),
	}
}

// get returns page id, reading it from the file on a miss and evicting
// the least recently used page when the pool is full.
func (p *bufferPool) get(id int) ([]byte, error) {
	p.mu.Lock()
	if el, ok := p.pages[id]; ok {
		p.stats.Hits++
		p.lru.MoveToFront(el)
		data := el.Value.(*poolEntry).data
		p.mu.Unlock()
		return data, nil
	}
	p.stats.Misses++
	p.mu.Unlock()

	// Read outside the lock: concurrent misses may read the same page
	// twice, which only affects the stats, never correctness.
	buf := make([]byte, PageSize)
	if _, err := p.file.ReadAt(buf, int64(id)*PageSize); err != nil && err != io.EOF {
		return nil, fmt.Errorf("bismarck: read page %d: %w", id, err)
	}

	p.mu.Lock()
	p.stats.Reads++
	if el, ok := p.pages[id]; ok {
		// Lost the race; keep the copy that is already cached.
		data := el.Value.(*poolEntry).data
		p.mu.Unlock()
		return data, nil
	}
	if p.lru.Len() >= p.capacity {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.pages, oldest.Value.(*poolEntry).id)
	}
	p.pages[id] = p.lru.PushFront(&poolEntry{id: id, data: buf})
	p.mu.Unlock()
	return buf, nil
}

// invalidate drops all cached pages (used after the table is rewritten
// by Shuffle).
func (p *bufferPool) invalidate() {
	p.mu.Lock()
	p.pages = make(map[int]*list.Element)
	p.lru.Init()
	p.mu.Unlock()
}

// snapshotStats returns a copy of the counters.
func (p *bufferPool) snapshotStats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
