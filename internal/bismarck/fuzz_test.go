package bismarck

import (
	"math"
	"testing"
)

// Row encode/decode must round-trip every finite float pattern,
// including negative zero, subnormals and extreme exponents.
func FuzzRowCodec(f *testing.F) {
	f.Add(1.0, -2.5, 0.0)
	f.Add(math.Copysign(0, -1), math.SmallestNonzeroFloat64, math.MaxFloat64)
	f.Add(1e-300, -1e300, 42.0)
	f.Fuzz(func(t *testing.T, a, b, y float64) {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(y) {
			// NaN != NaN; bit-level round-tripping still works but the
			// equality check below would not. Skip the comparison.
			t.Skip()
		}
		x := []float64{a, b}
		buf := make([]byte, rowBytes(2))
		encodeRow(buf, 0, x, y)
		got := make([]float64, 2)
		gy := decodeRow(buf, 0, got)
		if got[0] != a || got[1] != b || gy != y {
			t.Fatalf("round trip (%v,%v,%v) -> (%v,%v,%v)", a, b, y, got[0], got[1], gy)
		}
	})
}

// Any insert/read sequence over a memory table must preserve rows in
// order, whatever the dimension and row count.
func FuzzTableInsertRead(f *testing.F) {
	f.Add(5, 3, int64(1))
	f.Add(1, 1, int64(2))
	f.Add(300, 40, int64(3))
	f.Fuzz(func(t *testing.T, m, d int, seed int64) {
		if m < 1 || m > 500 || d < 1 || d > 100 {
			t.Skip()
		}
		tab := NewMemTable("fuzz", d)
		vals := make([]float64, m)
		x := make([]float64, d)
		for i := 0; i < m; i++ {
			v := float64(seed%97) + float64(i)
			vals[i] = v
			x[0] = v
			if err := tab.Insert(x, -v); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < m; i++ {
			gx, gy := tab.At(i)
			if gx[0] != vals[i] || gy != -vals[i] {
				t.Fatalf("row %d: got (%v,%v), want (%v,%v)", i, gx[0], gy, vals[i], -vals[i])
			}
		}
	})
}
