package bismarck

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func TestRowCodecRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(20)
		x := make([]float64, d)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		y := r.NormFloat64()
		buf := make([]byte, rowBytes(d)+16)
		encodeRow(buf, 8, x, y)
		got := make([]float64, d)
		gy := decodeRow(buf, 8, got)
		return gy == y && vec.Equal(got, x, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRowsPerPage(t *testing.T) {
	if got := rowsPerPage(50); got != PageSize/(51*8) {
		t.Errorf("rowsPerPage(50) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized row did not panic")
		}
	}()
	rowsPerPage(2000)
}

func fillTable(t *testing.T, tab *Table, m, d int, seed int64) ([][]float64, []float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	xs := make([][]float64, m)
	ys := make([]float64, m)
	for i := 0; i < m; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		xs[i] = x
		ys[i] = math.Copysign(1, r.NormFloat64())
		if err := tab.Insert(x, ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	return xs, ys
}

func TestMemTableRoundTrip(t *testing.T) {
	tab := NewMemTable("t", 7)
	xs, ys := fillTable(t, tab, 301, 7, 1) // deliberately not page-aligned
	if tab.Len() != 301 || tab.Dim() != 7 {
		t.Fatalf("table shape %dx%d", tab.Len(), tab.Dim())
	}
	for i := 0; i < 301; i++ {
		x, y := tab.At(i)
		if !vec.Equal(x, xs[i], 0) || y != ys[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
	// Scan visits all rows in order.
	i := 0
	err := tab.Scan(func(x []float64, y float64) error {
		if !vec.Equal(x, xs[i], 0) || y != ys[i] {
			t.Fatalf("scan row %d mismatch", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 301 {
		t.Fatalf("scan visited %d rows", i)
	}
}

func TestDiskTableRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	tab, err := CreateDiskTable(path, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Remove()
	xs, ys := fillTable(t, tab, 500, 5, 2)
	for _, i := range []int{0, 1, 250, 499} {
		x, y := tab.At(i)
		if !vec.Equal(x, xs[i], 0) || y != ys[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestDiskTableSmallPoolEvicts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	// 2-page pool over a many-page table: repeated scans must re-read.
	tab, err := CreateDiskTable(path, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Remove()
	fillTable(t, tab, 1000, 50, 3)
	pages := tab.NumPages()
	if pages < 10 {
		t.Fatalf("expected many pages, got %d", pages)
	}
	for s := 0; s < 3; s++ {
		if err := tab.Scan(func([]float64, float64) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := tab.Stats()
	if st.Reads < 3*pages-2 {
		t.Errorf("expected ~%d page reads with a tiny pool, got %d", 3*pages, st.Reads)
	}
}

func TestDiskTableLargePoolCaches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	tab, err := CreateDiskTable(path, 50, 10000)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Remove()
	fillTable(t, tab, 1000, 50, 4)
	pages := tab.NumPages()
	for s := 0; s < 3; s++ {
		if err := tab.Scan(func([]float64, float64) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := tab.Stats()
	if st.Reads != pages {
		t.Errorf("warm pool should read each page once, got %d reads for %d pages", st.Reads, pages)
	}
	if st.Hits < 2*pages {
		t.Errorf("expected ≥ %d hits, got %d", 2*pages, st.Hits)
	}
}

func TestInsertDimMismatch(t *testing.T) {
	tab := NewMemTable("t", 3)
	if err := tab.Insert([]float64{1, 2}, 1); err == nil {
		t.Error("wrong-dimension insert accepted")
	}
}

func sortedMultiset(tab *Table) map[[2]float64]int {
	out := map[[2]float64]int{}
	tab.Scan(func(x []float64, y float64) error {
		out[[2]float64{x[0], y}]++
		return nil
	})
	return out
}

func TestShufflePreservesRowsMem(t *testing.T) {
	tab := NewMemTable("t", 4)
	fillTable(t, tab, 97, 4, 5)
	before := sortedMultiset(tab)
	if err := tab.Shuffle(rand.New(rand.NewSource(6))); err != nil {
		t.Fatal(err)
	}
	after := sortedMultiset(tab)
	if len(before) != len(after) {
		t.Fatalf("multiset size changed: %d -> %d", len(before), len(after))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("row %v count changed %d -> %d", k, v, after[k])
		}
	}
	if tab.Len() != 97 {
		t.Errorf("Len changed to %d", tab.Len())
	}
}

func TestShufflePreservesRowsDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	tab, err := CreateDiskTable(path, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Remove()
	fillTable(t, tab, 97, 4, 7)
	before := sortedMultiset(tab)
	if err := tab.Shuffle(rand.New(rand.NewSource(8))); err != nil {
		t.Fatal(err)
	}
	after := sortedMultiset(tab)
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("disk shuffle lost row %v", k)
		}
	}
}

func TestShuffleActuallyPermutes(t *testing.T) {
	tab := NewMemTable("t", 1)
	for i := 0; i < 100; i++ {
		tab.Insert([]float64{float64(i)}, 1)
	}
	tab.Shuffle(rand.New(rand.NewSource(9)))
	moved := 0
	for i := 0; i < 100; i++ {
		x, _ := tab.At(i)
		if x[0] != float64(i) {
			moved++
		}
	}
	if moved < 50 {
		t.Errorf("only %d/100 rows moved; not a real shuffle", moved)
	}
}

func TestAvgAgg(t *testing.T) {
	tab := NewMemTable("t", 2)
	vals := []float64{1, 2, 3, 4}
	for _, v := range vals {
		tab.Insert([]float64{0, 0}, v)
	}
	drv := &Driver{Table: tab, Agg: &AvgAgg{}, Epochs: 1}
	out, epochs, err := drv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 1 {
		t.Errorf("epochs = %d", epochs)
	}
	if got := out.(float64); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("AVG = %v, want 2.5", got)
	}
	// Empty table average is 0 by convention.
	a := &AvgAgg{}
	a.Initialize(nil)
	if a.Terminate().(float64) != 0 {
		t.Error("empty AVG should be 0")
	}
}

// The equivalence at the heart of the architecture: one driver epoch
// over an unshuffled table is exactly one pass of the sgd engine with
// the identity permutation. The UDA path and the library path must
// produce bitwise-identical models.
func TestSGDAggMatchesEngine(t *testing.T) {
	const m, d, k, b = 157, 6, 3, 10
	tab := NewMemTable("t", d)
	xs, ys := fillTable(t, tab, m, d, 10)
	for i := range xs {
		vec.Normalize(xs[i])
	}
	// Rebuild the table with normalized rows.
	tab = NewMemTable("t", d)
	for i := range xs {
		tab.Insert(xs[i], ys[i])
	}
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	step := sgd.StronglyConvexPaper(p.Beta, p.Gamma)

	agg := NewSGDAgg(d, f, step, b, 1e2)
	agg.SetEpochRows(m) // merge the 157 mod 10 remainder like the engine
	drv := &Driver{Table: tab, Agg: agg, Epochs: k}
	out, _, err := drv.Run()
	if err != nil {
		t.Fatal(err)
	}
	udaW := out.([]float64)

	ident := make([]int, m)
	for i := range ident {
		ident[i] = i
	}
	res, err := sgd.Run(&sgd.SliceSamples{X: xs, Y: ys}, sgd.Config{
		Loss: f, Step: step, Passes: k, Batch: b, Radius: 1e2, Perm: ident,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(udaW, res.W, 1e-12) {
		t.Errorf("UDA model %v != engine model %v", udaW[:3], res.W[:3])
	}
	if agg.Updates() != res.Updates {
		t.Errorf("UDA updates %d != engine %d", agg.Updates(), res.Updates)
	}
}

func TestDriverConvergenceTol(t *testing.T) {
	tab := NewMemTable("t", 3)
	fillTable(t, tab, 200, 3, 11)
	f := loss.NewLogistic(1e-1, 0)
	p := f.Params()
	agg := NewSGDAgg(3, f, sgd.StronglyConvexPaper(p.Beta, p.Gamma), 10, 10)
	drv := &Driver{Table: tab, Agg: agg, Epochs: 500, Tol: 1e-6}
	_, epochs, err := drv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if epochs >= 500 {
		t.Error("convergence test never triggered")
	}
}

func TestDriverValidation(t *testing.T) {
	if _, _, err := (&Driver{}).Run(); err == nil {
		t.Error("nil table/agg accepted")
	}
	tab := NewMemTable("t", 1)
	tab.Insert([]float64{1}, 1)
	if _, _, err := (&Driver{Table: tab, Agg: &AvgAgg{}}).Run(); err == nil {
		t.Error("zero epochs accepted")
	}
}

func TestTrainUDAAllAlgorithms(t *testing.T) {
	f := loss.NewLogistic(1e-2, 0)
	for _, alg := range []Algorithm{Noiseless, OutputPerturb, AlgSCS13, AlgBST14} {
		tab := NewMemTable("t", 5)
		r := rand.New(rand.NewSource(12))
		for i := 0; i < 400; i++ {
			x := make([]float64, 5)
			for j := range x {
				x[j] = r.NormFloat64()
			}
			vec.Normalize(x)
			tab.Insert(x, math.Copysign(1, x[0]))
		}
		res, err := TrainUDA(tab, f, TrainConfig{
			Algorithm: alg,
			Budget:    dp.Budget{Epsilon: 1, Delta: 1e-6},
			Passes:    2, Batch: 10, Radius: 100,
			Rand: rand.New(rand.NewSource(13)),
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.W) != 5 {
			t.Fatalf("%v: model dim %d", alg, len(res.W))
		}
		if res.Epochs != 2 {
			t.Errorf("%v: epochs %d", alg, res.Epochs)
		}
		wantUpdates := 2 * 400 / 10
		if res.Updates != wantUpdates {
			t.Errorf("%v: updates %d, want %d", alg, res.Updates, wantUpdates)
		}
		switch alg {
		case Noiseless:
			if res.NoiseDraws != 0 {
				t.Errorf("noiseless drew noise %d times", res.NoiseDraws)
			}
		case OutputPerturb:
			if res.NoiseDraws != 1 {
				t.Errorf("ours drew noise %d times, want exactly 1", res.NoiseDraws)
			}
			if res.Sensitivity <= 0 {
				t.Error("ours reported no sensitivity")
			}
		default:
			if res.NoiseDraws != wantUpdates {
				t.Errorf("%v drew noise %d times, want one per batch (%d)", alg, res.NoiseDraws, wantUpdates)
			}
		}
	}
}

func TestTrainUDAErrors(t *testing.T) {
	f := loss.NewLogistic(0, 0)
	tab := NewMemTable("t", 2)
	tab.Insert([]float64{1, 0}, 1)
	r := rand.New(rand.NewSource(14))
	if _, err := TrainUDA(tab, f, TrainConfig{Algorithm: OutputPerturb, Budget: dp.Budget{Epsilon: 1}}); err == nil {
		t.Error("nil rand accepted")
	}
	if _, err := TrainUDA(NewMemTable("e", 2), f, TrainConfig{Rand: r}); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := TrainUDA(tab, f, TrainConfig{Algorithm: OutputPerturb, Rand: r}); err == nil {
		t.Error("invalid budget accepted")
	}
	if _, err := TrainUDA(tab, f, TrainConfig{
		Algorithm: AlgBST14, Budget: dp.Budget{Epsilon: 1}, Radius: 1, Rand: r,
	}); err == nil {
		t.Error("BST14 with δ=0 accepted")
	}
	if _, err := TrainUDA(tab, f, TrainConfig{
		Algorithm: AlgBST14, Budget: dp.Budget{Epsilon: 1, Delta: 1e-6}, Rand: r,
	}); err == nil {
		t.Error("BST14 without radius accepted")
	}
	if _, err := TrainUDA(tab, f, TrainConfig{
		Algorithm: OutputPerturb, Budget: dp.Budget{Epsilon: 1}, Tol: 1e-3, Rand: r,
	}); err == nil {
		t.Error("convex bolt-on with Tol accepted")
	}
	if _, err := TrainUDA(tab, f, TrainConfig{Algorithm: Algorithm(42), Rand: r}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestTrainUDASensitivityMatchesDP(t *testing.T) {
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	tab := NewMemTable("t", 3)
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 300; i++ {
		x := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		vec.Normalize(x)
		tab.Insert(x, 1)
	}
	res, err := TrainUDA(tab, f, TrainConfig{
		Algorithm: OutputPerturb, Budget: dp.Budget{Epsilon: 1},
		Passes: 7, Batch: 5, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := dp.SensitivityStronglyConvex(p.L, p.Gamma, 300)
	if math.Abs(res.Sensitivity-want) > 1e-15 {
		t.Errorf("sensitivity %v, want %v", res.Sensitivity, want)
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, a := range []Algorithm{Noiseless, OutputPerturb, AlgSCS13, AlgBST14, Algorithm(9)} {
		if a.String() == "" {
			t.Error("empty Algorithm string")
		}
	}
}

func TestTableSamplesInterface(t *testing.T) {
	var _ sgd.Samples = (*Table)(nil)
}
