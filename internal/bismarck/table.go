package bismarck

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"boltondp/internal/sgd"
)

// Table is a page-organized table of (feature vector, label) rows. It
// is either memory-resident or file-backed behind a fixed-capacity
// buffer pool. After loading (Insert calls) it is treated as read-only
// except for Shuffle, which rewrites it in permuted order the way
// Bismarck's "ORDER BY RANDOM()" materializes a shuffled relation.
//
// Table implements sgd.Samples; At reuses an internal scratch buffer,
// so it must not be called concurrently (matching the single-threaded
// UDA execution model of the paper's experiments).
type Table struct {
	name string
	d    int
	n    int
	rpp  int // rows per page

	// Exactly one of mem / (file, pool) is set.
	mem  [][]byte
	file *os.File
	path string
	pool *bufferPool

	tail    []byte // partially filled last page during loading
	tailLen int    // rows in tail

	scratch []float64
}

// NewMemTable creates an in-memory table for rows of dimension d.
func NewMemTable(name string, d int) *Table {
	if d < 1 {
		panic(fmt.Sprintf("bismarck: dimension %d", d))
	}
	return &Table{name: name, d: d, rpp: rowsPerPage(d), scratch: make([]float64, d)}
}

// CreateDiskTable creates a file-backed table at path whose buffer pool
// holds poolPages pages. A pool smaller than the table forces real file
// I/O during scans — the "disk-based" regime of Figure 2(b).
func CreateDiskTable(path string, d, poolPages int) (*Table, error) {
	if d < 1 {
		return nil, fmt.Errorf("bismarck: dimension %d", d)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("bismarck: %w", err)
	}
	t := &Table{
		name: path, d: d, rpp: rowsPerPage(d),
		file: f, path: path, scratch: make([]float64, d),
	}
	t.pool = newBufferPool(f, poolPages)
	return t, nil
}

// Name returns the table name (the file path for disk tables).
func (t *Table) Name() string { return t.name }

// Len implements sgd.Samples.
func (t *Table) Len() int { return t.n }

// Dim implements sgd.Samples.
func (t *Table) Dim() int { return t.d }

// NumPages returns the number of pages the table occupies.
func (t *Table) NumPages() int { return (t.n + t.rpp - 1) / t.rpp }

// Stats returns buffer-pool statistics (zero value for memory tables).
func (t *Table) Stats() PoolStats {
	if t.pool == nil {
		return PoolStats{}
	}
	return t.pool.snapshotStats()
}

// Insert appends one row. len(x) must equal Dim.
func (t *Table) Insert(x []float64, y float64) error {
	if len(x) != t.d {
		return fmt.Errorf("bismarck: row dim %d, want %d", len(x), t.d)
	}
	if t.tail == nil {
		t.tail = make([]byte, PageSize)
		t.tailLen = 0
	}
	encodeRow(t.tail, t.tailLen*rowBytes(t.d), x, y)
	t.tailLen++
	t.n++
	if t.tailLen == t.rpp {
		if err := t.flushTail(); err != nil {
			return err
		}
	}
	return nil
}

// InsertAll loads every example of s.
func (t *Table) InsertAll(s sgd.Samples) error {
	for i := 0; i < s.Len(); i++ {
		x, y := s.At(i)
		if err := t.Insert(x, y); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) flushTail() error {
	if t.tail == nil {
		return nil
	}
	if t.file != nil {
		if _, err := t.file.Write(t.tail); err != nil {
			return fmt.Errorf("bismarck: append page: %w", err)
		}
	} else {
		t.mem = append(t.mem, t.tail)
	}
	t.tail = nil
	t.tailLen = 0
	return nil
}

// Flush finishes loading: the partially filled last page is written
// out. Reading (At/Scan) flushes implicitly, so callers rarely need it.
func (t *Table) Flush() error { return t.flushTail() }

// page returns the raw bytes of page id.
func (t *Table) page(id int) ([]byte, error) {
	if t.file != nil {
		return t.pool.get(id)
	}
	if id < 0 || id >= len(t.mem) {
		return nil, fmt.Errorf("bismarck: page %d out of range", id)
	}
	return t.mem[id], nil
}

// At implements sgd.Samples. The returned slice is a scratch buffer
// valid until the next At or Scan call.
func (t *Table) At(i int) ([]float64, float64) {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("bismarck: row %d out of range [0,%d)", i, t.n))
	}
	if t.tail != nil {
		if err := t.flushTail(); err != nil {
			panic(err)
		}
	}
	pg, err := t.page(i / t.rpp)
	if err != nil {
		panic(err)
	}
	y := decodeRow(pg, (i%t.rpp)*rowBytes(t.d), t.scratch)
	return t.scratch, y
}

// Scan iterates the table in storage order, invoking fn per row. The x
// slice passed to fn is a scratch buffer valid only during the call.
// This is the sequential heap scan an aggregate query performs.
func (t *Table) Scan(fn func(x []float64, y float64) error) error {
	if t.tail != nil {
		if err := t.flushTail(); err != nil {
			return err
		}
	}
	row := 0
	rb := rowBytes(t.d)
	for pid := 0; pid < t.NumPages(); pid++ {
		pg, err := t.page(pid)
		if err != nil {
			return err
		}
		for off := 0; off < t.rpp && row < t.n; off++ {
			y := decodeRow(pg, off*rb, t.scratch)
			if err := fn(t.scratch, y); err != nil {
				return err
			}
			row++
		}
	}
	return nil
}

// Shuffle materializes the table in uniformly random row order — the
// "Shuffle" step of Figure 1(A), done once before the SGD epochs. For
// disk tables the shuffled relation is written sequentially to a new
// file which atomically replaces the old one.
func (t *Table) Shuffle(r *rand.Rand) error {
	if r == nil {
		return errors.New("bismarck: Shuffle requires a random source")
	}
	if err := t.flushTail(); err != nil {
		return err
	}
	perm := r.Perm(t.n)
	if t.file == nil {
		return t.shuffleMem(perm)
	}
	return t.shuffleDisk(perm)
}

func (t *Table) shuffleMem(perm []int) error {
	rb := rowBytes(t.d)
	newPages := make([][]byte, 0, t.NumPages())
	cur := make([]byte, PageSize)
	cnt := 0
	x := make([]float64, t.d)
	for _, src := range perm {
		pg := t.mem[src/t.rpp]
		y := decodeRow(pg, (src%t.rpp)*rb, x)
		encodeRow(cur, cnt*rb, x, y)
		cnt++
		if cnt == t.rpp {
			newPages = append(newPages, cur)
			cur = make([]byte, PageSize)
			cnt = 0
		}
	}
	if cnt > 0 {
		newPages = append(newPages, cur)
	}
	t.mem = newPages
	return nil
}

func (t *Table) shuffleDisk(perm []int) error {
	tmpPath := t.path + ".shuffle"
	out, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("bismarck: %w", err)
	}
	rb := rowBytes(t.d)
	cur := make([]byte, PageSize)
	cnt := 0
	x := make([]float64, t.d)
	for _, src := range perm {
		pg, err := t.page(src / t.rpp)
		if err != nil {
			out.Close()
			os.Remove(tmpPath)
			return err
		}
		y := decodeRow(pg, (src%t.rpp)*rb, x)
		encodeRow(cur, cnt*rb, x, y)
		cnt++
		if cnt == t.rpp {
			if _, err := out.Write(cur); err != nil {
				out.Close()
				os.Remove(tmpPath)
				return fmt.Errorf("bismarck: %w", err)
			}
			for i := range cur {
				cur[i] = 0
			}
			cnt = 0
		}
	}
	if cnt > 0 {
		if _, err := out.Write(cur); err != nil {
			out.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("bismarck: %w", err)
		}
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("bismarck: %w", err)
	}
	if err := t.file.Close(); err != nil {
		return fmt.Errorf("bismarck: %w", err)
	}
	if err := os.Rename(tmpPath, t.path); err != nil {
		return fmt.Errorf("bismarck: %w", err)
	}
	f, err := os.Open(t.path)
	if err != nil {
		return fmt.Errorf("bismarck: %w", err)
	}
	t.file = f
	t.pool = newBufferPool(f, t.pool.capacity)
	return nil
}

// Close releases the backing file (no-op for memory tables).
func (t *Table) Close() error {
	if err := t.flushTail(); err != nil {
		return err
	}
	if t.file != nil {
		err := t.file.Close()
		t.file = nil
		return err
	}
	return nil
}

// Remove closes the table and deletes its backing file.
func (t *Table) Remove() error {
	if err := t.Close(); err != nil {
		return err
	}
	if t.path != "" {
		return os.Remove(t.path)
	}
	return nil
}
