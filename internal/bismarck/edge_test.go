package bismarck

import (
	"errors"
	"math/rand"
	"testing"

	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

func TestCreateDiskTableErrors(t *testing.T) {
	if _, err := CreateDiskTable("/nonexistent-dir/t.tbl", 3, 4); err == nil {
		t.Error("bad path accepted")
	}
	if _, err := CreateDiskTable(t.TempDir()+"/t.tbl", 0, 4); err == nil {
		t.Error("dim 0 accepted")
	}
}

func TestScanErrorPropagates(t *testing.T) {
	tab := NewMemTable("t", 2)
	for i := 0; i < 10; i++ {
		tab.Insert([]float64{1, 2}, 1)
	}
	boom := errors.New("boom")
	seen := 0
	err := tab.Scan(func(x []float64, y float64) error {
		seen++
		if seen == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("scan error not propagated: %v", err)
	}
	if seen != 3 {
		t.Errorf("scan continued after error: %d rows", seen)
	}
}

func TestEmptyTableBasics(t *testing.T) {
	tab := NewMemTable("empty", 4)
	if tab.Len() != 0 || tab.NumPages() != 0 {
		t.Errorf("empty table: len=%d pages=%d", tab.Len(), tab.NumPages())
	}
	if tab.Name() != "empty" {
		t.Errorf("Name = %q", tab.Name())
	}
	if err := tab.Scan(func([]float64, float64) error {
		t.Fatal("callback on empty table")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tab := NewMemTable("t", 1)
	tab.Insert([]float64{1}, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	tab.At(1)
}

func TestShuffleRequiresRand(t *testing.T) {
	tab := NewMemTable("t", 1)
	tab.Insert([]float64{1}, 1)
	if err := tab.Shuffle(nil); err == nil {
		t.Error("nil rand accepted")
	}
}

func TestAvgAggCarriesNoStateBetweenEpochs(t *testing.T) {
	tab := NewMemTable("t", 1)
	for i := 0; i < 4; i++ {
		tab.Insert([]float64{0}, float64(i)) // labels 0..3, mean 1.5
	}
	drv := &Driver{Table: tab, Agg: &AvgAgg{}, Epochs: 3}
	out, epochs, err := drv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 3 {
		t.Errorf("epochs %d", epochs)
	}
	// AVG re-initializes each epoch, so three epochs still give 1.5.
	if got := out.(float64); got != 1.5 {
		t.Errorf("AVG after 3 epochs = %v, want 1.5", got)
	}
}

func TestSGDAggStatePersistsAcrossEpochs(t *testing.T) {
	// The SGD aggregate's global update counter must keep advancing
	// across epochs — decreasing schedules depend on it.
	tab := NewMemTable("t", 2)
	for i := 0; i < 20; i++ {
		tab.Insert([]float64{0.5, 0.5}, 1)
	}
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	agg := NewSGDAgg(2, f, sgd.StronglyConvexPaper(p.Beta, p.Gamma), 5, 10)
	drv := &Driver{Table: tab, Agg: agg, Epochs: 3}
	if _, _, err := drv.Run(); err != nil {
		t.Fatal(err)
	}
	if agg.Updates() != 3*4 {
		t.Errorf("updates %d, want 12 (counter must persist across epochs)", agg.Updates())
	}
}

func TestDiskTableCloseAndRemove(t *testing.T) {
	path := t.TempDir() + "/t.tbl"
	tab, err := CreateDiskTable(path, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert([]float64{1, 2}, 1)
	if err := tab.Remove(); err != nil {
		t.Fatal(err)
	}
	// File must be gone.
	if _, err := CreateDiskTable(path, 2, 4); err != nil {
		t.Fatalf("path not reusable after Remove: %v", err)
	}
}

func TestTrainUDAWithShuffle(t *testing.T) {
	// Default (shuffling) path: model differs from NoShuffle run but
	// training still works.
	tab := buildTable(t, 300, 4, 30)
	f := loss.NewLogistic(1e-2, 0)
	res, err := TrainUDA(tab, f, TrainConfig{
		Algorithm: Noiseless, Passes: 2, Batch: 5,
		Rand: rand.New(rand.NewSource(31)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.W) != 4 || res.Updates != 2*60 {
		t.Errorf("result %+v", res)
	}
}
