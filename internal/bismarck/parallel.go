package bismarck

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Shared-nothing parallel SGD, the way Bismarck parallelizes UDAs (and
// the paper's footnote 2 extends to MapReduce): the shuffled table is
// range-partitioned into P segments, each worker runs an independent
// PSGD aggregate over its segment, and the per-partition models are
// merged by averaging — PostgreSQL's combine-function contract.
//
// Privacy composes cleanly with the bolt-on analysis. A single
// differing example lives in exactly one partition of size ~m/P, so
// only that partition's model moves, by at most the single-partition
// sensitivity Δ_part; averaging divides the difference by P:
//
//	Δ_parallel = Δ_part(m/P) / P
//
// For the strongly convex bound Δ_part = 2L/(γ(m/P)) this gives
// 2L/(γm) — identical to the sequential bound, so parallelism is free
// privacy-wise. For the convex constant-step bound it gives 2kLη/(bP),
// strictly better than sequential. Both are computed below and verified
// empirically in the tests.

// Partitions splits the table into p contiguous row ranges of nearly
// equal size, returning per-partition row bounds [lo, hi).
func (t *Table) Partitions(p int) ([][2]int, error) {
	if p < 1 || p > t.n {
		return nil, fmt.Errorf("bismarck: cannot split %d rows into %d partitions", t.n, p)
	}
	out := make([][2]int, p)
	size := t.n / p
	for i := 0; i < p; i++ {
		lo := i * size
		hi := lo + size
		if i == p-1 {
			hi = t.n
		}
		out[i] = [2]int{lo, hi}
	}
	return out, nil
}

// segment is a read-only row-range view of a table implementing
// sgd.Samples. Each worker gets its own decode scratch so segments are
// safe to scan concurrently: page bytes are immutable during training
// and the buffer pool serializes its own bookkeeping.
type segment struct {
	t       *Table
	lo, hi  int
	scratch []float64
}

func (s *segment) Len() int { return s.hi - s.lo }
func (s *segment) Dim() int { return s.t.d }

func (s *segment) At(i int) ([]float64, float64) {
	row := s.lo + i
	pg, err := s.t.page(row / s.t.rpp)
	if err != nil {
		panic(err)
	}
	y := decodeRow(pg, (row%s.t.rpp)*rowBytes(s.t.d), s.scratch)
	return s.scratch, y
}

// ParallelTrainConfig configures a shared-nothing parallel run.
type ParallelTrainConfig struct {
	Workers   int       // P ≥ 1
	Algorithm Algorithm // Noiseless or OutputPerturb only
	Budget    dp.Budget
	Passes    int
	Batch     int
	Radius    float64
	NoShuffle bool
	Rand      *rand.Rand
}

// ParallelTrainResult reports a parallel run.
type ParallelTrainResult struct {
	W           []float64
	PartModels  [][]float64 // pre-merge per-partition models (non-private!)
	Sensitivity float64
	Updates     int
}

// ParallelTrainUDA trains with P independent per-partition PSGD
// aggregates merged by model averaging, then (for OutputPerturb)
// perturbs the merged model once with the parallel sensitivity derived
// above. The white-box algorithms are rejected: their per-batch noise
// would have to be re-analyzed under partitioning, which neither the
// paper nor this reproduction attempts.
func ParallelTrainUDA(t *Table, f loss.Function, cfg ParallelTrainConfig) (*ParallelTrainResult, error) {
	if cfg.Rand == nil {
		return nil, errors.New("bismarck: ParallelTrainConfig.Rand is required")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("bismarck: Workers = %d", cfg.Workers)
	}
	if cfg.Algorithm != Noiseless && cfg.Algorithm != OutputPerturb {
		return nil, fmt.Errorf("bismarck: parallel training supports noiseless and output perturbation only, got %v", cfg.Algorithm)
	}
	if t.Len() == 0 {
		return nil, errors.New("bismarck: empty table")
	}
	if cfg.Passes == 0 {
		cfg.Passes = 1
	}
	if cfg.Batch == 0 {
		cfg.Batch = 1
	}
	if cfg.Algorithm == OutputPerturb {
		if err := cfg.Budget.Validate(); err != nil {
			return nil, err
		}
	}

	if !cfg.NoShuffle {
		if err := t.Shuffle(cfg.Rand); err != nil {
			return nil, err
		}
	}
	if err := t.Flush(); err != nil {
		return nil, err
	}

	parts, err := t.Partitions(cfg.Workers)
	if err != nil {
		return nil, err
	}
	p := f.Params()
	minPart := t.Len()
	for _, pr := range parts {
		if n := pr[1] - pr[0]; n < minPart {
			minPart = n
		}
	}

	var step sgd.Schedule
	var sens float64
	if p.StronglyConvex() {
		step = sgd.StronglyConvexPaper(p.Beta, p.Gamma)
		// Δ_part(minPart)/P, evaluated at the smallest partition
		// (largest per-partition sensitivity) for a safe bound.
		sens = dp.SensitivityStronglyConvex(p.L, p.Gamma, minPart) / float64(cfg.Workers)
	} else {
		eta := convexEta(minPart, p.Beta)
		step = sgd.Constant(eta)
		b := cfg.Batch
		if b > minPart {
			b = minPart
		}
		sens = dp.SensitivityConvexConstant(p.L, eta, cfg.Passes, b) / float64(cfg.Workers)
	}

	// Pre-draw per-worker seeds from the caller's source so the run is
	// deterministic regardless of goroutine scheduling.
	seeds := make([]int64, cfg.Workers)
	for i := range seeds {
		seeds[i] = cfg.Rand.Int63()
	}

	models := make([][]float64, cfg.Workers)
	updates := make([]int, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seg := &segment{t: t, lo: parts[i][0], hi: parts[i][1], scratch: make([]float64, t.d)}
			res, err := sgd.Run(seg, sgd.Config{
				Loss: f, Step: step, Passes: cfg.Passes, Batch: cfg.Batch,
				Radius: cfg.Radius, Rand: rand.New(rand.NewSource(seeds[i])),
			})
			if err != nil {
				errs[i] = err
				return
			}
			models[i] = res.W
			updates[i] = res.Updates
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Merge: PostgreSQL-style combine — average the partition models.
	merged := make([]float64, t.d)
	vec.Mean(merged, models...)
	totalUpdates := 0
	for _, u := range updates {
		totalUpdates += u
	}

	out := &ParallelTrainResult{PartModels: models, Updates: totalUpdates, Sensitivity: sens}
	if cfg.Algorithm == OutputPerturb {
		priv, err := cfg.Budget.Perturb(cfg.Rand, merged, sens)
		if err != nil {
			return nil, err
		}
		out.W = priv
	} else {
		out.W = merged
		out.Sensitivity = 0
	}
	return out, nil
}

// convexEta is the Table 4 convex step 1/√m clamped to Lemma 1.1's 2/β.
func convexEta(m int, beta float64) float64 {
	return math.Min(1/math.Sqrt(float64(m)), 2/beta)
}
