package bismarck

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// Shared-nothing parallel SGD, the way Bismarck parallelizes UDAs (and
// the paper's footnote 2 extends to MapReduce): the shuffled table is
// range-partitioned into P segments, each worker runs a PSGD aggregate
// over its segment, and the per-partition models are merged by
// averaging — PostgreSQL's combine-function contract.
//
// The worker pool itself lives in internal/engine (Strategy Sharded):
// per epoch every worker advances one pass over its segment from the
// shared model and the merge averages the partition models. This file
// is only the table-facing compatibility wrapper plus the Sharder glue
// that gives each worker its own decode scratch.
//
// Privacy composes cleanly with the bolt-on analysis. A single
// differing example lives in exactly one partition of size ~m/P, so
// per epoch only that partition's model is additionally displaced, and
// averaging divides the difference by P:
//
//	Δ_parallel = Δ_part(m/P) / P
//
// For the strongly convex bound Δ_part = 2L/(γ(m/P)) this gives
// 2L/(γm) — identical to the sequential bound, so parallelism is free
// privacy-wise. For the convex constant-step bound it gives 2kLη/(bP),
// strictly better than sequential. See dp.SensitivityShardedStronglyConvex
// for the telescoping argument and internal/dp's tests for the
// empirical verification.

// Partitions splits the table into p contiguous row ranges of nearly
// equal size, returning per-partition row bounds [lo, hi). The policy
// is engine.ShardBounds', so UDA partitions and engine shards always
// agree.
func (t *Table) Partitions(p int) ([][2]int, error) {
	if p < 1 || p > t.n {
		return nil, fmt.Errorf("bismarck: cannot split %d rows into %d partitions", t.n, p)
	}
	return engine.ShardBounds(t.n, p), nil
}

// segment is a read-only row-range view of a table implementing
// sgd.Samples. Each worker gets its own decode scratch so segments are
// safe to scan concurrently: page bytes are immutable during training
// and the buffer pool serializes its own bookkeeping.
type segment struct {
	t       *Table
	lo, hi  int
	scratch []float64
}

func (s *segment) Len() int { return s.hi - s.lo }
func (s *segment) Dim() int { return s.t.d }

func (s *segment) At(i int) ([]float64, float64) {
	row := s.lo + i
	pg, err := s.t.page(row / s.t.rpp)
	if err != nil {
		panic(err)
	}
	y := decodeRow(pg, (row%s.t.rpp)*rowBytes(s.t.d), s.scratch)
	return s.scratch, y
}

// Shard keeps segments shardable in turn (a segment's decode scratch is
// as concurrency-unsafe as the table's): sub-shards translate to table
// coordinates, so sharded runs over a row-range view stay race-free.
func (s *segment) Shard(lo, hi int) sgd.Samples {
	return s.t.Shard(s.lo+lo, s.lo+hi)
}

// Shard implements engine.Sharder: an independent read-only view of
// rows [lo, hi) with its own decode scratch, safe to scan concurrently
// with other shards of the same table. Like At, it finishes any pending
// load first (the partially filled tail page must be appended before
// segments read page bytes concurrently) and panics if that write
// fails, mirroring the segment's own At contract.
func (t *Table) Shard(lo, hi int) sgd.Samples {
	if t.tail != nil {
		if err := t.flushTail(); err != nil {
			panic(err)
		}
	}
	return &segment{t: t, lo: lo, hi: hi, scratch: make([]float64, t.d)}
}

// ParallelTrainConfig configures a shared-nothing parallel run.
//
// Deprecated: new code should call engine.Run with Strategy Sharded, or
// core.Train with Options.Workers, which accept any sgd.Samples
// (including *Table) and calibrate the noise themselves.
type ParallelTrainConfig struct {
	Workers   int       // P ≥ 1
	Algorithm Algorithm // Noiseless or OutputPerturb only
	Budget    dp.Budget
	Passes    int
	Batch     int
	Radius    float64
	NoShuffle bool
	Rand      *rand.Rand
}

// ParallelTrainResult reports a parallel run.
//
// Deprecated: see ParallelTrainConfig.
type ParallelTrainResult struct {
	W           []float64
	PartModels  [][]float64 // final pre-merge per-partition models (non-private!)
	Sensitivity float64
	Updates     int
}

// ParallelTrainUDA trains with P per-partition PSGD aggregates merged
// by per-epoch model averaging — the engine's Sharded strategy run over
// the table's segments — then (for OutputPerturb) perturbs the merged
// model once with the parallel sensitivity derived above. The white-box
// algorithms are rejected: their per-batch noise would have to be
// re-analyzed under partitioning, which neither the paper nor this
// reproduction attempts.
//
// Deprecated: ParallelTrainUDA is kept as a thin wrapper for the
// in-RDBMS deployment story; its worker pool moved to internal/engine.
// New code should use engine.Run with Strategy Sharded (noiseless) or
// core.Train with Options{Strategy: engine.Sharded, Workers: P}
// (private), both of which accept *Table directly.
func ParallelTrainUDA(t *Table, f loss.Function, cfg ParallelTrainConfig) (*ParallelTrainResult, error) {
	if cfg.Rand == nil {
		return nil, errors.New("bismarck: ParallelTrainConfig.Rand is required")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("bismarck: Workers = %d", cfg.Workers)
	}
	if cfg.Algorithm != Noiseless && cfg.Algorithm != OutputPerturb {
		return nil, fmt.Errorf("bismarck: parallel training supports noiseless and output perturbation only, got %v", cfg.Algorithm)
	}
	if t.Len() == 0 {
		return nil, errors.New("bismarck: empty table")
	}
	if cfg.Passes == 0 {
		cfg.Passes = 1
	}
	if cfg.Batch == 0 {
		cfg.Batch = 1
	}
	if cfg.Algorithm == OutputPerturb {
		if err := cfg.Budget.Validate(); err != nil {
			return nil, err
		}
	}

	if !cfg.NoShuffle {
		if err := t.Shuffle(cfg.Rand); err != nil {
			return nil, err
		}
	}
	if err := t.Flush(); err != nil {
		return nil, err
	}

	p := f.Params()
	minPart, err := engine.ShardSize(t.Len(), cfg.Workers)
	if err != nil {
		return nil, err
	}

	var step sgd.Schedule
	var sens float64
	if p.StronglyConvex() {
		step = sgd.StronglyConvexPaper(p.Beta, p.Gamma)
		// Δ_part(minPart)/P, evaluated at the smallest partition
		// (largest per-partition sensitivity) for a safe bound.
		sens = dp.SensitivityShardedStronglyConvex(p.L, p.Gamma, minPart, cfg.Workers)
	} else {
		eta := convexEta(minPart, p.Beta)
		step = sgd.Constant(eta)
		b := cfg.Batch
		if b > minPart {
			b = minPart
		}
		sens = dp.SensitivityShardedConvexConstant(p.L, eta, cfg.Passes, b, cfg.Workers)
	}

	res, err := engine.Run(t, engine.Config{
		Strategy: engine.Sharded,
		Workers:  cfg.Workers,
		SGD: sgd.Config{
			Loss:   f,
			Step:   step,
			Passes: cfg.Passes,
			Batch:  cfg.Batch,
			Radius: cfg.Radius,
			Rand:   cfg.Rand,
		},
	})
	if err != nil {
		return nil, err
	}

	out := &ParallelTrainResult{PartModels: res.ShardModels, Updates: res.Updates, Sensitivity: sens}
	if cfg.Algorithm == OutputPerturb {
		priv, err := cfg.Budget.Perturb(cfg.Rand, res.W, sens)
		if err != nil {
			return nil, err
		}
		out.W = priv
	} else {
		out.W = res.W
		out.Sensitivity = 0
	}
	return out, nil
}

// convexEta is the Table 4 convex step 1/√m clamped to Lemma 1.1's 2/β.
func convexEta(m int, beta float64) float64 {
	return math.Min(1/math.Sqrt(float64(m)), 2/beta)
}
