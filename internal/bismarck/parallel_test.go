package bismarck

import (
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func buildTable(t *testing.T, m, d int, seed int64) *Table {
	t.Helper()
	tab := NewMemTable("t", d)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < m; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		if math.Abs(x[0]) < 0.3 {
			x[0] = math.Copysign(0.3, x[0])
		}
		vec.Normalize(x)
		if err := tab.Insert(x, math.Copysign(1, x[0])); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestPartitions(t *testing.T) {
	tab := buildTable(t, 103, 3, 1)
	parts, err := tab.Partitions(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("%d partitions", len(parts))
	}
	total := 0
	prev := 0
	for _, p := range parts {
		if p[0] != prev {
			t.Fatalf("gap: partition starts at %d, want %d", p[0], prev)
		}
		total += p[1] - p[0]
		prev = p[1]
	}
	if total != 103 || prev != 103 {
		t.Errorf("partitions cover %d of 103 rows", total)
	}
	if _, err := tab.Partitions(0); err == nil {
		t.Error("0 partitions accepted")
	}
	if _, err := tab.Partitions(104); err == nil {
		t.Error("more partitions than rows accepted")
	}
}

// Sharding a freshly loaded table whose tail page was never flushed
// must work: Shard flushes pending rows exactly as At does, so a
// direct engine.Run over the table — the migration path the
// ParallelTrainUDA deprecation points at — sees every row.
func TestShardFlushesTailPage(t *testing.T) {
	tab := buildTable(t, 255, 4, 30) // 255 rows never fill page-sized batches
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	res, err := engine.Run(tab, engine.Config{
		Strategy: engine.Sharded,
		Workers:  2,
		SGD: sgd.Config{
			Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
			Passes: 2, Batch: 5, Radius: 100,
			Rand: rand.New(rand.NewSource(31)),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.W) != 4 || res.Passes != 2 {
		t.Errorf("unexpected result shape: dim %d passes %d", len(res.W), res.Passes)
	}
}

func TestSegmentView(t *testing.T) {
	tab := buildTable(t, 50, 4, 2)
	seg := &segment{t: tab, lo: 10, hi: 25, scratch: make([]float64, 4)}
	if seg.Len() != 15 || seg.Dim() != 4 {
		t.Fatalf("segment shape %dx%d", seg.Len(), seg.Dim())
	}
	wantX, wantY := tab.At(12)
	want := vec.Copy(wantX)
	gotX, gotY := seg.At(2)
	if !vec.Equal(gotX, want, 0) || gotY != wantY {
		t.Error("segment At(2) != table At(12)")
	}
}

func TestParallelOneWorkerMatchesShape(t *testing.T) {
	tab := buildTable(t, 400, 5, 3)
	f := loss.NewLogistic(1e-2, 0)
	res, err := ParallelTrainUDA(tab, f, ParallelTrainConfig{
		Workers: 1, Algorithm: Noiseless, Passes: 3, Batch: 10,
		Radius: 100, NoShuffle: true, Rand: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PartModels) != 1 {
		t.Fatalf("%d partition models", len(res.PartModels))
	}
	// Merge of one model is that model.
	if !vec.Equal(res.W, res.PartModels[0], 1e-12) {
		t.Error("P=1 merge differs from the single model")
	}
	if res.Updates != 3*40 {
		t.Errorf("updates %d", res.Updates)
	}
}

func TestParallelTrainsAccurately(t *testing.T) {
	tab := buildTable(t, 2000, 5, 5)
	f := loss.NewLogistic(1e-2, 0)
	res, err := ParallelTrainUDA(tab, f, ParallelTrainConfig{
		Workers: 4, Algorithm: Noiseless, Passes: 5, Batch: 10,
		Radius: 100, NoShuffle: true, Rand: rand.New(rand.NewSource(6)),
	})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < tab.Len(); i++ {
		x, y := tab.At(i)
		if math.Copysign(1, vec.Dot(res.W, x)) == y {
			correct++
		}
	}
	if acc := float64(correct) / 2000; acc < 0.9 {
		t.Errorf("parallel merged accuracy %v", acc)
	}
}

func TestParallelDeterministic(t *testing.T) {
	run := func() []float64 {
		tab := buildTable(t, 300, 4, 7)
		f := loss.NewLogistic(1e-2, 0)
		res, err := ParallelTrainUDA(tab, f, ParallelTrainConfig{
			Workers: 3, Algorithm: OutputPerturb,
			Budget: dp.Budget{Epsilon: 1},
			Passes: 2, Batch: 5, Radius: 100, NoShuffle: true,
			Rand: rand.New(rand.NewSource(8)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	if !vec.Equal(run(), run(), 0) {
		t.Error("parallel run not deterministic under fixed seed")
	}
}

func TestParallelSensitivityFormula(t *testing.T) {
	// Strongly convex: Δ_parallel = 2L/(γ·minPart·b)/P; with equal
	// partitions minPart = m/P so this equals the sequential 2L/(γm).
	tab := buildTable(t, 1000, 4, 9)
	lambda := 1e-2
	f := loss.NewLogistic(lambda, 0)
	p := f.Params()
	res, err := ParallelTrainUDA(tab, f, ParallelTrainConfig{
		Workers: 5, Algorithm: OutputPerturb, Budget: dp.Budget{Epsilon: 1},
		Passes: 2, Batch: 10, Radius: 1 / lambda, NoShuffle: true,
		Rand: rand.New(rand.NewSource(10)),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := dp.SensitivityStronglyConvex(p.L, p.Gamma, 200) / 5
	if math.Abs(res.Sensitivity-want) > 1e-15 {
		t.Errorf("sensitivity %v, want %v", res.Sensitivity, want)
	}
	seq := dp.SensitivityStronglyConvex(p.L, p.Gamma, 1000)
	if math.Abs(res.Sensitivity-seq) > 1e-15 {
		t.Errorf("parallel sensitivity %v should equal sequential %v (equal partitions)", res.Sensitivity, seq)
	}
}

func TestParallelRejects(t *testing.T) {
	tab := buildTable(t, 100, 3, 11)
	f := loss.NewLogistic(0, 0)
	r := rand.New(rand.NewSource(12))
	if _, err := ParallelTrainUDA(tab, f, ParallelTrainConfig{Workers: 2, Algorithm: AlgSCS13, Rand: r}); err == nil {
		t.Error("white-box algorithm accepted")
	}
	if _, err := ParallelTrainUDA(tab, f, ParallelTrainConfig{Workers: 0, Rand: r}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := ParallelTrainUDA(tab, f, ParallelTrainConfig{Workers: 2}); err == nil {
		t.Error("nil rand accepted")
	}
	if _, err := ParallelTrainUDA(tab, f, ParallelTrainConfig{
		Workers: 2, Algorithm: OutputPerturb, Rand: r,
	}); err == nil {
		t.Error("invalid budget accepted")
	}
	empty := NewMemTable("e", 3)
	if _, err := ParallelTrainUDA(empty, f, ParallelTrainConfig{Workers: 1, Rand: r}); err == nil {
		t.Error("empty table accepted")
	}
}

// Parallel training over a disk table with a pool far smaller than the
// table: concurrent segment scans must be correct (run under -race in
// CI) and produce the same merged model as a memory table.
func TestParallelDiskTableSmallPool(t *testing.T) {
	mem := buildTable(t, 600, 5, 20)
	path := t.TempDir() + "/p.tbl"
	disk, err := CreateDiskTable(path, 5, 3) // 3-page pool, many pages
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Remove()
	if err := disk.InsertAll(mem); err != nil {
		t.Fatal(err)
	}
	f := loss.NewLogistic(1e-2, 0)
	cfg := ParallelTrainConfig{
		Workers: 4, Algorithm: Noiseless, Passes: 3, Batch: 5,
		Radius: 100, NoShuffle: true,
	}
	cfg.Rand = rand.New(rand.NewSource(21))
	rm, err := ParallelTrainUDA(mem, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rand = rand.New(rand.NewSource(21))
	rd, err := ParallelTrainUDA(disk, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(rm.W, rd.W, 1e-12) {
		t.Error("disk-backed parallel model differs from memory-backed one")
	}
	if disk.Stats().Reads == 0 {
		t.Error("no page reads recorded")
	}
}

// The empirical parallel-sensitivity property: replace one row, rerun
// with the same seeds, and the merged models must stay within the
// claimed Δ_parallel.
func TestParallelEmpiricalSensitivityProperty(t *testing.T) {
	lambda := 0.05
	f := loss.NewLogistic(lambda, 0)
	p := f.Params()
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		m, d, workers := 120, 3, 3
		rows := make([][]float64, m)
		ys := make([]float64, m)
		for i := 0; i < m; i++ {
			x := make([]float64, d)
			for j := range x {
				x[j] = r.NormFloat64()
			}
			vec.Normalize(x)
			rows[i] = x
			ys[i] = math.Copysign(1, r.NormFloat64())
		}
		build := func(alt int, ax []float64, ay float64) *Table {
			tab := NewMemTable("t", d)
			for i := 0; i < m; i++ {
				if i == alt {
					tab.Insert(ax, ay)
					continue
				}
				tab.Insert(rows[i], ys[i])
			}
			return tab
		}
		alt := r.Intn(m)
		nx := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		vec.Normalize(nx)

		cfg := ParallelTrainConfig{
			Workers: workers, Algorithm: Noiseless, Passes: 2, Batch: 2,
			Radius: 1 / lambda, NoShuffle: true,
			Rand: rand.New(rand.NewSource(500 + seed)),
		}
		r1, err := ParallelTrainUDA(build(alt, rows[alt], ys[alt]), f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Rand = rand.New(rand.NewSource(500 + seed)) // same worker seeds
		r2, err := ParallelTrainUDA(build(alt, nx, math.Copysign(1, r.NormFloat64())), f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bound := dp.SensitivityStronglyConvex(p.L, p.Gamma, m/workers) / float64(workers)
		if dist := vec.Dist(r1.W, r2.W); dist > bound+1e-9 {
			t.Fatalf("seed %d: parallel empirical sensitivity %v exceeds bound %v", seed, dist, bound)
		}
	}
}
