// Package bismarck is a miniature reproduction of the in-RDBMS
// analytics architecture of Figure 1: a page-laid-out table store with
// a buffer pool (so tables can be larger than memory, as in the
// disk-based scalability experiment of Figure 2(b)), a one-shot shuffle
// standing in for "ORDER BY RANDOM()", a user-defined-aggregate (UDA)
// API with the initialize/transition/terminate contract of PostgreSQL,
// an SGD UDA, and a front-end driver playing the role of Bismarck's
// Python controller (issue one aggregate query per epoch, test
// convergence).
//
// The package preserves the two integration points the paper contrasts:
//
//   - (B) bolt-on output perturbation — the driver perturbs the final
//     model after all epochs; the UDA code is untouched.
//   - (C) white-box per-batch noise — SCS13/BST14 must inject noise
//     inside the transition function, via SGDAgg.NoiseInject.
package bismarck

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PageSize is the fixed page size in bytes (PostgreSQL's default 8KB).
const PageSize = 8192

// rowBytes returns the serialized size of one row: d features plus the
// label, each a float64.
func rowBytes(d int) int { return (d + 1) * 8 }

// rowsPerPage returns how many rows of dimension d fit in one page.
func rowsPerPage(d int) int {
	n := PageSize / rowBytes(d)
	if n < 1 {
		// A row wider than a page spills across pages in real systems;
		// we instead require d ≤ 1022 (8192/8 − 2), plenty for the
		// paper's datasets (largest is MNIST at 784).
		panic(fmt.Sprintf("bismarck: dimension %d does not fit in a %dB page", d, PageSize))
	}
	return n
}

// encodeRow serializes (x, y) into buf at off.
func encodeRow(buf []byte, off int, x []float64, y float64) {
	for _, v := range x {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(y))
}

// decodeRow deserializes a row of dimension d from buf at off into x,
// returning the label.
func decodeRow(buf []byte, off int, x []float64) float64 {
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
}
