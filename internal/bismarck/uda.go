package bismarck

import (
	"fmt"

	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Agg is the user-defined-aggregate contract of §4.2: "The developer
// has to provide implementations of three functions in the UDA's C API:
// initialize, transition, and terminate, all of which operate on the
// aggregation state."
//
// Initialize receives the previous epoch's output (nil on the first
// epoch); Transition consumes one tuple; Terminate returns the epoch's
// aggregate.
type Agg interface {
	Initialize(prev any)
	Transition(x []float64, y float64)
	Terminate() any
}

// AvgAgg computes the mean label — the paper's expository AVG example
// ("the state for AVG is the 2-tuple (sum, count)").
type AvgAgg struct {
	sum   float64
	count int
}

// Initialize implements Agg: (sum, count) = (0, 0).
func (a *AvgAgg) Initialize(prev any) { a.sum, a.count = 0, 0 }

// Transition implements Agg: (sum, count) += (y, 1).
func (a *AvgAgg) Transition(x []float64, y float64) { a.sum += y; a.count++ }

// Terminate implements Agg: sum/count.
func (a *AvgAgg) Terminate() any {
	if a.count == 0 {
		return 0.0
	}
	return a.sum / float64(a.count)
}

// SGDAgg is the mini-batch SGD aggregate of Figure 1: the aggregation
// state is the model w plus the accumulated gradient of the current
// mini-batch and the counters tracking batches seen so far. One
// aggregate invocation over the (shuffled) table is one epoch.
//
// NoiseInject is integration point (C): when non-nil it is called on
// every completed mini-batch gradient before the update — the deep
// transition-function change SCS13 and BST14 require. The bolt-on
// algorithms leave it nil and perturb only the driver's final output
// (integration point (B)).
type SGDAgg struct {
	Loss   loss.Function
	Step   sgd.Schedule
	Batch  int
	Radius float64
	// NoiseInject, if set, may modify the averaged batch gradient in
	// place. t is the global 1-based update counter (across epochs).
	NoiseInject func(t int, grad []float64)

	w     []float64
	t     int // global update counter, persists across epochs
	acc   []float64
	gbuf  []float64
	inAcc int
	total int // rows per epoch (0 = unknown); see SetEpochRows
	seen  int // rows consumed this epoch
}

// SetEpochRows tells the aggregate how many rows one epoch scans. With
// it, a trailing remainder (rows mod Batch) is merged into the final
// mini-batch instead of forming a short one — the same soundness fix
// as the sgd engine's (a short batch of size s would have sensitivity
// 2ηL/s > 2ηL/b). The driver sets this from the table's row count;
// without it (0) the aggregate falls back to flushing the short batch.
func (a *SGDAgg) SetEpochRows(m int) { a.total = m }

// NewSGDAgg constructs the aggregate for models of dimension d.
func NewSGDAgg(d int, f loss.Function, step sgd.Schedule, batch int, radius float64) *SGDAgg {
	if d < 1 {
		panic(fmt.Sprintf("bismarck: dimension %d", d))
	}
	if batch < 1 {
		batch = 1
	}
	return &SGDAgg{
		Loss: f, Step: step, Batch: batch, Radius: radius,
		w: make([]float64, d), acc: make([]float64, d), gbuf: make([]float64, d),
	}
}

// Initialize implements Agg: "for SGD, it sets w to the value given by
// the Python controller (the previous epoch's output model)".
func (a *SGDAgg) Initialize(prev any) {
	if prev != nil {
		copy(a.w, prev.([]float64))
	}
	vec.Zero(a.acc)
	a.inAcc = 0
	a.seen = 0
}

// Transition implements Agg: accumulate the tuple's gradient; when the
// mini-batch is full, apply the (possibly noise-injected) update. If
// the epoch's row count is known and fewer than Batch rows remain,
// they are merged into the current batch (applied at Terminate).
func (a *SGDAgg) Transition(x []float64, y float64) {
	a.Loss.Grad(a.gbuf, a.w, x, y)
	vec.Axpy(a.acc, 1, a.gbuf)
	a.inAcc++
	a.seen++
	if a.inAcc >= a.Batch {
		if a.total > 0 && a.total-a.seen < a.Batch && a.total-a.seen > 0 {
			return // hold: merge the remainder into this batch
		}
		a.applyBatch()
	}
}

// Terminate implements Agg: flush a trailing partial batch and return
// the epoch's model (a copy, so the driver owns it).
func (a *SGDAgg) Terminate() any {
	if a.inAcc > 0 {
		a.applyBatch()
	}
	return vec.Copy(a.w)
}

// Updates returns the global update counter (for tests and reporting).
func (a *SGDAgg) Updates() int { return a.t }

func (a *SGDAgg) applyBatch() {
	vec.Scale(a.acc, 1/float64(a.inAcc))
	a.t++
	if a.NoiseInject != nil {
		a.NoiseInject(a.t, a.acc)
	}
	vec.Axpy(a.w, -a.Step.Eta(a.t), a.acc)
	vec.ProjectBall(a.w, a.Radius)
	vec.Zero(a.acc)
	a.inAcc = 0
}
