package eval

import (
	"errors"
	"math/rand"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/sgd"
)

func TestLinearPredict(t *testing.T) {
	l := &Linear{W: []float64{1, -1}}
	if l.Predict([]float64{1, 0}) != 1 {
		t.Error("positive side misclassified")
	}
	if l.Predict([]float64{0, 1}) != -1 {
		t.Error("negative side misclassified")
	}
	// Tie goes to +1.
	if l.Predict([]float64{1, 1}) != 1 {
		t.Error("tie should predict +1")
	}
}

func TestAccuracyAndErrors(t *testing.T) {
	s := &sgd.SliceSamples{
		X: [][]float64{{1, 0}, {-1, 0}, {0.5, 0}, {-0.5, 0}},
		Y: []float64{1, -1, -1, 1}, // last two are wrong for w = e1
	}
	c := &Linear{W: []float64{1, 0}}
	if e := Errors(s, c); e != 2 {
		t.Errorf("Errors = %d, want 2", e)
	}
	if a := Accuracy(s, c); a != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", a)
	}
	if a := Accuracy(&sgd.SliceSamples{}, c); a != 0 {
		t.Errorf("Accuracy on empty = %v", a)
	}
}

func TestOneVsAllPredict(t *testing.T) {
	// Three classes, each detected by one coordinate.
	m := &OneVsAll{W: [][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
	}}
	if p := m.Predict([]float64{0.9, 0.1, 0}); p != 0 {
		t.Errorf("Predict = %v, want 0", p)
	}
	if p := m.Predict([]float64{0, 0.2, 0.9}); p != 2 {
		t.Errorf("Predict = %v, want 2", p)
	}
}

func TestBinaryView(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 100, D: 4, Classes: 3, Spread: 0.4})
	v := &BinaryView{S: d, Class: 1}
	if v.Len() != 100 || v.Dim() != 4 {
		t.Fatalf("view shape %dx%d", v.Len(), v.Dim())
	}
	plus, minus := 0, 0
	for i := 0; i < v.Len(); i++ {
		_, y := v.At(i)
		switch y {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatalf("view label %v", y)
		}
	}
	// Relabeled counts must match the underlying class counts.
	want := d.ClassCounts()[1]
	if plus != want {
		t.Errorf("view has %d positives, dataset has %d of class 1", plus, want)
	}
	if plus+minus != 100 {
		t.Error("view lost examples")
	}
}

func TestTrainOneVsAll(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 600, D: 6, Classes: 3, Spread: 0.3})
	classSeen := map[int]bool{}
	model, err := TrainOneVsAll(d, 3, func(view sgd.Samples, class int) ([]float64, error) {
		classSeen[class] = true
		// Trivial trainer: mean of positive examples (a crude centroid
		// classifier that is still far better than chance here).
		w := make([]float64, view.Dim())
		n := 0
		for i := 0; i < view.Len(); i++ {
			x, y := view.At(i)
			if y == 1 {
				for j := range w {
					w[j] += x[j]
				}
				n++
			}
		}
		for j := range w {
			w[j] /= float64(n)
		}
		return w, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(classSeen) != 3 {
		t.Errorf("trainer saw classes %v", classSeen)
	}
	if acc := Accuracy(d, model); acc < 0.7 {
		t.Errorf("centroid one-vs-all accuracy %v, want > 0.7", acc)
	}
}

func TestTrainOneVsAllErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 30, D: 2, Classes: 3, Spread: 0.3})
	if _, err := TrainOneVsAll(d, 1, nil); err == nil {
		t.Error("classes < 2 accepted")
	}
	if _, err := TrainOneVsAll(d, 3, nil); err == nil {
		t.Error("nil trainer accepted")
	}
	boom := errors.New("boom")
	if _, err := TrainOneVsAll(d, 3, func(sgd.Samples, int) ([]float64, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Errorf("trainer error not propagated: %v", err)
	}
	if _, err := TrainOneVsAll(d, 3, func(sgd.Samples, int) ([]float64, error) {
		return []float64{1}, nil // wrong dim
	}); err == nil {
		t.Error("wrong model dim accepted")
	}
}

func TestConfusionMatrix(t *testing.T) {
	s := &sgd.SliceSamples{
		X: [][]float64{{1, 0}, {0, 1}, {1, 0}},
		Y: []float64{0, 1, 1},
	}
	m := &OneVsAll{W: [][]float64{{1, 0}, {0, 1}}}
	cm := ConfusionMatrix(s, m, 2)
	if cm[0][0] != 1 || cm[1][1] != 1 || cm[1][0] != 1 {
		t.Errorf("confusion = %v", cm)
	}
}
