package eval

import (
	"encoding/json"
	"fmt"
	"os"
)

// modelFile is the on-disk JSON representation of a trained classifier.
// Meta is free-form: callers typically record the loss, the privacy
// budget and the sensitivity the release was calibrated to, so that a
// published model file carries its own privacy statement.
type modelFile struct {
	Kind string            `json:"kind"` // "linear" | "onevsall"
	W    [][]float64       `json:"w"`
	Meta map[string]string `json:"meta,omitempty"`
}

// SaveClassifier writes a Linear or OneVsAll classifier to path as
// JSON. Other Classifier implementations are rejected.
func SaveClassifier(path string, c Classifier, meta map[string]string) error {
	var mf modelFile
	mf.Meta = meta
	switch m := c.(type) {
	case *Linear:
		mf.Kind = "linear"
		mf.W = [][]float64{m.W}
	case *OneVsAll:
		mf.Kind = "onevsall"
		mf.W = m.W
	default:
		return fmt.Errorf("eval: cannot serialize %T", c)
	}
	data, err := json.MarshalIndent(&mf, "", "  ")
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadClassifier reads a classifier written by SaveClassifier and
// returns it together with its metadata.
func LoadClassifier(path string) (Classifier, map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("eval: %w", err)
	}
	var mf modelFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, nil, fmt.Errorf("eval: %s: %w", path, err)
	}
	switch mf.Kind {
	case "linear":
		if len(mf.W) != 1 || len(mf.W[0]) == 0 {
			return nil, nil, fmt.Errorf("eval: %s: malformed linear model", path)
		}
		return &Linear{W: mf.W[0]}, mf.Meta, nil
	case "onevsall":
		if len(mf.W) < 2 {
			return nil, nil, fmt.Errorf("eval: %s: one-vs-all model needs >= 2 classes", path)
		}
		d := len(mf.W[0])
		for i, w := range mf.W {
			if len(w) != d || d == 0 {
				return nil, nil, fmt.Errorf("eval: %s: class %d has dim %d, want %d", path, i, len(w), d)
			}
		}
		return &OneVsAll{W: mf.W}, mf.Meta, nil
	default:
		return nil, nil, fmt.Errorf("eval: %s: unknown model kind %q", path, mf.Kind)
	}
}
