// Package eval provides model evaluation and the one-vs-all multiclass
// construction of §4.3: classifiers, test accuracy/error counting, and
// the even privacy-budget split across the per-class sub-models (simple
// composition, as the paper uses for the 10 MNIST digits).
package eval

import (
	"context"
	"errors"
	"fmt"
	"math"

	"boltondp/internal/engine"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Classifier predicts a label for a feature vector. Binary classifiers
// return ±1, multiclass classifiers return the class index as float64,
// matching data.Dataset's label conventions.
type Classifier interface {
	Predict(x []float64) float64
}

// SparseClassifier is the second tier of the scoring contract: a
// classifier that can score a sparse row directly. Both classifiers in
// this package implement it; the scoring helpers (Accuracy, Errors,
// ConfusionMatrix) dispatch on it so sparse test sets are scored with
// one O(nnz) row visit — all class margins included — instead of
// scattering each row into a dense buffer first.
type SparseClassifier interface {
	PredictSparse(x *vec.Sparse) float64
}

// Linear is a binary linear classifier: Predict(x) = sign(⟨w, x⟩).
type Linear struct {
	W []float64
}

// Predict implements Classifier. Ties (exactly zero score) go to +1.
func (l *Linear) Predict(x []float64) float64 {
	if vec.Dot(l.W, x) >= 0 {
		return 1
	}
	return -1
}

// PredictSparse implements SparseClassifier with the same tie rule.
func (l *Linear) PredictSparse(x *vec.Sparse) float64 {
	if x.Dot(l.W) >= 0 {
		return 1
	}
	return -1
}

// OneVsAll is a multiclass classifier built from per-class binary
// models: Predict(x) = argmax_c ⟨w_c, x⟩.
type OneVsAll struct {
	W [][]float64 // W[c] is the model for class c
}

// Predict implements Classifier.
func (m *OneVsAll) Predict(x []float64) float64 {
	best, bestScore := 0, math.Inf(-1)
	for c, w := range m.W {
		if s := vec.Dot(w, x); s > bestScore {
			best, bestScore = c, s
		}
	}
	return float64(best)
}

// PredictSparse implements SparseClassifier: every class margin is
// computed from the single sparse row visit, at O(classes·nnz) total —
// the multiclass scoring path never re-densifies a row per class.
func (m *OneVsAll) PredictSparse(x *vec.Sparse) float64 {
	best, bestScore := 0, math.Inf(-1)
	for c, w := range m.W {
		if s := x.Dot(w); s > bestScore {
			best, bestScore = c, s
		}
	}
	return float64(best)
}

// Accuracy returns the fraction of examples in s that c classifies
// correctly.
func Accuracy(s sgd.Samples, c Classifier) float64 {
	m := s.Len()
	if m == 0 {
		return 0
	}
	return 1 - float64(Errors(s, c))/float64(m)
}

// Errors returns the number of misclassified examples — the χ_i
// statistic of the private tuning Algorithm 3, line 4. Sparse sources
// are scored through the sparse tier when the classifier supports it.
func Errors(s sgd.Samples, c Classifier) int {
	wrong := 0
	if ss, sc, ok := sparseScoring(s, c); ok {
		for i := 0; i < ss.Len(); i++ {
			x, y := ss.AtSparse(i)
			if sc.PredictSparse(x) != y {
				wrong++
			}
		}
		return wrong
	}
	for i := 0; i < s.Len(); i++ {
		x, y := s.At(i)
		if c.Predict(x) != y {
			wrong++
		}
	}
	return wrong
}

// sparseScoring reports whether the (source, classifier) pair supports
// the sparse scoring tier.
func sparseScoring(s sgd.Samples, c Classifier) (sgd.SparseSamples, SparseClassifier, bool) {
	ss, ok := s.(sgd.SparseSamples)
	if !ok {
		return nil, nil, false
	}
	sc, ok := c.(SparseClassifier)
	if !ok {
		return nil, nil, false
	}
	return ss, sc, true
}

// BinaryView exposes a multiclass sample set as the binary
// one-vs-all problem for a single class: the label is +1 where the
// underlying label equals Class and −1 elsewhere.
//
// Construct views with NewBinaryView when the source may be sparse:
// the constructor preserves the source's access tier, so per-class
// training over a sparse multiclass set runs on the sparse kernel
// instead of re-densifying every row once per class.
type BinaryView struct {
	S     sgd.Samples
	Class float64
}

// NewBinaryView builds the one-vs-all view for a class, keeping the
// source's sparse tier when it has one.
func NewBinaryView(s sgd.Samples, class float64) sgd.Samples {
	if ss, ok := s.(sgd.SparseSamples); ok {
		return &sparseBinaryView{BinaryView{S: s, Class: class}, ss}
	}
	return &BinaryView{S: s, Class: class}
}

// Len implements sgd.Samples.
func (b *BinaryView) Len() int { return b.S.Len() }

// Dim implements sgd.Samples.
func (b *BinaryView) Dim() int { return b.S.Dim() }

// At implements sgd.Samples.
func (b *BinaryView) At(i int) ([]float64, float64) {
	x, y := b.S.At(i)
	if y == b.Class {
		return x, 1
	}
	return x, -1
}

// Shard implements engine.Sharder so the relabeling wrapper does not
// hide an underlying source's concurrency-safe shard views: when the
// wrapped source provides Shard, the view delegates to it; otherwise
// it returns the engine's plain range view, exactly what the engine
// would have built itself.
func (b *BinaryView) Shard(lo, hi int) sgd.Samples {
	if sh, ok := b.S.(engine.Sharder); ok {
		return NewBinaryView(sh.Shard(lo, hi), b.Class)
	}
	return NewBinaryView(engine.RangeView(b.S, lo, hi), b.Class)
}

// sparseBinaryView is the second-tier variant NewBinaryView returns
// for sparse sources: a distinct type (not an always-present method)
// so a type assertion on sgd.SparseSamples stays truthful.
type sparseBinaryView struct {
	BinaryView
	ss sgd.SparseSamples
}

// AtSparse implements sgd.SparseSamples with the same relabeling as At.
func (b *sparseBinaryView) AtSparse(i int) (*vec.Sparse, float64) {
	x, y := b.ss.AtSparse(i)
	if y == b.Class {
		return x, 1
	}
	return x, -1
}

// BinaryTrainer trains one binary model on the given (already
// relabeled) view. TrainOneVsAll passes the class index so trainers can
// split privacy budgets or log progress.
type BinaryTrainer func(view sgd.Samples, class int) ([]float64, error)

// TrainOneVsAll builds a one-vs-all multiclass model by invoking the
// trainer once per class on the relabeled views. The trainer is
// responsible for using a per-class budget of ε/classes, as §4.3
// prescribes for MNIST — draw the per-class shares from a privacy-
// budget accountant (account.Accountant.Split, enforced) or from
// dp.Budget.Split (caller-trusted).
func TrainOneVsAll(s sgd.Samples, classes int, train BinaryTrainer) (*OneVsAll, error) {
	return TrainOneVsAllCtx(context.Background(), s, classes, train)
}

// TrainOneVsAllCtx is TrainOneVsAll made cancellable: ctx is checked
// before each per-class training run, and a trainer built on
// core.TrainCtx (or any core.Options carrying the same ctx) also stops
// mid-run, so cancelling a ten-class build never waits for the current
// class to finish its remaining passes.
func TrainOneVsAllCtx(ctx context.Context, s sgd.Samples, classes int, train BinaryTrainer) (*OneVsAll, error) {
	if classes < 2 {
		return nil, fmt.Errorf("eval: need >= 2 classes, got %d", classes)
	}
	if train == nil {
		return nil, errors.New("eval: nil trainer")
	}
	model := &OneVsAll{W: make([][]float64, classes)}
	for c := 0; c < classes; c++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		w, err := train(NewBinaryView(s, float64(c)), c)
		if err != nil {
			return nil, fmt.Errorf("eval: class %d: %w", c, err)
		}
		if len(w) != s.Dim() {
			return nil, fmt.Errorf("eval: class %d: model dim %d, want %d", c, len(w), s.Dim())
		}
		model.W[c] = w
	}
	return model, nil
}

// ConfusionMatrix returns counts[actual][predicted] for a multiclass
// classifier over s. Labels must be integers in [0, classes). Sparse
// sources are scored through the sparse tier when the classifier
// supports it.
func ConfusionMatrix(s sgd.Samples, c Classifier, classes int) [][]int {
	out := make([][]int, classes)
	for i := range out {
		out[i] = make([]int, classes)
	}
	record := func(p int, y float64) {
		a := int(y)
		if a >= 0 && a < classes && p >= 0 && p < classes {
			out[a][p]++
		}
	}
	if ss, sc, ok := sparseScoring(s, c); ok {
		for i := 0; i < ss.Len(); i++ {
			x, y := ss.AtSparse(i)
			record(int(sc.PredictSparse(x)), y)
		}
		return out
	}
	for i := 0; i < s.Len(); i++ {
		x, y := s.At(i)
		record(int(c.Predict(x)), y)
	}
	return out
}
