package eval

import (
	"math/rand"
	"testing"

	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// sparseSet builds a small sparse multiclass sample set and its dense
// mirror (labels are class indices).
func sparseSet(r *rand.Rand, m, d, classes int) (*sgd.SparseSliceSamples, *sgd.SliceSamples) {
	sp := &sgd.SparseSliceSamples{D: d}
	de := &sgd.SliceSamples{}
	for i := 0; i < m; i++ {
		dense := make([]float64, d)
		for k := 0; k < 3; k++ {
			dense[r.Intn(d)] = r.NormFloat64()
		}
		y := float64(r.Intn(classes))
		sp.X = append(sp.X, vec.DenseToSparse(dense))
		sp.Y = append(sp.Y, y)
		de.X = append(de.X, dense)
		de.Y = append(de.Y, y)
	}
	return sp, de
}

// Sparse scoring must agree with dense scoring exactly, for both the
// binary and the one-vs-all classifier.
func TestSparseScoringParity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	spM, deM := sparseSet(r, 150, 25, 4)
	ova := &OneVsAll{W: make([][]float64, 4)}
	for c := range ova.W {
		w := make([]float64, 25)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		ova.W[c] = w
	}
	if got, want := Errors(spM, ova), Errors(deM, ova); got != want {
		t.Errorf("one-vs-all Errors: sparse %d dense %d", got, want)
	}
	cmS := ConfusionMatrix(spM, ova, 4)
	cmD := ConfusionMatrix(deM, ova, 4)
	for a := range cmS {
		for p := range cmS[a] {
			if cmS[a][p] != cmD[a][p] {
				t.Fatalf("confusion[%d][%d]: sparse %d dense %d", a, p, cmS[a][p], cmD[a][p])
			}
		}
	}

	// Binary: relabel class 0 as ±1 via the views.
	lin := &Linear{W: ova.W[0]}
	vs := NewBinaryView(spM, 0)
	vd := NewBinaryView(deM, 0)
	if got, want := Errors(vs, lin), Errors(vd, lin); got != want {
		t.Errorf("binary Errors: sparse %d dense %d", got, want)
	}
}

// NewBinaryView must preserve the source's tier truthfully, and its
// shard views must keep it.
func TestNewBinaryViewTier(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	sp, de := sparseSet(r, 40, 10, 3)

	vs := NewBinaryView(sp, 1)
	if _, ok := vs.(sgd.SparseSamples); !ok {
		t.Fatal("sparse source produced a dense-only view")
	}
	vd := NewBinaryView(de, 1)
	if _, ok := vd.(sgd.SparseSamples); ok {
		t.Fatal("dense source produced a sparse-claiming view")
	}

	// Relabeling matches between tiers.
	ss := vs.(sgd.SparseSamples)
	for i := 0; i < vs.Len(); i++ {
		_, ys := ss.AtSparse(i)
		_, yd := vd.At(i)
		if ys != yd {
			t.Fatalf("row %d relabel mismatch: %v vs %v", i, ys, yd)
		}
		if ys != 1 && ys != -1 {
			t.Fatalf("row %d label %v", i, ys)
		}
	}

	// Sharding preserves the tier (SparseSliceSamples implements the
	// structural Sharder contract).
	type sharder interface {
		Shard(lo, hi int) sgd.Samples
	}
	shard := vs.(sharder).Shard(5, 25)
	if _, ok := shard.(sgd.SparseSamples); !ok {
		t.Error("shard of a sparse binary view dropped the tier")
	}
}

// PredictSparse must agree with Predict on scattered rows.
func TestPredictSparseMatchesPredict(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ova := &OneVsAll{W: [][]float64{{1, 0, -1}, {0, 1, 0}, {-1, 0, 1}}}
	lin := &Linear{W: []float64{0.5, -1, 0.25}}
	for trial := 0; trial < 100; trial++ {
		dense := make([]float64, 3)
		for i := range dense {
			if r.Float64() < 0.6 {
				dense[i] = r.NormFloat64()
			}
		}
		s := vec.DenseToSparse(dense)
		if ova.PredictSparse(s) != ova.Predict(dense) {
			t.Fatalf("OneVsAll mismatch on %v", dense)
		}
		if lin.PredictSparse(s) != lin.Predict(dense) {
			t.Fatalf("Linear mismatch on %v", dense)
		}
	}
}
