package eval

import (
	"os"
	"path/filepath"
	"testing"

	"boltondp/internal/vec"
)

func TestSaveLoadLinear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	orig := &Linear{W: []float64{1.5, -2.25, 0}}
	meta := map[string]string{"epsilon": "0.1", "loss": "logistic"}
	if err := SaveClassifier(path, orig, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := LoadClassifier(path)
	if err != nil {
		t.Fatal(err)
	}
	lin, ok := got.(*Linear)
	if !ok {
		t.Fatalf("loaded %T, want *Linear", got)
	}
	if !vec.Equal(lin.W, orig.W, 0) {
		t.Errorf("weights %v != %v", lin.W, orig.W)
	}
	if gotMeta["epsilon"] != "0.1" || gotMeta["loss"] != "logistic" {
		t.Errorf("meta %v", gotMeta)
	}
}

func TestSaveLoadOneVsAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	orig := &OneVsAll{W: [][]float64{{1, 0}, {0, 1}, {-1, -1}}}
	if err := SaveClassifier(path, orig, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadClassifier(path)
	if err != nil {
		t.Fatal(err)
	}
	ova, ok := got.(*OneVsAll)
	if !ok {
		t.Fatalf("loaded %T", got)
	}
	for c := range orig.W {
		if !vec.Equal(ova.W[c], orig.W[c], 0) {
			t.Errorf("class %d weights differ", c)
		}
	}
	// Behavior preserved.
	x := []float64{0.2, 0.9}
	if orig.Predict(x) != got.Predict(x) {
		t.Error("loaded model predicts differently")
	}
}

type fakeClassifier struct{}

func (fakeClassifier) Predict([]float64) float64 { return 0 }

func TestSaveRejectsUnknownType(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := SaveClassifier(path, fakeClassifier{}, nil); err == nil {
		t.Error("unknown classifier type accepted")
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"not json":        "{",
		"unknown kind":    `{"kind":"svm","w":[[1]]}`,
		"linear no rows":  `{"kind":"linear","w":[]}`,
		"linear empty":    `{"kind":"linear","w":[[]]}`,
		"ova one class":   `{"kind":"onevsall","w":[[1]]}`,
		"ova ragged dims": `{"kind":"onevsall","w":[[1,2],[3]]}`,
	}
	for name, content := range cases {
		if _, _, err := LoadClassifier(write(name+".json", content)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, _, err := LoadClassifier(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
