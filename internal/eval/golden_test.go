package eval

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"boltondp/internal/vec"
)

// updateGolden regenerates the committed serialization fixtures:
//
//	go test ./internal/eval -run Golden -update-golden
//
// Only do this for a deliberate, reviewed format change — the serving
// registry (internal/serve) persists through this format, so a silent
// drift would orphan every published model file.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden model fixtures")

// goldenCases pins the writer's output byte-for-byte for both model
// kinds. Weights are chosen to exercise sign, zero and values that
// round-trip exactly through decimal (dyadic rationals).
func goldenCases() []struct {
	file  string
	model Classifier
	meta  map[string]string
} {
	return []struct {
		file  string
		model Classifier
		meta  map[string]string
	}{
		{
			file:  "linear.golden.json",
			model: &Linear{W: []float64{0.5, -1.25, 0, 3.5, -0.0625}},
			meta:  map[string]string{"algorithm": "ours", "epsilon": "0.5", "loss": "logistic"},
		},
		{
			file:  "onevsall.golden.json",
			model: &OneVsAll{W: [][]float64{{1, 0, -0.5}, {0, 1, 0.25}, {-1, -1, 2}}},
			meta:  map[string]string{"epsilon": "1", "loss": "huber"},
		},
	}
}

func TestGoldenModelFiles(t *testing.T) {
	for _, tc := range goldenCases() {
		golden := filepath.Join("testdata", tc.file)
		path := filepath.Join(t.TempDir(), tc.file)
		if err := SaveClassifier(path, tc.model, tc.meta); err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if *updateGolden {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s", golden)
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update-golden)", tc.file, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: writer output drifted from the committed fixture.\ngot:\n%s\nwant:\n%s\n"+
				"The registry's on-disk format changed — if intentional, rerun with -update-golden and "+
				"document the migration.", tc.file, got, want)
		}
	}
}

// TestGoldenModelFilesLoad proves today's reader still understands the
// committed fixtures (backward compatibility is independent of writer
// stability).
func TestGoldenModelFilesLoad(t *testing.T) {
	if *updateGolden {
		t.Skip("fixtures being rewritten")
	}
	for _, tc := range goldenCases() {
		c, meta, err := LoadClassifier(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		for k, v := range tc.meta {
			if meta[k] != v {
				t.Errorf("%s: meta[%q] = %q, want %q", tc.file, k, meta[k], v)
			}
		}
		switch want := tc.model.(type) {
		case *Linear:
			got, ok := c.(*Linear)
			if !ok || !vec.Equal(got.W, want.W, 0) {
				t.Errorf("%s: loaded %#v", tc.file, c)
			}
		case *OneVsAll:
			got, ok := c.(*OneVsAll)
			if !ok || len(got.W) != len(want.W) {
				t.Fatalf("%s: loaded %#v", tc.file, c)
			}
			for cls := range want.W {
				if !vec.Equal(got.W[cls], want.W[cls], 0) {
					t.Errorf("%s: class %d weights drifted", tc.file, cls)
				}
			}
		}
		// The loaded model must also behave identically, sparse tier
		// included — the serving registry scores through it.
		x := make([]float64, dimOf(tc.model))
		for i := range x {
			x[i] = 0.3 - 0.7*float64(i%3)
		}
		if c.Predict(x) != tc.model.Predict(x) {
			t.Errorf("%s: loaded model predicts differently", tc.file)
		}
		sp := vec.DenseToSparse(x)
		if c.(SparseClassifier).PredictSparse(sp) != tc.model.(SparseClassifier).PredictSparse(sp) {
			t.Errorf("%s: sparse tier predicts differently after the round trip", tc.file)
		}
	}
}

func dimOf(c Classifier) int {
	switch m := c.(type) {
	case *Linear:
		return len(m.W)
	case *OneVsAll:
		return len(m.W[0])
	}
	return 0
}
