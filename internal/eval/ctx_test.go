package eval

import (
	"context"
	"errors"
	"testing"

	"boltondp/internal/sgd"
)

// TrainOneVsAllCtx stops between classes once the context dies: a
// cancel during class c's training leaves classes c+1..n untrained.
func TestTrainOneVsAllCtxCancel(t *testing.T) {
	s := &sgd.SliceSamples{
		X: [][]float64{{1, 0}, {0, 1}, {1, 1}, {0, 0}},
		Y: []float64{0, 1, 2, 3},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trained := 0
	_, err := TrainOneVsAllCtx(ctx, s, 4, func(view sgd.Samples, class int) ([]float64, error) {
		trained++
		if class == 1 {
			cancel()
		}
		return []float64{1, 0}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if trained != 2 {
		t.Errorf("trained %d classes after cancel during class 1", trained)
	}

	// A healthy context trains every class, identically to the legacy
	// entry point.
	m, err := TrainOneVsAllCtx(context.Background(), s, 4, func(view sgd.Samples, class int) ([]float64, error) {
		return []float64{float64(class), 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.W) != 4 || m.W[3][0] != 3 {
		t.Errorf("model: %+v", m.W)
	}
}
