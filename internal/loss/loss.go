// Package loss implements the convex per-example loss functions the
// paper evaluates — logistic regression, Huber SVM and (as an extra)
// least squares, each with optional L2 regularization — together with
// the derivation of the constants (L, β, γ) of Definition 1 that the
// sensitivity calculus in internal/dp consumes.
//
// All derivations assume the paper's preprocessing: every feature
// vector is normalized to the unit ball (‖x‖ ≤ 1) and, when λ > 0, the
// hypothesis space is the ball of radius R (‖w‖ ≤ R). The constants
// follow §2 of the paper exactly:
//
//	logistic, λ = 0:  L = 1,      β = 1,        γ = 0
//	logistic, λ > 0:  L = 1+λR,   β = 1+λ,      γ = λ
//	Huber(h), λ = 0:  L = 1,      β = 1/(2h),   γ = 0
//	Huber(h), λ > 0:  L = 1+λR,   β = 1/(2h)+λ, γ = λ
package loss

import (
	"fmt"
	"math"

	"boltondp/internal/vec"
)

// Params carries the optimization-theoretic constants of a loss
// (Definition 1 of the paper): the Lipschitz constant L of the loss,
// the smoothness β of its gradient, and the strong-convexity modulus γ.
type Params struct {
	L     float64 // Lipschitz constant of ℓ(·, z)
	Beta  float64 // smoothness: ‖∇ℓ(u)−∇ℓ(v)‖ ≤ β‖u−v‖
	Gamma float64 // strong convexity (0 for merely convex losses)
}

// StronglyConvex reports whether the loss is γ-strongly convex for γ>0.
func (p Params) StronglyConvex() bool { return p.Gamma > 0 }

// Function is a per-example loss ℓ(w; (x, y)) with gradient in w.
// Implementations must be convex in w for every example, as required by
// the paper's privacy analysis.
type Function interface {
	// Name identifies the loss in logs and experiment output.
	Name() string
	// Eval returns ℓ(w; (x, y)).
	Eval(w, x []float64, y float64) float64
	// Grad writes ∇_w ℓ(w; (x, y)) into dst. dst must have len(w).
	Grad(dst, w, x []float64, y float64)
	// Params returns (L, β, γ) under the preprocessing assumptions
	// ‖x‖ ≤ 1 and ‖w‖ ≤ R (the R used at construction).
	Params() Params
}

// Linear is the factored form of a linear-model loss: every loss in
// this package is g(⟨w,x⟩, y) + (λ/2)‖w‖² for a scalar data-fit term
// g, so its gradient factors as
//
//	∇_w ℓ = Deriv(⟨w,x⟩, y)·x + λ·w
//
// — a scalar times the example plus a uniform shrink. This is the
// contract the sparse execution kernel (internal/sgd) is built on: the
// per-example work is one sparse dot to get p = ⟨w,x⟩, one scalar
// Deriv call, and one sparse axpy, touching only the non-zeros of x,
// while the λ·w term becomes an O(1) rescale under the scaled-weight
// representation. Grad and Eval are implemented on top of Deriv and
// EvalDot, so the dense and sparse paths share the exact same scalar
// arithmetic.
//
// A loss that cannot be factored this way (no current example) simply
// does not implement Linear and trains on the dense path.
type Linear interface {
	Function
	// Deriv returns ∂g/∂p at p = ⟨w,x⟩ — the scalar c of the factored
	// gradient c·x + λw. For margin losses this is y·g'(y·p) with g'
	// the margin derivative.
	Deriv(p, y float64) float64
	// EvalDot returns the data-fit term g(p, y): the loss value minus
	// the (λ/2)‖w‖² regularizer.
	EvalDot(p, y float64) float64
	// Reg returns the L2 regularization coefficient λ (0 when
	// unregularized).
	Reg() float64
}

// Logistic is the L2-regularized logistic loss of equation (1):
//
//	ℓ(w; (x,y)) = ln(1 + exp(−y·⟨w,x⟩)) + (λ/2)‖w‖²,  y ∈ {±1}.
type Logistic struct {
	Lambda float64 // L2 regularization parameter λ ≥ 0
	R      float64 // hypothesis-space radius (required when λ > 0)
}

// NewLogistic constructs a logistic loss. For λ > 0 the paper requires
// a bounded hypothesis space; following §4.3 we use R = 1/λ when the
// caller passes r <= 0.
func NewLogistic(lambda, r float64) *Logistic {
	if lambda < 0 {
		panic(fmt.Sprintf("loss: negative lambda %v", lambda))
	}
	if lambda > 0 && r <= 0 {
		r = 1 / lambda
	}
	return &Logistic{Lambda: lambda, R: r}
}

// Name implements Function.
func (l *Logistic) Name() string {
	if l.Lambda > 0 {
		return fmt.Sprintf("logistic(λ=%g)", l.Lambda)
	}
	return "logistic"
}

// EvalDot implements Linear: ln(1 + exp(−y·p)), stably.
func (l *Logistic) EvalDot(p, y float64) float64 {
	z := -y * p
	// log(1+e^z) computed stably for large |z|.
	if z > 30 {
		return z
	}
	return math.Log1p(math.Exp(z))
}

// Deriv implements Linear: ∂g/∂p = −y·σ(−y·p), with σ the sigmoid.
func (l *Logistic) Deriv(p, y float64) float64 {
	z := y * p
	// σ(−z) = 1/(1+e^z), computed stably.
	var s float64
	if z > 30 {
		s = math.Exp(-z)
	} else {
		s = 1 / (1 + math.Exp(z))
	}
	return -y * s
}

// Reg implements Linear.
func (l *Logistic) Reg() float64 { return l.Lambda }

// Eval implements Function.
func (l *Logistic) Eval(w, x []float64, y float64) float64 {
	base := l.EvalDot(vec.Dot(w, x), y)
	if l.Lambda > 0 {
		n := vec.Norm(w)
		base += 0.5 * l.Lambda * n * n
	}
	return base
}

// Grad implements Function:
// ∇ℓ = −y·σ(−y⟨w,x⟩)·x + λw, with σ the sigmoid.
func (l *Logistic) Grad(dst, w, x []float64, y float64) {
	if len(dst) != len(w) || len(w) != len(x) {
		panic("loss: Grad length mismatch")
	}
	c := l.Deriv(vec.Dot(w, x), y)
	for i := range dst {
		dst[i] = c*x[i] + l.Lambda*w[i]
	}
}

// Params implements Function, per the derivation in §2 of the paper.
func (l *Logistic) Params() Params {
	if l.Lambda == 0 {
		return Params{L: 1, Beta: 1, Gamma: 0}
	}
	return Params{L: 1 + l.Lambda*l.R, Beta: 1 + l.Lambda, Gamma: l.Lambda}
}

// Huber is the smoothed hinge loss ("Huber SVM", Appendix B):
//
//	           0                      if z > 1+h
//	ℓ_huber =  (1+h−z)²/(4h)          if |1−z| ≤ h     (z = y⟨w,x⟩)
//	           1−z                    if z < 1−h
//
// plus (λ/2)‖w‖² when regularized.
type Huber struct {
	H      float64 // smoothing width h > 0 (paper uses h = 0.1)
	Lambda float64
	R      float64
}

// NewHuber constructs a Huber SVM loss with smoothing width h.
func NewHuber(h, lambda, r float64) *Huber {
	if h <= 0 {
		panic(fmt.Sprintf("loss: Huber requires h>0, got %v", h))
	}
	if lambda < 0 {
		panic(fmt.Sprintf("loss: negative lambda %v", lambda))
	}
	if lambda > 0 && r <= 0 {
		r = 1 / lambda
	}
	return &Huber{H: h, Lambda: lambda, R: r}
}

// Name implements Function.
func (l *Huber) Name() string {
	if l.Lambda > 0 {
		return fmt.Sprintf("huber(h=%g,λ=%g)", l.H, l.Lambda)
	}
	return fmt.Sprintf("huber(h=%g)", l.H)
}

// EvalDot implements Linear: the three-piece margin loss at z = y·p.
func (l *Huber) EvalDot(p, y float64) float64 {
	z := y * p
	switch {
	case z > 1+l.H:
		return 0
	case z < 1-l.H:
		return 1 - z
	default:
		d := 1 + l.H - z
		return d * d / (4 * l.H)
	}
}

// Deriv implements Linear. dℓ/dz is 0, −(1+h−z)/(2h) or −1 on the
// three pieces; the chain rule multiplies by y.
func (l *Huber) Deriv(p, y float64) float64 {
	z := y * p
	var dz float64
	switch {
	case z > 1+l.H:
		dz = 0
	case z < 1-l.H:
		dz = -1
	default:
		dz = -(1 + l.H - z) / (2 * l.H)
	}
	return dz * y
}

// Reg implements Linear.
func (l *Huber) Reg() float64 { return l.Lambda }

// Eval implements Function.
func (l *Huber) Eval(w, x []float64, y float64) float64 {
	base := l.EvalDot(vec.Dot(w, x), y)
	if l.Lambda > 0 {
		n := vec.Norm(w)
		base += 0.5 * l.Lambda * n * n
	}
	return base
}

// Grad implements Function. The margin derivative comes from Deriv;
// the loop adds the λw regularizer term.
func (l *Huber) Grad(dst, w, x []float64, y float64) {
	if len(dst) != len(w) || len(w) != len(x) {
		panic("loss: Grad length mismatch")
	}
	c := l.Deriv(vec.Dot(w, x), y)
	for i := range dst {
		dst[i] = c*x[i] + l.Lambda*w[i]
	}
}

// Params implements Function. Appendix B: L ≤ 1 and β ≤ 1/(2h) for the
// unregularized Huber loss under ‖x‖ ≤ 1.
func (l *Huber) Params() Params {
	if l.Lambda == 0 {
		return Params{L: 1, Beta: 1 / (2 * l.H), Gamma: 0}
	}
	return Params{L: 1 + l.Lambda*l.R, Beta: 1/(2*l.H) + l.Lambda, Gamma: l.Lambda}
}

// LeastSquares is the squared loss ℓ = (⟨w,x⟩ − y)²/2 + (λ/2)‖w‖².
// It is not part of the paper's evaluation but is a standard convex ERM
// instance (ridge regression) that exercises the same machinery; the
// constants below assume ‖x‖ ≤ 1, |y| ≤ 1 and ‖w‖ ≤ R.
type LeastSquares struct {
	Lambda float64
	R      float64
}

// NewLeastSquares constructs a least-squares loss.
func NewLeastSquares(lambda, r float64) *LeastSquares {
	if lambda < 0 {
		panic(fmt.Sprintf("loss: negative lambda %v", lambda))
	}
	if lambda > 0 && r <= 0 {
		r = 1 / lambda
	}
	if r <= 0 {
		// Even without regularization the Lipschitz constant of the
		// squared loss depends on the radius; default to the unit ball.
		r = 1
	}
	return &LeastSquares{Lambda: lambda, R: r}
}

// Name implements Function.
func (l *LeastSquares) Name() string { return fmt.Sprintf("leastsquares(λ=%g)", l.Lambda) }

// EvalDot implements Linear: (p − y)²/2.
func (l *LeastSquares) EvalDot(p, y float64) float64 {
	e := p - y
	return 0.5 * e * e
}

// Deriv implements Linear: ∂g/∂p = p − y.
func (l *LeastSquares) Deriv(p, y float64) float64 { return p - y }

// Reg implements Linear.
func (l *LeastSquares) Reg() float64 { return l.Lambda }

// Eval implements Function.
func (l *LeastSquares) Eval(w, x []float64, y float64) float64 {
	base := l.EvalDot(vec.Dot(w, x), y)
	if l.Lambda > 0 {
		n := vec.Norm(w)
		base += 0.5 * l.Lambda * n * n
	}
	return base
}

// Grad implements Function: ∇ℓ = (⟨w,x⟩−y)·x + λw.
func (l *LeastSquares) Grad(dst, w, x []float64, y float64) {
	if len(dst) != len(w) || len(w) != len(x) {
		panic("loss: Grad length mismatch")
	}
	e := l.Deriv(vec.Dot(w, x), y)
	for i := range dst {
		dst[i] = e*x[i] + l.Lambda*w[i]
	}
}

// Params implements Function: |ℓ'(z)| = |z−y| ≤ R+1 on ‖w‖≤R, ‖x‖≤1,
// |y|≤1; the Hessian is xxᵀ + λI with norm ≤ 1+λ.
func (l *LeastSquares) Params() Params {
	return Params{L: l.R + 1 + l.Lambda*l.R, Beta: 1 + l.Lambda, Gamma: l.Lambda}
}
