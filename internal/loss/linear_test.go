package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"boltondp/internal/vec"
)

// Every loss in the package must expose the factored Linear form — the
// sparse execution kernel dispatches on it.
func TestAllLossesAreLinear(t *testing.T) {
	for _, f := range []Function{
		NewLogistic(0, 0), NewLogistic(1e-2, 0),
		NewHuber(0.1, 0, 0), NewHuber(0.1, 1e-2, 0),
		NewLeastSquares(0, 0), NewLeastSquares(1e-2, 0),
	} {
		if _, ok := f.(Linear); !ok {
			t.Errorf("%s does not implement Linear", f.Name())
		}
	}
}

// The factored form must reproduce the dense Grad exactly:
// Grad(w,x,y)[i] == Deriv(⟨w,x⟩,y)·x[i] + λ·w[i], bitwise — both paths
// share the same scalar arithmetic, so sparse and dense runs start from
// identical per-example gradients.
func TestLinearFactorsGradExactly(t *testing.T) {
	losses := []Linear{
		NewLogistic(0, 0), NewLogistic(5e-3, 0),
		NewHuber(0.1, 0, 0), NewHuber(0.1, 5e-3, 0),
		NewLeastSquares(0, 0), NewLeastSquares(5e-3, 0),
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(20)
		w, x, y := randomPoint(r, d, 1.2)
		for _, f := range losses {
			dense := make([]float64, d)
			f.Grad(dense, w, x, y)
			c := f.Deriv(vec.Dot(w, x), y)
			lambda := f.Reg()
			for i := range dense {
				if want := c*x[i] + lambda*w[i]; dense[i] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// EvalDot + regularizer must reproduce Eval exactly for the same
// reason: the sparse empirical risk is computed from inner products.
func TestLinearFactorsEvalExactly(t *testing.T) {
	losses := []Linear{
		NewLogistic(0, 0), NewLogistic(5e-3, 0),
		NewHuber(0.1, 0, 0), NewHuber(0.1, 5e-3, 0),
		NewLeastSquares(0, 0), NewLeastSquares(5e-3, 0),
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(20)
		w, x, y := randomPoint(r, d, 1.2)
		for _, f := range losses {
			want := f.Eval(w, x, y)
			got := f.EvalDot(vec.Dot(w, x), y)
			if lambda := f.Reg(); lambda > 0 {
				n := vec.Norm(w)
				got += 0.5 * lambda * n * n
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Deriv must be the analytic derivative of EvalDot in p.
func TestDerivMatchesEvalDotNumerically(t *testing.T) {
	losses := []Linear{
		NewLogistic(0, 0), NewHuber(0.1, 0, 0), NewLeastSquares(0, 0),
	}
	r := rand.New(rand.NewSource(9))
	const h = 1e-6
	for trial := 0; trial < 200; trial++ {
		p := r.NormFloat64() * 2
		y := 1.0
		if r.Float64() < 0.5 {
			y = -1
		}
		for _, f := range losses {
			num := (f.EvalDot(p+h, y) - f.EvalDot(p-h, y)) / (2 * h)
			if math.Abs(num-f.Deriv(p, y)) > 1e-5 {
				t.Fatalf("%s: Deriv(%v,%v) = %v, numeric %v", f.Name(), p, y, f.Deriv(p, y), num)
			}
		}
	}
}
