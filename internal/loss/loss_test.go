package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"boltondp/internal/vec"
)

// numericalGrad approximates ∇ℓ by central differences.
func numericalGrad(f Function, w, x []float64, y float64) []float64 {
	const h = 1e-6
	g := make([]float64, len(w))
	wp := vec.Copy(w)
	for i := range w {
		wp[i] = w[i] + h
		fp := f.Eval(wp, x, y)
		wp[i] = w[i] - h
		fm := f.Eval(wp, x, y)
		wp[i] = w[i]
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

func randomPoint(r *rand.Rand, d int, scale float64) ([]float64, []float64, float64) {
	w := make([]float64, d)
	x := make([]float64, d)
	for i := 0; i < d; i++ {
		w[i] = r.NormFloat64() * scale
		x[i] = r.NormFloat64()
	}
	vec.Normalize(x)
	y := 1.0
	if r.Float64() < 0.5 {
		y = -1
	}
	return w, x, y
}

func testGradMatchesNumeric(t *testing.T, f Function) {
	t.Helper()
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		w, x, y := randomPoint(r, 4, 0.8)
		got := make([]float64, 4)
		f.Grad(got, w, x, y)
		want := numericalGrad(f, w, x, y)
		if !vec.Equal(got, want, 1e-4) {
			t.Fatalf("%s: analytic grad %v != numeric %v at w=%v x=%v y=%v",
				f.Name(), got, want, w, x, y)
		}
	}
}

func TestLogisticGradient(t *testing.T) {
	testGradMatchesNumeric(t, NewLogistic(0, 0))
	testGradMatchesNumeric(t, NewLogistic(1e-2, 0))
}

func TestHuberGradient(t *testing.T) {
	testGradMatchesNumeric(t, NewHuber(0.1, 0, 0))
	testGradMatchesNumeric(t, NewHuber(0.5, 1e-3, 0))
}

func TestLeastSquaresGradient(t *testing.T) {
	testGradMatchesNumeric(t, NewLeastSquares(0, 1))
	testGradMatchesNumeric(t, NewLeastSquares(1e-2, 0))
}

func TestLogisticParams(t *testing.T) {
	// λ=0: L=β=1, γ=0 (paper §2).
	p := NewLogistic(0, 0).Params()
	if p.L != 1 || p.Beta != 1 || p.Gamma != 0 {
		t.Errorf("unregularized logistic params = %+v", p)
	}
	if p.StronglyConvex() {
		t.Error("unregularized logistic should not be strongly convex")
	}
	// λ>0 with default R=1/λ: L = 1+λR = 2, β = 1+λ, γ = λ.
	lam := 0.01
	p = NewLogistic(lam, 0).Params()
	if math.Abs(p.L-2) > 1e-12 {
		t.Errorf("L = %v, want 2 (R defaults to 1/λ)", p.L)
	}
	if math.Abs(p.Beta-(1+lam)) > 1e-12 || p.Gamma != lam {
		t.Errorf("params = %+v", p)
	}
	if !p.StronglyConvex() {
		t.Error("regularized logistic should be strongly convex")
	}
}

func TestHuberParams(t *testing.T) {
	h := 0.1
	p := NewHuber(h, 0, 0).Params()
	if p.L != 1 || math.Abs(p.Beta-1/(2*h)) > 1e-12 || p.Gamma != 0 {
		t.Errorf("huber params = %+v", p)
	}
}

// Convexity along random segments: f(mid) ≤ (f(a)+f(b))/2 for each loss.
func TestConvexityProperty(t *testing.T) {
	losses := []Function{
		NewLogistic(0, 0),
		NewLogistic(1e-2, 0),
		NewHuber(0.1, 0, 0),
		NewHuber(0.1, 1e-3, 0),
		NewLeastSquares(1e-3, 0),
	}
	for _, f := range losses {
		f := f
		prop := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			d := 1 + r.Intn(6)
			a := make([]float64, d)
			b := make([]float64, d)
			x := make([]float64, d)
			for i := 0; i < d; i++ {
				a[i], b[i], x[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
			}
			vec.Normalize(x)
			y := 1.0
			if r.Float64() < 0.5 {
				y = -1
			}
			mid := make([]float64, d)
			for i := range mid {
				mid[i] = 0.5 * (a[i] + b[i])
			}
			return f.Eval(mid, x, y) <= 0.5*(f.Eval(a, x, y)+f.Eval(b, x, y))+1e-9
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: convexity violated: %v", f.Name(), err)
		}
	}
}

// Lipschitz property of the unregularized losses: ‖∇ℓ‖ ≤ L when ‖x‖≤1.
func TestGradientNormBoundedByL(t *testing.T) {
	losses := []Function{
		NewLogistic(0, 0),
		NewHuber(0.1, 0, 0),
	}
	r := rand.New(rand.NewSource(33))
	for _, f := range losses {
		L := f.Params().L
		g := make([]float64, 5)
		for trial := 0; trial < 500; trial++ {
			w, x, y := randomPoint(r, 5, 3)
			f.Grad(g, w, x, y)
			if n := vec.Norm(g); n > L+1e-9 {
				t.Fatalf("%s: ‖∇ℓ‖ = %v exceeds L = %v", f.Name(), n, L)
			}
		}
	}
}

// Smoothness: ‖∇ℓ(u)−∇ℓ(v)‖ ≤ β‖u−v‖.
func TestSmoothnessProperty(t *testing.T) {
	losses := []Function{
		NewLogistic(0, 0),
		NewLogistic(1e-2, 0),
		NewHuber(0.1, 0, 0),
		NewLeastSquares(0, 1),
	}
	for _, f := range losses {
		f := f
		beta := f.Params().Beta
		prop := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			d := 1 + r.Intn(6)
			u := make([]float64, d)
			v := make([]float64, d)
			x := make([]float64, d)
			for i := 0; i < d; i++ {
				u[i], v[i], x[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
			}
			vec.Normalize(x)
			y := 1.0
			if r.Float64() < 0.5 {
				y = -1
			}
			gu := make([]float64, d)
			gv := make([]float64, d)
			f.Grad(gu, u, x, y)
			f.Grad(gv, v, x, y)
			return vec.Dist(gu, gv) <= beta*vec.Dist(u, v)+1e-9
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: smoothness violated: %v", f.Name(), err)
		}
	}
}

// Strong convexity of the regularized logistic loss:
// f(u) ≥ f(v) + <∇f(v), u−v> + (γ/2)‖u−v‖².
func TestStrongConvexityProperty(t *testing.T) {
	lam := 0.05
	f := NewLogistic(lam, 0)
	gamma := f.Params().Gamma
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		u := make([]float64, d)
		v := make([]float64, d)
		x := make([]float64, d)
		for i := 0; i < d; i++ {
			u[i], v[i], x[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		vec.Normalize(x)
		y := -1.0
		g := make([]float64, d)
		f.Grad(g, v, x, y)
		diff := make([]float64, d)
		vec.Sub(diff, u, v)
		lhs := f.Eval(u, x, y)
		rhs := f.Eval(v, x, y) + vec.Dot(g, diff) + 0.5*gamma*vec.Dot(diff, diff)
		return lhs >= rhs-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogisticEvalStability(t *testing.T) {
	// Very large margins must not produce Inf/NaN.
	f := NewLogistic(0, 0)
	w := []float64{1000}
	x := []float64{1}
	for _, y := range []float64{1, -1} {
		v := f.Eval(w, x, y)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("Eval(y=%v) = %v", y, v)
		}
		g := make([]float64, 1)
		f.Grad(g, w, x, y)
		if math.IsNaN(g[0]) || math.IsInf(g[0], 0) {
			t.Errorf("Grad(y=%v) = %v", y, g[0])
		}
	}
}

func TestHuberPieces(t *testing.T) {
	f := NewHuber(0.1, 0, 0)
	x := []float64{1}
	// z > 1+h: zero loss, zero gradient.
	if v := f.Eval([]float64{2}, x, 1); v != 0 {
		t.Errorf("flat piece loss = %v", v)
	}
	g := make([]float64, 1)
	f.Grad(g, []float64{2}, x, 1)
	if g[0] != 0 {
		t.Errorf("flat piece grad = %v", g[0])
	}
	// z < 1-h: linear piece, loss = 1-z, grad = -y·x.
	if v := f.Eval([]float64{0.5}, x, 1); math.Abs(v-0.5) > 1e-12 {
		t.Errorf("linear piece loss = %v, want 0.5", v)
	}
	f.Grad(g, []float64{0.5}, x, 1)
	if math.Abs(g[0]+1) > 1e-12 {
		t.Errorf("linear piece grad = %v, want -1", g[0])
	}
	// Quadratic piece continuity at the boundaries.
	h := 0.1
	eps := 1e-9
	atLo := f.Eval([]float64{1 - h + eps}, x, 1)
	atLoLin := f.Eval([]float64{1 - h - eps}, x, 1)
	if math.Abs(atLo-atLoLin) > 1e-6 {
		t.Errorf("discontinuity at z=1-h: %v vs %v", atLo, atLoLin)
	}
	atHi := f.Eval([]float64{1 + h - eps}, x, 1)
	if math.Abs(atHi) > 1e-6 {
		t.Errorf("loss at z=1+h should approach 0, got %v", atHi)
	}
}

func TestConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"logistic negative lambda": func() { NewLogistic(-1, 0) },
		"huber zero h":             func() { NewHuber(0, 0, 0) },
		"huber negative lambda":    func() { NewHuber(0.1, -1, 0) },
		"ls negative lambda":       func() { NewLeastSquares(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLossNames(t *testing.T) {
	cases := map[string]Function{
		"logistic":            NewLogistic(0, 0),
		"logistic(λ=0.01)":    NewLogistic(0.01, 0),
		"huber(h=0.1)":        NewHuber(0.1, 0, 0),
		"huber(h=0.1,λ=0.01)": NewHuber(0.1, 0.01, 0),
		"leastsquares(λ=0)":   NewLeastSquares(0, 1),
	}
	for want, f := range cases {
		if got := f.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestLeastSquaresParams(t *testing.T) {
	// Unregularized, R defaults to 1: L = R+1 = 2, β = 1, γ = 0.
	p := NewLeastSquares(0, 0).Params()
	if p.L != 2 || p.Beta != 1 || p.Gamma != 0 {
		t.Errorf("unregularized params %+v", p)
	}
	// λ>0 with default R = 1/λ: L = R+1+λR = 1/λ+2, β = 1+λ, γ = λ.
	lam := 0.1
	p = NewLeastSquares(lam, 0).Params()
	if math.Abs(p.L-(1/lam+2)) > 1e-12 || math.Abs(p.Beta-1.1) > 1e-12 || p.Gamma != lam {
		t.Errorf("regularized params %+v", p)
	}
}

func TestHuberGradBigH(t *testing.T) {
	// h > 1: z=0 sits inside the quadratic piece |1-z| <= h.
	f := NewHuber(1.5, 0, 0)
	g := make([]float64, 1)
	f.Grad(g, []float64{0}, []float64{1}, 1)
	// dz = -(1+h-z)/(2h) = -2.5/3.
	if math.Abs(g[0]+2.5/3) > 1e-12 {
		t.Errorf("quadratic-piece grad %v", g[0])
	}
}

func TestGradLengthMismatchPanics(t *testing.T) {
	fs := []Function{NewLogistic(0, 0), NewHuber(0.1, 0, 0), NewLeastSquares(0, 1)}
	for _, f := range fs {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Grad length mismatch did not panic", f.Name())
				}
			}()
			f.Grad(make([]float64, 2), make([]float64, 3), make([]float64, 3), 1)
		}()
	}
}
