package engine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// synth builds a small separable binary dataset.
func synth(seed int64, m, d int) *data.Dataset {
	r := rand.New(rand.NewSource(seed))
	return data.Synthetic(r, data.GenConfig{Name: "t", M: m, D: d, Classes: 2, Spread: 0.4, Flip: 0.02})
}

func stronglyConvexCfg(f loss.Function, seed int64) sgd.Config {
	p := f.Params()
	return sgd.Config{
		Loss:   f,
		Step:   sgd.StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 3,
		Batch:  5,
		Radius: 100,
		Rand:   rand.New(rand.NewSource(seed)),
	}
}

// The headline contract: Sharded with one worker must be bit-for-bit
// identical to Sequential — same model, same iterate average, same
// counters — because it delegates to the same code path with the same
// randomness consumption.
func TestShardedOneWorkerEqualsSequential(t *testing.T) {
	ds := synth(1, 300, 4)
	f := loss.NewLogistic(1e-2, 0)
	for _, avg := range []bool{false, true} {
		c := stronglyConvexCfg(f, 42)
		c.Average = avg
		seq, err := Run(ds, Config{Strategy: Sequential, SGD: c})
		if err != nil {
			t.Fatal(err)
		}
		c2 := stronglyConvexCfg(f, 42)
		c2.Average = avg
		sh, err := Run(ds, Config{Strategy: Sharded, Workers: 1, SGD: c2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.W, sh.W) {
			t.Errorf("avg=%v: Sharded(1).W differs from Sequential.W", avg)
		}
		if !reflect.DeepEqual(seq.WAvg, sh.WAvg) {
			t.Errorf("avg=%v: Sharded(1).WAvg differs from Sequential.WAvg", avg)
		}
		if seq.Updates != sh.Updates || seq.Passes != sh.Passes {
			t.Errorf("avg=%v: counters differ: %d/%d vs %d/%d",
				avg, seq.Updates, seq.Passes, sh.Updates, sh.Passes)
		}
		if len(sh.ShardModels) != 1 || !reflect.DeepEqual(sh.ShardModels[0], sh.W) {
			t.Errorf("avg=%v: Sharded(1).ShardModels should be the single model", avg)
		}
	}
}

// Sharded runs must be deterministic for a fixed seed and worker count,
// regardless of goroutine scheduling.
func TestShardedDeterministic(t *testing.T) {
	ds := synth(2, 500, 5)
	f := loss.NewLogistic(1e-2, 0)
	run := func() *Result {
		c := stronglyConvexCfg(f, 7)
		c.Average = true
		res, err := Run(ds, Config{Strategy: Sharded, Workers: 4, SGD: c})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.W, b.W) || !reflect.DeepEqual(a.WAvg, b.WAvg) {
		t.Error("sharded run not deterministic under fixed seed")
	}
	if !reflect.DeepEqual(a.ShardModels, b.ShardModels) {
		t.Error("shard models not deterministic under fixed seed")
	}
	if a.Workers != 4 || a.Passes != 3 {
		t.Errorf("workers=%d passes=%d", a.Workers, a.Passes)
	}
	if want := 3 * (500 / 5); a.Updates != want {
		t.Errorf("updates %d, want %d", a.Updates, want)
	}
}

// Sharded training must still learn: the merged model of a multi-worker
// run should classify a separable dataset about as well as sequential.
func TestShardedConverges(t *testing.T) {
	ds := synth(3, 2000, 5)
	f := loss.NewLogistic(1e-2, 0)
	c := stronglyConvexCfg(f, 11)
	c.Passes = 5
	res, err := Run(ds, Config{Strategy: Sharded, Workers: 4, SGD: c})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.At(i)
		if math.Copysign(1, vec.Dot(res.W, x)) == y {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.9 {
		t.Errorf("sharded accuracy %.3f", acc)
	}
}

// Streaming must equal a sequential run over the identity permutation:
// same order, same updates, no Rand required.
func TestStreamingEqualsIdentityPerm(t *testing.T) {
	ds := synth(4, 240, 4)
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	ident := make([]int, ds.Len())
	for i := range ident {
		ident[i] = i
	}
	want, err := sgd.Run(ds, sgd.Config{
		Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 1, Batch: 7, Radius: 100, Perm: ident,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(ds, Config{Strategy: Streaming, SGD: sgd.Config{
		Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
		Batch: 7, Radius: 100, // Passes defaulted to 1, Rand deliberately nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.W, got.W) || want.Updates != got.Updates {
		t.Error("streaming differs from sequential over the identity permutation")
	}
}

// A sharded run over a data.Stream exercises the Sharder path: each
// shard gets a private scratch, rows keep their global identity, and
// the run is deterministic. The same must hold one level down — over a
// row-range view of the stream (scaling.go's train/test split idiom),
// whose Shard forwards to the parent.
func TestShardedStreamSource(t *testing.T) {
	s := data.NewStream(5, 500, 6, 0.4, 0)
	f := loss.NewLogistic(1e-2, 0)
	for name, src := range map[string]sgd.Samples{
		"stream": s,
		"view":   s.Shard(0, 400),
	} {
		run := func() []float64 {
			res, err := Run(src, Config{Strategy: Sharded, Workers: 4, SGD: stronglyConvexCfg(f, 13)})
			if err != nil {
				t.Fatal(err)
			}
			return res.W
		}
		if !reflect.DeepEqual(run(), run()) {
			t.Errorf("sharded %s run not deterministic", name)
		}
	}
}

// A sharded run over a CSR SparseDataset exercises its Sharder
// implementation: each worker scatters into a private scratch (the
// race detector guards the contract) and the run is deterministic.
func TestShardedSparseSource(t *testing.T) {
	ds := synth(9, 400, 6)
	sp := data.FromDense(ds)
	f := loss.NewLogistic(1e-2, 0)
	run := func() []float64 {
		res, err := Run(sp, Config{Strategy: Sharded, Workers: 4, SGD: stronglyConvexCfg(f, 19)})
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("sharded sparse run not deterministic")
	}
}

// Shard views must expose exactly the parent rows.
func TestShardViewsCoverSource(t *testing.T) {
	ds := synth(6, 103, 3)
	bounds := ShardBounds(ds.Len(), 4)
	total := 0
	prev := 0
	for _, b := range bounds {
		if b[0] != prev {
			t.Fatalf("gap at %d", b[0])
		}
		prev = b[1]
		total += b[1] - b[0]
		v := shardView(ds, b[0], b[1])
		for i := 0; i < v.Len(); i++ {
			gx, gy := v.At(i)
			wx, wy := ds.At(b[0] + i)
			if !reflect.DeepEqual(gx, wx) || gy != wy {
				t.Fatalf("shard row (%d,%d) differs from source row %d", b[0], i, b[0]+i)
			}
		}
	}
	if total != ds.Len() || prev != ds.Len() {
		t.Errorf("shards cover %d of %d rows", total, ds.Len())
	}
	if MinShard(103, 4) != 25 {
		t.Errorf("MinShard(103,4) = %d", MinShard(103, 4))
	}
	if MinShard(103, 1) != 103 {
		t.Errorf("MinShard(103,1) = %d", MinShard(103, 1))
	}
}

// Tol-based early stopping applies at merge granularity: with a huge
// tolerance the run must stop before exhausting Passes.
func TestShardedTolStopsEarly(t *testing.T) {
	ds := synth(7, 600, 4)
	f := loss.NewLogistic(1e-2, 0)
	c := stronglyConvexCfg(f, 17)
	c.Passes = 20
	c.Tol = 10 // any decrease is below this
	res, err := Run(ds, Config{Strategy: Sharded, Workers: 3, SGD: c})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes >= 20 {
		t.Errorf("Tol did not stop the run (passes=%d)", res.Passes)
	}
}

func TestRejections(t *testing.T) {
	ds := synth(8, 100, 3)
	f := loss.NewLogistic(1e-2, 0)
	base := func(seed int64) sgd.Config { return stronglyConvexCfg(f, seed) }

	cases := []struct {
		name string
		cfg  Config
	}{
		{"unknown strategy", Config{Strategy: Strategy(99), SGD: base(1)}},
		{"too many workers", Config{Strategy: Sharded, Workers: 101, SGD: base(2)}},
		{"streaming multi-pass", Config{Strategy: Streaming, SGD: base(3)}}, // Passes=3
		{"streaming fresh perm", Config{Strategy: Streaming, SGD: func() sgd.Config {
			c := base(4)
			c.Passes = 1
			c.FreshPerm = true
			return c
		}()}},
		{"sharded grad noise", Config{Strategy: Sharded, Workers: 2, SGD: func() sgd.Config {
			c := base(5)
			c.GradNoise = func(int, []float64) {}
			return c
		}()}},
		{"sharded fixed perm", Config{Strategy: Sharded, Workers: 2, SGD: func() sgd.Config {
			c := base(6)
			c.Perm = rand.New(rand.NewSource(1)).Perm(100)
			return c
		}()}},
		{"sharded no perm", Config{Strategy: Sharded, Workers: 2, SGD: func() sgd.Config {
			c := base(6)
			c.NoPerm = true
			return c
		}()}},
		{"sharded average tail", Config{Strategy: Sharded, Workers: 2, SGD: func() sgd.Config {
			c := base(7)
			c.AverageTail = true
			return c
		}()}},
		{"sharded nil rand", Config{Strategy: Sharded, Workers: 2, SGD: func() sgd.Config {
			c := base(8)
			c.Rand = nil
			return c
		}()}},
	}
	cases = append(cases,
		struct {
			name string
			cfg  Config
		}{"workers without sharded", Config{Strategy: Sequential, Workers: 4, SGD: base(9)}},
		struct {
			name string
			cfg  Config
		}{"workers with streaming", Config{Strategy: Streaming, Workers: 4, SGD: func() sgd.Config {
			c := base(10)
			c.Passes = 1
			return c
		}()}},
	)
	for _, tc := range cases {
		if _, err := Run(ds, tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// MinShard fails fast on impossible splits instead of returning 0
	// (which would inflate a downstream sensitivity to +Inf).
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MinShard(10, 20) did not panic")
			}
		}()
		MinShard(10, 20)
	}()
}

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
	}{
		{"sequential", Sequential}, {"seq", Sequential}, {"", Sequential},
		{"Sharded", Sharded}, {"parallel", Sharded},
		{"streaming", Streaming}, {"STREAM", Streaming},
	} {
		got, err := ParseStrategy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseStrategy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
	if Sequential.String() != "sequential" || Sharded.String() != "sharded" || Streaming.String() != "streaming" {
		t.Error("Strategy.String mismatch")
	}
}
