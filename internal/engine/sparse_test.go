package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Strategy-blind dispatch: every strategy must produce the same model
// from the sparse representation as from the dense one (within 1e-12),
// consuming randomness identically, for every loss family.
func TestEngineSparseDenseParityAllStrategies(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	sp := data.SparseSynthetic(r, 240, 80, 8, 0.02)
	de := sp.ToDense()

	losses := []loss.Function{
		loss.NewLogistic(1e-2, 0),
		loss.NewHuber(0.1, 1e-2, 0),
		loss.NewLeastSquares(1e-2, 0),
	}
	type run struct {
		name string
		cfg  Config
	}
	mk := func(f loss.Function, strategy Strategy, workers, passes int, seed int64) Config {
		p := f.Params()
		return Config{
			Strategy: strategy,
			Workers:  workers,
			SGD: sgd.Config{
				Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
				Passes: passes, Batch: 5, Radius: 50, Average: true,
				Rand: rand.New(rand.NewSource(seed)),
			},
		}
	}
	for _, f := range losses {
		runs := []run{
			{"sequential", mk(f, Sequential, 1, 3, 7)},
			{"sharded-4", mk(f, Sharded, 4, 3, 7)},
			{"streaming", func() Config {
				c := mk(f, Streaming, 1, 1, 7)
				c.SGD.Rand = nil
				c.SGD.NoPerm = false // Streaming sets it
				return c
			}()},
		}
		for _, rn := range runs {
			t.Run(fmt.Sprintf("%s/%s", f.Name(), rn.name), func(t *testing.T) {
				cs, cd := rn.cfg, rn.cfg
				if rn.cfg.SGD.Rand != nil {
					cs.SGD.Rand = rand.New(rand.NewSource(7))
					cd.SGD.Rand = rand.New(rand.NewSource(7))
				}
				rs, err := Run(sp, cs)
				if err != nil {
					t.Fatal(err)
				}
				rd, err := Run(de, cd)
				if err != nil {
					t.Fatal(err)
				}
				if rs.Updates != rd.Updates || rs.Passes != rd.Passes || rs.Workers != rd.Workers {
					t.Fatalf("bookkeeping: sparse %d/%d/%d dense %d/%d/%d",
						rs.Updates, rs.Passes, rs.Workers, rd.Updates, rd.Passes, rd.Workers)
				}
				if !vec.Equal(rs.W, rd.W, 1e-12) {
					t.Errorf("W diverged under %s", rn.name)
				}
				if rs.WAvg != nil && !vec.Equal(rs.WAvg, rd.WAvg, 1e-12) {
					t.Errorf("WAvg diverged under %s", rn.name)
				}
			})
		}
	}
}

// Shard views of sparse sources must stay on the sparse tier, both
// through a native Sharder implementation and through the engine's
// fallback RangeView.
func TestShardViewsPreserveSparseTier(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	sp := data.SparseSynthetic(r, 60, 20, 3, 0)
	cfg := sgd.Config{Loss: loss.NewLogistic(0, 0), Step: sgd.Constant(0.1), Passes: 1,
		Rand: rand.New(rand.NewSource(1))}

	if view := shardView(sp, 10, 40); !sgd.UsesSparseKernel(view, cfg) {
		t.Error("native Shard view dropped the sparse tier")
	}
	if view := RangeView(sp, 10, 40); !sgd.UsesSparseKernel(view, cfg) {
		t.Error("RangeView dropped the sparse tier")
	}
	// And the plain view must not claim a tier its source lacks.
	if view := RangeView(sp.ToDense(), 10, 40); sgd.UsesSparseKernel(view, cfg) {
		t.Error("RangeView invented a sparse tier for a dense source")
	}
	// Sparse range views enforce their bounds.
	view := RangeView(sp, 10, 40).(sgd.SparseSamples)
	if row, _ := view.AtSparse(0); row.NNZ() == 0 {
		t.Error("empty row through sparse range view")
	}
	defer func() {
		if recover() == nil {
			t.Error("sparse range view overrun not caught")
		}
	}()
	view.AtSparse(30)
}

// A lazily generated sparse stream must train under every strategy
// without materializing rows, and streaming must match the sequential
// single-pass natural-order run exactly.
func TestSparseStreamAcrossStrategies(t *testing.T) {
	s := data.NewSparseStream(5, 4000, 1000, 30, 0.01)
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	base := sgd.Config{
		Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
		Batch: 10, Radius: 100,
	}

	stream := base
	stream.Passes = 1
	resStream, err := Run(s, Config{Strategy: Streaming, SGD: stream})
	if err != nil {
		t.Fatal(err)
	}

	seqCfg := base
	seqCfg.Passes = 1
	seqCfg.NoPerm = true
	resSeq, err := Run(s, Config{Strategy: Sequential, SGD: seqCfg})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(resStream.W, resSeq.W, 0) {
		t.Error("streaming and natural-order sequential runs differ")
	}

	shardCfg := base
	shardCfg.Passes = 2
	shardCfg.Rand = rand.New(rand.NewSource(3))
	resShard, err := Run(s, Config{Strategy: Sharded, Workers: 4, SGD: shardCfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(resShard.ShardModels) != 4 {
		t.Fatalf("want 4 shard models, got %d", len(resShard.ShardModels))
	}
	// The trained model must actually separate the stream's classes.
	correct := 0
	probe := 500
	for i := 0; i < probe; i++ {
		row, y := s.AtSparse(i)
		if math.Copysign(1, row.Dot(resShard.W)) == y {
			correct++
		}
	}
	if acc := float64(correct) / float64(probe); acc < 0.8 {
		t.Errorf("sharded sparse-stream accuracy %v", acc)
	}
}
