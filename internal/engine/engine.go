// Package engine is the pluggable execution layer for permutation-based
// SGD. Every trainer in the repository — the private bolt-on algorithms
// in internal/core, the noiseless and white-box baselines, and the
// Bismarck-style in-RDBMS substrate — funnels its runs through Run,
// which executes them under one of three strategies behind a single
// interface:
//
//   - Sequential: one goroutine, one permutation — exactly sgd.Run.
//     This is the execution model the paper's Algorithms 1–2 are stated
//     for and the reference semantics the other strategies are defined
//     (and tested) against.
//
//   - Sharded: the paper's parallel bolt-on scheme (the multicore
//     deployment of §4.2 and the MapReduce extension of footnote 2).
//     The row range is cut into Workers disjoint contiguous shards; in
//     every epoch each worker advances permutation SGD one pass over
//     its own shard starting from the shared model, and the per-shard
//     models are merged by uniform averaging — the PostgreSQL
//     combine-function contract. Output perturbation composes cleanly:
//     a differing example lives in exactly one shard, so per epoch the
//     averaged model moves by at most 1/P of the single-shard
//     perturbation, and the telescoping of Lemmas 7–8 carries through
//     unchanged (see dp.SensitivityShardedStronglyConvex and friends
//     for the resulting bounds, and the empirical verification in
//     internal/dp's tests).
//
//   - Streaming: a single pass in natural row order — the online
//     scenario. No permutation array is materialized, so lazily
//     generated sources (data.Stream) train in O(d) memory at any m.
//     Sensitivity bounds hold for any fixed ordering; convergence
//     relies on the source being i.i.d.-ordered, which streams are by
//     construction.
//
// The engine sits strictly below the privacy layer: it adds no noise
// and computes no sensitivities. internal/core calibrates the noise to
// the strategy it selects; the engine's job is to make the execution
// shape a run-time choice instead of a fork of the training loop.
//
// The engine is also representation-blind: every strategy funnels into
// sgd.Run, which executes on the sparse-native kernel whenever the
// source implements sgd.SparseSamples and the loss factors through
// loss.Linear. Shard views preserve the source's tier (Sharder
// implementations hand out sparse views; RangeView wraps sparse
// sources in sparse views), so Sequential, Sharded and Streaming all
// take the same fast path on the same data — pinned per strategy by
// the sparse-vs-dense parity tests.
package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Strategy selects how a PSGD run is executed.
type Strategy int

const (
	// Sequential runs sgd.Run unchanged on one goroutine.
	Sequential Strategy = iota
	// Sharded runs Workers per-shard PSGD workers with per-epoch model
	// averaging.
	Sharded
	// Streaming runs a single in-order pass with no materialized
	// permutation.
	Streaming
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "sequential"
	case Sharded:
		return "sharded"
	case Streaming:
		return "streaming"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy maps a CLI-style name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "sequential", "seq":
		return Sequential, nil
	case "sharded", "shard", "parallel":
		return Sharded, nil
	case "streaming", "stream":
		return Streaming, nil
	default:
		return 0, fmt.Errorf("engine: unknown strategy %q (want sequential|sharded|streaming)", name)
	}
}

// Sharder is implemented by sample sources whose At is not safe for
// concurrent use (typically because it decodes into a reused scratch
// buffer): Shard must return an independent read-only view of rows
// [lo, hi) with its own scratch. bismarck.Table and data.Stream
// implement it. Sources without the method are wrapped in a plain
// range view and must tolerate concurrent At (and, for sparse
// sources, AtSparse) calls from different goroutines, as data.Dataset
// and sgd.SliceSamples do. The same contract serves the intra-batch
// parallel kernel (sgd.Config.KernelWorkers): it takes full-range
// Shard views for its workers when the method exists and shares the
// source otherwise.
type Sharder interface {
	Shard(lo, hi int) sgd.Samples
}

// Config describes one engine run: the shared SGD parameters plus the
// execution strategy that realizes them.
type Config struct {
	// Strategy selects the execution plan (default Sequential).
	Strategy Strategy

	// Workers is the shard count P for Sharded (default 1). One worker
	// is delegated to the sequential path and is bit-for-bit identical
	// to Sequential — the property the engine tests pin down.
	Workers int

	// SGD carries the run parameters common to all strategies. Strategy
	// restrictions: Sharded rejects GradNoise (white-box per-batch noise
	// has no sharded sensitivity analysis), Perm (each worker samples
	// its own shard permutations) and AverageTail; Streaming rejects
	// Passes > 1, Perm and FreshPerm.
	SGD sgd.Config
}

// Result reports one engine run.
type Result struct {
	sgd.Result

	// ShardModels are the final per-shard models before the last merge
	// (Sharded only; a single-element view of W under one-worker
	// delegation). Like Result.W they are NOT private — they exist so
	// experiments can report shard divergence. Never publish them.
	ShardModels [][]float64

	// Workers is the effective worker count of the run (1 for
	// Sequential and Streaming).
	Workers int
}

// Run executes the configured training run and returns the resulting
// model(s). It is deterministic given Config.SGD.Rand's state and the
// worker count, regardless of goroutine scheduling.
func Run(s sgd.Samples, cfg Config) (*Result, error) {
	if cfg.Workers > 1 && cfg.Strategy != Sharded {
		// Reject rather than ignore: a caller who calibrated noise for
		// a P-way sharded run must not silently get a sequential one.
		return nil, fmt.Errorf("engine: Workers=%d requires the Sharded strategy, got %v", cfg.Workers, cfg.Strategy)
	}
	switch cfg.Strategy {
	case Sequential:
		return runSequential(s, cfg.SGD)
	case Sharded:
		return runSharded(s, cfg)
	case Streaming:
		return runStreaming(s, cfg.SGD)
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", cfg.Strategy)
	}
}

func runSequential(s sgd.Samples, c sgd.Config) (*Result, error) {
	res, err := sgd.Run(s, c)
	if err != nil {
		return nil, err
	}
	return &Result{Result: *res, Workers: 1}, nil
}

func runStreaming(s sgd.Samples, c sgd.Config) (*Result, error) {
	if c.Passes == 0 {
		c.Passes = 1
	}
	if c.Passes != 1 {
		return nil, fmt.Errorf("engine: Streaming is single-pass, got Passes=%d (use Sequential with FreshPerm for multi-pass runs)", c.Passes)
	}
	if c.Perm != nil || c.FreshPerm {
		return nil, errors.New("engine: Streaming processes rows in natural order; Perm and FreshPerm do not apply")
	}
	c.NoPerm = true
	return runSequential(s, c)
}

// Plan is the shard layout of a Sharded(P) run over m rows: the single
// authority both the in-process sharded executor and the distributed
// coordinator (internal/dist) partition by, so the two always cut the
// same rows into the same shards — a precondition for their bit-for-bit
// parity. Build one with PlanShards.
type Plan struct {
	// Rows is the total row count m the plan covers.
	Rows int
	// Workers is the shard count P.
	Workers int
	// Bounds are the per-shard [lo, hi) global row ranges, in shard
	// order (ShardBounds' layout: contiguous, nearly equal, remainder
	// merged into the last shard).
	Bounds [][2]int
	// MinShard is the smallest shard size — the size schedules and
	// per-shard sensitivities must be evaluated at (the smallest shard
	// yields the largest bound).
	MinShard int
}

// PlanShards resolves the shard layout for m rows across workers
// shards, or an error when the worker count cannot be satisfied. It is
// the error-returning entry point callers resolving user input go
// through; ShardBounds/MinShard remain as the panicking forms for
// already-validated counts.
func PlanShards(m, workers int) (*Plan, error) {
	if workers < 1 {
		return nil, fmt.Errorf("engine: %d workers", workers)
	}
	if m < 1 {
		return nil, errors.New("engine: empty training set")
	}
	if workers > m {
		return nil, fmt.Errorf("engine: %d workers for %d rows", workers, m)
	}
	return &Plan{
		Rows:     m,
		Workers:  workers,
		Bounds:   ShardBounds(m, workers),
		MinShard: MinShard(m, workers),
	}, nil
}

// ShardBounds returns the [lo, hi) row ranges of the workers shards:
// contiguous, nearly equal, with the remainder merged into the last
// shard — the same policy bismarck.(*Table).Partitions has always used,
// now shared through here. It panics unless 1 ≤ workers ≤ m.
func ShardBounds(m, workers int) [][2]int {
	if workers < 1 || workers > m {
		panic(fmt.Sprintf("engine: cannot split %d rows into %d shards", m, workers))
	}
	out := make([][2]int, workers)
	size := m / workers
	for i := 0; i < workers; i++ {
		lo := i * size
		hi := lo + size
		if i == workers-1 {
			hi = m
		}
		out[i] = [2]int{lo, hi}
	}
	return out
}

// MinShard returns the smallest shard size ShardBounds produces — the
// size per-shard sensitivities must be evaluated at, since the smallest
// shard yields the largest bound. Workers ≤ 1 returns m. Like
// ShardBounds it panics when workers exceeds m: returning 0 would turn
// a downstream 2L/(γ·minShard) into +Inf instead of failing fast (use
// ShardSize for the error-returning form).
func MinShard(m, workers int) int {
	if workers <= 1 {
		return m
	}
	if workers > m {
		panic(fmt.Sprintf("engine: cannot split %d rows into %d shards", m, workers))
	}
	return m / workers
}

// ShardSize is the validating form of MinShard for callers resolving a
// run shape from user input: it returns the size schedules and
// sensitivities must be evaluated at, or an error when the worker
// count cannot be satisfied. It is the single authority the
// calibration layers (core, baselines) share.
func ShardSize(m, workers int) (int, error) {
	if workers > m {
		return 0, fmt.Errorf("engine: %d workers for %d rows", workers, m)
	}
	return MinShard(m, workers), nil
}

// shardView returns a read-only view of rows [lo, hi), through the
// source's own Sharder implementation when it has one.
func shardView(s sgd.Samples, lo, hi int) sgd.Samples {
	if sh, ok := s.(Sharder); ok {
		return sh.Shard(lo, hi)
	}
	return RangeView(s, lo, hi)
}

// RangeView wraps a concurrency-safe source in a read-only row-range
// view of [lo, hi). It is what the engine builds for sources without a
// Sharder implementation; wrappers that relabel or restrict another
// source (eval.BinaryView) reuse it rather than duplicating the type.
//
// The view preserves the source's tier: when the wrapped source
// implements sgd.SparseSamples, so does the view, so restricting a
// sparse source never silently demotes a run to the dense kernel.
func RangeView(s sgd.Samples, lo, hi int) sgd.Samples {
	if lo < 0 || hi < lo || hi > s.Len() {
		panic(fmt.Sprintf("engine: range view [%d,%d) out of bounds for %d rows", lo, hi, s.Len()))
	}
	if ss, ok := s.(sgd.SparseSamples); ok {
		return &sparseRangeView{rangeView{s: s, lo: lo, hi: hi}, ss}
	}
	return &rangeView{s: s, lo: lo, hi: hi}
}

type rangeView struct {
	s      sgd.Samples
	lo, hi int
}

func (v *rangeView) Len() int { return v.hi - v.lo }
func (v *rangeView) Dim() int { return v.s.Dim() }
func (v *rangeView) At(i int) ([]float64, float64) {
	if i < 0 || i >= v.hi-v.lo {
		panic(fmt.Sprintf("engine: view row %d out of range [0,%d)", i, v.hi-v.lo))
	}
	return v.s.At(v.lo + i)
}

// sparseRangeView is RangeView's second-tier variant: a separate type
// rather than an always-present method, so a type assertion on
// sgd.SparseSamples stays truthful about the underlying source.
type sparseRangeView struct {
	rangeView
	ss sgd.SparseSamples
}

func (v *sparseRangeView) AtSparse(i int) (*vec.Sparse, float64) {
	if i < 0 || i >= v.hi-v.lo {
		panic(fmt.Sprintf("engine: view row %d out of range [0,%d)", i, v.hi-v.lo))
	}
	return v.ss.AtSparse(v.lo + i)
}

func runSharded(s sgd.Samples, cfg Config) (*Result, error) {
	c := cfg.SGD
	if cfg.Workers <= 1 {
		// One shard is the whole dataset, so delegate: this is what
		// makes Sharded(P=1) ≡ Sequential hold bit-for-bit (the sharded
		// loop below would consume Rand differently through per-worker
		// seeding).
		res, err := runSequential(s, c)
		if err != nil {
			return nil, err
		}
		res.ShardModels = [][]float64{res.W}
		return res, nil
	}

	plan, err := PlanShards(s.Len(), cfg.Workers)
	if err != nil {
		return nil, err
	}
	if c.Passes < 1 {
		return nil, fmt.Errorf("engine: Passes must be >= 1, got %d", c.Passes)
	}
	if c.GradNoise != nil {
		return nil, errors.New("engine: Sharded rejects GradNoise — white-box per-batch noise has no sharded sensitivity analysis")
	}
	if c.GradPerturb != nil {
		return nil, errors.New("engine: Sharded rejects GradPerturb — the subsampled-Gaussian accounting assumes one sequential update stream")
	}
	if c.Perm != nil {
		return nil, errors.New("engine: Sharded samples per-shard permutations; Perm does not apply")
	}
	if c.NoPerm {
		return nil, errors.New("engine: Sharded samples per-shard permutations; NoPerm does not apply")
	}
	if c.AverageTail {
		return nil, errors.New("engine: AverageTail is not supported under Sharded; use Average")
	}
	if c.Rand == nil {
		return nil, errors.New("engine: Sharded requires Rand to seed its workers")
	}
	d := s.Dim()
	if c.W0 != nil && len(c.W0) != d {
		return nil, fmt.Errorf("engine: W0 has dim %d, want %d", len(c.W0), d)
	}

	shards := make([]sgd.Samples, cfg.Workers)
	for i, b := range plan.Bounds {
		shards[i] = shardView(s, b[0], b[1])
	}

	// Pre-draw per-worker generators from the caller's source so the
	// run is deterministic regardless of goroutine scheduling. Each
	// worker keeps its generator across epochs, so every epoch scans a
	// fresh shard permutation (the §3.2.3 fresh-permutation extension;
	// sensitivity is unchanged by it).
	rngs := make([]*rand.Rand, cfg.Workers)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(c.Rand.Int63()))
	}

	w := make([]float64, d)
	if c.W0 != nil {
		copy(w, c.W0)
	}
	var wsum, epochAvg []float64
	if c.Average {
		wsum = make([]float64, d)
		epochAvg = make([]float64, d)
	}

	models := make([][]float64, cfg.Workers)
	avgs := make([][]float64, cfg.Workers)
	counts := make([]int, cfg.Workers)
	offsets := make([]int, cfg.Workers)
	errs := make([]error, cfg.Workers)

	totalUpdates := 0
	passes := 0
	prevRisk := math.Inf(1)
	for pass := 0; pass < c.Passes; pass++ {
		// Workers poll the context per update; the epoch-level check
		// here additionally stops a cancelled run before it fans out the
		// next merge epoch.
		if c.Ctx != nil {
			if err := c.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		var wg sync.WaitGroup
		for i := 0; i < cfg.Workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := sgd.Run(shards[i], sgd.Config{
					Loss:          c.Loss,
					Step:          c.Step,
					Passes:        1,
					Batch:         c.Batch,
					Radius:        c.Radius,
					Average:       c.Average,
					KernelWorkers: c.KernelWorkers,
					Rand:          rngs[i],
					W0:            w,
					T0:            offsets[i],
					Ctx:           c.Ctx,
					// Progress stays with the merge loop below: the hook
					// contract is one call per epoch on the merged model,
					// not one per shard.
				})
				if err != nil {
					errs[i] = err
					return
				}
				models[i] = res.W
				avgs[i] = res.WAvg
				counts[i] = res.Updates
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// Merge: uniform model averaging, the combine-function contract.
		vec.Mean(w, models...)
		epochUpdates := 0
		for i := range counts {
			offsets[i] += counts[i]
			epochUpdates += counts[i]
		}
		totalUpdates += epochUpdates
		if c.Average {
			// Cross-shard average of the per-shard iterate averages,
			// weighted into the running sum by the epoch's update count
			// so the final WAvg is the uniform average over epochs.
			vec.Mean(epochAvg, avgs...)
			vec.Axpy(wsum, float64(epochUpdates), epochAvg)
		}
		passes++

		if c.Tol > 0 || c.Progress != nil {
			risk := sgd.EmpiricalRisk(s, c.Loss, w)
			if c.Progress != nil {
				c.Progress(passes, risk)
			}
			if c.Tol > 0 {
				if prevRisk-risk < c.Tol {
					break
				}
				prevRisk = risk
			}
		}
	}

	out := &Result{
		Result:      sgd.Result{W: w, Updates: totalUpdates, Passes: passes},
		ShardModels: models,
		Workers:     cfg.Workers,
	}
	if c.Average && totalUpdates > 0 {
		vec.Scale(wsum, 1/float64(totalUpdates))
		out.WAvg = wsum
	}
	return out, nil
}
