package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// Engine benchmarks: one fixed strongly convex workload executed under
// every strategy, so future PRs can track shard-scaling speedups
// (run with: go test -bench Engine -benchmem ./internal/engine).

const (
	benchRows = 20000
	benchDim  = 50
)

func benchCfg(f loss.Function, seed int64) sgd.Config {
	p := f.Params()
	return sgd.Config{
		Loss:   f,
		Step:   sgd.StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 2,
		Batch:  10,
		Radius: 100,
		Rand:   rand.New(rand.NewSource(seed)),
	}
}

func BenchmarkEngineSequential(b *testing.B) {
	ds := data.ScaleSim(1, benchRows, benchDim)
	f := loss.NewLogistic(1e-2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ds, Config{Strategy: Sequential, SGD: benchCfg(f, int64(i))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSharded(b *testing.B) {
	ds := data.ScaleSim(1, benchRows, benchDim)
	f := loss.NewLogistic(1e-2, 0)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(ds, Config{Strategy: Sharded, Workers: workers, SGD: benchCfg(f, int64(i))}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineStreaming(b *testing.B) {
	s := data.NewStream(1, benchRows, benchDim, 0.4, 0)
	f := loss.NewLogistic(1e-2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := benchCfg(f, int64(i))
		c.Passes = 1
		c.Rand = nil
		if _, err := Run(s, Config{Strategy: Streaming, SGD: c}); err != nil {
			b.Fatal(err)
		}
	}
}
