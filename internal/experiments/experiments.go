// Package experiments regenerates every table and figure of the
// paper's evaluation (§4 and Appendices B–D). Each experiment is a
// named runner registered in Registry; cmd/experiments and the
// repository-level benchmarks drive the same runners, so the CLI output
// and the testing.B results come from identical code paths.
//
// The runners print text tables whose rows/series mirror the paper's
// plots. Absolute numbers differ from the paper (simulated datasets, a
// Go simulator instead of PostgreSQL+C), but the qualitative shape —
// who wins, by what factor, where the crossovers fall — is the
// reproduction target. EXPERIMENTS.md records paper-vs-measured for
// each artifact.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"

	"boltondp/internal/baselines"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
	"boltondp/internal/projection"
	"boltondp/internal/sgd"
)

// Config controls how large and verbose an experiment run is.
type Config struct {
	// Scale multiplies the paper's dataset sizes (1.0 = full size,
	// which for HIGGS means 10.5M rows). The default used by the CLI
	// is 0.05; benchmarks use smaller still.
	Scale float64
	// Seed makes runs reproducible.
	Seed int64
	// Out receives the experiment's text output.
	Out io.Writer
	// Quick trims parameter grids (fewer ε points, fewer trials) for
	// use in benchmarks and smoke tests.
	Quick bool
	// Repeats averages every accuracy cell over this many independent
	// training runs (default 1, the paper's single-draw protocol).
	// Useful for smoothing the small-ε regime, where a single noise
	// draw dominates the plotted point.
	Repeats int
	// Workers > 1 runs every "ours" and "noiseless" training through
	// the execution engine's Sharded strategy with this many workers
	// (the white-box baselines stay sequential — they have no sharded
	// analysis). Default 1: sequential, the paper's protocol.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Repeats < 1 {
		c.Repeats = 1
	}
	return c
}

// Runner executes one experiment.
type Runner func(cfg Config) error

// Registry maps experiment IDs (see DESIGN.md §3) to runners.
var Registry = map[string]Runner{
	"table2":    Table2Convergence,
	"table3":    Table3Datasets,
	"table4":    Table4StepSizes,
	"fig1":      Fig1Integration,
	"fig2a":     Fig2ScalabilityMemory,
	"fig2b":     Fig2ScalabilityDisk,
	"fig3":      Fig3AccuracyPublic,
	"fig4a":     Fig4aPassesConvex,
	"fig4b":     Fig4bPassesStronglyConvex,
	"fig4c":     Fig4cBatchConvex,
	"fig5":      Fig5Runtime,
	"fig6":      Fig6AccuracyPrivateTuning,
	"fig7":      Fig7HuberSVM,
	"fig8":      Fig8LargeDatasetsPublic,
	"fig9":      Fig9LargeDatasetsPrivate,
	"fig10":     Fig10BatchSweep,
	"dist":      DistLoopback,
	"scaling":   ScalingSharded,
	"stream":    StreamingOnline,
	"sparse":    SparseKernel,
	"serve":     ServeThroughput,
	"outofcore": OutOfCore,
	"kernelpar": KernelParallel,
	"storev2":   StoreV2,
	"online":    OnlineContinual,
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) error {
	r, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(cfg)
}

// ---------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------

// algorithms compared in the accuracy figures, in the paper's order.
var algoNames = []string{"noiseless", "ours", "scs13", "bst14"}

// test scenario of §4.3 ("Test Scenarios"): convexity × privacy flavor.
type scenario struct {
	name     string
	strongly bool
	approx   bool // (ε,δ)-DP instead of pure ε-DP
}

var scenarios = []scenario{
	{"Test1 Convex ε-DP", false, false},
	{"Test2 Convex (ε,δ)-DP", false, true},
	{"Test3 StronglyConvex ε-DP", true, false},
	{"Test4 StronglyConvex (ε,δ)-DP", true, true},
}

// trainSpec bundles everything a single binary training run needs.
type trainSpec struct {
	algo    string // noiseless | ours | scs13 | bst14
	budget  dp.Budget
	f       loss.Function
	k, b    int
	radius  float64
	workers int // > 1 runs ours/noiseless under the sharded engine
	rand    *rand.Rand
}

// strategyFor maps a worker count to the engine strategy trainBinary
// passes down for the black-box algorithms.
func strategyFor(workers int) engine.Strategy {
	if workers > 1 {
		return engine.Sharded
	}
	return engine.Sequential
}

// trainBinary runs one binary classifier training under the spec.
// BST14 has no pure ε-DP form; callers must skip it in Tests 1 and 3
// exactly as the paper does.
func trainBinary(s sgd.Samples, spec trainSpec) ([]float64, error) {
	switch spec.algo {
	case "noiseless":
		res, err := baselines.Noiseless(s, spec.f, baselines.Options{
			Passes: spec.k, Batch: spec.b, Radius: spec.radius, Rand: spec.rand,
			Strategy: strategyFor(spec.workers), Workers: spec.workers,
		})
		if err != nil {
			return nil, err
		}
		return res.W, nil
	case "ours":
		res, err := core.Train(s, spec.f, core.Options{
			Budget: spec.budget, Passes: spec.k, Batch: spec.b,
			Radius: spec.radius, Rand: spec.rand,
			Strategy: strategyFor(spec.workers), Workers: spec.workers,
			// Figure parity: reproduce the paper's Δ₂ = 2L/(γmb)
			// calibration (see dp.SensitivityStronglyConvex's note on
			// why the library default differs).
			PaperBatchSensitivity: true,
		})
		if err != nil {
			return nil, err
		}
		return res.W, nil
	case "scs13":
		res, err := baselines.SCS13(s, spec.f, baselines.Options{
			Budget: spec.budget, Passes: spec.k, Batch: spec.b,
			Radius: spec.radius, Rand: spec.rand,
		})
		if err != nil {
			return nil, err
		}
		return res.W, nil
	case "bst14":
		radius := spec.radius
		if radius <= 0 {
			// BST14's step size needs a bounded hypothesis space even
			// in the unconstrained convex tests; we give it a generous
			// ball (models on unit-norm data have O(1) norms).
			radius = 10
		}
		res, err := baselines.BST14(s, spec.f, baselines.Options{
			Budget: spec.budget, Passes: spec.k, Batch: spec.b,
			Radius: radius, Rand: spec.rand,
		})
		if err != nil {
			return nil, err
		}
		return res.W, nil
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", spec.algo)
	}
}

// lossFor builds the loss for a scenario: plain logistic for the convex
// tests, L2-regularized logistic for the strongly convex ones (§4.3),
// or the Huber variants when huber is set (Appendix B, h = 0.1).
func lossFor(strongly bool, lambda float64, huber bool) (loss.Function, float64) {
	if huber {
		if strongly {
			return loss.NewHuber(0.1, lambda, 0), 1 / lambda
		}
		return loss.NewHuber(0.1, 0, 0), 0
	}
	if strongly {
		return loss.NewLogistic(lambda, 0), 1 / lambda // R = 1/λ (§4.3)
	}
	return loss.NewLogistic(0, 0), 0
}

// accuracyFor trains a classifier on train (binary, or one-vs-all with
// an even budget split for multiclass data — §4.3) and returns its test
// accuracy.
func accuracyFor(train, test *data.Dataset, spec trainSpec) (float64, error) {
	model, err := classifierFor(train, spec)
	if err != nil {
		return 0, err
	}
	return eval.Accuracy(test, model), nil
}

// compLambda compensates the regularization strength for scaled-down
// datasets. The strongly convex noise regime is governed by the product
// γ·m (Δ₂ = 2L/(γmb)): running the paper's λ on a dataset shrunk by
// `scale` would inflate the noise by 1/scale and bury every private
// algorithm. Scaling λ by 1/scale keeps γ·m — and with it the paper's
// signal-to-noise operating point — invariant, capped at 0.1 to keep
// the objective sensible. At scale 1 this is the identity, so full-size
// runs use the paper's λ verbatim.
func compLambda(lambda, scale float64) float64 {
	if lambda == 0 || scale >= 1 {
		return lambda
	}
	l := lambda / scale
	if l > 0.1 {
		l = 0.1
	}
	return l
}

// epsGrid returns the ε sweep for a dataset (§4.3 "Privacy
// Parameters"): the larger grid for MNIST (budget is split 10 ways),
// the smaller one for binary tasks. Quick mode keeps 3 points.
func epsGrid(multiclass, quick bool) []float64 {
	var g []float64
	if multiclass {
		g = []float64{0.1, 0.2, 0.5, 1, 2, 4}
	} else {
		g = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4}
	}
	if quick {
		return []float64{g[0], g[2], g[5]}
	}
	return g
}

// deltaFor is δ = 1/m² (§4.3).
func deltaFor(m int) float64 {
	d := 1 / (float64(m) * float64(m))
	if d >= 1 {
		d = 0.25
	}
	return d
}

// mnistProjected generates the MNIST simulation and applies the
// 784 → 50 Gaussian random projection of §4.3.
func mnistProjected(r *rand.Rand, scale float64) (train, test *data.Dataset) {
	tr, te := data.MNISTSim(r, scale)
	proj := projection.New(r, 784, 50)
	train = &data.Dataset{Name: tr.Name + "-p50", Classes: tr.Classes, X: proj.ApplyAll(tr.X), Y: tr.Y}
	test = &data.Dataset{Name: te.Name + "-p50", Classes: te.Classes, X: proj.ApplyAll(te.X), Y: te.Y}
	return train, test
}

// newTab returns a tabwriter over the config output.
func newTab(cfg Config) *tabwriter.Writer {
	return tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
}
