package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"boltondp/internal/data"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
)

// OutOfCore measures the on-disk columnar dataset store (the PR 5
// tentpole, DESIGN.md §7) against in-memory training across density ×
// chunk-size, the two axes of its cost model. Every cell converts the
// same CSR dataset to a store file, trains the same single-pass
// streaming epoch from both representations under the same seed, and
// reports the conversion time, file size, epoch times and the
// overhead ratio — the number the CI gate pins at ≤ 1.15 on the KDD
// workload. Models are checked bit-identical per cell (the
// representation-independence invariant), so the table measures cost
// only; there is no accuracy column because there is nothing that
// could differ.
func OutOfCore(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Out-of-core: store-backed vs in-memory epoch, density × chunk size ==")

	lambda := compLambda(1e-2, cfg.Scale)
	f := loss.NewLogistic(lambda, 0)

	type workload struct {
		name string
		ds   *data.SparseDataset
	}
	var loads []workload
	m := scaled(100000, cfg.Scale, 2000)
	nnzGrid := []int{10, 50, 200}
	if cfg.Quick {
		nnzGrid = []int{50}
	}
	for _, nnz := range nnzGrid {
		ds := data.SparseSynthetic(rand.New(rand.NewSource(cfg.Seed)), m, 1000, nnz, 0.02)
		loads = append(loads, workload{fmt.Sprintf("synth d=1000 %.0f%%", 100*float64(nnz)/1000), ds})
	}
	kdd, _ := data.KDDSimSparse(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Scale)
	loads = append(loads, workload{fmt.Sprintf("kdd-onehot d=%d %.0f%%", kdd.Dim(), 100*kdd.Density()), kdd})

	chunkGrid := []int{1024, store.DefaultChunkRows, 16384}
	if cfg.Quick {
		chunkGrid = []int{store.DefaultChunkRows}
	}

	dir, err := os.MkdirTemp("", "boltondp-outofcore")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	epoch := func(s sgd.Samples) ([]float64, time.Duration, error) {
		start := time.Now()
		res, err := engine.Run(s, engine.Config{
			Strategy: engine.Streaming,
			SGD: sgd.Config{
				Loss: f, Step: sgd.InvSqrtT(1), Passes: 1, Batch: 10, Radius: 1 / lambda,
			},
		})
		if err != nil {
			return nil, 0, err
		}
		return res.W, time.Since(start), nil
	}

	w := newTab(cfg)
	fmt.Fprintln(w, "workload\trows\tchunk\tconvert\tfile MB\tmem epoch\tstore epoch\toverhead\tbit-identical")
	for _, ld := range loads {
		for _, chunkRows := range chunkGrid {
			path := filepath.Join(dir, "o.bolt")
			start := time.Now()
			if err := store.Write(path, ld.ds, store.Options{ChunkRows: chunkRows}); err != nil {
				return err
			}
			convert := time.Since(start)
			st, err := os.Stat(path)
			if err != nil {
				return err
			}
			rd, err := store.Open(path)
			if err != nil {
				return err
			}

			// Warm both paths once, then time the better of two epochs
			// each (the experiment analogue of the CI gate's min-of-N).
			if _, _, err := epoch(ld.ds); err != nil {
				rd.Close()
				return err
			}
			if _, _, err := epoch(rd); err != nil {
				rd.Close()
				return err
			}
			wm, ws := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
			var wMem, wStore []float64
			for i := 0; i < 2; i++ {
				model, d, err := epoch(ld.ds)
				if err != nil {
					rd.Close()
					return err
				}
				if d < wm {
					wm = d
				}
				wMem = model
				if model, d, err = epoch(rd); err != nil {
					rd.Close()
					return err
				}
				if d < ws {
					ws = d
				}
				wStore = model
			}
			identical := len(wMem) == len(wStore)
			for i := range wMem {
				identical = identical && math.Float64bits(wMem[i]) == math.Float64bits(wStore[i])
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%.1f\t%v\t%v\t%.2fx\t%t\n",
				ld.name, ld.ds.Len(), chunkRows,
				convert.Round(time.Millisecond), float64(st.Size())/(1<<20),
				wm.Round(time.Millisecond), ws.Round(time.Millisecond),
				float64(ws)/float64(wm), identical)
			rd.Close()
		}
	}
	return w.Flush()
}
