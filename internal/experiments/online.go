package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/eval"
	"boltondp/internal/store"
)

// OnlineContinual measures the continual-training trade-off (DESIGN.md
// §12): under one FIXED total ε, how does accuracy evolve as data
// arrives when the budget is split into N retraining windows? Few
// windows buy low-noise models that go stale; many windows stay fresh
// but each release is noisier. The experiment streams KDDSimSparse
// through a segment directory — half the rows up front, the rest in N
// arrival batches — retrains one warm-started continual window per
// batch, and reports test accuracy after every window, alongside the
// one-shot baseline (all of ε on the initial half, never retrained)
// and the noiseless upper bound on the full data.
func OnlineContinual(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Online: continual private training on kdd-onehot, accuracy vs windows at fixed total ε ==")

	r := rand.New(rand.NewSource(cfg.Seed))
	train, test := data.KDDSimSparse(r, cfg.Scale)
	lambda := compLambda(1e-2, cfg.Scale)
	f, radius := lossFor(true, lambda, false)
	total := dp.Budget{Epsilon: 1, Delta: deltaFor(train.Len())}
	k, b := 5, 50
	if cfg.Quick {
		k = 2
	}

	m := train.Len()
	head := m / 2
	slice := func(lo, hi int) *data.SparseDataset {
		ds := data.NewSparseDataset(train.Name, train.Dim())
		for i := lo; i < hi; i++ {
			x, y := train.AtSparse(i)
			if err := ds.Append(x, y); err != nil {
				panic(err) // rows re-appended verbatim cannot violate the dataset contract
			}
		}
		return ds
	}

	tmp, err := os.MkdirTemp("", "boltondp-online")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	grid := []int{1, 2, 4, 8}
	if cfg.Quick {
		grid = []int{1, 4}
	}

	w := newTab(cfg)
	fmt.Fprintln(w, "variant\tε/window\taccuracy after each window →")

	// One-shot baseline: the whole budget on the initial half, then the
	// model serves unchanged while the remaining data arrives.
	oneShot, err := trainBinary(slice(0, head), trainSpec{
		algo: "ours", budget: total, f: f, k: k, b: b, radius: radius,
		rand: rand.New(rand.NewSource(cfg.Seed + 1)),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "one-shot (ε on first half)\t%.3g\t%.4f (stale)\n",
		total.Epsilon, eval.Accuracy(test, &eval.Linear{W: oneShot}))

	for _, windows := range grid {
		dir := filepath.Join(tmp, fmt.Sprintf("n%d", windows))
		if _, err := store.AppendSegment(dir, slice(0, head), store.Options{}); err != nil {
			return err
		}
		d, err := store.OpenDir(dir)
		if err != nil {
			return err
		}
		ct, err := core.NewContinualRDP(total, windows, f,
			core.WithPasses(k), core.WithBatch(b), core.WithRadius(radius),
			core.WithRand(rand.New(rand.NewSource(cfg.Seed+int64(windows)))))
		if err != nil {
			d.Close()
			return err
		}
		row := fmt.Sprintf("continual N=%d\t%.3g\t", windows, ct.WindowBudget().Epsilon)
		for i := 0; i < windows; i++ {
			lo := head + i*(m-head)/windows
			hi := head + (i+1)*(m-head)/windows
			if hi > lo {
				if _, err := store.AppendSegment(dir, slice(lo, hi), store.Options{}); err != nil {
					d.Close()
					return err
				}
				if err := d.Reload(); err != nil {
					d.Close()
					return err
				}
			}
			res, err := ct.Retrain(context.Background(), d)
			if err != nil {
				d.Close()
				return err
			}
			row += fmt.Sprintf("%.4f ", eval.Accuracy(test, &eval.Linear{W: res.W}))
		}
		fmt.Fprintln(w, row)
		d.Close()
	}

	noiseless, err := trainBinary(train, trainSpec{
		algo: "noiseless", f: f, k: k, b: b, radius: radius,
		rand: rand.New(rand.NewSource(cfg.Seed + 2)),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "noiseless (full data)\t-\t%.4f\n", eval.Accuracy(test, &eval.Linear{W: noiseless}))
	return w.Flush()
}
