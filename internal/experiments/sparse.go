package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// SparseKernel measures the sparse-native execution kernel against the
// dense path on the workloads it exists for: a density sweep over
// synthetic high-dimensional data, and the paper's one-hot-heavy
// KDDCup-99 intrusion-detection workload (Appendix C) in its natural
// sparse encoding. Each row trains the same private model twice from
// the same seed — once over the CSR representation (sparse kernel),
// once over its dense materialization — and reports wall time, the
// epoch-time speedup, the calibrated Δ₂ and the test accuracies. The
// punchline columns: Δ₂ is identical by construction (sensitivity is a
// function of (L, β, γ, m, strategy), never of the representation, and
// the shared Rand is consumed identically), accuracy matches to noise
// rounding, and the speedup approaches the inverse density.
func SparseKernel(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Sparse kernel: CSR vs dense execution, same seed, same noise ==")

	// Keep γ·m — the strongly convex noise operating point — invariant
	// under scaled-down runs, as the accuracy figures do.
	lambda := compLambda(1e-2, cfg.Scale)
	f := loss.NewLogistic(lambda, 0)

	type workload struct {
		name  string
		train sgd.Samples // must implement sgd.SparseSamples
		test  sgd.Samples
	}
	var loads []workload

	// Density sweep: d = 1000, nnz ∈ {10, 50, 200} → 1%, 5%, 20%.
	root := rand.New(rand.NewSource(cfg.Seed))
	m := scaled(100000, cfg.Scale, 2000)
	nnzGrid := []int{10, 50, 200}
	if cfg.Quick {
		nnzGrid = []int{50}
	}
	for _, nnz := range nnzGrid {
		full := data.SparseSynthetic(rand.New(rand.NewSource(cfg.Seed)), m, 1000, nnz, 0.02)
		tr, te := full.Split(root, 0.9)
		loads = append(loads, workload{
			fmt.Sprintf("synth d=1000 %.0f%%", 100*float64(nnz)/1000), tr, te,
		})
	}

	// The paper's workload: one-hot KDDCup-99 at Table 3 scale.
	kTrain, kTest := data.KDDSimSparse(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Scale)
	loads = append(loads, workload{
		fmt.Sprintf("kdd-onehot d=%d %.0f%%", kTrain.Dim(), 100*kTrain.Density()), kTrain, kTest,
	})

	w := newTab(cfg)
	fmt.Fprintln(w, "workload\trows\tsparse wall\tdense wall\tspeedup\tΔ₂ equal\tacc sparse\tacc dense")
	for _, ld := range loads {
		sp, ok := ld.train.(*data.SparseDataset)
		if !ok {
			return fmt.Errorf("experiments: %s train set is not sparse", ld.name)
		}
		// (ε,δ)-DP: Gaussian noise grows with √d instead of d, the
		// regime the paper itself uses for high-dimensional runs — pure
		// ε-DP noise at d = 1000 would bury any model and make the
		// accuracy columns meaningless.
		opt := core.Options{
			Budget: dp.Budget{Epsilon: 1, Delta: deltaFor(ld.train.Len())},
			Passes: 3, Batch: 10, Radius: 1 / lambda,
		}
		if !sgd.UsesSparseKernel(sp, sgd.Config{Loss: f, Step: sgd.Constant(1), Passes: 1, NoPerm: true}) {
			return fmt.Errorf("experiments: %s would not dispatch to the sparse kernel", ld.name)
		}

		optS := opt
		optS.Rand = rand.New(rand.NewSource(cfg.Seed + 7))
		startS := time.Now()
		resS, err := core.Train(sp, f, optS)
		if err != nil {
			return err
		}
		wallS := time.Since(startS)

		de := sp.ToDense()
		optD := opt
		optD.Rand = rand.New(rand.NewSource(cfg.Seed + 7))
		startD := time.Now()
		resD, err := core.Train(de, f, optD)
		if err != nil {
			return err
		}
		wallD := time.Since(startD)

		accS := eval.Accuracy(ld.test, &eval.Linear{W: resS.W})
		accD := eval.Accuracy(ld.test, &eval.Linear{W: resD.W})
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%.1fx\t%t\t%.4f\t%.4f\n",
			ld.name, sp.Len(),
			wallS.Round(time.Millisecond), wallD.Round(time.Millisecond),
			float64(wallD)/float64(wallS),
			resS.Sensitivity == resD.Sensitivity && resS.NoiseNorm == resD.NoiseNorm,
			accS, accD)
	}
	return w.Flush()
}
