package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"boltondp/internal/data"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
)

// KernelParallel measures the deterministic intra-batch parallel SGD
// kernel (PR 7 tentpole, DESIGN.md §9) across its three governing axes:
// worker count W, mini-batch size b, and data density (dense rows take
// the two-phase gradient/reduce kernel, sparse rows the Deriv fan-out).
// Every cell runs the same seeded epoch at W and at W=1 and reports the
// wall-clock speedup; the models are checked bit-identical per cell —
// the determinism contract that separates this kernel from Hogwild —
// so, as in OutOfCore, the table measures cost only.
//
// Batch 1 rows show 1.00x by construction: below the kernel's minimum
// batch the parallel path declines to engage and the sequential kernel
// runs untouched.
func KernelParallel(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Parallel kernel: epoch speedup vs sequential, W × batch × density ==")

	lambda := compLambda(1e-2, cfg.Scale)
	f := loss.NewLogistic(lambda, 0)
	m := scaled(20000, cfg.Scale, 1000)

	type workload struct {
		name string
		s    sgd.Samples
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	const dim = 400
	dense := &sgd.SliceSamples{X: make([][]float64, m), Y: make([]float64, m)}
	for i := 0; i < m; i++ {
		x := make([]float64, dim)
		n := 0.0
		for j := range x {
			x[j] = r.NormFloat64()
			n += x[j] * x[j]
		}
		n = math.Sqrt(n)
		for j := range x {
			x[j] /= n
		}
		dense.X[i], dense.Y[i] = x, float64(1-2*(i%2))
	}
	loads := []workload{
		{"dense d=400 100%", dense},
		{"sparse d=2000 5%", data.SparseSynthetic(rand.New(rand.NewSource(cfg.Seed+1)), m, 2000, 100, 0.02)},
	}
	if !cfg.Quick {
		loads = append(loads, workload{"sparse d=2000 1%", data.SparseSynthetic(rand.New(rand.NewSource(cfg.Seed+2)), m, 2000, 20, 0.02)})
	}

	batchGrid := []int{1, 10, 32}
	if cfg.Quick {
		batchGrid = []int{32}
	}
	wGrid := []int{2, 4}

	epoch := func(s sgd.Samples, batch, workers int) ([]float64, time.Duration, error) {
		start := time.Now()
		res, err := engine.Run(s, engine.Config{
			Strategy: engine.Sequential,
			SGD: sgd.Config{
				Loss: f, Step: sgd.InvSqrtT(1), Passes: 1, Batch: batch,
				Radius: 1 / lambda, KernelWorkers: workers,
				Rand: rand.New(rand.NewSource(cfg.Seed + 9)),
			},
		})
		if err != nil {
			return nil, 0, err
		}
		return res.W, time.Since(start), nil
	}

	w := newTab(cfg)
	fmt.Fprintln(w, "workload\tbatch\tW\tseq epoch\tpar epoch\tspeedup\tbit-identical")
	for _, ld := range loads {
		for _, batch := range batchGrid {
			for _, workers := range wGrid {
				// Warm once each, then best-of-2 alternating.
				if _, _, err := epoch(ld.s, batch, 1); err != nil {
					return err
				}
				if _, _, err := epoch(ld.s, batch, workers); err != nil {
					return err
				}
				seq, par := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
				var wSeq, wPar []float64
				for i := 0; i < 2; i++ {
					model, d, err := epoch(ld.s, batch, 1)
					if err != nil {
						return err
					}
					if d < seq {
						seq = d
					}
					wSeq = model
					if model, d, err = epoch(ld.s, batch, workers); err != nil {
						return err
					}
					if d < par {
						par = d
					}
					wPar = model
				}
				identical := len(wSeq) == len(wPar)
				for i := range wSeq {
					identical = identical && math.Float64bits(wSeq[i]) == math.Float64bits(wPar[i])
				}
				fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%v\t%.2fx\t%t\n",
					ld.name, batch, workers,
					seq.Round(time.Millisecond), par.Round(time.Millisecond),
					float64(seq)/float64(par), identical)
			}
		}
	}
	return w.Flush()
}

// StoreV2 measures format version 2 (delta+varint index sections,
// DESIGN.md §9) against version 1 on the out-of-core workloads: file
// size — the number the ≥25% CI gate pins on KDD — and the streaming
// epoch cost of decoding varints on every chunk switch instead of
// aliasing the mapping. Models from both encodings are checked
// bit-identical per cell.
func StoreV2(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Store v2: delta+varint chunks vs v1, size and epoch overhead ==")

	lambda := compLambda(1e-2, cfg.Scale)
	f := loss.NewLogistic(lambda, 0)

	type workload struct {
		name string
		ds   *data.SparseDataset
	}
	var loads []workload
	if !cfg.Quick {
		m := scaled(100000, cfg.Scale, 2000)
		loads = append(loads,
			workload{"synth d=1000 5%", data.SparseSynthetic(rand.New(rand.NewSource(cfg.Seed)), m, 1000, 50, 0.02)},
			workload{"synth d=1000 20%", data.SparseSynthetic(rand.New(rand.NewSource(cfg.Seed)), m, 1000, 200, 0.02)},
		)
	}
	kdd, _ := data.KDDSimSparse(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Scale)
	loads = append(loads, workload{fmt.Sprintf("kdd-onehot d=%d %.0f%%", kdd.Dim(), 100*kdd.Density()), kdd})

	dir, err := os.MkdirTemp("", "boltondp-storev2")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	epoch := func(s sgd.Samples) ([]float64, time.Duration, error) {
		start := time.Now()
		res, err := engine.Run(s, engine.Config{
			Strategy: engine.Streaming,
			SGD: sgd.Config{
				Loss: f, Step: sgd.InvSqrtT(1), Passes: 1, Batch: 10, Radius: 1 / lambda,
			},
		})
		if err != nil {
			return nil, 0, err
		}
		return res.W, time.Since(start), nil
	}

	w := newTab(cfg)
	fmt.Fprintln(w, "workload\trows\tv1 MB\tv2 MB\tv2/v1\tv1 epoch\tv2 epoch\toverhead\tbit-identical")
	for _, ld := range loads {
		var rd [2]*store.Reader
		var size [2]int64
		for i, version := range []int{1, 2} {
			path := filepath.Join(dir, fmt.Sprintf("v%d.bolt", version))
			if err := store.Write(path, ld.ds, store.Options{Version: version}); err != nil {
				return err
			}
			st, err := os.Stat(path)
			if err != nil {
				return err
			}
			size[i] = st.Size()
			if rd[i], err = store.Open(path); err != nil {
				return err
			}
		}
		if _, _, err := epoch(rd[0]); err != nil {
			return err
		}
		if _, _, err := epoch(rd[1]); err != nil {
			return err
		}
		t1, t2 := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
		var w1, w2 []float64
		for i := 0; i < 2; i++ {
			model, d, err := epoch(rd[0])
			if err != nil {
				return err
			}
			if d < t1 {
				t1 = d
			}
			w1 = model
			if model, d, err = epoch(rd[1]); err != nil {
				return err
			}
			if d < t2 {
				t2 = d
			}
			w2 = model
		}
		identical := len(w1) == len(w2)
		for i := range w1 {
			identical = identical && math.Float64bits(w1[i]) == math.Float64bits(w2[i])
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.3f\t%v\t%v\t%.2fx\t%t\n",
			ld.name, ld.ds.Len(),
			float64(size[0])/(1<<20), float64(size[1])/(1<<20), float64(size[1])/float64(size[0]),
			t1.Round(time.Millisecond), t2.Round(time.Millisecond),
			float64(t2)/float64(t1), identical)
		rd[0].Close()
		rd[1].Close()
	}
	return w.Flush()
}
