package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"boltondp/internal/bismarck"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/loss"
)

// udaAlgorithms are the four integrations of Figure 1, in plot order.
var udaAlgorithms = []bismarck.Algorithm{
	bismarck.Noiseless, bismarck.OutputPerturb, bismarck.AlgSCS13, bismarck.AlgBST14,
}

// loadMemTable materializes a dataset into an in-memory Bismarck table.
func loadMemTable(d *data.Dataset) (*bismarck.Table, error) {
	t := bismarck.NewMemTable(d.Name, d.Dim())
	if err := t.InsertAll(d); err != nil {
		return nil, err
	}
	return t, nil
}

// timeTrain runs one TrainUDA call and returns the wall-clock duration.
func timeTrain(t *bismarck.Table, f loss.Function, cfg bismarck.TrainConfig) (time.Duration, *bismarck.TrainResult, error) {
	start := time.Now()
	res, err := bismarck.TrainUDA(t, f, cfg)
	return time.Since(start), res, err
}

// timeTrainRepeated mirrors the paper's measurement protocol ("the
// average of 4 warm-cache runs"): one warm-up run, then `runs` timed
// repetitions. It returns the mean duration, the spread (max−min), and
// the last run's result.
func timeTrainRepeated(t *bismarck.Table, f loss.Function, cfg bismarck.TrainConfig, runs int) (mean, spread time.Duration, res *bismarck.TrainResult, err error) {
	if runs < 1 {
		runs = 1
	}
	if _, res, err = timeTrain(t, f, cfg); err != nil { // warm-up
		return 0, 0, nil, err
	}
	var total, min, max time.Duration
	for i := 0; i < runs; i++ {
		var d time.Duration
		d, res, err = timeTrain(t, f, cfg)
		if err != nil {
			return 0, 0, nil, err
		}
		total += d
		if i == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return total / time.Duration(runs), max - min, res, nil
}

// Fig1Integration demonstrates the integration-effort contrast of
// Figure 1 and §4.2: the bolt-on algorithm touches only the driver
// (one Perturb call after all epochs — integration point B), while
// SCS13/BST14 must hook the UDA's transition function and sample noise
// on every mini-batch (integration point C). The run reports, per
// algorithm, where noise is injected and how many times the sampling
// code executes.
func Fig1Integration(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Figure 1: UDA integration points and noise-sampling counts ==")
	root := rand.New(rand.NewSource(cfg.Seed))
	d := data.ScaleSim(cfg.Seed, scaled(20000, cfg.Scale, 500), 50)
	f := loss.NewLogistic(1e-4, 0)
	w := newTab(cfg)
	fmt.Fprintln(w, "algorithm\tinjection point\tUDA modified\tnoise draws\tupdates")
	for _, alg := range udaAlgorithms {
		tab, err := loadMemTable(d)
		if err != nil {
			return err
		}
		res, err := bismarck.TrainUDA(tab, f, bismarck.TrainConfig{
			Algorithm: alg,
			Budget:    dp.Budget{Epsilon: 0.1, Delta: 1e-6},
			Passes:    2, Batch: 10, Radius: 1e4,
			Rand: root,
		})
		if err != nil {
			return err
		}
		point, modified := "—", "no"
		switch alg {
		case bismarck.OutputPerturb:
			point = "driver, after all epochs (B)"
		case bismarck.AlgSCS13, bismarck.AlgBST14:
			point, modified = "transition fn, every mini-batch (C)", "yes"
		}
		fmt.Fprintf(w, "%v\t%s\t%s\t%d\t%d\n", alg, point, modified, res.NoiseDraws, res.Updates)
	}
	return w.Flush()
}

// scalabilitySweep runs one epoch of every algorithm at each table size
// and prints runtime per epoch — the series of Figure 2.
func scalabilitySweep(cfg Config, disk bool) error {
	cfg = cfg.withDefaults()
	root := rand.New(rand.NewSource(cfg.Seed))
	const d = 50 // Figure 2: "All datasets have d = 50 features"
	sizes := []int{
		scaled(1000000, cfg.Scale, 2000),
		scaled(2000000, cfg.Scale, 4000),
		scaled(4000000, cfg.Scale, 8000),
	}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	f := loss.NewLogistic(1e-4, 0) // ε=0.1, λ=1e-4 per the caption
	w := newTab(cfg)
	fmt.Fprintln(w, "rows\talgorithm\truntime/epoch\tpage reads")
	var tmpDir string
	if disk {
		var err error
		tmpDir, err = os.MkdirTemp("", "boltondp-fig2b-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmpDir)
	}
	for _, m := range sizes {
		ds := data.ScaleSim(cfg.Seed+int64(m), m, d)
		for _, alg := range udaAlgorithms {
			var tab *bismarck.Table
			var err error
			if disk {
				// Pool sized to ~10% of the table: scans must hit disk.
				pages := m/(8192/((d+1)*8))/10 + 1
				tab, err = bismarck.CreateDiskTable(
					filepath.Join(tmpDir, fmt.Sprintf("%d-%v.tbl", m, alg)), d, pages)
				if err == nil {
					err = tab.InsertAll(ds)
				}
			} else {
				tab, err = loadMemTable(ds)
			}
			if err != nil {
				return err
			}
			// Batch size 1 per the caption — the worst case for the
			// white-box algorithms' per-batch sampling.
			dur, res, err := timeTrain(tab, f, bismarck.TrainConfig{
				Algorithm: alg,
				Budget:    dp.Budget{Epsilon: 0.1, Delta: 1e-6},
				Passes:    1, Batch: 1, Radius: 1e4,
				NoShuffle: true, // time the epoch, not the one-off shuffle
				Rand:      root, PaperBatchSensitivity: true,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d\t%v\t%v\t%d\n", m, alg, dur.Round(time.Millisecond), res.Stats.Reads)
			if disk {
				tab.Remove()
			}
		}
	}
	return w.Flush()
}

// Fig2ScalabilityMemory reproduces Figure 2(a): runtime per epoch vs
// dataset size when the table fits in memory. All algorithms scale
// linearly; SCS13/BST14 carry a linearly growing sampling overhead.
func Fig2ScalabilityMemory(cfg Config) error {
	fmt.Fprintln(cfg.withDefaults().Out, "== Figure 2(a): scalability, in-memory (b=1, ε=0.1, λ=1e-4, d=50) ==")
	return scalabilitySweep(cfg, false)
}

// Fig2ScalabilityDisk reproduces Figure 2(b): runtime per epoch vs
// dataset size when the table exceeds the buffer pool, so every scan
// pays file I/O that affects all algorithms equally.
func Fig2ScalabilityDisk(cfg Config) error {
	fmt.Fprintln(cfg.withDefaults().Out, "== Figure 2(b): scalability, disk-based (pool = 10% of table) ==")
	return scalabilitySweep(cfg, true)
}

// Fig5Runtime reproduces Figure 5: runtime of the Bismarck integrations
// on the three simulated datasets — varying the number of epochs at
// batch size 10 (row 1) and varying the batch size for a single epoch
// (row 2), strongly convex (ε,δ)-DP, ε = 0.1.
func Fig5Runtime(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Figure 5: runtime overhead (strongly convex, (ε,δ)-DP, ε=0.1) ==")
	root := rand.New(rand.NewSource(cfg.Seed))
	f := loss.NewLogistic(1e-4, 0)

	sets := make([]*data.Dataset, 0, 3)
	for _, nd := range figure3Datasets {
		train, _ := nd.gen(root, cfg.Scale)
		train.Name = nd.name
		// Runtime only depends on (m, d, b, k); binarize multiclass
		// labels so one SGD UDA covers every dataset.
		if train.Classes > 2 {
			for i, y := range train.Y {
				if y < float64(train.Classes)/2 {
					train.Y[i] = -1
				} else {
					train.Y[i] = 1
				}
			}
			train.Classes = 2
		}
		sets = append(sets, train)
	}

	w := newTab(cfg)
	fmt.Fprintln(w, "dataset\tvary\tvalue\talgorithm\truntime\t±spread")
	epochGrid := []int{1, 5, 10, 20}
	batchGrid := []int{1, 10, 100, 500}
	runs := 3
	if cfg.Quick {
		epochGrid = []int{1, 5}
		batchGrid = []int{1, 100}
		runs = 1
	}
	for _, ds := range sets {
		// Row 1: vary epochs at batch 10.
		for _, k := range epochGrid {
			for _, alg := range udaAlgorithms {
				tab, err := loadMemTable(ds)
				if err != nil {
					return err
				}
				mean, spread, _, err := timeTrainRepeated(tab, f, bismarck.TrainConfig{
					Algorithm: alg, Budget: dp.Budget{Epsilon: 0.1, Delta: deltaFor(ds.Len())},
					Passes: k, Batch: 10, Radius: 1e4, NoShuffle: true, Rand: root,
					PaperBatchSensitivity: true,
				}, runs)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s\tepochs\t%d\t%v\t%v\t%v\n",
					ds.Name, k, alg, mean.Round(time.Millisecond), spread.Round(time.Millisecond))
			}
		}
		// Row 2: vary batch size for one epoch.
		for _, b := range batchGrid {
			for _, alg := range udaAlgorithms {
				tab, err := loadMemTable(ds)
				if err != nil {
					return err
				}
				mean, spread, _, err := timeTrainRepeated(tab, f, bismarck.TrainConfig{
					Algorithm: alg, Budget: dp.Budget{Epsilon: 0.1, Delta: deltaFor(ds.Len())},
					Passes: 1, Batch: b, Radius: 1e4, NoShuffle: true, Rand: root,
					PaperBatchSensitivity: true,
				}, runs)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s\tbatch\t%d\t%v\t%v\t%v\n",
					ds.Name, b, alg, mean.Round(time.Millisecond), spread.Round(time.Millisecond))
			}
		}
	}
	return w.Flush()
}

// scaled mirrors data's size helper for experiment workloads.
func scaled(x int, scale float64, min int) int {
	m := int(float64(x) * scale)
	if m < min {
		m = min
	}
	return m
}
