package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dist"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
)

// DistLoopback measures the distributed coordinator/worker trainer
// against the single-process Sharded(P) engine it is pinned to: same
// task, same seed, P loopback workers behind real HTTP servers. Two
// claims are on trial. First, the models are bit-identical — the dist
// subsystem's core invariant, checked on every row. Second, the wire
// cost depends on the source mode: an inline source ships the whole
// CSR payload in the shard installs (O(m·d) on the wire, the dominant
// cost below), while a store-backed source ships only chunk ranges and
// CRCs — workers open the shared file themselves, so dispatch cost is
// independent of m and the per-epoch traffic is O(P·d) either way.
func DistLoopback(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Distributed loopback: coordinator + P HTTP workers vs single-process Sharded(P) ==")

	root := rand.New(rand.NewSource(cfg.Seed))
	m := scaled(200000, cfg.Scale, 4000)
	const d = 50
	lambda := 1e-2
	f := loss.NewLogistic(lambda, 0)

	// Inline mode: a dense simulator split held by the coordinator.
	full := data.ScaleSim(cfg.Seed, m, d)
	train, test := full.Split(root, 0.9)

	// Store mode: a sparse dataset written once to the columnar store
	// file every worker opens (loopback stands in for a shared mount).
	dir, err := os.MkdirTemp("", "dist-exp-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sparse := data.SparseSynthetic(rand.New(rand.NewSource(cfg.Seed)), m, d, 10, 0.1)
	sparseTest := data.SparseSynthetic(rand.New(rand.NewSource(cfg.Seed+1)), m/10, d, 10, 0.1)
	path := filepath.Join(dir, "train.bolt")
	if err := store.Write(path, sparse, store.Options{ChunkRows: 4096}); err != nil {
		return err
	}
	rd, err := store.Open(path)
	if err != nil {
		return err
	}
	defer rd.Close()

	sources := []struct {
		name     string
		src      dist.Source
		baseline sgd.Samples // what the single-process run trains on
		test     sgd.Samples // what the accuracy column scores on
	}{
		{"inline", dist.NewInlineSource(train), train, test},
		{"store", dist.NewStoreSource(rd), rd, sparseTest},
	}
	grid := []int{1, 2, 4}
	if cfg.Quick {
		grid = []int{1, 2}
	}

	w := newTab(cfg)
	fmt.Fprintln(w, "source\tP\tsingle\tdist\toverhead\tparity\ttest accuracy")
	for _, sc := range sources {
		for _, p := range grid {
			opts := func(seed int64) []core.Option {
				return []core.Option{
					core.WithBudget(dp.Budget{Epsilon: 0.1}),
					core.WithPasses(5), core.WithBatch(10), core.WithRadius(1 / lambda),
					core.WithStrategy(engine.Sharded, p),
					core.WithRand(rand.New(rand.NewSource(seed))),
				}
			}
			seed := cfg.Seed + int64(p)

			start := time.Now()
			single, err := core.TrainCtx(context.Background(), sc.baseline, f, opts(seed)...)
			if err != nil {
				return err
			}
			singleWall := time.Since(start)

			coord := dist.NewCoordinator(dist.CoordinatorConfig{})
			var servers []*httptest.Server
			var workers []*dist.Worker
			for i := 0; i < p; i++ {
				wk := dist.NewWorker()
				ts := httptest.NewServer(wk.Handler())
				workers = append(workers, wk)
				servers = append(servers, ts)
				if err := coord.Register(context.Background(), ts.URL); err != nil {
					return err
				}
			}
			start = time.Now()
			got, err := core.TrainDistributed(context.Background(), coord, sc.src, f, opts(seed)...)
			distWall := time.Since(start)
			for _, ts := range servers {
				ts.Close()
			}
			for _, wk := range workers {
				wk.Close()
			}
			if err != nil {
				return err
			}

			parity := "bit-identical"
			for i := range single.W {
				if math.Float64bits(single.W[i]) != math.Float64bits(got.W[i]) {
					parity = "DIVERGED"
				}
			}
			acc := eval.Accuracy(sc.test, &eval.Linear{W: got.W})
			fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%.2fx\t%s\t%.4f\n",
				sc.name, p, singleWall.Round(time.Millisecond), distWall.Round(time.Millisecond),
				float64(distWall)/float64(singleWall), parity, acc)
			if parity != "bit-identical" {
				w.Flush() //nolint:errcheck // the error below is the report
				return fmt.Errorf("experiments: distributed run diverged from single-process Sharded(%d) over %s", p, sc.name)
			}
		}
	}
	return w.Flush()
}
