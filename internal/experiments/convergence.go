package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/baselines"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// Table2Convergence reproduces the shape of Table 2: the excess
// empirical risk of our private PSGD vs the extended BST14 under
// (ε,δ)-DP with a constant number of passes, as the training-set size m
// grows. The paper's claim is a rate of Õ(√d/√m) (convex) and
// Õ(√d/m) (strongly convex) for ours, with extra log factors for
// BST14; we report measured excess risk per m and the empirical decay
// exponent α in risk ∝ m^(−α).
func Table2Convergence(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Table 2: excess empirical risk vs m, (ε,δ)-DP, constant passes ==")
	root := rand.New(rand.NewSource(cfg.Seed))
	sizes := []int{1000, 2000, 4000, 8000, 16000}
	trials := 5
	if cfg.Quick {
		sizes = []int{1000, 4000}
		trials = 2
	}
	const d = 20
	w := newTab(cfg)
	fmt.Fprintln(w, "setting\tm\tours excess\tbst14 excess")

	type row struct{ ours, bst float64 }
	results := map[string][]row{}
	for _, strongly := range []bool{false, true} {
		setting := "convex"
		if strongly {
			setting = "strongly-convex"
		}
		for _, m := range sizes {
			ds := data.Synthetic(root, data.GenConfig{
				Name: "t2", M: m, D: d, Classes: 2, Spread: 0.6, Flip: 0.05,
			})
			lambda := 1e-3
			f, radius := lossFor(strongly, lambda, false)
			lstar := approxMinRisk(ds, f, radius, root)
			budget := dp.Budget{Epsilon: 0.5, Delta: deltaFor(m)}

			var oursSum, bstSum float64
			for trial := 0; trial < trials; trial++ {
				res, err := core.Train(ds, f, core.Options{
					Budget: budget, Passes: 1, Batch: 1, Radius: radius,
					Average: true, Rand: root,
				})
				if err != nil {
					return err
				}
				oursSum += math.Max(0, sgd.EmpiricalRisk(ds, f, res.W)-lstar)
				bres, err := baselines.BST14(ds, f, baselines.Options{
					Budget: budget, Passes: 1, Batch: 1,
					Radius: bstRadius(radius), Rand: root,
				})
				if err != nil {
					return err
				}
				bstSum += math.Max(0, sgd.EmpiricalRisk(ds, f, bres.W)-lstar)
			}
			r := row{ours: oursSum / float64(trials), bst: bstSum / float64(trials)}
			results[setting] = append(results[setting], r)
			fmt.Fprintf(w, "%s\t%d\t%.5f\t%.5f\n", setting, m, r.ours, r.bst)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// Empirical decay exponents between the first and last sizes.
	for _, setting := range []string{"convex", "strongly-convex"} {
		rs := results[setting]
		first, last := rs[0], rs[len(rs)-1]
		span := math.Log(float64(sizes[len(sizes)-1]) / float64(sizes[0]))
		alpha := func(a, b float64) float64 {
			if a <= 0 || b <= 0 {
				return math.NaN()
			}
			return math.Log(a/b) / span
		}
		fmt.Fprintf(cfg.Out, "%s: ours decay exponent α≈%.2f, bst14 α≈%.2f (paper: ours ≥ bst14 at constant passes)\n",
			setting, alpha(first.ours, last.ours), alpha(first.bst, last.bst))
	}
	return nil
}

// bstRadius gives BST14 a bounded hypothesis space in the convex case.
func bstRadius(r float64) float64 {
	if r > 0 {
		return r
	}
	return 10
}

// approxMinRisk estimates L*_S by running many passes of noiseless
// strongly convex PSGD (or averaged convex PSGD) — good enough for the
// excess-risk shape, which is all Table 2 compares.
func approxMinRisk(ds *data.Dataset, f loss.Function, radius float64, r *rand.Rand) float64 {
	p := f.Params()
	var step sgd.Schedule
	if p.StronglyConvex() {
		step = sgd.StronglyConvexPaper(p.Beta, p.Gamma)
	} else {
		step = sgd.Constant(1 / math.Sqrt(float64(ds.Len())))
	}
	res, err := sgd.Run(ds, sgd.Config{
		Loss: f, Step: step, Passes: 30, Batch: 1, Radius: radius, Rand: r,
	})
	if err != nil {
		return 0
	}
	return sgd.EmpiricalRisk(ds, f, res.W)
}

// Table3Datasets reproduces Table 3: the dataset inventory, printed at
// the configured scale next to the paper's full-size numbers.
func Table3Datasets(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "== Table 3: datasets (simulated at scale %g) ==\n", cfg.Scale)
	root := rand.New(rand.NewSource(cfg.Seed))
	w := newTab(cfg)
	fmt.Fprintln(w, "dataset\ttask\ttrain\ttest\tdims\tpaper train/test/dims")
	type entry struct {
		name, task, paper string
		gen               func(*rand.Rand, float64) (*data.Dataset, *data.Dataset)
	}
	entries := []entry{
		{"MNIST-sim", "10 classes", "60000/10000/784(50)", data.MNISTSim},
		{"Protein-sim", "binary", "72876/72875/74", data.ProteinSim},
		{"Covtype-sim", "binary", "498010/83002/54", data.CovtypeSim},
		{"HIGGS-sim", "binary", "10.5M/—/28", data.HIGGSSim},
		{"KDDCup99-sim", "binary", "~494k/—/41", data.KDDSim},
	}
	for _, e := range entries {
		tr, te := e.gen(root, cfg.Scale)
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%s\n", e.name, e.task, tr.Len(), te.Len(), tr.Dim(), e.paper)
	}
	return w.Flush()
}

// Table4StepSizes reproduces Table 4: the step-size schedule every
// algorithm uses in each test scenario, printed from the live schedule
// objects so the table cannot drift from the code.
func Table4StepSizes(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Table 4: step sizes (C = convex, SC = strongly convex) ==")
	w := newTab(cfg)
	const m = 10000
	lambda := 1e-4
	fc := loss.NewLogistic(0, 0)
	fsc := loss.NewLogistic(lambda, 0)
	pc, psc := fc.Params(), fsc.Params()
	fmt.Fprintln(w, "setting\tnon-private\tours\tscs13\tbst14")
	fmt.Fprintf(w, "C + ε-DP\t%s\t%s\t%s\t×\n",
		sgd.Constant(1/math.Sqrt(m)).Name(),
		sgd.Constant(math.Min(1/math.Sqrt(m), 2/pc.Beta)).Name(),
		sgd.InvSqrtT(1).Name())
	fmt.Fprintf(w, "C + (ε,δ)-DP\t%s\t%s\t%s\t2R/(G√t) (Alg 4)\n",
		sgd.Constant(1/math.Sqrt(m)).Name(),
		sgd.Constant(math.Min(1/math.Sqrt(m), 2/pc.Beta)).Name(),
		sgd.InvSqrtT(1).Name())
	fmt.Fprintf(w, "SC + ε-DP\t%s\t%s\t%s\t×\n",
		sgd.InvT(psc.Gamma).Name(),
		sgd.StronglyConvexPaper(psc.Beta, psc.Gamma).Name(),
		sgd.InvSqrtT(1).Name())
	fmt.Fprintf(w, "SC + (ε,δ)-DP\t%s\t%s\t%s\t1/(γt) (Alg 5)\n",
		sgd.InvT(psc.Gamma).Name(),
		sgd.StronglyConvexPaper(psc.Beta, psc.Gamma).Name(),
		sgd.InvSqrtT(1).Name())
	return w.Flush()
}
