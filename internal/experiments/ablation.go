package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/eval"
)

// Ablations: experiments the paper motivates but does not plot, probing
// the design choices DESIGN.md calls out. Registered alongside the
// paper artifacts under "ablation-*" IDs.

func init() {
	Registry["ablation-steps"] = AblationStepFamilies
	Registry["ablation-averaging"] = AblationAveraging
	Registry["ablation-noise"] = AblationNoiseDimension
	Registry["ablation-freshperm"] = AblationFreshPermutation
}

// AblationStepFamilies compares the three convex step-size families of
// Corollaries 1–3 at equal privacy: the decreasing and square-root
// schedules buy a k-independent (or slower-growing) sensitivity at the
// price of smaller steps. The run prints the calibrated Δ₂ and the test
// accuracy per family and pass count.
func AblationStepFamilies(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Ablation: convex step families (Cor 1–3), ε-DP (Protein-sim) ==")
	root := rand.New(rand.NewSource(cfg.Seed))
	train, test := data.ProteinSim(root, cfg.Scale)
	f, _ := lossFor(false, 0, false)
	w := newTab(cfg)
	fmt.Fprintln(w, "step family\tpasses\tΔ₂\taccuracy")
	passes := []int{1, 5, 20}
	if cfg.Quick {
		passes = []int{1, 5}
	}
	for _, kind := range []core.StepKind{core.StepConstant, core.StepDecreasing, core.StepSqrt} {
		for _, k := range passes {
			res, err := core.PrivateConvexPSGD(train, f, core.Options{
				Budget: dp.Budget{Epsilon: 0.4},
				Passes: k, Batch: 50, Step: kind, Rand: root,
			})
			if err != nil {
				return err
			}
			acc := eval.Accuracy(test, &eval.Linear{W: res.W})
			fmt.Fprintf(w, "%v\t%d\t%.6f\t%.4f\n", kind, k, res.Sensitivity, acc)
		}
	}
	return w.Flush()
}

// AblationAveraging compares the model returned by Algorithm 2 under
// the three release choices Lemma 10 covers: the last iterate, the
// uniform iterate average and the tail (last ⌈ln T⌉) average — all at
// identical sensitivity, so any accuracy difference is pure
// optimization behavior.
func AblationAveraging(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Ablation: model averaging schemes (Lemma 10), strongly convex ε-DP (Covtype-sim) ==")
	root := rand.New(rand.NewSource(cfg.Seed))
	train, test := data.CovtypeSim(root, cfg.Scale)
	lambda := compLambda(1e-4, cfg.Scale)
	f, radius := lossFor(true, lambda, false)
	w := newTab(cfg)
	fmt.Fprintln(w, "release\teps\taccuracy")
	for _, eps := range epsGrid(false, cfg.Quick) {
		for _, mode := range []string{"last", "average", "tail"} {
			opt := core.Options{
				Budget: dp.Budget{Epsilon: eps},
				Passes: 10, Batch: 50, Radius: radius, Rand: root,
				PaperBatchSensitivity: true, // figure parity
			}
			switch mode {
			case "average":
				opt.Average = true
			case "tail":
				opt.AverageTail = true
			}
			res, err := core.PrivateStronglyConvexPSGD(train, f, opt)
			if err != nil {
				return err
			}
			acc := eval.Accuracy(test, &eval.Linear{W: res.W})
			fmt.Fprintf(w, "%s\t%g\t%.4f\n", mode, eps, acc)
		}
	}
	return w.Flush()
}

// AblationFreshPermutation compares shuffle-once PSGD against
// resampling the permutation every pass (§3.2.3 "Fresh Permutation at
// Each Pass": the sensitivity analysis is unchanged, so any accuracy
// difference at equal ε is pure optimization variance).
func AblationFreshPermutation(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Ablation: shuffle-once vs fresh permutation per pass, strongly convex ε-DP (Protein-sim) ==")
	root := rand.New(rand.NewSource(cfg.Seed))
	train, test := data.ProteinSim(root, cfg.Scale)
	lambda := compLambda(1e-4, cfg.Scale)
	f, radius := lossFor(true, lambda, false)
	w := newTab(cfg)
	fmt.Fprintln(w, "permutation\teps\taccuracy\tΔ₂")
	for _, eps := range epsGrid(false, cfg.Quick) {
		for _, fresh := range []bool{false, true} {
			res, err := core.PrivateStronglyConvexPSGD(train, f, core.Options{
				Budget: dp.Budget{Epsilon: eps},
				Passes: 10, Batch: 50, Radius: radius,
				FreshPerm: fresh, Rand: root,
				PaperBatchSensitivity: true, // figure parity
			})
			if err != nil {
				return err
			}
			name := "shuffle-once"
			if fresh {
				name = "fresh-per-pass"
			}
			acc := eval.Accuracy(test, &eval.Linear{W: res.W})
			fmt.Fprintf(w, "%s\t%g\t%.4f\t%.6f\n", name, eps, acc, res.Sensitivity)
		}
	}
	return w.Flush()
}

// AblationNoiseDimension contrasts the two mechanisms' dimension
// dependence (Theorems 1–3): pure ε-DP noise grows like d·ln d while
// the Gaussian mechanism grows like √d — the reason §4.3 random-
// projects MNIST before ε-DP training. Reports the mean realized ‖κ‖
// at fixed sensitivity across dimensions.
func AblationNoiseDimension(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Ablation: noise norm vs dimension at Δ₂=0.01, ε=0.1 (δ=1e-6 for Gaussian) ==")
	root := rand.New(rand.NewSource(cfg.Seed))
	w := newTab(cfg)
	fmt.Fprintln(w, "d\tpure ε-DP ‖κ‖\tGaussian ‖κ‖\ttheory pure (dΔ/ε)\ttheory gauss (σ√d)")
	dims := []int{10, 50, 200, 784}
	if cfg.Quick {
		dims = []int{10, 784}
	}
	const sens, eps, delta = 0.01, 0.1, 1e-6
	pure := dp.Budget{Epsilon: eps}
	gauss := dp.Budget{Epsilon: eps, Delta: delta}
	trials := 200
	if cfg.Quick {
		trials = 50
	}
	for _, d := range dims {
		zero := make([]float64, d)
		meanNorm := func(b dp.Budget) (float64, error) {
			var sum float64
			for i := 0; i < trials; i++ {
				out, err := b.Perturb(root, zero, sens)
				if err != nil {
					return 0, err
				}
				var n float64
				for _, v := range out {
					n += v * v
				}
				sum += math.Sqrt(n)
			}
			return sum / float64(trials), nil
		}
		pn, err := meanNorm(pure)
		if err != nil {
			return err
		}
		gn, err := meanNorm(gauss)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%.4f\t%.4f\n",
			d, pn, gn, pure.NoiseScale(d, sens), gauss.NoiseScale(d, sens))
	}
	return w.Flush()
}
