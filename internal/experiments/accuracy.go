package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/eval"
	"boltondp/internal/plot"
	"boltondp/internal/sgd"
	"boltondp/internal/tuning"
)

// classifierFor trains a classifier on train under spec: a binary
// linear model, or a one-vs-all model with the budget split across
// classes for multiclass data (§4.3).
func classifierFor(train *data.Dataset, spec trainSpec) (eval.Classifier, error) {
	if train.Classes <= 2 {
		w, err := trainBinary(train, spec)
		if err != nil {
			return nil, err
		}
		return &eval.Linear{W: w}, nil
	}
	sub := spec
	sub.budget = spec.budget.Split(train.Classes)
	return eval.TrainOneVsAll(train, train.Classes, func(view sgd.Samples, class int) ([]float64, error) {
		return trainBinary(view, sub)
	})
}

// namedDataset pairs a generator with its figure label.
type namedDataset struct {
	name string
	gen  func(r *rand.Rand, scale float64) (train, test *data.Dataset)
}

var figure3Datasets = []namedDataset{
	{"MNIST-sim", mnistProjected},
	{"Protein-sim", data.ProteinSim},
	{"Covtype-sim", data.CovtypeSim},
}

var figure8Datasets = []namedDataset{
	{"HIGGS-sim", func(r *rand.Rand, scale float64) (*data.Dataset, *data.Dataset) {
		// HIGGS is 10.5M rows at scale 1; the runner applies a further
		// 1/10 so the default CLI run stays laptop-sized. Pass a larger
		// -scale to approach the paper's full size.
		return data.HIGGSSim(r, scale/10)
	}},
	{"KDDCup99-sim", data.KDDSim},
}

// tuningGrid returns the hyperparameter grid of §4.3: the full paper
// grid (k ∈ {5,10}, λ ∈ {1e-4,1e-3,1e-2}, b = 50) for strongly convex
// scenarios, and the k-only grid for convex ones, where λ does not
// apply.
func tuningGrid(strongly bool) []tuning.Params {
	if strongly {
		return tuning.PaperGrid()
	}
	return tuning.Grid([]int{5, 10}, []int{50}, []float64{0})
}

// runTuned trains one (dataset, scenario, budget, algorithm) cell with
// the requested tuning protocol and returns test accuracy.
//
// tuner is one of:
//
//	"fixed"   — k = 10, b = 50, λ = 1e-4 (the caption of Figure 3)
//	"private" — Algorithm 3 over the §4.3 grid (Figures 6, 7, 9)
//	"public"  — grid search scored on the public test set (Figures 3
//	            companion protocol and Figure 8)
func runTuned(train, test *data.Dataset, sc scenario, budget dp.Budget, algo string, huber bool, tuner string, scale float64, workers int, r *rand.Rand) (float64, error) {
	fit := func(part *data.Dataset, p tuning.Params) (eval.Classifier, error) {
		lambda := compLambda(p.Lambda, scale)
		if !sc.strongly {
			lambda = 0
		}
		f, radius := lossFor(sc.strongly, lambda, huber)
		return classifierFor(part, trainSpec{
			algo: algo, budget: budget, f: f, k: p.K, b: p.B, radius: radius,
			workers: workers, rand: r,
		})
	}
	switch tuner {
	case "fixed":
		m, err := fit(train, tuning.Params{K: 10, B: 50, Lambda: 1e-4})
		if err != nil {
			return 0, err
		}
		return eval.Accuracy(test, m), nil
	case "private":
		res, err := tuning.Private(train, tuningGrid(sc.strongly), budget, fit, r)
		if err != nil {
			return 0, err
		}
		return eval.Accuracy(test, res.Model), nil
	case "public":
		res, err := tuning.Public(train, test, tuningGrid(sc.strongly), fit)
		if err != nil {
			return 0, err
		}
		return eval.Accuracy(test, res.Model), nil
	default:
		return 0, fmt.Errorf("experiments: unknown tuner %q", tuner)
	}
}

// accuracySweep is the engine behind Figures 3, 6, 7, 8 and 9: for
// every dataset × scenario × ε it reports the test accuracy of each
// algorithm, with parameters chosen by the given tuner, as a table
// followed by an ASCII chart per dataset×scenario (the actual "figure").
// BST14 is skipped in the pure ε-DP scenarios, exactly as in the paper.
func accuracySweep(cfg Config, datasets []namedDataset, huber bool, tuner string) error {
	cfg = cfg.withDefaults()
	root := rand.New(rand.NewSource(cfg.Seed))
	w := newTab(cfg)
	fmt.Fprintln(w, "dataset\tscenario\teps\talgorithm\taccuracy")
	type chart struct {
		title  string
		xs     []float64
		series []plot.Series
	}
	var charts []chart
	for _, nd := range datasets {
		train, test := nd.gen(root, cfg.Scale)
		delta := deltaFor(train.Len())
		grid := epsGrid(train.Classes > 2, cfg.Quick)
		for _, sc := range scenarios {
			ch := chart{title: fmt.Sprintf("%s — %s (accuracy vs ε)", nd.name, sc.name), xs: grid}
			for _, algo := range algoNames {
				ch.series = append(ch.series, plot.Series{Name: algo, Y: make([]float64, len(grid))})
			}
			for ei, eps := range grid {
				budget := dp.Budget{Epsilon: eps}
				if sc.approx {
					budget.Delta = delta
				}
				for ai, algo := range algoNames {
					if algo == "bst14" && !sc.approx {
						ch.series[ai].Y[ei] = math.NaN()
						continue
					}
					var acc float64
					for rep := 0; rep < cfg.Repeats; rep++ {
						a, err := runTuned(train, test, sc, budget, algo, huber, tuner, cfg.Scale, cfg.Workers, root)
						if err != nil {
							return fmt.Errorf("%s/%s/ε=%g/%s: %w", nd.name, sc.name, eps, algo, err)
						}
						acc += a
					}
					acc /= float64(cfg.Repeats)
					ch.series[ai].Y[ei] = acc
					fmt.Fprintf(w, "%s\t%s\t%g\t%s\t%.4f\n", nd.name, sc.name, eps, algo, acc)
				}
			}
			// Drop all-NaN series (bst14 in pure scenarios).
			kept := ch.series[:0]
			for _, s := range ch.series {
				allNaN := true
				for _, y := range s.Y {
					if !math.IsNaN(y) {
						allNaN = false
						break
					}
				}
				if !allNaN {
					kept = append(kept, s)
				}
			}
			ch.series = kept
			charts = append(charts, ch)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	for _, ch := range charts {
		fmt.Fprintln(cfg.Out)
		if err := plot.Render(cfg.Out, ch.title, ch.xs, ch.series, 10); err != nil {
			return err
		}
	}
	return nil
}

// Fig3AccuracyPublic reproduces Figure 3 (test accuracy when tuning
// with public data; the caption fixes k = 10, b = 50, λ = 1e-4, which
// is what every point uses).
func Fig3AccuracyPublic(cfg Config) error {
	fmt.Fprintln(cfg.withDefaults().Out, "== Figure 3: accuracy vs ε, tuning with public data (k=10, b=50, λ=1e-4) ==")
	return accuracySweep(cfg, figure3Datasets, false, "fixed")
}

// Fig6AccuracyPrivateTuning reproduces Figure 6 (test accuracy with
// the private tuning Algorithm 3 over the §4.3 grid).
func Fig6AccuracyPrivateTuning(cfg Config) error {
	fmt.Fprintln(cfg.withDefaults().Out, "== Figure 6: accuracy vs ε, private tuning (Algorithm 3) ==")
	return accuracySweep(cfg, figure3Datasets, false, "private")
}

// Fig7HuberSVM reproduces Figure 7 (Huber SVM, h = 0.1, private
// tuning).
func Fig7HuberSVM(cfg Config) error {
	fmt.Fprintln(cfg.withDefaults().Out, "== Figure 7: Huber SVM (h=0.1) accuracy vs ε, private tuning ==")
	return accuracySweep(cfg, figure3Datasets, true, "private")
}

// Fig8LargeDatasetsPublic reproduces Figure 8 (HIGGS and KDDCup-99,
// tuning with public data): at very large m, privacy is nearly free
// for the bolt-on algorithms.
func Fig8LargeDatasetsPublic(cfg Config) error {
	fmt.Fprintln(cfg.withDefaults().Out, "== Figure 8: HIGGS/KDDCup-99 accuracy vs ε, public tuning ==")
	return accuracySweep(cfg, figure8Datasets, false, "public")
}

// Fig9LargeDatasetsPrivate reproduces Figure 9 (HIGGS and KDDCup-99,
// private tuning).
func Fig9LargeDatasetsPrivate(cfg Config) error {
	fmt.Fprintln(cfg.withDefaults().Out, "== Figure 9: HIGGS/KDDCup-99 accuracy vs ε, private tuning ==")
	return accuracySweep(cfg, figure8Datasets, false, "private")
}

// Fig4aPassesConvex reproduces Figure 4(a): in the convex case more
// passes mean more noise (Δ₂ = 2kLη/b grows with k), so accuracy
// degrades with k at fixed ε. MNIST simulation, batch 1, Test 1.
func Fig4aPassesConvex(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Figure 4(a): passes vs accuracy, convex ε-DP, b=1 (MNIST-sim) ==")
	return passSweep(cfg, false, 1, []int{1, 10, 20})
}

// Fig4bPassesStronglyConvex reproduces Figure 4(b): in the strongly
// convex case Δ₂ is independent of k, so extra passes only help
// convergence. MNIST simulation, batch 50, Test 3.
func Fig4bPassesStronglyConvex(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Figure 4(b): passes vs accuracy, strongly convex ε-DP, b=50 (MNIST-sim) ==")
	return passSweep(cfg, true, 50, []int{1, 10, 20})
}

func passSweep(cfg Config, strongly bool, batch int, passes []int) error {
	root := rand.New(rand.NewSource(cfg.Seed))
	train, test := mnistProjected(root, cfg.Scale)
	w := newTab(cfg)
	fmt.Fprintln(w, "passes\teps\taccuracy")
	f, radius := lossFor(strongly, compLambda(1e-4, cfg.Scale), false)
	grid := epsGrid(true, cfg.Quick)
	var series []plot.Series
	for _, k := range passes {
		s := plot.Series{Name: fmt.Sprintf("%d passes", k), Y: make([]float64, len(grid))}
		for ei, eps := range grid {
			acc, err := accuracyFor(train, test, trainSpec{
				algo: "ours", budget: dp.Budget{Epsilon: eps},
				f: f, k: k, b: batch, radius: radius,
				workers: cfg.Workers, rand: root,
			})
			if err != nil {
				return err
			}
			s.Y[ei] = acc
			fmt.Fprintf(w, "%d\t%g\t%.4f\n", k, eps, acc)
		}
		series = append(series, s)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out)
	return plot.Render(cfg.Out, "accuracy vs ε by pass count", grid, series, 10)
}

// Fig4cBatchConvex reproduces Figure 4(c): slightly enlarging the
// mini-batch drastically reduces the convex-case noise (Δ₂ ∝ 1/b),
// rescuing the 20-pass run. MNIST simulation, Test 1.
func Fig4cBatchConvex(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Figure 4(c): mini-batch size vs accuracy, convex ε-DP, k=20 (MNIST-sim) ==")
	root := rand.New(rand.NewSource(cfg.Seed))
	train, test := mnistProjected(root, cfg.Scale)
	w := newTab(cfg)
	fmt.Fprintln(w, "batch\teps\taccuracy")
	f, radius := lossFor(false, 0, false)
	grid := epsGrid(true, cfg.Quick)
	var series []plot.Series
	for _, b := range []int{1, 10, 50} {
		s := plot.Series{Name: fmt.Sprintf("b=%d", b), Y: make([]float64, len(grid))}
		for ei, eps := range grid {
			acc, err := accuracyFor(train, test, trainSpec{
				algo: "ours", budget: dp.Budget{Epsilon: eps},
				f: f, k: 20, b: b, radius: radius,
				workers: cfg.Workers, rand: root,
			})
			if err != nil {
				return err
			}
			s.Y[ei] = acc
			fmt.Fprintf(w, "%d\t%g\t%.4f\n", b, eps, acc)
		}
		series = append(series, s)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out)
	return plot.Render(cfg.Out, "accuracy vs ε by mini-batch size (k=20, convex ε-DP)", grid, series, 10)
}

// Fig10BatchSweep reproduces Figure 10 (Appendix D): batch sizes
// 50–200, strongly convex (ε,δ)-DP on the MNIST simulation, all four
// algorithms.
func Fig10BatchSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Figure 10: mini-batch size 50–200 vs accuracy, strongly convex (ε,δ)-DP (MNIST-sim) ==")
	root := rand.New(rand.NewSource(cfg.Seed))
	train, test := mnistProjected(root, cfg.Scale)
	delta := deltaFor(train.Len())
	w := newTab(cfg)
	fmt.Fprintln(w, "batch\teps\talgorithm\taccuracy")
	f, radius := lossFor(true, compLambda(1e-4, cfg.Scale), false)
	batches := []int{50, 100, 150, 200}
	if cfg.Quick {
		batches = []int{50, 200}
	}
	grid := epsGrid(true, cfg.Quick)
	type chart struct {
		title  string
		series []plot.Series
	}
	var charts []chart
	for _, b := range batches {
		ch := chart{title: fmt.Sprintf("b = %d (accuracy vs ε)", b)}
		for _, algo := range algoNames {
			ch.series = append(ch.series, plot.Series{Name: algo, Y: make([]float64, len(grid))})
		}
		for ei, eps := range grid {
			for ai, algo := range algoNames {
				acc, err := accuracyFor(train, test, trainSpec{
					algo: algo, budget: dp.Budget{Epsilon: eps, Delta: delta},
					f: f, k: 10, b: b, radius: radius,
					workers: cfg.Workers, rand: root,
				})
				if err != nil {
					return err
				}
				ch.series[ai].Y[ei] = acc
				fmt.Fprintf(w, "%d\t%g\t%s\t%.4f\n", b, eps, algo, acc)
			}
		}
		charts = append(charts, ch)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	for _, ch := range charts {
		fmt.Fprintln(cfg.Out)
		if err := plot.Render(cfg.Out, ch.title, grid, ch.series, 10); err != nil {
			return err
		}
	}
	return nil
}
