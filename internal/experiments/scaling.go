package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// Engine-strategy experiments: not figures of the paper, but direct
// measurements of its two scalability claims — that the bolt-on
// approach parallelizes for free (multicore deployment, footnote 2's
// MapReduce extension) and that it runs in one pass over data that is
// never materialized (the in-RDBMS/online story). EXPERIMENTS.md
// records the measured tables next to the claims.

// ScalingSharded sweeps the sharded engine's worker count on one
// strongly convex private training task and reports wall time, speedup
// over the sequential run, the calibrated sensitivity and the test
// accuracy. The punchline is the Δ₂ column: constant in P (2L/(γm), the
// sequential bound), so parallelism costs nothing in privacy; wall time
// should fall until P exceeds the physical cores.
func ScalingSharded(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "== Engine scaling: sharded workers sweep (strongly convex, ε=0.1, %d CPUs) ==\n", runtime.NumCPU())
	root := rand.New(rand.NewSource(cfg.Seed))

	m := scaled(400000, cfg.Scale, 8000)
	full := data.ScaleSim(cfg.Seed, m, 50)
	train, test := full.Split(root, 0.9)
	lambda := 1e-2
	f := loss.NewLogistic(lambda, 0)

	workersGrid := []int{1, 2, 4, 8}
	if cfg.Quick {
		workersGrid = []int{1, 4}
	}
	w := newTab(cfg)
	fmt.Fprintln(w, "workers\twall\tspeedup\tΔ₂\ttest accuracy")
	var base time.Duration
	for _, p := range workersGrid {
		start := time.Now()
		res, err := core.Train(train, f, core.Options{
			Budget: dp.Budget{Epsilon: 0.1},
			Passes: 5, Batch: 10, Radius: 1 / lambda,
			Strategy: strategyFor(p), Workers: p,
			Rand: rand.New(rand.NewSource(cfg.Seed + int64(p))),
		})
		if err != nil {
			return err
		}
		wall := time.Since(start)
		if p == 1 {
			base = wall
		}
		speedup := float64(base) / float64(wall)
		acc := eval.Accuracy(test, &eval.Linear{W: res.W})
		fmt.Fprintf(w, "%d\t%v\t%.2fx\t%.4g\t%.4f\n",
			p, wall.Round(time.Millisecond), speedup, res.Sensitivity, acc)
	}
	return w.Flush()
}

// StreamingOnline trains a single-pass private model over a data.Stream
// source — rows are regenerated on the fly and never materialized, the
// same role Bismarck's data synthesizer plays in the paper's
// scalability runs — and compares it against a sequential one-pass run
// on the materialized equivalent. The streamed run should match the
// materialized accuracy at the same Δ₂ while allocating no O(m) state.
func StreamingOnline(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Engine streaming: single-pass online training over a lazy stream ==")

	m := scaled(1000000, cfg.Scale, 10000)
	mTest := m / 10
	const d = 30
	// Train and test are disjoint row ranges of one stream — same class
	// centers, rows regenerated from (seed, index) on every access.
	full := data.NewStream(cfg.Seed, m+mTest, d, 0.4, 0.02)
	stream := full.Shard(0, m)
	test := full.Shard(m, m+mTest)
	lambda := 1e-2
	f := loss.NewLogistic(lambda, 0)

	w := newTab(cfg)
	fmt.Fprintln(w, "mode\trows\twall\tΔ₂\ttest accuracy")
	for _, mode := range []string{"streaming", "materialized"} {
		var train sgd.Samples = stream
		opt := core.Options{
			Budget: dp.Budget{Epsilon: 0.5},
			Batch:  10, Radius: 1 / lambda,
			Rand: rand.New(rand.NewSource(cfg.Seed + 7)),
		}
		if mode == "streaming" {
			opt.Strategy = engine.Streaming
		} else {
			// Materialize the same rows and run the sequential engine
			// (one pass, sampled permutation) for comparison.
			ds := &data.Dataset{Name: "stream-materialized", Classes: 2}
			for i := 0; i < stream.Len(); i++ {
				x, y := stream.At(i)
				xc := make([]float64, len(x))
				copy(xc, x)
				ds.X = append(ds.X, xc)
				ds.Y = append(ds.Y, y)
			}
			train = ds
		}
		start := time.Now()
		res, err := core.Train(train, f, opt)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		acc := eval.Accuracy(test, &eval.Linear{W: res.W})
		fmt.Fprintf(w, "%s\t%d\t%v\t%.4g\t%.4f\n",
			mode, m, wall.Round(time.Millisecond), res.Sensitivity, acc)
	}
	return w.Flush()
}
