package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/dp"
)

// quickCfg is a tiny configuration every runner must complete under.
func quickCfg(buf *bytes.Buffer) Config {
	return Config{Scale: 0.002, Seed: 7, Out: buf, Quick: true}
}

func TestRegistryCoversDesignDoc(t *testing.T) {
	want := []string{
		"table2", "table3", "table4",
		"fig1", "fig2a", "fig2b", "fig3", "fig4a", "fig4b", "fig4c",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ablation-steps", "ablation-averaging", "ablation-noise",
		"ablation-freshperm",
		"scaling", "stream", "sparse", "serve", "outofcore", "dist",
		"kernelpar", "storev2", "accounting", "online",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q missing from Registry", id)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("Registry has %d entries, want %d", len(Registry), len(want))
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Errorf("IDs() returned %d ids", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("IDs() not sorted")
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := Run("nope", Config{}); err == nil {
		t.Error("unknown id accepted")
	}
}

// Every registered experiment must run to completion at tiny scale and
// produce non-trivial output. This is the harness's own integration
// test; the heavier shape checks live in the benchmarks.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(id, quickCfg(&buf)); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if buf.Len() < 40 {
				t.Errorf("%s: suspiciously small output %q", id, buf.String())
			}
		})
	}
}

func TestEpsGrid(t *testing.T) {
	if g := epsGrid(true, false); len(g) != 6 || g[0] != 0.1 || g[5] != 4 {
		t.Errorf("multiclass grid %v", g)
	}
	if g := epsGrid(false, false); len(g) != 6 || g[0] != 0.01 || g[5] != 0.4 {
		t.Errorf("binary grid %v", g)
	}
	if g := epsGrid(true, true); len(g) != 3 {
		t.Errorf("quick grid %v", g)
	}
}

func TestDeltaFor(t *testing.T) {
	if d := deltaFor(1000); d != 1e-6 {
		t.Errorf("deltaFor(1000) = %v", d)
	}
	// Degenerate tiny m still yields a valid δ < 1.
	if d := deltaFor(1); d <= 0 || d >= 1 {
		t.Errorf("deltaFor(1) = %v", d)
	}
}

func TestLossFor(t *testing.T) {
	f, r := lossFor(true, 1e-3, false)
	if !f.Params().StronglyConvex() || r != 1000 {
		t.Errorf("strongly convex lossFor: %v radius %v", f.Name(), r)
	}
	f, r = lossFor(false, 1e-3, false)
	if f.Params().StronglyConvex() || r != 0 {
		t.Errorf("convex lossFor: %v radius %v", f.Name(), r)
	}
	f, _ = lossFor(false, 0, true)
	if !strings.Contains(f.Name(), "huber") {
		t.Errorf("huber lossFor: %v", f.Name())
	}
}

func TestTrainBinaryAllAlgorithms(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ds := data.Synthetic(r, data.GenConfig{Name: "t", M: 400, D: 5, Classes: 2, Spread: 0.4})
	f, radius := lossFor(true, 1e-2, false)
	for _, algo := range algoNames {
		w, err := trainBinary(ds, trainSpec{
			algo: algo, budget: dp.Budget{Epsilon: 1, Delta: 1e-6},
			f: f, k: 2, b: 10, radius: radius, rand: r,
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(w) != 5 {
			t.Errorf("%s: model dim %d", algo, len(w))
		}
	}
	if _, err := trainBinary(ds, trainSpec{algo: "nope", rand: r}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestMnistProjectedShapes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	train, test := mnistProjected(r, 0.01)
	if train.Dim() != 50 || test.Dim() != 50 {
		t.Errorf("projected dims %d/%d, want 50", train.Dim(), test.Dim())
	}
	if train.Classes != 10 {
		t.Errorf("classes %d", train.Classes)
	}
	if train.MaxNorm() > 1+1e-12 {
		t.Errorf("projected max norm %v", train.MaxNorm())
	}
}

func TestRunTunedUnknownTuner(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ds := data.Synthetic(r, data.GenConfig{Name: "t", M: 100, D: 3, Classes: 2, Spread: 0.4})
	_, err := runTuned(ds, ds, scenarios[0], dp.Budget{Epsilon: 1}, "ours", false, "nope", 1, 1, r)
	if err == nil {
		t.Error("unknown tuner accepted")
	}
}

// The headline accuracy claim in miniature: at small ε on the
// well-separated KDD simulation, the bolt-on algorithm should beat
// SCS13 clearly (Figure 8's shape). Averaged over seeds to keep the
// test stable.
func TestOursBeatsSCS13AtSmallEpsilon(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison is not short")
	}
	var oursSum, scsSum float64
	const trials = 5
	for seed := int64(0); seed < trials; seed++ {
		r := rand.New(rand.NewSource(40 + seed))
		train, test := data.KDDSim(r, 0.01)
		f, radius := lossFor(true, 1e-4, false)
		budget := dp.Budget{Epsilon: 0.05}
		spec := trainSpec{budget: budget, f: f, k: 5, b: 50, radius: radius, rand: r}
		spec.algo = "ours"
		a1, err := accuracyFor(train, test, spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.algo = "scs13"
		a2, err := accuracyFor(train, test, spec)
		if err != nil {
			t.Fatal(err)
		}
		oursSum += a1
		scsSum += a2
	}
	if oursSum/trials <= scsSum/trials {
		t.Errorf("ours (%.3f) should beat SCS13 (%.3f) at ε=0.05 on KDD-sim",
			oursSum/trials, scsSum/trials)
	}
}
