package experiments

import (
	"fmt"
	"math/rand"

	"boltondp/internal/account/compose"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
)

func init() {
	Registry["accounting"] = Accounting
}

// Accounting measures what the pluggable composition rules buy (DESIGN
// §11): the ε each rule charges for the standard KDD subsampled-
// Gaussian workload (T = 1000 steps, b = 50, σ̃ = 1, δ = 1e-6 — the
// acceptance workload: rdp must come in under half of simple), the
// noise multiplier each rule needs to fit a fixed budget, and a
// train-and-score comparison of output perturbation vs gradient
// perturbation under the same (ε, δ) on the protein task.
func Accounting(cfg Config) error {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))

	// Part 1: ε spent per rule on the fixed KDD-sized workload. The row
	// count is the full-scale KDD m regardless of cfg.Scale — this is
	// arithmetic on the accountant, not a training run.
	const (
		kddRows  = 543423.0
		kddBatch = 50.0
		kddSteps = 1000
		kddSigma = 1.0
		kddDelta = 1e-6
	)
	q := kddBatch / kddRows
	fmt.Fprintf(cfg.Out, "Composition-rule pricing, KDD workload (m=%.0f b=%.0f T=%d σ̃=%g δ=%g):\n",
		kddRows, kddBatch, kddSteps, kddSigma, kddDelta)
	tw := newTab(cfg)
	fmt.Fprintf(tw, "rule\tε spent\tvs simple\n")
	var simpleEps float64
	for _, rule := range compose.Rules() {
		price, err := compose.PriceSGM(rule, kddSigma, q, kddSteps, dp.Budget{Epsilon: 1, Delta: kddDelta})
		if err != nil {
			return err
		}
		if rule == compose.RuleSimple {
			simpleEps = price.Epsilon
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.2f×\n", rule, price.Epsilon, price.Epsilon/simpleEps)
	}
	tw.Flush()

	// Part 2: the noise multiplier each rule needs for the same workload
	// to fit ε = 2 — smaller is a directly usable utility win.
	budget := dp.Budget{Epsilon: 2, Delta: kddDelta}
	fmt.Fprintf(cfg.Out, "\nSolved noise multiplier σ̃ to fit %v over the same T, q:\n", budget)
	tw = newTab(cfg)
	fmt.Fprintf(tw, "rule\tσ̃\n")
	for _, rule := range compose.Rules() {
		sigma, err := compose.SolveSGMSigma(rule, q, kddSteps, budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.4f\n", rule, sigma)
	}
	tw.Flush()

	// Part 3: output perturbation vs gradient perturbation at the same
	// budget on the protein task (strongly convex logistic).
	train, test := data.ProteinSim(r, cfg.Scale)
	lambda := compLambda(1e-4, cfg.Scale)
	f := loss.NewLogistic(lambda, 0)
	b := dp.Budget{Epsilon: 1, Delta: deltaFor(train.Len())}
	passes := 10
	if cfg.Quick {
		passes = 3
	}
	fmt.Fprintf(cfg.Out, "\nProtein (m=%d), budget %v, k=%d, b=50: output vs gradient perturbation\n",
		train.Len(), b, passes)
	tw = newTab(cfg)
	fmt.Fprintf(tw, "strategy\taccounting\ttest acc\n")

	outRes, err := core.Train(train, f, core.Options{
		Budget: b, Passes: passes, Batch: 50, Radius: 1 / lambda,
		Rand: rand.New(rand.NewSource(cfg.Seed + 1)),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "output-perturb\tsimple\t%.4f\n",
		eval.Accuracy(test, &eval.Linear{W: outRes.W}))

	gpRes, err := core.Train(train, f, core.Options{
		Budget: b, Passes: passes, Batch: 50, Radius: 1 / lambda,
		GradPerturb: &core.GradPerturbSpec{Clip: 1},
		Rand:        rand.New(rand.NewSource(cfg.Seed + 1)),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "gradperturb\trdp\t%.4f\n",
		eval.Accuracy(test, &eval.Linear{W: gpRes.W}))
	tw.Flush()
	return nil
}
