package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"boltondp/internal/baselines"
	"boltondp/internal/data"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
	"boltondp/internal/serve"
)

// ServeThroughput measures the serving subsystem end to end: a model
// is trained on the KDDSimSparse one-hot workload, published into a
// registry, and served over a real HTTP listener; the sweep then
// scores a fixed pool of sparse test rows at different batch sizes and
// batch-scoring worker counts. The punchline column is the per-row
// speedup over single-row /predict: batching amortizes the HTTP round
// trip and JSON framing while the sparse tier keeps the scoring cost
// at O(rows·classes·nnz), which is what lets one process absorb heavy
// prediction traffic (the ROADMAP's serving story; ISSUE 3 acceptance
// pins ≥ 5× for batch 256).
func ServeThroughput(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "== Serving throughput: batch size × workers over live HTTP, KDDSimSparse ==")

	r := rand.New(rand.NewSource(cfg.Seed))
	train, test := data.KDDSimSparse(r, cfg.Scale)
	res, err := baselines.Noiseless(train, loss.NewLogistic(1e-3, 0), baselines.Options{
		Passes: 1, Batch: 50, Rand: r,
	})
	if err != nil {
		return err
	}
	reg, err := serve.NewRegistry("")
	if err != nil {
		return err
	}
	if _, err := reg.Publish("kdd", &eval.Linear{W: res.W}, map[string]string{"algorithm": "noiseless"}); err != nil {
		return err
	}

	// A fixed pool of sparse wire rows, reused across every cell.
	pool := 4096
	if cfg.Quick {
		pool = 512
	}
	if pool > test.Len() {
		pool = test.Len()
	}
	rows := make([]serve.Row, pool)
	for i := range rows {
		sp, _ := test.AtSparse(i)
		rows[i] = serve.Row{Idx: append([]int(nil), sp.Idx...), Val: append([]float64(nil), sp.Val...)}
	}

	batches := []int{1, 16, 64, 256}
	workerGrid := []int{1, 2, 4}
	if cfg.Quick {
		batches = []int{1, 64}
		workerGrid = []int{1}
	}

	w := newTab(cfg)
	fmt.Fprintln(w, "form\tbatch\tworkers\trequests\twall\trows/s\tµs/row\tspeedup")
	var baseline float64
	for _, batch := range batches {
		forms := []string{"rows", "csr"}
		if batch == 1 {
			forms = []string{"single"}
		}
		for _, form := range forms {
			for _, workers := range workerGrid {
				if batch == 1 && workers > 1 {
					continue // batch scheduling has nothing to split
				}
				rps, requests, wall, err := measureServe(reg, rows, form, batch, workers)
				if err != nil {
					return err
				}
				if baseline == 0 {
					baseline = rps
				}
				fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%v\t%.0f\t%.1f\t%.1fx\n",
					form, batch, workers, requests, wall.Round(time.Millisecond),
					rps, 1e6/rps, rps/baseline)
			}
		}
	}
	return w.Flush()
}

// measureServe serves the row pool through a fresh HTTP server in the
// given wire form ("single", "rows" or "csr") at the given batch size
// and worker count, returning rows/sec.
func measureServe(reg *serve.Registry, rows []serve.Row, form string, batch, workers int) (rps float64, requests int, wall time.Duration, err error) {
	srv := httptest.NewServer(serve.New(reg, serve.Config{Workers: workers}).Handler())
	defer srv.Close()
	client := srv.Client()

	type batchReq struct {
		Rows []serve.Row `json:"rows"`
	}
	type csrReq struct {
		Indptr []int     `json:"indptr"`
		Idx    []int     `json:"idx"`
		Val    []float64 `json:"val"`
	}
	type singleReq struct {
		Idx []int     `json:"idx"`
		Val []float64 `json:"val"`
	}
	var bodies [][]byte
	switch form {
	case "single":
		for i := range rows {
			b, e := json.Marshal(singleReq{Idx: rows[i].Idx, Val: rows[i].Val})
			if e != nil {
				return 0, 0, 0, e
			}
			bodies = append(bodies, b)
		}
	case "rows", "csr":
		for lo := 0; lo < len(rows); lo += batch {
			hi := lo + batch
			if hi > len(rows) {
				hi = len(rows)
			}
			var payload any
			if form == "rows" {
				payload = batchReq{Rows: rows[lo:hi]}
			} else {
				indptr, idx, val, e := serve.PackCSR(rows[lo:hi])
				if e != nil {
					return 0, 0, 0, e
				}
				payload = csrReq{Indptr: indptr, Idx: idx, Val: val}
			}
			b, e := json.Marshal(payload)
			if e != nil {
				return 0, 0, 0, e
			}
			bodies = append(bodies, b)
		}
	default:
		return 0, 0, 0, fmt.Errorf("experiments: unknown serve form %q", form)
	}
	url := srv.URL + "/predict"
	if form != "single" {
		url = srv.URL + "/predict/batch"
	}

	post := func(body []byte) error {
		resp, e := client.Post(url, "application/json", bytes.NewReader(body))
		if e != nil {
			return e
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("experiments: serve status %d", resp.StatusCode)
		}
		return nil
	}
	if err = post(bodies[0]); err != nil { // warm the connection
		return 0, 0, 0, err
	}
	start := time.Now()
	for _, body := range bodies {
		if err = post(body); err != nil {
			return 0, 0, 0, err
		}
	}
	wall = time.Since(start)
	return float64(len(rows)) / wall.Seconds(), len(bodies), wall, nil
}
