package sgd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

// separable builds a linearly separable binary dataset: y = sign(x[0]).
func separable(r *rand.Rand, m, d int) *SliceSamples {
	s := &SliceSamples{X: make([][]float64, m), Y: make([]float64, m)}
	for i := 0; i < m; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		if math.Abs(x[0]) < 0.3 {
			x[0] = math.Copysign(0.3, x[0]) // margin
		}
		vec.Normalize(x)
		s.X[i] = x
		s.Y[i] = math.Copysign(1, x[0])
	}
	return s
}

func TestRunReducesRisk(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := separable(r, 500, 5)
	f := loss.NewLogistic(0, 0)
	w0risk := EmpiricalRisk(s, f, make([]float64, 5))
	res, err := Run(s, Config{
		Loss:   f,
		Step:   Constant(1 / math.Sqrt(500)),
		Passes: 10,
		Batch:  1,
		Rand:   r,
	})
	if err != nil {
		t.Fatal(err)
	}
	risk := EmpiricalRisk(s, f, res.W)
	if risk >= w0risk {
		t.Errorf("risk did not decrease: %v -> %v", w0risk, risk)
	}
	if risk > 0.3 {
		t.Errorf("risk on separable data = %v, want < 0.3", risk)
	}
	if res.Updates != 5000 {
		t.Errorf("Updates = %d, want 5000", res.Updates)
	}
	if res.Passes != 10 {
		t.Errorf("Passes = %d, want 10", res.Passes)
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	f := loss.NewLogistic(1e-2, 0)
	mk := func() []float64 {
		r := rand.New(rand.NewSource(77))
		s := separable(r, 200, 4)
		res, err := Run(s, Config{
			Loss:   f,
			Step:   StronglyConvexPaper(f.Params().Beta, f.Params().Gamma),
			Passes: 3,
			Batch:  10,
			Rand:   rand.New(rand.NewSource(5)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	a, b := mk(), mk()
	if !vec.Equal(a, b, 0) {
		t.Error("Run is not deterministic under fixed seeds")
	}
}

func TestRunFixedPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := separable(r, 50, 3)
	f := loss.NewLogistic(0, 0)
	perm := make([]int, 50)
	for i := range perm {
		perm[i] = 49 - i
	}
	cfg := Config{Loss: f, Step: Constant(0.1), Passes: 2, Batch: 1, Perm: perm}
	a, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(a.W, b.W, 0) {
		t.Error("fixed-permutation runs differ")
	}
}

func TestRunValidation(t *testing.T) {
	f := loss.NewLogistic(0, 0)
	s := &SliceSamples{X: [][]float64{{1}}, Y: []float64{1}}
	cases := []struct {
		name string
		cfg  Config
		s    Samples
	}{
		{"no loss", Config{Step: Constant(1), Passes: 1, Rand: rand.New(rand.NewSource(1))}, s},
		{"no step", Config{Loss: f, Passes: 1, Rand: rand.New(rand.NewSource(1))}, s},
		{"zero passes", Config{Loss: f, Step: Constant(1), Rand: rand.New(rand.NewSource(1))}, s},
		{"empty data", Config{Loss: f, Step: Constant(1), Passes: 1, Rand: rand.New(rand.NewSource(1))}, &SliceSamples{}},
		{"no rand no perm", Config{Loss: f, Step: Constant(1), Passes: 1}, s},
		{"bad perm len", Config{Loss: f, Step: Constant(1), Passes: 1, Perm: []int{0, 1}}, s},
		{"bad w0", Config{Loss: f, Step: Constant(1), Passes: 1, Perm: []int{0}, W0: []float64{1, 2}}, s},
		{"negative batch", Config{Loss: f, Step: Constant(1), Passes: 1, Batch: -1, Perm: []int{0}}, s},
	}
	for _, c := range cases {
		if _, err := Run(c.s, c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestProjectionRespected(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := separable(r, 100, 4)
	f := loss.NewLogistic(0, 0)
	const R = 0.05
	// Large steps would push ‖w‖ way past R without projection.
	res, err := Run(s, Config{
		Loss: f, Step: Constant(1.0), Passes: 3, Batch: 1, Radius: R, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := vec.Norm(res.W); n > R+1e-12 {
		t.Errorf("‖w‖ = %v exceeds radius %v", n, R)
	}
}

func TestFullBatchEqualsGradientDescent(t *testing.T) {
	// Batch = m: one update per pass with the full average gradient,
	// independent of the permutation.
	r := rand.New(rand.NewSource(4))
	s := separable(r, 30, 3)
	f := loss.NewLogistic(0, 0)
	res, err := Run(s, Config{
		Loss: f, Step: Constant(0.5), Passes: 1, Batch: 30,
		Rand: rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 1 {
		t.Fatalf("Updates = %d, want 1", res.Updates)
	}
	// Manual full gradient step from the origin.
	w := make([]float64, 3)
	g := make([]float64, 3)
	gb := make([]float64, 3)
	for i := 0; i < 30; i++ {
		x, y := s.At(i)
		f.Grad(gb, w, x, y)
		vec.Axpy(g, 1.0/30, gb)
	}
	vec.Axpy(w, -0.5, g)
	if !vec.Equal(res.W, w, 1e-12) {
		t.Errorf("full-batch step %v != manual %v", res.W, w)
	}
}

func TestBatchLargerThanMClamped(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := separable(r, 10, 2)
	f := loss.NewLogistic(0, 0)
	res, err := Run(s, Config{Loss: f, Step: Constant(0.1), Passes: 2, Batch: 100, Rand: r})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 2 {
		t.Errorf("Updates = %d, want 2 (one per pass)", res.Updates)
	}
}

func TestAveragingMatchesManual(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	s := separable(r, 20, 2)
	f := loss.NewLogistic(0, 0)
	perm := rand.New(rand.NewSource(7)).Perm(20)
	cfg := Config{Loss: f, Step: Constant(0.2), Passes: 1, Batch: 1, Perm: perm, Average: true}
	res, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Manual replication of the iterate average.
	w := make([]float64, 2)
	sum := make([]float64, 2)
	g := make([]float64, 2)
	for t1 := 0; t1 < 20; t1++ {
		x, y := s.At(perm[t1])
		f.Grad(g, w, x, y)
		vec.Axpy(w, -0.2, g)
		vec.Axpy(sum, 1, w)
	}
	vec.Scale(sum, 1.0/20)
	if !vec.Equal(res.WAvg, sum, 1e-12) {
		t.Errorf("WAvg = %v, want %v", res.WAvg, sum)
	}
	if res.Model() == nil || !vec.Equal(res.Model(), res.WAvg, 0) {
		t.Error("Model() should prefer WAvg when averaging")
	}
}

func TestModelWithoutAveraging(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	s := separable(r, 20, 2)
	res, err := Run(s, Config{
		Loss: loss.NewLogistic(0, 0), Step: Constant(0.1), Passes: 1, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WAvg != nil {
		t.Error("WAvg should be nil without Average")
	}
	if !vec.Equal(res.Model(), res.W, 0) {
		t.Error("Model() should be W without averaging")
	}
}

func TestEarlyStoppingWithTol(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	s := separable(r, 300, 4)
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	res, err := Run(s, Config{
		Loss:   f,
		Step:   StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 200,
		Batch:  10,
		Rand:   r,
		Tol:    1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes >= 200 {
		t.Errorf("early stopping never triggered (ran %d passes)", res.Passes)
	}
	if res.Passes < 1 {
		t.Errorf("Passes = %d", res.Passes)
	}
}

func TestGradNoiseHookInvoked(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := separable(r, 40, 3)
	var calls []int
	_, err := Run(s, Config{
		Loss: loss.NewLogistic(0, 0), Step: Constant(0.1), Passes: 2, Batch: 10, Rand: r,
		GradNoise: func(t int, g []float64) { calls = append(calls, t) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 8 { // 40/10 batches × 2 passes
		t.Fatalf("hook called %d times, want 8", len(calls))
	}
	for i, c := range calls {
		if c != i+1 {
			t.Fatalf("hook counter sequence %v not 1..8", calls)
		}
	}
}

func TestFreshPermChangesTrajectory(t *testing.T) {
	mk := func(fresh bool) []float64 {
		r := rand.New(rand.NewSource(12))
		s := separable(r, 100, 3)
		res, err := Run(s, Config{
			Loss: loss.NewLogistic(0, 0), Step: Constant(0.3), Passes: 5, Batch: 1,
			Rand: rand.New(rand.NewSource(13)), FreshPerm: fresh,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	if vec.Equal(mk(false), mk(true), 1e-15) {
		t.Error("fresh permutations produced the identical trajectory (suspicious)")
	}
}

// Lemma 1.1: for convex β-smooth loss and η ≤ 2/β the gradient update
// is 1-expansive.
func TestConvexUpdateIsOneExpansiveProperty(t *testing.T) {
	f := loss.NewLogistic(0, 0)
	beta := f.Params().Beta
	eta := 2 / beta
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		u := make([]float64, d)
		v := make([]float64, d)
		x := make([]float64, d)
		for i := 0; i < d; i++ {
			u[i], v[i], x[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		vec.Normalize(x)
		y := math.Copysign(1, r.NormFloat64())
		gu := make([]float64, d)
		gv := make([]float64, d)
		f.Grad(gu, u, x, y)
		f.Grad(gv, v, x, y)
		before := vec.Dist(u, v)
		vec.Axpy(u, -eta, gu)
		vec.Axpy(v, -eta, gv)
		return vec.Dist(u, v) <= before+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Lemma 2: for γ-strongly convex β-smooth loss and η ≤ 1/β the update
// is (1−ηγ)-expansive.
func TestStronglyConvexContractionProperty(t *testing.T) {
	f := loss.NewLogistic(0.1, 0)
	p := f.Params()
	eta := 1 / p.Beta
	rho := 1 - eta*p.Gamma
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		u := make([]float64, d)
		v := make([]float64, d)
		x := make([]float64, d)
		for i := 0; i < d; i++ {
			u[i], v[i], x[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		vec.Normalize(x)
		y := math.Copysign(1, r.NormFloat64())
		gu := make([]float64, d)
		gv := make([]float64, d)
		f.Grad(gu, u, x, y)
		f.Grad(gv, v, x, y)
		before := vec.Dist(u, v)
		vec.Axpy(u, -eta, gu)
		vec.Axpy(v, -eta, gv)
		return vec.Dist(u, v) <= rho*before+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Lemma 3: the update is (ηL)-bounded: ‖G(w)−w‖ ≤ ηL.
func TestBoundednessProperty(t *testing.T) {
	f := loss.NewHuber(0.1, 0, 0)
	L := f.Params().L
	eta := 0.37
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		w := make([]float64, d)
		x := make([]float64, d)
		for i := 0; i < d; i++ {
			w[i], x[i] = r.NormFloat64(), r.NormFloat64()
		}
		vec.Normalize(x)
		y := math.Copysign(1, r.NormFloat64())
		g := make([]float64, d)
		f.Grad(g, w, x, y)
		return eta*vec.Norm(g) <= eta*L+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalRiskEmpty(t *testing.T) {
	if r := EmpiricalRisk(&SliceSamples{}, loss.NewLogistic(0, 0), nil); r != 0 {
		t.Errorf("risk of empty set = %v, want 0", r)
	}
}

func TestSchedules(t *testing.T) {
	if got := Constant(0.5).Eta(10); got != 0.5 {
		t.Errorf("Constant = %v", got)
	}
	if got := InvT(2).Eta(4); math.Abs(got-1.0/8) > 1e-15 {
		t.Errorf("InvT = %v", got)
	}
	sc := StronglyConvexPaper(4, 2) // min(1/4, 1/(2t))
	if got := sc.Eta(1); got != 0.25 {
		t.Errorf("StronglyConvexPaper(t=1) = %v, want 1/β cap 0.25", got)
	}
	if got := sc.Eta(100); math.Abs(got-1.0/200) > 1e-15 {
		t.Errorf("StronglyConvexPaper(t=100) = %v", got)
	}
	if got := InvSqrtT(1).Eta(4); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("InvSqrtT = %v", got)
	}
	dc := DecreasingConvex(2, 100, 0.5) // 2/(2(t+10)) = 1/(t+10)
	if got := dc.Eta(5); math.Abs(got-1.0/15) > 1e-12 {
		t.Errorf("DecreasingConvex = %v", got)
	}
	sq := SqrtConvex(2, 100, 0.5) // 1/(√t+10)
	if got := sq.Eta(4); math.Abs(got-1.0/12) > 1e-12 {
		t.Errorf("SqrtConvex = %v", got)
	}
	// Names are non-empty and distinct enough for logs.
	for _, s := range []Schedule{Constant(1), InvT(1), sc, InvSqrtT(1), dc, sq} {
		if s.Name() == "" {
			t.Error("empty schedule name")
		}
	}
}

func TestSchedulePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Constant(0)":             func() { Constant(0) },
		"InvT(0)":                 func() { InvT(0) },
		"StronglyConvexPaper bad": func() { StronglyConvexPaper(0, 1) },
		"InvSqrtT(0)":             func() { InvSqrtT(0) },
		"DecreasingConvex c=1":    func() { DecreasingConvex(1, 10, 1) },
		"SqrtConvex m=0":          func() { SqrtConvex(1, 0, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Monotone decay of the decreasing schedules.
func TestScheduleMonotonicityProperty(t *testing.T) {
	scheds := []Schedule{
		InvT(0.5),
		StronglyConvexPaper(2, 0.5),
		InvSqrtT(1),
		DecreasingConvex(1, 50, 0.3),
		SqrtConvex(1, 50, 0.3),
	}
	for _, s := range scheds {
		prev := s.Eta(1)
		for tt := 2; tt <= 1000; tt++ {
			cur := s.Eta(tt)
			if cur > prev+1e-15 {
				t.Errorf("%s increased at t=%d: %v -> %v", s.Name(), tt, prev, cur)
				break
			}
			prev = cur
		}
	}
}
