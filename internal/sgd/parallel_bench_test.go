package sgd

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

// Parallel kernel benchmarks (run with:
// go test -bench ParKernel -benchmem ./internal/sgd). One epoch of
// strongly convex PSGD over a dense d = 800 problem at batch 32 — big
// enough per-batch work that fanning it out pays — swept over
// KernelWorkers. The acceptance floor (≥1.8× at W=4, CI-gated by
// TestParKernelSpeedup on 4-vCPU runners) applies to the dense epoch;
// the sparse sweep is informational, since its Deriv phase is a far
// smaller slice of the update.

const (
	parBenchRows  = 4096
	parBenchDim   = 800
	parBenchBatch = 32
)

var parBenchOnce *SliceSamples

// parBenchData builds the dense benchmark workload once per process:
// unit-ball rows with fully dense features, so every Grad costs O(d).
func parBenchData() *SliceSamples {
	if parBenchOnce != nil {
		return parBenchOnce
	}
	r := rand.New(rand.NewSource(17))
	de := &SliceSamples{}
	for i := 0; i < parBenchRows; i++ {
		x := make([]float64, parBenchDim)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		if n := vec.Norm(x); n > 1 {
			vec.Scale(x, 1/n)
		}
		y := 1.0
		if r.Float64() < 0.5 {
			y = -1
		}
		de.X = append(de.X, x)
		de.Y = append(de.Y, y)
	}
	parBenchOnce = de
	return de
}

func parBenchConfig(kernelWorkers int, seed int64) Config {
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	return Config{
		Loss:          f,
		Step:          StronglyConvexPaper(p.Beta, p.Gamma),
		Passes:        1,
		Batch:         parBenchBatch,
		Radius:        100,
		KernelWorkers: kernelWorkers,
		Rand:          rand.New(rand.NewSource(seed)),
	}
}

// BenchmarkParKernelDense: one dense epoch per op, swept over W.
func BenchmarkParKernelDense(b *testing.B) {
	de := parBenchData()
	rows := float64(de.Len())
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(de, parBenchConfig(w, int64(i))); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkParKernelSparse: the sparse kernel's Deriv fan-out, swept
// over W on a 5%-dense d = 2000 problem.
func BenchmarkParKernelSparse(b *testing.B) {
	r := rand.New(rand.NewSource(19))
	sp, _ := randomSparseSamples(r, parBenchRows, 2000, 100)
	f := loss.NewLogistic(1e-2, 0)
	rows := float64(sp.Len())
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			cfg := parBenchConfig(w, 0)
			cfg.Loss = f
			if !UsesSparseKernel(sp, cfg) {
				b.Fatal("benchmark source not sparse-dispatched")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := parBenchConfig(w, int64(i))
				c.Loss = f
				if _, err := Run(sp, c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// TestParKernelSpeedup is the acceptance gate for the parallel kernel:
// a W = 4 dense epoch must run at least 1.8× faster than the W = 1
// epoch it is bit-identical to. Timing-sensitive, so it is skipped
// under -race, -short and on machines without 4 CPUs (the 1-CPU dev
// container cannot exhibit a speedup); CI's 4-vCPU runners enforce it
// in the parkernel benchmark smoke step.
func TestParKernelSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("timing gate is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("speedup gate needs 4 CPUs, have %d", runtime.GOMAXPROCS(0))
	}
	de := parBenchData()
	epoch := func(w int, seed int64) time.Duration {
		start := time.Now()
		if _, err := Run(de, parBenchConfig(w, seed)); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Warm both paths, then take the minimum of alternating runs — the
	// cleanest estimator of true cost under CI scheduling noise (same
	// protocol as the store's epoch-overhead gate).
	epoch(1, 0)
	epoch(4, 0)
	const rounds = 7
	seq, par := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		if d := epoch(1, int64(i)); d < seq {
			seq = d
		}
		if d := epoch(4, int64(i)); d < par {
			par = d
		}
	}
	speedup := float64(seq) / float64(par)
	t.Logf("dense epoch: W=1 %v, W=4 %v, speedup %.2f×", seq, par, speedup)
	if speedup < 1.8 {
		t.Fatalf("W=4 speedup %.2f× below the 1.8× acceptance floor", speedup)
	}
}
