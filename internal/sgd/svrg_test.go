package sgd

import (
	"math/rand"
	"testing"

	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

func TestSVRGValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := separable(r, 50, 3)
	f := loss.NewLogistic(1e-2, 0)
	cases := []SVRGConfig{
		{},                                      // everything missing
		{Loss: f, Eta: 0.1, Epochs: 1},          // no rand
		{Loss: f, Eta: 0, Epochs: 1, Rand: r},   // bad eta
		{Loss: f, Eta: 0.1, Epochs: 0, Rand: r}, // bad epochs
	}
	for i, cfg := range cases {
		if _, err := RunSVRG(s, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := RunSVRG(&SliceSamples{}, SVRGConfig{Loss: f, Eta: 0.1, Epochs: 1, Rand: r}); err == nil {
		t.Error("empty set accepted")
	}
}

func TestSVRGConverges(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := separable(r, 500, 5)
	f := loss.NewLogistic(1e-2, 0)
	beta := f.Params().Beta
	res, err := RunSVRG(s, SVRGConfig{
		Loss: f, Eta: 1 / (5 * beta), Epochs: 10, Radius: 100,
		Rand: rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 10 || res.Updates != 10*500 {
		t.Errorf("passes %d updates %d", res.Passes, res.Updates)
	}
	risk := EmpiricalRisk(s, f, res.W)
	risk0 := EmpiricalRisk(s, f, make([]float64, 5))
	if risk >= risk0 {
		t.Fatalf("SVRG did not reduce risk: %v -> %v", risk0, risk)
	}
	// SVRG at the same pass budget should land at least as low as plain
	// PSGD (variance reduction converges linearly for strongly convex).
	p := f.Params()
	plain, err := Run(s, Config{
		Loss: f, Step: StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 10, Batch: 1, Radius: 100, Rand: rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	plainRisk := EmpiricalRisk(s, f, plain.W)
	if risk > plainRisk+0.02 {
		t.Errorf("SVRG risk %v much worse than plain PSGD %v", risk, plainRisk)
	}
}

func TestSVRGDeterministic(t *testing.T) {
	mk := func() []float64 {
		r := rand.New(rand.NewSource(4))
		s := separable(r, 100, 3)
		res, err := RunSVRG(s, SVRGConfig{
			Loss: loss.NewLogistic(1e-2, 0), Eta: 0.05, Epochs: 3,
			Rand: rand.New(rand.NewSource(5)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	if !vec.Equal(mk(), mk(), 0) {
		t.Error("SVRG not deterministic under fixed seeds")
	}
}

func TestSVRGRespectsRadius(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	s := separable(r, 100, 3)
	const R = 0.05
	res, err := RunSVRG(s, SVRGConfig{
		Loss: loss.NewLogistic(0, 0), Eta: 1.0, Epochs: 3, Radius: R,
		Rand: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := vec.Norm(res.W); n > R+1e-12 {
		t.Errorf("‖w‖ = %v exceeds radius %v", n, R)
	}
}

// At the optimum of the anchor, the SVRG correction is exactly the full
// gradient: a single inner step from the anchor moves by η·μ on the
// first example. We verify the corrected update formula directly on a
// two-point dataset.
func TestSVRGCorrectionFormula(t *testing.T) {
	s := &SliceSamples{
		X: [][]float64{{1, 0}, {0, 1}},
		Y: []float64{1, -1},
	}
	f := loss.NewLeastSquares(0, 1)
	eta := 0.1
	res, err := RunSVRG(s, SVRGConfig{
		Loss: f, Eta: eta, Epochs: 1, Rand: rand.New(rand.NewSource(8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Manual: anchor = 0, μ = mean gradient at 0. For least squares
	// ∇ℓ = (⟨w,x⟩−y)x, at w=0: (−1)(1,0) and (1)(0,1) → μ = (−1/2, 1/2).
	// Inner step on example i (w starts at anchor): ∇ℓ_i(w) − ∇ℓ_i(w̃)
	// = 0, so w₁ = −η·μ regardless of which example is drawn first.
	// Second step depends on the permutation; recompute both orders and
	// accept whichever matches.
	mu := []float64{-0.5, 0.5}
	step := func(order []int) []float64 {
		w := []float64{0, 0}
		anchor := []float64{0, 0}
		g := make([]float64, 2)
		ga := make([]float64, 2)
		for _, i := range order {
			f.Grad(g, w, s.X[i], s.Y[i])
			f.Grad(ga, anchor, s.X[i], s.Y[i])
			for j := range w {
				w[j] -= eta * (g[j] - ga[j] + mu[j])
			}
		}
		return w
	}
	if !vec.Equal(res.W, step([]int{0, 1}), 1e-12) && !vec.Equal(res.W, step([]int{1, 0}), 1e-12) {
		t.Errorf("SVRG result %v matches neither permutation order", res.W)
	}
}
