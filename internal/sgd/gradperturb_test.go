package sgd

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

func gpBase() Config {
	return Config{
		Loss:   loss.NewLogistic(1e-2, 0),
		Step:   Constant(0.1),
		Passes: 3,
		Batch:  25,
		Radius: 10,
	}
}

func TestGradPerturbValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := separable(rand.New(rand.NewSource(2)), 100, 5)
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero clip", func(c *Config) { c.GradPerturb = &GradPerturb{Clip: 0, Sigma: 1, Rand: r} }, "Clip"},
		{"negative sigma", func(c *Config) { c.GradPerturb = &GradPerturb{Clip: 1, Sigma: -1, Rand: r} }, "Sigma"},
		{"no rand", func(c *Config) { c.GradPerturb = &GradPerturb{Clip: 1, Sigma: 1} }, "Rand"},
		{"with gradnoise", func(c *Config) {
			c.GradPerturb = &GradPerturb{Clip: 1, Sigma: 1, Rand: r}
			c.GradNoise = func(int, []float64) {}
		}, "mutually exclusive"},
		{"with tol", func(c *Config) {
			c.GradPerturb = &GradPerturb{Clip: 1, Sigma: 1, Rand: r}
			c.Tol = 1e-3
		}, "Tol"},
		{"with progress", func(c *Config) {
			c.GradPerturb = &GradPerturb{Clip: 1, Sigma: 1, Rand: r}
			c.Progress = func(int, float64) {}
		}, "Progress"},
		{"poisson with perm", func(c *Config) {
			c.GradPerturb = &GradPerturb{Clip: 1, Sigma: 1, Rand: r, Poisson: true}
			c.Perm = make([]int, 100)
		}, "Poisson"},
		{"poisson with noperm", func(c *Config) {
			c.GradPerturb = &GradPerturb{Clip: 1, Sigma: 1, Rand: r, Poisson: true}
			c.NoPerm = true
		}, "Poisson"},
		{"poisson with freshperm", func(c *Config) {
			c.GradPerturb = &GradPerturb{Clip: 1, Sigma: 1, Rand: r, Poisson: true}
			c.FreshPerm = true
		}, "Poisson"},
	}
	for _, tc := range cases {
		cfg := gpBase()
		cfg.Rand = rand.New(rand.NewSource(3))
		tc.mut(&cfg)
		_, err := Run(s, cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestGradPerturbLooseClipMatchesPlain: with Sigma = 0 and a clip far
// above any per-example gradient norm, gradient perturbation is a
// no-op — the run must be bit-identical to a plain run, pinning that
// the mode rides the same sequential kernel and update rule.
func TestGradPerturbLooseClipMatchesPlain(t *testing.T) {
	s := separable(rand.New(rand.NewSource(7)), 200, 8)
	plain := gpBase()
	plain.Rand = rand.New(rand.NewSource(11))
	base, err := Run(s, plain)
	if err != nil {
		t.Fatal(err)
	}
	gp := gpBase()
	gp.Rand = rand.New(rand.NewSource(11))
	gp.GradPerturb = &GradPerturb{Clip: 1e6} // logistic grads on unit rows are ≤ 1+λR
	got, err := Run(s, gp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.W {
		if base.W[i] != got.W[i] {
			t.Fatalf("w[%d]: plain %v vs loose-clip gradperturb %v", i, base.W[i], got.W[i])
		}
	}
}

// TestGradPerturbClipBoundsStep: with a binding clip and no noise, each
// update moves w by at most η·C (the averaged clipped sum has norm
// ≤ C), regardless of the loss's own gradient norms.
func TestGradPerturbClipBoundsStep(t *testing.T) {
	s := separable(rand.New(rand.NewSource(3)), 100, 5)
	const clip = 0.01
	const eta = 0.5
	cfg := gpBase()
	cfg.Step = Constant(eta)
	cfg.Passes = 1
	cfg.Batch = 10
	cfg.Rand = rand.New(rand.NewSource(4))
	cfg.GradPerturb = &GradPerturb{Clip: clip}
	cfg.Batch = 100 // one full-batch update isolates the per-step bound
	res, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 1 {
		t.Fatalf("Updates = %d, want 1", res.Updates)
	}
	if n := vec.Norm(res.W); n > eta*clip*(1+1e-12) {
		t.Fatalf("one clipped update moved ‖w‖ to %v, bound is η·C = %v", n, eta*clip)
	}
	// Sanity: the unclipped update moves further.
	cfg.GradPerturb = nil
	cfg.Rand = rand.New(rand.NewSource(4))
	free, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Norm(free.W) <= eta*clip {
		t.Fatal("clip was not binding; test is vacuous")
	}
}

// TestGradPerturbNoiseDeterministicAndEffective: same seeds → identical
// model; different noise seed → different model; noise actually lands
// in the iterate.
func TestGradPerturbNoiseDeterministicAndEffective(t *testing.T) {
	s := separable(rand.New(rand.NewSource(5)), 150, 6)
	run := func(permSeed, noiseSeed int64, sigma float64) []float64 {
		cfg := gpBase()
		cfg.Rand = rand.New(rand.NewSource(permSeed))
		cfg.GradPerturb = &GradPerturb{Clip: 1, Sigma: sigma, Rand: rand.New(rand.NewSource(noiseSeed))}
		res, err := Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	a := run(1, 2, 0.5)
	b := run(1, 2, 0.5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seeds, different models at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(1, 3, 0.5)
	if vec.Equal(a, c, 0) {
		t.Fatal("different noise seed produced an identical model")
	}
	quiet := run(1, 2, 0)
	if vec.Equal(a, quiet, 0) {
		t.Fatal("σ=0.5 model identical to σ=0 model; noise never applied")
	}
	if math.IsNaN(vec.Norm(a)) {
		t.Fatal("noisy model has NaNs")
	}
}

// TestGradPerturbPoisson: Poisson mode runs the planned Passes·⌊m/b⌋
// updates over independently drawn batches — deterministic under fixed
// seeds, different from permutation batching under the same seeds (the
// whole point: the batches are random subsamples, not a partition),
// and robust to empty draws at tiny sampling rates.
func TestGradPerturbPoisson(t *testing.T) {
	s := separable(rand.New(rand.NewSource(13)), 200, 6)
	run := func(poisson bool, seed int64, sigma float64) *Result {
		cfg := gpBase()
		cfg.Rand = rand.New(rand.NewSource(seed))
		cfg.GradPerturb = &GradPerturb{Clip: 1, Sigma: sigma, Rand: rand.New(rand.NewSource(seed + 1)), Poisson: poisson}
		res, err := Run(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(true, 5, 0.5)
	if want := 3 * (200 / 25); a.Updates != want {
		t.Fatalf("Poisson Updates = %d, want the calibrated %d", a.Updates, want)
	}
	b := run(true, 5, 0.5)
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatalf("same seeds, different Poisson models at %d", i)
		}
	}
	if perm := run(false, 5, 0.5); vec.Equal(a.W, perm.W, 0) {
		t.Fatal("Poisson batching produced the permutation-batching model; batches are not being subsampled")
	}
	if math.IsNaN(vec.Norm(a.W)) {
		t.Fatal("Poisson model has NaNs")
	}

	// Rate 1/m: most draws are empty, each update is then pure noise
	// over the expected lot size — must stay finite and still run the
	// planned number of updates.
	cfg := gpBase()
	cfg.Batch = 1
	cfg.Passes = 1
	cfg.Rand = rand.New(rand.NewSource(17))
	cfg.GradPerturb = &GradPerturb{Clip: 1, Sigma: 0.5, Rand: rand.New(rand.NewSource(18)), Poisson: true}
	res, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 200 {
		t.Fatalf("Updates = %d, want 200", res.Updates)
	}
	if n := vec.Norm(res.W); math.IsNaN(n) || math.IsInf(n, 0) {
		t.Fatalf("tiny-rate Poisson model norm = %v", n)
	}
}

// TestGradPerturbDisablesFastKernels: gradient perturbation must route
// around both the sparse kernel (clipping needs dense per-example
// gradients) and the parallel dense kernel (sequential accumulation),
// and KernelWorkers > 1 must not change the result.
func TestGradPerturbDisablesFastKernels(t *testing.T) {
	sp, dense := randomSparseSamples(rand.New(rand.NewSource(9)), 120, 6, 3)
	cfg := gpBase()
	cfg.GradPerturb = &GradPerturb{Clip: 1}
	if UsesSparseKernel(sp, cfg) {
		t.Fatal("gradperturb run routed to the sparse kernel")
	}
	cfg.Rand = rand.New(rand.NewSource(10))
	seq, err := Run(dense, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par := gpBase()
	par.GradPerturb = &GradPerturb{Clip: 1}
	par.KernelWorkers = 4
	par.Rand = rand.New(rand.NewSource(10))
	got, err := Run(dense, par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.W {
		if seq.W[i] != got.W[i] {
			t.Fatalf("KernelWorkers changed a gradperturb result at %d", i)
		}
	}
	// The sparse source must produce the same model as the dense one
	// (dense fallback on the CSR rows).
	spCfg := gpBase()
	spCfg.GradPerturb = &GradPerturb{Clip: 1}
	spCfg.Rand = rand.New(rand.NewSource(10))
	spRes, err := Run(sp, spCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(seq.W, spRes.W, 1e-12) {
		t.Fatal("sparse-source gradperturb diverged from dense")
	}
}
