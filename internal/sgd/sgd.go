// Package sgd implements the permutation-based stochastic gradient
// descent (PSGD) engine of §2 of the paper: sample one random
// permutation of the training set (optionally a fresh one per pass),
// cycle through it k times applying the update rule
//
//	w_{t+1} = Π_C( w_t − η_t · (1/b) Σ_{i∈B_t} ∇ℓ_i(w_t) )
//
// with mini-batches B_t of size b and projection onto the radius-R ball
// (equation (7)). The engine is deliberately a black box: the private
// algorithms in internal/core call Run and perturb only the returned
// model, exactly as the paper's bolt-on approach requires.
//
// The one deliberate impurity is Config.GradNoise, a hook invoked on
// every averaged mini-batch gradient before the update is applied. It
// exists solely so the white-box baselines (SCS13, BST14) can be
// expressed against the same engine; it corresponds to the "deep code
// changes" to Bismarck's transition function shown in Figure 1(C) of
// the paper, and internal/core never sets it.
//
// Config.GradPerturb generalizes that hook into a first-class training
// mode: DP-SGD-style gradient perturbation (per-example l2 clipping to
// C plus Gaussian noise on every summed mini-batch gradient), the other
// half of the private-ERM design space next to the paper's output
// perturbation. It rides the same injection point in the update loop as
// GradNoise; the privacy calibration (noise multiplier from a
// subsampled-Gaussian accountant) lives in internal/core, which is the
// only caller that sets it.
package sgd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/loss"
	"boltondp/internal/rng"
	"boltondp/internal/vec"
)

// Samples is the minimal read-only view of a training set the engine
// needs — the first tier of the two-tier access contract.
// Implementations include data.Dataset and bismarck.Table. At may
// return an internal buffer that is only valid until the next call;
// the engine never retains the returned slice.
//
// Sources whose rows are naturally sparse should additionally
// implement SparseSamples (the second tier): Run then executes on the
// sparse-native kernel whenever the loss supports it, at O(nnz) per
// example instead of O(d).
type Samples interface {
	// Len returns the number of examples m.
	Len() int
	// Dim returns the feature dimension d.
	Dim() int
	// At returns the i-th example. The label is ±1 for classification
	// losses.
	At(i int) (x []float64, y float64)
}

// SliceSamples adapts parallel slices to the Samples interface.
type SliceSamples struct {
	X [][]float64
	Y []float64
}

// Len implements Samples.
func (s *SliceSamples) Len() int { return len(s.X) }

// Dim implements Samples.
func (s *SliceSamples) Dim() int {
	if len(s.X) == 0 {
		return 0
	}
	return len(s.X[0])
}

// At implements Samples.
func (s *SliceSamples) At(i int) ([]float64, float64) { return s.X[i], s.Y[i] }

// Config describes one PSGD run.
type Config struct {
	Loss   loss.Function
	Step   Schedule
	Passes int // k ≥ 1
	Batch  int // b ≥ 1; 0 means 1

	// Radius is the projection radius R of the constrained update rule
	// (7). Non-positive means unconstrained.
	Radius float64

	// Average, when set, additionally computes the uniform average of
	// all iterates w_1..w_T (the paper's model-averaging extension,
	// Lemma 10, and the form its convergence results are stated for).
	Average bool

	// AverageTail, when set, instead averages only the last ⌈ln T⌉
	// iterates — the second averaging scheme Lemma 10 mentions ("the
	// average of the last log T iterates"). Sensitivity is unchanged:
	// the δ_t's are non-decreasing, so any convex combination of
	// iterates is bounded by δ_T. Incompatible with Tol (T must be
	// known in advance) and with Average.
	AverageTail bool

	// FreshPerm resamples the permutation at the start of every pass
	// (§3.2.3 "Fresh Permutation at Each Pass"). The sensitivity
	// analysis is unchanged.
	FreshPerm bool

	// Perm, when non-nil, fixes the first pass's permutation instead of
	// sampling one. It must be a permutation of [0, m). Used by the
	// sensitivity tests, which must run the same randomness r on
	// neighboring datasets (Lemma 5's "randomness one at a time").
	Perm []int

	// NoPerm processes rows in their natural order 0..m-1 instead of a
	// sampled permutation — the streaming mode of the execution engine
	// (internal/engine). No permutation array is materialized, so a
	// single pass over a lazily generated source (data.Stream) runs in
	// O(d) memory, and Rand becomes optional. The sensitivity bounds
	// hold for any fixed ordering (they are worst-case over the
	// differing index's position); only the convergence analysis relies
	// on the ordering being random, which streaming sources provide by
	// construction. Incompatible with Perm and FreshPerm.
	NoPerm bool

	// KernelWorkers is the intra-batch parallelism degree W of a single
	// run (0 or 1 = sequential, the default). W > 1 fans the
	// per-example phase of every large-enough mini-batch — dense
	// gradients, sparse margin derivatives — across W goroutines and
	// reduces in example-index order, so the result is BIT-IDENTICAL to
	// the sequential kernel for every W (see parallel.go for the
	// determinism argument). It composes with the engine's Sharded
	// strategy: shard count P is inter-shard parallelism, this is
	// intra-batch parallelism within each shard.
	KernelWorkers int

	// T0 offsets the 1-based update counter: the first update of this
	// run is numbered T0+1, so Step.Eta and GradNoise see the global
	// counter. The sharded engine uses it to continue a step-size
	// schedule seamlessly across per-epoch Run calls.
	T0 int

	// Rand is the randomness source for permutations. Required unless
	// Perm is given (and FreshPerm is off) or NoPerm is set.
	Rand *rand.Rand

	// GradNoise, if non-nil, is called with the 1-based update counter
	// and the averaged mini-batch gradient, which it may modify in
	// place (white-box hook for SCS13/BST14 — see the package comment).
	GradNoise func(t int, grad []float64)

	// GradPerturb, if non-nil, runs the engine in gradient-perturbation
	// mode: every per-example gradient is l2-clipped to Clip before
	// accumulation, and Gaussian noise of per-coordinate stddev Sigma is
	// added to the summed (pre-averaging) batch gradient at the same
	// injection point as GradNoise. Incompatible with GradNoise (one
	// noise authority per run) and with the sparse and parallel kernels
	// (clipping needs each example's dense gradient, materialized
	// sequentially) — Run silently falls back to the sequential dense
	// kernel.
	GradPerturb *GradPerturb

	// W0 is the starting point; nil means the origin.
	W0 []float64

	// Tol, when positive, enables the early-stopping strategy of §4.3:
	// after each pass the training risk is evaluated, and the run stops
	// once the per-pass decrease falls below Tol (or Passes is
	// reached). The paper notes this "oblivious k" strategy is only
	// sound for the strongly convex private algorithm, whose noise does
	// not depend on k; Run itself is noise-free so it simply honors it.
	Tol float64

	// Ctx, when non-nil, makes the run cancellable: it is checked once
	// per mini-batch update (an allocation-free Err poll — one
	// predictable branch plus an atomic load on the standard context
	// types) and Run returns ctx.Err() as soon as cancellation or
	// deadline expiry is observed. A nil Ctx costs exactly one
	// always-false branch per update; both kernels' steady state stays
	// at 0 allocs/op either way (gated by TestSparseUpdateAllocs and
	// the ctx-overhead smoke in ctx_test.go).
	Ctx context.Context

	// Progress, when non-nil, is called after every completed pass with
	// the 1-based pass number and the empirical risk of the current
	// iterate. The risk evaluation costs one extra pass over the data,
	// and is shared with Tol's evaluation when both are set.
	Progress func(pass int, risk float64)
}

// GradPerturb configures gradient-perturbation mode (see
// Config.GradPerturb). The noise scale is stated in ABSOLUTE units on
// the summed batch gradient: a batch's update direction is
// (Σᵢ clip_C(∇ℓᵢ) + N(0, Sigma²·I)) / |batch|, the DP-SGD update. The
// caller calibrates Sigma = sensitivity × noise-multiplier (for
// replace-one adjacency the clipped sum's l2 sensitivity is 2·Clip) —
// internal/core does this through the subsampled-Gaussian accountant.
type GradPerturb struct {
	// Clip is the per-example gradient l2 clipping norm C > 0.
	Clip float64
	// Sigma is the per-coordinate Gaussian noise stddev added to each
	// summed batch gradient. Zero means clipping only (used by parity
	// tests); negative is invalid.
	Sigma float64
	// Rand is the noise source; required when Sigma > 0. It must be
	// distinct from Config.Rand only if the caller needs permutation
	// draws to be reproducible independently of the noise draws.
	Rand *rand.Rand
	// Poisson replaces the engine's permutation batching with per-step
	// Poisson subsampling: every update draws an independent batch that
	// includes each example with probability q = Batch/m (expected batch
	// size Batch), and the update divides by the EXPECTED lot size q·m
	// rather than the realized batch size, so an empty draw applies a
	// pure-noise update. This is the sampling scheme the
	// subsampled-Gaussian accounting assumes (Abadi et al.'s DP-SGD;
	// Opacus' Poisson mode) — deterministic permutation batches visit
	// every example exactly once per pass and admit NO privacy
	// amplification by subsampling. Config.Rand supplies the inclusion
	// coins; Perm, NoPerm and FreshPerm are incompatible.
	Poisson bool
}

func (c *Config) validate(m int) error {
	if c.Loss == nil {
		return errors.New("sgd: Config.Loss is required")
	}
	if c.Step == nil {
		return errors.New("sgd: Config.Step is required")
	}
	if c.Passes < 1 {
		return fmt.Errorf("sgd: Passes must be >= 1, got %d", c.Passes)
	}
	if c.Batch < 0 {
		return fmt.Errorf("sgd: Batch must be >= 0, got %d", c.Batch)
	}
	if m == 0 {
		return errors.New("sgd: empty training set")
	}
	if c.Perm != nil && len(c.Perm) != m {
		return fmt.Errorf("sgd: Perm has length %d, want %d", len(c.Perm), m)
	}
	if c.NoPerm && (c.Perm != nil || c.FreshPerm) {
		return errors.New("sgd: NoPerm is incompatible with Perm and FreshPerm")
	}
	if c.T0 < 0 {
		return fmt.Errorf("sgd: T0 must be >= 0, got %d", c.T0)
	}
	if c.KernelWorkers < 0 {
		return fmt.Errorf("sgd: KernelWorkers must be >= 0, got %d", c.KernelWorkers)
	}
	if c.Rand == nil && !c.NoPerm && (c.Perm == nil || c.FreshPerm) {
		return errors.New("sgd: Rand is required when permutations must be sampled")
	}
	if c.AverageTail && c.Average {
		return errors.New("sgd: Average and AverageTail are mutually exclusive")
	}
	if c.AverageTail && c.Tol > 0 {
		return errors.New("sgd: AverageTail needs the total iteration count in advance; incompatible with Tol")
	}
	if gp := c.GradPerturb; gp != nil {
		if c.GradNoise != nil {
			return errors.New("sgd: GradPerturb and GradNoise are mutually exclusive (one noise authority per run)")
		}
		if gp.Clip <= 0 {
			return fmt.Errorf("sgd: GradPerturb.Clip must be > 0, got %v", gp.Clip)
		}
		if gp.Sigma < 0 {
			return fmt.Errorf("sgd: GradPerturb.Sigma must be >= 0, got %v", gp.Sigma)
		}
		if gp.Sigma > 0 && gp.Rand == nil {
			return errors.New("sgd: GradPerturb.Rand is required when Sigma > 0")
		}
		if c.Tol > 0 {
			// A data-dependent stopping time changes the number of noisy
			// updates after calibration, voiding the accountant's T.
			return errors.New("sgd: GradPerturb is incompatible with Tol (the noise calibration fixes the update count)")
		}
		if c.Progress != nil {
			// Same reasoning as Tol: the per-pass empirical risk is an
			// exact, data-dependent value outside the accounted budget —
			// in gradient-perturbation runs the only releasable values
			// are the noisy iterates themselves.
			return errors.New("sgd: GradPerturb is incompatible with Progress (the per-pass risk is an exact, unaccounted data-dependent release)")
		}
		if gp.Poisson && (c.Perm != nil || c.NoPerm || c.FreshPerm) {
			return errors.New("sgd: GradPerturb.Poisson draws an independent batch every step; Perm, NoPerm and FreshPerm do not apply")
		}
	}
	return nil
}

// Result is the outcome of a PSGD run.
type Result struct {
	// W is the final iterate w_T.
	W []float64
	// WAvg is the uniform iterate average (nil unless Config.Average).
	WAvg []float64
	// Updates is the number of gradient updates performed (batches).
	Updates int
	// Passes is the number of passes actually executed (may be fewer
	// than Config.Passes when Tol-based early stopping triggers).
	Passes int
}

// Model returns the model the run recommends: the iterate average when
// averaging was enabled, the last iterate otherwise.
func (r *Result) Model() []float64 {
	if r.WAvg != nil {
		return r.WAvg
	}
	return r.W
}

// Run executes permutation-based SGD over s and returns the resulting
// model(s). It is deterministic given Config.Rand's state.
//
// Run is representation-blind: when the source implements
// SparseSamples, the loss implements loss.Linear and no GradNoise hook
// is installed, the run executes on the sparse-native kernel
// (sparse.go), whose per-example cost is O(nnz) instead of O(d). The
// two paths apply the same update rule batch for batch and agree to
// floating-point rounding; randomness consumption (permutations) is
// identical, so a caller drawing noise from the same Rand afterwards
// sees identical draws either way.
func Run(s Samples, cfg Config) (*Result, error) {
	m := s.Len()
	if err := cfg.validate(m); err != nil {
		return nil, err
	}
	if ss, lf, ok := sparseCapable(s, &cfg); ok {
		return runSparse(ss, lf, cfg)
	}
	d := s.Dim()
	b := cfg.Batch
	if b == 0 {
		b = 1
	}
	if b > m {
		b = m
	}

	w := make([]float64, d)
	if cfg.W0 != nil {
		if len(cfg.W0) != d {
			return nil, fmt.Errorf("sgd: W0 has dim %d, want %d", len(cfg.W0), d)
		}
		copy(w, cfg.W0)
	}

	gp := cfg.GradPerturb
	poisson := gp != nil && gp.Poisson

	perm := cfg.Perm
	if perm == nil && !cfg.NoPerm && !poisson {
		perm = cfg.Rand.Perm(m)
	}

	grad := make([]float64, d)
	gbuf := make([]float64, d)
	var wsum []float64
	if cfg.Average || cfg.AverageTail {
		wsum = make([]float64, d)
	}
	// Batches per pass: when b does not divide m, the remainder is
	// merged into the final batch (size in [b, 2b)) rather than
	// processed as a short batch. A short trailing batch of size
	// s = m mod b would contribute 2ηL/s > 2ηL/b to the sensitivity
	// and silently break every /b bound — the paper's §3.2.3 analysis
	// assumes b divides m ("for simplicity let us assume that b
	// divides m"); merging preserves that assumption's guarantee for
	// arbitrary m.
	updatesPerPass := m / b
	if updatesPerPass < 1 {
		updatesPerPass = 1
	}
	// The final batch of a pass absorbs the remainder (see above), so
	// batches reach size < 2b; maxBatch bounds the parallel kernel's
	// per-example buffers.
	maxBatch := m - (updatesPerPass-1)*b
	// Poisson mode: per-step inclusion probability, expected lot size b.
	rate := float64(b) / float64(m)
	var noise []float64
	if gp != nil && gp.Sigma > 0 {
		noise = make([]float64, d)
	}
	// Clipping needs every example's gradient materialized in order, so
	// gradient-perturbation runs stay on the sequential dense kernel.
	var dk *denseKernel
	if gp == nil {
		dk = newDenseKernel(s, cfg.KernelWorkers, maxBatch, d, cfg.Loss, w, grad)
	}
	if dk != nil {
		defer dk.close()
	}
	// Tail averaging covers the last ⌈ln T⌉ of the T planned updates
	// (counted globally when a T0 offset is in play).
	total := cfg.T0 + cfg.Passes*updatesPerPass
	tailFrom := 0
	tailCount := 0
	if cfg.AverageTail {
		n := int(math.Ceil(math.Log(float64(total))))
		if n < 1 {
			n = 1
		}
		tailFrom = total - n + 1
	}

	t := cfg.T0
	passes := 0
	prevRisk := math.Inf(1)
	for pass := 0; pass < cfg.Passes; pass++ {
		if cfg.FreshPerm && pass > 0 {
			perm = cfg.Rand.Perm(m)
		}
		for u := 0; u < updatesPerPass; u++ {
			if cfg.Ctx != nil {
				if err := cfg.Ctx.Err(); err != nil {
					return nil, err
				}
			}
			var lot float64
			if poisson {
				// One independent Poisson draw per update: each example
				// joins with probability rate = b/m, and the update
				// divides by the EXPECTED lot size b (a constant), so an
				// empty draw is a pure-noise update — exactly the
				// mechanism the subsampled-Gaussian accounting prices.
				vec.Zero(grad)
				for i := 0; i < m; i++ {
					if cfg.Rand.Float64() >= rate {
						continue
					}
					x, y := s.At(i)
					cfg.Loss.Grad(gbuf, w, x, y)
					clipTo(gbuf, gp.Clip)
					vec.Axpy(grad, 1, gbuf)
				}
				lot = float64(b)
			} else {
				start := u * b
				end := start + b
				if u == updatesPerPass-1 {
					end = m // merge the remainder into the final batch
				}
				if dk != nil && end-start >= minParBatch {
					// Bit-identical to the sequential accumulation below —
					// see parallel.go — so per-batch dispatch never changes
					// a result.
					dk.batch(perm, start, end)
				} else {
					vec.Zero(grad)
					for i := start; i < end; i++ {
						idx := i
						if perm != nil {
							idx = perm[i]
						}
						x, y := s.At(idx)
						cfg.Loss.Grad(gbuf, w, x, y)
						if gp != nil {
							clipTo(gbuf, gp.Clip)
						}
						vec.Axpy(grad, 1, gbuf)
					}
				}
				lot = float64(end - start)
			}
			t++
			if gp != nil && noise != nil {
				// Noise on the SUM, then average with it — the DP-SGD
				// update; shares GradNoise's injection point.
				rng.GaussianVec(gp.Rand, noise, gp.Sigma)
				vec.Axpy(grad, 1, noise)
			}
			vec.Scale(grad, 1/lot)
			if cfg.GradNoise != nil {
				cfg.GradNoise(t, grad)
			}
			vec.Axpy(w, -cfg.Step.Eta(t), grad)
			vec.ProjectBall(w, cfg.Radius)
			if cfg.Average {
				vec.Axpy(wsum, 1, w)
			} else if cfg.AverageTail && t >= tailFrom {
				vec.Axpy(wsum, 1, w)
				tailCount++
			}
		}
		passes++
		if cfg.Tol > 0 || cfg.Progress != nil {
			risk := EmpiricalRisk(s, cfg.Loss, w)
			if cfg.Progress != nil {
				cfg.Progress(passes, risk)
			}
			if cfg.Tol > 0 {
				if prevRisk-risk < cfg.Tol {
					break
				}
				prevRisk = risk
			}
		}
	}

	res := &Result{W: w, Updates: t - cfg.T0, Passes: passes}
	if cfg.Average {
		vec.Scale(wsum, 1/float64(t-cfg.T0))
		res.WAvg = wsum
	} else if cfg.AverageTail && tailCount > 0 {
		vec.Scale(wsum, 1/float64(tailCount))
		res.WAvg = wsum
	}
	return res, nil
}

// clipTo scales g down to l2 norm c when it exceeds it — the DP-SGD
// per-example clip, which caps each example's contribution to the batch
// sum at c regardless of the loss's own Lipschitz constant.
func clipTo(g []float64, c float64) {
	n := vec.Norm(g)
	if n > c {
		vec.Scale(g, c/n)
	}
}

// EmpiricalRisk returns L_S(w) = (1/m) Σ ℓ(w; z_i), the quantity whose
// excess the paper's convergence theorems bound. Like Run it is
// representation-blind: sparse sources with a factored loss are scored
// via sparse dot products, without densifying any row.
func EmpiricalRisk(s Samples, f loss.Function, w []float64) float64 {
	m := s.Len()
	if m == 0 {
		return 0
	}
	if ss, ok := s.(SparseSamples); ok {
		if lf, ok2 := f.(loss.Linear); ok2 {
			return sparseEmpiricalRisk(ss, lf, w)
		}
	}
	var sum float64
	for i := 0; i < m; i++ {
		x, y := s.At(i)
		sum += f.Eval(w, x, y)
	}
	return sum / float64(m)
}
