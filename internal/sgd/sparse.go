package sgd

import (
	"fmt"
	"math"

	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

// SparseSamples is the second tier of the engine's data contract: a
// row source that can hand out examples in sparse coordinate form
// without materializing them. Run dispatches to a sparse-native update
// kernel whenever the source implements this interface and the loss
// implements loss.Linear; otherwise it falls back to the dense path,
// so implementing SparseSamples is purely an optimization and never a
// correctness requirement.
//
// The returned vector (like At's dense slice) may be backed by storage
// that is reused or invalidated by the next AtSparse call on the same
// receiver; the engine never retains it across calls. Implementations
// include data.SparseDataset, data.SparseStream and SparseSliceSamples.
type SparseSamples interface {
	Samples
	// AtSparse returns the i-th example in sparse form. The label
	// follows the same conventions as At.
	AtSparse(i int) (*vec.Sparse, float64)
}

// SparseSliceSamples adapts a slice of sparse rows to SparseSamples —
// the reference implementation of the two-tier contract, and the
// source the sparse kernel's own tests and benchmarks use (the richer
// CSR-backed types live in internal/data, which sits above this
// package).
type SparseSliceSamples struct {
	X []*vec.Sparse
	Y []float64
	// D is the feature dimension (sparse rows cannot infer it).
	D int

	scratch []float64
}

// Len implements Samples.
func (s *SparseSliceSamples) Len() int { return len(s.X) }

// Dim implements Samples.
func (s *SparseSliceSamples) Dim() int { return s.D }

// At implements Samples by scattering row i into a reused scratch
// buffer — the dense fallback tier of the contract.
func (s *SparseSliceSamples) At(i int) ([]float64, float64) {
	if s.scratch == nil {
		s.scratch = make([]float64, s.D)
	}
	s.X[i].Scatter(s.scratch)
	return s.scratch, s.Y[i]
}

// AtSparse implements SparseSamples.
func (s *SparseSliceSamples) AtSparse(i int) (*vec.Sparse, float64) {
	return s.X[i], s.Y[i]
}

// Shard returns an independent view of rows [lo, hi) with its own
// scratch, satisfying the execution engine's Sharder contract so
// sharded runs over slice-backed sparse data stay race-free.
func (s *SparseSliceSamples) Shard(lo, hi int) Samples {
	if lo < 0 || hi < lo || hi > len(s.X) {
		panic(fmt.Sprintf("sgd: sparse shard [%d,%d) out of bounds for %d rows", lo, hi, len(s.X)))
	}
	return &SparseSliceSamples{X: s.X[lo:hi], Y: s.Y[lo:hi], D: s.D}
}

// sparseCapable reports whether a Run over (s, cfg) takes the sparse
// fast path: the source must expose sparse rows, the loss must factor
// through loss.Linear, and the white-box GradNoise hook — which needs a
// materialized dense gradient — must be unset.
func sparseCapable(s Samples, cfg *Config) (SparseSamples, loss.Linear, bool) {
	ss, ok := s.(SparseSamples)
	if !ok || cfg.GradNoise != nil || cfg.GradPerturb != nil {
		return nil, nil, false
	}
	lf, ok := cfg.Loss.(loss.Linear)
	if !ok {
		return nil, nil, false
	}
	return ss, lf, true
}

// UsesSparseKernel reports whether Run(s, cfg) would execute on the
// sparse-native kernel. Exported for strategy-blindness tests and for
// experiment reporting; it never changes behavior.
func UsesSparseKernel(s Samples, cfg Config) bool {
	_, _, ok := sparseCapable(s, &cfg)
	return ok
}

// sparseState is the scaled-weight model representation of the sparse
// update kernel. The iterate is stored as w = α·v so that the two
// dense-touching parts of the PSGD update rule become O(1):
//
//   - the L2 shrink (1−ηλ)·w multiplies α;
//   - the ball projection Π_C rescales α, using the running ‖v‖²
//     maintained incrementally by the sparse axpys (vec.AxpyIntoDelta),
//     so the norm test never rescans the model.
//
// Only the −η/b·Σ cᵢ·xᵢ data term touches v, and it touches exactly
// the non-zeros of the batch rows. Iterate averaging (Lemma 10) is kept
// lazy the same way: the running iterate sum is represented as
// S = cs·v + s̃, where adding the current iterate is cs += α (O(1)) and
// a sparse change Δ to v is compensated by s̃ −= cs·Δ (O(nnz)).
//
// α drifts toward 0 (λ-shrink) or can overflow v's scale after many
// projections, so the state folds α back into v whenever it leaves
// [foldLo, foldHi] — an O(d) operation triggered O(log) times per run.
// Without averaging the band is huge (1e±100: the w = α·v product is
// cancellation-free at any scale). With averaging it must stay tight
// (1e±4): the iterate sum S = cs·v + s̃ cancels two quantities of
// v's scale ~ ‖w‖/|α|, so letting α decay far below 1 turns the final
// materialization into a catastrophic subtraction. The tight band
// keeps every intermediate within ~1e4 of w's own scale, making the
// lazy sum as accurate as the dense running sum.
type sparseState struct {
	f      loss.Linear
	lambda float64
	radius float64

	foldLo, foldHi float64

	alpha  float64
	v      []float64
	vnorm2 float64 // running ‖v‖², refreshed exactly at pass boundaries

	avgOn  bool // iterate-sum maintenance enabled (Average/AverageTail)
	cs     float64
	stilde []float64

	cbuf []float64 // per-batch Deriv scalars, capacity fixed up front

	// par, when non-nil, fans the Deriv phase of large-enough batches
	// across Config.KernelWorkers goroutines (parallel.go); the result
	// is bit-identical to the sequential loop either way.
	par *sparseKernel
}

// newSparseState initializes the representation at w0 (nil = origin).
// maxBatch bounds every batch the run will apply (the remainder-merged
// final batch included) so the steady state never allocates.
func newSparseState(f loss.Linear, d, maxBatch int, radius float64, avg bool, w0 []float64) *sparseState {
	st := &sparseState{
		f: f, lambda: f.Reg(), radius: radius,
		foldLo: 1e-100, foldHi: 1e100,
		alpha: 1, v: make([]float64, d),
		avgOn: avg,
		cbuf:  make([]float64, maxBatch),
	}
	if avg {
		st.foldLo, st.foldHi = 1e-4, 1e4
	}
	if w0 != nil {
		copy(st.v, w0)
		st.refreshNorm()
	}
	if avg {
		st.stilde = make([]float64, d)
	}
	return st
}

// refreshNorm recomputes ‖v‖² exactly, discarding accumulated
// incremental-tracking error. Called at pass boundaries and folds.
func (st *sparseState) refreshNorm() {
	n := vec.Norm(st.v)
	st.vnorm2 = n * n
}

// fold rescales v by α and resets α to 1, first flushing the lazy
// iterate-sum so the S = cs·v + s̃ invariant survives the rescale.
func (st *sparseState) fold() {
	if st.avgOn && st.cs != 0 {
		for i, vi := range st.v {
			st.stilde[i] += st.cs * vi
		}
		st.cs = 0
	}
	for i := range st.v {
		st.v[i] *= st.alpha
	}
	st.alpha = 1
	st.refreshNorm()
}

// batch applies one mini-batch update with step size eta over rows
// rows(start..end) (through perm when non-nil), exactly the update rule
// of the dense engine:
//
//	w ← Π_C( (1−ηλ)·w − (η/n)·Σ Deriv(⟨w,xᵢ⟩, yᵢ)·xᵢ )
//
// with all margins evaluated at the pre-update w, as the batched rule
// requires.
func (st *sparseState) batch(s SparseSamples, perm []int, start, end int, eta float64) {
	n := end - start
	if n == 1 {
		// Single-example fast path: the margin row is still valid at
		// apply time (no intervening AtSparse call), so fetch it once.
		// Lazily generated sources (data.SparseStream) rebuild rows on
		// every access, and b = 1 is the paper's default, so this
		// halves their dominant per-update cost.
		i := start
		if perm != nil {
			i = perm[i]
		}
		x, y := s.AtSparse(i)
		c := st.f.Deriv(st.alpha*x.Dot(st.v), y)
		st.shrink(eta)
		if c != 0 {
			st.apply(x, -eta/st.alpha*c) // same evaluation order as the batched scale
		}
		st.project()
		return
	}
	cb := st.cbuf[:n]
	if st.par != nil && n >= minParBatch {
		st.par.deriv(perm, start, n)
	} else {
		for j := 0; j < n; j++ {
			i := start + j
			if perm != nil {
				i = perm[i]
			}
			x, y := s.AtSparse(i)
			cb[j] = st.f.Deriv(st.alpha*x.Dot(st.v), y)
		}
	}
	st.shrink(eta)
	scale := -eta / (float64(n) * st.alpha)
	for j := 0; j < n; j++ {
		if cb[j] == 0 {
			continue // flat region (e.g. Huber): zero data term
		}
		i := start + j
		if perm != nil {
			i = perm[i]
		}
		x, _ := s.AtSparse(i)
		st.apply(x, scale*cb[j])
	}
	st.project()
}

// shrink applies the batch's λw term — every per-example gradient's
// regularizer, averaged — as one O(1) multiplicative rescale, then
// refolds α if it left the safe band.
func (st *sparseState) shrink(eta float64) {
	if st.lambda != 0 {
		st.alpha *= 1 - eta*st.lambda
	}
	if a := math.Abs(st.alpha); a < st.foldLo || a > st.foldHi {
		st.fold() // also rescues the exact α = 0 of η = 1/λ
	}
}

// apply adds coef·x to v, maintaining the incremental norm and the
// lazy iterate-sum invariant S = cs·v + s̃ under the sparse Δv.
func (st *sparseState) apply(x *vec.Sparse, coef float64) {
	if st.avgOn && st.cs != 0 {
		x.AxpyInto(st.stilde, -st.cs*coef)
	}
	st.vnorm2 += x.AxpyIntoDelta(st.v, coef)
}

// project is the O(1) ball projection: ‖w‖ = |α|·‖v‖ from the tracked
// norm, rescaling α only.
func (st *sparseState) project() {
	if st.radius <= 0 {
		return
	}
	if wn := math.Abs(st.alpha) * math.Sqrt(math.Max(st.vnorm2, 0)); wn > st.radius {
		st.alpha *= st.radius / wn
	}
}

// dense materializes w = α·v into dst.
func (st *sparseState) dense(dst []float64) {
	for i, vi := range st.v {
		dst[i] = st.alpha * vi
	}
}

// iterateSum materializes the lazy iterate sum S = cs·v + s̃.
func (st *sparseState) iterateSum() []float64 {
	out := make([]float64, len(st.v))
	for i, vi := range st.v {
		out[i] = st.cs*vi + st.stilde[i]
	}
	return out
}

// runSparse is Run's sparse-native execution path. It mirrors the
// dense loop batch for batch — same permutation handling, batch
// boundaries (remainder merged into the final batch), T0 offset, tail
// window and Tol early stopping — so the two paths are interchangeable
// up to floating-point rounding; the parity tests in sparse_test.go and
// internal/engine pin that equivalence per strategy.
func runSparse(s SparseSamples, lf loss.Linear, cfg Config) (*Result, error) {
	m := s.Len()
	d := s.Dim()
	b := cfg.Batch
	if b == 0 {
		b = 1
	}
	if b > m {
		b = m
	}
	if cfg.W0 != nil && len(cfg.W0) != d {
		return nil, fmt.Errorf("sgd: W0 has dim %d, want %d", len(cfg.W0), d)
	}

	perm := cfg.Perm
	if perm == nil && !cfg.NoPerm {
		perm = cfg.Rand.Perm(m)
	}

	updatesPerPass := m / b
	if updatesPerPass < 1 {
		updatesPerPass = 1
	}
	// The final batch of a pass absorbs the remainder (see the dense
	// loop's sensitivity note), so batches reach size < 2b.
	maxBatch := m - (updatesPerPass-1)*b
	total := cfg.T0 + cfg.Passes*updatesPerPass
	tailFrom := 0
	tailCount := 0
	if cfg.AverageTail {
		n := int(math.Ceil(math.Log(float64(total))))
		if n < 1 {
			n = 1
		}
		tailFrom = total - n + 1
	}

	st := newSparseState(lf, d, maxBatch, cfg.Radius, cfg.Average || cfg.AverageTail, cfg.W0)
	st.par = newSparseKernel(s, cfg.KernelWorkers, maxBatch, st)
	if st.par != nil {
		defer st.par.close()
	}
	var wd []float64
	if cfg.Tol > 0 || cfg.Progress != nil {
		wd = make([]float64, d)
	}

	t := cfg.T0
	passes := 0
	prevRisk := math.Inf(1)
	for pass := 0; pass < cfg.Passes; pass++ {
		if cfg.FreshPerm && pass > 0 {
			perm = cfg.Rand.Perm(m)
		}
		for u := 0; u < updatesPerPass; u++ {
			if cfg.Ctx != nil {
				if err := cfg.Ctx.Err(); err != nil {
					return nil, err
				}
			}
			start := u * b
			end := start + b
			if u == updatesPerPass-1 {
				end = m
			}
			t++
			st.batch(s, perm, start, end, cfg.Step.Eta(t))
			if cfg.Average {
				st.cs += st.alpha
			} else if cfg.AverageTail && t >= tailFrom {
				st.cs += st.alpha
				tailCount++
			}
		}
		passes++
		st.refreshNorm()
		if cfg.Tol > 0 || cfg.Progress != nil {
			st.dense(wd)
			risk := sparseEmpiricalRisk(s, lf, wd)
			if cfg.Progress != nil {
				cfg.Progress(passes, risk)
			}
			if cfg.Tol > 0 {
				if prevRisk-risk < cfg.Tol {
					break
				}
				prevRisk = risk
			}
		}
	}

	w := make([]float64, d)
	st.dense(w)
	res := &Result{W: w, Updates: t - cfg.T0, Passes: passes}
	if cfg.Average {
		wavg := st.iterateSum()
		vec.Scale(wavg, 1/float64(t-cfg.T0))
		res.WAvg = wavg
	} else if cfg.AverageTail && tailCount > 0 {
		wavg := st.iterateSum()
		vec.Scale(wavg, 1/float64(tailCount))
		res.WAvg = wavg
	}
	return res, nil
}

// sparseEmpiricalRisk is EmpiricalRisk over sparse rows: one sparse
// dot per example and the (λ/2)‖w‖² regularizer computed once instead
// of per row.
func sparseEmpiricalRisk(s SparseSamples, f loss.Linear, w []float64) float64 {
	m := s.Len()
	if m == 0 {
		return 0
	}
	var reg float64
	if lambda := f.Reg(); lambda > 0 {
		n := vec.Norm(w)
		reg = 0.5 * lambda * n * n
	}
	var sum float64
	for i := 0; i < m; i++ {
		x, y := s.AtSparse(i)
		sum += f.EvalDot(x.Dot(w), y) + reg
	}
	return sum / float64(m)
}
