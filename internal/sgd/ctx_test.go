package sgd

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"boltondp/internal/loss"
)

// Both kernels must return ctx.Err() promptly on a mid-pass cancel.
func TestRunCtxCancelBothKernels(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sp, de := randomSparseSamples(r, 400, 100, 10)
	f := loss.NewLogistic(1e-2, 0)
	for _, tc := range []struct {
		name string
		s    Samples
	}{
		{"sparse kernel", sp},
		{"dense kernel", de},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			calls := 0
			cfg := Config{
				Loss: f, Step: Constant(0.05), Passes: 100, Batch: 1,
				Rand: rand.New(rand.NewSource(1)), Ctx: ctx,
				// Cancel from inside the run, via the progress hook at
				// the end of pass 2.
				Progress: func(pass int, risk float64) {
					calls++
					if pass == 2 {
						cancel()
					}
				},
			}
			if (tc.name == "sparse kernel") != UsesSparseKernel(tc.s, cfg) {
				t.Fatal("kernel dispatch mismatch")
			}
			_, err := Run(tc.s, cfg)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if calls != 2 {
				t.Errorf("run continued for %d passes after cancel at pass 2", calls)
			}
		})
	}
}

// A nil Ctx (every pre-existing caller) must behave exactly as before:
// same model, same pass count.
func TestRunNilCtxUnchanged(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	sp, _ := randomSparseSamples(r, 200, 50, 5)
	f := loss.NewLogistic(1e-2, 0)
	base := Config{Loss: f, Step: Constant(0.05), Passes: 3, Batch: 4,
		Rand: rand.New(rand.NewSource(2))}
	withCtx := base
	withCtx.Ctx = context.Background()
	withCtx.Rand = rand.New(rand.NewSource(2))
	a, err := Run(sp, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sp, withCtx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatalf("ctx changed the model at %d: %g != %g", i, a.W[i], b.W[i])
		}
	}
	if a.Passes != b.Passes || a.Updates != b.Updates {
		t.Errorf("ctx changed the run shape: %+v vs %+v", a, b)
	}
}

// The per-update ctx poll must not allocate: the steady-state sparse
// update stays at 0 allocs/op with a live context installed (the same
// gate as TestSparseUpdateAllocs, plus the ctx branch).
func TestSparseCtxCheckAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	sp, _ := randomSparseSamples(r, 512, 800, 40)
	f := loss.NewLogistic(1e-2, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Loss: f, Step: Constant(0.05), Passes: 1, Batch: 16,
		NoPerm: true, Radius: 1.0, Ctx: ctx,
	}
	if !UsesSparseKernel(sp, cfg) {
		t.Fatal("source not sparse-dispatched")
	}
	// One warm-up run, then measure whole-run allocations: a per-update
	// allocation in the ctx path would show up as ≥ updatesPerPass(=32)
	// extra allocs over the fixed run-setup cost (~10).
	if _, err := Run(sp, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Run(sp, cfg); err != nil {
			t.Fatal(err)
		}
	})
	cfgNil := cfg
	cfgNil.Ctx = nil
	allocsNil := testing.AllocsPerRun(20, func() {
		if _, err := Run(sp, cfgNil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != allocsNil {
		t.Fatalf("ctx check allocates: %v allocs/run with ctx, %v without", allocs, allocsNil)
	}
}

// ctxOverheadEpochs times iters epochs of the steady-state sparse
// kernel and reports ns per epoch. The loop is self-timed rather than
// run through testing.Benchmark, which would inherit the CI smoke's
// -benchtime=1x and reduce every measurement to a single noisy run.
func ctxOverheadEpochs(t *testing.T, sp SparseSamples, cfg Config, iters int) float64 {
	t.Helper()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := Run(sp, cfg); err != nil {
			t.Fatal(err)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// The bench-smoke of the satellite checklist: the per-update ctx check
// must cost < 2% of an epoch on the BenchmarkSparse* workload. Timing
// comparisons are noisy, so each measurement averages a fixed batch of
// epochs and the gate takes the minimum over several attempts, failing
// only when every attempt exceeds the bound.
func TestSparseCtxCheckOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate; race instrumentation multiplies the atomic ctx poll's cost")
	}
	r := rand.New(rand.NewSource(1))
	sp, _ := randomSparseSamples(r, sparseBenchRows, sparseBenchDim, sparseBenchNNZ)
	f := loss.NewLogistic(1e-2, 0)
	base := Config{
		Loss: f, Step: Constant(0.05), Passes: 1, Batch: 10,
		Radius: 100, NoPerm: true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx := base
	withCtx.Ctx = ctx

	const iters = 100 // ~0.5ms per epoch ⇒ ~50ms per measurement
	// Warm-up: fault in pages, steady the caches, trigger scaling.
	ctxOverheadEpochs(t, sp, base, 10)
	ctxOverheadEpochs(t, sp, withCtx, 10)

	const limit = 1.02 // < 2% overhead
	best := 1e18
	for attempt := 0; attempt < 5; attempt++ {
		nsBase := ctxOverheadEpochs(t, sp, base, iters)
		nsCtx := ctxOverheadEpochs(t, sp, withCtx, iters)
		ratio := nsCtx / nsBase
		if ratio < best {
			best = ratio
		}
		if best <= limit {
			return
		}
	}
	t.Errorf("per-update ctx check overhead %.1f%% exceeds 2%% in every attempt", (best-1)*100)
}

// BenchmarkSparseCtxEpoch: the BenchmarkSparseKernelEpoch workload with
// a live context installed — compare against it to see the per-update
// ctx poll's cost (the CI smoke runs both; TestSparseCtxCheckOverhead
// gates the ratio).
func BenchmarkSparseCtxEpoch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	sp, _ := randomSparseSamples(r, sparseBenchRows, sparseBenchDim, sparseBenchNNZ)
	f := loss.NewLogistic(1e-2, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sparseBenchConfig(f, int64(i))
		cfg.Ctx = ctx
		if _, err := Run(sp, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
