//go:build !race

package sgd

const raceEnabled = false
