//go:build race

package sgd

// raceEnabled disables timing gates when the race detector's
// instrumentation distorts the cost of atomic operations (the ctx poll
// is one) relative to the arithmetic around them.
const raceEnabled = true
