package sgd

import (
	"errors"
	"fmt"
	"math/rand"

	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

// SVRG implements Stochastic Variance Reduced Gradient (Johnson &
// Zhang, NIPS 2013) — one of the "more modern SGD variants" §3.2 singles
// out as non-adaptive (Definition 7): its random index choices never
// depend on data values, so Lemma 5's randomness-one-at-a-time argument
// applies to it just as it does to PSGD.
//
// The paper does not derive an L2-sensitivity bound for SVRG (its
// growth-recursion argument covers plain gradient steps, not the
// variance-corrected update, whose anchor gradient μ touches every
// example), so this implementation is offered as a noiseless
// optimization substrate and a starting point for the paper's §6
// future-work direction. RunSVRG therefore returns no privacy
// calibration; perturbing its output requires new analysis.
type SVRGConfig struct {
	Loss loss.Function
	// Eta is the constant inner-loop step size (SVRG theory wants
	// η < 1/(4β) for convergence on smooth strongly convex losses).
	Eta float64
	// Epochs is the number of outer iterations (each recomputes the
	// full anchor gradient and runs one permutation pass inside).
	Epochs int
	// Radius projects iterates onto the L2 ball (≤ 0: unconstrained).
	Radius float64
	// Rand drives the inner-loop permutations.
	Rand *rand.Rand
}

// RunSVRG executes SVRG over s and returns the final anchor model.
func RunSVRG(s Samples, cfg SVRGConfig) (*Result, error) {
	m := s.Len()
	if m == 0 {
		return nil, errors.New("sgd: empty training set")
	}
	if cfg.Loss == nil {
		return nil, errors.New("sgd: SVRGConfig.Loss is required")
	}
	if cfg.Eta <= 0 {
		return nil, fmt.Errorf("sgd: SVRG step size %v", cfg.Eta)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("sgd: SVRG epochs %d", cfg.Epochs)
	}
	if cfg.Rand == nil {
		return nil, errors.New("sgd: SVRGConfig.Rand is required")
	}
	d := s.Dim()

	anchor := make([]float64, d) // w̃, the outer iterate
	w := make([]float64, d)
	mu := make([]float64, d) // full gradient at the anchor
	g := make([]float64, d)
	ga := make([]float64, d)
	updates := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// μ = ∇L_S(w̃): one full pass.
		vec.Zero(mu)
		for i := 0; i < m; i++ {
			x, y := s.At(i)
			cfg.Loss.Grad(g, anchor, x, y)
			vec.Axpy(mu, 1/float64(m), g)
		}
		// Inner loop: one permutation pass of corrected updates
		// w ← Π( w − η(∇ℓ_i(w) − ∇ℓ_i(w̃) + μ) ).
		copy(w, anchor)
		for _, i := range cfg.Rand.Perm(m) {
			x, y := s.At(i)
			cfg.Loss.Grad(g, w, x, y)
			cfg.Loss.Grad(ga, anchor, x, y)
			for j := 0; j < d; j++ {
				w[j] -= cfg.Eta * (g[j] - ga[j] + mu[j])
			}
			vec.ProjectBall(w, cfg.Radius)
			updates++
		}
		copy(anchor, w)
	}
	return &Result{W: anchor, Updates: updates, Passes: cfg.Epochs}, nil
}
