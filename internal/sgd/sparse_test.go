package sgd

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

// randomSparseSamples builds matching sparse and dense views of one
// random classification set: m rows in d dimensions with nnz non-zeros
// each, rows normalized into the unit ball.
func randomSparseSamples(r *rand.Rand, m, d, nnz int) (*SparseSliceSamples, *SliceSamples) {
	sp := &SparseSliceSamples{D: d}
	de := &SliceSamples{}
	for i := 0; i < m; i++ {
		dense := make([]float64, d)
		for k := 0; k < nnz; k++ {
			dense[r.Intn(d)] = 0.5 + r.Float64()
		}
		if n := vec.Norm(dense); n > 1 {
			vec.Scale(dense, 1/n)
		}
		y := 1.0
		if r.Float64() < 0.5 {
			y = -1
		}
		sp.X = append(sp.X, vec.DenseToSparse(dense))
		sp.Y = append(sp.Y, y)
		de.X = append(de.X, dense)
		de.Y = append(de.Y, y)
	}
	return sp, de
}

// TestSparseDenseParity is the tentpole property test: the sparse
// kernel and the dense kernel must produce models equal within 1e-12
// for every loss, batch size, and combination of projection and
// averaging, with the same randomness consumption.
func TestSparseDenseParity(t *testing.T) {
	losses := map[string]loss.Function{
		"logistic":         loss.NewLogistic(0, 0),
		"logistic-l2":      loss.NewLogistic(1e-2, 0),
		"huber-l2":         loss.NewHuber(0.1, 1e-2, 0),
		"leastsquares-l2":  loss.NewLeastSquares(1e-2, 0),
		"logistic-bigstep": loss.NewLogistic(0.3, 0), // aggressive shrink exercises α folding
		"huber":            loss.NewHuber(0.1, 0, 0), // flat regions exercise zero data terms
		"leastsquares":     loss.NewLeastSquares(0, 0),
	}
	type variant struct {
		name    string
		radius  float64
		average bool
		tail    bool
	}
	variants := []variant{
		{"plain", 0, false, false},
		{"projected", 0.7, false, false},
		{"averaged", 0, true, false},
		{"projected-averaged", 0.7, true, false},
		{"tail-averaged", 0.7, false, true},
	}
	for lname, f := range losses {
		for _, b := range []int{1, 10} {
			for _, v := range variants {
				t.Run(fmt.Sprintf("%s/b=%d/%s", lname, b, v.name), func(t *testing.T) {
					r := rand.New(rand.NewSource(11))
					sp, de := randomSparseSamples(r, 173, 60, 6)
					mk := func() Config {
						p := f.Params()
						var step Schedule
						if p.Gamma > 0 {
							step = StronglyConvexPaper(p.Beta, p.Gamma)
						} else {
							step = Constant(0.3)
						}
						return Config{
							Loss: f, Step: step, Passes: 3, Batch: b,
							Radius: v.radius, Average: v.average, AverageTail: v.tail,
							FreshPerm: true,
						}
					}
					cs := mk()
					cs.Rand = rand.New(rand.NewSource(42))
					cd := mk()
					cd.Rand = rand.New(rand.NewSource(42))
					if !UsesSparseKernel(sp, cs) {
						t.Fatal("sparse source did not dispatch to the sparse kernel")
					}
					if UsesSparseKernel(de, cd) {
						t.Fatal("dense source dispatched to the sparse kernel")
					}
					rs, err := Run(sp, cs)
					if err != nil {
						t.Fatal(err)
					}
					rd, err := Run(de, cd)
					if err != nil {
						t.Fatal(err)
					}
					if rs.Updates != rd.Updates || rs.Passes != rd.Passes {
						t.Fatalf("bookkeeping mismatch: sparse %d/%d dense %d/%d",
							rs.Updates, rs.Passes, rd.Updates, rd.Passes)
					}
					if !vec.Equal(rs.W, rd.W, 1e-12) {
						t.Errorf("W diverged: max|Δ| = %g", maxAbsDiff(rs.W, rd.W))
					}
					if (rs.WAvg == nil) != (rd.WAvg == nil) {
						t.Fatalf("WAvg presence mismatch")
					}
					if rs.WAvg != nil && !vec.Equal(rs.WAvg, rd.WAvg, 1e-12) {
						t.Errorf("WAvg diverged: max|Δ| = %g", maxAbsDiff(rs.WAvg, rd.WAvg))
					}
				})
			}
		}
	}
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Parity must also hold for the remaining Config features the engine
// strategies exercise: NoPerm (streaming), T0 offsets (sharded epoch
// continuation), W0 warm starts, fixed Perm and Tol early stopping.
func TestSparseDenseParityEngineFeatures(t *testing.T) {
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	r := rand.New(rand.NewSource(3))
	sp, de := randomSparseSamples(r, 120, 40, 5)

	w0 := make([]float64, 40)
	for i := range w0 {
		w0[i] = r.NormFloat64() * 0.1
	}
	perm := rand.New(rand.NewSource(77)).Perm(120)

	cases := map[string]Config{
		"noperm-t0": {Loss: f, Step: StronglyConvexPaper(p.Beta, p.Gamma),
			Passes: 1, Batch: 4, NoPerm: true, T0: 57, Radius: 2, W0: w0},
		"fixed-perm": {Loss: f, Step: StronglyConvexPaper(p.Beta, p.Gamma),
			Passes: 2, Batch: 1, Perm: perm, Average: true},
		"tol": {Loss: f, Step: StronglyConvexPaper(p.Beta, p.Gamma),
			Passes: 50, Batch: 4, Perm: perm, Tol: 1e-5},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			rs, err := Run(sp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := Run(de, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Passes != rd.Passes || rs.Updates != rd.Updates {
				t.Fatalf("bookkeeping mismatch: sparse %d/%d dense %d/%d",
					rs.Updates, rs.Passes, rd.Updates, rd.Passes)
			}
			if !vec.Equal(rs.W, rd.W, 1e-12) {
				t.Errorf("W diverged: max|Δ| = %g", maxAbsDiff(rs.W, rd.W))
			}
		})
	}
}

// A GradNoise hook needs a materialized dense gradient, so it must
// force the dense path even on a sparse source.
func TestGradNoiseForcesDensePath(t *testing.T) {
	f := loss.NewLogistic(0, 0)
	cfg := Config{Loss: f, Step: Constant(0.1), Passes: 1,
		GradNoise: func(t int, g []float64) {}}
	sp := &SparseSliceSamples{D: 3, X: []*vec.Sparse{vec.DenseToSparse([]float64{1, 0, 0})}, Y: []float64{1}}
	if UsesSparseKernel(sp, cfg) {
		t.Error("GradNoise run dispatched to the sparse kernel")
	}
}

// EmpiricalRisk must agree across representations (it dispatches on
// the same two-tier contract).
func TestSparseEmpiricalRiskParity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sp, de := randomSparseSamples(r, 80, 30, 4)
	w := make([]float64, 30)
	for i := range w {
		w[i] = r.NormFloat64()
	}
	for _, f := range []loss.Function{
		loss.NewLogistic(1e-2, 0), loss.NewHuber(0.1, 0, 0), loss.NewLeastSquares(0, 0),
	} {
		rsp := EmpiricalRisk(sp, f, w)
		rde := EmpiricalRisk(de, f, w)
		if math.Abs(rsp-rde) > 1e-12 {
			t.Errorf("%s: sparse risk %v dense %v", f.Name(), rsp, rde)
		}
	}
}

// The steady-state sparse update must not allocate: row access hands
// out views, the batch scalar buffer is preallocated, and the scaled
// representation never materializes w. This is the CI alloc gate.
func TestSparseUpdateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	sp, _ := randomSparseSamples(r, 512, 800, 40)
	var f loss.Linear = loss.NewLogistic(1e-2, 0)
	st := newSparseState(f, 800, 16, 1.0, true, nil)
	st.cs = 1 // exercise the iterate-sum maintenance branch too
	eta := 0.05
	start := 0
	allocs := testing.AllocsPerRun(1000, func() {
		st.batch(sp, nil, start, start+16, eta)
		st.cs += st.alpha
		start = (start + 16) % 496
	})
	if allocs > 0 {
		t.Fatalf("steady-state sparse update allocates: %v allocs/op", allocs)
	}
}

// Folding must keep the model exact: drive α to the fold threshold via
// an extreme shrink and check against the dense path.
func TestSparseAlphaFoldParity(t *testing.T) {
	// λη per step shrinks α by 0.5: after ~350 steps α < 1e-100 and the
	// kernel must fold without disturbing parity.
	f := loss.NewLeastSquares(5, 0) // λ = 5
	r := rand.New(rand.NewSource(13))
	sp, de := randomSparseSamples(r, 400, 20, 3)
	cfg := Config{Loss: f, Step: Constant(0.1), Passes: 1, Batch: 1, NoPerm: true}
	rs, err := Run(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(de, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(rs.W, rd.W, 1e-12) {
		t.Errorf("fold parity: max|Δ| = %g", maxAbsDiff(rs.W, rd.W))
	}
}
