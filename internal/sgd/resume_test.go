package sgd

import (
	"math/rand"
	"reflect"
	"testing"

	"boltondp/internal/loss"
)

// T0 must make two chained one-pass runs reproduce a single two-pass
// run exactly: same permutation, same schedule positions, same model.
func TestT0ContinuesSchedule(t *testing.T) {
	m, d := 120, 4
	s := randomSamples(t, m, d, 1)
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	perm := rand.New(rand.NewSource(2)).Perm(m)

	full, err := Run(s, Config{
		Loss: f, Step: StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 2, Batch: 5, Radius: 50, Perm: perm,
	})
	if err != nil {
		t.Fatal(err)
	}

	first, err := Run(s, Config{
		Loss: f, Step: StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 1, Batch: 5, Radius: 50, Perm: perm,
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(s, Config{
		Loss: f, Step: StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 1, Batch: 5, Radius: 50, Perm: perm,
		W0: first.W, T0: first.Updates,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.W, second.W) {
		t.Error("chained T0 runs differ from the single two-pass run")
	}
	if first.Updates != m/5 || second.Updates != m/5 {
		t.Errorf("per-run updates %d/%d, want %d", first.Updates, second.Updates, m/5)
	}
	if full.Updates != first.Updates+second.Updates {
		t.Errorf("full updates %d != %d + %d", full.Updates, first.Updates, second.Updates)
	}
}

// NoPerm must equal an explicit identity permutation, work without a
// Rand, and reject contradictory permutation settings.
func TestNoPerm(t *testing.T) {
	m, d := 90, 3
	s := randomSamples(t, m, d, 3)
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	ident := make([]int, m)
	for i := range ident {
		ident[i] = i
	}
	want, err := Run(s, Config{
		Loss: f, Step: StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 1, Batch: 4, Radius: 50, Perm: ident,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(s, Config{
		Loss: f, Step: StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 1, Batch: 4, Radius: 50, NoPerm: true, // no Rand
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.W, got.W) {
		t.Error("NoPerm differs from the identity permutation")
	}

	if _, err := Run(s, Config{
		Loss: f, Step: Constant(0.1), Passes: 1, NoPerm: true, Perm: ident,
	}); err == nil {
		t.Error("NoPerm+Perm accepted")
	}
	if _, err := Run(s, Config{
		Loss: f, Step: Constant(0.1), Passes: 1, NoPerm: true, FreshPerm: true,
		Rand: rand.New(rand.NewSource(1)),
	}); err == nil {
		t.Error("NoPerm+FreshPerm accepted")
	}
	if _, err := Run(s, Config{
		Loss: f, Step: Constant(0.1), Passes: 1, Perm: ident, T0: -1,
	}); err == nil {
		t.Error("negative T0 accepted")
	}
}

// randomSamples builds a deterministic unit-ball SliceSamples set.
func randomSamples(t *testing.T, m, d int, seed int64) *SliceSamples {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	s := &SliceSamples{X: make([][]float64, m), Y: make([]float64, m)}
	for i := 0; i < m; i++ {
		x := make([]float64, d)
		var norm float64
		for j := range x {
			x[j] = r.NormFloat64()
			norm += x[j] * x[j]
		}
		for j := range x {
			x[j] /= 1 + norm
		}
		s.X[i] = x
		s.Y[i] = float64(2*r.Intn(2) - 1)
	}
	return s
}
