package sgd

import (
	"fmt"
	"math"
)

// Schedule maps the 1-based update counter t to the learning rate η_t.
// The concrete schedules below are exactly the rows of Table 4 of the
// paper plus the two extra convex schedules of Corollaries 2 and 3.
type Schedule interface {
	Name() string
	Eta(t int) float64
}

type constant struct{ eta float64 }

// Constant returns the fixed-step schedule η_t = eta — the convex
// setting of Algorithm 1 (the paper uses eta = 1/√m, or R/(L√m) in the
// convergence analysis of Lemma 12).
func Constant(eta float64) Schedule {
	if eta <= 0 {
		panic(fmt.Sprintf("sgd: Constant step must be positive, got %v", eta))
	}
	return constant{eta}
}

func (c constant) Name() string      { return fmt.Sprintf("constant(%g)", c.eta) }
func (c constant) Eta(t int) float64 { return c.eta }

type invT struct{ gamma float64 }

// InvT returns η_t = 1/(γt) — the noiseless strongly convex schedule of
// Table 4 and BST14's Algorithm 5 step.
func InvT(gamma float64) Schedule {
	if gamma <= 0 {
		panic(fmt.Sprintf("sgd: InvT requires gamma>0, got %v", gamma))
	}
	return invT{gamma}
}

func (s invT) Name() string      { return fmt.Sprintf("1/(γt), γ=%g", s.gamma) }
func (s invT) Eta(t int) float64 { return 1 / (s.gamma * float64(t)) }

type stronglyConvexPaper struct{ beta, gamma float64 }

// StronglyConvexPaper returns η_t = min(1/β, 1/(γt)) — the schedule of
// Algorithm 2, whose cap at 1/β is what makes every gradient update
// (1−η_tγ)-expansive (Lemma 2) and yields the 2L/(γm) sensitivity.
func StronglyConvexPaper(beta, gamma float64) Schedule {
	if beta <= 0 || gamma <= 0 {
		panic(fmt.Sprintf("sgd: StronglyConvexPaper requires beta,gamma>0, got %v, %v", beta, gamma))
	}
	return stronglyConvexPaper{beta, gamma}
}

func (s stronglyConvexPaper) Name() string {
	return fmt.Sprintf("min(1/β,1/(γt)), β=%g γ=%g", s.beta, s.gamma)
}

func (s stronglyConvexPaper) Eta(t int) float64 {
	return math.Min(1/s.beta, 1/(s.gamma*float64(t)))
}

type invSqrtT struct{ c float64 }

// InvSqrtT returns η_t = c/√t — SCS13's schedule (Table 4 uses c = 1).
func InvSqrtT(c float64) Schedule {
	if c <= 0 {
		panic(fmt.Sprintf("sgd: InvSqrtT requires c>0, got %v", c))
	}
	return invSqrtT{c}
}

func (s invSqrtT) Name() string      { return fmt.Sprintf("%g/√t", s.c) }
func (s invSqrtT) Eta(t int) float64 { return s.c / math.Sqrt(float64(t)) }

type decreasingConvex struct {
	beta float64
	mc   float64 // m^c precomputed
	m    int
	c    float64
}

// DecreasingConvex returns η_t = 2/(β(t+m^c)) for c ∈ [0,1) — the
// decreasing convex schedule of Corollary 2.
func DecreasingConvex(beta float64, m int, c float64) Schedule {
	if beta <= 0 || m < 1 || c < 0 || c >= 1 {
		panic(fmt.Sprintf("sgd: DecreasingConvex parameters out of range (β=%v m=%d c=%v)", beta, m, c))
	}
	return decreasingConvex{beta: beta, mc: math.Pow(float64(m), c), m: m, c: c}
}

func (s decreasingConvex) Name() string {
	return fmt.Sprintf("2/(β(t+m^%g)), β=%g m=%d", s.c, s.beta, s.m)
}

func (s decreasingConvex) Eta(t int) float64 {
	return 2 / (s.beta * (float64(t) + s.mc))
}

type sqrtConvex struct {
	beta float64
	mc   float64
	m    int
	c    float64
}

// SqrtConvex returns η_t = 2/(β(√t+m^c)) for c ∈ [0,1) — the
// square-root convex schedule of Corollary 3.
func SqrtConvex(beta float64, m int, c float64) Schedule {
	if beta <= 0 || m < 1 || c < 0 || c >= 1 {
		panic(fmt.Sprintf("sgd: SqrtConvex parameters out of range (β=%v m=%d c=%v)", beta, m, c))
	}
	return sqrtConvex{beta: beta, mc: math.Pow(float64(m), c), m: m, c: c}
}

func (s sqrtConvex) Name() string {
	return fmt.Sprintf("2/(β(√t+m^%g)), β=%g m=%d", s.c, s.beta, s.m)
}

func (s sqrtConvex) Eta(t int) float64 {
	return 2 / (s.beta * (math.Sqrt(float64(t)) + s.mc))
}
