package sgd

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

// bitsEqual is the parallel kernel's equality notion: float64 bit
// patterns, not tolerances. Parallel execution is advertised as
// BIT-IDENTICAL to sequential, so anything short of this is a failure.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestParKernelDenseBatchBitIdentical drives the dense batch executor
// directly against the sequential accumulation loop it replaces — the
// strongest form of the engagement check, since a nil kernel would fail
// the Fatalf rather than silently compare sequential to sequential.
func TestParKernelDenseBatchBitIdentical(t *testing.T) {
	const m, d, n, start = 64, 33, 21, 17
	r := rand.New(rand.NewSource(7))
	_, de := randomSparseSamples(r, m, d, 5)
	f := loss.NewHuber(0.1, 1e-2, 0) // piecewise regions stress per-row purity
	w := make([]float64, d)
	for i := range w {
		w[i] = r.NormFloat64() * 0.3
	}
	perm := rand.New(rand.NewSource(9)).Perm(m)

	want := make([]float64, d)
	gbuf := make([]float64, d)
	for i := start; i < start+n; i++ {
		x, y := de.At(perm[i])
		f.Grad(gbuf, w, x, y)
		vec.Axpy(want, 1, gbuf)
	}

	// Worker counts beyond NumCPU and beyond the batch size must both
	// stay exact: the split only moves work, never the fold order.
	for _, workers := range []int{2, 3, 4, 7, 32} {
		grad := make([]float64, d)
		dk := newDenseKernel(de, workers, n, d, f, w, grad)
		if dk == nil {
			t.Fatalf("W=%d: dense kernel did not engage", workers)
		}
		dk.batch(perm, start, start+n)
		dk.close()
		if !bitsEqual(grad, want) {
			t.Errorf("W=%d: parallel batch gradient is not bit-identical (max|Δ| = %g)",
				workers, maxAbsDiff(grad, want))
		}
	}
}

// TestParKernelRunParity is the sgd-level slice of the parity wall:
// whole runs under KernelWorkers ∈ {1, 2, 4} must reproduce the
// sequential run bit for bit, on both kernels, across the Config
// features that interact with the batch loop (projection, averaging,
// tail averaging, the GradNoise hook).
func TestParKernelRunParity(t *testing.T) {
	losses := map[string]loss.Function{
		"logistic-l2":  loss.NewLogistic(1e-2, 0),
		"logistic":     loss.NewLogistic(0, 0),
		"huber-l2":     loss.NewHuber(0.1, 1e-2, 0),
		"leastsquares": loss.NewLeastSquares(1e-2, 0),
	}
	type variant struct {
		name    string
		radius  float64
		average bool
		tail    bool
		noise   bool
	}
	variants := []variant{
		{"plain", 0, false, false, false},
		{"projected-averaged", 0.7, true, false, false},
		{"tail-averaged", 0.7, false, true, false},
		{"gradnoise", 0.7, false, false, true},
	}
	r := rand.New(rand.NewSource(11))
	sp, de := randomSparseSamples(r, 173, 60, 6)

	for lname, f := range losses {
		for _, v := range variants {
			t.Run(fmt.Sprintf("%s/%s", lname, v.name), func(t *testing.T) {
				mk := func(kernelWorkers int) Config {
					p := f.Params()
					var step Schedule
					if p.Gamma > 0 {
						step = StronglyConvexPaper(p.Beta, p.Gamma)
					} else {
						step = Constant(0.3)
					}
					cfg := Config{
						Loss: f, Step: step, Passes: 3, Batch: 10,
						Radius: v.radius, Average: v.average, AverageTail: v.tail,
						FreshPerm: true, KernelWorkers: kernelWorkers,
						Rand: rand.New(rand.NewSource(42)),
					}
					if v.noise {
						// Deterministic stand-in for the SCS13 hook: runs
						// post-reduce on one thread, so it must see the
						// identical gradient at the identical update index.
						cfg.GradNoise = func(t int, g []float64) {
							for i := range g {
								g[i] += 1e-3 * math.Sin(float64(t+i))
							}
						}
					}
					return cfg
				}
				check := func(name string, s Samples) {
					base, err := Run(s, mk(0))
					if err != nil {
						t.Fatal(err)
					}
					for _, kw := range []int{1, 2, 4} {
						res, err := Run(s, mk(kw))
						if err != nil {
							t.Fatal(err)
						}
						if res.Updates != base.Updates || res.Passes != base.Passes {
							t.Fatalf("%s/W=%d: bookkeeping %d/%d, sequential %d/%d",
								name, kw, res.Updates, res.Passes, base.Updates, base.Passes)
						}
						if !bitsEqual(res.W, base.W) {
							t.Errorf("%s/W=%d: W not bit-identical (max|Δ| = %g)",
								name, kw, maxAbsDiff(res.W, base.W))
						}
						if (res.WAvg == nil) != (base.WAvg == nil) {
							t.Fatalf("%s/W=%d: WAvg presence mismatch", name, kw)
						}
						if res.WAvg != nil && !bitsEqual(res.WAvg, base.WAvg) {
							t.Errorf("%s/W=%d: WAvg not bit-identical (max|Δ| = %g)",
								name, kw, maxAbsDiff(res.WAvg, base.WAvg))
						}
					}
				}
				check("dense", de)
				// GradNoise forces the dense path even on sparse sources;
				// the sparse rows then exercise the dense kernel's At views.
				if !v.noise && !UsesSparseKernel(sp, mk(2)) {
					t.Fatal("sparse source did not dispatch to the sparse kernel")
				}
				check("sparse", sp)
			})
		}
	}
}

// TestParKernelDispatch pins the (pure-performance) dispatch rules: no
// kernel below two workers or minParBatch, and no dense kernel past the
// gradient-buffer cap. These can never change results — the parity
// tests above prove both paths bit-equal — but silently losing them
// would regress either speed or memory.
func TestParKernelDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	sp, de := randomSparseSamples(r, 64, 16, 4)
	f := loss.NewLogistic(1e-2, 0)
	w := make([]float64, 16)
	g := make([]float64, 16)

	if dk := newDenseKernel(de, 1, 64, 16, f, w, g); dk != nil {
		dk.close()
		t.Error("dense kernel engaged at W=1")
	}
	if dk := newDenseKernel(de, 4, minParBatch-1, 16, f, w, g); dk != nil {
		dk.close()
		t.Error("dense kernel engaged below minParBatch")
	}
	if dk := newDenseKernel(de, 4, 4096, 2048, f, w, g); dk != nil {
		dk.close()
		t.Error("dense kernel engaged past maxParGradFloats")
	}
	if dk := newDenseKernel(de, 4, 64, 16, f, w, g); dk == nil {
		t.Error("dense kernel refused a qualifying configuration")
	} else {
		dk.close()
	}

	var lf loss.Linear = loss.NewLogistic(1e-2, 0)
	st := newSparseState(lf, 16, 64, 1.0, false, nil)
	if sk := newSparseKernel(sp, 1, 64, st); sk != nil {
		sk.close()
		t.Error("sparse kernel engaged at W=1")
	}
	if sk := newSparseKernel(sp, 4, minParBatch-1, st); sk != nil {
		sk.close()
		t.Error("sparse kernel engaged below minParBatch")
	}
	if sk := newSparseKernel(sp, 4, 64, st); sk == nil {
		t.Error("sparse kernel refused a qualifying configuration")
	} else {
		sk.close()
	}
}

func TestKernelWorkersValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	_, de := randomSparseSamples(r, 32, 8, 3)
	cfg := Config{
		Loss: loss.NewLogistic(1e-2, 0), Step: Constant(0.1), Passes: 1,
		KernelWorkers: -1, Rand: rand.New(rand.NewSource(2)),
	}
	if _, err := Run(de, cfg); err == nil {
		t.Error("negative KernelWorkers accepted")
	}
}

// TestParKernelAllocs is the CI alloc gate: once a kernel is built, the
// per-batch steady state — pool handshake included — must allocate
// nothing, matching the sparse kernel's existing 0-allocs discipline.
func TestParKernelAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sp, de := randomSparseSamples(r, 512, 200, 20)
	f := loss.NewLogistic(1e-2, 0)

	w := make([]float64, 200)
	grad := make([]float64, 200)
	dk := newDenseKernel(de, 4, 16, 200, f, w, grad)
	if dk == nil {
		t.Fatal("dense kernel did not engage")
	}
	defer dk.close()
	start := 0
	if allocs := testing.AllocsPerRun(500, func() {
		dk.batch(nil, start, start+16)
		start = (start + 16) % 496
	}); allocs > 0 {
		t.Errorf("steady-state dense parallel batch allocates: %v allocs/op", allocs)
	}

	var lf loss.Linear = loss.NewLogistic(1e-2, 0)
	st := newSparseState(lf, 200, 16, 1.0, true, nil)
	sk := newSparseKernel(sp, 4, 16, st)
	if sk == nil {
		t.Fatal("sparse kernel did not engage")
	}
	defer sk.close()
	start = 0
	if allocs := testing.AllocsPerRun(500, func() {
		sk.deriv(nil, start, 16)
		start = (start + 16) % 496
	}); allocs > 0 {
		t.Errorf("steady-state sparse parallel deriv allocates: %v allocs/op", allocs)
	}
}

// splitRange must cover [0, n) exactly once, in order, for every
// worker count — including more workers than items.
func TestSplitRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 16, 173} {
			lo := make([]int, workers)
			hi := make([]int, workers)
			splitRange(lo, hi, n)
			pos := 0
			for k := 0; k < workers; k++ {
				if lo[k] != pos || hi[k] < lo[k] {
					t.Fatalf("w=%d n=%d: range %d is [%d,%d), expected to start at %d",
						workers, n, k, lo[k], hi[k], pos)
				}
				pos = hi[k]
			}
			if pos != n {
				t.Fatalf("w=%d n=%d: ranges cover %d items", workers, n, pos)
			}
		}
	}
}
