package sgd

import (
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

func TestAverageTailMatchesManual(t *testing.T) {
	const m, k = 30, 2
	r := rand.New(rand.NewSource(1))
	s := separable(r, m, 3)
	f := loss.NewLogistic(0, 0)
	perm := rand.New(rand.NewSource(2)).Perm(m)
	res, err := Run(s, Config{
		Loss: f, Step: Constant(0.2), Passes: k, Batch: 1, Perm: perm, AverageTail: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WAvg == nil {
		t.Fatal("AverageTail produced no WAvg")
	}
	// Manual replication: T = 60, tail = ceil(ln 60) = 5 last iterates.
	T := k * m
	n := int(math.Ceil(math.Log(float64(T))))
	w := make([]float64, 3)
	g := make([]float64, 3)
	sum := make([]float64, 3)
	cnt := 0
	for tt := 1; tt <= T; tt++ {
		x, y := s.At(perm[(tt-1)%m])
		f.Grad(g, w, x, y)
		vec.Axpy(w, -0.2, g)
		if tt >= T-n+1 {
			vec.Axpy(sum, 1, w)
			cnt++
		}
	}
	vec.Scale(sum, 1/float64(cnt))
	if cnt != n {
		t.Fatalf("manual tail count %d, want %d", cnt, n)
	}
	if !vec.Equal(res.WAvg, sum, 1e-12) {
		t.Errorf("tail average %v != manual %v", res.WAvg, sum)
	}
	// Tail average of the end of the run should differ from the full
	// average and from the last iterate in general.
	if vec.Equal(res.WAvg, res.W, 0) {
		t.Error("tail average identical to last iterate (n>1 expected)")
	}
}

func TestAverageTailValidation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := separable(r, 20, 2)
	f := loss.NewLogistic(0, 0)
	if _, err := Run(s, Config{
		Loss: f, Step: Constant(0.1), Passes: 1, Rand: r, Average: true, AverageTail: true,
	}); err == nil {
		t.Error("Average+AverageTail accepted")
	}
	if _, err := Run(s, Config{
		Loss: f, Step: Constant(0.1), Passes: 5, Rand: r, AverageTail: true, Tol: 1e-3,
	}); err == nil {
		t.Error("AverageTail+Tol accepted")
	}
}

func TestAverageTailSingleUpdate(t *testing.T) {
	// T = 1: tail covers exactly the single iterate; WAvg == W.
	r := rand.New(rand.NewSource(4))
	s := separable(r, 10, 2)
	res, err := Run(s, Config{
		Loss: loss.NewLogistic(0, 0), Step: Constant(0.1), Passes: 1, Batch: 10,
		Rand: r, AverageTail: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(res.WAvg, res.W, 0) {
		t.Errorf("T=1 tail average %v != last iterate %v", res.WAvg, res.W)
	}
}

// Tail averaging keeps the sensitivity bound (Lemma 10: δt
// non-decreasing ⇒ any averaging is bounded by δT).
func TestAverageTailSensitivityProperty(t *testing.T) {
	f := loss.NewLogistic(0, 0)
	p := f.Params()
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := 20 + r.Intn(20)
		eta := 1 / p.Beta
		S := separable(r, m, 3)
		// Neighbor differing at a random index.
		Sp := &SliceSamples{X: make([][]float64, m), Y: make([]float64, m)}
		copy(Sp.X, S.X)
		copy(Sp.Y, S.Y)
		i := r.Intn(m)
		nx := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		vec.Normalize(nx)
		Sp.X[i] = nx
		Sp.Y[i] = math.Copysign(1, r.NormFloat64())

		perm := r.Perm(m)
		cfg := Config{Loss: f, Step: Constant(eta), Passes: 2, Batch: 1, Perm: perm, AverageTail: true}
		w1, err := Run(S, cfg)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := Run(Sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bound := 2 * 2 * p.L * eta // 2kLη, k=2
		if d := vec.Dist(w1.WAvg, w2.WAvg); d > bound+1e-9 {
			t.Fatalf("seed %d: tail-averaged sensitivity %v exceeds bound %v", seed, d, bound)
		}
	}
}
