package sgd

// Deterministic intra-batch parallelism for both update kernels.
//
// Config.KernelWorkers > 1 fans the embarrassingly parallel part of a
// mini-batch update — the per-example work that reads the pre-update
// iterate — across W goroutines, and keeps everything whose result
// depends on evaluation order on the calling goroutine. The design
// constraint, inherited from the repo's parity discipline, is that the
// parallel kernel must be BIT-IDENTICAL to the sequential one for every
// W, not merely statistically equivalent the way Hogwild-style lock-free
// updates are. That holds by construction:
//
//   - Dense kernel: phase 1 computes the per-example gradients g_j =
//     ∇ℓ(w; z_j) into disjoint row buffers (loss.Function.Grad fully
//     overwrites its dst, so each buffer is a pure function of (w, z_j)
//     regardless of which worker fills it). Phase 2 reduces them
//     column-parallel: each worker owns a contiguous column slab and
//     folds grad[c] = Σ_j g_j[c] over examples in index order j =
//     0..n-1 — the same fold, in the same order, as the sequential
//     loop's vec.Axpy(grad, 1, gbuf) accumulation (dst += 1*x is exact
//     in IEEE arithmetic). The scale, noise-hook, step, projection and
//     averaging stages then run on one thread, untouched.
//
//   - Sparse kernel: only the Deriv phase of sparseState.batch is
//     fanned out — c_j = Deriv(α·⟨x_j, v⟩, y_j) writes disjoint cbuf
//     slots and only reads α and v, which no worker mutates until the
//     phase completes. The shrink/apply/project sequence that actually
//     moves the scaled-weight state stays sequential, so its
//     evaluation order is exactly the sequential kernel's.
//
// Because parallel ≡ sequential bitwise, the per-batch dispatch
// heuristics below (minimum batch size, dense buffer cap) can never
// change a result — they only decide where the identical arithmetic
// runs. Every parity wall in the repo (sparse-vs-dense, store, dist)
// therefore holds for every W without re-deriving a single bound.
//
// Data access: workers need concurrent row reads. Sources implementing
// the engine's Sharder contract (Shard(lo, hi) Samples) are exactly the
// ones whose At/AtSparse reuse per-receiver scratch, so each worker
// gets its own full-range view via Shard(0, m). Sources without the
// method must tolerate concurrent At/AtSparse calls — the contract
// engine.Sharder has always documented (data.Dataset, SliceSamples and
// the engine's range views all satisfy it).

import (
	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

const (
	// minParBatch is the smallest batch the kernels fan out: below it
	// the channel handshake costs more than the arithmetic it buys.
	// Dispatch is per batch, so a run whose regular batches are smaller
	// but whose remainder-merged final batch is larger parallelizes
	// exactly the batches worth parallelizing.
	minParBatch = 8

	// maxParGradFloats caps the dense kernel's per-example gradient
	// buffer at maxBatch×d float64s (1<<22 ≈ 32 MiB): beyond it the
	// buffers outgrow cache and the run is better off sequential. The
	// cap disables parallelism for the whole run, never mid-run.
	maxParGradFloats = 1 << 22
)

// sharder is engine.Sharder restated locally (the engine imports sgd,
// not the reverse): implemented by sources whose At is not safe for
// concurrent use, returning an independent view with its own scratch.
type sharder interface {
	Shard(lo, hi int) Samples
}

// kernelPool is a persistent fork/join pool of W-1 worker goroutines
// (the caller is worker 0). It is built once per Run and reused for
// every batch, so the steady state allocates nothing: run publishes the
// task through a struct field whose write happens-before the start
// sends, and the done receives happen-after each worker's final write.
type kernelPool struct {
	task  func(k int)     // current phase body; set by run before release
	start []chan struct{} // one buffered slot per spawned worker
	done  chan struct{}
}

// newKernelPool spawns workers-1 goroutines. Callers must close() the
// pool when the run ends or the goroutines leak.
func newKernelPool(workers int) *kernelPool {
	p := &kernelPool{
		start: make([]chan struct{}, workers-1),
		done:  make(chan struct{}, workers-1),
	}
	for k := range p.start {
		ch := make(chan struct{}, 1)
		p.start[k] = ch
		go func(k int, ch chan struct{}) {
			for range ch {
				p.task(k)
				p.done <- struct{}{}
			}
		}(k+1, ch)
	}
	return p
}

// run executes task(k) for k = 0..W-1, worker 0 on the calling
// goroutine, and returns when all have finished.
func (p *kernelPool) run(task func(k int)) {
	p.task = task
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	task(0)
	for range p.start {
		<-p.done
	}
}

// close releases the worker goroutines.
func (p *kernelPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}

// workerViews builds one row view per worker: views[0] is s itself;
// the rest are independent full-range Shard views when the source
// needs them, or s shared when concurrent access is part of its
// contract (see the package comment above).
func workerViews(s Samples, workers int) []Samples {
	views := make([]Samples, workers)
	views[0] = s
	sh, canShard := s.(sharder)
	m := s.Len()
	for k := 1; k < workers; k++ {
		if canShard {
			views[k] = sh.Shard(0, m)
		} else {
			views[k] = s
		}
	}
	return views
}

// splitRange cuts [0, n) into len(lo) contiguous nearly-equal ranges
// ([lo[k], hi[k])), front-loading the remainder. Empty ranges are fine
// (n < workers). Purely a work-assignment choice: the reduction order
// never depends on it.
func splitRange(lo, hi []int, n int) {
	w := len(lo)
	q, r := n/w, n%w
	pos := 0
	for k := 0; k < w; k++ {
		sz := q
		if k < r {
			sz++
		}
		lo[k], hi[k] = pos, pos+sz
		pos += sz
	}
}

// denseKernel is the dense path's parallel batch executor. All state a
// phase needs travels through fields set before pool.run, so the two
// phase closures are created once and the per-batch steady state stays
// at 0 allocs (gated by TestParKernelAllocs).
type denseKernel struct {
	pool  *kernelPool
	loss  loss.Function
	w     []float64 // the run's iterate; read-only during both phases
	grad  []float64 // the run's batch-gradient accumulator
	views []Samples
	gbufs [][]float64 // per-example gradient rows, maxBatch×d

	perm         []int
	start, n     int
	rowLo, rowHi []int
	colLo, colHi []int

	gradFn, reduceFn func(k int)
}

// newDenseKernel returns a parallel executor for the run, or nil when
// the configuration is sequential or the buffer cap rules fanning out.
// Callers must close() a non-nil kernel.
func newDenseKernel(s Samples, workers, maxBatch, d int, f loss.Function, w, grad []float64) *denseKernel {
	if workers <= 1 || maxBatch < minParBatch || maxBatch*d > maxParGradFloats {
		return nil
	}
	dk := &denseKernel{
		loss: f, w: w, grad: grad,
		views: workerViews(s, workers),
		gbufs: make([][]float64, maxBatch),
		rowLo: make([]int, workers), rowHi: make([]int, workers),
		colLo: make([]int, workers), colHi: make([]int, workers),
	}
	buf := make([]float64, maxBatch*d)
	for j := range dk.gbufs {
		dk.gbufs[j] = buf[j*d : (j+1)*d : (j+1)*d]
	}
	dk.gradFn = dk.gradPhase
	dk.reduceFn = dk.reducePhase
	dk.pool = newKernelPool(workers)
	return dk
}

func (dk *denseKernel) close() { dk.pool.close() }

// batch computes grad = (Σ_j ∇ℓ(w; z_{rows(start..start+n)})) exactly
// as the sequential accumulation loop would, using every worker.
func (dk *denseKernel) batch(perm []int, start, end int) {
	dk.perm, dk.start, dk.n = perm, start, end-start
	splitRange(dk.rowLo, dk.rowHi, dk.n)
	splitRange(dk.colLo, dk.colHi, len(dk.grad))
	dk.pool.run(dk.gradFn)
	dk.pool.run(dk.reduceFn)
}

// gradPhase fills the per-example gradient rows of worker k's row
// range. Grad fully overwrites its dst, so each row is a pure function
// of (w, example) — identical no matter which worker computes it.
func (dk *denseKernel) gradPhase(k int) {
	s := dk.views[k]
	for j := dk.rowLo[k]; j < dk.rowHi[k]; j++ {
		i := dk.start + j
		if dk.perm != nil {
			i = dk.perm[i]
		}
		x, y := s.At(i)
		dk.loss.Grad(dk.gbufs[j], dk.w, x, y)
	}
}

// reducePhase folds worker k's column slab over examples in index
// order — the exact order (and therefore the exact rounding) of the
// sequential kernel's per-example vec.Axpy(grad, 1, gbuf) chain.
func (dk *denseKernel) reducePhase(k int) {
	lo, hi := dk.colLo[k], dk.colHi[k]
	if lo == hi {
		return
	}
	g := dk.grad[lo:hi]
	vec.Zero(g)
	for j := 0; j < dk.n; j++ {
		vec.Axpy(g, 1, dk.gbufs[j][lo:hi])
	}
}

// sparseKernel fans the sparse kernel's Deriv phase across workers:
// margin dots read the frozen (α, v) pair, and each worker writes
// disjoint cbuf slots, so the phase is race-free and order-blind.
type sparseKernel struct {
	pool  *kernelPool
	st    *sparseState
	views []SparseSamples

	perm     []int
	start, n int
	lo, hi   []int

	derivFn func(k int)
}

// newSparseKernel returns a parallel Deriv-phase executor, or nil when
// the configuration is sequential or safe per-worker views cannot be
// built. Callers must close() a non-nil kernel.
func newSparseKernel(s SparseSamples, workers, maxBatch int, st *sparseState) *sparseKernel {
	if workers <= 1 || maxBatch < minParBatch {
		return nil
	}
	views := make([]SparseSamples, workers)
	views[0] = s
	sh, canShard := s.(sharder)
	m := s.Len()
	for k := 1; k < workers; k++ {
		if canShard {
			sv, ok := sh.Shard(0, m).(SparseSamples)
			if !ok {
				// A Sharder whose views drop the sparse tier: sharing
				// the receiver would race on its scratch, so stay
				// sequential (bit-identical either way).
				return nil
			}
			views[k] = sv
		} else {
			views[k] = s
		}
	}
	sk := &sparseKernel{
		st: st, views: views,
		lo: make([]int, workers), hi: make([]int, workers),
	}
	sk.derivFn = sk.derivPhase
	sk.pool = newKernelPool(workers)
	return sk
}

func (sk *sparseKernel) close() { sk.pool.close() }

// deriv fills st.cbuf[0:n] for the batch rows(start..start+n), exactly
// as the sequential Deriv loop would.
func (sk *sparseKernel) deriv(perm []int, start, n int) {
	sk.perm, sk.start, sk.n = perm, start, n
	splitRange(sk.lo, sk.hi, n)
	sk.pool.run(sk.derivFn)
}

func (sk *sparseKernel) derivPhase(k int) {
	st := sk.st
	s := sk.views[k]
	for j := sk.lo[k]; j < sk.hi[k]; j++ {
		i := sk.start + j
		if sk.perm != nil {
			i = sk.perm[i]
		}
		x, y := s.AtSparse(i)
		st.cbuf[j] = st.f.Deriv(st.alpha*x.Dot(st.v), y)
	}
}
