package sgd

import (
	"math/rand"
	"testing"

	"boltondp/internal/loss"
)

// Sparse kernel benchmarks (run with:
// go test -bench Sparse -benchmem ./internal/sgd). One epoch of
// strongly convex PSGD over m rows at 5% density in d = 1000: the
// sparse kernel must beat the dense path by at least the acceptance
// floor of 5× and allocate nothing in steady state (the alloc gate is
// TestSparseUpdateAllocs; -benchmem makes the per-op allocations
// visible here too).

const (
	sparseBenchRows = 2000
	sparseBenchDim  = 1000
	sparseBenchNNZ  = 50 // 5% density
)

func sparseBenchConfig(f loss.Function, seed int64) Config {
	p := f.Params()
	return Config{
		Loss:   f,
		Step:   StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 1,
		Batch:  10,
		Radius: 100,
		Rand:   rand.New(rand.NewSource(seed)),
	}
}

// BenchmarkSparseKernelEpoch: one epoch on the sparse-native kernel.
func BenchmarkSparseKernelEpoch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	sp, _ := randomSparseSamples(r, sparseBenchRows, sparseBenchDim, sparseBenchNNZ)
	f := loss.NewLogistic(1e-2, 0)
	if !UsesSparseKernel(sp, sparseBenchConfig(f, 0)) {
		b.Fatal("benchmark source not sparse-dispatched")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sp, sparseBenchConfig(f, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseVsDenseBaselineEpoch: the identical workload through
// the dense path (rows materialized), the denominator of the speedup
// claim.
func BenchmarkSparseVsDenseBaselineEpoch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	_, de := randomSparseSamples(r, sparseBenchRows, sparseBenchDim, sparseBenchNNZ)
	f := loss.NewLogistic(1e-2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(de, sparseBenchConfig(f, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseUpdate: the steady-state batch update alone —
// -benchmem must report 0 allocs/op.
func BenchmarkSparseUpdate(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	sp, _ := randomSparseSamples(r, 512, sparseBenchDim, sparseBenchNNZ)
	var f loss.Linear = loss.NewLogistic(1e-2, 0)
	st := newSparseState(f, sparseBenchDim, 16, 1.0, true, nil)
	b.ReportAllocs()
	b.ResetTimer()
	start := 0
	for i := 0; i < b.N; i++ {
		st.batch(sp, nil, start, start+16, 0.05)
		st.cs += st.alpha
		start = (start + 16) % 496
	}
}
