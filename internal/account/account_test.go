package account

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"boltondp/internal/dp"
)

func TestNewValidatesBudget(t *testing.T) {
	if _, err := New(dp.Budget{Epsilon: 0}); err == nil {
		t.Error("zero-ε total accepted")
	}
	if _, err := New(dp.Budget{Epsilon: 1, Delta: 1}); err == nil {
		t.Error("δ=1 total accepted")
	}
	a, err := New(dp.Budget{Epsilon: 1, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Total(); got != (dp.Budget{Epsilon: 1, Delta: 1e-6}) {
		t.Errorf("Total = %v", got)
	}
	if got := a.Remaining(); got != a.Total() {
		t.Errorf("fresh Remaining = %v", got)
	}
}

func TestReserveDebitsAndLedgers(t *testing.T) {
	a := MustNew(dp.Budget{Epsilon: 1, Delta: 1e-4})
	if err := a.Reserve("first", dp.Budget{Epsilon: 0.25, Delta: 2e-5}); err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve("second", dp.Budget{Epsilon: 0.5, Delta: 4e-5}); err != nil {
		t.Fatal(err)
	}
	spent := a.Spent()
	if spent.Epsilon != 0.75 || math.Abs(spent.Delta-6e-5) > 1e-18 {
		t.Errorf("Spent = %v", spent)
	}
	rem := a.Remaining()
	if math.Abs(rem.Epsilon-0.25) > 1e-15 || math.Abs(rem.Delta-4e-5) > 1e-18 {
		t.Errorf("Remaining = %v", rem)
	}
	l := a.Ledger()
	if len(l.Entries) != 2 || l.Entries[0].Label != "first" || l.Entries[1].Label != "second" {
		t.Fatalf("ledger entries: %+v", l.Entries)
	}
	if l.Entries[1].Budget() != (dp.Budget{Epsilon: 0.5, Delta: 4e-5}) {
		t.Errorf("entry budget: %+v", l.Entries[1])
	}
}

// Fail-closed is the load-bearing property: an over-budget request must
// error, debit nothing, and leave the ledger untouched.
func TestReserveFailsClosedOnOverdraw(t *testing.T) {
	a := MustNew(dp.Budget{Epsilon: 1})
	if err := a.Reserve("ok", dp.Budget{Epsilon: 0.8}); err != nil {
		t.Fatal(err)
	}
	err := a.Reserve("too much", dp.Budget{Epsilon: 0.5})
	if !errors.Is(err, ErrOverdraw) {
		t.Fatalf("overdraw err = %v, want ErrOverdraw", err)
	}
	if got := a.Spent(); got.Epsilon != 0.8 {
		t.Errorf("refused reservation debited: Spent = %v", got)
	}
	if l := a.Ledger(); len(l.Entries) != 1 {
		t.Errorf("refused reservation ledgered: %+v", l.Entries)
	}
	// δ overdraws fail closed too, even with ε to spare.
	b := MustNew(dp.Budget{Epsilon: 10, Delta: 1e-6})
	if err := b.Reserve("delta hog", dp.Budget{Epsilon: 0.1, Delta: 1e-5}); !errors.Is(err, ErrOverdraw) {
		t.Errorf("δ overdraw err = %v", err)
	}
	// A pure-ε accountant can never grant δ > 0.
	c := MustNew(dp.Budget{Epsilon: 1})
	if err := c.Reserve("needs delta", dp.Budget{Epsilon: 0.1, Delta: 1e-9}); !errors.Is(err, ErrOverdraw) {
		t.Errorf("δ-from-pure err = %v", err)
	}
}

func TestReserveRejectsInvalidBudgets(t *testing.T) {
	a := MustNew(dp.Budget{Epsilon: 1})
	if err := a.Reserve("zero", dp.Budget{}); err == nil {
		t.Error("zero budget accepted")
	}
	if err := a.Reserve("negative", dp.Budget{Epsilon: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	if got := a.Spent(); got.Epsilon != 0 {
		t.Errorf("invalid requests debited: %v", got)
	}
}

// Split children must recombine into the parent exactly: reserving all
// n children of Budget.Split(n) against an accountant of the parent
// budget must succeed for awkward n, and exhaust it.
func TestSplitChildrenRecombine(t *testing.T) {
	for _, n := range []int{1, 3, 7, 10, 30} {
		total := dp.Budget{Epsilon: 0.3, Delta: 1e-5}
		a := MustNew(total)
		child := total.Split(n)
		for i := 0; i < n; i++ {
			if err := a.Reserve(fmt.Sprintf("part %d", i), child); err != nil {
				t.Fatalf("n=%d: part %d refused: %v", n, i, err)
			}
		}
		// The accountant is (effectively) exhausted: nothing material
		// can still be granted.
		if err := a.Reserve("extra", dp.Budget{Epsilon: total.Epsilon / float64(10*n)}); !errors.Is(err, ErrOverdraw) {
			t.Errorf("n=%d: post-recombination reservation granted: %v", n, err)
		}
	}
}

func TestAccountantSplit(t *testing.T) {
	a := MustNew(dp.Budget{Epsilon: 10, Delta: 1e-4})
	if err := a.Reserve("head", dp.Budget{Epsilon: 2, Delta: 2e-5}); err != nil {
		t.Fatal(err)
	}
	parts, err := a.Split("onevsall", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("Split returned %d parts", len(parts))
	}
	for _, p := range parts {
		if p.Epsilon != 2 || p.Delta != 2e-5 {
			t.Errorf("child = %v, want (ε=2, δ=2e-05)", p)
		}
	}
	// Split drains the accountant completely.
	if rem := a.Remaining(); rem.Epsilon != 0 || rem.Delta != 0 {
		t.Errorf("Remaining after Split = %v", rem)
	}
	if err := a.Reserve("straggler", dp.Budget{Epsilon: 1e-6}); !errors.Is(err, ErrOverdraw) {
		t.Errorf("post-Split reservation granted: %v", err)
	}
	if _, err := a.Split("again", 2); !errors.Is(err, ErrOverdraw) {
		t.Errorf("second Split granted: %v", err)
	}
	l := a.Ledger()
	if len(l.Entries) != 5 { // head + 4 children
		t.Fatalf("ledger: %+v", l.Entries)
	}
	if l.Entries[1].Label != "onevsall[1/4]" || l.Entries[4].Label != "onevsall[4/4]" {
		t.Errorf("child labels: %q, %q", l.Entries[1].Label, l.Entries[4].Label)
	}
}

func TestSplitRejectsBadN(t *testing.T) {
	a := MustNew(dp.Budget{Epsilon: 1})
	for _, n := range []int{0, -1, -10} {
		if _, err := a.Split("bad", n); err == nil {
			t.Errorf("Split(%d) accepted", n)
		}
	}
	if rem := a.Remaining(); rem.Epsilon != 1 {
		t.Errorf("failed Split debited: %v", rem)
	}
}

func TestLedgerMetaRoundTrip(t *testing.T) {
	a := MustNew(dp.Budget{Epsilon: 2, Delta: 1e-5})
	if err := a.Reserve("train(logistic)", dp.Budget{Epsilon: 1.5, Delta: 1e-5}); err != nil {
		t.Fatal(err)
	}
	meta := map[string]string{"loss": "logistic"}
	if err := a.StampMeta(meta); err != nil {
		t.Fatal(err)
	}
	if meta["dp.total"] != "(ε=2, δ=1e-05)" || meta["dp.spent"] != "(ε=1.5, δ=1e-05)" {
		t.Errorf("summary keys: total=%q spent=%q", meta["dp.total"], meta["dp.spent"])
	}
	l, ok, err := LedgerFromMeta(meta)
	if err != nil || !ok {
		t.Fatalf("LedgerFromMeta: ok=%v err=%v", ok, err)
	}
	if l.Total() != a.Total() || l.Spent() != a.Spent() {
		t.Errorf("round-trip: total %v spent %v", l.Total(), l.Spent())
	}
	if len(l.Entries) != 1 || l.Entries[0].Label != "train(logistic)" || l.Entries[0].Epsilon != 1.5 {
		t.Errorf("round-trip entries: %+v", l.Entries)
	}
	// Absent and corrupt ledgers are distinguishable.
	if _, ok, err := LedgerFromMeta(map[string]string{}); ok || err != nil {
		t.Errorf("empty meta: ok=%v err=%v", ok, err)
	}
	if _, ok, err := LedgerFromMeta(map[string]string{MetaKey: "{broken"}); !ok || err == nil {
		t.Errorf("corrupt ledger: ok=%v err=%v", ok, err)
	}
}

// Concurrent reservations must serialize correctly: exactly the
// affordable number are granted, and spent never exceeds the total.
func TestConcurrentReservations(t *testing.T) {
	a := MustNew(dp.Budget{Epsilon: 1})
	const workers = 32
	granted := make([]bool, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			granted[i] = a.Reserve("p", dp.Budget{Epsilon: 0.1}) == nil
		}(i)
	}
	wg.Wait()
	n := 0
	for _, g := range granted {
		if g {
			n++
		}
	}
	if n != 10 {
		t.Errorf("granted %d of 32 ε=0.1 reservations from ε=1, want 10", n)
	}
	if got := a.Spent(); got.Epsilon > 1+1e-9 {
		t.Errorf("overspent: %v", got)
	}
	if l := a.Ledger(); len(l.Entries) != n {
		t.Errorf("ledger has %d entries, granted %d", len(l.Entries), n)
	}
}
