package account

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"boltondp/internal/account/compose"
	"boltondp/internal/dp"
)

func mustRule(t *testing.T, rule string, total dp.Budget) *Accountant {
	t.Helper()
	a, err := NewWithRule(rule, total)
	if err != nil {
		t.Fatalf("NewWithRule(%q): %v", rule, err)
	}
	return a
}

func TestNewWithRule(t *testing.T) {
	total := dp.Budget{Epsilon: 1, Delta: 1e-6}
	for _, rule := range compose.Rules() {
		a := mustRule(t, rule, total)
		if a.Rule() != rule {
			t.Errorf("Rule() = %q, want %q", a.Rule(), rule)
		}
	}
	if a := MustNew(total); a.Rule() != compose.RuleSimple {
		t.Errorf("New defaults to rule %q, want simple", a.Rule())
	}
	if _, err := NewWithRule("moments", total); err == nil {
		t.Error("NewWithRule accepted an unknown rule")
	}
}

// TestSimpleLedgerGolden pins the exact serialized byte layout of a
// simple-rule ledger — the back-compat contract: no rule field, no rule
// state, no mechanism detail on fixed grants, identical to the
// pre-compose accountant's output.
func TestSimpleLedgerGolden(t *testing.T) {
	a := MustNew(dp.Budget{Epsilon: 2, Delta: 1e-6})
	if err := a.Reserve("train", dp.Budget{Epsilon: 1, Delta: 1e-6}); err != nil {
		t.Fatal(err)
	}
	if err := a.ReservePure("tune", 0.5); err != nil {
		t.Fatal(err)
	}
	l := a.Ledger()
	for i := range l.Entries {
		l.Entries[i].At = time.Time{}
	}
	got, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"total_epsilon":2,"total_delta":0.000001,"spent_epsilon":1.5,"spent_delta":0.000001,` +
		`"entries":[{"label":"train","epsilon":1,"delta":0.000001,"at":"0001-01-01T00:00:00Z"},` +
		`{"label":"tune","epsilon":0.5,"at":"0001-01-01T00:00:00Z"}]}`
	if string(got) != golden {
		t.Fatalf("simple ledger bytes drifted:\n got %s\nwant %s", got, golden)
	}
}

// TestAdvancedLedgerGolden pins the shape of an advanced-rule ledger:
// rule name, per-release entries with mechanism detail, composed spend
// no larger than the entry sum, and the KOV state fields present.
func TestAdvancedLedgerGolden(t *testing.T) {
	a := mustRule(t, compose.RuleAdvanced, dp.Budget{Epsilon: 20, Delta: 1e-6})
	for i := 0; i < 40; i++ {
		if err := a.ReservePure("class", 0.1); err != nil {
			t.Fatal(err)
		}
	}
	l := a.Ledger()
	if l.Rule != compose.RuleAdvanced {
		t.Fatalf("ledger rule %q", l.Rule)
	}
	if len(l.Entries) != 40 {
		t.Fatalf("entries %d", len(l.Entries))
	}
	for _, e := range l.Entries {
		if e.Kind != string(compose.KindPure) || e.Epsilon != 0.1 || e.Delta != 0 {
			t.Fatalf("entry %+v: want pure ε=0.1 detail", e)
		}
	}
	if sum := 40 * 0.1; l.SpentEpsilon >= sum {
		t.Fatalf("advanced spend %v not below linear sum %v", l.SpentEpsilon, sum)
	}
	var st struct {
		KOVLinear *float64 `json:"kov_linear"`
		KOVSquare *float64 `json:"kov_square"`
		SumDelta  *float64 `json:"sum_delta"`
	}
	if err := json.Unmarshal(l.RuleState, &st); err != nil {
		t.Fatalf("rule_state: %v", err)
	}
	if st.KOVLinear == nil || st.KOVSquare == nil || math.Abs(*st.KOVSquare-40*0.1*0.1) > 1e-12 {
		t.Fatalf("rule_state %s lacks the KOV sums", l.RuleState)
	}
}

// TestRDPLedgerGolden pins the shape of an rdp-rule ledger: rule name,
// full sgm mechanism detail on the entry, a per-order curve in the rule
// state over the published order grid, and a composed spend far below
// the entry's standalone price.
func TestRDPLedgerGolden(t *testing.T) {
	total := dp.Budget{Epsilon: 20, Delta: 1e-6}
	a := mustRule(t, compose.RuleRDP, total)
	if err := a.ReserveSubsampledGaussian("train", 1.0, 1e-4, 1000, total.Delta); err != nil {
		t.Fatal(err)
	}
	l := a.Ledger()
	if l.Rule != compose.RuleRDP {
		t.Fatalf("ledger rule %q", l.Rule)
	}
	e := l.Entries[0]
	if e.Kind != string(compose.KindSGM) || e.Sigma != 1.0 || e.Q != 1e-4 || e.Steps != 1000 {
		t.Fatalf("sgm entry lost mechanism detail: %+v", e)
	}
	if !(l.SpentEpsilon > 0 && l.SpentEpsilon < 0.5*e.Epsilon) {
		t.Fatalf("rdp spend %v vs standalone entry price %v", l.SpentEpsilon, e.Epsilon)
	}
	var st struct {
		Orders []float64 `json:"orders"`
		Eps    []float64 `json:"eps"`
	}
	if err := json.Unmarshal(l.RuleState, &st); err != nil {
		t.Fatalf("rule_state: %v", err)
	}
	if len(st.Orders) != len(compose.Orders()) || len(st.Eps) != len(st.Orders) {
		t.Fatalf("rule_state curve %d orders / %d eps, want %d", len(st.Orders), len(st.Eps), len(compose.Orders()))
	}
}

// TestLedgerRoundTripPerRule: StampMeta → LedgerFromMeta must preserve
// rule, spends, entries and rule state under every rule, and the
// round-tripped ledger must be Same as the original.
func TestLedgerRoundTripPerRule(t *testing.T) {
	total := dp.Budget{Epsilon: 20, Delta: 1e-6}
	for _, rule := range compose.Rules() {
		a := mustRule(t, rule, total)
		if err := a.Reserve("fixed", dp.Budget{Epsilon: 0.5, Delta: 1e-8}); err != nil {
			t.Fatal(err)
		}
		if err := a.ReserveSubsampledGaussian("sgm", 1.2, 1e-3, 100, 1e-7); err != nil {
			t.Fatal(err)
		}
		meta := map[string]string{}
		if err := a.StampMeta(meta); err != nil {
			t.Fatal(err)
		}
		got, ok, err := LedgerFromMeta(meta)
		if err != nil || !ok {
			t.Fatalf("%s: LedgerFromMeta ok=%v err=%v", rule, ok, err)
		}
		if !got.Same(a.Ledger()) {
			t.Errorf("%s: round-tripped ledger differs", rule)
		}
		if compose.Normalize(got.Rule) != rule {
			t.Errorf("%s: round-tripped rule %q", rule, got.Rule)
		}
	}
}

// TestLedgerSameAcrossRules: the same workload admitted under different
// rules is NOT the same privacy statement — Same must distinguish the
// rules, and an absent rule field must equal an explicit "simple".
func TestLedgerSameAcrossRules(t *testing.T) {
	total := dp.Budget{Epsilon: 20, Delta: 1e-6}
	ledgers := map[string]*Ledger{}
	for _, rule := range compose.Rules() {
		a := mustRule(t, rule, total)
		if err := a.ReservePure("x", 0.3); err != nil {
			t.Fatal(err)
		}
		ledgers[rule] = a.Ledger()
	}
	if ledgers["simple"].Same(ledgers["advanced"]) || ledgers["advanced"].Same(ledgers["rdp"]) {
		t.Error("Same conflated ledgers from different rules")
	}
	// "" rule ≡ "simple".
	explicit := *ledgers["simple"]
	explicit.Rule = "simple"
	if !ledgers["simple"].Same(&explicit) {
		t.Error(`Same distinguished rule "" from "simple"`)
	}
	// Mechanism detail is part of the statement.
	a1 := mustRule(t, compose.RuleRDP, total)
	a2 := mustRule(t, compose.RuleRDP, total)
	if err := a1.ReserveSubsampledGaussian("t", 1.0, 1e-3, 100, 1e-7); err != nil {
		t.Fatal(err)
	}
	if err := a2.ReserveSubsampledGaussian("t", 1.0, 2e-3, 100, 1e-7); err != nil {
		t.Fatal(err)
	}
	if a1.Ledger().Same(a2.Ledger()) {
		t.Error("Same ignored sgm sampling-fraction detail")
	}
}

// TestFailClosedPerRule: under every rule, a reservation whose composed
// price exceeds the total must wrap ErrOverdraw and debit nothing.
func TestFailClosedPerRule(t *testing.T) {
	for _, rule := range compose.Rules() {
		total := dp.Budget{Epsilon: 1, Delta: 1e-6}
		a := mustRule(t, rule, total)
		if err := a.Reserve("ok", dp.Budget{Epsilon: 0.6}); err != nil {
			t.Fatalf("%s: %v", rule, err)
		}
		before := a.Spent()
		err := a.Reserve("too-much", dp.Budget{Epsilon: 0.6})
		if !errors.Is(err, ErrOverdraw) {
			t.Fatalf("%s: want ErrOverdraw, got %v", rule, err)
		}
		if !strings.Contains(err.Error(), "too-much") {
			t.Errorf("%s: overdraw error lacks the label: %v", rule, err)
		}
		if a.Spent() != before {
			t.Errorf("%s: failed reservation debited the budget", rule)
		}
		if len(a.Ledger().Entries) != 1 {
			t.Errorf("%s: failed reservation left a ledger entry", rule)
		}
	}
}

// TestSGMOverdrawFailsClosedPerRule: a gradient-perturbation run too
// noisy-cheap for its budget must be refused before any spend, under
// every rule — including rdp, where the refusal happens at the
// converted price, not the (much larger) linear one.
func TestSGMOverdrawFailsClosedPerRule(t *testing.T) {
	for _, rule := range compose.Rules() {
		total := dp.Budget{Epsilon: 0.05, Delta: 1e-6}
		a := mustRule(t, rule, total)
		err := a.ReserveSubsampledGaussian("train", 1.0, 1e-4, 1000, total.Delta)
		if !errors.Is(err, ErrOverdraw) {
			t.Fatalf("%s: want ErrOverdraw for an over-budget sgm run, got %v", rule, err)
		}
		if s := a.Spent(); s.Epsilon != 0 {
			t.Errorf("%s: refused sgm run debited ε=%v", rule, s.Epsilon)
		}
	}
	// And the rdp rule must ADMIT the same run against a budget simple
	// refuses — the whole point of the tighter rule.
	total := dp.Budget{Epsilon: 1, Delta: 1e-6}
	simple := mustRule(t, compose.RuleSimple, total)
	rdp := mustRule(t, compose.RuleRDP, total)
	if err := simple.ReserveSubsampledGaussian("train", 1.0, 1e-4, 1000, total.Delta); !errors.Is(err, ErrOverdraw) {
		t.Fatalf("simple admitted a run worth ε≈11: %v", err)
	}
	if err := rdp.ReserveSubsampledGaussian("train", 1.0, 1e-4, 1000, total.Delta); err != nil {
		t.Fatalf("rdp refused a run its rule prices under ε=1: %v", err)
	}
}

// TestConcurrentReservationsPerRule hammers one accountant from many
// goroutines under every rule: the admitted composed spend must never
// exceed the total, failures must all be overdraws, and the ledger must
// record exactly the admitted reservations.
func TestConcurrentReservationsPerRule(t *testing.T) {
	for _, rule := range compose.Rules() {
		total := dp.Budget{Epsilon: 1, Delta: 1e-6}
		a := mustRule(t, rule, total)
		const workers = 32
		var wg sync.WaitGroup
		granted := make(chan struct{}, workers)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := a.ReservePure("w", 0.09); err == nil {
					granted <- struct{}{}
				} else if !errors.Is(err, ErrOverdraw) {
					t.Errorf("%s: non-overdraw failure: %v", rule, err)
				}
			}()
		}
		wg.Wait()
		close(granted)
		n := len(granted)
		s := a.Spent()
		if exceeds(s.Epsilon, total.Epsilon) || exceeds(s.Delta, total.Delta) {
			t.Errorf("%s: concurrent admits overdrew: spent %v of %v", rule, s, total)
		}
		if len(a.Ledger().Entries) != n {
			t.Errorf("%s: %d grants but %d ledger entries", rule, n, len(a.Ledger().Entries))
		}
		if n == 0 {
			t.Errorf("%s: nothing admitted", rule)
		}
		// The tighter rules must fund at least as many grants.
		t.Logf("%s: %d/%d grants of ε=0.09 admitted (spent %v)", rule, n, workers, s)
	}
}

// TestSplitUsesComposedHeadroom: after a cheap-under-rdp spend, Split
// must hand out children from the composed headroom (bigger than the
// linear remainder), and exhaust the accountant under every rule.
func TestSplitUsesComposedHeadroom(t *testing.T) {
	total := dp.Budget{Epsilon: 10, Delta: 1e-6}
	for _, rule := range compose.Rules() {
		a := mustRule(t, rule, total)
		if err := a.ReserveSubsampledGaussian("warm", 2.0, 1e-3, 200, 1e-7); err != nil {
			t.Fatalf("%s: %v", rule, err)
		}
		rem := a.Remaining()
		kids, err := a.Split("ova", 4)
		if err != nil {
			t.Fatalf("%s: Split: %v", rule, err)
		}
		if len(kids) != 4 || kids[0].Epsilon <= 0 {
			t.Fatalf("%s: children %+v", rule, kids)
		}
		if got := 4 * kids[0].Epsilon; got > rem.Epsilon*(1+1e-9) {
			t.Errorf("%s: children ε sum %v exceeds pre-split headroom %v", rule, got, rem.Epsilon)
		}
		if s := a.Spent(); s != total {
			t.Errorf("%s: Split left spent=%v, want exhausted to %v", rule, s, total)
		}
		if err := a.Reserve("late", dp.Budget{Epsilon: 1e-9}); !errors.Is(err, ErrOverdraw) {
			t.Errorf("%s: post-Split reservation admitted: %v", rule, err)
		}
		if r := a.Remaining(); r.Epsilon != 0 || r.Delta != 0 {
			t.Errorf("%s: post-Split remaining %v", rule, r)
		}
	}
	// The rdp headroom after the same sgm spend must strictly beat
	// simple's (the run's standalone price is ≈19.7, so the total must
	// afford it even under the linear rule).
	big := dp.Budget{Epsilon: 30, Delta: 1e-6}
	simple := mustRule(t, compose.RuleSimple, big)
	rdp := mustRule(t, compose.RuleRDP, big)
	for _, a := range []*Accountant{simple, rdp} {
		if err := a.ReserveSubsampledGaussian("warm", 1.0, 1e-4, 1000, 1e-7); err != nil {
			t.Fatal(err)
		}
	}
	if !(rdp.Remaining().Epsilon > simple.Remaining().Epsilon) {
		t.Errorf("rdp headroom %v not above simple %v after the same sgm spend",
			rdp.Remaining(), simple.Remaining())
	}
}

// TestReserveValidation: the mechanism-aware reservations reject
// malformed events before touching the lock or the ledger.
func TestReserveValidation(t *testing.T) {
	a := mustRule(t, compose.RuleRDP, dp.Budget{Epsilon: 1, Delta: 1e-6})
	cases := []error{
		a.ReservePure("p", 0),
		a.ReservePure("p", -1),
		a.ReserveGaussian("g", 0, 10, dp.Budget{Epsilon: 1, Delta: 1e-8}),
		a.ReserveGaussian("g", 1, 0, dp.Budget{Epsilon: 1, Delta: 1e-8}),
		a.ReserveSubsampledGaussian("s", 1, 0, 10, 1e-7),
		a.ReserveSubsampledGaussian("s", 1, 2, 10, 1e-7),
		a.ReserveSubsampledGaussian("s", 1, 0.1, 0, 1e-7),
		a.ReserveSubsampledGaussian("s", 1, 0.1, 10, 0),
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("case %d: invalid reservation admitted", i)
		}
		if errors.Is(err, ErrOverdraw) {
			t.Errorf("case %d: validation failure misreported as overdraw: %v", i, err)
		}
	}
	if len(a.Ledger().Entries) != 0 {
		t.Error("invalid reservations left ledger entries")
	}
}
