package account

import (
	"errors"
	"testing"

	"boltondp/internal/account/compose"
	"boltondp/internal/dp"
	"boltondp/internal/rng"
)

// TestRestoreRoundTripPerRule pins the continual-training resume
// contract: Ledger → Restore → Ledger is Same under every composition
// rule, and the restored accountant prices the NEXT reservation exactly
// as the original would have.
func TestRestoreRoundTripPerRule(t *testing.T) {
	total := dp.Budget{Epsilon: 4, Delta: 1e-5}
	for _, rule := range compose.Rules() {
		t.Run(rule, func(t *testing.T) {
			a := mustRule(t, rule, total)
			if err := a.ReservePure("warmup", 0.3); err != nil {
				t.Fatal(err)
			}
			b := dp.Budget{Epsilon: 0.5, Delta: 4e-6}
			if err := a.ReserveGaussian("train", rng.GaussianSigma(1, b.Epsilon, b.Delta), 1, b); err != nil {
				t.Fatal(err)
			}
			if rule == compose.RuleRDP {
				// sgm entries only fit under the curve-capable rule.
				if err := a.ReserveSubsampledGaussian("gp", 1.5, 0.01, 200, 2e-6); err != nil {
					t.Fatal(err)
				}
			}

			l := a.Ledger()
			r, err := Restore(l)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if !r.Ledger().Same(l) {
				t.Fatalf("restored ledger differs:\n got %+v\nwant %+v", r.Ledger(), l)
			}
			if got, want := r.Remaining(), a.Remaining(); got != want {
				t.Fatalf("Remaining() = %v after restore, want %v", got, want)
			}

			// The next reservation must price identically on both.
			next := dp.Budget{Epsilon: 0.2}
			errA := a.Reserve("next", next)
			errR := r.Reserve("next", next)
			if (errA == nil) != (errR == nil) {
				t.Fatalf("next reservation diverged: original %v, restored %v", errA, errR)
			}
			if !r.Ledger().Same(a.Ledger()) {
				t.Fatalf("ledgers diverged after the next reservation")
			}
		})
	}
}

// TestRestoreSplitExhaustion: an accountant drained by Split restores
// as exhausted — the recorded spend stays pinned to the total and any
// further reservation fails closed.
func TestRestoreSplitExhaustion(t *testing.T) {
	a := MustNew(dp.Budget{Epsilon: 3})
	if err := a.ReservePure("head", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Split("window", 3); err != nil {
		t.Fatal(err)
	}
	l := a.Ledger()
	r, err := Restore(l)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !r.Ledger().Same(l) {
		t.Fatalf("restored ledger differs")
	}
	if got := r.Remaining(); got.Epsilon != 0 {
		t.Fatalf("Remaining() = %v after restoring an exhausted accountant, want zero", got)
	}
	if err := r.Reserve("extra", dp.Budget{Epsilon: 1e-6}); !errors.Is(err, ErrOverdraw) {
		t.Fatalf("Reserve on restored exhausted accountant = %v, want ErrOverdraw", err)
	}
}

// TestRestoreFailsClosed: corrupt ledgers are rejected, not silently
// accepted with a larger-than-stated remainder.
func TestRestoreFailsClosed(t *testing.T) {
	if _, err := Restore(nil); err == nil {
		t.Error("Restore(nil) succeeded")
	}

	a := MustNew(dp.Budget{Epsilon: 1})
	if err := a.ReservePure("x", 0.5); err != nil {
		t.Fatal(err)
	}

	over := a.Ledger()
	over.Entries = append(over.Entries, Entry{Label: "forged", Epsilon: 2})
	if _, err := Restore(over); !errors.Is(err, ErrOverdraw) {
		t.Errorf("Restore of over-total ledger = %v, want ErrOverdraw", err)
	}

	bad := a.Ledger()
	bad.SpentEpsilon = 0.1 // disagrees with what the entries replay to
	if _, err := Restore(bad); err == nil {
		t.Error("Restore of inconsistent ledger succeeded")
	}

	neg := a.Ledger()
	neg.Entries[0].Epsilon = -1
	if _, err := Restore(neg); err == nil {
		t.Error("Restore of negative-ε entry succeeded")
	}
}
