// Package account implements the privacy-budget accountant: a single
// owner for a total (ε, δ) differential-privacy budget from which every
// private computation in a workflow must draw its spend.
//
// The paper's own workflows compose many private releases — the private
// tuning procedure of Algorithm 3 trains one candidate per grid point,
// the one-vs-all construction of §4.3 trains one binary model per class
// — and their end-to-end guarantee is the composition of the pieces.
// How the pieces compose is pluggable (internal/account/compose): the
// historical rule is simple composition ([17] in the paper — ε and δ
// both sum), and the accountant can instead run Kairouz-style advanced
// composition or a Rényi (RDP) accountant, which price the same
// sequence of releases strictly tighter. dp.Budget.Split hands a caller
// equal shares under the simple theorem, but nothing stops a buggy
// caller from splitting twice, or from spending a share and the whole.
//
// The Accountant closes that hole structurally:
//
//   - it owns the total budget and debits every reservation against the
//     remainder under its composition rule;
//   - it FAILS CLOSED — a request whose composed price would push the
//     cumulative spend past the total returns ErrOverdraw and debits
//     nothing, so an over-budget training run errors before it touches
//     a single row;
//   - every successful debit is recorded in an auditable ledger that
//     travels with the released model (eval.SaveClassifier metadata,
//     serve.Registry.Publish, the /modelz endpoint), so the privacy
//     statement a model file carries is the accountant's record, not a
//     hand-maintained string. The ledger carries the composition rule
//     and its per-rule state, and its serialized form is byte-identical
//     to the pre-compose accountant's under the simple rule.
//
// Accountants are safe for concurrent use: sharded training strategies
// and parallel tuning candidates may draw from one accountant from
// multiple goroutines.
package account

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"boltondp/internal/account/compose"
	"boltondp/internal/dp"
)

// ErrOverdraw is wrapped by every reservation the accountant refuses
// because it would exceed the remaining budget. Test with errors.Is.
var ErrOverdraw = errors.New("account: reservation exceeds the remaining privacy budget")

// slack is the relative floating-point tolerance of the overdraw test:
// n children produced by Budget.Split(n) must always recombine into
// their parent even though ε/n summed n times can exceed ε by rounding.
const slack = 1e-9

// Entry is one audited spend in an accountant's ledger. Its Epsilon and
// Delta record the release's STANDALONE guarantee (its simple-
// composition price); under the advanced and rdp rules the ledger's
// cumulative spend can therefore be smaller than the entry sum — the
// rule name and rule state record how the sequence composed.
type Entry struct {
	// Label says what the spend paid for, e.g. "train(logistic(λ=0.001))"
	// or "tune". Labels need not be unique.
	Label string `json:"label"`
	// Epsilon and Delta are the debited budget.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta,omitempty"`
	// Kind tags the mechanism family of a curve-capable reservation
	// ("pure", "gaussian", "sgm"); empty for plain fixed grants and for
	// every reservation under the simple rule (which has no use for
	// mechanism structure) except sgm runs, which always record detail.
	Kind string `json:"kind,omitempty"`
	// Sigma, Q and Steps are the mechanism detail of a gaussian or sgm
	// reservation: noise multiplier σ̃ = σ/Δ, sampling fraction, and
	// invocation count.
	Sigma float64 `json:"sigma,omitempty"`
	Q     float64 `json:"q,omitempty"`
	Steps int     `json:"steps,omitempty"`
	// At is when the reservation was granted.
	At time.Time `json:"at"`
}

// Budget returns the entry's debit as a dp.Budget.
func (e Entry) Budget() dp.Budget { return dp.Budget{Epsilon: e.Epsilon, Delta: e.Delta} }

// Accountant owns a total (ε, δ) budget and debits every reservation
// against it under a pluggable composition rule (simple by default).
// The zero value is unusable; use New or NewWithRule.
type Accountant struct {
	mu        sync.Mutex
	total     dp.Budget
	comp      compose.Composer
	entries   []Entry
	exhausted bool // Split drained the accountant to exactly its total
}

// New returns an accountant owning the given total budget under simple
// composition — the historical rule; its ledgers and admission
// decisions are bit-identical to the pre-compose accountant's.
func New(total dp.Budget) (*Accountant, error) {
	return NewWithRule(compose.RuleSimple, total)
}

// NewWithRule returns an accountant owning the given total budget under
// the named composition rule ("" or "simple" | "advanced" | "rdp").
func NewWithRule(rule string, total dp.Budget) (*Accountant, error) {
	if err := total.Validate(); err != nil {
		return nil, err
	}
	c, err := compose.New(rule)
	if err != nil {
		return nil, err
	}
	return &Accountant{total: total, comp: c}, nil
}

// MustNew is New for statically-correct budgets; it panics on error.
func MustNew(total dp.Budget) *Accountant {
	a, err := New(total)
	if err != nil {
		panic(err)
	}
	return a
}

// Rule returns the accountant's composition rule name.
func (a *Accountant) Rule() string { return a.comp.Rule() }

// Total returns the budget the accountant was created with.
func (a *Accountant) Total() dp.Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Spent returns the cumulative spend as priced by the accountant's
// composition rule (under simple: both ε and δ sum across
// reservations; advanced and rdp can report less for the same
// reservations).
func (a *Accountant) Spent() dp.Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spentLocked()
}

func (a *Accountant) spentLocked() dp.Budget {
	if a.exhausted {
		return a.total
	}
	return a.comp.Spent(a.total)
}

// Remaining returns the largest single fixed (ε, δ) reservation still
// admissible, clamped at zero. Under the simple rule this is exactly
// total − spent; the non-linear rules can leave more headroom than the
// linear remainder suggests.
func (a *Accountant) Remaining() dp.Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.remainingLocked()
}

func (a *Accountant) remainingLocked() dp.Budget {
	if a.exhausted {
		return dp.Budget{}
	}
	return compose.Headroom(a.comp, a.total, slack)
}

// Reserve debits b from the remaining budget and records the spend
// under label. It fails closed: when the composed price of the spends
// so far plus this request would exceed the total (in ε or in δ) it
// returns an error wrapping ErrOverdraw and debits nothing. A granted
// reservation is never refunded — the accountant records intent to
// release, which is the conservative reading of the composition
// theorem.
func (a *Accountant) Reserve(label string, b dp.Budget) error {
	if err := b.Validate(); err != nil {
		return err
	}
	return a.admit(label, compose.Fixed(b))
}

// ReservePure debits a pure ε-DP release (exponential mechanism,
// Laplace / Gamma-sphere output perturbation). Under the rdp rule pure
// releases compose on their Rényi curve, which is strictly cheaper than
// their fixed price once there is more than one of them.
func (a *Accountant) ReservePure(label string, eps float64) error {
	return a.admit(label, compose.Pure(eps))
}

// ReserveGaussian debits steps invocations of the Gaussian mechanism at
// noise multiplier sigma = σ/Δ₂ whose stated per-run guarantee is b
// (what the linear rules charge; the rdp rule prices the multiplier
// directly and charges whichever of its candidates is tightest).
func (a *Accountant) ReserveGaussian(label string, sigma float64, steps int, b dp.Budget) error {
	return a.admit(label, compose.Gaussian(sigma, steps, b))
}

// ReserveSubsampledGaussian debits steps invocations of the subsampled
// Gaussian mechanism (sampling fraction q, noise multiplier sigma) —
// the DP-SGD gradient-perturbation spend. deltaCharge is the total δ
// the run charges under the linear rules; the rdp rule converts its
// Rényi curve at the accountant's total δ instead.
func (a *Accountant) ReserveSubsampledGaussian(label string, sigma, q float64, steps int, deltaCharge float64) error {
	return a.admit(label, compose.SGM(sigma, q, steps, deltaCharge))
}

// admit trial-prices the event on a clone of the composer, fails closed
// on overdraw, and otherwise commits the event and its ledger entry.
func (a *Accountant) admit(label string, ev compose.Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	price := ev.LinearPrice()
	a.mu.Lock()
	defer a.mu.Unlock()
	trial := a.comp.Clone()
	trial.Add(ev)
	s := trial.Spent(a.total)
	if a.exhausted || exceeds(s.Epsilon, a.total.Epsilon) || exceeds(s.Delta, a.total.Delta) {
		rem := a.remainingLocked()
		return fmt.Errorf("%w: requested %v for %q, remaining %v of total %v",
			ErrOverdraw, price, label, rem, a.total)
	}
	a.comp.Add(ev)
	e := Entry{Label: label, Epsilon: price.Epsilon, Delta: price.Delta, At: time.Now()}
	// Mechanism detail rides along whenever a rule can use it: always
	// for sgm runs (they exist only through this machinery), and for
	// pure/gaussian reservations under the curve-capable rules. Under
	// simple, pure and gaussian grants downgrade to plain fixed entries
	// so simple ledgers keep their historical byte layout.
	if ev.Kind == compose.KindSGM || (a.comp.Rule() != compose.RuleSimple && ev.Kind != compose.KindFixed) {
		e.Kind = string(ev.Kind)
		e.Sigma = ev.Sigma
		e.Q = ev.Q
		e.Steps = ev.Steps
	}
	a.entries = append(a.entries, e)
	return nil
}

// exceeds reports spent > limit beyond floating-point slack: the
// relative tolerance lets Split children recombine exactly into their
// parent, while anything materially above the limit is refused.
func exceeds(spent, limit float64) bool {
	return spent > limit*(1+slack)
}

// Split reserves n equal child budgets drawn from the ENTIRE remaining
// budget — the simple-composition split the paper's §4.3 prescribes for
// one-vs-all sub-models, with the accountant enforcing that the pieces
// sum to the stated guarantee. Each child is Remaining()/n (under the
// non-linear rules the remainder is the composed headroom, so the
// children are bigger for free); the whole remainder is debited in one
// ledger entry per child (labelled "label[i/n]"). After a successful
// Split the accountant is exhausted.
func (a *Accountant) Split(label string, n int) ([]dp.Budget, error) {
	if n < 1 {
		return nil, fmt.Errorf("account: Split over %d parts", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rem := a.remainingLocked()
	if rem.Epsilon <= 0 {
		return nil, fmt.Errorf("%w: Split(%q, %d) with no remaining budget (total %v, spent %v)",
			ErrOverdraw, label, n, a.total, a.spentLocked())
	}
	child := rem.Split(n)
	out := make([]dp.Budget, n)
	now := time.Now()
	for i := range out {
		out[i] = child
		a.comp.Add(compose.Fixed(child))
		a.entries = append(a.entries, Entry{
			Label: fmt.Sprintf("%s[%d/%d]", label, i+1, n), Epsilon: child.Epsilon, Delta: child.Delta, At: now,
		})
	}
	// Exhaust to the total exactly, not child×n, so rounding can never
	// leave a sliver that a later reservation stretches past the total.
	a.exhausted = true
	return out, nil
}

// ---------------------------------------------------------------------
// Ledger serialization: the auditable record a released model carries.
// ---------------------------------------------------------------------

// MetaKey is the model-metadata key under which the ledger is persisted
// (eval.SaveClassifier meta, serve registry files, /modelz responses).
const MetaKey = "dp.ledger"

// Ledger is the serializable snapshot of an accountant: the composition
// rule, the total budget, the cumulative composed spend, every granted
// reservation, and the rule's own composition state. Under the simple
// rule the Rule and RuleState fields are empty and omitted, so simple
// ledgers serialize byte-identically to the pre-compose accountant's.
type Ledger struct {
	Rule         string          `json:"rule,omitempty"`
	TotalEpsilon float64         `json:"total_epsilon"`
	TotalDelta   float64         `json:"total_delta,omitempty"`
	SpentEpsilon float64         `json:"spent_epsilon"`
	SpentDelta   float64         `json:"spent_delta,omitempty"`
	Entries      []Entry         `json:"entries"`
	RuleState    json.RawMessage `json:"rule_state,omitempty"`
}

// Total returns the ledger's total budget.
func (l *Ledger) Total() dp.Budget {
	return dp.Budget{Epsilon: l.TotalEpsilon, Delta: l.TotalDelta}
}

// Spent returns the ledger's cumulative spend under its rule.
func (l *Ledger) Spent() dp.Budget {
	return dp.Budget{Epsilon: l.SpentEpsilon, Delta: l.SpentDelta}
}

// Same reports whether two ledgers record the same privacy spends:
// equal composition rule (an absent rule IS the simple rule), equal
// totals, equal cumulative spend, and entry-for-entry equal
// reservations (label, ε, δ, mechanism detail — grant timestamps are
// execution detail, not part of the privacy statement; RuleState is
// derived from the entries and not compared). It is the equality the
// distributed-training parity contract pins: a coordinator/worker run
// must produce a ledger Same as its single-process counterpart's, so
// distributing a run can never change what was spent or what the spend
// paid for.
func (l *Ledger) Same(o *Ledger) bool {
	if l == nil || o == nil {
		return l == o
	}
	if compose.Normalize(l.Rule) != compose.Normalize(o.Rule) {
		return false
	}
	if l.TotalEpsilon != o.TotalEpsilon || l.TotalDelta != o.TotalDelta ||
		l.SpentEpsilon != o.SpentEpsilon || l.SpentDelta != o.SpentDelta ||
		len(l.Entries) != len(o.Entries) {
		return false
	}
	for i := range l.Entries {
		a, b := l.Entries[i], o.Entries[i]
		if a.Label != b.Label || a.Epsilon != b.Epsilon || a.Delta != b.Delta ||
			a.Kind != b.Kind || a.Sigma != b.Sigma || a.Q != b.Q || a.Steps != b.Steps {
			return false
		}
	}
	return true
}

// Ledger snapshots the accountant's current state.
func (a *Accountant) Ledger() *Ledger {
	a.mu.Lock()
	defer a.mu.Unlock()
	spent := a.spentLocked()
	l := &Ledger{
		TotalEpsilon: a.total.Epsilon, TotalDelta: a.total.Delta,
		SpentEpsilon: spent.Epsilon, SpentDelta: spent.Delta,
		Entries: make([]Entry, len(a.entries)),
	}
	if rule := a.comp.Rule(); rule != compose.RuleSimple {
		l.Rule = rule
		l.RuleState = a.comp.State()
	}
	copy(l.Entries, a.entries)
	return l
}

// StampMeta records the accountant's ledger (and a human-readable
// summary of the spend) into a model-metadata map, under MetaKey. Pass
// the result to eval.SaveClassifier or serve.Registry.Publish so the
// released model file carries its audited privacy statement; /modelz
// round-trips it.
func (a *Accountant) StampMeta(meta map[string]string) error {
	l := a.Ledger()
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("account: %w", err)
	}
	meta[MetaKey] = string(data)
	meta["dp.total"] = l.Total().String()
	meta["dp.spent"] = l.Spent().String()
	return nil
}

// Restore rebuilds a live accountant from a ledger snapshot, replaying
// every recorded reservation through the ledger's composition rule so
// the restored accountant prices future reservations exactly as the
// original would have. This is how continual training resumes: the live
// model's metadata carries the ledger (StampMeta), and a later process
// restores the accountant from it to draw the next window.
//
// Restore fails closed: a ledger whose replayed composed spend exceeds
// its stated total (corruption, or hand-edited entries) returns an
// error wrapping ErrOverdraw, and one whose replayed spend disagrees
// with its recorded spend is rejected as inconsistent — except for the
// Split-exhaustion case (recorded spend pinned to the total exactly),
// which restores as an exhausted accountant.
func Restore(l *Ledger) (*Accountant, error) {
	if l == nil {
		return nil, errors.New("account: Restore of a nil ledger")
	}
	a, err := NewWithRule(l.Rule, l.Total())
	if err != nil {
		return nil, err
	}
	for i, e := range l.Entries {
		var ev compose.Event
		switch compose.Kind(e.Kind) {
		case compose.KindPure:
			ev = compose.Pure(e.Epsilon)
		case compose.KindGaussian:
			ev = compose.Gaussian(e.Sigma, e.Steps, e.Budget())
		case compose.KindSGM:
			ev = compose.SGM(e.Sigma, e.Q, e.Steps, e.Delta)
		default:
			ev = compose.Fixed(e.Budget())
		}
		if err := ev.Validate(); err != nil {
			return nil, fmt.Errorf("account: restoring ledger entry %d (%q): %w", i, e.Label, err)
		}
		a.comp.Add(ev)
	}
	a.entries = append([]Entry(nil), l.Entries...)
	spent := a.comp.Spent(a.total)
	if exceeds(spent.Epsilon, a.total.Epsilon) || exceeds(spent.Delta, a.total.Delta) {
		return nil, fmt.Errorf("%w: ledger replays to %v over total %v", ErrOverdraw, spent, a.total)
	}
	rec := l.Spent()
	if rec == l.Total() && spent != rec {
		// Split drained the accountant to exactly its total; the fixed
		// child entries replay to the pre-rounding remainder instead.
		a.exhausted = true
	} else if !close2(spent.Epsilon, rec.Epsilon) || !close2(spent.Delta, rec.Delta) {
		return nil, fmt.Errorf("account: inconsistent ledger: entries replay to %v, ledger records %v", spent, rec)
	}
	return a, nil
}

// close2 is the replay-consistency tolerance of Restore: the replayed
// composed spend must match the recorded one up to floating-point
// noise.
func close2(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= 1e-9*m+1e-12
}

// ParseLedger decodes a ledger serialized by StampMeta.
func ParseLedger(s string) (*Ledger, error) {
	var l Ledger
	if err := json.Unmarshal([]byte(s), &l); err != nil {
		return nil, fmt.Errorf("account: parsing ledger: %w", err)
	}
	return &l, nil
}

// LedgerFromMeta extracts and decodes the ledger a StampMeta-stamped
// metadata map carries. ok is false when the map holds no ledger.
func LedgerFromMeta(meta map[string]string) (l *Ledger, ok bool, err error) {
	s, ok := meta[MetaKey]
	if !ok {
		return nil, false, nil
	}
	l, err = ParseLedger(s)
	if err != nil {
		return nil, true, err
	}
	return l, true, nil
}
