// Package account implements the privacy-budget accountant: a single
// owner for a total (ε, δ) differential-privacy budget from which every
// private computation in a workflow must draw its spend.
//
// The paper's own workflows compose many private releases — the private
// tuning procedure of Algorithm 3 trains one candidate per grid point,
// the one-vs-all construction of §4.3 trains one binary model per class
// — and their end-to-end guarantee is the simple-composition sum of the
// pieces ([17] in the paper): running computations A₁…A_n with budgets
// (ε₁, δ₁)…(ε_n, δ_n) on the same dataset is (Σεᵢ, Σδᵢ)-differentially
// private. dp.Budget.Split hands a caller equal shares under that
// theorem, but nothing stops a buggy caller from splitting twice, or
// from spending a share and the whole.
//
// The Accountant closes that hole structurally:
//
//   - it owns the total budget and debits every Reserve/Split against
//     the remainder under simple composition;
//   - it FAILS CLOSED — a request that would push the cumulative spend
//     past the total returns ErrOverdraw and debits nothing, so an
//     over-budget training run errors before it touches a single row;
//   - every successful debit is recorded in an auditable ledger that
//     travels with the released model (eval.SaveClassifier metadata,
//     serve.Registry.Publish, the /modelz endpoint), so the privacy
//     statement a model file carries is the accountant's record, not a
//     hand-maintained string.
//
// Accountants are safe for concurrent use: sharded training strategies
// and parallel tuning candidates may draw from one accountant from
// multiple goroutines.
package account

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"boltondp/internal/dp"
)

// ErrOverdraw is wrapped by every reservation the accountant refuses
// because it would exceed the remaining budget. Test with errors.Is.
var ErrOverdraw = errors.New("account: reservation exceeds the remaining privacy budget")

// slack is the relative floating-point tolerance of the overdraw test:
// n children produced by Budget.Split(n) must always recombine into
// their parent even though ε/n summed n times can exceed ε by rounding.
const slack = 1e-9

// Entry is one audited spend in an accountant's ledger.
type Entry struct {
	// Label says what the spend paid for, e.g. "train(logistic(λ=0.001))"
	// or "tune". Labels need not be unique.
	Label string `json:"label"`
	// Epsilon and Delta are the debited budget.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta,omitempty"`
	// At is when the reservation was granted.
	At time.Time `json:"at"`
}

// Budget returns the entry's debit as a dp.Budget.
func (e Entry) Budget() dp.Budget { return dp.Budget{Epsilon: e.Epsilon, Delta: e.Delta} }

// Accountant owns a total (ε, δ) budget and debits every reservation
// against it under simple composition. The zero value is unusable; use
// New.
type Accountant struct {
	mu       sync.Mutex
	total    dp.Budget
	spentEps float64
	spentDel float64
	entries  []Entry
}

// New returns an accountant owning the given total budget.
func New(total dp.Budget) (*Accountant, error) {
	if err := total.Validate(); err != nil {
		return nil, err
	}
	return &Accountant{total: total}, nil
}

// MustNew is New for statically-correct budgets; it panics on error.
func MustNew(total dp.Budget) *Accountant {
	a, err := New(total)
	if err != nil {
		panic(err)
	}
	return a
}

// Total returns the budget the accountant was created with.
func (a *Accountant) Total() dp.Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Spent returns the cumulative debited budget (simple composition:
// both ε and δ sum across reservations).
func (a *Accountant) Spent() dp.Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	return dp.Budget{Epsilon: a.spentEps, Delta: a.spentDel}
}

// Remaining returns the budget still available for reservations,
// clamped at zero.
func (a *Accountant) Remaining() dp.Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.remainingLocked()
}

func (a *Accountant) remainingLocked() dp.Budget {
	rem := dp.Budget{
		Epsilon: a.total.Epsilon - a.spentEps,
		Delta:   a.total.Delta - a.spentDel,
	}
	if rem.Epsilon < 0 {
		rem.Epsilon = 0
	}
	if rem.Delta < 0 {
		rem.Delta = 0
	}
	return rem
}

// Reserve debits b from the remaining budget and records the spend
// under label. It fails closed: when the request would exceed the
// remainder (in ε or in δ) it returns an error wrapping ErrOverdraw and
// debits nothing. A granted reservation is never refunded — the
// accountant records intent to release, which is the conservative
// reading of the composition theorem.
func (a *Accountant) Reserve(label string, b dp.Budget) error {
	if err := b.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if exceeds(a.spentEps+b.Epsilon, a.total.Epsilon) || exceeds(a.spentDel+b.Delta, a.total.Delta) {
		rem := a.remainingLocked()
		return fmt.Errorf("%w: requested %v for %q, remaining %v of total %v",
			ErrOverdraw, b, label, rem, a.total)
	}
	a.spentEps += b.Epsilon
	a.spentDel += b.Delta
	a.entries = append(a.entries, Entry{
		Label: label, Epsilon: b.Epsilon, Delta: b.Delta, At: time.Now(),
	})
	return nil
}

// exceeds reports spent > limit beyond floating-point slack: the
// relative tolerance lets Split children recombine exactly into their
// parent, while anything materially above the limit is refused.
func exceeds(spent, limit float64) bool {
	return spent > limit*(1+slack)
}

// Split reserves n equal child budgets drawn from the ENTIRE remaining
// budget — the simple-composition split the paper's §4.3 prescribes for
// one-vs-all sub-models, with the accountant enforcing that the pieces
// sum to the stated guarantee. Each child is Remaining()/n; the whole
// remainder is debited in one ledger entry per child (labelled
// "label[i/n]"). After a successful Split the accountant is exhausted.
func (a *Accountant) Split(label string, n int) ([]dp.Budget, error) {
	if n < 1 {
		return nil, fmt.Errorf("account: Split over %d parts", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rem := a.remainingLocked()
	if rem.Epsilon <= 0 {
		return nil, fmt.Errorf("%w: Split(%q, %d) with no remaining budget (total %v, spent %v)",
			ErrOverdraw, label, n, a.total, dp.Budget{Epsilon: a.spentEps, Delta: a.spentDel})
	}
	child := rem.Split(n)
	out := make([]dp.Budget, n)
	now := time.Now()
	for i := range out {
		out[i] = child
		a.entries = append(a.entries, Entry{
			Label: fmt.Sprintf("%s[%d/%d]", label, i+1, n), Epsilon: child.Epsilon, Delta: child.Delta, At: now,
		})
	}
	// Debit the remainder exactly, not child×n, so rounding can never
	// leave a sliver that a later reservation stretches past the total.
	a.spentEps = a.total.Epsilon
	a.spentDel = a.total.Delta
	return out, nil
}

// ---------------------------------------------------------------------
// Ledger serialization: the auditable record a released model carries.
// ---------------------------------------------------------------------

// MetaKey is the model-metadata key under which the ledger is persisted
// (eval.SaveClassifier meta, serve registry files, /modelz responses).
const MetaKey = "dp.ledger"

// Ledger is the serializable snapshot of an accountant: the total
// budget, the cumulative spend, and every granted reservation.
type Ledger struct {
	TotalEpsilon float64 `json:"total_epsilon"`
	TotalDelta   float64 `json:"total_delta,omitempty"`
	SpentEpsilon float64 `json:"spent_epsilon"`
	SpentDelta   float64 `json:"spent_delta,omitempty"`
	Entries      []Entry `json:"entries"`
}

// Total returns the ledger's total budget.
func (l *Ledger) Total() dp.Budget {
	return dp.Budget{Epsilon: l.TotalEpsilon, Delta: l.TotalDelta}
}

// Spent returns the ledger's cumulative spend.
func (l *Ledger) Spent() dp.Budget {
	return dp.Budget{Epsilon: l.SpentEpsilon, Delta: l.SpentDelta}
}

// Same reports whether two ledgers record the same privacy spends:
// equal totals, equal cumulative spend, and entry-for-entry equal
// reservations (label, ε, δ — grant timestamps are execution detail,
// not part of the privacy statement). It is the equality the
// distributed-training parity contract pins: a coordinator/worker run
// must produce a ledger Same as its single-process counterpart's, so
// distributing a run can never change what was spent or what the spend
// paid for.
func (l *Ledger) Same(o *Ledger) bool {
	if l == nil || o == nil {
		return l == o
	}
	if l.TotalEpsilon != o.TotalEpsilon || l.TotalDelta != o.TotalDelta ||
		l.SpentEpsilon != o.SpentEpsilon || l.SpentDelta != o.SpentDelta ||
		len(l.Entries) != len(o.Entries) {
		return false
	}
	for i := range l.Entries {
		a, b := l.Entries[i], o.Entries[i]
		if a.Label != b.Label || a.Epsilon != b.Epsilon || a.Delta != b.Delta {
			return false
		}
	}
	return true
}

// Ledger snapshots the accountant's current state.
func (a *Accountant) Ledger() *Ledger {
	a.mu.Lock()
	defer a.mu.Unlock()
	l := &Ledger{
		TotalEpsilon: a.total.Epsilon, TotalDelta: a.total.Delta,
		SpentEpsilon: a.spentEps, SpentDelta: a.spentDel,
		Entries: make([]Entry, len(a.entries)),
	}
	copy(l.Entries, a.entries)
	return l
}

// StampMeta records the accountant's ledger (and a human-readable
// summary of the spend) into a model-metadata map, under MetaKey. Pass
// the result to eval.SaveClassifier or serve.Registry.Publish so the
// released model file carries its audited privacy statement; /modelz
// round-trips it.
func (a *Accountant) StampMeta(meta map[string]string) error {
	l := a.Ledger()
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("account: %w", err)
	}
	meta[MetaKey] = string(data)
	meta["dp.total"] = l.Total().String()
	meta["dp.spent"] = l.Spent().String()
	return nil
}

// ParseLedger decodes a ledger serialized by StampMeta.
func ParseLedger(s string) (*Ledger, error) {
	var l Ledger
	if err := json.Unmarshal([]byte(s), &l); err != nil {
		return nil, fmt.Errorf("account: parsing ledger: %w", err)
	}
	return &l, nil
}

// LedgerFromMeta extracts and decodes the ledger a StampMeta-stamped
// metadata map carries. ok is false when the map holds no ledger.
func LedgerFromMeta(meta map[string]string) (l *Ledger, ok bool, err error) {
	s, ok := meta[MetaKey]
	if !ok {
		return nil, false, nil
	}
	l, err = ParseLedger(s)
	if err != nil {
		return nil, true, err
	}
	return l, true, nil
}
