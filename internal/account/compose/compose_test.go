package compose

import (
	"encoding/json"
	"math"
	"testing"

	"boltondp/internal/dp"
)

// kddSweep is the standard KDD gradient-perturbation sweep the
// acceptance criteria price: KDDSim's full scale m = 543,423 rows,
// batch 50, T = 1000 steps at noise multiplier σ̃ = 1.0, δ = 1e-6.
const (
	kddRows  = 543423.0
	kddBatch = 50.0
	kddSteps = 1000
	kddSigma = 1.0
	kddDelta = 1e-6
)

func kddEvent() Event {
	return SGM(kddSigma, kddBatch/kddRows, kddSteps, kddDelta)
}

func mustNew(t *testing.T, rule string) Composer {
	t.Helper()
	c, err := New(rule)
	if err != nil {
		t.Fatalf("New(%q): %v", rule, err)
	}
	return c
}

func spentUnder(t *testing.T, rule string, total dp.Budget, events ...Event) dp.Budget {
	t.Helper()
	c := mustNew(t, rule)
	for _, e := range events {
		if err := e.Validate(); err != nil {
			t.Fatalf("event %+v invalid: %v", e, err)
		}
		c.Add(e)
	}
	return c.Spent(total)
}

func TestNewRules(t *testing.T) {
	for _, rule := range append(Rules(), "") {
		c, err := New(rule)
		if err != nil {
			t.Fatalf("New(%q): %v", rule, err)
		}
		if got, want := c.Rule(), Normalize(rule); got != want {
			t.Errorf("New(%q).Rule() = %q, want %q", rule, got, want)
		}
	}
	if _, err := New("moments"); err == nil {
		t.Error("New accepted an unknown rule")
	}
}

func TestEventValidate(t *testing.T) {
	bad := []Event{
		{Kind: "nope"},
		{Kind: KindPure, Eps: 0},
		{Kind: KindPure, Eps: 1, Delta: 1e-6},
		{Kind: KindGaussian, Sigma: 0, Steps: 1, Eps: 1, Delta: 1e-6},
		{Kind: KindGaussian, Sigma: 1, Steps: 0, Eps: 1, Delta: 1e-6},
		{Kind: KindSGM, Sigma: 1, Q: 0, Steps: 1, Delta: 1e-6},
		{Kind: KindSGM, Sigma: 1, Q: 1.5, Steps: 1, Delta: 1e-6},
		{Kind: KindSGM, Sigma: 1, Q: 0.1, Steps: 1, Delta: 0},
		{Kind: KindFixed, Eps: -1},
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", e)
		}
	}
	good := []Event{
		Fixed(dp.Budget{Epsilon: 1}),
		Fixed(dp.Budget{Epsilon: 0.5, Delta: 1e-6}),
		Pure(0.3),
		Gaussian(1.2, 10, dp.Budget{Epsilon: 1, Delta: 1e-6}),
		kddEvent(),
	}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", e, err)
		}
	}
}

// TestRDPCurveMonotoneInAlpha is the property the conversion leans on:
// every per-mechanism Rényi curve must be non-decreasing in the order α
// across the whole grid (Rényi divergence is non-decreasing in its
// order; a bound that dips would be unsound to minimize over).
func TestRDPCurveMonotoneInAlpha(t *testing.T) {
	curves := map[string]func(alpha float64) float64{
		"gaussian σ̃=1":        func(a float64) float64 { return GaussianRDP(1, a) },
		"gaussian σ̃=4":        func(a float64) float64 { return GaussianRDP(4, a) },
		"pure ε=0.1":           func(a float64) float64 { return PureRDP(0.1, a) },
		"pure ε=2":             func(a float64) float64 { return PureRDP(2, a) },
		"sgm σ̃=1 q=1e-4":      func(a float64) float64 { return SGMRDP(1, 1e-4, a) },
		"sgm σ̃=1 q=0.01":      func(a float64) float64 { return SGMRDP(1, 0.01, a) },
		"sgm σ̃=0.7 q=0.05":    func(a float64) float64 { return SGMRDP(0.7, 0.05, a) },
		"sgm σ̃=4 q=0.2":       func(a float64) float64 { return SGMRDP(4, 0.2, a) },
		"sgm σ̃=2 q=1 (gauss)": func(a float64) float64 { return SGMRDP(2, 1, a) },
	}
	for name, f := range curves {
		prev := math.Inf(-1)
		for _, a := range Orders() {
			eps := f(a)
			if math.IsNaN(eps) || eps < 0 {
				t.Fatalf("%s: ε(%v) = %v", name, a, eps)
			}
			if eps < prev*(1-1e-12) {
				t.Errorf("%s: curve dips at α=%v: ε=%v after %v", name, a, eps, prev)
			}
			prev = eps
		}
	}
}

func TestSGMRDPLimits(t *testing.T) {
	// q = 1 is the unsubsampled Gaussian.
	for _, a := range []float64{2, 8, 64} {
		if got, want := SGMRDP(1.5, 1, a), GaussianRDP(1.5, a); got != want {
			t.Errorf("SGMRDP(q=1) at α=%v: %v, want Gaussian %v", a, got, want)
		}
	}
	// Subsampling amplifies: at q < 1 the curve must sit strictly below
	// the unsubsampled Gaussian, and shrink as q shrinks.
	for _, a := range []float64{2, 16, 128} {
		full := GaussianRDP(1, a)
		atQ1 := SGMRDP(1, 0.1, a)
		atQ2 := SGMRDP(1, 0.001, a)
		if !(atQ2 < atQ1 && atQ1 < full) {
			t.Errorf("α=%v: want SGM(q=0.001)=%v < SGM(q=0.1)=%v < Gaussian=%v", a, atQ2, atQ1, full)
		}
	}
}

func TestConvertRDPEdges(t *testing.T) {
	orders := Orders()
	curve := make([]float64, len(orders))
	for i, a := range orders {
		curve[i] = GaussianRDP(1, a)
	}
	if eps := ConvertRDP(orders, curve, 0); !math.IsInf(eps, 1) {
		t.Errorf("ConvertRDP at δ=0 = %v, want +Inf", eps)
	}
	if eps := ConvertRDP(orders, curve, 1); !math.IsInf(eps, 1) {
		t.Errorf("ConvertRDP at δ=1 = %v, want +Inf", eps)
	}
	// Tighter δ costs more ε.
	loose := ConvertRDP(orders, curve, 1e-3)
	tight := ConvertRDP(orders, curve, 1e-9)
	if !(0 < loose && loose < tight) {
		t.Errorf("want 0 < ε(δ=1e-3)=%v < ε(δ=1e-9)=%v", loose, tight)
	}
}

func TestSGMStepEpsilonAmplifies(t *testing.T) {
	eps1, epsBase := sgmStepEpsilon(1.0, 0.01, 1e-9)
	if !(eps1 > 0 && epsBase > 0 && eps1 < epsBase) {
		t.Fatalf("amplified ε₁=%v should be positive and below base ε_g=%v", eps1, epsBase)
	}
	// q = 1: no amplification.
	e1, eb := sgmStepEpsilon(1.0, 1, 1e-9)
	if e1 != eb {
		t.Errorf("q=1: ε₁=%v ≠ ε_g=%v", e1, eb)
	}
}

// TestAnalyticGaussianEpsilon pins the analytic Gaussian mechanism
// inversion the per-step SGM conversion is built on (Balle–Wang): the
// returned ε must be a SOUND guarantee (the exact profile δ(ε) at it
// stays within the target δ), must never exceed the classical
// √(2 ln(1.25/δ))/σ̃ calibration where that bound is valid (ε < 1) —
// the classical formula is what the old conversion inverted, and it
// silently under-prices above ε = 1 — and must be monotone in both
// σ̃ and δ.
func TestAnalyticGaussianEpsilon(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2, 5, 20} {
		for _, delta := range []float64{1e-5, 1e-7, 1e-9} {
			eps := gaussianEpsilon(sigma, delta)
			if !(eps > 0) || math.IsInf(eps, 0) {
				t.Fatalf("gaussianEpsilon(%v, %v) = %v", sigma, delta, eps)
			}
			// Soundness: the profile at the returned ε must not exceed δ.
			if d := gaussianDeltaAt(sigma, eps); d > delta*(1+1e-9) {
				t.Errorf("σ̃=%v δ=%v: δ(ε=%v) = %v exceeds the target", sigma, delta, eps, d)
			}
			// Where the classical calibration is a valid guarantee, the
			// analytic inversion is at least as tight.
			classical := math.Sqrt(2*math.Log(1.25/delta)) / sigma
			if classical < 1 && eps > classical*(1+1e-9) {
				t.Errorf("σ̃=%v δ=%v: analytic ε=%v above valid classical ε=%v", sigma, delta, eps, classical)
			}
			// More noise → smaller ε; looser δ → smaller ε.
			if e2 := gaussianEpsilon(2*sigma, delta); e2 > eps*(1+1e-9) {
				t.Errorf("σ̃=%v δ=%v: ε grew from %v to %v when σ̃ doubled", sigma, delta, eps, e2)
			}
			if e2 := gaussianEpsilon(sigma, 10*delta); e2 > eps*(1+1e-9) {
				t.Errorf("σ̃=%v δ=%v: ε grew from %v to %v when δ relaxed", sigma, delta, eps, e2)
			}
		}
	}
	// The regime the classical inversion got wrong: at small σ̃ the
	// inverted ε lands far above 1, where √(2 ln(1.25/δ))/σ̃ is not a
	// guarantee at all — the exact profile at that ε still leaks more
	// than δ, so the analytic ε must come out HIGHER (the old
	// conversion under-charged).
	sigma, delta := 0.5, 1e-7
	classical := math.Sqrt(2*math.Log(1.25/delta)) / sigma
	if classical <= 1 {
		t.Fatalf("test regime broken: classical ε=%v should exceed 1", classical)
	}
	if d := gaussianDeltaAt(sigma, classical); d <= delta {
		t.Fatalf("test regime broken: classical ε=%v is accidentally sound here (δ(ε)=%v)", classical, d)
	}
	if eps := gaussianEpsilon(sigma, delta); eps <= classical {
		t.Errorf("analytic ε=%v ≤ classical %v in the ε>1 regime — conversion still under-prices", eps, classical)
	}
}

// TestRuleDominance is the rule-vs-rule wall: for every workload, the
// reported ε must obey RDP ≤ Advanced ≤ Simple against the same total
// budget, and no rule may report a δ above the total's.
func TestRuleDominance(t *testing.T) {
	total := dp.Budget{Epsilon: 100, Delta: 1e-6}
	workloads := map[string][]Event{
		"one fixed":    {Fixed(dp.Budget{Epsilon: 1})},
		"fixed with δ": {Fixed(dp.Budget{Epsilon: 0.5, Delta: 1e-8})},
		"50 pure 0.1": func() []Event {
			var es []Event
			for i := 0; i < 50; i++ {
				es = append(es, Pure(0.1))
			}
			return es
		}(),
		"200 pure 0.05": func() []Event {
			var es []Event
			for i := 0; i < 200; i++ {
				es = append(es, Pure(0.05))
			}
			return es
		}(),
		"gaussian run": {Gaussian(2.0, 100, dp.Budget{Epsilon: 3, Delta: 2e-7})},
		"kdd sgm":      {kddEvent()},
		"mixed": {
			Pure(0.2), Fixed(dp.Budget{Epsilon: 0.3, Delta: 1e-8}),
			Gaussian(1.5, 10, dp.Budget{Epsilon: 1, Delta: 1e-8}),
			SGM(1.0, 1e-3, 200, 1e-7),
		},
	}
	for name, events := range workloads {
		simple := spentUnder(t, RuleSimple, total, events...)
		adv := spentUnder(t, RuleAdvanced, total, events...)
		rdp := spentUnder(t, RuleRDP, total, events...)
		if !(rdp.Epsilon <= adv.Epsilon*(1+1e-12) && adv.Epsilon <= simple.Epsilon*(1+1e-12)) {
			t.Errorf("%s: dominance broken: rdp=%v advanced=%v simple=%v",
				name, rdp.Epsilon, adv.Epsilon, simple.Epsilon)
		}
		for rule, s := range map[string]dp.Budget{"simple": simple, "advanced": adv, "rdp": rdp} {
			if s.Delta > total.Delta*(1+1e-12) {
				t.Errorf("%s under %s: reported δ=%v exceeds total %v", name, rule, s.Delta, total.Delta)
			}
			if s.Epsilon < 0 || math.IsNaN(s.Epsilon) {
				t.Errorf("%s under %s: ε=%v", name, rule, s.Epsilon)
			}
		}
	}
}

// TestAdvancedBeatsSimpleOnManySmallReleases: the regime advanced
// composition exists for — many small pure releases — must price
// strictly below linear.
func TestAdvancedBeatsSimpleOnManySmallReleases(t *testing.T) {
	total := dp.Budget{Epsilon: 100, Delta: 1e-6}
	var events []Event
	for i := 0; i < 100; i++ {
		events = append(events, Pure(0.05))
	}
	simple := spentUnder(t, RuleSimple, total, events...)
	adv := spentUnder(t, RuleAdvanced, total, events...)
	if !(adv.Epsilon < simple.Epsilon) {
		t.Fatalf("advanced %v should beat simple %v on 100× ε=0.05", adv.Epsilon, simple.Epsilon)
	}
}

// TestAdvancedDegeneratesWithoutDelta: with total δ = 0 there is no
// slack to buy the KOV bound, so advanced must price exactly linearly.
func TestAdvancedDegeneratesWithoutDelta(t *testing.T) {
	total := dp.Budget{Epsilon: 10, Delta: 0}
	events := []Event{Pure(0.1), Pure(0.1), Pure(0.1)}
	simple := spentUnder(t, RuleSimple, total, events...)
	adv := spentUnder(t, RuleAdvanced, total, events...)
	if adv != simple {
		t.Fatalf("at δ=0 advanced %+v must equal simple %+v", adv, simple)
	}
}

// TestKDDSweepRDPHalvesSimple is the acceptance criterion: on the
// standard KDD sweep the RDP price must come in at or below half the
// simple-composition price at δ = 1e-6.
func TestKDDSweepRDPHalvesSimple(t *testing.T) {
	total := dp.Budget{Epsilon: 1e6, Delta: kddDelta} // ample ε: we compare prices, not admission
	e := kddEvent()
	simple := spentUnder(t, RuleSimple, total, e)
	rdp := spentUnder(t, RuleRDP, total, e)
	t.Logf("KDD sweep (T=%d, batch=%v, σ̃=%v, δ=%v): simple ε=%.4f, rdp ε=%.4f (%.1f×)",
		kddSteps, kddBatch, kddSigma, kddDelta, simple.Epsilon, rdp.Epsilon, simple.Epsilon/rdp.Epsilon)
	if !(rdp.Epsilon > 0) {
		t.Fatalf("rdp priced the sweep at %v", rdp.Epsilon)
	}
	if rdp.Epsilon > 0.5*simple.Epsilon {
		t.Fatalf("rdp ε=%v > 0.5× simple ε=%v on the standard KDD sweep", rdp.Epsilon, simple.Epsilon)
	}
}

// TestSimpleStateIsNil pins the back-compat contract: the simple rule
// has no serialized composer state, so its ledgers keep the historical
// byte layout.
func TestSimpleStateIsNil(t *testing.T) {
	c := mustNew(t, RuleSimple)
	c.Add(Fixed(dp.Budget{Epsilon: 1, Delta: 1e-6}))
	if st := c.State(); st != nil {
		t.Fatalf("simple State() = %s, want nil", st)
	}
}

func TestStateRoundTripsJSON(t *testing.T) {
	for _, rule := range []string{RuleAdvanced, RuleRDP} {
		c := mustNew(t, rule)
		c.Add(Pure(0.2))
		c.Add(kddEvent())
		st := c.State()
		if len(st) == 0 {
			t.Fatalf("%s State() empty after adds", rule)
		}
		var m map[string]any
		if err := json.Unmarshal(st, &m); err != nil {
			t.Fatalf("%s State() not JSON: %v", rule, err)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	total := dp.Budget{Epsilon: 100, Delta: 1e-6}
	for _, rule := range Rules() {
		c := mustNew(t, rule)
		c.Add(Pure(0.5))
		before := c.Spent(total)
		cl := c.Clone()
		cl.Add(Pure(0.5))
		cl.Add(kddEvent())
		if got := c.Spent(total); got != before {
			t.Errorf("%s: Add on clone mutated original: %+v → %+v", rule, before, got)
		}
		if cl.Spent(total).Epsilon <= before.Epsilon {
			t.Errorf("%s: clone did not accumulate", rule)
		}
	}
}

// TestHeadroom: simple headroom is the exact remainder; the non-linear
// rules grant at least that much, the granted amount is admissible, and
// meaningfully more is not.
func TestHeadroom(t *testing.T) {
	const slack = 1e-9
	total := dp.Budget{Epsilon: 5, Delta: 1e-6}
	for _, rule := range Rules() {
		c := mustNew(t, rule)
		for i := 0; i < 20; i++ {
			c.Add(Pure(0.1))
		}
		spent := c.Spent(total)
		h := Headroom(c, total, slack)
		if rule == RuleSimple {
			want := dp.Budget{Epsilon: total.Epsilon - spent.Epsilon, Delta: total.Delta - spent.Delta}
			if h != want {
				t.Errorf("simple headroom %+v, want exact remainder %+v", h, want)
			}
		}
		if h.Epsilon < total.Epsilon-spent.Epsilon-1e-9 {
			t.Errorf("%s: headroom ε=%v below linear remainder %v", rule, h.Epsilon, total.Epsilon-spent.Epsilon)
		}
		if h.Epsilon > 0 {
			// The grant itself must fit ...
			cl := c.Clone()
			cl.Add(Event{Kind: KindFixed, Eps: h.Epsilon, Delta: h.Delta})
			if s := cl.Spent(total); s.Epsilon > total.Epsilon*(1+2*slack) || s.Delta > total.Delta*(1+2*slack) {
				t.Errorf("%s: headroom grant %+v overdraws to %+v", rule, h, s)
			}
			// ... and 5% more must not.
			cl2 := c.Clone()
			cl2.Add(Event{Kind: KindFixed, Eps: h.Epsilon * 1.05, Delta: h.Delta})
			if s := cl2.Spent(total); s.Epsilon <= total.Epsilon*(1+slack) {
				t.Errorf("%s: headroom not maximal: 1.05× grant still fits (%+v)", rule, s)
			}
		}
	}
}

func TestHeadroomExhausted(t *testing.T) {
	total := dp.Budget{Epsilon: 1, Delta: 0}
	for _, rule := range Rules() {
		c := mustNew(t, rule)
		c.Add(Pure(1))
		h := Headroom(c, total, 1e-9)
		if h.Epsilon != 0 || h.Delta != 0 {
			t.Errorf("%s: headroom after exhaustion = %+v, want zero", rule, h)
		}
	}
}

func TestPriceSGM(t *testing.T) {
	total := dp.Budget{Epsilon: 10, Delta: kddDelta}
	for _, rule := range Rules() {
		p, err := PriceSGM(rule, kddSigma, kddBatch/kddRows, kddSteps, total)
		if err != nil {
			t.Fatalf("PriceSGM(%s): %v", rule, err)
		}
		if !(p.Epsilon > 0) || p.Delta > total.Delta*(1+1e-12) {
			t.Errorf("PriceSGM(%s) = %+v", rule, p)
		}
	}
	if _, err := PriceSGM("nope", 1, 0.1, 10, total); err == nil {
		t.Error("PriceSGM accepted an unknown rule")
	}
	if _, err := PriceSGM(RuleRDP, 1, 0.1, 10, dp.Budget{Epsilon: 1, Delta: 0}); err == nil {
		t.Error("PriceSGM accepted an sgm run with no δ to charge")
	}
}

// TestSolveSGMSigma: the solved multiplier prices within budget, is
// near-tight, and grows as the budget tightens or the rule weakens.
func TestSolveSGMSigma(t *testing.T) {
	q := kddBatch / kddRows
	budget := dp.Budget{Epsilon: 2, Delta: kddDelta}
	var prev float64
	for _, rule := range []string{RuleRDP, RuleAdvanced, RuleSimple} {
		sigma, err := SolveSGMSigma(rule, q, kddSteps, budget)
		if err != nil {
			t.Fatalf("SolveSGMSigma(%s): %v", rule, err)
		}
		p, err := PriceSGM(rule, sigma, q, kddSteps, budget)
		if err != nil {
			t.Fatalf("PriceSGM(%s, σ̃=%v): %v", rule, sigma, err)
		}
		if p.Epsilon > budget.Epsilon {
			t.Errorf("%s: solved σ̃=%v prices over budget: ε=%v", rule, sigma, p.Epsilon)
		}
		// Tightness: 10% less noise must bust the budget.
		if p2, err := PriceSGM(rule, sigma*0.9, q, kddSteps, budget); err != nil {
			t.Fatalf("PriceSGM: %v", err)
		} else if p2.Epsilon <= budget.Epsilon {
			t.Errorf("%s: σ̃ not tight: 0.9× still prices ε=%v ≤ %v", rule, p2.Epsilon, budget.Epsilon)
		}
		// Dominance in σ̃: a weaker rule needs at least as much noise.
		if sigma < prev*(1-1e-9) {
			t.Errorf("%s needs σ̃=%v, less than the tighter rule's %v", rule, sigma, prev)
		}
		prev = sigma
		t.Logf("%s: σ̃=%.4f for %+v over %d steps", rule, sigma, budget, kddSteps)
	}
	// Tighter ε needs more noise.
	loose, err := SolveSGMSigma(RuleRDP, q, kddSteps, dp.Budget{Epsilon: 4, Delta: kddDelta})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SolveSGMSigma(RuleRDP, q, kddSteps, dp.Budget{Epsilon: 0.5, Delta: kddDelta})
	if err != nil {
		t.Fatal(err)
	}
	if !(tight > loose) {
		t.Errorf("σ̃(ε=0.5)=%v should exceed σ̃(ε=4)=%v", tight, loose)
	}
	// No δ at all: unsolvable, reported as an error, not a bogus σ̃.
	if _, err := SolveSGMSigma(RuleRDP, q, kddSteps, dp.Budget{Epsilon: 1, Delta: 0}); err == nil {
		t.Error("SolveSGMSigma accepted a pure-ε budget for a Gaussian mechanism")
	}
}

// TestSpentUnpriceableFailsHigh: a workload a rule cannot soundly price
// within the total's δ must surface as a high/infinite ε (which the
// accountant's overdraw check fails closed on), never as a low one.
func TestSpentUnpriceableFailsHigh(t *testing.T) {
	// RDP with fixed releases consuming the entire δ leaves no
	// conversion target; the advanced fallback must decide, and the
	// price must not dip below the linear ε of the releases.
	total := dp.Budget{Epsilon: 100, Delta: 1e-6}
	c := mustNew(t, RuleRDP)
	c.Add(Fixed(dp.Budget{Epsilon: 1, Delta: 1e-6}))
	c.Add(Gaussian(1.0, 10, dp.Budget{Epsilon: 2, Delta: 0}))
	s := c.Spent(total)
	if s.Epsilon < 3*(1-1e-12) {
		t.Fatalf("rdp priced an unconvertible workload at ε=%v, below the linear 3", s.Epsilon)
	}
}
