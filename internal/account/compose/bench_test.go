package compose

import (
	"testing"

	"boltondp/internal/dp"
)

// BenchmarkRDPConvert times the ε(δ) conversion over the full order
// grid — the hot path of every RDP-rule Spent/Reserve (it runs once per
// trial-priced reservation and once per admission).
func BenchmarkRDPConvert(b *testing.B) {
	orders := Orders()
	curve := make([]float64, len(orders))
	for i, a := range orders {
		curve[i] = float64(kddSteps) * SGMRDP(kddSigma, kddBatch/kddRows, a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if eps := ConvertRDP(orders, curve, kddDelta); eps <= 0 {
			b.Fatal("conversion collapsed")
		}
	}
}

// BenchmarkSGMRDPCurve times building the full subsampled-Gaussian
// curve for one step — the per-event cost of admitting a
// gradient-perturbation run.
func BenchmarkSGMRDPCurve(b *testing.B) {
	orders := Orders()
	for i := 0; i < b.N; i++ {
		for _, a := range orders {
			if SGMRDP(kddSigma, kddBatch/kddRows, a) < 0 {
				b.Fatal("negative curve")
			}
		}
	}
}

// BenchmarkRDPReservePrice times the full trial-price of one more
// reservation under the RDP rule: clone, add, spend.
func BenchmarkRDPReservePrice(b *testing.B) {
	total := dp.Budget{Epsilon: 10, Delta: kddDelta}
	c, err := New(RuleRDP)
	if err != nil {
		b.Fatal(err)
	}
	c.Add(kddEvent())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := c.Clone()
		t.Add(Pure(0.01))
		if s := t.Spent(total); s.Epsilon <= 0 {
			b.Fatal("price collapsed")
		}
	}
}

// BenchmarkSolveSGMSigma times the gradperturb calibration map: the
// bisection solving σ̃ from (ε, δ, q, T) under the RDP rule.
func BenchmarkSolveSGMSigma(b *testing.B) {
	budget := dp.Budget{Epsilon: 2, Delta: kddDelta}
	for i := 0; i < b.N; i++ {
		if _, err := SolveSGMSigma(RuleRDP, kddBatch/kddRows, kddSteps, budget); err != nil {
			b.Fatal(err)
		}
	}
}
