package compose

import (
	"encoding/json"
	"fmt"
	"math"

	"boltondp/internal/dp"
)

// rdpOrders is the fixed Rényi order grid α every RDP composer tracks:
// the dense integer band 2..64 where subsampled-Gaussian curves
// typically attain their conversion minimum, plus a sparse high tail
// for low-noise / large-ε regimes. Integer orders keep the
// Mironov–Talwar–Zhang subsampled bound exact (its closed form is the
// binomial expansion, valid at integer α).
var rdpOrders = func() []float64 {
	var o []float64
	for a := 2; a <= 64; a++ {
		o = append(o, float64(a))
	}
	o = append(o, 72, 96, 128, 192, 256, 384, 512)
	return o
}()

// Orders returns a copy of the accountant's Rényi order grid.
func Orders() []float64 {
	out := make([]float64, len(rdpOrders))
	copy(out, rdpOrders)
	return out
}

// rdp is the Rényi composer: per-order curve sums for curve-capable
// events, linear side sums for fixed releases, and the Advanced price
// as the always-available fallback candidate.
type rdp struct {
	advanced            // fallback candidate (itself min'd with Simple)
	curve     []float64 // Σ ε(α) over admitted curve-capable events
	haveCurve bool      // any pure/gaussian/sgm mass admitted
	fixedEps  float64   // Σ ε of fixed releases (no curve)
	fixedDel  float64   // Σ δ of fixed releases
}

func newRDP() *rdp {
	return &rdp{curve: make([]float64, len(rdpOrders))}
}

func (r *rdp) Rule() string { return RuleRDP }

func (r *rdp) Add(e Event) {
	r.advanced.Add(e)
	switch e.Kind {
	case KindPure:
		r.haveCurve = true
		for i, a := range rdpOrders {
			r.curve[i] += PureRDP(e.Eps, a)
		}
	case KindGaussian:
		r.haveCurve = true
		for i, a := range rdpOrders {
			r.curve[i] += float64(e.Steps) * GaussianRDP(e.Sigma, a)
		}
	case KindSGM:
		r.haveCurve = true
		for i, a := range rdpOrders {
			r.curve[i] += float64(e.Steps) * SGMRDP(e.Sigma, e.Q, a)
		}
	default: // fixed: no usable curve — linear side sums
		r.fixedEps += e.Eps
		r.fixedDel += e.Delta
	}
}

func (r *rdp) Spent(total dp.Budget) dp.Budget {
	adv := r.advanced.Spent(total)
	if !r.haveCurve {
		return adv
	}
	// The conversion target is whatever δ the fixed releases left over:
	// fixed δs and the conversion δ partition the total. No δ left (or
	// a pure-ε total) prices the curve at +Inf and the Advanced
	// fallback decides.
	deltaConv := total.Delta - r.fixedDel
	eps := r.fixedEps + ConvertRDP(rdpOrders, r.curve, deltaConv)
	if adv.Epsilon <= eps {
		return adv
	}
	return dp.Budget{Epsilon: eps, Delta: total.Delta}
}

type rdpState struct {
	Orders       []float64 `json:"orders"`
	Epsilons     []float64 `json:"eps"`
	FixedEpsilon float64   `json:"fixed_epsilon,omitempty"`
	FixedDelta   float64   `json:"fixed_delta,omitempty"`
}

func (r *rdp) State() json.RawMessage {
	if !r.haveCurve && r.fixedEps == 0 {
		return nil
	}
	b, _ := json.Marshal(rdpState{
		Orders: Orders(), Epsilons: append([]float64(nil), r.curve...),
		FixedEpsilon: r.fixedEps, FixedDelta: r.fixedDel,
	})
	return b
}

func (r *rdp) Clone() Composer {
	c := *r
	c.curve = append([]float64(nil), r.curve...)
	return &c
}

// ---------------------------------------------------------------------
// Per-mechanism Rényi curves and the (ε, δ) conversion. Exported so the
// property wall (and the experiment harness) can test them directly.
// ---------------------------------------------------------------------

// GaussianRDP is the exact Rényi divergence of the Gaussian mechanism
// at noise multiplier sigma = σ/Δ₂: ε(α) = α / (2σ̃²).
func GaussianRDP(sigma, alpha float64) float64 {
	return alpha / (2 * sigma * sigma)
}

// PureRDP bounds the Rényi curve of a pure ε-DP mechanism:
// ε(α) ≤ min(ε, α·ε²/2). The second term is the Bun–Steinke zCDP bound
// (ε-DP ⟹ (ε²/2)-zCDP); the first is the universal Rényi ≤ max
// divergence bound.
func PureRDP(eps, alpha float64) float64 {
	return math.Min(eps, alpha*eps*eps/2)
}

// SGMRDP bounds the Rényi curve of ONE subsampled-Gaussian step at
// sampling fraction q and noise multiplier sigma, at integer order
// alpha ≥ 2 — the Mironov–Talwar–Zhang closed form
//
//	ε(α) = (1/(α−1)) · ln Σ_{k=0}^{α} C(α,k)·(1−q)^{α−k}·q^k·e^{k(k−1)/(2σ̃²)}
//
// computed in log space (the e^{k(k−1)/(2σ̃²)} factor overflows float64
// well inside the order grid). Non-integer α is rounded up to the next
// integer, which can only increase the bound (Rényi divergence is
// non-decreasing in the order).
func SGMRDP(sigma, q, alpha float64) float64 {
	if q >= 1 {
		return GaussianRDP(sigma, alpha)
	}
	n := int(math.Ceil(alpha))
	if n < 2 {
		n = 2
	}
	inv2s := 1 / (2 * sigma * sigma)
	lq, l1q := math.Log(q), math.Log1p(-q)
	// log-sum-exp over k of logC(n,k) + (n−k)·ln(1−q) + k·ln q + k(k−1)/(2σ̃²)
	maxT := math.Inf(-1)
	terms := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		t := logComb(n, k) + float64(n-k)*l1q + float64(k)*lq + float64(k)*float64(k-1)*inv2s
		terms[k] = t
		if t > maxT {
			maxT = t
		}
	}
	var sum float64
	for _, t := range terms {
		sum += math.Exp(t - maxT)
	}
	logA := maxT + math.Log(sum)
	eps := logA / (float64(n) - 1)
	if eps < 0 {
		return 0 // numerical floor: the divergence is non-negative
	}
	return eps
}

// logComb is ln C(n, k) via lgamma.
func logComb(n, k int) float64 {
	ln, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return ln - lk - lnk
}

// ConvertRDP converts a composed Rényi curve into an (ε, δ)-DP
// statement at target δ, minimizing the improved conversion of
// Balle–Barthe–Gaboardi–Hsu–Sato (the bound Opacus and TF-Privacy
// ship) over the order grid:
//
//	ε(δ) = min_α [ ε_rdp(α) + ln((α−1)/α) − (ln δ + ln α)/(α−1) ]
//
// A non-positive target δ cannot be converted at and prices +Inf — the
// caller's overdraw check fails closed on it.
func ConvertRDP(orders, curve []float64, delta float64) float64 {
	if delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	logDelta := math.Log(delta)
	best := math.Inf(1)
	for i, a := range orders {
		if a <= 1 {
			continue
		}
		eps := curve[i] + math.Log1p(-1/a) - (logDelta+math.Log(a))/(a-1)
		if eps < 0 {
			eps = 0
		}
		if eps < best {
			best = eps
		}
	}
	return best
}

// PriceSGM prices a gradient-perturbation run — steps invocations of
// the subsampled Gaussian at sampling fraction q and noise multiplier
// sigma — under the named rule against the given total budget (whose δ
// is both the per-step charge pool of the linear rules and the RDP
// conversion target). It is the calibration map of the gradperturb
// engine strategy.
func PriceSGM(rule string, sigma, q float64, steps int, total dp.Budget) (dp.Budget, error) {
	c, err := New(rule)
	if err != nil {
		return dp.Budget{}, err
	}
	e := SGM(sigma, q, steps, total.Delta)
	if err := e.Validate(); err != nil {
		return dp.Budget{}, err
	}
	c.Add(e)
	return c.Spent(total), nil
}

// SolveSGMSigma returns the smallest noise multiplier σ̃ whose
// gradient-perturbation run (steps invocations at sampling fraction q)
// prices within the budget under the named rule — the inverse of
// PriceSGM in σ̃, solved by bisection (the price is monotone
// non-increasing in σ̃). The budget must carry δ > 0: every rule needs
// it (per-step conversion for simple/advanced, the conversion target
// for RDP).
func SolveSGMSigma(rule string, q float64, steps int, budget dp.Budget) (float64, error) {
	if err := budget.Validate(); err != nil {
		return 0, err
	}
	over := func(sigma float64) (bool, error) {
		p, err := PriceSGM(rule, sigma, q, steps, budget)
		if err != nil {
			return false, err
		}
		return p.Epsilon > budget.Epsilon, nil
	}
	lo, hi := 1e-2, 0.5
	for {
		o, err := over(hi)
		if err != nil {
			return 0, err
		}
		if !o {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1e6 {
			// Even absurd noise cannot fit the budget (δ too small for
			// the per-step conversions, or ε non-positive upstream).
			return 0, errDoesNotFit(rule, q, steps, budget)
		}
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		o, err := over(mid)
		if err != nil {
			return 0, err
		}
		if o {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

func errDoesNotFit(rule string, q float64, steps int, budget dp.Budget) error {
	return fmt.Errorf("compose: no noise multiplier fits %v under rule %s (q=%g, steps=%d)",
		budget, Normalize(rule), q, steps)
}
