// Package compose implements the pluggable privacy-composition rules of
// the budget accountant (internal/account): given the sequence of
// mechanism invocations an accountant has admitted, a Composer prices
// their cumulative (ε, δ) cost. Three rules are provided:
//
//   - Simple — the linear composition theorem ([17] in the paper):
//     ε and δ both sum across releases. This is the accountant's
//     historical rule; its prices (and the ledgers it produces) are
//     bit-identical to the pre-compose accountant.
//   - Advanced — Kairouz–Oh–Viswanath-style advanced composition for
//     heterogeneous releases: ε_total = Σ εᵢ(e^εᵢ−1)/(e^εᵢ+1) +
//     √(2·Σεᵢ²·ln(1/δ′)), with half of the accountant's total δ carved
//     out as the composition slack δ′ and the other half available to
//     the releases' own δᵢ. The price is min'd with the Simple price,
//     so Advanced never charges more than Simple.
//   - RDP — a Rényi accountant: mechanisms with a known Rényi curve
//     (the Gaussian mechanism, the subsampled Gaussian of DP-SGD-style
//     gradient perturbation, and pure-ε releases) compose by summing
//     their per-order ε(α) curves over a fixed order grid, and the
//     curve converts to an (ε, δ) statement once at spend time, at the
//     accountant's target δ. The price is min'd with the Advanced
//     price, so the dominance chain RDP ≤ Advanced ≤ Simple holds for
//     every workload by construction — each candidate is a sound bound,
//     and the accountant may always claim the tightest.
//
// Composers are pure pricing state machines: they hold no lock and no
// ledger (the accountant owns both), they are cheap to Clone (the
// accountant trial-prices a candidate reservation on a clone before
// committing, which is what makes fail-closed admission exact under
// every rule), and their State serializes into the ledger so a released
// model's audit trail shows not just what was spent but how it was
// composed.
package compose

import (
	"encoding/json"
	"fmt"
	"math"

	"boltondp/internal/dp"
)

// Rule names. The empty string is accepted everywhere and means Simple
// — the accountant's historical serialization omits the rule field, so
// "" and "simple" are the same rule.
const (
	RuleSimple   = "simple"
	RuleAdvanced = "advanced"
	RuleRDP      = "rdp"
)

// Rules lists the composition rules New accepts, in dominance order
// (every later rule prices every workload at most as high as every
// earlier one).
func Rules() []string { return []string{RuleSimple, RuleAdvanced, RuleRDP} }

// Normalize maps a rule name to its canonical form ("" → "simple").
// Unknown names are returned unchanged (callers detect them via New).
func Normalize(rule string) string {
	if rule == "" {
		return RuleSimple
	}
	return rule
}

// Kind tags the mechanism family of one Event.
type Kind string

const (
	// KindFixed is a release with a stated (ε, δ) guarantee and no
	// usable mechanism structure — the conservative default. Every rule
	// composes it linearly.
	KindFixed Kind = "fixed"
	// KindPure is a pure ε-DP release (exponential mechanism, Laplace /
	// Gamma-sphere output perturbation). Under RDP it contributes the
	// curve ε(α) = min(ε, α·ε²/2) (Bun–Steinke: ε-DP ⟹ (ε²/2)-zCDP).
	KindPure Kind = "pure"
	// KindGaussian is Steps invocations of the Gaussian mechanism at
	// noise multiplier σ̃ = σ/Δ₂. Under RDP each step contributes
	// ε(α) = α/(2σ̃²).
	KindGaussian Kind = "gaussian"
	// KindSGM is Steps invocations of the subsampled Gaussian mechanism
	// (sampling fraction q, noise multiplier σ̃) — the DP-SGD accounting
	// family built on this paper's problem. Under RDP each step
	// contributes the Mironov–Talwar–Zhang integer-order bound.
	KindSGM Kind = "sgm"
)

// Event is one mechanism invocation (or a homogeneous run of Steps
// invocations) submitted to a composer for pricing.
type Event struct {
	Kind Kind

	// Eps and Delta are the stated per-release guarantee of a fixed,
	// pure (Delta 0) or gaussian event. For gaussian/sgm events Delta is
	// the total δ this event charges under the Simple and Advanced
	// rules, which must price the run through per-step (ε₁, δ₁)
	// conversions; the RDP rule ignores it (the conversion at spend
	// time consumes the accountant's target δ instead).
	Eps, Delta float64

	// Sigma is the noise multiplier σ̃ = σ/Δ₂ of a gaussian or sgm
	// event: the per-invocation Gaussian noise scale measured in units
	// of the mechanism's sensitivity.
	Sigma float64

	// Q is the subsampling fraction of an sgm event (batch/m).
	Q float64

	// Steps is the invocation count of a gaussian or sgm event (≥ 1).
	Steps int
}

// Fixed wraps a stated (ε, δ) release.
func Fixed(b dp.Budget) Event { return Event{Kind: KindFixed, Eps: b.Epsilon, Delta: b.Delta} }

// Pure wraps a pure ε-DP release.
func Pure(eps float64) Event { return Event{Kind: KindPure, Eps: eps} }

// Gaussian wraps steps invocations of the Gaussian mechanism at noise
// multiplier sigma whose stated per-run guarantee is b (what Simple and
// Advanced price; RDP prices the multiplier directly).
func Gaussian(sigma float64, steps int, b dp.Budget) Event {
	return Event{Kind: KindGaussian, Eps: b.Epsilon, Delta: b.Delta, Sigma: sigma, Steps: steps}
}

// SGM wraps steps invocations of the subsampled Gaussian mechanism at
// sampling fraction q and noise multiplier sigma. deltaCharge is the
// total δ the run charges under the per-step-conversion rules (Simple /
// Advanced); the RDP rule converts at the accountant's target δ
// instead.
func SGM(sigma, q float64, steps int, deltaCharge float64) Event {
	return Event{Kind: KindSGM, Delta: deltaCharge, Sigma: sigma, Q: q, Steps: steps}
}

// Validate rejects events no rule can price.
func (e Event) Validate() error {
	switch e.Kind {
	case KindFixed:
		return dp.Budget{Epsilon: e.Eps, Delta: e.Delta}.Validate()
	case KindPure:
		if e.Eps <= 0 {
			return fmt.Errorf("compose: pure event needs ε > 0, got %v", e.Eps)
		}
		if e.Delta != 0 {
			return fmt.Errorf("compose: pure event carries δ = %v; use a fixed or gaussian event", e.Delta)
		}
		return nil
	case KindGaussian:
		if e.Sigma <= 0 || e.Steps < 1 {
			return fmt.Errorf("compose: gaussian event needs σ̃ > 0 and steps ≥ 1, got σ̃=%v steps=%d", e.Sigma, e.Steps)
		}
		return dp.Budget{Epsilon: e.Eps, Delta: e.Delta}.Validate()
	case KindSGM:
		if e.Sigma <= 0 || e.Steps < 1 || e.Q <= 0 || e.Q > 1 {
			return fmt.Errorf("compose: sgm event needs σ̃ > 0, steps ≥ 1 and q ∈ (0,1], got σ̃=%v q=%v steps=%d", e.Sigma, e.Q, e.Steps)
		}
		if e.Delta <= 0 || e.Delta >= 1 {
			return fmt.Errorf("compose: sgm event needs a δ charge in (0,1) for per-step conversion, got %v", e.Delta)
		}
		return nil
	default:
		return fmt.Errorf("compose: unknown event kind %q", e.Kind)
	}
}

// Composer prices the cumulative privacy cost of a sequence of events
// under one composition rule. Implementations are NOT safe for
// concurrent use — the accountant serializes access under its lock.
type Composer interface {
	// Rule returns the canonical rule name.
	Rule() string
	// Add admits one event into the composition state. The event must
	// have passed Validate; Add itself never fails.
	Add(e Event)
	// Spent prices the cumulative (ε, δ) cost of everything added so
	// far, evaluated against the accountant's total budget (whose δ is
	// the conversion target / slack pool for the non-linear rules). An
	// unpriceable state — e.g. Gaussian mass under RDP with no δ to
	// convert at — prices at ε = +Inf, which the accountant's overdraw
	// check fails closed on.
	Spent(total dp.Budget) dp.Budget
	// State returns the serializable per-rule composition state that
	// the ledger carries for audit (nil for Simple, whose entire state
	// is the entry list itself).
	State() json.RawMessage
	// Clone returns an independent deep copy, used to trial-price a
	// candidate reservation before committing it.
	Clone() Composer
}

// New returns a fresh composer for the named rule ("" = simple).
func New(rule string) (Composer, error) {
	switch Normalize(rule) {
	case RuleSimple:
		return &simple{}, nil
	case RuleAdvanced:
		return &advanced{}, nil
	case RuleRDP:
		return newRDP(), nil
	default:
		return nil, fmt.Errorf("compose: unknown composition rule %q (want simple|advanced|rdp)", rule)
	}
}

// ---------------------------------------------------------------------
// Shared per-event linear pricing.
//
// Every rule needs the Simple price of an event — Simple uses it
// directly, Advanced and RDP min against it (via the Advanced price).
// For fixed/pure/gaussian events the stated (ε, δ) IS the linear price.
// For sgm events the linear price is the per-step conversion: split the
// event's δ charge evenly across steps, price one subsampled-Gaussian
// step at that δ₁, and sum.
// ---------------------------------------------------------------------

// LinearPrice returns the event's standalone (ε, δ) guarantee — its
// price under Simple composition. The accountant records it in the
// ledger entry of every reservation: entries state what each release
// cost in isolation, and the ledger's rule + composed spend state what
// the sequence cost together.
func (e Event) LinearPrice() dp.Budget { return linearPrice(e) }

// linearPrice returns the Simple-composition (ε, δ) price of one event.
func linearPrice(e Event) dp.Budget {
	switch e.Kind {
	case KindSGM:
		eps1, _ := sgmStepEpsilon(e.Sigma, e.Q, e.Delta/float64(e.Steps))
		return dp.Budget{Epsilon: float64(e.Steps) * eps1, Delta: e.Delta}
	default:
		return dp.Budget{Epsilon: e.Eps, Delta: e.Delta}
	}
}

// sgmStepEpsilon prices ONE subsampled-Gaussian step at noise
// multiplier sigma and sampling fraction q against a per-step δ₁: the
// base Gaussian on the subsample is priced at (ε_g, δ₁/q) through the
// analytic Gaussian mechanism (gaussianEpsilon), and amplification by
// subsampling maps it to (ln(1 + q(e^{ε_g} − 1)), q·δ_g) = (ε₁, δ₁).
// The amplified ε₁ is returned together with the base ε_g (reported by
// the advanced rule's per-step sums).
func sgmStepEpsilon(sigma, q, delta1 float64) (eps1, epsBase float64) {
	deltaG := delta1 / q
	if deltaG >= 1 {
		// The per-step δ is so generous the base conversion degenerates;
		// price the unamplified Gaussian at δ₁ directly.
		deltaG = delta1
		q = 1
	}
	epsBase = gaussianEpsilon(sigma, deltaG)
	if q >= 1 {
		return epsBase, epsBase
	}
	// ln(1+q(e^ε−1)) computed stably: for large ε the product may
	// overflow; fall back to ε + ln q which it tends to.
	grow := math.Expm1(epsBase)
	if math.IsInf(grow, 1) {
		return epsBase + math.Log(q), epsBase
	}
	return math.Log1p(q * grow), epsBase
}

// normCDF is Φ, the standard normal CDF.
func normCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// gaussianDeltaAt evaluates the exact privacy profile δ(ε) of the
// Gaussian mechanism at noise multiplier sigma = σ/Δ₂ — the analytic
// Gaussian mechanism of Balle–Wang (ICML '18):
//
//	δ(ε) = Φ(1/(2σ̃) − εσ̃) − e^ε · Φ(−1/(2σ̃) − εσ̃)
//
// The e^ε·Φ(·) term is assembled in log space: Φ of a strongly
// negative argument underflows float64, and dropping the (subtracted)
// term only OVERSTATES δ, so any underflow errs conservative.
func gaussianDeltaAt(sigma, eps float64) float64 {
	a := 1/(2*sigma) - eps*sigma
	b := -1/(2*sigma) - eps*sigma
	d := normCDF(a)
	if phiB := normCDF(b); phiB > 0 {
		d -= math.Exp(eps + math.Log(phiB))
	}
	if d < 0 {
		return 0
	}
	return d
}

// gaussianEpsilon inverts gaussianDeltaAt: the smallest ε at which the
// Gaussian mechanism at noise multiplier sigma is (ε, δ)-DP. Unlike
// inverting the classical calibration σ̃ = √(2 ln(1.25/δ))/ε — which is
// only a valid guarantee below ε = 1 and silently under-prices beyond
// it — the analytic profile is exact at every ε. δ(ε) is continuous
// and non-increasing, so bisection converges; the upper end of the
// bracket is returned, keeping the result a sound guarantee.
func gaussianEpsilon(sigma, delta float64) float64 {
	if gaussianDeltaAt(sigma, 0) <= delta {
		return 0
	}
	lo, hi := 0.0, 1.0
	for gaussianDeltaAt(sigma, hi) > delta {
		lo = hi
		hi *= 2
		if hi > 1e9 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if gaussianDeltaAt(sigma, mid) > delta {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// ---------------------------------------------------------------------
// Simple: the historical rule. Linear in both coordinates.
// ---------------------------------------------------------------------

type simple struct {
	eps, del float64
}

func (s *simple) Rule() string { return RuleSimple }

func (s *simple) Add(e Event) {
	p := linearPrice(e)
	s.eps += p.Epsilon
	s.del += p.Delta
}

func (s *simple) Spent(total dp.Budget) dp.Budget {
	return dp.Budget{Epsilon: s.eps, Delta: s.del}
}

// State is nil: a Simple ledger's entry list is its complete state, and
// omitting it keeps the serialized ledger byte-identical to the
// pre-compose accountant's.
func (s *simple) State() json.RawMessage { return nil }

func (s *simple) Clone() Composer { c := *s; return &c }

// ---------------------------------------------------------------------
// Advanced: heterogeneous advanced composition (KOV '15, Theorem 3.5's
// first improved term), min'd with Simple.
//
// δ policy: the slack δ′ is half the accountant's total δ; the
// releases' own stated δs must fit in the other half (enforced by the
// reported δ spend, which is Σδᵢ + δ′ whenever the KOV term wins). With
// total δ = 0 there is no slack and the rule degenerates to Simple.
// ---------------------------------------------------------------------

type advanced struct {
	simple         // the linear price it never exceeds
	kovLin float64 // Σ εᵢ(e^εᵢ−1)/(e^εᵢ+1)
	kovSq  float64 // Σ εᵢ²
	sumDel float64 // Σ stated δᵢ
}

func (a *advanced) Rule() string { return RuleAdvanced }

// addKOV accumulates n copies of a per-release ε into the KOV sums.
func (a *advanced) addKOV(eps float64, n int) {
	if eps <= 0 || n < 1 {
		return
	}
	f := float64(n)
	a.kovLin += f * eps * math.Expm1(eps) / (math.Exp(eps) + 1)
	a.kovSq += f * eps * eps
}

func (a *advanced) Add(e Event) {
	a.simple.Add(e)
	switch e.Kind {
	case KindSGM:
		eps1, _ := sgmStepEpsilon(e.Sigma, e.Q, e.Delta/float64(e.Steps))
		a.addKOV(eps1, e.Steps)
		a.sumDel += e.Delta
	case KindGaussian:
		// Steps invocations at the stated per-run (ε, δ): treat the run
		// as Steps releases of (ε/Steps... no — the stated ε covers the
		// whole run under the caller's own calibration; feeding it to
		// KOV as one release is the conservative, always-sound reading.
		a.addKOV(e.Eps, 1)
		a.sumDel += e.Delta
	default:
		a.addKOV(e.Eps, 1)
		a.sumDel += e.Delta
	}
}

// advancedEpsilon is the KOV heterogeneous bound at slack δ′.
func advancedEpsilon(kovLin, kovSq, deltaPrime float64) float64 {
	if deltaPrime <= 0 {
		return math.Inf(1)
	}
	return kovLin + math.Sqrt(2*kovSq*math.Log(1/deltaPrime))
}

func (a *advanced) Spent(total dp.Budget) dp.Budget {
	lin := a.simple.Spent(total)
	deltaPrime := total.Delta / 2
	kov := advancedEpsilon(a.kovLin, a.kovSq, deltaPrime)
	// The KOV claim is only usable when its own δ bill — the releases'
	// stated δs plus the slack — fits the total; otherwise the linear
	// claim stands (it may bust the budget too, but then the overdraw
	// check fails closed either way).
	if kov >= lin.Epsilon || a.sumDel+deltaPrime > total.Delta {
		return lin
	}
	return dp.Budget{Epsilon: kov, Delta: a.sumDel + deltaPrime}
}

type advancedState struct {
	KOVLinear float64 `json:"kov_linear"`
	KOVSquare float64 `json:"kov_square"`
	SumDelta  float64 `json:"sum_delta"`
}

func (a *advanced) State() json.RawMessage {
	b, _ := json.Marshal(advancedState{KOVLinear: a.kovLin, KOVSquare: a.kovSq, SumDelta: a.sumDel})
	return b
}

func (a *advanced) Clone() Composer { c := *a; return &c }

// ---------------------------------------------------------------------
// Headroom: the largest single fixed (ε, δ) grant a composer state can
// still admit against total. Shared by every rule; for Simple it is the
// exact remainder (bit-compatible with the historical accountant), for
// the non-linear rules ε headroom is found by bisection on the
// composed price, which is monotone in the candidate's ε.
// ---------------------------------------------------------------------

// Headroom computes the largest fixed grant c can still admit within
// total under the given relative slack tolerance (the accountant's
// recombination slack).
func Headroom(c Composer, total dp.Budget, slack float64) dp.Budget {
	spent := c.Spent(total)
	rem := dp.Budget{Epsilon: total.Epsilon - spent.Epsilon, Delta: total.Delta - spent.Delta}
	if rem.Epsilon < 0 {
		rem.Epsilon = 0
	}
	if rem.Delta < 0 {
		rem.Delta = 0
	}
	if c.Rule() == RuleSimple {
		return rem // exact: the linear price of a fixed grant is itself
	}
	if rem.Epsilon == 0 {
		return rem
	}
	admits := func(eps float64) bool {
		t := c.Clone()
		t.Add(Event{Kind: KindFixed, Eps: eps, Delta: rem.Delta})
		s := t.Spent(total)
		return s.Epsilon <= total.Epsilon*(1+slack) && s.Delta <= total.Delta*(1+slack)
	}
	// Fixed grants price linearly under every rule's Simple candidate,
	// so the exact remainder is always admissible; probing upward finds
	// the extra headroom a non-linear rule's tighter composed price of
	// the PREVIOUS spends leaves open.
	lo, hi := 0.0, total.Epsilon
	if admits(hi) {
		return dp.Budget{Epsilon: hi, Delta: rem.Delta}
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if admits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return dp.Budget{Epsilon: lo, Delta: rem.Delta}
}
