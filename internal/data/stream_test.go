package data

import (
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func TestStreamDeterministicPerIndex(t *testing.T) {
	s := NewStream(42, 1000, 8, 0.3, 0.02)
	x1, y1 := s.At(123)
	a := vec.Copy(x1)
	// Access other rows, then come back.
	s.At(0)
	s.At(999)
	x2, y2 := s.At(123)
	if !vec.Equal(a, x2, 0) || y1 != y2 {
		t.Error("stream row 123 not deterministic across accesses")
	}
	// Two streams with the same seed agree.
	s2 := NewStream(42, 1000, 8, 0.3, 0.02)
	x3, y3 := s2.At(123)
	if !vec.Equal(a, x3, 0) || y1 != y3 {
		t.Error("stream not deterministic across instances")
	}
}

func TestStreamInvariants(t *testing.T) {
	s := NewStream(7, 500, 6, 0.5, 0.05)
	if s.Len() != 500 || s.Dim() != 6 {
		t.Fatalf("shape %dx%d", s.Len(), s.Dim())
	}
	plus := 0
	for i := 0; i < s.Len(); i++ {
		x, y := s.At(i)
		if vec.Norm(x) > 1+1e-12 {
			t.Fatalf("row %d norm %v", i, vec.Norm(x))
		}
		if y != 1 && y != -1 {
			t.Fatalf("label %v", y)
		}
		if y == 1 {
			plus++
		}
	}
	// Roughly balanced classes.
	if plus < 150 || plus > 350 {
		t.Errorf("class balance %d/500", plus)
	}
}

func TestStreamNeighborRowsDiffer(t *testing.T) {
	s := NewStream(1, 100, 5, 0.3, 0)
	a := vec.Copy(firstOf(s.At(0)))
	b := vec.Copy(firstOf(s.At(1)))
	if vec.Equal(a, b, 1e-12) {
		t.Error("adjacent stream rows identical — index mixing broken")
	}
}

func firstOf(x []float64, _ float64) []float64 { return x }

func TestStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	NewStream(1, 10, 2, 0.3, 0).At(10)
}

// A Stream is trainable like any other Samples — the use case behind
// paper-scale scalability runs.
func TestStreamTrains(t *testing.T) {
	s := NewStream(3, 4000, 10, 0.25, 0.02)
	f := loss.NewLogistic(0, 0)
	res, err := sgd.Run(s, sgd.Config{
		Loss: f, Step: sgd.Constant(1 / math.Sqrt(4000)), Passes: 3, Batch: 10,
		Rand: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < s.Len(); i++ {
		x, y := s.At(i)
		if math.Copysign(1, vec.Dot(res.W, x)) == y {
			correct++
		}
	}
	if acc := float64(correct) / float64(s.Len()); acc < 0.85 {
		t.Errorf("stream training accuracy %v", acc)
	}
}
