package data

import (
	"fmt"
	"math/rand"
	"sort"

	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// SparseStream is the sparse analogue of Stream: a lazily generated
// high-dimensional dataset whose rows are derived deterministically
// from (Seed, index) on every access and never materialized. Each row
// activates NNZ of D coordinates — the text/log workloads the sparse
// kernel exists for, at sizes where even CSR storage would not fit.
//
// SparseStream implements both tiers of the engine contract: AtSparse
// generates the row in coordinate form at O(NNZ·log NNZ) (the dominant
// training path), and At scatters it into a dense scratch for dense
// consumers. Like Stream, one SparseStream must not be shared across
// concurrent runs; Shard hands out independently buffered views.
type SparseStream struct {
	Seed int64
	M    int
	D    int
	// NNZ is the number of active coordinates per row.
	NNZ int
	// Flip is the label noise probability.
	Flip float64

	buf     rowBuf
	scratch []float64
}

// rowBuf holds the per-view row generation state.
type rowBuf struct {
	row vec.Sparse
	idx []int
	val []float64
}

// NewSparseStream builds a deterministic two-class sparse stream.
// Class +1 draws its first NNZ/2+1 coordinates from the low half of
// the index space and class −1 from the high half (the class signal),
// with the remainder uniform — the same structure as SparseSynthetic,
// but lazily generated.
func NewSparseStream(seed int64, m, d, nnz int, flip float64) *SparseStream {
	if m < 1 || d < 2 || nnz < 1 || nnz > d {
		panic(fmt.Sprintf("data: bad SparseStream shape m=%d d=%d nnz=%d", m, d, nnz))
	}
	if nnz/2+1 > d/2 {
		// The first nnz/2+1 draws come from one half of the index space;
		// a half smaller than that would make the rejection loop in
		// atSparse spin forever.
		panic(fmt.Sprintf("data: SparseStream needs nnz/2+1 ≤ d/2, got nnz=%d d=%d", nnz, d))
	}
	return &SparseStream{Seed: seed, M: m, D: d, NNZ: nnz, Flip: flip}
}

// Len implements sgd.Samples.
func (s *SparseStream) Len() int { return s.M }

// Dim implements sgd.Samples.
func (s *SparseStream) Dim() int { return s.D }

// AtSparse implements sgd.SparseSamples, regenerating row i
// deterministically. The returned vector is valid until the next
// AtSparse or At call on this receiver.
func (s *SparseStream) AtSparse(i int) (*vec.Sparse, float64) {
	return s.atSparse(i, &s.buf)
}

// At implements sgd.Samples via AtSparse plus a scatter.
func (s *SparseStream) At(i int) ([]float64, float64) {
	if s.scratch == nil {
		s.scratch = make([]float64, s.D)
	}
	row, y := s.AtSparse(i)
	row.Scatter(s.scratch)
	return s.scratch, y
}

// atSparse regenerates row i into the given buffer, so independent
// shard views can scan concurrently.
func (s *SparseStream) atSparse(i int, b *rowBuf) (*vec.Sparse, float64) {
	if i < 0 || i >= s.M {
		panic(fmt.Sprintf("data: stream row %d out of range [0,%d)", i, s.M))
	}
	r := rand.New(rand.NewSource(mix(s.Seed, int64(i))))
	label := 1.0
	if r.Intn(2) == 0 {
		label = -1
	}
	if b.idx == nil {
		b.idx = make([]int, 0, s.NNZ)
		b.val = make([]float64, 0, s.NNZ)
	}
	b.idx = b.idx[:0]
	b.val = b.val[:0]
	half := s.D / 2
	for len(b.idx) < s.NNZ {
		var ix int
		if len(b.idx) < s.NNZ/2+1 {
			if label > 0 {
				ix = r.Intn(half)
			} else {
				ix = half + r.Intn(s.D-half)
			}
		} else {
			ix = r.Intn(s.D)
		}
		// Reject duplicates by sorted insertion — NNZ is small, so the
		// binary search + shift beats a map and never allocates.
		p := sort.SearchInts(b.idx, ix)
		if p < len(b.idx) && b.idx[p] == ix {
			continue
		}
		b.idx = append(b.idx, 0)
		b.val = append(b.val, 0)
		copy(b.idx[p+1:], b.idx[p:])
		copy(b.val[p+1:], b.val[p:])
		b.idx[p] = ix
		b.val[p] = 0.5 + r.Float64()
	}
	b.row.Idx = b.idx
	b.row.Val = b.val
	if n := b.row.Norm(); n > 1 {
		b.row.Scale(1 / n)
	}
	y := label
	if s.Flip > 0 && r.Float64() < s.Flip {
		y = -y
	}
	return &b.row, y
}

// Shard implements engine.Sharder: an independent view of rows
// [lo, hi) with its own buffers. Rows keep their global identity —
// shard row i is stream row lo+i, derived from (Seed, lo+i) exactly as
// through AtSparse.
func (s *SparseStream) Shard(lo, hi int) sgd.Samples {
	if lo < 0 || hi < lo || hi > s.M {
		panic(fmt.Sprintf("data: shard [%d,%d) out of bounds for %d rows", lo, hi, s.M))
	}
	return &sparseStreamShard{s: s, lo: lo, hi: hi}
}

type sparseStreamShard struct {
	s       *SparseStream
	lo, hi  int
	buf     rowBuf
	scratch []float64
}

func (v *sparseStreamShard) Len() int { return v.hi - v.lo }
func (v *sparseStreamShard) Dim() int { return v.s.D }

func (v *sparseStreamShard) AtSparse(i int) (*vec.Sparse, float64) {
	if i < 0 || i >= v.hi-v.lo {
		// Shard disjointness backs the /P sensitivity division; fail
		// loudly on interior overruns (see streamShard).
		panic(fmt.Sprintf("data: shard row %d out of range [0,%d)", i, v.hi-v.lo))
	}
	return v.s.atSparse(v.lo+i, &v.buf)
}

func (v *sparseStreamShard) At(i int) ([]float64, float64) {
	if v.scratch == nil {
		v.scratch = make([]float64, v.s.D)
	}
	row, y := v.AtSparse(i)
	row.Scatter(v.scratch)
	return v.scratch, y
}

// Shard keeps views shardable in turn, translating to parent
// coordinates so sharded runs over a row-range view stay race-free.
func (v *sparseStreamShard) Shard(lo, hi int) sgd.Samples {
	return v.s.Shard(v.lo+lo, v.lo+hi)
}
