package data

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"boltondp/internal/vec"
)

// ScanLIBSVM streams a LIBSVM/SVMlight file ("label idx:val idx:val
// ..." per line, 1-based indices) through fn, one canonicalized row
// per call, in file order. It is the single implementation of the
// LIBSVM grammar: both in-memory loaders and the out-of-core store
// conversion are built on it, so the three paths cannot drift apart
// and the whole file is read exactly once however it is consumed.
//
// Rows are canonicalized through vec.SortedCopy (indices sorted,
// duplicates summed) and remapped to 0-based indices. Labels are
// passed through as parsed — the {0,1} → ±1 convenience remap needs
// the full label set and is applied by the callers that materialize
// one. A non-nil error from fn aborts the scan and is returned as-is.
func ScanLIBSVM(path string, fn func(row *vec.Sparse, y float64) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	var idx []int
	var val []float64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		y, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return fmt.Errorf("data: %s:%d: bad label %q", path, lineNo, fields[0])
		}
		idx = idx[:0]
		val = val[:0]
		for _, kv := range fields[1:] {
			colon := strings.IndexByte(kv, ':')
			if colon < 0 {
				return fmt.Errorf("data: %s:%d: bad feature %q", path, lineNo, kv)
			}
			ix, err := strconv.Atoi(kv[:colon])
			if err != nil || ix < 1 {
				return fmt.Errorf("data: %s:%d: bad index %q", path, lineNo, kv)
			}
			v, err := strconv.ParseFloat(kv[colon+1:], 64)
			if err != nil {
				return fmt.Errorf("data: %s:%d: bad value %q", path, lineNo, kv)
			}
			idx = append(idx, ix-1)
			val = append(val, v)
		}
		row, err := vec.SortedCopy(idx, val)
		if err != nil {
			return fmt.Errorf("data: %s:%d: %w", path, lineNo, err)
		}
		if err := fn(row, y); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("data: %w", err)
	}
	return nil
}

// remap01 rewrites ys in place from {0,1} to {−1,+1} when the label
// set is exactly {0,1}, and returns the class count the loaders
// report (distinct labels, minimum 2).
func remap01(ys []float64, labels map[float64]bool) int {
	if len(labels) == 2 && labels[0] && labels[1] {
		for i := range ys {
			ys[i] = 2*ys[i] - 1
		}
	}
	classes := len(labels)
	if classes < 2 {
		classes = 2
	}
	return classes
}
