package data

import (
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Stream is a lazily generated synthetic dataset: rows are derived
// deterministically from (Seed, index) on every access, so paper-scale
// workloads (HIGGS's 10.5M rows, the 50M-row scalability sweeps of
// Figure 2) can be trained on without ever materializing the data —
// the same role Bismarck's data synthesizer plays in the paper.
//
// Stream implements sgd.Samples. At reuses a scratch buffer; do not
// share one Stream across concurrent runs.
type Stream struct {
	Seed int64
	M    int
	D    int
	// Spread and Flip follow GenConfig semantics.
	Spread float64
	Flip   float64

	centers [2][]float64
	scratch []float64
}

// NewStream builds a deterministic two-class streaming dataset.
func NewStream(seed int64, m, d int, spread, flip float64) *Stream {
	if m < 1 || d < 1 {
		panic(fmt.Sprintf("data: bad Stream shape m=%d d=%d", m, d))
	}
	s := &Stream{Seed: seed, M: m, D: d, Spread: spread, Flip: flip, scratch: make([]float64, d)}
	r := rand.New(rand.NewSource(seed))
	for c := 0; c < 2; c++ {
		s.centers[c] = make([]float64, d)
		for j := range s.centers[c] {
			s.centers[c][j] = r.NormFloat64()
		}
		vec.Normalize(s.centers[c])
	}
	return s
}

// Len implements sgd.Samples.
func (s *Stream) Len() int { return s.M }

// Dim implements sgd.Samples.
func (s *Stream) Dim() int { return s.D }

// At implements sgd.Samples, regenerating row i deterministically. The
// returned slice is valid until the next At call.
func (s *Stream) At(i int) ([]float64, float64) {
	return s.at(i, s.scratch)
}

// at regenerates row i into the given scratch buffer, so independent
// shard views can scan concurrently.
func (s *Stream) at(i int, scratch []float64) ([]float64, float64) {
	if i < 0 || i >= s.M {
		panic(fmt.Sprintf("data: stream row %d out of range [0,%d)", i, s.M))
	}
	r := rand.New(rand.NewSource(mix(s.Seed, int64(i))))
	c := r.Intn(2)
	center := s.centers[c]
	var norm float64
	for j := range scratch {
		v := center[j] + r.NormFloat64()*s.Spread
		scratch[j] = v
		norm += v * v
	}
	if norm > 1 {
		vec.Scale(scratch, 1/math.Sqrt(norm))
	}
	y := float64(2*c - 1)
	if s.Flip > 0 && r.Float64() < s.Flip {
		y = -y
	}
	return scratch, y
}

// Shard implements engine.Sharder: an independent view of rows
// [lo, hi) with its own scratch buffer, so shards of one Stream can be
// scanned concurrently by the sharded engine. Rows keep their global
// identity — shard row i is stream row lo+i, derived from
// (Seed, lo+i) exactly as through At.
func (s *Stream) Shard(lo, hi int) sgd.Samples {
	return &streamShard{s: s, lo: lo, hi: hi, scratch: make([]float64, s.D)}
}

// streamShard is a read-only row-range view of a Stream with a private
// scratch buffer. The parent's centers are immutable after NewStream,
// so views never race.
type streamShard struct {
	s       *Stream
	lo, hi  int
	scratch []float64
}

func (v *streamShard) Len() int { return v.hi - v.lo }
func (v *streamShard) Dim() int { return v.s.D }
func (v *streamShard) At(i int) ([]float64, float64) {
	if i < 0 || i >= v.hi-v.lo {
		// The parent's own range check would not catch an interior
		// overrun, and shard disjointness is what the /P sensitivity
		// division rests on — fail loudly instead.
		panic(fmt.Sprintf("data: shard row %d out of range [0,%d)", i, v.hi-v.lo))
	}
	return v.s.at(v.lo+i, v.scratch)
}

// Shard keeps views shardable in turn (a view's scratch is as
// concurrency-unsafe as its parent's): sub-shards translate to parent
// coordinates, so sharded runs over a row-range view stay race-free.
func (v *streamShard) Shard(lo, hi int) sgd.Samples {
	return v.s.Shard(v.lo+lo, v.lo+hi)
}

// mix is a splitmix64-style hash combining the stream seed with the row
// index so that neighboring rows get uncorrelated generator states.
func mix(seed, i int64) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
