// Package data provides the training data substrate: an in-memory
// Dataset type implementing sgd.Samples, synthetic generators standing
// in for the paper's benchmark datasets (Table 3 plus Appendix C), a
// LIBSVM-format reader/writer so real datasets can be swapped in, and
// the unit-ball normalization preprocessing the sensitivity analysis
// assumes (§2).
//
// The real MNIST/Protein/Covertype/HIGGS/KDDCup-99 files cannot ship
// with an offline module, so each simulator reproduces the properties
// the algorithms are sensitive to — training-set size m, dimension d,
// class count, and separability (Bayes error) — with Gaussian class
// clusters on the unit sphere. DESIGN.md §4 documents the substitution
// argument per dataset.
package data

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"boltondp/internal/vec"
)

// Dataset is an in-memory labeled dataset. For binary tasks labels are
// ±1; for multiclass tasks labels are class indices 0..Classes-1 stored
// as float64 (use eval.OneVsAll to train binary sub-models).
type Dataset struct {
	Name    string
	X       [][]float64
	Y       []float64
	Classes int // 2 for binary
}

// Len implements sgd.Samples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim implements sgd.Samples.
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// At implements sgd.Samples.
func (d *Dataset) At(i int) ([]float64, float64) { return d.X[i], d.Y[i] }

// Normalize rescales every row to the unit ball in place (no-op for
// rows already inside), establishing the ‖x‖ ≤ 1 invariant.
func (d *Dataset) Normalize() {
	for _, x := range d.X {
		if n := vec.Norm(x); n > 1 {
			vec.Scale(x, 1/n)
		}
	}
}

// MaxNorm returns the largest row norm (≤ 1 after Normalize).
func (d *Dataset) MaxNorm() float64 {
	var m float64
	for _, x := range d.X {
		if n := vec.Norm(x); n > m {
			m = n
		}
	}
	return m
}

// Split partitions the dataset into a training set of the given
// fraction and a test set of the remainder, after a random shuffle.
func (d *Dataset) Split(r *rand.Rand, trainFrac float64) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("data: trainFrac must be in (0,1), got %v", trainFrac))
	}
	perm := r.Perm(len(d.X))
	cut := int(float64(len(d.X)) * trainFrac)
	mk := func(idx []int, suffix string) *Dataset {
		out := &Dataset{Name: d.Name + suffix, Classes: d.Classes}
		out.X = make([][]float64, len(idx))
		out.Y = make([]float64, len(idx))
		for i, j := range idx {
			out.X[i] = d.X[j]
			out.Y[i] = d.Y[j]
		}
		return out
	}
	return mk(perm[:cut], "-train"), mk(perm[cut:], "-test")
}

// Portions divides the dataset into n (nearly) equal disjoint portions
// — the l+1-way split of the private tuning Algorithm 3, line 2.
func (d *Dataset) Portions(r *rand.Rand, n int) []*Dataset {
	if n < 1 || n > len(d.X) {
		panic(fmt.Sprintf("data: cannot split %d rows into %d portions", len(d.X), n))
	}
	perm := r.Perm(len(d.X))
	out := make([]*Dataset, n)
	size := len(d.X) / n
	for p := 0; p < n; p++ {
		lo := p * size
		hi := lo + size
		if p == n-1 {
			hi = len(d.X)
		}
		ds := &Dataset{Name: fmt.Sprintf("%s-part%d", d.Name, p), Classes: d.Classes}
		for _, j := range perm[lo:hi] {
			ds.X = append(ds.X, d.X[j])
			ds.Y = append(ds.Y, d.Y[j])
		}
		out[p] = ds
	}
	return out
}

// GenConfig parameterizes the synthetic cluster generator.
type GenConfig struct {
	Name    string
	M       int     // number of examples
	D       int     // dimension
	Classes int     // ≥ 2
	Spread  float64 // cluster standard deviation (controls separability)
	Flip    float64 // label noise probability (controls Bayes error)
}

// Synthetic generates M examples from Classes Gaussian clusters whose
// centers are drawn uniformly on the unit sphere, normalizes rows to
// the unit ball and flips each label with probability Flip. For binary
// problems (Classes == 2) labels are ±1; otherwise class indices.
func Synthetic(r *rand.Rand, cfg GenConfig) *Dataset {
	if cfg.M < 1 || cfg.D < 1 || cfg.Classes < 2 {
		panic(fmt.Sprintf("data: bad GenConfig %+v", cfg))
	}
	centers := make([][]float64, cfg.Classes)
	for c := range centers {
		centers[c] = make([]float64, cfg.D)
		for j := range centers[c] {
			centers[c][j] = r.NormFloat64()
		}
		vec.Normalize(centers[c])
	}
	d := &Dataset{Name: cfg.Name, Classes: cfg.Classes}
	d.X = make([][]float64, cfg.M)
	d.Y = make([]float64, cfg.M)
	for i := 0; i < cfg.M; i++ {
		c := r.Intn(cfg.Classes)
		x := make([]float64, cfg.D)
		for j := range x {
			x[j] = centers[c][j] + r.NormFloat64()*cfg.Spread
		}
		if n := vec.Norm(x); n > 1 {
			vec.Scale(x, 1/n)
		}
		d.X[i] = x
		label := c
		if cfg.Flip > 0 && r.Float64() < cfg.Flip {
			label = r.Intn(cfg.Classes)
		}
		if cfg.Classes == 2 {
			d.Y[i] = float64(2*label - 1) // 0,1 → -1,+1
		} else {
			d.Y[i] = float64(label)
		}
	}
	return d
}

// scaled returns max(int(x*scale), min).
func scaled(x int, scale float64, min int) int {
	m := int(float64(x) * scale)
	if m < min {
		m = min
	}
	return m
}

// MNISTSim simulates the MNIST task of Table 3: 10 classes in 784
// dimensions, 60,000 train / 10,000 test examples at scale 1. Feature
// vectors live on the unit sphere; use projection.New to reduce to 50
// dimensions exactly as §4.3 does before private training.
func MNISTSim(r *rand.Rand, scale float64) (train, test *Dataset) {
	full := Synthetic(r, GenConfig{
		Name: "mnist-sim", M: scaled(70000, scale, 700), D: 784, Classes: 10,
		Spread: 0.075, Flip: 0.02,
	})
	n := full.Len()
	cut := n * 6 / 7 // 60k/10k ratio
	train = &Dataset{Name: "mnist-sim-train", Classes: 10, X: full.X[:cut], Y: full.Y[:cut]}
	test = &Dataset{Name: "mnist-sim-test", Classes: 10, X: full.X[cut:], Y: full.Y[cut:]}
	return train, test
}

// ProteinSim simulates the Protein dataset: binary, 74 dimensions,
// 72,876 train / 72,875 test at scale 1 (the paper halves the original
// training file). Logistic regression fits it well (§4.5), so the
// simulator is well-separated with mild label noise.
func ProteinSim(r *rand.Rand, scale float64) (train, test *Dataset) {
	full := Synthetic(r, GenConfig{
		Name: "protein-sim", M: scaled(145751, scale, 200), D: 74, Classes: 2,
		Spread: 0.45, Flip: 0.03,
	})
	n := full.Len()
	cut := n / 2
	train = &Dataset{Name: "protein-sim-train", Classes: 2, X: full.X[:cut], Y: full.Y[:cut]}
	test = &Dataset{Name: "protein-sim-test", Classes: 2, X: full.X[cut:], Y: full.Y[cut:]}
	return train, test
}

// CovtypeSim simulates Forest Covertype (binarized): 54 dimensions,
// 498,010 train / 83,002 test at scale 1. Moderately hard: the paper's
// noiseless accuracy sits near 0.75.
func CovtypeSim(r *rand.Rand, scale float64) (train, test *Dataset) {
	full := Synthetic(r, GenConfig{
		Name: "covtype-sim", M: scaled(581012, scale, 600), D: 54, Classes: 2,
		Spread: 0.95, Flip: 0.08,
	})
	n := full.Len()
	cut := n * 857 / 1000 // 498010/581012
	train = &Dataset{Name: "covtype-sim-train", Classes: 2, X: full.X[:cut], Y: full.Y[:cut]}
	test = &Dataset{Name: "covtype-sim-test", Classes: 2, X: full.X[cut:], Y: full.Y[cut:]}
	return train, test
}

// HIGGSSim simulates HIGGS (Appendix C): binary, 28 dimensions,
// 10,500,000 train at scale 1 — the "privacy for free at large m"
// regime. It is a hard task: noiseless accuracy is only ~0.64.
func HIGGSSim(r *rand.Rand, scale float64) (train, test *Dataset) {
	full := Synthetic(r, GenConfig{
		Name: "higgs-sim", M: scaled(11000000, scale, 1100), D: 28, Classes: 2,
		Spread: 1.6, Flip: 0.18,
	})
	n := full.Len()
	cut := n * 21 / 22 // 10.5M train / 0.5M test
	train = &Dataset{Name: "higgs-sim-train", Classes: 2, X: full.X[:cut], Y: full.Y[:cut]}
	test = &Dataset{Name: "higgs-sim-test", Classes: 2, X: full.X[cut:], Y: full.Y[cut:]}
	return train, test
}

// KDDSim simulates KDDCup-99 intrusion detection (Appendix C): binary,
// 41 dimensions, 494,021 train at scale 1, and nearly separable — both
// private and noiseless models reach ≈1.0 accuracy quickly.
func KDDSim(r *rand.Rand, scale float64) (train, test *Dataset) {
	full := Synthetic(r, GenConfig{
		Name: "kdd-sim", M: scaled(543423, scale, 550), D: 41, Classes: 2,
		Spread: 0.25, Flip: 0.004,
	})
	n := full.Len()
	cut := n * 10 / 11
	train = &Dataset{Name: "kdd-sim-train", Classes: 2, X: full.X[:cut], Y: full.Y[:cut]}
	test = &Dataset{Name: "kdd-sim-test", Classes: 2, X: full.X[cut:], Y: full.Y[cut:]}
	return train, test
}

// ScaleSim is the analogue of Bismarck's data synthesizer used for the
// scalability experiments (Figure 2): m binary examples in d dimensions
// with a fixed margin, generated deterministically from the seed.
func ScaleSim(seed int64, m, d int) *Dataset {
	r := rand.New(rand.NewSource(seed))
	return Synthetic(r, GenConfig{
		Name: fmt.Sprintf("scale-sim-%d", m), M: m, D: d, Classes: 2,
		Spread: 0.5, Flip: 0.02,
	})
}

// LoadLIBSVM reads a dataset in LIBSVM/SVMlight sparse format
// ("label idx:val idx:val ..." per line, 1-based indices). dim, when
// positive, fixes the dimension; otherwise the maximum index observed
// is used. Labels are kept as parsed; callers wanting ±1 should ensure
// the file uses ±1 (0/1 files are remapped to ±1 as a convenience).
// Duplicate column entries on one line are summed (the canonical form
// every LIBSVM consumer in this repository shares via ScanLIBSVM).
func LoadLIBSVM(path string, dim int) (*Dataset, error) {
	var rows []*vec.Sparse
	var ys []float64
	maxIdx := dim - 1
	labels := map[float64]bool{}
	err := ScanLIBSVM(path, func(row *vec.Sparse, y float64) error {
		if mi := row.MaxIndex(); mi > maxIdx {
			maxIdx = mi
		}
		rows = append(rows, row)
		ys = append(ys, y)
		labels[y] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: %s: no examples", path)
	}
	if maxIdx < 0 {
		return nil, fmt.Errorf("data: %s: no features (dimension 0)", path)
	}

	d := &Dataset{Name: path}
	d.Classes = remap01(ys, labels)
	d.X = make([][]float64, len(rows))
	d.Y = ys
	for i, row := range rows {
		x := make([]float64, maxIdx+1)
		row.Scatter(x)
		d.X[i] = x
	}
	return d, nil
}

// SaveLIBSVM writes the dataset in LIBSVM sparse format.
func SaveLIBSVM(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	w := bufio.NewWriter(f)
	for i, x := range d.X {
		fmt.Fprintf(w, "%g", d.Y[i])
		for j, v := range x {
			if v != 0 {
				fmt.Fprintf(w, " %d:%g", j+1, v)
			}
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("data: %w", err)
	}
	return f.Close()
}

// ClassCounts returns the number of examples per label, sorted by
// label, for reporting (Table 3 style dataset summaries).
func (d *Dataset) ClassCounts() map[float64]int {
	out := map[float64]int{}
	for _, y := range d.Y {
		out[y]++
	}
	return out
}

// Summary returns a one-line Table 3 style description.
func (d *Dataset) Summary() string {
	counts := d.ClassCounts()
	keys := make([]float64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%g:%d", k, counts[k])
	}
	return fmt.Sprintf("%s: m=%d d=%d classes=%d maxnorm=%.3f [%s]",
		d.Name, d.Len(), d.Dim(), d.Classes, d.MaxNorm(), strings.Join(parts, " "))
}
