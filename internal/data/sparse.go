package data

import (
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// SparseDataset stores examples in CSR (compressed sparse row) form.
// It implements both tiers of the engine's data contract: AtSparse
// hands out zero-copy row views straight from the CSR arrays (the
// sparse-native fast path — sgd.Run runs such sources at O(nnz) per
// example), and At scatters into a dense scratch buffer for the
// legacy dense tier. For the one-hot-heavy datasets the paper's
// domain cares about (KDDCup-99 style logs, text), this cuts both
// memory and per-epoch arithmetic by the sparsity factor.
//
// At and AtSparse reuse per-dataset buffers, so — like bismarck.Table
// — a SparseDataset must not be shared across concurrent SGD runs;
// the sharded engine instead goes through Shard, which hands each
// worker an independent view with private buffers.
type SparseDataset struct {
	Name    string
	Classes int

	dim    int
	indptr []int // len = rows+1
	idx    []int
	val    []float64
	y      []float64

	scratch []float64
	row     vec.Sparse // reused AtSparse header (no per-row allocation)
}

// NewSparseDataset creates an empty sparse dataset of the given
// dimension.
func NewSparseDataset(name string, dim int) *SparseDataset {
	if dim < 1 {
		panic(fmt.Sprintf("data: sparse dataset dim %d", dim))
	}
	return &SparseDataset{
		Name: name, Classes: 2, dim: dim,
		indptr: []int{0}, scratch: make([]float64, dim),
	}
}

// FromDense converts a dense Dataset to CSR form.
func FromDense(d *Dataset) *SparseDataset {
	out := NewSparseDataset(d.Name+"-sparse", d.Dim())
	out.Classes = d.Classes
	for i := 0; i < d.Len(); i++ {
		x, y := d.At(i)
		s := vec.DenseToSparse(x)
		if err := out.Append(s, y); err != nil {
			panic(err) // DenseToSparse output is always canonical
		}
	}
	return out
}

// Append adds one example.
func (d *SparseDataset) Append(s *vec.Sparse, y float64) error {
	if s.MaxIndex() >= d.dim {
		return fmt.Errorf("data: sparse row index %d exceeds dim %d", s.MaxIndex(), d.dim)
	}
	d.idx = append(d.idx, s.Idx...)
	d.val = append(d.val, s.Val...)
	d.indptr = append(d.indptr, len(d.idx))
	d.y = append(d.y, y)
	return nil
}

// Len implements sgd.Samples.
func (d *SparseDataset) Len() int { return len(d.y) }

// Dim implements sgd.Samples.
func (d *SparseDataset) Dim() int { return d.dim }

// At implements sgd.Samples; the returned slice is valid until the next
// At call.
func (d *SparseDataset) At(i int) ([]float64, float64) {
	return d.at(i, d.scratch)
}

// at scatters row i into the given scratch buffer, so independent shard
// views can scan concurrently.
func (d *SparseDataset) at(i int, scratch []float64) ([]float64, float64) {
	for j := range scratch {
		scratch[j] = 0
	}
	for k := d.indptr[i]; k < d.indptr[i+1]; k++ {
		scratch[d.idx[k]] = d.val[k]
	}
	return scratch, d.y[i]
}

// AtSparse implements sgd.SparseSamples: a zero-copy view of row i
// into the CSR arrays through a reused header, valid until the next
// AtSparse call. This is what lets sgd.Run execute at O(nnz) per
// example with zero steady-state allocations.
func (d *SparseDataset) AtSparse(i int) (*vec.Sparse, float64) {
	lo, hi := d.indptr[i], d.indptr[i+1]
	d.row.Idx = d.idx[lo:hi]
	d.row.Val = d.val[lo:hi]
	return &d.row, d.y[i]
}

// Shard implements engine.Sharder: an independent read-only view of
// rows [lo, hi) with its own dense scratch, so shards of one
// SparseDataset can be scanned concurrently by the sharded engine (the
// CSR arrays themselves are immutable during training).
func (d *SparseDataset) Shard(lo, hi int) sgd.Samples {
	return &sparseShard{d: d, lo: lo, hi: hi, scratch: make([]float64, d.dim)}
}

type sparseShard struct {
	d       *SparseDataset
	lo, hi  int
	scratch []float64
	row     vec.Sparse
}

func (v *sparseShard) Len() int { return v.hi - v.lo }
func (v *sparseShard) Dim() int { return v.d.dim }
func (v *sparseShard) At(i int) ([]float64, float64) {
	if i < 0 || i >= v.hi-v.lo {
		// Shard disjointness backs the /P sensitivity division; an
		// interior overrun must fail loudly, not read a neighbor's row.
		panic(fmt.Sprintf("data: shard row %d out of range [0,%d)", i, v.hi-v.lo))
	}
	return v.d.at(v.lo+i, v.scratch)
}

// AtSparse keeps shard views on the sparse fast path. The CSR arrays
// are immutable during training and each view carries its own row
// header, so concurrent shard scans never race.
func (v *sparseShard) AtSparse(i int) (*vec.Sparse, float64) {
	if i < 0 || i >= v.hi-v.lo {
		panic(fmt.Sprintf("data: shard row %d out of range [0,%d)", i, v.hi-v.lo))
	}
	j := v.lo + i
	lo, hi := v.d.indptr[j], v.d.indptr[j+1]
	v.row.Idx = v.d.idx[lo:hi]
	v.row.Val = v.d.val[lo:hi]
	return &v.row, v.d.y[j]
}

// Shard keeps views shardable in turn, translating to parent
// coordinates so sharded runs over a row-range view stay race-free.
func (v *sparseShard) Shard(lo, hi int) sgd.Samples {
	return v.d.Shard(v.lo+lo, v.lo+hi)
}

// Row returns the i-th example in sparse form (views into the CSR
// arrays — do not modify).
func (d *SparseDataset) Row(i int) (*vec.Sparse, float64) {
	lo, hi := d.indptr[i], d.indptr[i+1]
	return &vec.Sparse{Idx: d.idx[lo:hi], Val: d.val[lo:hi]}, d.y[i]
}

// NNZ returns the total stored non-zeros.
func (d *SparseDataset) NNZ() int { return len(d.idx) }

// Density returns NNZ / (rows·dim).
func (d *SparseDataset) Density() float64 {
	if d.Len() == 0 {
		return 0
	}
	return float64(d.NNZ()) / (float64(d.Len()) * float64(d.dim))
}

// Normalize rescales every stored row to the unit ball.
func (d *SparseDataset) Normalize() {
	for i := 0; i < d.Len(); i++ {
		lo, hi := d.indptr[i], d.indptr[i+1]
		var sum float64
		for k := lo; k < hi; k++ {
			sum += d.val[k] * d.val[k]
		}
		if sum > 1 {
			inv := 1 / math.Sqrt(sum)
			for k := lo; k < hi; k++ {
				d.val[k] *= inv
			}
		}
	}
}

// LoadLIBSVMSparse reads a LIBSVM file directly into CSR form in one
// streaming pass: rows are appended to the CSR arrays as they are
// parsed (via ScanLIBSVM, the shared grammar), so no dense row and no
// intermediate per-row copy is ever materialized and the density is
// known the moment the single pass ends. dim semantics match
// LoadLIBSVM; 0/1 labels are remapped to ±1.
func LoadLIBSVMSparse(path string, dim int) (*SparseDataset, error) {
	maxIdx := dim - 1
	indptr := []int{0}
	var idx []int
	var val []float64
	var ys []float64
	labels := map[float64]bool{}
	err := ScanLIBSVM(path, func(row *vec.Sparse, y float64) error {
		if mi := row.MaxIndex(); mi > maxIdx {
			maxIdx = mi
		}
		idx = append(idx, row.Idx...)
		val = append(val, row.Val...)
		indptr = append(indptr, len(idx))
		ys = append(ys, y)
		labels[y] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(ys) == 0 {
		return nil, fmt.Errorf("data: %s: no examples", path)
	}
	if maxIdx < 0 {
		return nil, fmt.Errorf("data: %s: no features (dimension 0)", path)
	}

	out := NewSparseDataset(path, maxIdx+1)
	out.Classes = remap01(ys, labels)
	out.indptr, out.idx, out.val, out.y = indptr, idx, val, ys
	return out, nil
}

// ToDense materializes the dataset as a dense Dataset — the inverse of
// FromDense. Used by the sparse-vs-dense parity experiments and by
// callers whose density makes CSR storage a loss.
func (d *SparseDataset) ToDense() *Dataset {
	out := &Dataset{Name: d.Name + "-dense", Classes: d.Classes}
	out.X = make([][]float64, d.Len())
	out.Y = make([]float64, d.Len())
	for i := 0; i < d.Len(); i++ {
		x := make([]float64, d.dim)
		for k := d.indptr[i]; k < d.indptr[i+1]; k++ {
			x[d.idx[k]] = d.val[k]
		}
		out.X[i] = x
		out.Y[i] = d.y[i]
	}
	return out
}

// Split partitions the dataset into a training set of the given
// fraction and a test set of the remainder after a random shuffle —
// the CSR analogue of Dataset.Split, consuming the same amount of
// randomness (one Perm).
func (d *SparseDataset) Split(r *rand.Rand, trainFrac float64) (train, test *SparseDataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("data: trainFrac must be in (0,1), got %v", trainFrac))
	}
	perm := r.Perm(d.Len())
	cut := int(float64(d.Len()) * trainFrac)
	mk := func(idx []int, suffix string) *SparseDataset {
		out := NewSparseDataset(d.Name+suffix, d.dim)
		out.Classes = d.Classes
		for _, j := range idx {
			row, y := d.Row(j)
			if err := out.Append(row, y); err != nil {
				panic(err) // rows of a valid dataset always re-append
			}
		}
		return out
	}
	return mk(perm[:cut], "-train"), mk(perm[cut:], "-test")
}

// KDDSimSparse simulates the paper's KDDCup-99 intrusion-detection
// workload in its natural sparse encoding: the 41 raw features one-hot
// expanded to kddSparseDim columns, ~kddSparseNNZ active per row
// (continuous features plus one hot index per categorical block),
// ≈10% density. Row count follows KDDSim (494,021 train at scale 1);
// separability matches its near-separable regime. Rows are normalized
// to the unit ball, labels are ±1.
func KDDSimSparse(r *rand.Rand, scale float64) (train, test *SparseDataset) {
	m := scaled(543423, scale, 550)
	full := kddSparseGen(r, m)
	cut := m * 10 / 11
	train = full.slice(0, cut, "kdd-sparse-sim-train")
	test = full.slice(cut, m, "kdd-sparse-sim-test")
	return train, test
}

const (
	kddSparseDim = 122 // 41 raw features after one-hot expansion
	kddSparseNNZ = 12  // ~8 continuous + ~4 active one-hot columns → ~10% density
)

// kddSparseGen draws m one-hot-heavy rows: 8 always-on continuous
// columns with class-shifted means, then one hot column per
// categorical block whose choice is class-correlated — the structure
// that makes KDDCup-99 nearly separable.
func kddSparseGen(r *rand.Rand, m int) *SparseDataset {
	out := NewSparseDataset("kdd-sparse-sim", kddSparseDim)
	const continuous = 8
	// Four categorical blocks partition the remaining columns.
	blocks := [][2]int{{8, 40}, {40, 70}, {70, 100}, {100, kddSparseDim}}
	idx := make([]int, 0, kddSparseNNZ)
	val := make([]float64, 0, kddSparseNNZ)
	for i := 0; i < m; i++ {
		label := 1.0
		if r.Float64() < 0.5 {
			label = -1
		}
		idx = idx[:0]
		val = val[:0]
		for j := 0; j < continuous; j++ {
			idx = append(idx, j)
			val = append(val, 0.3*label+r.NormFloat64()*0.25)
		}
		for _, blk := range blocks {
			width := blk[1] - blk[0]
			// Attack and normal traffic favor different halves of each
			// categorical vocabulary; 10% of draws cross over, keeping
			// the task near- but not perfectly separable (KDDSim's
			// Flip≈0.004 analogue lives in the label noise below).
			half := width / 2
			var off int
			if (label > 0) != (r.Float64() < 0.1) {
				off = r.Intn(half)
			} else {
				off = half + r.Intn(width-half)
			}
			idx = append(idx, blk[0]+off)
			val = append(val, 1)
		}
		// Indices are emitted in increasing order by construction, and
		// Append copies, so the reused buffers can back the row directly.
		s, err := vec.NewSparse(idx, val)
		if err != nil {
			panic(err)
		}
		if n := s.Norm(); n > 1 {
			s.Scale(1 / n)
		}
		y := label
		if r.Float64() < 0.004 {
			y = -y
		}
		if err := out.Append(s, y); err != nil {
			panic(err)
		}
	}
	return out
}

// slice copies rows [lo, hi) into a new dataset under the given name.
func (d *SparseDataset) slice(lo, hi int, name string) *SparseDataset {
	out := NewSparseDataset(name, d.dim)
	out.Classes = d.Classes
	for i := lo; i < hi; i++ {
		row, y := d.Row(i)
		if err := out.Append(row, y); err != nil {
			panic(err)
		}
	}
	return out
}

// SparseSynthetic generates a sparse binary classification problem:
// each example activates nnz random coordinates; one block of
// coordinates is class-correlated. Used by the sparse tests and
// benchmarks.
func SparseSynthetic(r *rand.Rand, m, dim, nnz int, flip float64) *SparseDataset {
	if m < 1 || dim < 2 || nnz < 1 || nnz > dim {
		panic(fmt.Sprintf("data: bad SparseSynthetic args m=%d dim=%d nnz=%d", m, dim, nnz))
	}
	if nnz/2+1 > dim/2 {
		// The class-correlated draws come from one half of the index
		// space; a half smaller than nnz/2+1 would make the duplicate
		// rejection loop below spin forever.
		panic(fmt.Sprintf("data: SparseSynthetic needs nnz/2+1 ≤ dim/2, got nnz=%d dim=%d", nnz, dim))
	}
	out := NewSparseDataset("sparse-synth", dim)
	half := dim / 2
	for i := 0; i < m; i++ {
		label := 1.0
		if r.Float64() < 0.5 {
			label = -1
		}
		// Class +1 activates low coordinates, class −1 high ones, plus
		// uniform noise coordinates.
		seen := map[int]bool{}
		var idx []int
		var val []float64
		for len(idx) < nnz {
			var ix int
			if len(idx) < nnz/2+1 {
				if label > 0 {
					ix = r.Intn(half)
				} else {
					ix = half + r.Intn(dim-half)
				}
			} else {
				ix = r.Intn(dim)
			}
			if seen[ix] {
				continue
			}
			seen[ix] = true
			idx = append(idx, ix)
			val = append(val, 0.5+r.Float64())
		}
		s, err := vec.SortedCopy(idx, val)
		if err != nil {
			panic(err)
		}
		// Normalize the row to the unit ball.
		if n := s.Norm(); n > 1 {
			s.Scale(1 / n)
		}
		y := label
		if flip > 0 && r.Float64() < flip {
			y = -y
		}
		if err := out.Append(s, y); err != nil {
			panic(err)
		}
	}
	return out
}
