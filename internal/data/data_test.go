package data

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"boltondp/internal/vec"
)

func TestSyntheticBasics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := Synthetic(r, GenConfig{Name: "t", M: 500, D: 10, Classes: 2, Spread: 0.5})
	if d.Len() != 500 || d.Dim() != 10 || d.Classes != 2 {
		t.Fatalf("shape: %d x %d, classes %d", d.Len(), d.Dim(), d.Classes)
	}
	for i := 0; i < d.Len(); i++ {
		x, y := d.At(i)
		if n := vec.Norm(x); n > 1+1e-12 {
			t.Fatalf("row %d has norm %v > 1", i, n)
		}
		if y != 1 && y != -1 {
			t.Fatalf("binary label %v", y)
		}
	}
}

func TestSyntheticMulticlassLabels(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d := Synthetic(r, GenConfig{Name: "t", M: 1000, D: 5, Classes: 4, Spread: 0.5})
	counts := d.ClassCounts()
	if len(counts) != 4 {
		t.Fatalf("expected 4 classes, got %v", counts)
	}
	for c, n := range counts {
		if c < 0 || c > 3 || c != math.Trunc(c) {
			t.Errorf("bad class label %v", c)
		}
		if n < 100 {
			t.Errorf("class %v has only %d examples (imbalanced generator?)", c, n)
		}
	}
}

func TestSyntheticPanics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, cfg := range []GenConfig{
		{M: 0, D: 1, Classes: 2},
		{M: 1, D: 0, Classes: 2},
		{M: 1, D: 1, Classes: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Synthetic(%+v) did not panic", cfg)
				}
			}()
			Synthetic(r, cfg)
		}()
	}
}

func TestSplit(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := Synthetic(r, GenConfig{Name: "t", M: 1000, D: 3, Classes: 2, Spread: 0.5})
	train, test := d.Split(r, 0.8)
	if train.Len() != 800 || test.Len() != 200 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	if train.Classes != 2 || test.Classes != 2 {
		t.Error("Classes not propagated")
	}
	// Disjoint and exhaustive: total mass preserved.
	if train.Len()+test.Len() != d.Len() {
		t.Error("split lost examples")
	}
}

func TestSplitPanics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := Synthetic(r, GenConfig{Name: "t", M: 10, D: 2, Classes: 2, Spread: 0.5})
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Split(%v) did not panic", frac)
				}
			}()
			d.Split(r, frac)
		}()
	}
}

func TestPortions(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	d := Synthetic(r, GenConfig{Name: "t", M: 103, D: 2, Classes: 2, Spread: 0.5})
	parts := d.Portions(r, 4)
	if len(parts) != 4 {
		t.Fatalf("got %d portions", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != 103 {
		t.Errorf("portions cover %d of 103 rows", total)
	}
	// First three equal size, last takes the remainder.
	if parts[0].Len() != 25 || parts[3].Len() != 28 {
		t.Errorf("portion sizes: %d,%d,%d,%d", parts[0].Len(), parts[1].Len(), parts[2].Len(), parts[3].Len())
	}
}

func TestSimulatorsMatchTable3Shapes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const scale = 0.01
	mtr, mte := MNISTSim(r, scale)
	if mtr.Dim() != 784 || mtr.Classes != 10 || mte.Classes != 10 {
		t.Errorf("mnist sim: d=%d classes=%d", mtr.Dim(), mtr.Classes)
	}
	if ratio := float64(mtr.Len()) / float64(mtr.Len()+mte.Len()); math.Abs(ratio-6.0/7) > 0.01 {
		t.Errorf("mnist train ratio %v, want ~6/7", ratio)
	}
	ptr, pte := ProteinSim(r, scale)
	if ptr.Dim() != 74 || ptr.Classes != 2 {
		t.Errorf("protein sim: d=%d classes=%d", ptr.Dim(), ptr.Classes)
	}
	if math.Abs(float64(ptr.Len())-float64(pte.Len())) > 1 {
		t.Errorf("protein halves: %d vs %d", ptr.Len(), pte.Len())
	}
	ctr, _ := CovtypeSim(r, scale)
	if ctr.Dim() != 54 {
		t.Errorf("covtype d=%d", ctr.Dim())
	}
	htr, _ := HIGGSSim(r, 0.001)
	if htr.Dim() != 28 {
		t.Errorf("higgs d=%d", htr.Dim())
	}
	ktr, _ := KDDSim(r, scale)
	if ktr.Dim() != 41 {
		t.Errorf("kdd d=%d", ktr.Dim())
	}
	for _, d := range []*Dataset{mtr, ptr, ctr, htr, ktr} {
		if d.MaxNorm() > 1+1e-12 {
			t.Errorf("%s: max norm %v > 1", d.Name, d.MaxNorm())
		}
	}
}

func TestScaleSimDeterministic(t *testing.T) {
	a := ScaleSim(42, 100, 5)
	b := ScaleSim(42, 100, 5)
	for i := range a.X {
		if !vec.Equal(a.X[i], b.X[i], 0) || a.Y[i] != b.Y[i] {
			t.Fatal("ScaleSim is not deterministic")
		}
	}
}

func TestLIBSVMRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rt.libsvm")
	r := rand.New(rand.NewSource(8))
	d := Synthetic(r, GenConfig{Name: "t", M: 50, D: 6, Classes: 2, Spread: 0.5})
	if err := SaveLIBSVM(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLIBSVM(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.Dim() != d.Dim() {
		t.Fatalf("round trip shape %dx%d, want %dx%d", got.Len(), got.Dim(), d.Len(), d.Dim())
	}
	for i := range d.X {
		if !vec.Equal(got.X[i], d.X[i], 1e-9) {
			t.Fatalf("row %d: %v != %v", i, got.X[i], d.X[i])
		}
		if got.Y[i] != d.Y[i] {
			t.Fatalf("label %d: %v != %v", i, got.Y[i], d.Y[i])
		}
	}
}

func TestLoadLIBSVMZeroOneLabels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "zo.libsvm")
	content := "0 1:0.5\n1 2:0.25\n\n# comment\n0 1:0.1 3:0.2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadLIBSVM(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	if d.Dim() != 3 {
		t.Fatalf("dim = %d (inferred from max index)", d.Dim())
	}
	if d.Y[0] != -1 || d.Y[1] != 1 || d.Y[2] != -1 {
		t.Errorf("0/1 labels not remapped: %v", d.Y)
	}
}

func TestLoadLIBSVMErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"bad label":   "x 1:0.5\n",
		"bad feature": "1 nope\n",
		"bad index":   "1 0:0.5\n",
		"bad value":   "1 1:abc\n",
		"empty":       "\n\n",
		// Labels without any feature would produce a dimension-0
		// dataset (found by FuzzLoadLIBSVM).
		"no features": "0\n1\n",
	}
	for name, content := range cases {
		if _, err := LoadLIBSVM(write(name+".libsvm", content), 0); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := LoadLIBSVM(filepath.Join(dir, "missing.libsvm"), 0); err == nil {
		t.Error("missing file: expected error")
	}
}

func TestNormalizeAndMaxNorm(t *testing.T) {
	d := &Dataset{
		Name:    "t",
		X:       [][]float64{{3, 4}, {0.1, 0}},
		Y:       []float64{1, -1},
		Classes: 2,
	}
	if d.MaxNorm() != 5 {
		t.Errorf("MaxNorm = %v", d.MaxNorm())
	}
	d.Normalize()
	if math.Abs(d.MaxNorm()-1) > 1e-12 {
		t.Errorf("after Normalize MaxNorm = %v", d.MaxNorm())
	}
	// Small rows untouched.
	if !vec.Equal(d.X[1], []float64{0.1, 0}, 0) {
		t.Errorf("interior row rescaled: %v", d.X[1])
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	d := Synthetic(r, GenConfig{Name: "sum", M: 20, D: 3, Classes: 2, Spread: 0.5})
	if s := d.Summary(); s == "" {
		t.Error("empty Summary")
	}
}

// Property: generated rows always inside the unit ball, labels valid,
// across random generator configurations.
func TestSyntheticInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		classes := 2 + r.Intn(4)
		d := Synthetic(r, GenConfig{
			Name: "p", M: 1 + r.Intn(100), D: 1 + r.Intn(20),
			Classes: classes, Spread: r.Float64() * 2, Flip: r.Float64() * 0.3,
		})
		for i := 0; i < d.Len(); i++ {
			x, y := d.At(i)
			if vec.Norm(x) > 1+1e-12 {
				return false
			}
			if classes == 2 {
				if y != 1 && y != -1 {
					return false
				}
			} else if y < 0 || y >= float64(classes) || y != math.Trunc(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
