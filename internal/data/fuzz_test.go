package data

import (
	"os"
	"path/filepath"
	"testing"
)

// The LIBSVM parsers accept arbitrary user files and must never panic:
// malformed input is an error, not a crash. Both parsers must also
// agree on validity (they implement the same grammar).
func FuzzLoadLIBSVM(f *testing.F) {
	f.Add("1 1:0.5 3:0.25\n-1 2:1\n")
	f.Add("0 1:1\n1 2:2\n")
	f.Add("# comment\n\n1 1:1\n")
	f.Add("x 1:1\n")
	f.Add("1 0:1\n")
	f.Add("1 1:\n")
	f.Add("1 :5\n")
	f.Add("1 1:1e300 2:-1e300\n")
	f.Add("3.5 10:0.1\n")
	// Malformed feature indices: zero, negative, non-numeric, and an
	// index that overflows int. All must error, never panic.
	f.Add("1 -2:5\n")
	f.Add("1 x:1\n")
	f.Add("1 99999999999999999999:1\n")
	// Out-of-order and duplicate columns (both loaders accept; the
	// sparse loader canonicalizes through vec.SortedCopy).
	f.Add("1 5:1 2:1\n")
	f.Add("1 2:1 2:3\n")
	f.Add("-1 3:0.5 2:0.5 2:0.25\n")
	// Truncated lines: a dangling pair, a bare label, a file cut
	// mid-token, and CRLF endings.
	f.Add("1 1:1 2\n")
	f.Add("1\n-1 1:1\n")
	f.Add("1 1:0.5 3:0.2")
	f.Add("1 1:0.5\r\n-1 2:1\r\n")
	// Exotic-but-parseable values the scorer must survive.
	f.Add("1 1:NaN 2:Inf\n")
	f.Add("1e1 1:+0.5 2:-0\n")
	f.Fuzz(func(t *testing.T, content string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "f.libsvm")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Skip()
		}
		dense, denseErr := LoadLIBSVM(path, 0)
		sparse, sparseErr := LoadLIBSVMSparse(path, 0)
		if (denseErr == nil) != (sparseErr == nil) {
			t.Fatalf("parsers disagree on validity: dense=%v sparse=%v", denseErr, sparseErr)
		}
		if denseErr != nil {
			return
		}
		if dense.Len() != sparse.Len() {
			t.Fatalf("row counts differ: %d vs %d", dense.Len(), sparse.Len())
		}
		if dense.Len() > 0 && dense.Dim() != sparse.Dim() {
			t.Fatalf("dims differ: %d vs %d", dense.Dim(), sparse.Dim())
		}
	})
}

// Stream generation must hold its invariants for any seed/shape.
func FuzzStreamInvariants(f *testing.F) {
	f.Add(int64(1), 10, 3)
	f.Add(int64(-5), 1, 1)
	f.Add(int64(99), 100, 20)
	f.Fuzz(func(t *testing.T, seed int64, m, d int) {
		if m < 1 || m > 200 || d < 1 || d > 50 {
			t.Skip()
		}
		s := NewStream(seed, m, d, 0.4, 0.05)
		for i := 0; i < m; i++ {
			x, y := s.At(i)
			var n float64
			for _, v := range x {
				n += v * v
			}
			if n > 1+1e-9 {
				t.Fatalf("row %d norm² = %v", i, n)
			}
			if y != 1 && y != -1 {
				t.Fatalf("label %v", y)
			}
		}
	})
}
