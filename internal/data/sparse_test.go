package data

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func TestFromDenseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	dense := Synthetic(r, GenConfig{Name: "t", M: 100, D: 12, Classes: 2, Spread: 0.4})
	// Zero out some coordinates to make it genuinely sparse.
	for _, x := range dense.X {
		for j := range x {
			if j%3 != 0 {
				x[j] = 0
			}
		}
	}
	sp := FromDense(dense)
	if sp.Len() != dense.Len() || sp.Dim() != dense.Dim() {
		t.Fatalf("shape %dx%d, want %dx%d", sp.Len(), sp.Dim(), dense.Len(), dense.Dim())
	}
	for i := 0; i < dense.Len(); i++ {
		dx, dy := dense.At(i)
		sx, sy := sp.At(i)
		if !vec.Equal(dx, sx, 0) || dy != sy {
			t.Fatalf("row %d mismatch", i)
		}
	}
	if sp.Density() >= 0.5 {
		t.Errorf("density %v not sparse", sp.Density())
	}
	if sp.NNZ() == 0 {
		t.Error("no stored non-zeros")
	}
}

func TestSparseAppendValidation(t *testing.T) {
	d := NewSparseDataset("t", 5)
	s, _ := vec.NewSparse([]int{7}, []float64{1})
	if err := d.Append(s, 1); err == nil {
		t.Error("out-of-range index accepted")
	}
	ok, _ := vec.NewSparse([]int{4}, []float64{1})
	if err := d.Append(ok, 1); err != nil {
		t.Errorf("valid append rejected: %v", err)
	}
}

func TestSparseRowView(t *testing.T) {
	d := NewSparseDataset("t", 4)
	s, _ := vec.NewSparse([]int{1, 3}, []float64{2, 4})
	d.Append(s, -1)
	row, y := d.Row(0)
	if y != -1 || row.NNZ() != 2 || row.Idx[1] != 3 || row.Val[1] != 4 {
		t.Errorf("Row = %v/%v y=%v", row.Idx, row.Val, y)
	}
}

func TestSparseNormalize(t *testing.T) {
	d := NewSparseDataset("t", 3)
	big, _ := vec.NewSparse([]int{0, 1}, []float64{3, 4})
	small, _ := vec.NewSparse([]int{2}, []float64{0.5})
	d.Append(big, 1)
	d.Append(small, -1)
	d.Normalize()
	r0, _ := d.Row(0)
	if math.Abs(r0.Norm()-1) > 1e-12 {
		t.Errorf("big row norm %v", r0.Norm())
	}
	r1, _ := d.Row(1)
	if r1.Val[0] != 0.5 {
		t.Error("small row should be untouched")
	}
}

func TestLoadLIBSVMSparseMatchesDense(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.libsvm")
	content := "1 1:0.5 3:0.25\n-1 2:1\n1 1:0.1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := LoadLIBSVMSparse(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	de, err := LoadLIBSVM(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != de.Len() || sp.Dim() != de.Dim() {
		t.Fatalf("sparse %dx%d vs dense %dx%d", sp.Len(), sp.Dim(), de.Len(), de.Dim())
	}
	for i := 0; i < de.Len(); i++ {
		sx, sy := sp.At(i)
		dx, dy := de.At(i)
		if !vec.Equal(sx, dx, 0) || sy != dy {
			t.Fatalf("row %d: sparse %v/%v dense %v/%v", i, sx, sy, dx, dy)
		}
	}
}

func TestLoadLIBSVMSparseErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for name, content := range map[string]string{
		"bad label": "x 1:1\n", "bad pair": "1 nope\n", "bad idx": "1 0:1\n",
		"bad val": "1 1:zz\n", "empty": "\n",
	} {
		if _, err := LoadLIBSVMSparse(write(name, content), 0); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := LoadLIBSVMSparse(filepath.Join(dir, "nope"), 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSparseSyntheticInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d := SparseSynthetic(r, 500, 200, 10, 0.02)
	if d.Len() != 500 || d.Dim() != 200 {
		t.Fatalf("shape %dx%d", d.Len(), d.Dim())
	}
	if den := d.Density(); den > 0.08 {
		t.Errorf("density %v too high for nnz=10/200", den)
	}
	for i := 0; i < d.Len(); i++ {
		row, y := d.Row(i)
		if row.Norm() > 1+1e-12 {
			t.Fatalf("row %d norm %v", i, row.Norm())
		}
		if y != 1 && y != -1 {
			t.Fatalf("label %v", y)
		}
	}
}

func TestSparseSyntheticPanics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	defer func() {
		if recover() == nil {
			t.Error("nnz > dim accepted")
		}
	}()
	SparseSynthetic(r, 10, 5, 6, 0)
}

// Shapes whose class-correlated draws cannot fit in one half of the
// index space must be rejected up front — the generation loop would
// otherwise spin forever rejecting duplicates.
func TestSparseGeneratorsRejectOverfullHalf(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: nnz/2+1 > dim/2 accepted", name)
			}
		}()
		f()
	}
	r := rand.New(rand.NewSource(4))
	mustPanic("SparseSynthetic", func() { SparseSynthetic(r, 10, 3, 2, 0) })
	mustPanic("NewSparseStream", func() { NewSparseStream(1, 10, 4, 4, 0) })
}

func TestAtSparseMatchesAt(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	d := SparseSynthetic(r, 200, 50, 5, 0)
	for i := 0; i < d.Len(); i++ {
		dense, dy := d.At(i)
		dc := make([]float64, len(dense))
		copy(dc, dense) // At and AtSparse share the receiver's buffers
		row, sy := d.AtSparse(i)
		if sy != dy {
			t.Fatalf("row %d label %v vs %v", i, sy, dy)
		}
		back := make([]float64, d.Dim())
		row.Scatter(back)
		if !vec.Equal(dc, back, 0) {
			t.Fatalf("row %d sparse/dense mismatch", i)
		}
	}
}

// AtSparse must hand out views without allocating — the property the
// sparse kernel's 0 allocs/op guarantee rests on.
func TestAtSparseDoesNotAllocate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := SparseSynthetic(r, 64, 50, 5, 0)
	sh := d.Shard(0, 32).(sgd.SparseSamples)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		d.AtSparse(i)
		sh.AtSparse(i % 32)
		i = (i + 1) % 64
	})
	if allocs > 0 {
		t.Errorf("AtSparse allocates %v per call", allocs)
	}
}

func TestSparseShardAtSparse(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	d := SparseSynthetic(r, 100, 30, 4, 0)
	sh := d.Shard(20, 60).(sgd.SparseSamples)
	for i := 0; i < 40; i++ {
		want, wy := d.Row(20 + i)
		got, gy := sh.AtSparse(i)
		if gy != wy || got.NNZ() != want.NNZ() {
			t.Fatalf("shard row %d mismatch", i)
		}
		for k := range want.Idx {
			if got.Idx[k] != want.Idx[k] || got.Val[k] != want.Val[k] {
				t.Fatalf("shard row %d coord %d mismatch", i, k)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("shard overrun not caught")
		}
	}()
	sh.AtSparse(40)
}

func TestToDenseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	sp := SparseSynthetic(r, 150, 40, 6, 0.02)
	de := sp.ToDense()
	if de.Len() != sp.Len() || de.Dim() != sp.Dim() || de.Classes != sp.Classes {
		t.Fatalf("shape %dx%d classes %d", de.Len(), de.Dim(), de.Classes)
	}
	back := FromDense(de)
	for i := 0; i < sp.Len(); i++ {
		a, ay := sp.Row(i)
		b, by := back.Row(i)
		if ay != by || a.NNZ() != b.NNZ() {
			t.Fatalf("row %d changed through the round trip", i)
		}
	}
}

// Split must consume the same randomness as Dataset.Split so sparse
// and dense CLI runs with one seed see identical partitions.
func TestSparseSplitMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	sp := SparseSynthetic(r, 120, 25, 4, 0)
	de := sp.ToDense()
	sTr, sTe := sp.Split(rand.New(rand.NewSource(5)), 0.75)
	dTr, dTe := de.Split(rand.New(rand.NewSource(5)), 0.75)
	if sTr.Len() != dTr.Len() || sTe.Len() != dTe.Len() {
		t.Fatalf("split sizes differ: %d/%d vs %d/%d", sTr.Len(), sTe.Len(), dTr.Len(), dTe.Len())
	}
	for i := 0; i < sTr.Len(); i++ {
		sx, sy := sTr.At(i)
		dx, dy := dTr.At(i)
		if sy != dy || !vec.Equal(sx, dx, 0) {
			t.Fatalf("train row %d differs across representations", i)
		}
	}
}

func TestKDDSimSparse(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	train, test := KDDSimSparse(r, 0.01)
	if train.Len() < 400 || test.Len() < 40 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	if train.Dim() != 122 {
		t.Errorf("dim %d, want 122", train.Dim())
	}
	den := train.Density()
	if den < 0.05 || den > 0.15 {
		t.Errorf("density %v, want ≈0.10", den)
	}
	for i := 0; i < train.Len(); i++ {
		row, y := train.Row(i)
		if row.Norm() > 1+1e-12 {
			t.Fatalf("row %d norm %v", i, row.Norm())
		}
		if y != 1 && y != -1 {
			t.Fatalf("label %v", y)
		}
	}
	// The workload must be learnable: a noiseless sparse run separates it.
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	res, err := sgd.Run(train, sgd.Config{
		Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 3, Batch: 10, Radius: 100, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < test.Len(); i++ {
		row, y := test.AtSparse(i)
		if math.Copysign(1, row.Dot(res.W)) == y {
			correct++
		}
	}
	if acc := float64(correct) / float64(test.Len()); acc < 0.9 {
		t.Errorf("test accuracy %v on the near-separable workload", acc)
	}
}

func TestSparseStreamDeterminismAndSharding(t *testing.T) {
	s := NewSparseStream(3, 200, 500, 25, 0.01)
	// Row regeneration is deterministic.
	r1, y1 := s.AtSparse(17)
	idx := append([]int(nil), r1.Idx...)
	val := append([]float64(nil), r1.Val...)
	r2, y2 := s.AtSparse(17)
	if y1 != y2 || r2.NNZ() != len(idx) {
		t.Fatal("row 17 not deterministic")
	}
	for k := range idx {
		if r2.Idx[k] != idx[k] || r2.Val[k] != val[k] {
			t.Fatal("row 17 coordinates not deterministic")
		}
	}
	if r1.NNZ() != 25 {
		t.Errorf("NNZ %d, want 25", r1.NNZ())
	}
	if n := r1.Norm(); n > 1+1e-12 {
		t.Errorf("row norm %v", n)
	}
	// Shards preserve global row identity and stay in range.
	sh := s.Shard(100, 150).(sgd.SparseSamples)
	rowS, yS := sh.AtSparse(3)
	rowG, yG := s.AtSparse(103)
	if yS != yG || rowS.NNZ() != rowG.NNZ() {
		t.Fatal("shard row 3 != stream row 103")
	}
	// At and AtSparse agree.
	dense, dy := s.At(42)
	row, sy := s.AtSparse(42)
	if dy != sy {
		t.Fatal("At/AtSparse label mismatch")
	}
	back := make([]float64, s.Dim())
	row.Scatter(back)
	if !vec.Equal(dense, back, 0) {
		t.Fatal("At/AtSparse row mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("shard overrun not caught")
		}
	}()
	sh.AtSparse(50)
}

// A SparseDataset must plug directly into the private trainer — the
// whole point of implementing sgd.Samples.
func TestSparseDatasetTrainsPrivately(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := SparseSynthetic(r, 3000, 100, 8, 0.02)
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	res, err := sgd.Run(d, sgd.Config{
		Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 5, Batch: 20, Radius: 100, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < d.Len(); i++ {
		x, y := d.At(i)
		if math.Copysign(1, vec.Dot(res.W, x)) == y {
			correct++
		}
	}
	acc := float64(correct) / float64(d.Len())
	if acc < 0.8 {
		t.Errorf("sparse training accuracy %v", acc)
	}
	// And the output-perturbation step works on top.
	priv, err := dp.Budget{Epsilon: 1}.Perturb(r, res.W,
		dp.SensitivityStronglyConvex(p.L, p.Gamma, d.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if len(priv) != 100 {
		t.Error("bad private model")
	}
}
