package data

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func TestFromDenseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	dense := Synthetic(r, GenConfig{Name: "t", M: 100, D: 12, Classes: 2, Spread: 0.4})
	// Zero out some coordinates to make it genuinely sparse.
	for _, x := range dense.X {
		for j := range x {
			if j%3 != 0 {
				x[j] = 0
			}
		}
	}
	sp := FromDense(dense)
	if sp.Len() != dense.Len() || sp.Dim() != dense.Dim() {
		t.Fatalf("shape %dx%d, want %dx%d", sp.Len(), sp.Dim(), dense.Len(), dense.Dim())
	}
	for i := 0; i < dense.Len(); i++ {
		dx, dy := dense.At(i)
		sx, sy := sp.At(i)
		if !vec.Equal(dx, sx, 0) || dy != sy {
			t.Fatalf("row %d mismatch", i)
		}
	}
	if sp.Density() >= 0.5 {
		t.Errorf("density %v not sparse", sp.Density())
	}
	if sp.NNZ() == 0 {
		t.Error("no stored non-zeros")
	}
}

func TestSparseAppendValidation(t *testing.T) {
	d := NewSparseDataset("t", 5)
	s, _ := vec.NewSparse([]int{7}, []float64{1})
	if err := d.Append(s, 1); err == nil {
		t.Error("out-of-range index accepted")
	}
	ok, _ := vec.NewSparse([]int{4}, []float64{1})
	if err := d.Append(ok, 1); err != nil {
		t.Errorf("valid append rejected: %v", err)
	}
}

func TestSparseRowView(t *testing.T) {
	d := NewSparseDataset("t", 4)
	s, _ := vec.NewSparse([]int{1, 3}, []float64{2, 4})
	d.Append(s, -1)
	row, y := d.Row(0)
	if y != -1 || row.NNZ() != 2 || row.Idx[1] != 3 || row.Val[1] != 4 {
		t.Errorf("Row = %v/%v y=%v", row.Idx, row.Val, y)
	}
}

func TestSparseNormalize(t *testing.T) {
	d := NewSparseDataset("t", 3)
	big, _ := vec.NewSparse([]int{0, 1}, []float64{3, 4})
	small, _ := vec.NewSparse([]int{2}, []float64{0.5})
	d.Append(big, 1)
	d.Append(small, -1)
	d.Normalize()
	r0, _ := d.Row(0)
	if math.Abs(r0.Norm()-1) > 1e-12 {
		t.Errorf("big row norm %v", r0.Norm())
	}
	r1, _ := d.Row(1)
	if r1.Val[0] != 0.5 {
		t.Error("small row should be untouched")
	}
}

func TestLoadLIBSVMSparseMatchesDense(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.libsvm")
	content := "1 1:0.5 3:0.25\n-1 2:1\n1 1:0.1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := LoadLIBSVMSparse(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	de, err := LoadLIBSVM(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != de.Len() || sp.Dim() != de.Dim() {
		t.Fatalf("sparse %dx%d vs dense %dx%d", sp.Len(), sp.Dim(), de.Len(), de.Dim())
	}
	for i := 0; i < de.Len(); i++ {
		sx, sy := sp.At(i)
		dx, dy := de.At(i)
		if !vec.Equal(sx, dx, 0) || sy != dy {
			t.Fatalf("row %d: sparse %v/%v dense %v/%v", i, sx, sy, dx, dy)
		}
	}
}

func TestLoadLIBSVMSparseErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for name, content := range map[string]string{
		"bad label": "x 1:1\n", "bad pair": "1 nope\n", "bad idx": "1 0:1\n",
		"bad val": "1 1:zz\n", "empty": "\n",
	} {
		if _, err := LoadLIBSVMSparse(write(name, content), 0); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := LoadLIBSVMSparse(filepath.Join(dir, "nope"), 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSparseSyntheticInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d := SparseSynthetic(r, 500, 200, 10, 0.02)
	if d.Len() != 500 || d.Dim() != 200 {
		t.Fatalf("shape %dx%d", d.Len(), d.Dim())
	}
	if den := d.Density(); den > 0.08 {
		t.Errorf("density %v too high for nnz=10/200", den)
	}
	for i := 0; i < d.Len(); i++ {
		row, y := d.Row(i)
		if row.Norm() > 1+1e-12 {
			t.Fatalf("row %d norm %v", i, row.Norm())
		}
		if y != 1 && y != -1 {
			t.Fatalf("label %v", y)
		}
	}
}

func TestSparseSyntheticPanics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	defer func() {
		if recover() == nil {
			t.Error("nnz > dim accepted")
		}
	}()
	SparseSynthetic(r, 10, 5, 6, 0)
}

// A SparseDataset must plug directly into the private trainer — the
// whole point of implementing sgd.Samples.
func TestSparseDatasetTrainsPrivately(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := SparseSynthetic(r, 3000, 100, 8, 0.02)
	f := loss.NewLogistic(1e-2, 0)
	p := f.Params()
	res, err := sgd.Run(d, sgd.Config{
		Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
		Passes: 5, Batch: 20, Radius: 100, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < d.Len(); i++ {
		x, y := d.At(i)
		if math.Copysign(1, vec.Dot(res.W, x)) == y {
			correct++
		}
	}
	acc := float64(correct) / float64(d.Len())
	if acc < 0.8 {
		t.Errorf("sparse training accuracy %v", acc)
	}
	// And the output-perturbation step works on top.
	priv, err := dp.Budget{Epsilon: 1}.Perturb(r, res.W,
		dp.SensitivityStronglyConvex(p.L, p.Gamma, d.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if len(priv) != 100 {
		t.Error("bad private model")
	}
}
