// Package tuning implements hyperparameter selection for private SGD:
// the private tuning procedure of Algorithm 3 (Chaudhuri–Monteleoni–
// Sarwate's exponential-mechanism selector, as the paper uses it), the
// public-data tuning alternative of §4.1, and the grid construction of
// §4.3 (k ∈ {5,10}, λ ∈ {1e-4, 1e-3, 1e-2}, b fixed at 50).
package tuning

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/account"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
)

// Params is one tuning-parameter tuple θ = (k, b, λ) (§4.1 "we call
// k, b, λ the tuning parameters").
type Params struct {
	K      int     // passes
	B      int     // mini-batch size
	Lambda float64 // L2 regularization
}

// String implements fmt.Stringer.
func (p Params) String() string { return fmt.Sprintf("(k=%d b=%d λ=%g)", p.K, p.B, p.Lambda) }

// Grid returns the cross product of the given candidate values — the
// "standard grid search" of §4.3.
func Grid(ks, bs []int, lambdas []float64) []Params {
	var out []Params
	for _, k := range ks {
		for _, b := range bs {
			for _, l := range lambdas {
				out = append(out, Params{K: k, B: b, Lambda: l})
			}
		}
	}
	return out
}

// PaperGrid is the exact grid of Figures 6, 7 and 9: k ∈ {5, 10},
// b = 50, λ ∈ {0.0001, 0.001, 0.01}.
func PaperGrid() []Params {
	return Grid([]int{5, 10}, []int{50}, []float64{1e-4, 1e-3, 1e-2})
}

// TrainFunc trains a classifier on one data portion under one
// parameter tuple. Implementations are expected to consume the privacy
// budget they are given by the caller; the tuner itself only spends ε
// on the exponential-mechanism pick (Algorithm 3, line 5).
type TrainFunc func(part *data.Dataset, p Params) (eval.Classifier, error)

// EngineTrainFunc adapts core.Train — and through it the execution
// engine (internal/engine) — into a TrainFunc for binary linear
// models: the tuple's (k, b) become Passes/Batch, λ parameterizes the
// loss via newLoss, and base carries everything else (budget, step
// family, execution strategy and worker count, randomness — and, for
// PrivateCtx runs, the context and accountant: base.Ctx makes every
// candidate's training cancellable, and base.Accountant makes each
// candidate reserve its own training budget). When the resulting loss
// is strongly convex and base.Radius is zero, the paper's R = 1/λ
// convention (§4.3) is applied. This is the canonical way to make a
// tuning run — every candidate of the grid — execute under a chosen
// engine strategy.
func EngineTrainFunc(newLoss func(lambda float64) loss.Function, base core.Options) TrainFunc {
	return func(part *data.Dataset, p Params) (eval.Classifier, error) {
		opt := base
		opt.Passes, opt.Batch = p.K, p.B
		f := newLoss(p.Lambda)
		if f.Params().StronglyConvex() && opt.Radius == 0 && p.Lambda > 0 {
			opt.Radius = 1 / p.Lambda
		}
		res, err := core.Train(part, f, opt)
		if err != nil {
			return nil, err
		}
		return &eval.Linear{W: res.W}, nil
	}
}

// Result reports a tuning run.
type Result struct {
	Model  eval.Classifier
	Params Params
	// Errors is the validation error count χ_i of the chosen model.
	Errors int
	// Index is the position of the chosen tuple in the grid.
	Index int
}

// Private is Algorithm 3 ("Private Tuning Algorithm for SGD"): split S
// into l+1 equal portions, train hypothesis w_i on portion i with
// parameters θ_i, count validation errors χ_i on portion l+1, and
// release w_i with probability proportional to exp(−ε·χ_i/2). The
// selection is differentially private because each candidate is trained
// on disjoint data (parallel composition) and the pick is the
// exponential mechanism with sensitivity-1 score χ.
func Private(d *data.Dataset, grid []Params, budget dp.Budget, train TrainFunc, r *rand.Rand) (*Result, error) {
	return PrivateCtx(context.Background(), d, grid, budget, nil, train, r)
}

// PrivateCtx is Algorithm 3 made cancellable and accountable: the
// context is checked before each candidate's training run (and flows
// into the runs themselves when train was built from a base
// core.Options carrying it — EngineTrainFunc preserves it), and when
// acct is non-nil the tuner's own spend — the ε of the exponential-
// mechanism pick, line 5 — is reserved against it before any work,
// failing closed on overdraw.
//
// The candidates' training budgets are the TrainFunc's responsibility:
// Algorithm 3 trains each candidate on a DISJOINT portion, so parallel
// composition charges the portions once, not l times — an accountant-
// backed TrainFunc should reserve its per-candidate budget from a
// child accountant, not from acct, or the ledger would overstate the
// real spend. acct here covers only the selection.
func PrivateCtx(ctx context.Context, d *data.Dataset, grid []Params, budget dp.Budget, acct *account.Accountant, train TrainFunc, r *rand.Rand) (*Result, error) {
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	if len(grid) == 0 {
		return nil, errors.New("tuning: empty parameter grid")
	}
	if train == nil {
		return nil, errors.New("tuning: nil TrainFunc")
	}
	if r == nil {
		return nil, errors.New("tuning: nil rand source")
	}
	l := len(grid)
	if d.Len() < (l+1)*2 {
		return nil, fmt.Errorf("tuning: dataset of %d rows too small for %d+1 portions", d.Len(), l)
	}
	if acct != nil {
		// The exponential mechanism is pure ε-DP, so reserve it as such:
		// under advanced/RDP accounting a pure event composes
		// sublinearly, and under the simple rule ReservePure downgrades
		// to the exact plain entry Reserve always recorded. A δ-carrying
		// budget (not what Algorithm 3 spends) stays a plain reservation.
		label := fmt.Sprintf("tune(%d candidates)", l)
		var err error
		if budget.Pure() {
			err = acct.ReservePure(label, budget.Epsilon)
		} else {
			err = acct.Reserve(label, budget)
		}
		if err != nil {
			return nil, err
		}
	}
	parts := d.Portions(r, l+1)
	validation := parts[l]

	models := make([]eval.Classifier, l)
	chis := make([]int, l)
	for i, p := range grid {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		m, err := train(parts[i], p)
		if err != nil {
			return nil, fmt.Errorf("tuning: candidate %v: %w", p, err)
		}
		models[i] = m
		chis[i] = eval.Errors(validation, m)
	}

	idx := exponentialPick(r, chis, budget.Epsilon)
	return &Result{Model: models[idx], Params: grid[idx], Errors: chis[idx], Index: idx}, nil
}

// exponentialPick samples index i with probability proportional to
// exp(−ε·χ_i/2) (Algorithm 3, line 5), computed stably by shifting by
// the minimum error count.
func exponentialPick(r *rand.Rand, chis []int, eps float64) int {
	min := chis[0]
	for _, c := range chis {
		if c < min {
			min = c
		}
	}
	weights := make([]float64, len(chis))
	var total float64
	for i, c := range chis {
		weights[i] = math.Exp(-eps * float64(c-min) / 2)
		total += weights[i]
	}
	u := r.Float64() * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(chis) - 1
}

// Public tunes with public data (§4.1 "Tuning using Public Data"):
// train one candidate per tuple on the full private training set and
// keep the one with the best accuracy on the public validation set.
// No extra privacy cost is charged for the selection because the
// validation data is public; each candidate must still be trained
// under the full stated budget, and the paper's protocol assumes the
// budget covers the released (single) model.
func Public(train *data.Dataset, public *data.Dataset, grid []Params, fit TrainFunc) (*Result, error) {
	if len(grid) == 0 {
		return nil, errors.New("tuning: empty parameter grid")
	}
	if fit == nil {
		return nil, errors.New("tuning: nil TrainFunc")
	}
	best := -1
	bestErr := math.MaxInt
	var bestModel eval.Classifier
	for i, p := range grid {
		m, err := fit(train, p)
		if err != nil {
			return nil, fmt.Errorf("tuning: candidate %v: %w", p, err)
		}
		if e := eval.Errors(public, m); e < bestErr {
			best, bestErr, bestModel = i, e, m
		}
	}
	return &Result{Model: bestModel, Params: grid[best], Errors: bestErr, Index: best}, nil
}
