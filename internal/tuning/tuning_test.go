package tuning

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/account"
	"boltondp/internal/account/compose"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
)

func TestGrid(t *testing.T) {
	g := Grid([]int{5, 10}, []int{50}, []float64{1e-4, 1e-3, 1e-2})
	if len(g) != 6 {
		t.Fatalf("grid size %d, want 6", len(g))
	}
	seen := map[string]bool{}
	for _, p := range g {
		if seen[p.String()] {
			t.Errorf("duplicate tuple %v", p)
		}
		seen[p.String()] = true
	}
}

func TestPaperGrid(t *testing.T) {
	g := PaperGrid()
	if len(g) != 6 {
		t.Fatalf("paper grid size %d, want 6 (2 k-values × 3 λ-values)", len(g))
	}
	for _, p := range g {
		if p.B != 50 {
			t.Errorf("paper grid batch %d, want 50", p.B)
		}
		if p.K != 5 && p.K != 10 {
			t.Errorf("paper grid k %d", p.K)
		}
	}
}

// centroid is a cheap deterministic trainer for tests.
func centroid(part *data.Dataset, p Params) (eval.Classifier, error) {
	w := make([]float64, part.Dim())
	for i := 0; i < part.Len(); i++ {
		x, y := part.At(i)
		for j := range w {
			w[j] += y * x[j]
		}
	}
	return &eval.Linear{W: w}, nil
}

func TestPrivateTuning(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 3000, D: 5, Classes: 2, Spread: 0.4})
	grid := PaperGrid()
	res, err := Private(d, grid, dp.Budget{Epsilon: 1}, centroid, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("nil model")
	}
	if res.Index < 0 || res.Index >= len(grid) {
		t.Fatalf("index %d out of range", res.Index)
	}
	if res.Params != grid[res.Index] {
		t.Error("Params does not match Index")
	}
	// The validation portion has ~3000/7 rows; a centroid model on this
	// easy task should misclassify well under half of them.
	if res.Errors > 3000/7/2 {
		t.Errorf("chosen model has %d validation errors", res.Errors)
	}
}

func TestPrivateTuningErrors(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 100, D: 3, Classes: 2, Spread: 0.4})
	grid := PaperGrid()
	if _, err := Private(d, nil, dp.Budget{Epsilon: 1}, centroid, r); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Private(d, grid, dp.Budget{Epsilon: 0}, centroid, r); err == nil {
		t.Error("bad budget accepted")
	}
	if _, err := Private(d, grid, dp.Budget{Epsilon: 1}, nil, r); err == nil {
		t.Error("nil trainer accepted")
	}
	if _, err := Private(d, grid, dp.Budget{Epsilon: 1}, centroid, nil); err == nil {
		t.Error("nil rand accepted")
	}
	tiny := data.Synthetic(r, data.GenConfig{Name: "t", M: 8, D: 2, Classes: 2, Spread: 0.4})
	if _, err := Private(tiny, grid, dp.Budget{Epsilon: 1}, centroid, r); err == nil {
		t.Error("too-small dataset accepted")
	}
	boom := errors.New("boom")
	if _, err := Private(d, []Params{{K: 1, B: 1, Lambda: 0}}, dp.Budget{Epsilon: 1},
		func(*data.Dataset, Params) (eval.Classifier, error) { return nil, boom }, r); !errors.Is(err, boom) {
		t.Errorf("trainer error not propagated: %v", err)
	}
}

// With a huge ε the exponential mechanism concentrates on the lowest
// error count; with ε→0 it is near-uniform. Check both regimes through
// the (unexported) picker via the public API: we craft trainers whose
// error counts we control by returning constant models.
func TestExponentialMechanismConcentration(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Dataset where w = (+1) predicts everything correctly.
	m := 400
	d := &data.Dataset{Name: "t", Classes: 2}
	for i := 0; i < m; i++ {
		d.X = append(d.X, []float64{1})
		d.Y = append(d.Y, 1)
	}
	grid := []Params{{K: 1, B: 1, Lambda: 0}, {K: 2, B: 1, Lambda: 0}}
	// Candidate 0 is perfect, candidate 1 is always wrong.
	train := func(part *data.Dataset, p Params) (eval.Classifier, error) {
		if p.K == 1 {
			return &eval.Linear{W: []float64{1}}, nil
		}
		return &eval.Linear{W: []float64{-1}}, nil
	}
	picks := [2]int{}
	for trial := 0; trial < 50; trial++ {
		res, err := Private(d, grid, dp.Budget{Epsilon: 10}, train, r)
		if err != nil {
			t.Fatal(err)
		}
		picks[res.Index]++
	}
	if picks[0] < 48 {
		t.Errorf("high-ε mechanism picked the perfect model only %d/50 times", picks[0])
	}
}

func TestPublicTuning(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	full := data.Synthetic(r, data.GenConfig{Name: "t", M: 2000, D: 5, Classes: 2, Spread: 0.4})
	train, public := full.Split(r, 0.7)
	res, err := Public(train, public, PaperGrid(), centroid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("nil model")
	}
	// Public tuning picks the argmin validation error; verify no grid
	// point does better than the chosen one.
	for _, p := range PaperGrid() {
		m, _ := centroid(train, p)
		if e := eval.Errors(public, m); e < res.Errors {
			t.Errorf("tuple %v has %d errors < chosen %d", p, e, res.Errors)
		}
	}
}

func TestPublicTuningErrors(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 100, D: 3, Classes: 2, Spread: 0.4})
	if _, err := Public(d, d, nil, centroid); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Public(d, d, PaperGrid(), nil); err == nil {
		t.Error("nil trainer accepted")
	}
}

// End-to-end: private tuning over the real private trainer (Algorithm 2
// inside Algorithm 3), the exact composition used for Figure 6.
func TestPrivateTuningWithPrivateSGD(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 4000, D: 5, Classes: 2, Spread: 0.4})
	budget := dp.Budget{Epsilon: 1}
	train := func(part *data.Dataset, p Params) (eval.Classifier, error) {
		f := loss.NewLogistic(p.Lambda, 0)
		res, err := core.PrivateStronglyConvexPSGD(part, f, core.Options{
			Budget: budget,
			Passes: p.K,
			Batch:  p.B,
			Radius: 1 / p.Lambda,
			Rand:   r,
		})
		if err != nil {
			return nil, err
		}
		return &eval.Linear{W: res.W}, nil
	}
	res, err := Private(d, PaperGrid(), budget, train, r)
	if err != nil {
		t.Fatal(err)
	}
	if acc := eval.Accuracy(d, res.Model); acc < 0.6 {
		t.Errorf("tuned private model accuracy %v on easy data", acc)
	}
}

// EngineTrainFunc must route every grid candidate through core.Train —
// and therefore the execution engine — honoring the strategy and
// worker count of the base options, and apply the R = 1/λ convention.
func TestEngineTrainFunc(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 4200, D: 4, Classes: 2, Spread: 0.3, Flip: 0.01})
	budget := dp.Budget{Epsilon: 2}

	for _, workers := range []int{1, 3} {
		base := core.Options{Budget: budget, Workers: workers, Rand: r}
		if workers > 1 {
			base.Strategy = engine.Sharded
		}
		fit := EngineTrainFunc(func(lambda float64) loss.Function {
			return loss.NewLogistic(lambda, 0)
		}, base)
		res, err := Private(d, PaperGrid(), budget, fit, r)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if acc := eval.Accuracy(d, res.Model); acc < 0.6 {
			t.Errorf("workers=%d: tuned engine model accuracy %v on easy data", workers, acc)
		}
	}

	// A candidate failure must surface with the tuple attached: workers
	// exceeding the portion size make core reject the run.
	base := core.Options{Budget: budget, Strategy: engine.Sharded, Workers: 10000, Rand: r}
	fit := EngineTrainFunc(func(lambda float64) loss.Function { return loss.NewLogistic(lambda, 0) }, base)
	if _, err := Private(d, PaperGrid(), budget, fit, r); err == nil {
		t.Error("oversized worker count did not error")
	}
}

// PrivateCtx checks the context between candidates: cancelling after
// the k-th training run stops the grid there and returns ctx.Err().
func TestPrivateTuningCtxCancel(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 3000, D: 5, Classes: 2, Spread: 0.4})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trained := 0
	train := func(part *data.Dataset, p Params) (eval.Classifier, error) {
		trained++
		if trained == 2 {
			cancel()
		}
		return centroid(part, p)
	}
	_, err := PrivateCtx(ctx, d, PaperGrid(), dp.Budget{Epsilon: 1}, nil, train, r)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if trained != 2 {
		t.Errorf("trained %d candidates after cancel at 2", trained)
	}
}

// PrivateCtx reserves the exponential-mechanism ε from the accountant
// before any candidate trains, and fails closed when it cannot.
func TestPrivateTuningAccountant(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 3000, D: 5, Classes: 2, Spread: 0.4})
	acct := account.MustNew(dp.Budget{Epsilon: 1})
	res, err := PrivateCtx(context.Background(), d, PaperGrid(), dp.Budget{Epsilon: 0.4}, acct, centroid, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("nil model")
	}
	if got := acct.Spent(); got.Epsilon != 0.4 {
		t.Errorf("Spent = %v", got)
	}
	l := acct.Ledger()
	if len(l.Entries) != 1 || l.Entries[0].Label != "tune(6 candidates)" {
		t.Errorf("ledger: %+v", l.Entries)
	}

	// Overdraw fails closed: no candidate trains.
	trained := 0
	counting := func(part *data.Dataset, p Params) (eval.Classifier, error) {
		trained++
		return centroid(part, p)
	}
	_, err = PrivateCtx(context.Background(), d, PaperGrid(), dp.Budget{Epsilon: 0.7}, acct, counting, r)
	if !errors.Is(err, account.ErrOverdraw) {
		t.Fatalf("err = %v, want account.ErrOverdraw", err)
	}
	if trained != 0 {
		t.Errorf("over-budget tune trained %d candidates", trained)
	}
}

// EngineTrainFunc threads base.Ctx into the candidate runs themselves:
// a pre-cancelled context stops the first candidate inside core.Train.
func TestEngineTrainFuncCtx(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 3000, D: 5, Classes: 2, Spread: 0.4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	train := EngineTrainFunc(func(lambda float64) loss.Function { return loss.NewLogistic(lambda, 0) }, core.Options{
		Budget: dp.Budget{Epsilon: 1}, Rand: r, Ctx: ctx,
	})
	// The tuner's own pre-candidate check also trips; bypass it by
	// calling the TrainFunc directly to pin the engine-level path.
	_, err := train(d, Params{K: 2, B: 10, Lambda: 1e-3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A pure tuning spend is reserved as a pure event, so advanced/RDP
// accountants compose a long sequence of small selections sublinearly:
// after the same 30 tunes the tighter rules must report strictly more
// remaining budget than simple composition — and simple's ledger stays
// entry-identical to the pre-typed Reserve path.
func TestPrivateTuningRuleAwareHeadroom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := data.Synthetic(r, data.GenConfig{Name: "t", M: 3000, D: 5, Classes: 2, Spread: 0.4})
	grid := Grid([]int{5}, []int{50}, []float64{1e-3, 1e-2})
	total := dp.Budget{Epsilon: 4, Delta: 1e-6}
	const rounds = 30
	const eps = 0.1

	spend := func(rule string) *account.Accountant {
		acct, err := account.NewWithRule(rule, total)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rounds; i++ {
			if _, err := PrivateCtx(context.Background(), d, grid, dp.Budget{Epsilon: eps}, acct, centroid, r); err != nil {
				t.Fatalf("rule %s, round %d: %v", rule, i, err)
			}
		}
		return acct
	}

	simple := spend(compose.RuleSimple)
	advanced := spend(compose.RuleAdvanced)
	rdp := spend(compose.RuleRDP)

	if got := simple.Spent(); math.Abs(got.Epsilon-rounds*eps) > 1e-12 {
		t.Fatalf("simple spent %v, want %v", got.Epsilon, rounds*eps)
	}
	rs, ra, rr := simple.Remaining(), advanced.Remaining(), rdp.Remaining()
	if !(ra.Epsilon > rs.Epsilon) {
		t.Errorf("advanced headroom %v not above simple %v", ra.Epsilon, rs.Epsilon)
	}
	if !(rr.Epsilon > rs.Epsilon) {
		t.Errorf("rdp headroom %v not above simple %v", rr.Epsilon, rs.Epsilon)
	}
	t.Logf("remaining ε after %d tunes of %v: simple %.4f, advanced %.4f, rdp %.4f",
		rounds, eps, rs.Epsilon, ra.Epsilon, rr.Epsilon)

	// Simple-rule bit-compat: the typed pure reservation produced the
	// same entries a plain Reserve sequence records.
	plain := account.MustNew(total)
	for i := 0; i < rounds; i++ {
		if err := plain.Reserve("tune(2 candidates)", dp.Budget{Epsilon: eps}); err != nil {
			t.Fatal(err)
		}
	}
	if !simple.Ledger().Same(plain.Ledger()) {
		t.Fatal("simple-rule tuning ledger diverged from plain Reserve sequence")
	}
}
