package cli

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"boltondp/internal/data"
	"boltondp/internal/dist"
	"boltondp/internal/eval"
	"boltondp/internal/store"
)

func TestParseDPWorkerTable(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
		addr string
	}{
		{name: "defaults", args: nil, ok: true, addr: ":8090"},
		{name: "explicit addr", args: []string{"-addr", "127.0.0.1:9191"}, ok: true, addr: "127.0.0.1:9191"},
		{name: "bad addr no port", args: []string{"-addr", "localhost"}, ok: false},
		{name: "unknown flag", args: []string{"-nope"}, ok: false},
	}
	for _, tc := range cases {
		cfg, err := ParseDPWorker(tc.args, io.Discard)
		if tc.ok != (err == nil) {
			t.Errorf("%s: err = %v, want ok=%t", tc.name, err, tc.ok)
			continue
		}
		if tc.ok && cfg.Addr != tc.addr {
			t.Errorf("%s: addr %q, want %q", tc.name, cfg.Addr, tc.addr)
		}
	}
}

func TestParseDPCoordTable(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
		chk  func(*DPCoordConfig) bool
	}{
		{
			name: "worker list with spaces and defaults",
			args: []string{"-workers", "http://a:1, http://b:2"},
			ok:   true,
			chk: func(c *DPCoordConfig) bool {
				return len(c.Workers) == 2 && c.Workers[1] == "http://b:2" &&
					c.Shards == 0 && c.Retries == 2 && c.Sim == "protein"
			},
		},
		{
			name: "full training surface",
			args: []string{"-workers", "http://a:1", "-store", "x.bolt", "-shards", "4",
				"-loss", "huber", "-lambda", "0.01", "-eps", "2", "-passes", "5",
				"-epoch-timeout", "30s", "-save", "m.json"},
			ok: true,
			chk: func(c *DPCoordConfig) bool {
				return c.StorePath == "x.bolt" && c.Shards == 4 && c.LossName == "huber" &&
					c.EpochTimeout == 30*time.Second && c.SavePath == "m.json"
			},
		},
		{name: "no workers", args: nil, ok: false},
		{name: "empty worker list", args: []string{"-workers", " , "}, ok: false},
		{name: "relative worker url", args: []string{"-workers", "a:8090"}, ok: false},
		{name: "negative shards", args: []string{"-workers", "http://a:1", "-shards", "-1"}, ok: false},
		{name: "negative retries", args: []string{"-workers", "http://a:1", "-retries", "-1"}, ok: false},
		{name: "negative timeout", args: []string{"-workers", "http://a:1", "-timeout", "-1s"}, ok: false},
		{name: "unknown flag", args: []string{"-workers", "http://a:1", "-nope"}, ok: false},
	}
	for _, tc := range cases {
		cfg, err := ParseDPCoord(tc.args, io.Discard)
		if tc.ok != (err == nil) {
			t.Errorf("%s: err = %v, want ok=%t", tc.name, err, tc.ok)
			continue
		}
		if tc.ok && tc.chk != nil && !tc.chk(cfg) {
			t.Errorf("%s: parsed %+v", tc.name, cfg)
		}
	}
}

// distWorkers starts n in-process dpworker handlers and returns their
// URLs — the loopback pool every coordinator CLI test trains against.
func distWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		wk := dist.NewWorker()
		ts := httptest.NewServer(wk.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { wk.Close() })
		urls[i] = ts.URL
	}
	return urls
}

// TestDPCoordTrainPublishServe is the distributed end-to-end story:
// dpcoord trains a private model over two in-process workers,
// publishes it into a registry, and the dpserve stack serves it back
// with the ledger metadata intact.
func TestDPCoordTrainPublishServe(t *testing.T) {
	dir := t.TempDir()
	save := filepath.Join(t.TempDir(), "model.json")
	cfg, err := ParseDPCoord([]string{
		"-workers", strings.Join(distWorkers(t, 2), ","),
		"-sim", "protein", "-scale", "0.01",
		"-passes", "2", "-batch", "10", "-eps", "0.5",
		"-save", save, "-publish", dir,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := RunDPCoordCtx(context.Background(), cfg, &out); err != nil {
		t.Fatalf("RunDPCoordCtx: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"shards=2 over 2 worker(s)",
		"sensitivity Δ₂=",
		"train accuracy:",
		"test  accuracy:",
		`model published to ` + dir + ` as "protein" (live)`,
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	_, meta, err := eval.LoadClassifier(save)
	if err != nil {
		t.Fatalf("LoadClassifier(-save): %v", err)
	}
	if meta["algorithm"] != "ours-dist" || meta["workers"] != "2" || meta["epsilon"] != "0.5" {
		t.Errorf("saved meta %+v", meta)
	}
	if meta["dp.spent"] == "" || meta["dp.total"] == "" {
		t.Errorf("accountant stamp missing from meta %+v", meta)
	}

	scfg, err := ParseDPServe([]string{"-models", dir}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	reg, srv, err := BuildDPServe(scfg)
	if err != nil {
		t.Fatal(err)
	}
	live := reg.Live()
	if live == nil || live.Name != "protein" || live.Meta["algorithm"] != "ours-dist" {
		t.Fatalf("live model %+v", live)
	}
	req := httptest.NewRequest("GET", "/healthz", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz over a dpcoord-published registry: %d", w.Code)
	}
}

// TestDPCoordStoreSource trains from an on-disk columnar store: the
// wire carries chunk ranges, the worker opens the same file.
func TestDPCoordStoreSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "train.bolt")
	w, err := store.Create(path, store.Options{ChunkRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	ds := data.SparseSynthetic(rand.New(rand.NewSource(3)), 200, 20, 5, 0.1)
	for i := 0; i < ds.Len(); i++ {
		sp, y := ds.AtSparse(i)
		if err := w.Append(sp, y); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cfg, err := ParseDPCoord([]string{
		"-workers", strings.Join(distWorkers(t, 2), ","),
		"-store", path, "-shards", "2",
		"-passes", "2", "-batch", "8", "-eps", "1",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := RunDPCoordCtx(context.Background(), cfg, &out); err != nil {
		t.Fatalf("RunDPCoordCtx over store: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "workers train chunk ranges") {
		t.Errorf("store banner missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "train accuracy:") {
		t.Errorf("no accuracy line:\n%s", out.String())
	}
}

// TestDPCoordNoWorkersReachable: a coordinator whose whole pool is
// unreachable must fail at registration, before reserving any budget.
func TestDPCoordNoWorkersReachable(t *testing.T) {
	cfg, err := ParseDPCoord([]string{
		"-workers", "http://127.0.0.1:1", "-scale", "0.01",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	err = RunDPCoordCtx(context.Background(), cfg, io.Discard)
	if err == nil {
		t.Fatal("run with unreachable workers succeeded")
	}
	if !strings.Contains(err.Error(), "registering worker") {
		t.Errorf("error %q does not name the registration step", err)
	}
}

// TestDPWorkerGracefulShutdown runs the real listener loop: the worker
// binds an ephemeral port, announces it, serves a health check, and a
// context cancel shuts it down cleanly (exit nil — the same path
// SIGINT takes in cmd/dpworker).
func TestDPWorkerGracefulShutdown(t *testing.T) {
	cfg, err := ParseDPWorker([]string{"-addr", "127.0.0.1:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var out bytes.Buffer
	syncW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	done := make(chan error, 1)
	go func() { done <- RunDPWorkerCtx(ctx, cfg, syncW) }()

	// The announce line carries the bound address.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("worker never announced its address")
		}
		mu.Lock()
		s := out.String()
		mu.Unlock()
		if i := strings.Index(s, "listening on "); i >= 0 {
			if j := strings.IndexByte(s[i:], '\n'); j >= 0 {
				addr = strings.TrimSpace(s[i+len("listening on ") : i+j])
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + dist.PathHealthz)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not shut down")
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(out.String(), "dpworker: shutting down") {
		t.Errorf("shutdown banner missing:\n%s", out.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
