// Package cli implements the dpsgd, dpserve, dpcoord and dpworker
// commands' logic as a testable library: flag parsing, dataset
// selection, training and serving dispatch and report formatting,
// with all I/O injected.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"boltondp/internal/account"
	"boltondp/internal/account/compose"
	"boltondp/internal/baselines"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
	"boltondp/internal/online"
	"boltondp/internal/serve"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
	"boltondp/internal/vec"
)

// DPSGDConfig is the parsed command line of cmd/dpsgd.
type DPSGDConfig struct {
	DataPath  string
	CachePath string
	ChunkRows int
	Sim       string
	Scale     float64
	Algo      string
	LossName  string
	Lambda    float64
	HuberH    float64
	Eps       float64
	Delta     float64
	Passes    int
	Batch     int
	Strategy  string
	Workers   int
	// Accounting is the privacy-composition rule the run's accountant
	// prices reservations under (-accounting simple|advanced|rdp).
	Accounting string
	// Clip and NoiseMult configure -strategy gradperturb: per-example
	// gradient clipping norm and the noise multiplier σ̃ (0 = solve the
	// smallest σ̃ that fits the budget).
	Clip      float64
	NoiseMult float64
	// KernelWorkers is the intra-batch parallelism degree of the SGD
	// kernel (-kernel-workers; 1 = sequential). Bit-identical output
	// for every value, so it composes with any -strategy.
	KernelWorkers int
	Seed          int64
	SavePath      string
	Publish       string
	Timeout       time.Duration
	// Ingest appends a LIBSVM file as a new segment to the -cache
	// segment directory (fail-closed integrity checks) and runs the
	// drift detector; with Online set, drift triggers a warm continual
	// retrain and a canary publish into the -publish registry.
	Ingest string
	Online bool
	// Windows is the continual-training window count: the accountant's
	// remaining budget is split N ways and each drift-triggered retrain
	// spends exactly one window.
	Windows int
	// CanaryPct is the traffic percentage a drift-triggered canary
	// model receives in the registry.
	CanaryPct int
	// DriftLabel and DriftMargin override the drift thresholds
	// (0 = package defaults).
	DriftLabel  float64
	DriftMargin float64
}

// ParseDPSGD parses args (excluding argv[0]) into a config.
func ParseDPSGD(args []string, stderr io.Writer) (*DPSGDConfig, error) {
	cfg := &DPSGDConfig{}
	fs := flag.NewFlagSet("dpsgd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.DataPath, "data", "", "LIBSVM training file (overrides -sim)")
	fs.StringVar(&cfg.CachePath, "cache", "", "on-disk columnar store: convert -data into this file once, then train out-of-core from it (reused if it already exists)")
	fs.IntVar(&cfg.ChunkRows, "chunk", 0, "rows per store chunk for the -cache conversion (0 = default)")
	fs.StringVar(&cfg.Sim, "sim", "protein", "built-in simulator: mnist|protein|covtype|higgs|kdd")
	fs.Float64Var(&cfg.Scale, "scale", 0.05, "simulator scale (1.0 = paper-sized)")
	fs.StringVar(&cfg.Algo, "algo", "ours", "ours|noiseless|scs13|bst14")
	fs.StringVar(&cfg.LossName, "loss", "logistic", "logistic|huber")
	fs.Float64Var(&cfg.Lambda, "lambda", 1e-3, "L2 regularization λ (0 = convex case)")
	fs.Float64Var(&cfg.HuberH, "huber-h", 0.1, "Huber smoothing width")
	fs.Float64Var(&cfg.Eps, "eps", 0.1, "privacy budget ε")
	fs.Float64Var(&cfg.Delta, "delta", 0, "privacy budget δ (0 = pure ε-DP)")
	fs.IntVar(&cfg.Passes, "passes", 10, "passes over the data (k)")
	fs.IntVar(&cfg.Batch, "batch", 50, "mini-batch size (b)")
	fs.StringVar(&cfg.Strategy, "strategy", "sequential", "execution strategy: sequential|sharded|streaming (streaming needs -passes 1), or gradperturb (per-step clipped-gradient noise instead of output perturbation; needs -delta > 0)")
	fs.IntVar(&cfg.Workers, "workers", 1, "shard count for -strategy sharded")
	fs.StringVar(&cfg.Accounting, "accounting", "", "privacy composition rule: simple|advanced|rdp (default simple; rdp for -strategy gradperturb)")
	fs.Float64Var(&cfg.Clip, "clip", 1, "per-example gradient clipping norm C for -strategy gradperturb")
	fs.Float64Var(&cfg.NoiseMult, "noise-multiplier", 0, "gradperturb noise multiplier σ̃ (0 = solve the smallest that fits the budget)")
	fs.IntVar(&cfg.KernelWorkers, "kernel-workers", 1, "intra-batch SGD parallelism (bit-identical to 1 at any value)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	fs.StringVar(&cfg.SavePath, "save", "", "write the trained model (JSON) to this path")
	fs.StringVar(&cfg.Publish, "publish", "", "publish the trained model into this registry directory (serve it with dpserve -models)")
	fs.DurationVar(&cfg.Timeout, "timeout", 0, "cancel training after this duration, e.g. 30s or 2m (0 = no limit)")
	fs.StringVar(&cfg.Ingest, "ingest", "", "append this LIBSVM file as a new segment to the -cache segment directory (fail-closed integrity checks) and report drift; with -online, drift triggers a warm continual retrain and canary publish")
	fs.BoolVar(&cfg.Online, "online", false, "continual training: a drifting -ingest segment spends one budget window on a warm-started retrain and stages a canary in the -publish registry")
	fs.IntVar(&cfg.Windows, "windows", 4, "continual budget windows for -online (the remaining privacy budget is split N ways)")
	fs.IntVar(&cfg.CanaryPct, "canary-pct", 10, "traffic percentage a drift-triggered canary model receives")
	fs.Float64Var(&cfg.DriftLabel, "drift-label", 0, "label-rate drift threshold (0 = default 0.2)")
	fs.Float64Var(&cfg.DriftMargin, "drift-margin", 0, "mean-margin drift threshold (0 = default 0.5)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if cfg.Timeout < 0 {
		return nil, fmt.Errorf("cli: -timeout must be >= 0, got %v", cfg.Timeout)
	}
	if cfg.KernelWorkers < 1 {
		return nil, fmt.Errorf("cli: -kernel-workers must be >= 1, got %d", cfg.KernelWorkers)
	}
	if cfg.ChunkRows < 0 {
		return nil, fmt.Errorf("cli: -chunk must be >= 0, got %d", cfg.ChunkRows)
	}
	if cfg.ChunkRows > 0 && cfg.CachePath == "" {
		return nil, fmt.Errorf("cli: -chunk only applies to the -cache conversion")
	}
	if cfg.CachePath != "" && cfg.DataPath == "" && cfg.Ingest == "" {
		return nil, fmt.Errorf("cli: -cache converts a -data file; give one")
	}
	if cfg.Ingest != "" && cfg.CachePath == "" {
		return nil, fmt.Errorf("cli: -ingest appends to a -cache segment directory; give one")
	}
	if cfg.Online && cfg.Ingest == "" {
		return nil, fmt.Errorf("cli: -online reacts to an ingested segment; give -ingest")
	}
	if cfg.Online && cfg.Publish == "" {
		return nil, fmt.Errorf("cli: -online retrains the live model of a -publish registry; give one")
	}
	if cfg.Windows < 1 {
		return nil, fmt.Errorf("cli: -windows must be >= 1, got %d", cfg.Windows)
	}
	if cfg.CanaryPct < 0 || cfg.CanaryPct > 100 {
		return nil, fmt.Errorf("cli: -canary-pct must be in [0,100], got %d", cfg.CanaryPct)
	}
	if cfg.DriftLabel < 0 || cfg.DriftMargin < 0 {
		return nil, fmt.Errorf("cli: drift thresholds must be >= 0")
	}
	if cfg.Accounting != "" {
		if _, err := compose.New(compose.Normalize(cfg.Accounting)); err != nil {
			return nil, fmt.Errorf("cli: -accounting must be one of %v, got %q", compose.Rules(), cfg.Accounting)
		}
	}
	if cfg.Strategy == "gradperturb" {
		if cfg.Algo != "ours" {
			return nil, fmt.Errorf("cli: -strategy gradperturb only applies to -algo ours, got %q", cfg.Algo)
		}
		if cfg.Delta <= 0 {
			return nil, fmt.Errorf("cli: -strategy gradperturb is a Gaussian mechanism; give -delta > 0")
		}
		if cfg.Workers > 1 {
			return nil, fmt.Errorf("cli: -strategy gradperturb is sequential-only; drop -workers")
		}
		if cfg.Clip <= 0 {
			return nil, fmt.Errorf("cli: -clip must be > 0, got %v", cfg.Clip)
		}
		if cfg.NoiseMult < 0 {
			return nil, fmt.Errorf("cli: -noise-multiplier must be >= 0, got %v", cfg.NoiseMult)
		}
	}
	return cfg, nil
}

// simGenerators maps -sim names to dataset simulators.
var simGenerators = map[string]func(*rand.Rand, float64) (*data.Dataset, *data.Dataset){
	"mnist":   data.MNISTSim,
	"protein": data.ProteinSim,
	"covtype": data.CovtypeSim,
	"higgs":   data.HIGGSSim,
	"kdd":     data.KDDSim,
}

// sparseDensityThreshold routes -data files through the CSR
// representation (and with it the engine's sparse kernel) when their
// density is below this fraction. LIBSVM is a sparse on-disk format,
// so the density is known before any dense row is materialized; above
// the threshold CSR indices cost more than they save.
const sparseDensityThreshold = 0.25

// RunDPSGD executes a parsed config, writing the report to out.
func RunDPSGD(cfg *DPSGDConfig, out io.Writer) error {
	return RunDPSGDCtx(context.Background(), cfg, out)
}

// RunDPSGDCtx is RunDPSGD under a context: ctx (plus cfg.Timeout, when
// set) cancels the training run through the engine's per-update checks
// — the command exits within one epoch slice of a SIGINT or deadline
// instead of finishing the remaining passes.
func RunDPSGDCtx(ctx context.Context, cfg *DPSGDConfig, out io.Writer) error {
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	if cfg.Ingest != "" {
		return runIngest(ctx, cfg, out)
	}
	if cfg.Publish != "" {
		// Fail before training, not after: a rejected name would
		// otherwise discard the whole run at the publish step.
		if err := serve.ValidModelName(publishName(cfg)); err != nil {
			return err
		}
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	var train, test sgd.Samples
	classes := 2
	switch {
	case cfg.CachePath != "":
		// Out-of-core: convert the LIBSVM file into the columnar store
		// once (a single streaming parse pass — the same pass that
		// estimates the density), then train every strategy straight
		// from the store file. The dataset is never resident in RAM.
		rd, err := openOrConvertStore(ctx, cfg, out)
		if err != nil {
			return err
		}
		defer rd.Close()
		classes = rd.Classes()
		if classes == 0 {
			return fmt.Errorf("cli: %s holds too many distinct labels to classify", cfg.CachePath)
		}
		m := rd.Len()
		cut := int(float64(m) * 0.8)
		if cut < 1 || cut >= m {
			return fmt.Errorf("cli: %d rows is too few to split", m)
		}
		// Contiguous 80/20 split in store order: a bigger-than-memory
		// file cannot be shuffled in RAM (the in-memory path's Split
		// does), so the store keeps the file's row order and the split
		// is positional.
		train, test = rd.Shard(0, cut), rd.Shard(cut, m)
		fmt.Fprintf(out, "store: density %.4f — sparse execution kernel over on-disk chunks, split %d/%d in store order\n",
			rd.Density(), cut, m-cut)
	case cfg.DataPath != "":
		// Always parse into CSR first: the sparse loader never
		// materializes a dense row, so the density decides the
		// representation before any O(m·d) cost is paid.
		full, err := data.LoadLIBSVMSparse(cfg.DataPath, 0)
		if err != nil {
			return err
		}
		full.Normalize()
		classes = full.Classes
		if den := full.Density(); den < sparseDensityThreshold {
			fmt.Fprintf(out, "data: density %.4f < %.2f — using the sparse execution kernel\n",
				den, sparseDensityThreshold)
			train, test = full.Split(r, 0.8)
		} else {
			fmt.Fprintf(out, "data: density %.4f ≥ %.2f — materializing dense rows\n",
				den, sparseDensityThreshold)
			// Same Split randomness either way: the partition is
			// representation-independent.
			trainSp, testSp := full.Split(r, 0.8)
			train, test = trainSp.ToDense(), testSp.ToDense()
		}
	default:
		gen := simGenerators[cfg.Sim]
		if gen == nil {
			return fmt.Errorf("cli: unknown simulator %q", cfg.Sim)
		}
		trainDs, testDs := gen(r, cfg.Scale)
		classes = trainDs.Classes
		train, test = trainDs, testDs
	}
	if classes > 2 {
		return fmt.Errorf("cli: multiclass training is not supported here; see examples/multiclass")
	}

	var f loss.Function
	switch cfg.LossName {
	case "logistic":
		f = loss.NewLogistic(cfg.Lambda, 0)
	case "huber":
		f = loss.NewHuber(cfg.HuberH, cfg.Lambda, 0)
	default:
		return fmt.Errorf("cli: unknown loss %q", cfg.LossName)
	}
	radius := 0.0
	if cfg.Lambda > 0 {
		radius = 1 / cfg.Lambda
	}
	budget := dp.Budget{Epsilon: cfg.Eps, Delta: cfg.Delta}
	rule := compose.Normalize(cfg.Accounting)
	if cfg.Accounting == "" && cfg.Strategy == "gradperturb" {
		rule = compose.RuleRDP // the rule the strategy exists for
	}
	// gradperturb is not an engine strategy — it is the ours-algorithm
	// trainer that swaps output perturbation for per-step gradient noise
	// on the sequential engine.
	gradPerturb := cfg.Strategy == "gradperturb"
	strategyName := cfg.Strategy
	if gradPerturb {
		strategyName = "sequential"
	}
	strategy, err := engine.ParseStrategy(strategyName)
	if err != nil {
		return err
	}
	passes := cfg.Passes
	if strategy == engine.Streaming && passes != 1 {
		// The streaming engine is single-pass by construction; say so
		// instead of silently training a 1-pass model under a k-pass
		// flag (the library errors in the same case).
		fmt.Fprintf(out, "streaming is single-pass: overriding -passes %d with 1\n", passes)
		passes = 1
	}

	fmt.Fprintf(out, "train: m=%d d=%d  test: m=%d  loss=%s  algo=%s  budget=%v  strategy=%v workers=%d  accounting=%s\n",
		train.Len(), train.Dim(), test.Len(), f.Name(), cfg.Algo, budget, cfg.Strategy, cfg.Workers, rule)

	if (strategy != engine.Sequential || cfg.Workers > 1) && cfg.Algo != "ours" && cfg.Algo != "noiseless" {
		return fmt.Errorf("cli: algorithm %q is white-box and sequential-only; drop -strategy/-workers", cfg.Algo)
	}

	// Every private run draws from an accountant so the released model
	// carries an audited ledger (the -save/-publish metadata below).
	var acct *account.Accountant
	var w []float64
	switch cfg.Algo {
	case "ours":
		acct, err = account.NewWithRule(rule, budget)
		if err != nil {
			return err
		}
		opts := []core.Option{
			core.WithAccountant(acct),
			core.WithAccounting(rule),
			core.WithPasses(passes), core.WithBatch(cfg.Batch), core.WithRadius(radius),
			core.WithStrategy(strategy, cfg.Workers),
			core.WithKernelWorkers(cfg.KernelWorkers),
			core.WithRand(r),
		}
		if gradPerturb {
			opts = append(opts, core.WithGradPerturb(cfg.Clip, cfg.NoiseMult))
		}
		res, err := core.TrainCtx(ctx, train, f, opts...)
		if err != nil {
			return err
		}
		w = res.W
		fmt.Fprintf(out, "sensitivity Δ₂=%.6g  noise ‖κ‖=%.4g  updates=%d\n",
			res.Sensitivity, res.NoiseNorm, res.Updates)
	case "noiseless":
		res, err := baselines.Noiseless(train, f, baselines.Options{
			Passes: passes, Batch: cfg.Batch, Radius: radius,
			Strategy: strategy, Workers: cfg.Workers,
			KernelWorkers: cfg.KernelWorkers, Rand: r, Ctx: ctx,
		})
		if err != nil {
			return err
		}
		w = res.W
	case "scs13":
		acct, err = account.NewWithRule(rule, budget)
		if err != nil {
			return err
		}
		res, err := baselines.SCS13(train, f, baselines.Options{
			Budget: budget, Passes: cfg.Passes, Batch: cfg.Batch, Radius: radius,
			Rand: r, Ctx: ctx, Accountant: acct,
		})
		if err != nil {
			return err
		}
		w = res.W
		fmt.Fprintf(out, "per-batch noise draws: %d\n", res.NoiseDraws)
	case "bst14":
		if radius <= 0 {
			radius = 10
		}
		acct, err = account.NewWithRule(rule, budget)
		if err != nil {
			return err
		}
		res, err := baselines.BST14(train, f, baselines.Options{
			Budget: budget, Passes: cfg.Passes, Batch: cfg.Batch, Radius: radius,
			Rand: r, Ctx: ctx, Accountant: acct,
		})
		if err != nil {
			return err
		}
		w = res.W
		fmt.Fprintf(out, "per-batch noise draws: %d\n", res.NoiseDraws)
	default:
		return fmt.Errorf("cli: unknown algorithm %q", cfg.Algo)
	}

	model := &eval.Linear{W: w}
	fmt.Fprintf(out, "train accuracy: %.4f\n", eval.Accuracy(train, model))
	fmt.Fprintf(out, "test  accuracy: %.4f\n", eval.Accuracy(test, model))
	if acct != nil {
		sp := acct.Spent()
		fmt.Fprintf(out, "accounting: rule=%s  spent ε=%.6g δ=%g\n", acct.Rule(), sp.Epsilon, sp.Delta)
	}

	meta := map[string]string{
		"algorithm": cfg.Algo,
		"loss":      f.Name(),
		"epsilon":   fmt.Sprint(cfg.Eps),
		"delta":     fmt.Sprint(cfg.Delta),
		"passes":    fmt.Sprint(cfg.Passes),
		"batch":     fmt.Sprint(cfg.Batch),
	}
	if acct != nil {
		// The audited record of the spend travels with the model file;
		// /modelz serves it back verbatim.
		if err := acct.StampMeta(meta); err != nil {
			return err
		}
	}
	if cfg.SavePath != "" {
		if err := eval.SaveClassifier(cfg.SavePath, model, meta); err != nil {
			return err
		}
		fmt.Fprintf(out, "model written to %s\n", cfg.SavePath)
	}
	if cfg.Publish != "" {
		// Train-and-publish: the model goes straight into a serving
		// registry (atomic write + hot-swap), carrying its privacy
		// statement in the metadata.
		reg, err := serve.NewRegistry(cfg.Publish)
		if err != nil {
			return err
		}
		name := publishName(cfg)
		m, err := reg.Publish(name, model, meta)
		if err != nil {
			return err
		}
		// Publish only goes live into an empty registry (or when
		// republishing the live name) — promotion into a populated
		// registry is an explicit SetLive/canary step on the serving
		// side, so the message must not claim traffic it didn't take.
		if reg.Live() == m {
			fmt.Fprintf(out, "model published to %s as %q (live)\n", cfg.Publish, name)
		} else {
			fmt.Fprintf(out, "model published to %s as %q (live is %q; promote with dpserve -live or a canary rollout)\n",
				cfg.Publish, name, reg.Live().Name)
		}
	}
	return nil
}

// publishName derives the registry name for a -publish run: the data
// file's stem, or the simulator name.
func publishName(cfg *DPSGDConfig) string {
	if cfg.DataPath == "" {
		return cfg.Sim
	}
	return modelStem(cfg.DataPath)
}

// runIngest implements dpsgd -ingest: append one LIBSVM file as a new
// segment of the -cache segment directory behind the store's
// fail-closed integrity gate. Without -online that is the whole job
// (plus a drift report is impossible — there is no live model to
// measure margins under); with -online the online.Runner closes the
// loop: drift past the thresholds spends one continual budget window
// on a warm-started retrain over the full union and stages the result
// as a canary in the -publish registry.
func runIngest(ctx context.Context, cfg *DPSGDConfig, out io.Writer) error {
	dir, err := store.OpenDir(cfg.CachePath)
	if err != nil {
		return fmt.Errorf("cli: -ingest needs an existing -cache segment directory (train with -cache first): %w", err)
	}
	defer dir.Close()

	src, err := data.LoadLIBSVMSparse(cfg.Ingest, dir.Dim())
	if err != nil {
		return err
	}
	// Same unit-ball normalization as every other entry path; labels
	// arrive through the loader already remapped to ±1, so the segment
	// writer must NOT remap again.
	src.Normalize()
	opt := store.Options{ChunkRows: cfg.ChunkRows}

	if !cfg.Online {
		seg, err := store.AppendSegment(dir.Path(), src, opt)
		if err != nil {
			return fmt.Errorf("cli: ingest rejected: %w", err)
		}
		if err := dir.Reload(); err != nil {
			return err
		}
		fmt.Fprintf(out, "ingest: segment %s appended (+%d rows, union m=%d d=%d density=%.4f, %d segments)\n",
			seg, src.Len(), dir.Len(), dir.Dim(), dir.Density(), len(dir.SegmentNames()))
		return nil
	}

	reg, err := serve.NewRegistry(cfg.Publish)
	if err != nil {
		return err
	}
	live := reg.Live()
	if live == nil {
		return fmt.Errorf("cli: -online needs a live model in %s (train with -publish first)", cfg.Publish)
	}

	// The continual budget resumes from the ledger stamped into the
	// live model when it records window spends — windows spent by an
	// earlier process stay spent, fail-closed. A live model whose
	// ledger only records its own (typically exhausting) initial
	// training spend, or none at all, starts the continual phase on a
	// fresh grant from -eps/-delta under the rdp rule by default (the
	// rule that prices a window sequence tightest).
	rule := compose.Normalize(cfg.Accounting)
	if cfg.Accounting == "" {
		rule = compose.RuleRDP
	}
	var acct *account.Accountant
	if l, ok, err := account.LedgerFromMeta(live.Meta); err != nil {
		return err
	} else if ok && core.ContinualWindowsSpent(l) > 0 {
		if acct, err = account.Restore(l); err != nil {
			return err
		}
		fmt.Fprintf(out, "online: resuming the live model's continual ledger (%d window spends recorded)\n",
			core.ContinualWindowsSpent(l))
	} else {
		if acct, err = account.NewWithRule(rule, dp.Budget{Epsilon: cfg.Eps, Delta: cfg.Delta}); err != nil {
			return err
		}
	}

	var f loss.Function
	switch cfg.LossName {
	case "logistic":
		f = loss.NewLogistic(cfg.Lambda, 0)
	case "huber":
		f = loss.NewHuber(cfg.HuberH, cfg.Lambda, 0)
	default:
		return fmt.Errorf("cli: unknown loss %q", cfg.LossName)
	}
	radius := 0.0
	if cfg.Lambda > 0 {
		radius = 1 / cfg.Lambda
	}
	trainer, err := core.NewContinualTrainer(acct, cfg.Windows, f,
		core.WithPasses(cfg.Passes), core.WithBatch(cfg.Batch), core.WithRadius(radius),
		core.WithKernelWorkers(cfg.KernelWorkers),
		core.WithRand(rand.New(rand.NewSource(cfg.Seed))),
	)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "online: continual budget %v over %d windows (%v each, rule=%s), %d/%d spent\n",
		acct.Total(), trainer.Windows(), trainer.WindowBudget(), acct.Rule(), trainer.Window(), trainer.Windows())

	run := &online.Runner{
		Dir:      dir,
		Registry: reg,
		Trainer:  trainer,
		Thresholds: online.Thresholds{
			LabelRate: cfg.DriftLabel,
			Margin:    cfg.DriftMargin,
		},
		CanaryPct: cfg.CanaryPct,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
	}
	rep, err := run.Ingest(ctx, src, opt)
	if rep != nil {
		fmt.Fprintf(out, "drift: segment %s  Δlabel=%.3f Δmargin=%.3f  fired=%v\n",
			rep.Segment, rep.LabelShift, rep.MarginShift, rep.Fired)
	}
	if err != nil {
		return err
	}
	if rep.Fired {
		if name, pct, _, _ := reg.Canary(); name != nil {
			fmt.Fprintf(out, "canary: %q staged at %d%% in %s (promote with dpserve -live %s or roll back by clearing the canary)\n",
				name.Name, pct, cfg.Publish, name.Name)
		}
	}
	return nil
}

// storeSource is the store-backed dataset surface RunDPSGDCtx trains
// from, satisfied by both the single-file store.Reader (legacy caches)
// and the segment-directory store.Dir. A one-segment directory is
// bit-identical to the single file for training purposes (pinned by
// the store parity tests), so which one backs -cache is invisible to
// everything downstream of this interface.
type storeSource interface {
	sgd.Samples
	engine.Sharder
	Classes() int
	Density() float64
	Close() error
}

// scanLIBSVMNormalized streams path row-by-row into emit, applying the
// same unit-ball normalization the in-memory path applies with
// Normalize(), and polling ctx once per stride of rows.
func scanLIBSVMNormalized(ctx context.Context, path string, emit func(x *vec.Sparse, y float64) error) error {
	const ctxStride = 4096 // poll cadence: one Err check per stride of rows
	n := 0
	return data.ScanLIBSVM(path, func(row *vec.Sparse, y float64) error {
		if n%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n++
		if nrm := row.Norm(); nrm > 1 {
			row.Scale(1 / nrm)
		}
		return emit(row, y)
	})
}

// openOrConvertStore resolves the -cache flag. An existing regular
// file is a legacy single-file store and opens as before; everything
// else routes through the segment API: an existing directory is
// reused, and a fresh path converts the -data LIBSVM file into a
// one-segment directory in a single streaming pass (parse → normalize
// row → append; O(chunk) memory). The dataset is never resident in
// RAM either way.
func openOrConvertStore(ctx context.Context, cfg *DPSGDConfig, out io.Writer) (storeSource, error) {
	if fi, err := os.Stat(cfg.CachePath); err == nil {
		if !fi.IsDir() {
			rd, err := store.Open(cfg.CachePath)
			if err != nil {
				return nil, fmt.Errorf("cli: reusing -cache failed (delete it to reconvert): %w", err)
			}
			if cfg.ChunkRows > 0 && rd.ChunkRows() != cfg.ChunkRows {
				fmt.Fprintf(out, "store: -chunk %d ignored — %s was written with %d-row chunks (delete it to reconvert)\n",
					cfg.ChunkRows, cfg.CachePath, rd.ChunkRows())
			}
			fmt.Fprintf(out, "store: reusing %s (m=%d d=%d density=%.4f, %d chunks)\n",
				cfg.CachePath, rd.Len(), rd.Dim(), rd.Density(), rd.Chunks())
			return rd, nil
		}
		d, err := store.OpenDir(cfg.CachePath)
		if err != nil {
			return nil, fmt.Errorf("cli: reusing -cache failed (delete it to reconvert): %w", err)
		}
		fmt.Fprintf(out, "store: reusing %s (m=%d d=%d density=%.4f, %d segments)\n",
			cfg.CachePath, d.Len(), d.Dim(), d.Density(), len(d.SegmentNames()))
		return d, nil
	}

	start := time.Now()
	// RemapLabels01: this path writes raw, never-loaded labels, so the
	// loaders' {0,1} → ±1 convenience remap must be asked for here to
	// keep -cache and plain -data training equivalent.
	seg, err := store.AppendSegmentScan(cfg.CachePath, 0,
		store.Options{ChunkRows: cfg.ChunkRows, RemapLabels01: true},
		func(emit func(x *vec.Sparse, y float64) error) error {
			return scanLIBSVMNormalized(ctx, cfg.DataPath, emit)
		})
	if err != nil {
		return nil, err
	}
	d, err := store.OpenDir(cfg.CachePath)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "store: converted %s → %s in %v (segment %s: m=%d d=%d nnz=%d density=%.4f)\n",
		cfg.DataPath, cfg.CachePath, time.Since(start).Round(time.Millisecond),
		seg, d.Len(), d.Dim(), d.NNZ(), d.Density())
	return d, nil
}
