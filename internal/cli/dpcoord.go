package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/url"
	"strings"
	"time"

	"boltondp/internal/account"
	"boltondp/internal/account/compose"
	"boltondp/internal/core"
	"boltondp/internal/dist"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
	"boltondp/internal/serve"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
)

// DPCoordConfig is the parsed command line of cmd/dpcoord.
type DPCoordConfig struct {
	Workers   []string // worker base URLs (-workers, comma-separated)
	StorePath string   // on-disk columnar store to train from (-store)
	Sim       string
	Scale     float64
	LossName  string
	Lambda    float64
	HuberH    float64
	Eps       float64
	Delta     float64
	Passes    int
	Batch     int
	Shards    int // 0 = one shard per worker
	// Accounting is the privacy-composition rule the run's accountant
	// prices reservations under (-accounting simple|advanced|rdp).
	Accounting string
	// KernelWorkers is the intra-batch parallelism degree each dist
	// worker applies inside its shard (-kernel-workers; 1 =
	// sequential). Bit-identical output for every value.
	KernelWorkers int
	Seed          int64
	Retries       int
	EpochTimeout  time.Duration
	SavePath      string
	Publish       string
	Timeout       time.Duration
}

// ParseDPCoord parses and validates args (excluding argv[0]).
func ParseDPCoord(args []string, stderr io.Writer) (*DPCoordConfig, error) {
	cfg := &DPCoordConfig{}
	var workers string
	fs := flag.NewFlagSet("dpcoord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&workers, "workers", "", "comma-separated worker base URLs, e.g. http://a:8090,http://b:8090 (required)")
	fs.StringVar(&cfg.StorePath, "store", "", "on-disk columnar store to train from (workers must see the same path; overrides -sim)")
	fs.StringVar(&cfg.Sim, "sim", "protein", "built-in simulator: mnist|protein|covtype|higgs|kdd")
	fs.Float64Var(&cfg.Scale, "scale", 0.05, "simulator scale (1.0 = paper-sized)")
	fs.StringVar(&cfg.LossName, "loss", "logistic", "logistic|huber")
	fs.Float64Var(&cfg.Lambda, "lambda", 1e-3, "L2 regularization λ (0 = convex case)")
	fs.Float64Var(&cfg.HuberH, "huber-h", 0.1, "Huber smoothing width")
	fs.Float64Var(&cfg.Eps, "eps", 0.1, "privacy budget ε")
	fs.Float64Var(&cfg.Delta, "delta", 0, "privacy budget δ (0 = pure ε-DP)")
	fs.IntVar(&cfg.Passes, "passes", 10, "passes over the data (k)")
	fs.IntVar(&cfg.Batch, "batch", 50, "mini-batch size (b)")
	fs.IntVar(&cfg.Shards, "shards", 0, "shard count P (0 = one per worker)")
	fs.StringVar(&cfg.Accounting, "accounting", "", "privacy composition rule: simple|advanced|rdp (default simple)")
	fs.IntVar(&cfg.KernelWorkers, "kernel-workers", 1, "per-worker intra-batch SGD parallelism (bit-identical to 1 at any value)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	fs.IntVar(&cfg.Retries, "retries", 2, "same-worker retries per request before reassigning the shard")
	fs.DurationVar(&cfg.EpochTimeout, "epoch-timeout", 0, "deadline per worker request, e.g. 30s (0 = no limit)")
	fs.StringVar(&cfg.SavePath, "save", "", "write the trained model (JSON) to this path")
	fs.StringVar(&cfg.Publish, "publish", "", "publish the trained model into this registry directory (serve it with dpserve -models)")
	fs.DurationVar(&cfg.Timeout, "timeout", 0, "cancel the whole run after this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	for _, u := range strings.Split(workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			cfg.Workers = append(cfg.Workers, u)
		}
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cli: -workers needs at least one worker URL (start them with dpworker)")
	}
	for _, w := range cfg.Workers {
		u, err := url.Parse(w)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cli: bad worker URL %q (want http://host:port)", w)
		}
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cli: -shards must be >= 0, got %d", cfg.Shards)
	}
	if cfg.KernelWorkers < 1 {
		return nil, fmt.Errorf("cli: -kernel-workers must be >= 1, got %d", cfg.KernelWorkers)
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("cli: -retries must be >= 0, got %d", cfg.Retries)
	}
	if cfg.EpochTimeout < 0 || cfg.Timeout < 0 {
		return nil, errors.New("cli: -epoch-timeout and -timeout must be >= 0")
	}
	if cfg.Accounting != "" {
		if _, err := compose.New(compose.Normalize(cfg.Accounting)); err != nil {
			return nil, fmt.Errorf("cli: -accounting must be one of %v, got %q", compose.Rules(), cfg.Accounting)
		}
	}
	return cfg, nil
}

// evalSet is one labeled sample set the final model is scored on.
type evalSet struct {
	tag     string
	samples sgd.Samples
}

// coordPublishName derives the registry name for a -publish run: the
// store file's stem, or the simulator name (mirrors dpsgd).
func coordPublishName(cfg *DPCoordConfig) string {
	if cfg.StorePath == "" {
		return cfg.Sim
	}
	return modelStem(cfg.StorePath)
}

// RunDPCoord executes a parsed config, writing the report to out.
func RunDPCoord(cfg *DPCoordConfig, out io.Writer) error {
	return RunDPCoordCtx(context.Background(), cfg, out)
}

// RunDPCoordCtx is RunDPCoord under a context: cancellation (plus
// cfg.Timeout, when set) aborts the epoch loop fail-closed — workers
// keep no authoritative state, so an aborted run releases nothing.
func RunDPCoordCtx(ctx context.Context, cfg *DPCoordConfig, out io.Writer) error {
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	if cfg.Publish != "" {
		// Fail before training, not after: a rejected name would
		// otherwise discard the whole distributed run at publish time.
		if err := serve.ValidModelName(coordPublishName(cfg)); err != nil {
			return err
		}
	}
	coord := dist.NewCoordinator(dist.CoordinatorConfig{
		Retries:      cfg.Retries,
		EpochTimeout: cfg.EpochTimeout,
	})
	for _, w := range cfg.Workers {
		if err := coord.Register(ctx, w); err != nil {
			return fmt.Errorf("cli: registering worker %s: %w", w, err)
		}
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = len(cfg.Workers)
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// The coordinator-side view of the dataset: a store manifest (the
	// workers open the same file and train their chunk ranges) or an
	// inline simulator dataset shipped in the shard requests.
	var src dist.Source
	var evalSets []evalSet
	classes := 2
	if cfg.StorePath != "" {
		rd, err := store.Open(cfg.StorePath)
		if err != nil {
			return err
		}
		defer rd.Close()
		classes = rd.Classes()
		if classes == 0 {
			return fmt.Errorf("cli: %s holds too many distinct labels to classify", cfg.StorePath)
		}
		src = dist.NewStoreSource(rd)
		evalSets = append(evalSets, evalSet{"train", rd})
		fmt.Fprintf(out, "store: %s m=%d d=%d density=%.4f — workers train chunk ranges of the shared file\n",
			cfg.StorePath, rd.Len(), rd.Dim(), rd.Density())
	} else {
		gen := simGenerators[cfg.Sim]
		if gen == nil {
			return fmt.Errorf("cli: unknown simulator %q", cfg.Sim)
		}
		train, test := gen(r, cfg.Scale)
		classes = train.Classes
		src = dist.NewInlineSource(train)
		evalSets = append(evalSets, evalSet{"train", train}, evalSet{"test ", test})
	}
	if classes > 2 {
		return fmt.Errorf("cli: multiclass training is not supported here; see examples/multiclass")
	}

	var f loss.Function
	switch cfg.LossName {
	case "logistic":
		f = loss.NewLogistic(cfg.Lambda, 0)
	case "huber":
		f = loss.NewHuber(cfg.HuberH, cfg.Lambda, 0)
	default:
		return fmt.Errorf("cli: unknown loss %q", cfg.LossName)
	}
	radius := 0.0
	if cfg.Lambda > 0 {
		radius = 1 / cfg.Lambda
	}
	budget := dp.Budget{Epsilon: cfg.Eps, Delta: cfg.Delta}
	rule := compose.Normalize(cfg.Accounting)
	acct, err := account.NewWithRule(rule, budget)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "dpcoord: m=%d d=%d loss=%s budget=%v shards=%d over %d worker(s) %v\n",
		src.Rows(), src.Dim(), f.Name(), budget, shards, len(cfg.Workers), coord.Workers())

	res, err := core.TrainDistributed(ctx, coord, src, f,
		core.WithAccountant(acct), core.WithAccounting(rule),
		core.WithPasses(cfg.Passes), core.WithBatch(cfg.Batch), core.WithRadius(radius),
		core.WithStrategy(engine.Sharded, shards),
		core.WithKernelWorkers(cfg.KernelWorkers),
		core.WithRand(r))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sensitivity Δ₂=%.6g  noise ‖κ‖=%.4g  updates=%d\n",
		res.Sensitivity, res.NoiseNorm, res.Updates)

	model := &eval.Linear{W: res.W}
	for _, es := range evalSets {
		fmt.Fprintf(out, "%s accuracy: %.4f\n", es.tag, eval.Accuracy(es.samples, model))
	}
	sp := acct.Spent()
	fmt.Fprintf(out, "accounting: rule=%s  spent ε=%.6g δ=%g\n", acct.Rule(), sp.Epsilon, sp.Delta)

	meta := map[string]string{
		"algorithm": "ours-dist",
		"loss":      f.Name(),
		"epsilon":   fmt.Sprint(cfg.Eps),
		"delta":     fmt.Sprint(cfg.Delta),
		"passes":    fmt.Sprint(cfg.Passes),
		"batch":     fmt.Sprint(cfg.Batch),
		"shards":    fmt.Sprint(shards),
		"workers":   fmt.Sprint(len(cfg.Workers)),
	}
	// The audited spend travels with the model exactly as in the
	// single-process command; /modelz serves it back verbatim.
	if err := acct.StampMeta(meta); err != nil {
		return err
	}
	if cfg.SavePath != "" {
		if err := eval.SaveClassifier(cfg.SavePath, model, meta); err != nil {
			return err
		}
		fmt.Fprintf(out, "model written to %s\n", cfg.SavePath)
	}
	if cfg.Publish != "" {
		reg, err := serve.NewRegistry(cfg.Publish)
		if err != nil {
			return err
		}
		name := coordPublishName(cfg)
		m, err := reg.Publish(name, model, meta)
		if err != nil {
			return err
		}
		// Same promotion policy as dpsgd -publish: only an empty
		// registry (or a republish of the live name) swaps traffic.
		if reg.Live() == m {
			fmt.Fprintf(out, "model published to %s as %q (live)\n", cfg.Publish, name)
		} else {
			fmt.Fprintf(out, "model published to %s as %q (live is %q; promote with dpserve -live or a canary rollout)\n",
				cfg.Publish, name, reg.Live().Name)
		}
	}
	return nil
}
