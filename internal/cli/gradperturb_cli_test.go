package cli

import (
	"io"
	"path/filepath"
	"strings"
	"testing"

	"boltondp/internal/account"
	"boltondp/internal/account/compose"
	"boltondp/internal/eval"
)

// The -accounting flag parses, defaults sensibly, and rejects unknown
// rules; -strategy gradperturb carries its own validation table.
func TestParseDPSGDAccountingAndGradPerturb(t *testing.T) {
	cfg, err := ParseDPSGD(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Accounting != "" || cfg.Clip != 1 || cfg.NoiseMult != 0 {
		t.Errorf("defaults: %+v", cfg)
	}
	cfg, err = ParseDPSGD([]string{"-accounting", "rdp", "-strategy", "gradperturb",
		"-delta", "1e-6", "-clip", "0.5", "-noise-multiplier", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Accounting != "rdp" || cfg.Clip != 0.5 || cfg.NoiseMult != 2 {
		t.Errorf("parsed: %+v", cfg)
	}
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown rule", []string{"-accounting", "zcdp"}},
		{"gradperturb without delta", []string{"-strategy", "gradperturb"}},
		{"gradperturb with baseline", []string{"-strategy", "gradperturb", "-delta", "1e-6", "-algo", "bst14"}},
		{"gradperturb with workers", []string{"-strategy", "gradperturb", "-delta", "1e-6", "-workers", "4"}},
		{"gradperturb zero clip", []string{"-strategy", "gradperturb", "-delta", "1e-6", "-clip", "0"}},
		{"gradperturb negative multiplier", []string{"-strategy", "gradperturb", "-delta", "1e-6", "-noise-multiplier", "-1"}},
	} {
		if _, err := ParseDPSGD(tc.args, io.Discard); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// End-to-end: dpsgd -strategy gradperturb trains, reports rdp
// accounting, and the saved model carries an rdp ledger whose sgm entry
// records the solved noise multiplier.
func TestRunDPSGDGradPerturbEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	out, err := runQuick(t, func(c *DPSGDConfig) {
		c.Strategy = "gradperturb"
		c.Eps = 2
		c.Delta = 1e-6
		c.SavePath = path
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "accounting=rdp") || !strings.Contains(out, "accounting: rule=rdp") {
		t.Errorf("report does not announce rdp accounting: %q", out)
	}
	if !strings.Contains(out, "test  accuracy:") {
		t.Errorf("missing accuracy line: %q", out)
	}
	_, meta, err := eval.LoadClassifier(path)
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := account.LedgerFromMeta(meta)
	if err != nil || !ok {
		t.Fatalf("saved gradperturb model carries no ledger: ok=%v err=%v", ok, err)
	}
	if l.Rule != compose.RuleRDP {
		t.Errorf("ledger rule = %q, want rdp", l.Rule)
	}
	if len(l.Entries) != 1 || compose.Kind(l.Entries[0].Kind) != compose.KindSGM || l.Entries[0].Sigma <= 0 {
		t.Errorf("ledger entries: %+v", l.Entries)
	}
	if l.SpentEpsilon > 2*(1+1e-9) {
		t.Errorf("spent ε = %v exceeds the budget", l.SpentEpsilon)
	}
}

// The explicit per-rule flag flows through to output perturbation too:
// an -accounting advanced run reports its rule and stamps it into the
// saved ledger.
func TestRunDPSGDAccountingRuleFlows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	out, err := runQuick(t, func(c *DPSGDConfig) {
		c.Accounting = "advanced"
		c.Delta = 1e-6
		c.SavePath = path
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "accounting: rule=advanced") {
		t.Errorf("report does not announce the rule: %q", out)
	}
	_, meta, err := eval.LoadClassifier(path)
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := account.LedgerFromMeta(meta)
	if err != nil || !ok {
		t.Fatalf("no ledger: ok=%v err=%v", ok, err)
	}
	if l.Rule != compose.RuleAdvanced {
		t.Errorf("ledger rule = %q, want advanced", l.Rule)
	}
}
