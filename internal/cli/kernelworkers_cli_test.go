package cli

import (
	"fmt"
	"io"
	"testing"
)

// The -kernel-workers flag (dpsgd and dpcoord) selects the
// deterministic intra-batch parallelism degree: default 1 — so every
// existing CLI golden stays byte-stable — any positive value accepted,
// zero and negatives rejected at parse time.
func TestParseKernelWorkersTable(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		want    int
		wantErr bool
	}{
		{name: "default is sequential", args: nil, want: 1},
		{name: "explicit one", args: []string{"-kernel-workers", "1"}, want: 1},
		{name: "four", args: []string{"-kernel-workers", "4"}, want: 4},
		{name: "zero rejected", args: []string{"-kernel-workers", "0"}, wantErr: true},
		{name: "negative rejected", args: []string{"-kernel-workers", "-2"}, wantErr: true},
		{name: "garbage rejected", args: []string{"-kernel-workers", "many"}, wantErr: true},
	} {
		t.Run(fmt.Sprintf("dpsgd/%s", tc.name), func(t *testing.T) {
			cfg, err := ParseDPSGD(tc.args, io.Discard)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseDPSGD(%v) accepted", tc.args)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if cfg.KernelWorkers != tc.want {
				t.Errorf("KernelWorkers = %d, want %d", cfg.KernelWorkers, tc.want)
			}
		})
		t.Run(fmt.Sprintf("dpcoord/%s", tc.name), func(t *testing.T) {
			args := append([]string{"-workers", "http://localhost:1"}, tc.args...)
			cfg, err := ParseDPCoord(args, io.Discard)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseDPCoord(%v) accepted", args)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if cfg.KernelWorkers != tc.want {
				t.Errorf("KernelWorkers = %d, want %d", cfg.KernelWorkers, tc.want)
			}
		})
	}
}
