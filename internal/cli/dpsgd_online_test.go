package cli

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boltondp/internal/serve"
)

// libsvmFileWithRate writes a sparse LIBSVM file whose +1 label rate is
// posPerTen/10, on the same d=50 layout as sparseLIBSVMFile.
func libsvmFileWithRate(t *testing.T, dir, name string, rows, posPerTen int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var b strings.Builder
	for i := 0; i < rows; i++ {
		if i%10 < posPerTen {
			b.WriteString("1 3:0.8 50:0.1\n")
		} else {
			b.WriteString("-1 7:-0.8 50:0.1\n")
		}
	}
	if err := writeFile(path, b.String()); err != nil {
		t.Fatal(err)
	}
	return path
}

// The -ingest / -online flags: parse validation.
func TestParseDPSGDOnlineFlags(t *testing.T) {
	cfg, err := ParseDPSGD([]string{"-cache", "x.dir", "-ingest", "new.libsvm"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Ingest != "new.libsvm" || cfg.Online || cfg.Windows != 4 || cfg.CanaryPct != 10 {
		t.Errorf("parsed: %+v", cfg)
	}
	if _, err := ParseDPSGD([]string{"-cache", "x.dir", "-ingest", "n.libsvm", "-online", "-publish", "reg"}, io.Discard); err != nil {
		t.Fatalf("full online invocation rejected: %v", err)
	}
	for _, tc := range [][]string{
		{"-ingest", "n.libsvm"},                          // -ingest without -cache
		{"-data", "x.libsvm", "-online"},                 // -online without -ingest
		{"-cache", "x.dir", "-ingest", "n.l", "-online"}, // -online without -publish
		{"-cache", "x.dir", "-ingest", "n.l", "-windows", "0"},
		{"-cache", "x.dir", "-ingest", "n.l", "-canary-pct", "101"},
		{"-cache", "x.dir", "-ingest", "n.l", "-drift-label", "-0.1"},
	} {
		if _, err := ParseDPSGD(tc, io.Discard); err == nil {
			t.Errorf("args %v accepted", tc)
		}
	}
}

// -ingest appends a segment to the -cache directory; a violating batch
// fails closed and leaves the directory unchanged.
func TestRunDPSGDIngestSegment(t *testing.T) {
	dir := t.TempDir()
	dataPath := sparseLIBSVMFile(t, dir, 200)
	cachePath := filepath.Join(dir, "train.segdir")

	if _, err := runQuick(t, func(c *DPSGDConfig) {
		c.DataPath = dataPath
		c.CachePath = cachePath
		c.Eps = 4
	}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cachePath); err != nil || !fi.IsDir() {
		t.Fatalf("-cache is not a segment directory: fi=%v err=%v", fi, err)
	}

	newPath := libsvmFileWithRate(t, dir, "new.libsvm", 100, 5)
	out, err := runQuick(t, func(c *DPSGDConfig) {
		c.CachePath = cachePath
		c.Ingest = newPath
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ingest: segment") || !strings.Contains(out, "m=300") || !strings.Contains(out, "2 segments") {
		t.Errorf("ingest output: %q", out)
	}

	// A dense batch violates the density invariant (1.0 vs ~0.04, far
	// past the 16x gate): fail closed.
	var b strings.Builder
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			b.WriteString("1")
		} else {
			b.WriteString("-1")
		}
		for j := 1; j <= 50; j++ {
			fmt.Fprintf(&b, " %d:0.1", j)
		}
		b.WriteString("\n")
	}
	badPath := filepath.Join(dir, "bad.libsvm")
	if err := writeFile(badPath, b.String()); err != nil {
		t.Fatal(err)
	}
	_, err = runQuick(t, func(c *DPSGDConfig) {
		c.CachePath = cachePath
		c.Ingest = badPath
	})
	if err == nil || !strings.Contains(err.Error(), "density") {
		t.Fatalf("violating ingest err = %v", err)
	}
	out, err = runQuick(t, func(c *DPSGDConfig) { // directory unchanged
		c.CachePath = cachePath
		c.Ingest = libsvmFileWithRate(t, dir, "new2.libsvm", 100, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "m=400") || !strings.Contains(out, "3 segments") {
		t.Errorf("post-rejection ingest output: %q", out)
	}
}

// The full CLI online loop: train-and-publish, ingest a drifting batch
// with -online, and a canary version appears in the registry.
func TestRunDPSGDOnlineDriftCanary(t *testing.T) {
	dir := t.TempDir()
	dataPath := sparseLIBSVMFile(t, dir, 200)
	cachePath := filepath.Join(dir, "train.segdir")
	regPath := filepath.Join(dir, "registry")

	if _, err := runQuick(t, func(c *DPSGDConfig) {
		c.DataPath = dataPath
		c.CachePath = cachePath
		c.Publish = regPath
		c.Eps = 4
	}); err != nil {
		t.Fatal(err)
	}

	online := func(c *DPSGDConfig) {
		c.CachePath = cachePath
		c.Online = true
		c.Publish = regPath
		c.Windows = 2
		c.Eps = 2
		c.Seed = 7
	}

	// Same distribution: ingested, no drift, no canary.
	out, err := runQuick(t, func(c *DPSGDConfig) {
		online(c)
		c.Ingest = libsvmFileWithRate(t, dir, "same.libsvm", 100, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fired=false") || strings.Contains(out, "canary:") {
		t.Errorf("no-drift ingest output: %q", out)
	}

	// Label-prior shift (50% → 10% positives): drift fires, one window
	// is spent, the retrained model is staged as a canary.
	out, err = runQuick(t, func(c *DPSGDConfig) {
		online(c)
		c.Ingest = libsvmFileWithRate(t, dir, "drift.libsvm", 100, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fired=true") || !strings.Contains(out, `canary: "train-w1"`) {
		t.Errorf("drift ingest output: %q", out)
	}

	// The canary rollout itself is per-process routing state (dpserve
	// owns it); what persists in the registry directory is the canary
	// model version and the unchanged live designation.
	reg, err := serve.NewRegistry(regPath)
	if err != nil {
		t.Fatal(err)
	}
	canary, ok := reg.Get("train-w1")
	if !ok {
		t.Fatalf("canary version not published; registry has %v", reg.Names())
	}
	if reg.Live().Name != "train" {
		t.Errorf("live = %q, promotion must stay an explicit step", reg.Live().Name)
	}
	// The canary's metadata audits the window spend and drift snapshot.
	if canary.Meta["online.window"] != "1" {
		t.Errorf("canary meta: %v", canary.Meta)
	}
	if canary.Meta["ledger.rule"] == "" && canary.Meta["account.rule"] == "" {
		// StampMeta key naming is the account package's business; just
		// require that some ledger stamp rode along.
		found := false
		for k := range canary.Meta {
			if strings.Contains(k, "ledger") || strings.Contains(k, "account") {
				found = true
			}
		}
		if !found {
			t.Errorf("no ledger stamp in canary meta: %v", canary.Meta)
		}
	}
}
