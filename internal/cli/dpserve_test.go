package cli

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"boltondp/internal/eval"
	"boltondp/internal/serve"
)

func TestParseDPServeDefaults(t *testing.T) {
	cfg, err := ParseDPServe([]string{"-models", "reg"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":8080" || cfg.ModelsDir != "reg" || cfg.ModelPath != "" ||
		cfg.Live != "" || cfg.Workers < 1 || cfg.MaxBatch != 0 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestParseDPServeTable(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
		chk  func(*DPServeConfig) bool
	}{
		{
			name: "registry with live and addr",
			args: []string{"-models", "reg", "-live", "protein", "-addr", "127.0.0.1:9090", "-workers", "2"},
			ok:   true,
			chk: func(c *DPServeConfig) bool {
				return c.ModelsDir == "reg" && c.Live == "protein" && c.Addr == "127.0.0.1:9090" && c.Workers == 2
			},
		},
		{
			name: "single model file",
			args: []string{"-model", "m.json", "-max-batch", "100"},
			ok:   true,
			chk:  func(c *DPServeConfig) bool { return c.ModelPath == "m.json" && c.MaxBatch == 100 },
		},
		{name: "no model source", args: nil, ok: false},
		{name: "conflicting sources", args: []string{"-models", "reg", "-model", "m.json"}, ok: false},
		{name: "live without registry", args: []string{"-model", "m.json", "-live", "x"}, ok: false},
		{name: "bad address no port", args: []string{"-models", "reg", "-addr", "localhost"}, ok: false},
		{name: "bad address garbage", args: []string{"-models", "reg", "-addr", "host:port:extra"}, ok: false},
		{name: "zero workers", args: []string{"-models", "reg", "-workers", "0"}, ok: false},
		{name: "negative max-batch", args: []string{"-models", "reg", "-max-batch", "-1"}, ok: false},
		{name: "bad flag value", args: []string{"-models", "reg", "-workers", "nope"}, ok: false},
		{name: "unknown flag", args: []string{"-models", "reg", "-nope"}, ok: false},
		{
			name: "admission knobs",
			args: []string{"-models", "reg", "-max-inflight", "8", "-max-queue", "16", "-queue-timeout", "250ms"},
			ok:   true,
			chk: func(c *DPServeConfig) bool {
				return c.MaxInflight == 8 && c.MaxQueue == 16 && c.QueueTimeout == 250*time.Millisecond
			},
		},
		{
			name: "watch with interval",
			args: []string{"-models", "reg", "-watch", "-watch-interval", "100ms"},
			ok:   true,
			chk:  func(c *DPServeConfig) bool { return c.Watch && c.WatchInterval == 100*time.Millisecond },
		},
		{
			name: "canary with pct",
			args: []string{"-models", "reg", "-canary", "cand", "-canary-pct", "25"},
			ok:   true,
			chk:  func(c *DPServeConfig) bool { return c.Canary == "cand" && c.CanaryPct == 25 },
		},
		{name: "negative max-inflight", args: []string{"-models", "reg", "-max-inflight", "-1"}, ok: false},
		{name: "queue without inflight", args: []string{"-models", "reg", "-max-queue", "4"}, ok: false},
		{name: "queue-timeout without inflight", args: []string{"-models", "reg", "-queue-timeout", "1s"}, ok: false},
		{name: "canary-pct out of range", args: []string{"-models", "reg", "-canary", "c", "-canary-pct", "101"}, ok: false},
		{name: "watch without registry", args: []string{"-model", "m.json", "-watch"}, ok: false},
		{name: "canary without registry", args: []string{"-model", "m.json", "-canary", "c"}, ok: false},
	}
	for _, tc := range cases {
		cfg, err := ParseDPServe(tc.args, io.Discard)
		if tc.ok != (err == nil) {
			t.Errorf("%s: err = %v, want ok=%t", tc.name, err, tc.ok)
			continue
		}
		if tc.ok && tc.chk != nil && !tc.chk(cfg) {
			t.Errorf("%s: parsed %+v", tc.name, cfg)
		}
	}
}

func TestBuildDPServeErrors(t *testing.T) {
	empty := t.TempDir()
	multi := t.TempDir()
	for _, name := range []string{"a", "b"} {
		if err := eval.SaveClassifier(filepath.Join(multi, name+".json"), &eval.Linear{W: []float64{1, 2}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	cases := map[string]*DPServeConfig{
		"empty registry":     {ModelsDir: empty},
		"ambiguous live":     {ModelsDir: multi},
		"unknown live":       {ModelsDir: multi, Live: "c"},
		"missing model file": {ModelPath: filepath.Join(empty, "nope.json")},
	}
	for name, cfg := range cases {
		if _, _, err := BuildDPServe(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The same multi-model registry works once -live picks a version.
	reg, srv, err := BuildDPServe(&DPServeConfig{ModelsDir: multi, Live: "b", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil || reg.Live() == nil || reg.Live().Name != "b" {
		t.Errorf("live %v", reg.Live())
	}
}

// TestBuildDPServeCanaryAndAdmission: -canary and -max-inflight arrive
// wired into the built service.
func TestBuildDPServeCanaryAndAdmission(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"stable", "cand"} {
		if err := eval.SaveClassifier(filepath.Join(dir, name+".json"), &eval.Linear{W: []float64{1, 2}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	reg, srv, err := BuildDPServe(&DPServeConfig{
		ModelsDir: dir, Live: "stable", Workers: 1,
		Canary: "cand", CanaryPct: 20, MaxInflight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cm, pct, _, _ := reg.Canary(); cm == nil || cm.Name != "cand" || pct != 20 {
		t.Errorf("canary not wired: %v %d", cm, pct)
	}
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	var health struct {
		Admission *struct {
			MaxInflight int `json:"maxInflight"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Admission == nil || health.Admission.MaxInflight != 2 {
		t.Errorf("admission gate not wired: %s", w.Body.String())
	}
	// An unknown canary name fails the build, not the first request.
	if _, _, err := BuildDPServe(&DPServeConfig{ModelsDir: dir, Live: "stable", Canary: "nope", CanaryPct: 20}); err == nil {
		t.Error("unknown canary name accepted")
	}
}

// TestTrainPublishServe is the subsystem's end-to-end story: dpsgd
// trains and publishes into a registry directory, dpserve builds a
// service over it, and a prediction comes back over the HTTP handler
// with the privacy metadata intact.
func TestTrainPublishServe(t *testing.T) {
	dir := t.TempDir()
	out, err := runQuick(t, func(c *DPSGDConfig) { c.Publish = dir })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `model published to `+dir+` as "protein" (live)`) {
		t.Errorf("publish confirmation missing: %q", out)
	}

	cfg, err := ParseDPServe([]string{"-models", dir}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	reg, srv, err := BuildDPServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := reg.Live()
	if live == nil || live.Name != "protein" || live.Meta["algorithm"] != "ours" || live.Meta["epsilon"] != "0.1" {
		t.Fatalf("live model %+v", live)
	}

	h := srv.Handler()
	row := serve.Row{Idx: []int{0, live.Dim - 1}, Val: []float64{0.5, -0.5}}
	body, _ := json.Marshal(map[string]any{"idx": row.Idx, "val": row.Val})
	req := httptest.NewRequest("POST", "/predict", strings.NewReader(string(body)))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", w.Code, w.Body.String())
	}
	var resp struct {
		Model string  `json:"model"`
		Label float64 `json:"label"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model != "protein" || (resp.Label != 1 && resp.Label != -1) {
		t.Errorf("response %+v", resp)
	}
}

func TestRunDPSGDPublishBadNameFailsFast(t *testing.T) {
	// A data-file stem Publish would reject must error before training
	// (and before even opening the file — nothing exists at this path).
	_, err := runQuick(t, func(c *DPSGDConfig) {
		c.DataPath = "/nonexistent/.hidden.libsvm"
		c.Publish = t.TempDir()
	})
	if err == nil || !strings.Contains(err.Error(), "invalid model name") {
		t.Errorf("err = %v, want invalid-model-name", err)
	}
}

func TestRunDPSGDPublishNameFromDataPath(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "fraud.libsvm")
	var b strings.Builder
	for i := 0; i < 120; i++ {
		if i%2 == 0 {
			b.WriteString("1 1:0.8 2:0.1\n")
		} else {
			b.WriteString("-1 1:-0.8 2:0.1\n")
		}
	}
	if err := writeFile(dataPath, b.String()); err != nil {
		t.Fatal(err)
	}
	regDir := filepath.Join(dir, "reg")
	out, err := runQuick(t, func(c *DPSGDConfig) {
		c.DataPath = dataPath
		c.Eps = 4
		c.Publish = regDir
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `as "fraud" (live)`) {
		t.Errorf("publish name not derived from data file: %q", out)
	}
	reg, err := serve.NewRegistry(regDir)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Live() == nil || reg.Live().Name != "fraud" || reg.Live().Dim != 2 {
		t.Errorf("republished registry live %+v", reg.Live())
	}
}
