package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"boltondp/internal/eval"
	"boltondp/internal/serve"
)

// DPServeConfig is the parsed command line of cmd/dpserve.
type DPServeConfig struct {
	Addr      string
	ModelsDir string // registry directory (-models)
	ModelPath string // single model file (-model)
	Live      string // live version name inside -models
	Workers   int
	MaxBatch  int

	// Admission control (-max-inflight/-max-queue/-queue-timeout).
	MaxInflight  int
	MaxQueue     int
	QueueTimeout time.Duration

	// Watch (-watch/-watch-interval): poll the registry directory so a
	// replica fleet converges on publishes and live-swaps.
	Watch         bool
	WatchInterval time.Duration

	// Canary rollout (-canary/-canary-pct).
	Canary    string
	CanaryPct int
}

// ParseDPServe parses and validates args (excluding argv[0]).
func ParseDPServe(args []string, stderr io.Writer) (*DPServeConfig, error) {
	cfg := &DPServeConfig{}
	fs := flag.NewFlagSet("dpserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.Addr, "addr", ":8080", "listen address (host:port)")
	fs.StringVar(&cfg.ModelsDir, "models", "", "model registry directory (populate with dpsgd -publish)")
	fs.StringVar(&cfg.ModelPath, "model", "", "single model file (from dpsgd -save)")
	fs.StringVar(&cfg.Live, "live", "", "registry model to serve live (default: the only model)")
	fs.IntVar(&cfg.Workers, "workers", runtime.GOMAXPROCS(0), "goroutines scoring each batch request")
	fs.IntVar(&cfg.MaxBatch, "max-batch", 0, "max rows per batch request (0 = server default)")
	fs.IntVar(&cfg.MaxInflight, "max-inflight", 0, "max concurrent scoring requests (0 = unlimited; overflow queues, then sheds with 429)")
	fs.IntVar(&cfg.MaxQueue, "max-queue", 0, "max requests queued for a scoring slot (0 = same as -max-inflight)")
	fs.DurationVar(&cfg.QueueTimeout, "queue-timeout", 0, "max time a request may queue before shedding (0 = server default, 1s)")
	fs.BoolVar(&cfg.Watch, "watch", false, "poll -models for publishes and live-swaps from other processes")
	fs.DurationVar(&cfg.WatchInterval, "watch-interval", 0, "poll interval for -watch (0 = default, 2s)")
	fs.StringVar(&cfg.Canary, "canary", "", "registry model to canary: routes -canary-pct% of live batch rows to it")
	fs.IntVar(&cfg.CanaryPct, "canary-pct", 10, "percent of live batch rows routed to the -canary model (0-100)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if _, _, err := net.SplitHostPort(cfg.Addr); err != nil {
		return nil, fmt.Errorf("cli: bad -addr %q: %w", cfg.Addr, err)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("cli: -workers must be >= 1, got %d", cfg.Workers)
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("cli: -max-batch must be >= 0, got %d", cfg.MaxBatch)
	}
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("cli: -max-inflight must be >= 0, got %d", cfg.MaxInflight)
	}
	if cfg.MaxQueue < 0 || cfg.QueueTimeout < 0 {
		return nil, errors.New("cli: -max-queue and -queue-timeout must be >= 0")
	}
	if cfg.MaxInflight == 0 && (cfg.MaxQueue > 0 || cfg.QueueTimeout > 0) {
		return nil, errors.New("cli: -max-queue/-queue-timeout need -max-inflight to enable admission control")
	}
	if cfg.CanaryPct < 0 || cfg.CanaryPct > 100 {
		return nil, fmt.Errorf("cli: -canary-pct must be in [0,100], got %d", cfg.CanaryPct)
	}
	switch {
	case cfg.ModelsDir == "" && cfg.ModelPath == "":
		return nil, errors.New("cli: need a model source: -models DIR or -model FILE")
	case cfg.ModelsDir != "" && cfg.ModelPath != "":
		return nil, errors.New("cli: -models and -model are mutually exclusive")
	case cfg.ModelPath != "" && cfg.Live != "":
		return nil, errors.New("cli: -live selects inside a -models registry; it conflicts with -model")
	case cfg.ModelPath != "" && cfg.Watch:
		return nil, errors.New("cli: -watch polls a -models registry; it conflicts with -model")
	case cfg.ModelPath != "" && cfg.Canary != "":
		return nil, errors.New("cli: -canary selects inside a -models registry; it conflicts with -model")
	}
	return cfg, nil
}

// BuildDPServe assembles the registry and prediction service for a
// validated config — the testable core of RunDPServe, stopping just
// short of binding a socket.
func BuildDPServe(cfg *DPServeConfig) (*serve.Registry, *serve.Server, error) {
	var reg *serve.Registry
	switch {
	case cfg.ModelsDir != "":
		var err error
		reg, err = serve.NewRegistry(cfg.ModelsDir)
		if err != nil {
			return nil, nil, err
		}
		if reg.Len() == 0 {
			return nil, nil, fmt.Errorf("cli: no models in %s (publish one with dpsgd -publish)", cfg.ModelsDir)
		}
		if cfg.Live != "" {
			if _, err := reg.SetLive(cfg.Live); err != nil {
				return nil, nil, err
			}
		}
		if reg.Live() == nil {
			return nil, nil, fmt.Errorf("cli: %s holds %d models; pick one with -live (have %v)",
				cfg.ModelsDir, reg.Len(), reg.Names())
		}
	default:
		c, meta, err := eval.LoadClassifier(cfg.ModelPath)
		if err != nil {
			return nil, nil, err
		}
		reg, err = serve.NewRegistry("")
		if err != nil {
			return nil, nil, err
		}
		if _, err := reg.Publish(modelStem(cfg.ModelPath), c, meta); err != nil {
			return nil, nil, err
		}
	}
	if cfg.Canary != "" {
		if err := reg.SetCanary(cfg.Canary, cfg.CanaryPct); err != nil {
			return nil, nil, err
		}
	}
	return reg, serve.New(reg, serve.Config{
		Workers:      cfg.Workers,
		MaxBatch:     cfg.MaxBatch,
		MaxInflight:  cfg.MaxInflight,
		MaxQueue:     cfg.MaxQueue,
		QueueTimeout: cfg.QueueTimeout,
	}), nil
}

// modelStem derives a registry model name from a file path: the base
// name without its extension. Shared by dpserve -model and dpsgd
// -publish so both sides name the same file identically.
func modelStem(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// RunDPServe executes a parsed config: it builds the service, binds
// cfg.Addr, announces the bound address on out and serves until the
// listener fails.
func RunDPServe(cfg *DPServeConfig, out io.Writer) error {
	return RunDPServeCtx(context.Background(), cfg, out)
}

// RunDPServeCtx is RunDPServe under a context: when ctx is cancelled
// (SIGINT/SIGTERM in cmd/dpserve) the server shuts down gracefully —
// the listener closes, in-flight requests get a drain window, and the
// per-request contexts of any still-running batch scorings are
// cancelled so they release their workers immediately.
func RunDPServeCtx(ctx context.Context, cfg *DPServeConfig, out io.Writer) error {
	reg, srv, err := BuildDPServe(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	live := reg.Live()
	fmt.Fprintf(out, "dpserve: %d model(s), live=%q (dim=%d classes=%d), workers=%d, listening on %s\n",
		reg.Len(), live.Name, live.Dim, live.Classes, cfg.Workers, ln.Addr())
	if cm, pct, _, _ := reg.Canary(); cm != nil {
		fmt.Fprintf(out, "dpserve: canary %q taking %d%% of live batch rows\n", cm.Name, pct)
	}
	if cfg.Watch {
		// The watcher shares the server's lifetime: ctx cancellation
		// stops it alongside the listener.
		go reg.WatchEvery(ctx, cfg.WatchInterval) //nolint:errcheck // only returns ctx.Err()
		every := cfg.WatchInterval
		if every <= 0 {
			every = serve.DefaultWatchInterval
		}
		fmt.Fprintf(out, "dpserve: watching %s every %v for publishes and live-swaps\n", cfg.ModelsDir, every)
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// A serving process must survive slow or stalled clients:
		// without these, each slowloris-style connection pins a
		// goroutine and fd forever (MaxBytesReader only guards the
		// body once headers arrive).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
		// Request contexts inherit ctx, so shutdown (and anything else
		// that cancels ctx) propagates into in-flight batch scorings.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	serveDone := make(chan struct{})
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		select {
		case <-ctx.Done():
			fmt.Fprintln(out, "dpserve: shutting down")
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			hs.Shutdown(sctx) //nolint:errcheck // best-effort drain; Serve's error is the report
		case <-serveDone:
		}
	}()
	err = hs.Serve(ln)
	close(serveDone)
	<-shutdownDone // a triggered Shutdown finishes draining before we return
	if errors.Is(err, http.ErrServerClosed) && ctx.Err() != nil {
		return nil
	}
	return err
}
