package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"boltondp/internal/dist"
)

// DPWorkerConfig is the parsed command line of cmd/dpworker.
type DPWorkerConfig struct {
	Addr string
}

// ParseDPWorker parses and validates args (excluding argv[0]).
func ParseDPWorker(args []string, stderr io.Writer) (*DPWorkerConfig, error) {
	cfg := &DPWorkerConfig{}
	fs := flag.NewFlagSet("dpworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.Addr, "addr", ":8090", "listen address (host:port)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if _, _, err := net.SplitHostPort(cfg.Addr); err != nil {
		return nil, fmt.Errorf("cli: bad -addr %q: %w", cfg.Addr, err)
	}
	return cfg, nil
}

// RunDPWorker executes a parsed config: it binds cfg.Addr, announces
// the bound address on out and serves shard-training requests until
// the listener fails.
func RunDPWorker(cfg *DPWorkerConfig, out io.Writer) error {
	return RunDPWorkerCtx(context.Background(), cfg, out)
}

// RunDPWorkerCtx is RunDPWorker under a context: when ctx is cancelled
// (SIGINT/SIGTERM in cmd/dpworker) the worker shuts down gracefully —
// the listener closes, in-flight epoch requests get a drain window,
// and every installed shard's store reader is closed on the way out.
func RunDPWorkerCtx(ctx context.Context, cfg *DPWorkerConfig, out io.Writer) error {
	wk := dist.NewWorker()
	defer wk.Close()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	fmt.Fprintf(out, "dpworker: protocol v%d, listening on %s\n", dist.ProtocolVersion, ln.Addr())
	hs := &http.Server{
		Handler: wk.Handler(),
		// Same slow-client hardening as dpserve: a training worker is
		// a long-lived network process and must survive stalled peers.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	serveDone := make(chan struct{})
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		select {
		case <-ctx.Done():
			fmt.Fprintln(out, "dpworker: shutting down")
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			hs.Shutdown(sctx) //nolint:errcheck // best-effort drain; Serve's error is the report
		case <-serveDone:
		}
	}()
	err = hs.Serve(ln)
	close(serveDone)
	<-shutdownDone // a triggered Shutdown finishes draining before we return
	if errors.Is(err, http.ErrServerClosed) && ctx.Err() != nil {
		return nil
	}
	return err
}
