package cli

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"boltondp/internal/account"
	"boltondp/internal/eval"
)

func TestParseDPSGDDefaults(t *testing.T) {
	cfg, err := ParseDPSGD(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sim != "protein" || cfg.Algo != "ours" || cfg.Eps != 0.1 ||
		cfg.Passes != 10 || cfg.Batch != 50 || cfg.Lambda != 1e-3 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestParseDPSGDFlags(t *testing.T) {
	cfg, err := ParseDPSGD([]string{
		"-sim", "kdd", "-algo", "bst14", "-eps", "2", "-delta", "1e-6",
		"-passes", "3", "-batch", "7", "-lambda", "0.01", "-seed", "9",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sim != "kdd" || cfg.Algo != "bst14" || cfg.Eps != 2 ||
		cfg.Delta != 1e-6 || cfg.Passes != 3 || cfg.Batch != 7 || cfg.Seed != 9 {
		t.Errorf("parsed: %+v", cfg)
	}
}

func TestParseDPSGDBadFlag(t *testing.T) {
	if _, err := ParseDPSGD([]string{"-passes", "nope"}, io.Discard); err == nil {
		t.Error("bad flag value accepted")
	}
}

// The -timeout flag accepts Go duration syntax, defaults to no limit,
// and rejects garbage and negative values.
func TestParseDPSGDTimeout(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		want    time.Duration
		wantErr bool
	}{
		{name: "default is no limit", args: nil, want: 0},
		{name: "seconds", args: []string{"-timeout", "30s"}, want: 30 * time.Second},
		{name: "minutes", args: []string{"-timeout", "2m"}, want: 2 * time.Minute},
		{name: "compound", args: []string{"-timeout", "1h30m"}, want: 90 * time.Minute},
		{name: "millis", args: []string{"-timeout", "250ms"}, want: 250 * time.Millisecond},
		{name: "explicit zero", args: []string{"-timeout", "0"}, want: 0},
		{name: "negative rejected", args: []string{"-timeout", "-5s"}, wantErr: true},
		{name: "bare number rejected", args: []string{"-timeout", "30"}, wantErr: true},
		{name: "garbage rejected", args: []string{"-timeout", "soon"}, wantErr: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := ParseDPSGD(tc.args, io.Discard)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseDPSGD(%v) accepted", tc.args)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Timeout != tc.want {
				t.Errorf("Timeout = %v, want %v", cfg.Timeout, tc.want)
			}
		})
	}
}

// An expiring -timeout cancels training through the context plumbing:
// the run errors with context.DeadlineExceeded instead of finishing.
func TestRunDPSGDTimeoutCancelsTraining(t *testing.T) {
	cfg, err := ParseDPSGD(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scale = 0.2
	cfg.Passes = 500 // long enough that a 1ns deadline always hits first
	cfg.Timeout = time.Nanosecond
	var out bytes.Buffer
	err = RunDPSGDCtx(context.Background(), cfg, &out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// A cancelled caller context cancels the same way.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Timeout = 0
	if err := RunDPSGDCtx(ctx, cfg, &out); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Private runs stamp the accountant's ledger into saved-model metadata.
func TestRunDPSGDSaveCarriesLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	if _, err := runQuick(t, func(c *DPSGDConfig) { c.SavePath = path }); err != nil {
		t.Fatal(err)
	}
	_, meta, err := eval.LoadClassifier(path)
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := account.LedgerFromMeta(meta)
	if err != nil || !ok {
		t.Fatalf("saved model carries no ledger: ok=%v err=%v meta=%v", ok, err, meta)
	}
	if l.TotalEpsilon != 0.1 || l.SpentEpsilon != 0.1 {
		t.Errorf("ledger totals: %+v", l)
	}
	if len(l.Entries) != 1 || !strings.HasPrefix(l.Entries[0].Label, "train(") {
		t.Errorf("ledger entries: %+v", l.Entries)
	}
}

func runQuick(t *testing.T, mutate func(*DPSGDConfig)) (string, error) {
	t.Helper()
	cfg, err := ParseDPSGD(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scale = 0.005
	cfg.Passes = 2
	if mutate != nil {
		mutate(cfg)
	}
	var out bytes.Buffer
	err = RunDPSGD(cfg, &out)
	return out.String(), err
}

func TestRunDPSGDAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"ours", "noiseless", "scs13"} {
		out, err := runQuick(t, func(c *DPSGDConfig) { c.Algo = algo })
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out, "test  accuracy:") {
			t.Errorf("%s: missing accuracy line in %q", algo, out)
		}
	}
	// BST14 needs δ > 0.
	out, err := runQuick(t, func(c *DPSGDConfig) { c.Algo = "bst14"; c.Delta = 1e-6 })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "per-batch noise draws") {
		t.Errorf("bst14 output: %q", out)
	}
}

func TestParseDPSGDStrategyFlags(t *testing.T) {
	cfg, err := ParseDPSGD([]string{"-strategy", "sharded", "-workers", "4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Strategy != "sharded" || cfg.Workers != 4 {
		t.Errorf("parsed: %+v", cfg)
	}
	if def, _ := ParseDPSGD(nil, io.Discard); def.Strategy != "sequential" || def.Workers != 1 {
		t.Errorf("defaults: %+v", def)
	}
}

func TestRunDPSGDStrategies(t *testing.T) {
	for _, algo := range []string{"ours", "noiseless"} {
		out, err := runQuick(t, func(c *DPSGDConfig) {
			c.Algo = algo
			c.Strategy = "sharded"
			c.Workers = 2
		})
		if err != nil {
			t.Fatalf("%s sharded: %v", algo, err)
		}
		if !strings.Contains(out, "strategy=sharded workers=2") {
			t.Errorf("%s sharded: missing strategy line in %q", algo, out)
		}
	}
	// Streaming pins passes to 1 regardless of -passes.
	out, err := runQuick(t, func(c *DPSGDConfig) { c.Strategy = "streaming" })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strategy=streaming") || !strings.Contains(out, "test  accuracy:") {
		t.Errorf("streaming output: %q", out)
	}
	// White-box algorithms reject non-sequential strategies — and a
	// bare -workers N, which would otherwise be silently ignored.
	if _, err := runQuick(t, func(c *DPSGDConfig) { c.Algo = "scs13"; c.Strategy = "sharded"; c.Workers = 2 }); err == nil {
		t.Error("scs13 sharded accepted")
	}
	if _, err := runQuick(t, func(c *DPSGDConfig) { c.Algo = "scs13"; c.Workers = 8 }); err == nil {
		t.Error("scs13 with -workers accepted (would run sequentially while printing workers=8)")
	}
	if _, err := runQuick(t, func(c *DPSGDConfig) { c.Strategy = "nope" }); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunDPSGDHuber(t *testing.T) {
	out, err := runQuick(t, func(c *DPSGDConfig) { c.LossName = "huber" })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "huber") {
		t.Errorf("loss name missing: %q", out)
	}
}

func TestRunDPSGDErrors(t *testing.T) {
	for name, mutate := range map[string]func(*DPSGDConfig){
		"bad sim":        func(c *DPSGDConfig) { c.Sim = "nope" },
		"bad loss":       func(c *DPSGDConfig) { c.LossName = "nope" },
		"bad algo":       func(c *DPSGDConfig) { c.Algo = "nope" },
		"multiclass sim": func(c *DPSGDConfig) { c.Sim = "mnist" },
		"bst14 no delta": func(c *DPSGDConfig) { c.Algo = "bst14" },
		"missing file":   func(c *DPSGDConfig) { c.DataPath = "/nonexistent.libsvm" },
	} {
		if _, err := runQuick(t, mutate); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunDPSGDSaveModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	out, err := runQuick(t, func(c *DPSGDConfig) { c.SavePath = path })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "model written to") {
		t.Errorf("save confirmation missing: %q", out)
	}
	model, meta, err := eval.LoadClassifier(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := model.(*eval.Linear); !ok {
		t.Errorf("loaded %T", model)
	}
	if meta["algorithm"] != "ours" || meta["epsilon"] != "0.1" {
		t.Errorf("meta %v", meta)
	}
}

func TestRunDPSGDFromLIBSVMFile(t *testing.T) {
	// Build a tiny separable LIBSVM file and train on it end to end.
	dir := t.TempDir()
	path := filepath.Join(dir, "train.libsvm")
	var b strings.Builder
	for i := 0; i < 120; i++ {
		if i%2 == 0 {
			b.WriteString("1 1:0.8 2:0.1\n")
		} else {
			b.WriteString("-1 1:-0.8 2:0.1\n")
		}
	}
	if err := writeFile(path, b.String()); err != nil {
		t.Fatal(err)
	}
	out, err := runQuick(t, func(c *DPSGDConfig) {
		c.DataPath = path
		c.Eps = 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "d=2") {
		t.Errorf("dimension not picked up from file: %q", out)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// A low-density LIBSVM file must route through the CSR representation
// (and report doing so); the dense 2-feature file above stays dense.
func TestRunDPSGDSparseRouting(t *testing.T) {
	dir := t.TempDir()
	sparsePath := filepath.Join(dir, "sparse.libsvm")
	var b strings.Builder
	for i := 0; i < 120; i++ {
		// 2 of 50 features per row → density 0.04, well under threshold.
		if i%2 == 0 {
			b.WriteString("1 3:0.8 50:0.1\n")
		} else {
			b.WriteString("-1 7:-0.8 50:0.1\n")
		}
	}
	if err := writeFile(sparsePath, b.String()); err != nil {
		t.Fatal(err)
	}
	out, err := runQuick(t, func(c *DPSGDConfig) {
		c.DataPath = sparsePath
		c.Eps = 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "using the sparse execution kernel") {
		t.Errorf("sparse routing not reported: %q", out)
	}
	if !strings.Contains(out, "d=50") || !strings.Contains(out, "test  accuracy:") {
		t.Errorf("sparse run output: %q", out)
	}

	densePath := filepath.Join(dir, "dense.libsvm")
	b.Reset()
	for i := 0; i < 40; i++ {
		b.WriteString("1 1:0.5 2:0.5 3:0.5\n-1 1:-0.5 2:0.5 3:-0.5\n")
	}
	if err := writeFile(densePath, b.String()); err != nil {
		t.Fatal(err)
	}
	out, err = runQuick(t, func(c *DPSGDConfig) {
		c.DataPath = densePath
		c.Eps = 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "materializing dense rows") {
		t.Errorf("dense routing not reported: %q", out)
	}
}

// The -cache / -chunk flags: parse validation.
func TestParseDPSGDCacheFlags(t *testing.T) {
	cfg, err := ParseDPSGD([]string{"-data", "x.libsvm", "-cache", "x.bolt", "-chunk", "128"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CachePath != "x.bolt" || cfg.ChunkRows != 128 {
		t.Errorf("parsed: %+v", cfg)
	}
	for _, tc := range [][]string{
		{"-cache", "x.bolt"}, // -cache without -data
		{"-data", "x.libsvm", "-cache", "x.bolt", "-chunk", "-1"}, // negative chunk
		{"-data", "x.libsvm", "-chunk", "64"},                     // -chunk without -cache
	} {
		if _, err := ParseDPSGD(tc, io.Discard); err == nil {
			t.Errorf("args %v accepted", tc)
		}
	}
}

// sparseLIBSVMFile writes a small separable sparse LIBSVM file.
func sparseLIBSVMFile(t *testing.T, dir string, rows int) string {
	t.Helper()
	path := filepath.Join(dir, "train.libsvm")
	var b strings.Builder
	for i := 0; i < rows; i++ {
		if i%2 == 0 {
			b.WriteString("1 3:0.8 50:0.1\n")
		} else {
			b.WriteString("-1 7:-0.8 50:0.1\n")
		}
	}
	if err := writeFile(path, b.String()); err != nil {
		t.Fatal(err)
	}
	return path
}

// End to end: -cache converts once, trains from the store, and a
// second run reuses the cache file instead of re-parsing the LIBSVM.
func TestRunDPSGDCacheConvertsOnceThenReuses(t *testing.T) {
	dir := t.TempDir()
	dataPath := sparseLIBSVMFile(t, dir, 200)
	cachePath := filepath.Join(dir, "train.bolt")

	out, err := runQuick(t, func(c *DPSGDConfig) {
		c.DataPath = dataPath
		c.CachePath = cachePath
		c.ChunkRows = 32
		c.Eps = 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "store: converted") {
		t.Errorf("first run did not convert: %q", out)
	}
	if !strings.Contains(out, "sparse execution kernel over on-disk chunks") {
		t.Errorf("store routing not reported: %q", out)
	}
	if !strings.Contains(out, "d=50") || !strings.Contains(out, "test  accuracy:") {
		t.Errorf("store-backed run output: %q", out)
	}
	if _, err := os.Stat(cachePath); err != nil {
		t.Fatalf("cache file missing: %v", err)
	}

	// Second run: the LIBSVM file is not needed anymore.
	if err := os.Remove(dataPath); err != nil {
		t.Fatal(err)
	}
	out, err = runQuick(t, func(c *DPSGDConfig) {
		c.DataPath = dataPath // still set; must not be read
		c.CachePath = cachePath
		c.Eps = 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "store: reusing") {
		t.Errorf("second run did not reuse the cache: %q", out)
	}
}

// Store-backed training works under every execution strategy.
func TestRunDPSGDCacheStrategies(t *testing.T) {
	dir := t.TempDir()
	dataPath := sparseLIBSVMFile(t, dir, 200)
	cachePath := filepath.Join(dir, "train.bolt")
	for _, tc := range []struct {
		strategy string
		workers  int
		passes   int
	}{
		{"sequential", 1, 2},
		{"sharded", 3, 2},
		{"streaming", 1, 1},
	} {
		out, err := runQuick(t, func(c *DPSGDConfig) {
			c.DataPath = dataPath
			c.CachePath = cachePath
			c.Strategy = tc.strategy
			c.Workers = tc.workers
			c.Passes = tc.passes
			c.Eps = 4
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.strategy, err)
		}
		if !strings.Contains(out, "test  accuracy:") {
			t.Errorf("%s: output %q", tc.strategy, out)
		}
	}
}

// A corrupt cache file fails closed with a hint, instead of training
// on damaged data.
func TestRunDPSGDCacheCorruptFailsClosed(t *testing.T) {
	dir := t.TempDir()
	dataPath := sparseLIBSVMFile(t, dir, 120)
	cachePath := filepath.Join(dir, "train.bolt")
	if err := writeFile(cachePath, "not a store file at all"); err != nil {
		t.Fatal(err)
	}
	_, err := runQuick(t, func(c *DPSGDConfig) {
		c.DataPath = dataPath
		c.CachePath = cachePath
	})
	if err == nil || !strings.Contains(err.Error(), "delete it to reconvert") {
		t.Fatalf("corrupt cache err = %v", err)
	}
}
