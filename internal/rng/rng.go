// Package rng provides the random samplers the privacy mechanisms and
// the PSGD engine need: Gamma variates (for the ε-DP noise magnitude of
// the paper's Theorem 1 / Appendix E), uniform unit-sphere directions,
// per-component Gaussians (Theorem 3), Laplace variates, and
// permutations (the "P" in PSGD).
//
// Every function takes an explicit *rand.Rand so that callers control
// seeding; nothing in this package reads global state. This keeps the
// whole reproduction deterministic under a fixed seed, which the test
// suite and the experiment harness rely on.
package rng

import (
	"fmt"
	"math"
	"math/rand"
)

// Gamma draws one sample from the Gamma distribution with the given
// shape and scale (mean = shape*scale). It uses the Marsaglia–Tsang
// squeeze method for shape >= 1 and the standard boost for shape < 1.
// It panics on non-positive parameters.
func Gamma(r *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("rng: Gamma requires positive parameters, got shape=%v scale=%v", shape, scale))
	}
	if shape < 1 {
		// Boost: if X ~ Gamma(shape+1) and U ~ Uniform(0,1) then
		// X * U^{1/shape} ~ Gamma(shape).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return Gamma(r, shape+1, scale) * math.Pow(u, 1/shape)
	}
	// Marsaglia & Tsang, "A Simple Method for Generating Gamma
	// Variables" (2000).
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// UnitSphere fills dst with a point drawn uniformly at random from the
// surface of the unit sphere in R^len(dst). This is the standard
// normalize-a-Gaussian construction referenced by the paper's
// Appendix E. A zero draw (probability 0) is retried.
func UnitSphere(r *rand.Rand, dst []float64) {
	for {
		var n float64
		for i := range dst {
			dst[i] = r.NormFloat64()
			n += dst[i] * dst[i]
		}
		if n > 0 {
			n = math.Sqrt(n)
			for i := range dst {
				dst[i] /= n
			}
			return
		}
	}
}

// GammaSphere fills dst with the ε-DP output-perturbation noise vector
// of Theorem 1 / Appendix E: a direction uniform on the unit sphere
// scaled by a magnitude drawn from Gamma(d, sensitivity/epsilon), so the
// density of the vector is proportional to exp(-ε‖κ‖/Δ₂).
func GammaSphere(r *rand.Rand, dst []float64, sensitivity, epsilon float64) {
	if len(dst) == 0 {
		return
	}
	if sensitivity < 0 || epsilon <= 0 {
		panic(fmt.Sprintf("rng: GammaSphere requires sensitivity>=0 and epsilon>0, got %v, %v", sensitivity, epsilon))
	}
	if sensitivity == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	UnitSphere(r, dst)
	l := Gamma(r, float64(len(dst)), sensitivity/epsilon)
	for i := range dst {
		dst[i] *= l
	}
}

// GaussianVec fills dst with independent N(0, sigma^2) components —
// the (ε,δ)-DP Gaussian mechanism noise of Theorem 3.
func GaussianVec(r *rand.Rand, dst []float64, sigma float64) {
	if sigma < 0 {
		panic(fmt.Sprintf("rng: GaussianVec requires sigma>=0, got %v", sigma))
	}
	for i := range dst {
		dst[i] = r.NormFloat64() * sigma
	}
}

// Laplace draws one sample from the Laplace distribution with location
// 0 and the given scale b (density (1/2b)·exp(-|x|/b)).
func Laplace(r *rand.Rand, scale float64) float64 {
	if scale <= 0 {
		panic(fmt.Sprintf("rng: Laplace requires scale>0, got %v", scale))
	}
	u := r.Float64() - 0.5
	// Inverse CDF; guard the log against u = ±0.5 exactly.
	a := 1 - 2*math.Abs(u)
	for a <= 0 {
		u = r.Float64() - 0.5
		a = 1 - 2*math.Abs(u)
	}
	if u < 0 {
		return scale * math.Log(a)
	}
	return -scale * math.Log(a)
}

// Perm returns a uniformly random permutation of [0, n) — the
// permutation τ sampled once at the start of PSGD (§2).
func Perm(r *rand.Rand, n int) []int {
	return r.Perm(n)
}

// GaussianSigma returns the Gaussian-mechanism standard deviation of
// Theorem 3: sigma = sqrt(2 ln(1.25/δ)) · Δ₂ / ε. It panics on
// parameters outside the theorem's range (ε ∈ (0,1] is the stated
// hypothesis; we accept any positive ε since the bound remains a valid
// (ε,δ) guarantee for ε < 1 and is the universal convention for ε ≥ 1).
func GaussianSigma(sensitivity, epsilon, delta float64) float64 {
	if epsilon <= 0 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("rng: GaussianSigma requires epsilon>0, delta in (0,1), got ε=%v δ=%v", epsilon, delta))
	}
	if sensitivity < 0 {
		panic("rng: negative sensitivity")
	}
	return math.Sqrt(2*math.Log(1.25/delta)) * sensitivity / epsilon
}

// GammaNoiseTail returns the bound of Theorem 2: with probability at
// least 1-γ the ε-DP noise norm satisfies ‖κ‖ ≤ d·ln(d/γ)·Δ₂/ε.
// Exposed so tests and the experiment harness can check the tail.
func GammaNoiseTail(d int, gamma, sensitivity, epsilon float64) float64 {
	if d <= 0 || gamma <= 0 || gamma >= 1 || epsilon <= 0 {
		panic("rng: GammaNoiseTail parameter out of range")
	}
	df := float64(d)
	return df * math.Log(df/gamma) * sensitivity / epsilon
}
