package rng

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"boltondp/internal/vec"
)

func TestGammaMoments(t *testing.T) {
	// Sample mean and variance of Gamma(shape, scale) should approach
	// shape*scale and shape*scale^2.
	cases := []struct{ shape, scale float64 }{
		{0.5, 1.0},
		{1.0, 2.0},
		{3.0, 0.5},
		{50.0, 0.1},
	}
	r := rand.New(rand.NewSource(42))
	const n = 200000
	for _, c := range cases {
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			x := Gamma(r, c.shape, c.scale)
			if x <= 0 {
				t.Fatalf("Gamma(%v,%v) produced non-positive sample %v", c.shape, c.scale, x)
			}
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ~%v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.10*wantVar+0.01 {
			t.Errorf("Gamma(%v,%v) var = %v, want ~%v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma(%v,%v) did not panic", bad[0], bad[1])
				}
			}()
			Gamma(r, bad[0], bad[1])
		}()
	}
}

func TestUnitSphereNorm(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 2, 5, 50, 784} {
		v := make([]float64, d)
		UnitSphere(r, v)
		if math.Abs(vec.Norm(v)-1) > 1e-9 {
			t.Errorf("d=%d: ‖v‖ = %v, want 1", d, vec.Norm(v))
		}
	}
}

func TestUnitSphereIsotropy(t *testing.T) {
	// Each coordinate of a uniform sphere point has mean 0; the mean of
	// many draws should be near the origin.
	r := rand.New(rand.NewSource(11))
	const d, n = 5, 50000
	mean := make([]float64, d)
	v := make([]float64, d)
	for i := 0; i < n; i++ {
		UnitSphere(r, v)
		vec.Axpy(mean, 1.0/n, v)
	}
	if vec.Norm(mean) > 0.02 {
		t.Errorf("mean of sphere draws = %v (norm %v), want ~0", mean, vec.Norm(mean))
	}
}

func TestGammaSphereMagnitudeDistribution(t *testing.T) {
	// ‖κ‖ ~ Gamma(d, Δ/ε): check the sample mean ≈ d·Δ/ε.
	r := rand.New(rand.NewSource(3))
	const d = 10
	sens, eps := 0.5, 2.0
	want := float64(d) * sens / eps
	var sum float64
	const n = 50000
	k := make([]float64, d)
	for i := 0; i < n; i++ {
		GammaSphere(r, k, sens, eps)
		sum += vec.Norm(k)
	}
	mean := sum / n
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("mean ‖κ‖ = %v, want ~%v", mean, want)
	}
}

func TestGammaSphereZeroSensitivity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	k := []float64{1, 2, 3}
	GammaSphere(r, k, 0, 1)
	if vec.Norm(k) != 0 {
		t.Errorf("zero-sensitivity noise = %v, want zero vector", k)
	}
}

func TestGammaNoiseTailHolds(t *testing.T) {
	// Theorem 2: P(‖κ‖ > d·ln(d/γ)·Δ/ε) ≤ γ. With γ=0.05 and 2000
	// trials we allow generous slack on the empirical violation rate.
	r := rand.New(rand.NewSource(9))
	const d = 8
	sens, eps, gamma := 1.0, 1.0, 0.05
	bound := GammaNoiseTail(d, gamma, sens, eps)
	k := make([]float64, d)
	viol := 0
	const n = 2000
	for i := 0; i < n; i++ {
		GammaSphere(r, k, sens, eps)
		if vec.Norm(k) > bound {
			viol++
		}
	}
	if rate := float64(viol) / n; rate > 2*gamma {
		t.Errorf("tail violation rate %v exceeds 2γ = %v", rate, 2*gamma)
	}
}

func TestGaussianVecMoments(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	const d = 4
	sigma := 2.5
	var sum, sum2 float64
	const n = 100000
	v := make([]float64, d)
	for i := 0; i < n; i++ {
		GaussianVec(r, v, sigma)
		for _, x := range v {
			sum += x
			sum2 += x * x
		}
	}
	total := float64(n * d)
	mean := sum / total
	variance := sum2/total - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-sigma*sigma) > 0.05*sigma*sigma {
		t.Errorf("Gaussian var = %v, want ~%v", variance, sigma*sigma)
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	scale := 1.5
	var sum, sumAbs float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := Laplace(r, scale)
		sum += x
		sumAbs += math.Abs(x)
	}
	if mean := sum / n; math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// E|X| = scale for Laplace.
	if meanAbs := sumAbs / n; math.Abs(meanAbs-scale) > 0.05*scale {
		t.Errorf("Laplace E|X| = %v, want ~%v", meanAbs, scale)
	}
}

func TestPermIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(200)
		p := Perm(rr, n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, i := range p {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGaussianSigma(t *testing.T) {
	// Known value: Δ=1, ε=1, δ=1e-5 → σ = sqrt(2 ln(1.25e5)).
	got := GaussianSigma(1, 1, 1e-5)
	want := math.Sqrt(2 * math.Log(1.25e5))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("GaussianSigma = %v, want %v", got, want)
	}
	// Scales linearly with sensitivity, inversely with epsilon.
	if got2 := GaussianSigma(2, 1, 1e-5); math.Abs(got2-2*want) > 1e-9 {
		t.Errorf("sigma should double with sensitivity: %v vs %v", got2, want)
	}
	if got3 := GaussianSigma(1, 2, 1e-5); math.Abs(got3-want/2) > 1e-9 {
		t.Errorf("sigma should halve with epsilon: %v vs %v", got3, want)
	}
}

func TestGaussianSigmaPanics(t *testing.T) {
	for _, bad := range [][3]float64{{1, 0, 0.1}, {1, 1, 0}, {1, 1, 1}, {-1, 1, 0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GaussianSigma(%v) did not panic", bad)
				}
			}()
			GaussianSigma(bad[0], bad[1], bad[2])
		}()
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	a := rand.New(rand.NewSource(99))
	b := rand.New(rand.NewSource(99))
	va := make([]float64, 6)
	vb := make([]float64, 6)
	GammaSphere(a, va, 1, 1)
	GammaSphere(b, vb, 1, 1)
	if !vec.Equal(va, vb, 0) {
		t.Error("GammaSphere is not deterministic under a fixed seed")
	}
}

func TestGammaNoiseTailValueAndPanics(t *testing.T) {
	// d=2, γ=0.5, Δ=1, ε=1 → 2·ln(4) = 2.7725887...
	got := GammaNoiseTail(2, 0.5, 1, 1)
	want := 2 * math.Log(4)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("GammaNoiseTail = %v, want %v", got, want)
	}
	for _, bad := range [][4]float64{{0, 0.1, 1, 1}, {2, 0, 1, 1}, {2, 1, 1, 1}, {2, 0.1, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GammaNoiseTail(%v) did not panic", bad)
				}
			}()
			GammaNoiseTail(int(bad[0]), bad[1], bad[2], bad[3])
		}()
	}
}

func TestLaplacePanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Error("Laplace(0) did not panic")
		}
	}()
	Laplace(r, 0)
}

func TestGaussianVecPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Error("GaussianVec(σ<0) did not panic")
		}
	}()
	GaussianVec(r, make([]float64, 2), -1)
}

func TestGammaSpherePanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Error("GammaSphere(ε=0) did not panic")
		}
	}()
	GammaSphere(r, make([]float64, 2), 1, 0)
}

func TestGammaSphereEmptyDst(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	GammaSphere(r, nil, 1, 1) // must not panic
}
