package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"boltondp/internal/account"
	"boltondp/internal/dp"
	"boltondp/internal/eval"
)

// promLine matches one sample line of the Prometheus text exposition
// format (0.0.4): metric name, optional label set, and a value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// parseMetrics validates the exposition text line by line and returns
// sample line → value. HELP/TYPE comments must precede their metric.
func parseMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line does not parse as Prometheus text: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q has no preceding TYPE declaration", name)
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		key := line[:strings.LastIndexByte(line, ' ')]
		out[key] = v
	}
	return out
}

// TestMetricsEndpoint drives traffic through every route and checks
// the scrape: well-formed exposition text, correct counts per route
// and status class, a coherent latency histogram, batch-row and
// model-info series.
func TestMetricsEndpoint(t *testing.T) {
	_, h := testServer(t, Config{})

	for i := 0; i < 3; i++ {
		if w, _ := do(t, h, "POST", "/predict", `{"x":[1,0,0,0]}`); w.Code != http.StatusOK {
			t.Fatalf("predict: %d", w.Code)
		}
	}
	if w, _ := do(t, h, "POST", "/predict", `{"x":[1]}`); w.Code != http.StatusBadRequest {
		t.Fatal("bad predict did not 400")
	}
	if w, _ := do(t, h, "POST", "/predict/batch",
		`{"indptr":[0,1,2],"idx":[0,2],"val":[1,1]}`); w.Code != http.StatusOK {
		t.Fatal("batch failed")
	}

	w, _ := do(t, h, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	m := parseMetrics(t, w.Body.String())

	checks := map[string]float64{
		`dpserve_requests_total{route="predict"}`:                   4,
		`dpserve_errors_total{route="predict",class="4xx"}`:         1,
		`dpserve_errors_total{route="predict",class="5xx"}`:         0,
		`dpserve_requests_total{route="predict_batch"}`:             1,
		`dpserve_batch_rows_total`:                                  2,
		`dpserve_response_encode_errors_total`:                      0,
		`dpserve_model_info{model="lin",tier="float32"}`:            1,
		`dpserve_model_dim{model="lin"}`:                            4,
		`dpserve_request_seconds_count{route="predict"}`:            4,
		`dpserve_request_seconds_bucket{route="predict",le="+Inf"}`: 4,
	}
	for key, want := range checks {
		if got, ok := m[key]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
	// Histogram buckets are cumulative: each le bound holds at least as
	// many observations as the one before it.
	prev := -1.0
	for _, ub := range latencyBuckets {
		key := `dpserve_request_seconds_bucket{route="predict",le="` + formatFloat(ub) + `"}`
		v, ok := m[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket %s not cumulative: %v < %v", key, v, prev)
		}
		prev = v
	}

	// A second scrape counts the first: the metrics route instruments
	// itself.
	w, _ = do(t, h, "GET", "/metrics", "")
	if m2 := parseMetrics(t, w.Body.String()); m2[`dpserve_requests_total{route="metrics"}`] != 1 {
		t.Errorf("metrics route self-count: %v", m2[`dpserve_requests_total{route="metrics"}`])
	}
}

// TestMetricsLedgerGauges: a live model published through an
// accountant exposes its ε/δ spend as gauges.
func TestMetricsLedgerGauges(t *testing.T) {
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	acct := account.MustNew(dp.Budget{Epsilon: 2, Delta: 1e-6})
	if err := acct.Reserve("train(svm)", dp.Budget{Epsilon: 0.5, Delta: 1e-6}); err != nil {
		t.Fatal(err)
	}
	meta := map[string]string{}
	if err := acct.StampMeta(meta); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("audited", &eval.Linear{W: []float64{1, -1}}, meta); err != nil {
		t.Fatal(err)
	}
	w, _ := do(t, New(reg, Config{}).Handler(), "GET", "/metrics", "")
	m := parseMetrics(t, w.Body.String())
	for key, want := range map[string]float64{
		`dpserve_dp_epsilon_spent{model="audited"}`: 0.5,
		`dpserve_dp_delta_spent{model="audited"}`:   1e-6,
		`dpserve_dp_epsilon_total{model="audited"}`: 2,
		`dpserve_dp_delta_total{model="audited"}`:   1e-6,
	} {
		if got, ok := m[key]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
}

// TestMetricsDisabled: DisableMetrics removes the route entirely.
func TestMetricsDisabled(t *testing.T) {
	_, h := testServer(t, Config{DisableMetrics: true})
	if w, _ := do(t, h, "GET", "/metrics", ""); w.Code != http.StatusNotFound {
		t.Errorf("/metrics with metrics disabled: %d, want 404", w.Code)
	}
	// Scoring still works without instrumentation.
	if w, _ := do(t, h, "POST", "/predict", `{"x":[1,0,0,0]}`); w.Code != http.StatusOK {
		t.Errorf("predict with metrics disabled: %d", w.Code)
	}
}

// failAfterHeader is a ResponseWriter whose body writes fail — the
// mid-body encode failure writeJSON must surface (satellite: the error
// was silently discarded before).
type failAfterHeader struct {
	httptest.ResponseRecorder
}

func (w *failAfterHeader) Write([]byte) (int, error) {
	return 0, errors.New("client went away")
}

// TestWriteJSONEncodeErrorSurfaced: a response that fails mid-body
// increments the encode-error counter and logs, instead of vanishing.
func TestWriteJSONEncodeErrorSurfaced(t *testing.T) {
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	s := New(reg, Config{Logf: func(format string, args ...any) {
		logged = append(logged, format)
	}})
	s.writeJSON(&failAfterHeader{}, http.StatusOK, map[string]string{"k": "v"})
	if got := s.metrics.encodeErrors.Load(); got != 1 {
		t.Errorf("encode-error counter %d, want 1", got)
	}
	if len(logged) != 1 {
		t.Errorf("encode error logged %d times, want 1", len(logged))
	}
}

// TestServeMetricsOverhead is the CI gate on the cost of being
// observable: on the columnar batch workload, the instrumented server
// must stay within 2% of the metrics-disabled baseline. The
// measurement is best-of-trials over interleaved in-process runs, so
// scheduler noise hits both configurations alike; the race detector's
// instrumentation distorts the ratio unpredictably, so the gate only
// logs there.
func TestServeMetricsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate needs steady timing")
	}
	const (
		batchRows = 256
		reqs      = 30
		trials    = 6
	)
	handlers := map[string]http.Handler{}
	var rows []Row
	for _, name := range []string{"off", "on"} {
		h, r := kddWorkloadCfg(t, batchRows, Config{Workers: 4, DisableMetrics: name == "off"})
		handlers[name] = h
		rows = r
	}
	bodies := encodeCSRBatches(t, rows, batchRows)

	run := func(h http.Handler) time.Duration {
		start := time.Now()
		for i := 0; i < reqs; i++ {
			req := httptest.NewRequest("POST", "/predict/batch", strings.NewReader(string(bodies[0])))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
		return time.Since(start)
	}

	// Warm both paths, then interleave trials and keep each side's best.
	run(handlers["off"])
	run(handlers["on"])
	best := map[string]time.Duration{}
	for trial := 0; trial < trials; trial++ {
		for _, name := range []string{"off", "on"} {
			d := run(handlers[name])
			if cur, ok := best[name]; !ok || d < cur {
				best[name] = d
			}
		}
	}
	ratio := float64(best["on"]) / float64(best["off"])
	t.Logf("batch path: baseline %v, instrumented %v, overhead %.2f%%",
		best["off"], best["on"], (ratio-1)*100)
	if ratio > 1.02 {
		if raceEnabled {
			t.Skipf("overhead %.2f%% over the 2%% gate under -race (instrumentation noise)", (ratio-1)*100)
		}
		t.Errorf("metrics overhead %.2f%% exceeds the 2%% budget", (ratio-1)*100)
	}
}
