package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"boltondp/internal/engine"
	"boltondp/internal/vec"
)

// Row is one example in the request wire format: either a dense vector
// ("x") or sparse coordinate form ("idx"/"val", pairs in any order,
// duplicates summed). Exactly one of the two forms must be present.
type Row struct {
	X   []float64 `json:"x,omitempty"`
	Idx []int     `json:"idx,omitempty"`
	Val []float64 `json:"val,omitempty"`
}

// Score scores one wire row against the model. Sparse rows go through
// the eval sparse tier: one O(classes·nnz) row visit, never a dense
// scatter. Already-canonical coordinate rows (strictly increasing
// indices) are scored zero-copy; anything else is canonicalized
// through vec.SortedCopy.
func (m *Model) Score(row *Row) (float64, error) {
	switch {
	case row.X != nil && (row.Idx != nil || row.Val != nil):
		return 0, errors.New("row has both dense and sparse form")
	case row.X != nil:
		if len(row.X) != m.Dim {
			return 0, fmt.Errorf("row has %d features, model %q expects %d", len(row.X), m.Name, m.Dim)
		}
		return m.Classifier.Predict(row.X), nil
	case row.Idx != nil || row.Val != nil:
		return m.scoreSparse(row.Idx, row.Val)
	default:
		return 0, errors.New(`empty row (need "x" or "idx"/"val")`)
	}
}

// scoreSparse scores one coordinate-form row through the sparse tier.
func (m *Model) scoreSparse(idx []int, val []float64) (float64, error) {
	return m.scoreSparseTier(idx, val, false)
}

// scoreSparseTier scores one coordinate-form row with the same
// canonicalization and bounds checks on either precision tier.
func (m *Model) scoreSparseTier(idx []int, val []float64, f32 bool) (float64, error) {
	sp, err := sparseRow(idx, val)
	if err != nil {
		return 0, err
	}
	if mi := sp.MaxIndex(); mi >= m.Dim {
		return 0, fmt.Errorf("sparse index %d out of range for model %q (dim %d)", mi, m.Name, m.Dim)
	}
	if f32 {
		return m.predictSparse32(sp.Idx, sp.Val), nil
	}
	return m.Sparse.PredictSparse(sp), nil
}

// sparseRow builds the vec.Sparse view of a coordinate-form wire row:
// a zero-copy wrapper when the pairs are already canonical (the common
// case for programmatic clients), else a canonicalizing copy.
func sparseRow(idx []int, val []float64) (*vec.Sparse, error) {
	if len(idx) == len(val) && canonical(idx) {
		return &vec.Sparse{Idx: idx, Val: val}, nil
	}
	return vec.SortedCopy(idx, val)
}

// canonical reports whether indices are non-negative and strictly
// increasing — vec.NewSparse's invariant, checked without the error
// plumbing.
func canonical(idx []int) bool {
	if len(idx) > 0 && idx[0] < 0 {
		return false
	}
	for i := 1; i < len(idx); i++ {
		if idx[i-1] >= idx[i] {
			return false
		}
	}
	return true
}

// fanOut runs fn over [0, n) split into contiguous chunks across up
// to workers goroutines and returns the first error. Each invocation
// owns its range exclusively, so callers write disjoint output slots
// without locking. A non-nil ctx is polled per row by the chunk
// functions; fanOut itself refuses to start work on an already-dead
// context.
func fanOut(ctx context.Context, n, workers int, fn func(lo, hi int) error) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w, b := range engine.ShardBounds(n, workers) {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, b[0], b[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ctxDead reports whether a (possibly nil) context has been cancelled —
// the per-row poll of the batch scoring loops, so a disconnected or
// timed-out client stops burning scoring workers mid-batch.
func ctxDead(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// ScoreBatch scores decoded rows across up to workers goroutines. The
// model is immutable and each goroutine writes a disjoint range of the
// output, so the fan-out needs no locking.
func (m *Model) ScoreBatch(rows []Row, workers int) ([]float64, error) {
	return m.ScoreBatchCtx(context.Background(), rows, workers)
}

// ScoreBatchCtx is ScoreBatch bound to a context: scoring stops within
// one row of ctx's cancellation and returns ctx.Err(). The HTTP
// handlers pass the request context through here, so a client that
// disconnects or times out releases its scoring workers instead of
// running the batch to completion.
func (m *Model) ScoreBatchCtx(ctx context.Context, rows []Row, workers int) ([]float64, error) {
	labels := make([]float64, len(rows))
	err := fanOut(ctx, len(rows), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if ctxDead(ctx) {
				return ctx.Err()
			}
			y, err := m.Score(&rows[i])
			if err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
			labels[i] = y
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}

// ScoreBatchCSR scores a columnar sparse batch: row i is the
// coordinate pairs idx[indptr[i]:indptr[i+1]] / val[...]. This is the
// serving hot path's preferred encoding — the whole batch is three
// JSON arrays, so decode cost per row collapses to the numbers
// themselves, and canonical rows are scored zero-copy straight out of
// the decoded arrays at O(rows·classes·nnz) total.
func (m *Model) ScoreBatchCSR(indptr, idx []int, val []float64, workers int) ([]float64, error) {
	return m.ScoreBatchCSRCtx(context.Background(), indptr, idx, val, workers)
}

// ScoreBatchCSRCtx is ScoreBatchCSR bound to a context, with the same
// cancellation contract as ScoreBatchCtx. Both score through the
// full-precision tier; the float32 tier the batch handler defaults to
// is ScoreBatchCSRF32Ctx.
func (m *Model) ScoreBatchCSRCtx(ctx context.Context, indptr, idx []int, val []float64, workers int) ([]float64, error) {
	return m.scoreBatchCSR(ctx, indptr, idx, val, workers, false)
}

// ScoreBatchCSRF32 scores a columnar sparse batch through the float32
// tier: identical validation and fan-out, with each margin taken
// against the quantized weight rows (see f32.go). Labels agree with
// the full-precision tier except on rows whose margin magnitude is
// within weight-quantization distance of the decision boundary.
func (m *Model) ScoreBatchCSRF32(indptr, idx []int, val []float64, workers int) ([]float64, error) {
	return m.scoreBatchCSR(context.Background(), indptr, idx, val, workers, true)
}

// ScoreBatchCSRF32Ctx is ScoreBatchCSRF32 bound to a context.
func (m *Model) ScoreBatchCSRF32Ctx(ctx context.Context, indptr, idx []int, val []float64, workers int) ([]float64, error) {
	return m.scoreBatchCSR(ctx, indptr, idx, val, workers, true)
}

func (m *Model) scoreBatchCSR(ctx context.Context, indptr, idx []int, val []float64, workers int, f32 bool) ([]float64, error) {
	if len(idx) != len(val) {
		return nil, fmt.Errorf("idx/val length mismatch %d != %d", len(idx), len(val))
	}
	if len(indptr) < 2 || indptr[0] != 0 || indptr[len(indptr)-1] != len(idx) {
		return nil, fmt.Errorf("indptr must start at 0 and end at len(idx)=%d", len(idx))
	}
	n := len(indptr) - 1
	labels := make([]float64, n)
	err := fanOut(ctx, n, workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if ctxDead(ctx) {
				return ctx.Err()
			}
			a, b := indptr[i], indptr[i+1]
			if a < 0 || a > b || b > len(idx) {
				return fmt.Errorf("row %d: indptr not monotone", i)
			}
			y, err := m.scoreSparseTier(idx[a:b], val[a:b], f32)
			if err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
			labels[i] = y
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}

// scoreBatchRaw scores the row-object batch form: the handler decodes
// only the request frame, and the per-row JSON decoding — the dominant
// per-row cost of this form — is fanned out across the scoring workers
// together with the arithmetic.
func (m *Model) scoreBatchRaw(ctx context.Context, rows []json.RawMessage, workers int) ([]float64, error) {
	labels := make([]float64, len(rows))
	err := fanOut(ctx, len(rows), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if ctxDead(ctx) {
				return ctx.Err()
			}
			// Same strictness as /predict's frame decoder: a typo'd
			// field must be a 400, not a silently dropped key.
			var row Row
			dec := json.NewDecoder(bytes.NewReader(rows[i]))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&row); err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
			y, err := m.Score(&row)
			if err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
			labels[i] = y
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}

// PackCSR packs sparse wire rows into the columnar batch form
// (indptr/idx/val) — the documented client-side encoding for
// /predict/batch's throughput path. Dense rows are rejected: the
// columnar form carries coordinates only.
func PackCSR(rows []Row) (indptr, idx []int, val []float64, err error) {
	indptr = make([]int, 1, len(rows)+1)
	for i := range rows {
		if rows[i].X != nil {
			return nil, nil, nil, fmt.Errorf("row %d: dense rows cannot pack into CSR form", i)
		}
		idx = append(idx, rows[i].Idx...)
		val = append(val, rows[i].Val...)
		indptr = append(indptr, len(idx))
	}
	return indptr, idx, val, nil
}

// Config tunes the prediction service.
type Config struct {
	// Workers is the number of goroutines scoring each batch request
	// (default 1: the caller's goroutine; the HTTP server already runs
	// one goroutine per connection).
	Workers int
	// MaxBatch caps rows per /predict/batch request (default 8192).
	MaxBatch int
	// MaxBody caps the request body in bytes (default 32 MiB).
	MaxBody int64
	// Float64Batch opts the columnar /predict/batch path out of the
	// float32 scoring tier, scoring every batch at full precision.
	// Single-row /predict and the row-object batch form always score
	// at full precision.
	Float64Batch bool
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 8192
	}
	if c.MaxBody < 1 {
		c.MaxBody = 32 << 20
	}
	return c
}

// Server is the HTTP prediction service over a registry. It holds no
// mutable state of its own: all synchronization lives in the registry.
type Server struct {
	reg *Registry
	cfg Config
}

// New builds a prediction service over the registry.
func New(reg *Registry, cfg Config) *Server {
	return &Server{reg: reg, cfg: cfg.withDefaults()}
}

// Handler returns the service's route table:
//
//	POST /predict        {"x":[...]} or {"idx":[...],"val":[...]} (+"model")
//	POST /predict/batch  {"rows":[...]} or columnar {"indptr":[...],"idx":[...],"val":[...]} (+"model")
//	GET  /healthz        load-balancer health: 200 iff a live model is set
//	GET  /modelz         registry introspection
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /predict/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /modelz", s.handleModelz)
	return mux
}

type predictRequest struct {
	// Model selects a named version; empty means the live model.
	Model string `json:"model,omitempty"`
	Row
}

type predictResponse struct {
	Model string  `json:"model"`
	Label float64 `json:"label"`
}

// batchRequest carries one of two batch encodings: a "rows" list of
// per-row objects (kept raw at the frame level so scoreBatchRaw can
// decode them inside the worker fan-out), or the columnar CSR triple
// "indptr"/"idx"/"val" — the high-throughput form.
type batchRequest struct {
	Model  string            `json:"model,omitempty"`
	Rows   []json.RawMessage `json:"rows,omitempty"`
	Indptr []int             `json:"indptr,omitempty"`
	Idx    []int             `json:"idx,omitempty"`
	Val    []float64         `json:"val,omitempty"`
}

type batchResponse struct {
	Model  string    `json:"model"`
	Labels []float64 `json:"labels"`
}

type healthResponse struct {
	Status string `json:"status"`
	Live   string `json:"live,omitempty"`
	Models int    `json:"models"`
}

type modelInfo struct {
	Name      string            `json:"name"`
	Dim       int               `json:"dim"`
	Classes   int               `json:"classes"`
	Live      bool              `json:"live"`
	Published time.Time         `json:"published"`
	Meta      map[string]string `json:"meta,omitempty"`
}

type modelzResponse struct {
	Live string `json:"live,omitempty"`
	// BatchTier is the precision tier the columnar /predict/batch path
	// scores at: "float32" (default) or "float64" (Config.Float64Batch).
	BatchTier string      `json:"batchTier"`
	Models    []modelInfo `json:"models"`
}

// model resolves the version a request addresses: a named one, or the
// live model (one atomic load, no lock).
func (s *Server) model(name string) (*Model, int, error) {
	if name != "" {
		m, ok := s.reg.Get(name)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("no model %q", name)
		}
		return m, 0, nil
	}
	m := s.reg.Live()
	if m == nil {
		return nil, http.StatusServiceUnavailable, errors.New("no live model")
	}
	return m, 0, nil
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if !s.decode(w, r, &req) {
		return
	}
	m, code, err := s.model(req.Model)
	if err != nil {
		httpError(w, code, "%v", err)
		return
	}
	y, err := m.Score(&req.Row)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{Model: m.Name, Label: y})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decode(w, r, &req) {
		return
	}
	csr := req.Indptr != nil || req.Idx != nil || req.Val != nil
	if csr && req.Rows != nil {
		httpError(w, http.StatusBadRequest, `batch has both "rows" and columnar form`)
		return
	}
	n := len(req.Rows)
	if csr {
		if len(req.Indptr) == 0 {
			httpError(w, http.StatusBadRequest, `columnar batch is missing "indptr"`)
			return
		}
		n = len(req.Indptr) - 1
	}
	if n <= 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if n > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, "batch of %d rows exceeds limit %d", n, s.cfg.MaxBatch)
		return
	}
	m, code, err := s.model(req.Model)
	if err != nil {
		httpError(w, code, "%v", err)
		return
	}
	var labels []float64
	if csr {
		labels, err = m.scoreBatchCSR(r.Context(), req.Indptr, req.Idx, req.Val, s.cfg.Workers, !s.cfg.Float64Batch)
	} else {
		labels, err = m.scoreBatchRaw(r.Context(), req.Rows, s.cfg.Workers)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The request context died mid-scoring. A disconnected
			// client never reads the status, but during graceful
			// shutdown (BaseContext cancellation) the connection is
			// still open — silence here would surface as a 200 with an
			// empty body, which a client would misread as success.
			httpError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Model: m.Name, Labels: labels})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := healthResponse{Models: s.reg.Len()}
	if m := s.reg.Live(); m != nil {
		resp.Status, resp.Live = "ok", m.Name
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Status = "no live model"
	writeJSON(w, http.StatusServiceUnavailable, resp)
}

func (s *Server) handleModelz(w http.ResponseWriter, _ *http.Request) {
	live := s.reg.Live()
	resp := modelzResponse{BatchTier: s.BatchTier(), Models: []modelInfo{}}
	if live != nil {
		resp.Live = live.Name
	}
	for _, m := range s.reg.Models() {
		resp.Models = append(resp.Models, modelInfo{
			Name: m.Name, Dim: m.Dim, Classes: m.Classes,
			Live: m == live, Published: m.Published, Meta: m.Meta,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
