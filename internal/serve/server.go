package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"boltondp/internal/engine"
	"boltondp/internal/vec"
)

// Row is one example in the request wire format: either a dense vector
// ("x") or sparse coordinate form ("idx"/"val", pairs in any order,
// duplicates summed). Exactly one of the two forms must be present.
type Row struct {
	X   []float64 `json:"x,omitempty"`
	Idx []int     `json:"idx,omitempty"`
	Val []float64 `json:"val,omitempty"`
}

// Score scores one wire row against the model. Sparse rows go through
// the eval sparse tier: one O(classes·nnz) row visit, never a dense
// scatter. Already-canonical coordinate rows (strictly increasing
// indices) are scored zero-copy; anything else is canonicalized
// through vec.SortedCopy.
func (m *Model) Score(row *Row) (float64, error) {
	switch {
	case row.X != nil && (row.Idx != nil || row.Val != nil):
		return 0, errors.New("row has both dense and sparse form")
	case row.X != nil:
		if len(row.X) != m.Dim {
			return 0, fmt.Errorf("row has %d features, model %q expects %d", len(row.X), m.Name, m.Dim)
		}
		return m.Classifier.Predict(row.X), nil
	case row.Idx != nil || row.Val != nil:
		return m.scoreSparse(row.Idx, row.Val)
	default:
		return 0, errors.New(`empty row (need "x" or "idx"/"val")`)
	}
}

// scoreSparse scores one coordinate-form row through the sparse tier.
func (m *Model) scoreSparse(idx []int, val []float64) (float64, error) {
	return m.scoreSparseTier(idx, val, false)
}

// scoreSparseTier scores one coordinate-form row with the same
// canonicalization and bounds checks on either precision tier.
func (m *Model) scoreSparseTier(idx []int, val []float64, f32 bool) (float64, error) {
	sp, err := sparseRow(idx, val)
	if err != nil {
		return 0, err
	}
	if mi := sp.MaxIndex(); mi >= m.Dim {
		return 0, fmt.Errorf("sparse index %d out of range for model %q (dim %d)", mi, m.Name, m.Dim)
	}
	if f32 {
		return m.predictSparse32(sp.Idx, sp.Val), nil
	}
	return m.Sparse.PredictSparse(sp), nil
}

// sparseRow builds the vec.Sparse view of a coordinate-form wire row:
// a zero-copy wrapper when the pairs are already canonical (the common
// case for programmatic clients), else a canonicalizing copy.
func sparseRow(idx []int, val []float64) (*vec.Sparse, error) {
	if len(idx) == len(val) && canonical(idx) {
		return &vec.Sparse{Idx: idx, Val: val}, nil
	}
	return vec.SortedCopy(idx, val)
}

// canonical reports whether indices are non-negative and strictly
// increasing — vec.NewSparse's invariant, checked without the error
// plumbing.
func canonical(idx []int) bool {
	if len(idx) > 0 && idx[0] < 0 {
		return false
	}
	for i := 1; i < len(idx); i++ {
		if idx[i-1] >= idx[i] {
			return false
		}
	}
	return true
}

// fanOut runs fn over [0, n) split into contiguous chunks across up
// to workers goroutines and returns the first error. Each invocation
// owns its range exclusively, so callers write disjoint output slots
// without locking. A non-nil ctx is polled per row by the chunk
// functions; fanOut itself refuses to start work on an already-dead
// context.
func fanOut(ctx context.Context, n, workers int, fn func(lo, hi int) error) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w, b := range engine.ShardBounds(n, workers) {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, b[0], b[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ctxDead reports whether a (possibly nil) context has been cancelled —
// the per-row poll of the batch scoring loops, so a disconnected or
// timed-out client stops burning scoring workers mid-batch.
func ctxDead(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// canaryRouter carries an active canary rollout into a batch scoring
// loop: rows whose hash bucket falls under the rollout percentage
// score on the canary model (with per-row fallback to the primary on
// canary failure — a broken canary degrades the rollout, never the
// request). See canary.go for the full contract.
type canaryRouter struct {
	cs *canaryState
}

// scoreSparse scores one canary-routed coordinate row, falling back to
// the primary when the canary cannot score it.
func (rt *canaryRouter) scoreSparse(primary *Model, idx []int, val []float64, f32 bool) (float64, error) {
	rt.cs.rows.Add(1)
	y, err := rt.cs.model.scoreSparseTier(idx, val, f32)
	if err == nil {
		return y, nil
	}
	rt.cs.errors.Add(1)
	return primary.scoreSparseTier(idx, val, f32)
}

// scoreRow scores one canary-routed wire row with the same fallback.
func (rt *canaryRouter) scoreRow(primary *Model, row *Row) (float64, error) {
	rt.cs.rows.Add(1)
	y, err := rt.cs.model.Score(row)
	if err == nil {
		return y, nil
	}
	rt.cs.errors.Add(1)
	return primary.Score(row)
}

// routes reports whether this row hashes under the rollout percentage.
func (rt *canaryRouter) routesSparse(idx []int, val []float64) bool {
	return rowBucket(idx, val) < rt.cs.pct
}

func (rt *canaryRouter) routesRow(row *Row) bool {
	if row.X != nil {
		return rowBucketDense(row.X) < rt.cs.pct
	}
	return rowBucket(row.Idx, row.Val) < rt.cs.pct
}

// ScoreBatch scores decoded rows across up to workers goroutines. The
// model is immutable and each goroutine writes a disjoint range of the
// output, so the fan-out needs no locking.
func (m *Model) ScoreBatch(rows []Row, workers int) ([]float64, error) {
	return m.ScoreBatchCtx(context.Background(), rows, workers)
}

// ScoreBatchCtx is ScoreBatch bound to a context: scoring stops within
// one row of ctx's cancellation and returns ctx.Err(). The HTTP
// handlers pass the request context through here, so a client that
// disconnects or times out releases its scoring workers instead of
// running the batch to completion.
func (m *Model) ScoreBatchCtx(ctx context.Context, rows []Row, workers int) ([]float64, error) {
	labels := make([]float64, len(rows))
	err := fanOut(ctx, len(rows), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if ctxDead(ctx) {
				return ctx.Err()
			}
			y, err := m.Score(&rows[i])
			if err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
			labels[i] = y
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}

// ScoreBatchCSR scores a columnar sparse batch: row i is the
// coordinate pairs idx[indptr[i]:indptr[i+1]] / val[...]. This is the
// serving hot path's preferred encoding — the whole batch is three
// JSON arrays, so decode cost per row collapses to the numbers
// themselves, and canonical rows are scored zero-copy straight out of
// the decoded arrays at O(rows·classes·nnz) total.
func (m *Model) ScoreBatchCSR(indptr, idx []int, val []float64, workers int) ([]float64, error) {
	return m.ScoreBatchCSRCtx(context.Background(), indptr, idx, val, workers)
}

// ScoreBatchCSRCtx is ScoreBatchCSR bound to a context, with the same
// cancellation contract as ScoreBatchCtx. Both score through the
// full-precision tier; the float32 tier the batch handler defaults to
// is ScoreBatchCSRF32Ctx.
func (m *Model) ScoreBatchCSRCtx(ctx context.Context, indptr, idx []int, val []float64, workers int) ([]float64, error) {
	return m.scoreBatchCSR(ctx, indptr, idx, val, workers, false, nil)
}

// ScoreBatchCSRF32 scores a columnar sparse batch through the float32
// tier: identical validation and fan-out, with each margin taken
// against the quantized weight rows (see f32.go). Labels agree with
// the full-precision tier except on rows whose margin magnitude is
// within weight-quantization distance of the decision boundary.
func (m *Model) ScoreBatchCSRF32(indptr, idx []int, val []float64, workers int) ([]float64, error) {
	return m.scoreBatchCSR(context.Background(), indptr, idx, val, workers, true, nil)
}

// ScoreBatchCSRF32Ctx is ScoreBatchCSRF32 bound to a context.
func (m *Model) ScoreBatchCSRF32Ctx(ctx context.Context, indptr, idx []int, val []float64, workers int) ([]float64, error) {
	return m.scoreBatchCSR(ctx, indptr, idx, val, workers, true, nil)
}

func (m *Model) scoreBatchCSR(ctx context.Context, indptr, idx []int, val []float64, workers int, f32 bool, rt *canaryRouter) ([]float64, error) {
	if len(idx) != len(val) {
		return nil, fmt.Errorf("idx/val length mismatch %d != %d", len(idx), len(val))
	}
	if len(indptr) < 2 || indptr[0] != 0 || indptr[len(indptr)-1] != len(idx) {
		return nil, fmt.Errorf("indptr must start at 0 and end at len(idx)=%d", len(idx))
	}
	n := len(indptr) - 1
	labels := make([]float64, n)
	err := fanOut(ctx, n, workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if ctxDead(ctx) {
				return ctx.Err()
			}
			a, b := indptr[i], indptr[i+1]
			if a < 0 || a > b || b > len(idx) {
				return fmt.Errorf("row %d: indptr not monotone", i)
			}
			var y float64
			var err error
			if rt != nil && rt.routesSparse(idx[a:b], val[a:b]) {
				y, err = rt.scoreSparse(m, idx[a:b], val[a:b], f32)
			} else {
				y, err = m.scoreSparseTier(idx[a:b], val[a:b], f32)
			}
			if err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
			labels[i] = y
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}

// scoreBatchRaw scores the row-object batch form: the handler decodes
// only the request frame, and the per-row JSON decoding — the dominant
// per-row cost of this form — is fanned out across the scoring workers
// together with the arithmetic.
func (m *Model) scoreBatchRaw(ctx context.Context, rows []json.RawMessage, workers int, rt *canaryRouter) ([]float64, error) {
	labels := make([]float64, len(rows))
	err := fanOut(ctx, len(rows), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if ctxDead(ctx) {
				return ctx.Err()
			}
			// Same strictness as /predict's frame decoder: a typo'd
			// field must be a 400, not a silently dropped key.
			var row Row
			dec := json.NewDecoder(bytes.NewReader(rows[i]))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&row); err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
			var y float64
			var err error
			if rt != nil && rt.routesRow(&row) {
				y, err = rt.scoreRow(m, &row)
			} else {
				y, err = m.Score(&row)
			}
			if err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
			labels[i] = y
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}

// PackCSR packs sparse wire rows into the columnar batch form
// (indptr/idx/val) — the documented client-side encoding for
// /predict/batch's throughput path. Dense rows are rejected: the
// columnar form carries coordinates only.
func PackCSR(rows []Row) (indptr, idx []int, val []float64, err error) {
	indptr = make([]int, 1, len(rows)+1)
	for i := range rows {
		if rows[i].X != nil {
			return nil, nil, nil, fmt.Errorf("row %d: dense rows cannot pack into CSR form", i)
		}
		idx = append(idx, rows[i].Idx...)
		val = append(val, rows[i].Val...)
		indptr = append(indptr, len(idx))
	}
	return indptr, idx, val, nil
}

// Config tunes the prediction service.
type Config struct {
	// Workers is the number of goroutines scoring each batch request
	// (default 1: the caller's goroutine; the HTTP server already runs
	// one goroutine per connection).
	Workers int
	// MaxBatch caps rows per /predict/batch request (default 8192).
	MaxBatch int
	// MaxBody caps the request body in bytes (default 32 MiB).
	MaxBody int64
	// Float64Batch opts the columnar /predict/batch path out of the
	// float32 scoring tier, scoring every batch at full precision.
	// Single-row /predict and the row-object batch form always score
	// at full precision.
	Float64Batch bool

	// MaxInflight bounds the scoring requests running at once; 0 (the
	// default) leaves admission unlimited. When set, up to MaxQueue
	// more requests wait for a slot and everything beyond that is shed
	// with 429 + Retry-After (see admission.go).
	MaxInflight int
	// MaxQueue bounds the admission queue (default: MaxInflight).
	MaxQueue int
	// QueueTimeout bounds how long a request may wait for a scoring
	// slot before being shed (default 1s).
	QueueTimeout time.Duration

	// DisableMetrics turns off /metrics and the per-request
	// instrumentation — the baseline the overhead gate measures
	// against. Production servers leave it off.
	DisableMetrics bool

	// CanaryErrorRate is the canary auto-rollback threshold: once the
	// active rollout has scored at least CanaryMinRows rows, an
	// error rate above this fraction rolls the canary back (default
	// 0.05). See canary.go.
	CanaryErrorRate float64
	// CanaryMinRows is the sample floor before the rollback gate can
	// fire (default 200) — a single early failure must not kill a
	// rollout the way it would at n=1.
	CanaryMinRows int

	// Logf, when set, receives operational log lines (truncated
	// responses, canary rollbacks); nil logs through the standard
	// library logger.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 8192
	}
	if c.MaxBody < 1 {
		c.MaxBody = 32 << 20
	}
	if c.MaxInflight > 0 {
		if c.MaxQueue < 1 {
			c.MaxQueue = c.MaxInflight
		}
		if c.QueueTimeout <= 0 {
			c.QueueTimeout = time.Second
		}
	}
	if c.CanaryErrorRate <= 0 {
		c.CanaryErrorRate = 0.05
	}
	if c.CanaryMinRows < 1 {
		c.CanaryMinRows = 200
	}
	return c
}

// Server is the HTTP prediction service over a registry. Scoring
// synchronization lives in the registry; the server's own state is
// observability (metrics) and the admission gate.
type Server struct {
	reg     *Registry
	cfg     Config
	metrics *Metrics
	adm     *admission

	// testHookScoring, when set by a test, runs inside the scoring
	// handlers while the admission slot is held — the deterministic
	// stand-in for a slow batch in the overload tests.
	testHookScoring func()
}

// New builds a prediction service over the registry.
func New(reg *Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{reg: reg, cfg: cfg, adm: newAdmission(cfg)}
	if !cfg.DisableMetrics {
		s.metrics = &Metrics{}
	}
	return s
}

// logf routes operational log lines through Config.Logf (or the
// standard logger when unset).
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	stdlog(format, args...)
}

// Handler returns the service's route table:
//
//	POST /predict        {"x":[...]} or {"idx":[...],"val":[...]} (+"model")
//	POST /predict/batch  {"rows":[...]} or columnar {"indptr":[...],"idx":[...],"val":[...]} (+"model")
//	GET  /healthz        load-balancer health: 200 iff a live model is set; reports shed-state
//	GET  /modelz         registry introspection (incl. the active canary)
//	GET  /metrics        Prometheus text exposition
//
// The scoring routes sit behind the admission gate (when configured);
// the introspection routes never do — an overloaded replica must stay
// observable.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.instrument("predict", s.admit(s.handlePredict)))
	mux.HandleFunc("POST /predict/batch", s.instrument("predict_batch", s.admit(s.handleBatch)))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /modelz", s.instrument("modelz", s.handleModelz))
	if s.metrics != nil {
		mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	}
	return mux
}

type predictRequest struct {
	// Model selects a named version; empty means the live model.
	Model string `json:"model,omitempty"`
	Row
}

type predictResponse struct {
	Model string  `json:"model"`
	Label float64 `json:"label"`
}

// batchRequest carries one of two batch encodings: a "rows" list of
// per-row objects (kept raw at the frame level so scoreBatchRaw can
// decode them inside the worker fan-out), or the columnar CSR triple
// "indptr"/"idx"/"val" — the high-throughput form.
type batchRequest struct {
	Model  string            `json:"model,omitempty"`
	Rows   []json.RawMessage `json:"rows,omitempty"`
	Indptr []int             `json:"indptr,omitempty"`
	Idx    []int             `json:"idx,omitempty"`
	Val    []float64         `json:"val,omitempty"`
}

type batchResponse struct {
	Model  string    `json:"model"`
	Labels []float64 `json:"labels"`
}

type healthResponse struct {
	Status    string          `json:"status"`
	Live      string          `json:"live,omitempty"`
	Models    int             `json:"models"`
	Admission *admissionState `json:"admission,omitempty"`
}

type modelInfo struct {
	Name      string            `json:"name"`
	Dim       int               `json:"dim"`
	Classes   int               `json:"classes"`
	Live      bool              `json:"live"`
	Canary    bool              `json:"canary,omitempty"`
	Published time.Time         `json:"published"`
	Meta      map[string]string `json:"meta,omitempty"`
}

// canaryInfo is the /modelz view of the active rollout.
type canaryInfo struct {
	Model  string `json:"model"`
	Pct    int    `json:"pct"`
	Rows   uint64 `json:"rows"`
	Errors uint64 `json:"errors"`
}

type modelzResponse struct {
	Live string `json:"live,omitempty"`
	// BatchTier is the precision tier the columnar /predict/batch path
	// scores at: "float32" (default) or "float64" (Config.Float64Batch).
	BatchTier string      `json:"batchTier"`
	Canary    *canaryInfo `json:"canary,omitempty"`
	Models    []modelInfo `json:"models"`
}

// model resolves the version a request addresses: a named one, or the
// live model (one atomic load, no lock).
func (s *Server) model(name string) (*Model, int, error) {
	if name != "" {
		m, ok := s.reg.Get(name)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("no model %q", name)
		}
		return m, 0, nil
	}
	m := s.reg.Live()
	if m == nil {
		return nil, http.StatusServiceUnavailable, errors.New("no live model")
	}
	return m, 0, nil
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if !s.decode(w, r, &req) {
		return
	}
	m, code, err := s.model(req.Model)
	if err != nil {
		s.httpError(w, code, "%v", err)
		return
	}
	if s.testHookScoring != nil {
		s.testHookScoring()
	}
	y, err := m.Score(&req.Row)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, predictResponse{Model: m.Name, Label: y})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decode(w, r, &req) {
		return
	}
	csr := req.Indptr != nil || req.Idx != nil || req.Val != nil
	if csr && req.Rows != nil {
		s.httpError(w, http.StatusBadRequest, `batch has both "rows" and columnar form`)
		return
	}
	n := len(req.Rows)
	if csr {
		if len(req.Indptr) == 0 {
			s.httpError(w, http.StatusBadRequest, `columnar batch is missing "indptr"`)
			return
		}
		n = len(req.Indptr) - 1
	}
	if n <= 0 {
		s.httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if n > s.cfg.MaxBatch {
		s.httpError(w, http.StatusRequestEntityTooLarge, "batch of %d rows exceeds limit %d", n, s.cfg.MaxBatch)
		return
	}
	m, code, err := s.model(req.Model)
	if err != nil {
		s.httpError(w, code, "%v", err)
		return
	}
	if s.testHookScoring != nil {
		s.testHookScoring()
	}
	// Canary routing applies only to live-model batches: a request
	// naming an explicit version gets exactly that version.
	var rt *canaryRouter
	var cs *canaryState
	if req.Model == "" {
		if cs = s.reg.canary.Load(); cs != nil && cs.pct > 0 {
			rt = &canaryRouter{cs: cs}
		}
	}
	var labels []float64
	if csr {
		labels, err = m.scoreBatchCSR(r.Context(), req.Indptr, req.Idx, req.Val, s.cfg.Workers, !s.cfg.Float64Batch, rt)
	} else {
		labels, err = m.scoreBatchRaw(r.Context(), req.Rows, s.cfg.Workers, rt)
	}
	if cs != nil {
		s.maybeRollback(cs)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The request context died mid-scoring. A disconnected
			// client never reads the status, but during graceful
			// shutdown (BaseContext cancellation) the connection is
			// still open — silence here would surface as a 200 with an
			// empty body, which a client would misread as success.
			s.httpError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
			return
		}
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.metrics != nil {
		s.metrics.batchRows.Add(uint64(n))
	}
	s.writeJSON(w, http.StatusOK, batchResponse{Model: m.Name, Labels: labels})
}

// maybeRollback fires the canary auto-rollback once the active rollout
// has enough sample and its error rate crosses the configured
// threshold. The registry-side compare-and-swap makes the check
// idempotent across concurrent batches.
func (s *Server) maybeRollback(cs *canaryState) {
	rows := cs.rows.Load()
	if rows < uint64(s.cfg.CanaryMinRows) {
		return
	}
	errs := cs.errors.Load()
	if float64(errs) <= s.cfg.CanaryErrorRate*float64(rows) {
		return
	}
	if s.reg.rollbackCanary(cs) {
		if s.metrics != nil {
			s.metrics.canaryRollbacks.Add(1)
		}
		s.logf("serve: canary %q rolled back: %d of %d routed rows errored (threshold %.3f)",
			cs.model.Name, errs, rows, s.cfg.CanaryErrorRate)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// One registry snapshot: the model count and live name must come
	// from the same registry state (a publish landing between two
	// separate reads could pair models:0 with a live name).
	live, models := s.reg.Snapshot()
	resp := healthResponse{Models: models}
	if s.adm != nil {
		st := s.adm.state()
		resp.Admission = &st
	}
	if live != nil {
		resp.Status, resp.Live = "ok", live.Name
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Status = "no live model"
	s.writeJSON(w, http.StatusServiceUnavailable, resp)
}

func (s *Server) handleModelz(w http.ResponseWriter, _ *http.Request) {
	live := s.reg.Live()
	resp := modelzResponse{BatchTier: s.BatchTier(), Models: []modelInfo{}}
	if live != nil {
		resp.Live = live.Name
	}
	cm, pct, rows, errs := s.reg.Canary()
	if cm != nil {
		resp.Canary = &canaryInfo{Model: cm.Name, Pct: pct, Rows: rows, Errors: errs}
	}
	for _, m := range s.reg.Models() {
		resp.Models = append(resp.Models, modelInfo{
			Name: m.Name, Dim: m.Dim, Classes: m.Classes,
			Live: m == live, Canary: cm != nil && m.Name == cm.Name,
			Published: m.Published, Meta: m.Meta,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeJSON writes a JSON response. An Encode failure after the
// headers went out cannot change the status line anymore, but it must
// not be invisible either: the client received a truncated body that
// will fail to parse, and the operator needs to know that happened —
// it is counted (dpserve_response_encode_errors_total) and logged.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		if s.metrics != nil {
			s.metrics.encodeErrors.Add(1)
		}
		s.logf("serve: %d response truncated mid-body: %v", code, err)
	}
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
