// Package serve is the model-serving subsystem: a concurrent HTTP
// prediction service over a registry of trained models.
//
// The paper's end product is a deployed private model — training runs
// inside the RDBMS precisely so the resulting classifier can be used
// where the data lives. This package is that deployment surface: a
// long-lived process that answers a stream of small prediction queries
// against a maintained model artifact, hot-swapping the live model when
// a new version is published (the same shape as incremental view
// maintenance: maintain an artifact, answer queries against it, swap on
// update).
//
// The subsystem has three parts:
//
//   - Registry: named model versions persisted via the eval
//     serialization format, with an atomically hot-swappable live
//     model. Published models are immutable; readers can never observe
//     a torn model.
//   - Server: HTTP handlers for /predict (one row, dense or sparse
//     coordinate form), /predict/batch (amortized scoring, sparse rows
//     routed through the eval sparse tier at O(rows·classes·nnz)), and
//     /healthz + /modelz introspection.
//   - The train-and-publish path: dpsgd -publish writes boltondp.Train
//     output straight into a registry directory that cmd/dpserve
//     serves.
package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"boltondp/internal/eval"
)

// Model is one immutable published model version. All fields are set
// at publish time and never mutated afterwards — that immutability is
// what makes the registry's atomic-pointer hot-swap torn-model-free.
type Model struct {
	// Name identifies the version inside its registry.
	Name string
	// Classifier is the dense scoring interface.
	Classifier eval.Classifier
	// Sparse is the sparse scoring tier (non-nil for every model the
	// registry accepts; both eval classifier kinds implement it).
	Sparse eval.SparseClassifier
	// Meta is the metadata the model was published with — typically
	// its privacy statement (ε, δ, loss, sensitivity). The registry
	// stores a private copy.
	Meta map[string]string
	// Dim is the feature dimension rows must match.
	Dim int
	// Classes is 2 for a binary model, else the one-vs-all class count.
	Classes int
	// Published is when this version entered the registry.
	Published time.Time

	// w32 is the float32 scoring tier: one quantized weight row per
	// class margin (one row for Linear, Classes rows for OneVsAll),
	// built once at publish time. See f32.go for the precision
	// argument; the f64 classifier above remains the source of truth
	// and the persisted form.
	w32 [][]float32
}

// newModel validates a classifier and wraps it as a registry version.
// Only the eval classifier kinds are accepted: the registry persists
// through eval.SaveClassifier, so anything it holds must round-trip
// that format.
func newModel(name string, c eval.Classifier, meta map[string]string) (*Model, error) {
	m := &Model{Name: name, Classifier: c, Published: time.Now()}
	switch cc := c.(type) {
	case *eval.Linear:
		if len(cc.W) == 0 {
			return nil, fmt.Errorf("serve: model %q has an empty weight vector", name)
		}
		m.Dim, m.Classes = len(cc.W), 2
		m.w32 = [][]float32{quantize32(cc.W)}
	case *eval.OneVsAll:
		if len(cc.W) < 2 || len(cc.W[0]) == 0 {
			return nil, fmt.Errorf("serve: model %q is a malformed one-vs-all model", name)
		}
		m.Dim, m.Classes = len(cc.W[0]), len(cc.W)
		m.w32 = make([][]float32, len(cc.W))
		for cls, w := range cc.W {
			if len(w) != m.Dim {
				return nil, fmt.Errorf("serve: model %q class %d has dim %d, want %d", name, cls, len(w), m.Dim)
			}
			m.w32[cls] = quantize32(w)
		}
	default:
		return nil, fmt.Errorf("serve: cannot serve %T (registry models must round-trip eval.SaveClassifier)", c)
	}
	m.Sparse = c.(eval.SparseClassifier)
	if len(meta) > 0 {
		m.Meta = make(map[string]string, len(meta))
		for k, v := range meta {
			m.Meta[k] = v
		}
	}
	return m, nil
}

// Registry holds named model versions and designates one of them live.
//
// Locking invariants (pinned by the race tests):
//
//   - The version map is guarded by mu; Publish/SetLive take the write
//     lock, Get/Names/Models the read lock.
//   - The live model is a single atomic pointer to an immutable Model.
//     Prediction paths load it exactly once per request and never take
//     mu, so hot-swaps cannot block or tear in-flight predictions: a
//     reader sees the old version or the new one, never a mixture.
//   - Persistence is write-to-temp + rename, so a registry directory
//     never contains a half-written model file.
type Registry struct {
	dir string // "" = in-memory only

	live atomic.Pointer[Model]

	mu     sync.RWMutex
	models map[string]*Model
}

// NewRegistry opens the registry rooted at dir, creating the directory
// if needed and loading every model file already in it (from earlier
// Publish calls or dpsgd -publish). If exactly one model is found it
// becomes live; otherwise the caller picks one with SetLive. dir == ""
// gives an in-memory registry.
func NewRegistry(dir string) (*Registry, error) {
	r := &Registry{dir: dir, models: map[string]*Model{}}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		c, meta, err := eval.LoadClassifier(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("serve: loading %q: %w", e.Name(), err)
		}
		m, err := newModel(name, c, meta)
		if err != nil {
			return nil, err
		}
		// The file's mtime is the persisted record of when this version
		// was published; stamping load time would make /modelz report
		// the process restart as every model's publish time.
		if fi, err := e.Info(); err == nil {
			m.Published = fi.ModTime()
		}
		r.models[name] = m
	}
	if len(r.models) == 1 {
		for _, m := range r.models {
			r.live.Store(m)
		}
	}
	return r, nil
}

// ValidModelName rejects names that cannot double as registry file
// stems. Exported so publish paths (dpsgd -publish) can fail fast
// before spending a training run on a name Publish would reject.
func ValidModelName(name string) error {
	if name == "" {
		return errors.New("serve: empty model name")
	}
	if strings.ContainsAny(name, `/\`) || strings.HasPrefix(name, ".") {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	return nil
}

// Publish registers (or replaces) the named version, persists it when
// the registry is directory-backed, and hot-swaps it live. In-flight
// predictions against the previous live model finish on that model.
//
// The persist step runs under mu: that ties on-disk rename order to
// in-memory registration order, so concurrent publishes of one name
// cannot leave the directory holding a different version than the one
// the process serves. (Publish is a management path; prediction never
// touches mu.)
func (r *Registry) Publish(name string, c eval.Classifier, meta map[string]string) (*Model, error) {
	if err := ValidModelName(name); err != nil {
		return nil, err
	}
	m, err := newModel(name, c, meta)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.dir != "" {
		if err := r.persist(m); err != nil {
			r.mu.Unlock()
			return nil, err
		}
	}
	r.models[name] = m
	// The live store happens inside the critical section too, so
	// concurrent same-name publishes cannot leave live pointing at a
	// superseded version the map and disk no longer hold.
	r.live.Store(m)
	r.mu.Unlock()
	return m, nil
}

// persist writes the model file atomically: a same-directory temp file
// renamed into place, so a crash mid-write never leaves a torn file
// for the next NewRegistry to trip over. The temp name is unique per
// call (os.CreateTemp), so concurrent publishers of the same name —
// goroutines or separate dpsgd -publish processes — cannot interleave
// writes; last rename wins with both files intact.
func (r *Registry) persist(m *Model) error {
	f, err := os.CreateTemp(r.dir, m.Name+".*.tmp")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	tmp := f.Name()
	f.Close()
	if err := eval.SaveClassifier(tmp, m.Classifier, m.Meta); err != nil {
		os.Remove(tmp)
		return err
	}
	// CreateTemp made the file 0600 and WriteFile's mode only applies
	// on creation; published files must match dpsgd -save's 0644 so a
	// registry stays readable across users.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, m.Name+".json")); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// SetLive hot-swaps the live model to the named version.
func (r *Registry) SetLive(name string) (*Model, error) {
	r.mu.RLock()
	m := r.models[name]
	r.mu.RUnlock()
	if m == nil {
		return nil, fmt.Errorf("serve: no model %q (have %v)", name, r.Names())
	}
	r.live.Store(m)
	return m, nil
}

// Live returns the current live model, or nil when none is set. The
// single atomic load is the whole synchronization story of the
// prediction hot path.
func (r *Registry) Live() *Model {
	return r.live.Load()
}

// Get returns the named version.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	m, ok := r.models[name]
	r.mu.RUnlock()
	return m, ok
}

// Names returns the registered version names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.models))
	for name := range r.models {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Models returns the registered versions sorted by name.
func (r *Registry) Models() []*Model {
	r.mu.RLock()
	out := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered versions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
