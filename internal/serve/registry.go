// Package serve is the model-serving subsystem: a concurrent HTTP
// prediction service over a registry of trained models.
//
// The paper's end product is a deployed private model — training runs
// inside the RDBMS precisely so the resulting classifier can be used
// where the data lives. This package is that deployment surface: a
// long-lived process that answers a stream of small prediction queries
// against a maintained model artifact, hot-swapping the live model when
// a new version is published (the same shape as incremental view
// maintenance: maintain an artifact, answer queries against it, swap on
// update).
//
// The subsystem has five parts:
//
//   - Registry: named model versions persisted via the eval
//     serialization format, with an atomically hot-swappable live
//     model and a persisted live designation replicas converge on.
//     Published models are immutable; readers can never observe a
//     torn model.
//   - Server: HTTP handlers for /predict (one row, dense or sparse
//     coordinate form), /predict/batch (amortized scoring, sparse rows
//     routed through the eval sparse tier at O(rows·classes·nnz)), and
//     /healthz + /modelz + /metrics introspection, behind an optional
//     bounded admission queue (see admission.go).
//   - Watch: directory polling (watch.go) so N serving replicas over
//     one shared registry directory converge on publishes and
//     live-swaps without restart.
//   - Canary: staged rollout (canary.go) routing a deterministic
//     fraction of batch rows to a candidate version, with automatic
//     rollback on error-rate regression.
//   - The train-and-publish path: dpsgd -publish writes boltondp.Train
//     output straight into a registry directory that cmd/dpserve
//     serves.
package serve

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"boltondp/internal/eval"
)

// Model is one immutable published model version. All fields are set
// at publish time and never mutated afterwards — that immutability is
// what makes the registry's atomic-pointer hot-swap torn-model-free.
type Model struct {
	// Name identifies the version inside its registry.
	Name string
	// Classifier is the dense scoring interface.
	Classifier eval.Classifier
	// Sparse is the sparse scoring tier (non-nil for every model the
	// registry accepts; both eval classifier kinds implement it).
	Sparse eval.SparseClassifier
	// Meta is the metadata the model was published with — typically
	// its privacy statement (ε, δ, loss, sensitivity). The registry
	// stores a private copy.
	Meta map[string]string
	// Dim is the feature dimension rows must match.
	Dim int
	// Classes is 2 for a binary model, else the one-vs-all class count.
	Classes int
	// Published is when this version entered the registry.
	Published time.Time

	// w32 is the float32 scoring tier: one quantized weight row per
	// class margin (one row for Linear, Classes rows for OneVsAll),
	// built once at publish time. See f32.go for the precision
	// argument; the f64 classifier above remains the source of truth
	// and the persisted form.
	w32 [][]float32
}

// newModel validates a classifier and wraps it as a registry version.
// Only the eval classifier kinds are accepted: the registry persists
// through eval.SaveClassifier, so anything it holds must round-trip
// that format.
func newModel(name string, c eval.Classifier, meta map[string]string) (*Model, error) {
	m := &Model{Name: name, Classifier: c, Published: time.Now()}
	switch cc := c.(type) {
	case *eval.Linear:
		if len(cc.W) == 0 {
			return nil, fmt.Errorf("serve: model %q has an empty weight vector", name)
		}
		m.Dim, m.Classes = len(cc.W), 2
		m.w32 = [][]float32{quantize32(cc.W)}
	case *eval.OneVsAll:
		if len(cc.W) < 2 || len(cc.W[0]) == 0 {
			return nil, fmt.Errorf("serve: model %q is a malformed one-vs-all model", name)
		}
		m.Dim, m.Classes = len(cc.W[0]), len(cc.W)
		m.w32 = make([][]float32, len(cc.W))
		for cls, w := range cc.W {
			if len(w) != m.Dim {
				return nil, fmt.Errorf("serve: model %q class %d has dim %d, want %d", name, cls, len(w), m.Dim)
			}
			m.w32[cls] = quantize32(w)
		}
	default:
		return nil, fmt.Errorf("serve: cannot serve %T (registry models must round-trip eval.SaveClassifier)", c)
	}
	m.Sparse = c.(eval.SparseClassifier)
	if len(meta) > 0 {
		m.Meta = make(map[string]string, len(meta))
		for k, v := range meta {
			m.Meta[k] = v
		}
	}
	return m, nil
}

// liveFile is the live-designation file inside a registry directory:
// it holds the name of the designated live version, written atomically
// on every swap, so separate serving replicas over one shared
// directory converge on the same live model (watch.go polls it). The
// leading dot keeps it out of the *.json model scan, and
// ValidModelName rejects dotted names, so it can never collide with a
// model file.
const liveFile = ".live"

// tmpSweepAge is how old a leftover *.tmp file must be before
// NewRegistry removes it. A publisher that crashed mid-persist leaves
// its temp file behind forever (the rename never ran); a *concurrent*
// publisher's temp file is at most milliseconds old. The gate keeps
// the sweep from deleting the latter while guaranteeing the former
// cannot accumulate across restarts.
const tmpSweepAge = time.Hour

// mtimeQuantum bounds the timestamp granularity of the filesystems a
// registry directory is expected to live on (FAT rounds to 2 s, many
// network filesystems to 1 s). A republish can reuse its predecessor's
// (mtime, size) stamp only when both writes land inside one quantum.
const mtimeQuantum = 2 * time.Second

// fileStamp identifies one on-disk model file state for the watch
// diff: the cheap (mtime, size) pair, plus a content CRC tiebreaker.
// Persistence is temp+rename, so a file never mutates in place — any
// republish lands as a new inode, normally with a fresh mtime. The
// exception is a same-size republish within the same timestamp quantum
// as the stamped write, which (mtime, size) alone cannot see; crc and
// seenAt exist to close that hole without paying a content read on
// every poll (see fileStamp.suspect).
type fileStamp struct {
	mtime  time.Time
	size   int64
	crc    uint32    // IEEE CRC32 of the file contents; 0 = unknown
	seenAt time.Time // when the contents were last known to match crc
}

// suspect reports whether a matching (mtime, size) is NOT enough to
// rule out a rewrite: the stamp was recorded within one timestamp
// quantum of the file's own mtime, so a same-size rewrite in that same
// quantum would be invisible to the cheap diff. Refresh tiebreaks
// suspect files on content CRC; a clean check after the quantum has
// passed (seenAt moves forward) retires the suspicion, so steady-state
// polling stays stat-only.
func (st fileStamp) suspect() bool {
	return st.crc != 0 && st.seenAt.Sub(st.mtime) < mtimeQuantum
}

// fileCRC returns the IEEE CRC32 of the file's contents.
func fileCRC(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

// Registry holds named model versions and designates one of them live.
//
// Locking invariants (pinned by the race tests):
//
//   - The version map is guarded by mu; Publish/SetLive/Refresh take
//     the write lock, Get/Names/Models/Snapshot the read lock.
//   - The live model is a single atomic pointer to an immutable Model.
//     Prediction paths load it exactly once per request and never take
//     mu, so hot-swaps cannot block or tear in-flight predictions: a
//     reader sees the old version or the new one, never a mixture.
//     Every live.Store happens while mu is held, so a reader holding
//     the read lock observes a (live, models) pair from one registry
//     state — the Snapshot contract /healthz relies on.
//   - Persistence is write-to-temp + rename, so a registry directory
//     never contains a half-written model file; the live designation
//     file is written the same way.
type Registry struct {
	dir string // "" = in-memory only

	live   atomic.Pointer[Model]
	canary atomic.Pointer[canaryState]

	// Logf, when non-nil, receives operational log lines (watch scan
	// failures, canary rollbacks). Set it before starting Watch or
	// serving traffic; nil logs through the standard library logger.
	Logf func(format string, args ...any)

	mu     sync.RWMutex
	models map[string]*Model
	seen   map[string]fileStamp // on-disk state the watch diff compares against
}

// NewRegistry opens the registry rooted at dir, creating the directory
// if needed and loading every model file already in it (from earlier
// Publish calls or dpsgd -publish). Stale temp files from crashed
// publishes (older than tmpSweepAge) are swept. The live model is the
// one the directory's live-designation file names; absent that file,
// a directory holding exactly one model auto-designates it (the
// single-model dpsgd→dpserve path), and otherwise the caller picks one
// with SetLive. dir == "" gives an in-memory registry.
func NewRegistry(dir string) (*Registry, error) {
	r := &Registry{dir: dir, models: map[string]*Model{}, seen: map[string]fileStamp{}}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			// A crashed publish left its temp behind. Only sweep temps
			// demonstrably stale: a live concurrent publisher's temp is
			// seconds old at most and must survive.
			if fi, err := e.Info(); err == nil && time.Since(fi.ModTime()) > tmpSweepAge {
				os.Remove(filepath.Join(dir, e.Name()))
			}
			continue
		}
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		c, meta, err := eval.LoadClassifier(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("serve: loading %q: %w", e.Name(), err)
		}
		m, err := newModel(name, c, meta)
		if err != nil {
			return nil, err
		}
		// The file's mtime is the persisted record of when this version
		// was published; stamping load time would make /modelz report
		// the process restart as every model's publish time.
		if fi, err := e.Info(); err == nil {
			m.Published = fi.ModTime()
			st := fileStamp{mtime: fi.ModTime(), size: fi.Size(), seenAt: time.Now()}
			if crc, err := fileCRC(filepath.Join(dir, e.Name())); err == nil {
				st.crc = crc
			}
			r.seen[name] = st
		}
		r.models[name] = m
	}
	// The persisted designation wins; the single-model rule is the
	// back-compat fallback for directories that predate it (or whose
	// designation file was removed).
	if name, ok := r.readLiveFile(); ok {
		if m := r.models[name]; m != nil {
			r.live.Store(m)
		}
	}
	if r.live.Load() == nil && len(r.models) == 1 {
		for _, m := range r.models {
			r.live.Store(m)
		}
	}
	return r, nil
}

// readLiveFile reads the live designation from the registry directory.
func (r *Registry) readLiveFile() (string, bool) {
	b, err := os.ReadFile(filepath.Join(r.dir, liveFile))
	if err != nil {
		return "", false
	}
	name := strings.TrimSpace(string(b))
	return name, name != ""
}

// writeLiveFile persists the live designation atomically (same
// temp+rename discipline as model files). Callers hold mu.
func (r *Registry) writeLiveFile(name string) error {
	f, err := os.CreateTemp(r.dir, liveFile+".*.tmp")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	tmp := f.Name()
	if _, err := f.WriteString(name + "\n"); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, liveFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// ValidModelName rejects names that cannot double as registry file
// stems. Exported so publish paths (dpsgd -publish) can fail fast
// before spending a training run on a name Publish would reject.
func ValidModelName(name string) error {
	if name == "" {
		return errors.New("serve: empty model name")
	}
	if strings.ContainsAny(name, `/\`) || strings.HasPrefix(name, ".") {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	return nil
}

// Publish registers (or replaces) the named version and persists it
// when the registry is directory-backed.
//
// Whether the new version goes live is a policy, not an unconditional
// side effect: a registry with no live model adopts the published one
// (the single-model dpsgd→dpserve path keeps working with zero
// ceremony), and a republish of the current live *name* follows it
// (the live designation names a version, not a pointer). Any other
// publish leaves traffic untouched — promotion is an explicit SetLive
// or a canary rollout (SetCanary → PromoteCanary), so publishing a new
// version into a multi-model registry can never steal 100% of traffic
// as a surprise.
//
// The persist step runs under mu: that ties on-disk rename order to
// in-memory registration order, so concurrent publishes of one name
// cannot leave the directory holding a different version than the one
// the process serves. (Publish is a management path; prediction never
// touches mu.)
func (r *Registry) Publish(name string, c eval.Classifier, meta map[string]string) (*Model, error) {
	if err := ValidModelName(name); err != nil {
		return nil, err
	}
	m, err := newModel(name, c, meta)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dir != "" {
		if err := r.persist(m); err != nil {
			return nil, err
		}
	}
	r.models[name] = m
	// The live store happens inside the critical section too, so
	// concurrent same-name publishes cannot leave live pointing at a
	// superseded version the map and disk no longer hold.
	if cur := r.live.Load(); cur == nil || cur.Name == name {
		if r.dir != "" {
			if err := r.writeLiveFile(name); err != nil {
				return nil, err
			}
		}
		r.live.Store(m)
	}
	return m, nil
}

// persist writes the model file atomically: a same-directory temp file
// renamed into place, so a crash mid-write never leaves a torn file
// for the next NewRegistry to trip over (at worst it leaves a stale
// *.tmp, which the next NewRegistry sweeps). The temp name is unique
// per call (os.CreateTemp), so concurrent publishers of the same name
// — goroutines or separate dpsgd -publish processes — cannot
// interleave writes; last rename wins with both files intact. Callers
// hold mu; on success r.seen records the renamed file's stamp so the
// watch diff does not reload the registry's own writes.
func (r *Registry) persist(m *Model) error {
	f, err := os.CreateTemp(r.dir, m.Name+".*.tmp")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	tmp := f.Name()
	f.Close()
	if err := eval.SaveClassifier(tmp, m.Classifier, m.Meta); err != nil {
		os.Remove(tmp)
		return err
	}
	// CreateTemp made the file 0600 and WriteFile's mode only applies
	// on creation; published files must match dpsgd -save's 0644 so a
	// registry stays readable across users.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: %w", err)
	}
	final := filepath.Join(r.dir, m.Name+".json")
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: %w", err)
	}
	if fi, err := os.Stat(final); err == nil {
		st := fileStamp{mtime: fi.ModTime(), size: fi.Size(), seenAt: time.Now()}
		if crc, err := fileCRC(final); err == nil {
			st.crc = crc
		}
		r.seen[m.Name] = st
	}
	return nil
}

// SetLive hot-swaps the live model to the named version and, on a
// directory-backed registry, persists the designation so watching
// replicas follow the swap.
func (r *Registry) SetLive(name string) (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[name]
	if m == nil {
		return nil, fmt.Errorf("serve: no model %q (have %v)", name, r.namesLocked())
	}
	if r.dir != "" {
		if err := r.writeLiveFile(name); err != nil {
			return nil, err
		}
	}
	r.live.Store(m)
	return m, nil
}

// Live returns the current live model, or nil when none is set. The
// single atomic load is the whole synchronization story of the
// prediction hot path.
func (r *Registry) Live() *Model {
	return r.live.Load()
}

// Snapshot returns the live model and version count from one registry
// state. Because every live.Store happens under mu, reading both under
// the read lock cannot pair a model count with a live name the map
// never held together — the consistency /healthz reports rely on.
func (r *Registry) Snapshot() (live *Model, models int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.live.Load(), len(r.models)
}

// Get returns the named version.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	m, ok := r.models[name]
	r.mu.RUnlock()
	return m, ok
}

// Names returns the registered version names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := r.namesLocked()
	r.mu.RUnlock()
	return out
}

func (r *Registry) namesLocked() []string {
	out := make([]string, 0, len(r.models))
	for name := range r.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Models returns the registered versions sorted by name.
func (r *Registry) Models() []*Model {
	r.mu.RLock()
	out := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered versions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// logf routes operational log lines through Logf (or the standard
// logger when unset).
func (r *Registry) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
		return
	}
	stdlog(format, args...)
}
