package serve

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/eval"
	"boltondp/internal/store"
)

// chunkModel builds a model plus a store file of scoreable rows.
func chunkModel(t *testing.T) (*Model, *store.Reader, *data.SparseDataset) {
	t.Helper()
	r := rand.New(rand.NewSource(31))
	ds := data.SparseSynthetic(r, 300, 40, 5, 0.02)
	path := filepath.Join(t.TempDir(), "rows.bolt")
	if err := store.Write(path, ds, store.Options{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	rd, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	w := make([]float64, ds.Dim())
	for i := range w {
		w[i] = r.NormFloat64()
	}
	m, err := newModel("chunks", &eval.Linear{W: w}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, rd, ds
}

// ScoreChunks must agree row for row with single-row scoring, cover
// every row exactly once, and report correct global offsets.
func TestScoreChunksMatchesSingleRow(t *testing.T) {
	m, rd, ds := chunkModel(t)
	seen := 0
	err := m.ScoreChunks(context.Background(), rd, 2, func(base int, preds, y []float64) error {
		if len(preds) != len(y) {
			t.Fatalf("chunk at %d: %d preds for %d labels", base, len(preds), len(y))
		}
		for i := range preds {
			row, wantY := ds.AtSparse(base + i)
			if y[i] != wantY {
				t.Fatalf("row %d: label %v, want %v", base+i, y[i], wantY)
			}
			single, err := m.Score(&Row{Idx: row.Idx, Val: row.Val})
			if err != nil {
				t.Fatal(err)
			}
			if preds[i] != single {
				t.Fatalf("row %d: chunk pred %v != single-row %v", base+i, preds[i], single)
			}
		}
		seen += len(y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != rd.Len() {
		t.Fatalf("scored %d rows, want %d", seen, rd.Len())
	}
}

// A callback error aborts the stream and surfaces unchanged.
func TestScoreChunksCallbackError(t *testing.T) {
	m, rd, _ := chunkModel(t)
	boom := errors.New("boom")
	calls := 0
	err := m.ScoreChunks(context.Background(), rd, 1, func(int, []float64, []float64) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after erroring", calls)
	}
}

// A cancelled context stops chunk scoring promptly with ctx.Err().
func TestScoreChunksCancelled(t *testing.T) {
	m, rd, _ := chunkModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := m.ScoreChunks(ctx, rd, 2, func(int, []float64, []float64) error {
		t.Fatal("callback ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
