//go:build race

package serve

// raceEnabled relaxes timing assertions when the race detector's
// instrumentation overhead distorts compute/IO ratios.
const raceEnabled = true
