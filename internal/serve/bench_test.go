package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"boltondp/internal/data"
	"boltondp/internal/eval"
)

// kddWorkload builds the serving benchmark fixture: a live linear
// model over the KDDSimSparse one-hot encoding (d = 122, ~12 nnz per
// row) and n test rows in sparse wire form.
func kddWorkload(tb testing.TB, n int) (http.Handler, []Row) {
	tb.Helper()
	return kddWorkloadCfg(tb, n, Config{Workers: 4})
}

// kddWorkloadCfg is kddWorkload with an explicit server config (the
// metrics-overhead gate builds baseline and instrumented servers over
// the same fixture).
func kddWorkloadCfg(tb testing.TB, n int, cfg Config) (http.Handler, []Row) {
	tb.Helper()
	r := rand.New(rand.NewSource(7))
	_, test := data.KDDSimSparse(r, 0.01)
	w := make([]float64, test.Dim())
	for i := range w {
		w[i] = r.NormFloat64()
	}
	reg, err := NewRegistry("")
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := reg.Publish("kdd", &eval.Linear{W: w}, nil); err != nil {
		tb.Fatal(err)
	}
	rows := make([]Row, n)
	for i := range rows {
		sp, _ := test.AtSparse(i % test.Len())
		rows[i] = Row{Idx: append([]int(nil), sp.Idx...), Val: append([]float64(nil), sp.Val...)}
	}
	return New(reg, cfg).Handler(), rows
}

// post sends one request over the real HTTP stack and fails on a
// non-200 status.
func post(tb testing.TB, client *http.Client, url string, body []byte) {
	tb.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("status %d", resp.StatusCode)
	}
}

func encodeSingles(tb testing.TB, rows []Row) [][]byte {
	tb.Helper()
	out := make([][]byte, len(rows))
	for i := range rows {
		b, err := json.Marshal(predictRequest{Row: rows[i]})
		if err != nil {
			tb.Fatal(err)
		}
		out[i] = b
	}
	return out
}

func encodeBatches(tb testing.TB, rows []Row, batch int) [][]byte {
	tb.Helper()
	var out [][]byte
	for lo := 0; lo < len(rows); lo += batch {
		hi := lo + batch
		if hi > len(rows) {
			hi = len(rows)
		}
		b, err := json.Marshal(struct {
			Rows []Row `json:"rows"`
		}{rows[lo:hi]})
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// encodeCSRBatches packs row chunks into the columnar batch form.
func encodeCSRBatches(tb testing.TB, rows []Row, batch int) [][]byte {
	tb.Helper()
	type csrReq struct {
		Indptr []int     `json:"indptr"`
		Idx    []int     `json:"idx"`
		Val    []float64 `json:"val"`
	}
	var out [][]byte
	for lo := 0; lo < len(rows); lo += batch {
		hi := lo + batch
		if hi > len(rows) {
			hi = len(rows)
		}
		indptr, idx, val, err := PackCSR(rows[lo:hi])
		if err != nil {
			tb.Fatal(err)
		}
		b, err := json.Marshal(csrReq{Indptr: indptr, Idx: idx, Val: val})
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// BenchmarkServePredict measures single-row /predict over the wire:
// every row pays a full HTTP round trip plus per-request JSON framing.
func BenchmarkServePredict(b *testing.B) {
	h, rows := kddWorkload(b, 256)
	srv := httptest.NewServer(h)
	defer srv.Close()
	bodies := encodeSingles(b, rows)
	url := srv.URL + "/predict"
	post(b, srv.Client(), url, bodies[0]) // warm the connection
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, srv.Client(), url, bodies[i%len(bodies)])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkServeBatchSparse measures /predict/batch in the columnar
// sparse form on the same workload: one request scores batchRows rows
// through eval.SparseClassifier at O(rows·classes·nnz), with the HTTP
// round trip, JSON framing and per-row object decoding all amortized
// into three array decodes. Per-row throughput must sustain ≥ 5× the
// single-row path (pinned by TestServeBatchAmortization).
func BenchmarkServeBatchSparse(b *testing.B) {
	const batchRows = 256
	h, rows := kddWorkload(b, batchRows)
	srv := httptest.NewServer(h)
	defer srv.Close()
	bodies := encodeCSRBatches(b, rows, batchRows)
	url := srv.URL + "/predict/batch"
	post(b, srv.Client(), url, bodies[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, srv.Client(), url, bodies[i%len(bodies)])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batchRows/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkServeBatchRows measures the row-object batch form — the
// ergonomic encoding. It amortizes the HTTP round trip but still pays
// a JSON object decode per row, which is why the columnar form above
// is the throughput path.
func BenchmarkServeBatchRows(b *testing.B) {
	const batchRows = 256
	h, rows := kddWorkload(b, batchRows)
	srv := httptest.NewServer(h)
	defer srv.Close()
	bodies := encodeBatches(b, rows, batchRows)
	url := srv.URL + "/predict/batch"
	post(b, srv.Client(), url, bodies[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, srv.Client(), url, bodies[i%len(bodies)])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batchRows/b.Elapsed().Seconds(), "rows/s")
}

// TestServeBatchAmortization pins the acceptance bar: on the
// KDDSimSparse workload, columnar batch scoring must sustain at least
// 5× the per-row throughput of single-row /predict (relaxed under
// -race, whose instrumentation inflates decode cost relative to the
// fixed network overhead batching amortizes away).
func TestServeBatchAmortization(t *testing.T) {
	const n = 512
	h, rows := kddWorkload(t, n)
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := srv.Client()

	singles := encodeSingles(t, rows)
	batches := encodeCSRBatches(t, rows, 256)
	post(t, client, srv.URL+"/predict", singles[0])
	post(t, client, srv.URL+"/predict/batch", batches[0])

	start := time.Now()
	for _, body := range singles {
		post(t, client, srv.URL+"/predict", body)
	}
	perRowSingle := time.Since(start) / n

	start = time.Now()
	for _, body := range batches {
		post(t, client, srv.URL+"/predict/batch", body)
	}
	perRowBatch := time.Since(start) / n

	want := 5.0
	if raceEnabled {
		want = 1.5
	}
	ratio := float64(perRowSingle) / float64(perRowBatch)
	t.Logf("single %v/row, batch %v/row, amortization %.1fx (want ≥ %.1fx)", perRowSingle, perRowBatch, ratio, want)
	if ratio < want {
		t.Errorf("batch amortization %.2fx below %.1fx", ratio, want)
	}
}
