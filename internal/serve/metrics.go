package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"boltondp/internal/account"
	"boltondp/internal/account/compose"
)

// Observability: a dependency-free GET /metrics in the Prometheus text
// exposition format (version 0.0.4).
//
// The instrumentation budget is the design constraint: the columnar
// batch path is the product (6–9× single-row throughput), so the
// per-request cost of being observable is a handful of atomic adds and
// one clock read — no locks, no maps on the hot path, no allocation
// beyond the status-recording writer. TestMetricsOverhead gates the
// whole handler-path overhead at ≤2% on the batch benchmark workload.
//
// Two kinds of series come out of the scrape:
//
//   - Counters and histograms accumulated per request (requests,
//     errors by status class, latency, batch rows, response-encode
//     failures, sheds). These live in Metrics and are updated by the
//     instrument middleware and the handlers.
//   - Gauges computed at scrape time from authoritative state (live
//     model info and its accountant ledger, admission-queue depths,
//     canary designation). Scrapes are rare; recomputing beats
//     mirroring state that the registry already owns.

// latencyBuckets are the histogram upper bounds in seconds. The span
// covers the serving regimes: sub-millisecond single rows, multi-ms
// columnar batches, and the tail where an overloaded or cold replica
// lives.
var latencyBuckets = [...]float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5}

// routeMetrics is the per-route counter block. All fields are atomics:
// a request touches exactly one block, once, after its handler ran.
type routeMetrics struct {
	requests  atomic.Uint64
	errors4xx atomic.Uint64
	errors5xx atomic.Uint64

	buckets [len(latencyBuckets)]atomic.Uint64 // non-cumulative; summed at scrape
	count   atomic.Uint64
	sumNs   atomic.Int64
}

func (rm *routeMetrics) observe(code int, d time.Duration) {
	rm.requests.Add(1)
	switch {
	case code >= 500:
		rm.errors5xx.Add(1)
	case code >= 400:
		rm.errors4xx.Add(1)
	}
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			rm.buckets[i].Add(1)
			break
		}
	}
	rm.count.Add(1)
	rm.sumNs.Add(int64(d))
}

// metricsRoutes are the instrumented route labels, in scrape order.
var metricsRoutes = [...]string{"predict", "predict_batch", "healthz", "modelz", "metrics"}

// Metrics holds the request-accumulated series of one server.
type Metrics struct {
	routes [len(metricsRoutes)]routeMetrics

	batchRows    atomic.Uint64 // rows scored by /predict/batch
	encodeErrors atomic.Uint64 // JSON responses that failed mid-body (see writeJSON)

	canaryRollbacks atomic.Uint64 // automatic canary rollbacks fired
}

// routeIndex maps a route label to its slot; -1 for unknown.
func routeIndex(route string) int {
	for i, r := range metricsRoutes {
		if r == route {
			return i
		}
	}
	return -1
}

// statusWriter records the status code a handler wrote so the
// middleware can classify the response after the fact.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-route request/error/latency
// accounting. With metrics disabled it returns the handler untouched —
// the baseline the ≤2% overhead gate compares against.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if s.metrics == nil {
		return h
	}
	rm := &s.metrics.routes[routeIndex(route)]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		rm.observe(sw.code, time.Since(start))
	}
}

// handleMetrics renders the scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.writeMetricsText(w)
}

// writeMetricsText writes every series in the Prometheus text format.
func (s *Server) writeMetricsText(w io.Writer) {
	m := s.metrics
	if m == nil {
		return
	}
	var b strings.Builder

	b.WriteString("# HELP dpserve_requests_total Requests served, by route.\n# TYPE dpserve_requests_total counter\n")
	for i, route := range metricsRoutes {
		fmt.Fprintf(&b, "dpserve_requests_total{route=%q} %d\n", route, m.routes[i].requests.Load())
	}

	b.WriteString("# HELP dpserve_errors_total Error responses, by route and status class.\n# TYPE dpserve_errors_total counter\n")
	for i, route := range metricsRoutes {
		fmt.Fprintf(&b, "dpserve_errors_total{route=%q,class=\"4xx\"} %d\n", route, m.routes[i].errors4xx.Load())
		fmt.Fprintf(&b, "dpserve_errors_total{route=%q,class=\"5xx\"} %d\n", route, m.routes[i].errors5xx.Load())
	}

	b.WriteString("# HELP dpserve_request_seconds Request latency, by route.\n# TYPE dpserve_request_seconds histogram\n")
	for i, route := range metricsRoutes {
		rm := &m.routes[i]
		var cum uint64
		for j, ub := range latencyBuckets {
			cum += rm.buckets[j].Load()
			fmt.Fprintf(&b, "dpserve_request_seconds_bucket{route=%q,le=%q} %d\n", route, formatFloat(ub), cum)
		}
		count := rm.count.Load()
		fmt.Fprintf(&b, "dpserve_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, count)
		fmt.Fprintf(&b, "dpserve_request_seconds_sum{route=%q} %s\n", route, formatFloat(time.Duration(rm.sumNs.Load()).Seconds()))
		fmt.Fprintf(&b, "dpserve_request_seconds_count{route=%q} %d\n", route, count)
	}

	b.WriteString("# HELP dpserve_batch_rows_total Rows scored by /predict/batch.\n# TYPE dpserve_batch_rows_total counter\n")
	fmt.Fprintf(&b, "dpserve_batch_rows_total %d\n", m.batchRows.Load())

	b.WriteString("# HELP dpserve_response_encode_errors_total JSON responses that failed mid-body after headers were sent.\n# TYPE dpserve_response_encode_errors_total counter\n")
	fmt.Fprintf(&b, "dpserve_response_encode_errors_total %d\n", m.encodeErrors.Load())

	// Admission gauges: authoritative state read at scrape time.
	if a := s.adm; a != nil {
		st := a.state()
		b.WriteString("# HELP dpserve_shed_total Requests shed by admission control (429).\n# TYPE dpserve_shed_total counter\n")
		fmt.Fprintf(&b, "dpserve_shed_total %d\n", st.Sheds)
		b.WriteString("# HELP dpserve_inflight Requests currently holding a scoring slot.\n# TYPE dpserve_inflight gauge\n")
		fmt.Fprintf(&b, "dpserve_inflight %d\n", st.Inflight)
		b.WriteString("# HELP dpserve_queued Requests waiting in the admission queue.\n# TYPE dpserve_queued gauge\n")
		fmt.Fprintf(&b, "dpserve_queued %d\n", st.Queued)
	}

	// Live-model gauges, including the privacy spend parsed from the
	// accountant ledger the model was published with.
	if live := s.reg.Live(); live != nil {
		b.WriteString("# HELP dpserve_model_info Live model (name and batch scoring tier); value is always 1.\n# TYPE dpserve_model_info gauge\n")
		fmt.Fprintf(&b, "dpserve_model_info{model=\"%s\",tier=\"%s\"} 1\n", escapeLabel(live.Name), s.BatchTier())
		b.WriteString("# HELP dpserve_model_dim Live model feature dimension.\n# TYPE dpserve_model_dim gauge\n")
		fmt.Fprintf(&b, "dpserve_model_dim{model=\"%s\"} %d\n", escapeLabel(live.Name), live.Dim)
		if l, ok, err := account.LedgerFromMeta(live.Meta); ok && err == nil {
			spent, total := l.Spent(), l.Total()
			b.WriteString("# HELP dpserve_dp_epsilon_spent Privacy budget epsilon spent on the live model (from its accountant ledger).\n# TYPE dpserve_dp_epsilon_spent gauge\n")
			fmt.Fprintf(&b, "dpserve_dp_epsilon_spent{model=\"%s\"} %s\n", escapeLabel(live.Name), formatFloat(spent.Epsilon))
			b.WriteString("# HELP dpserve_dp_delta_spent Privacy budget delta spent on the live model.\n# TYPE dpserve_dp_delta_spent gauge\n")
			fmt.Fprintf(&b, "dpserve_dp_delta_spent{model=\"%s\"} %s\n", escapeLabel(live.Name), formatFloat(spent.Delta))
			b.WriteString("# HELP dpserve_dp_epsilon_total Total privacy budget epsilon of the live model's accountant.\n# TYPE dpserve_dp_epsilon_total gauge\n")
			fmt.Fprintf(&b, "dpserve_dp_epsilon_total{model=\"%s\"} %s\n", escapeLabel(live.Name), formatFloat(total.Epsilon))
			b.WriteString("# HELP dpserve_dp_delta_total Total privacy budget delta of the live model's accountant.\n# TYPE dpserve_dp_delta_total gauge\n")
			fmt.Fprintf(&b, "dpserve_dp_delta_total{model=\"%s\"} %s\n", escapeLabel(live.Name), formatFloat(total.Delta))
			b.WriteString("# HELP dpserve_dp_rule Composition rule the live model's spend was accounted under (an absent ledger rule is simple); value is always 1.\n# TYPE dpserve_dp_rule gauge\n")
			fmt.Fprintf(&b, "dpserve_dp_rule{model=\"%s\",rule=\"%s\"} 1\n", escapeLabel(live.Name), escapeLabel(compose.Normalize(l.Rule)))
		}
	}

	// Canary series: designation gauge plus this rollout's counters.
	if cm, pct, rows, errs := s.reg.Canary(); cm != nil {
		b.WriteString("# HELP dpserve_canary_pct Active canary rollout traffic percentage, by candidate model.\n# TYPE dpserve_canary_pct gauge\n")
		fmt.Fprintf(&b, "dpserve_canary_pct{model=\"%s\"} %d\n", escapeLabel(cm.Name), pct)
		b.WriteString("# HELP dpserve_canary_rows_total Batch rows routed to the active canary.\n# TYPE dpserve_canary_rows_total counter\n")
		fmt.Fprintf(&b, "dpserve_canary_rows_total %d\n", rows)
		b.WriteString("# HELP dpserve_canary_errors_total Canary scoring failures (rows fell back to the live model).\n# TYPE dpserve_canary_errors_total counter\n")
		fmt.Fprintf(&b, "dpserve_canary_errors_total %d\n", errs)
	}
	b.WriteString("# HELP dpserve_canary_rollbacks_total Automatic canary rollbacks fired by the error-rate gate.\n# TYPE dpserve_canary_rollbacks_total counter\n")
	fmt.Fprintf(&b, "dpserve_canary_rollbacks_total %d\n", m.canaryRollbacks.Load())

	io.WriteString(w, b.String()) //nolint:errcheck // scrape writer; a failed scrape re-scrapes
}

// formatFloat renders a float the Prometheus text parser accepts.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format
// (backslash, quote and newline). %q adds the surrounding quotes and
// covers backslash/quote; newlines cannot appear in model names
// (ValidModelName), but escape defensively anyway.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}
