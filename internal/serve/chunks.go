package serve

import (
	"context"
	"fmt"
)

// ChunkSource is a batch-scoring input that streams labeled CSR
// chunks: the shape of the out-of-core dataset store (store.Reader
// implements it), declared here as an interface so the serving layer
// stays independent of the storage layer. ChunkCSR returns chunk c as
// chunk-local CSR arrays plus labels; the slices need only stay valid
// until the next ChunkCSR call.
type ChunkSource interface {
	Chunks() int
	ChunkCSR(c int) (indptr, idx []int, val, y []float64, err error)
}

// ScoreChunks scores every row of a chunk source against the model,
// one chunk at a time — batch scoring for datasets that do not fit in
// memory. Each chunk is scored through the columnar CSR hot path
// (ScoreBatchCSRCtx) with per-row work fanned out across workers, then
// handed to fn together with its labels and the global row offset of
// its first row; memory stays O(chunk) end to end. A non-nil error
// from fn aborts the stream and is returned as-is.
func (m *Model) ScoreChunks(ctx context.Context, src ChunkSource, workers int, fn func(base int, preds, y []float64) error) error {
	base := 0
	for c := 0; c < src.Chunks(); c++ {
		indptr, idx, val, y, err := src.ChunkCSR(c)
		if err != nil {
			return err
		}
		preds, err := m.ScoreBatchCSRCtx(ctx, indptr, idx, val, workers)
		if err != nil {
			return fmt.Errorf("serve: chunk %d: %w", c, err)
		}
		if err := fn(base, preds, y); err != nil {
			return err
		}
		base += len(y)
	}
	return nil
}
