package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"boltondp/internal/eval"
)

// TestWatchTwoReplicaConvergence is the replication acceptance test:
// two independent Registry instances ("replicas") over one shared
// directory, where one publishes and swaps and the other only ever
// scans. Every publisher-side transition must be observable on the
// follower after one Refresh — publishes, explicit live swaps,
// republishes of the live name, and deletions.
func TestWatchTwoReplicaConvergence(t *testing.T) {
	dir := t.TempDir()
	pub, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First publish into the empty registry goes live on the publisher
	// and, after one scan, on the follower.
	if _, err := pub.Publish("m1", linear(4, 1), map[string]string{"epsilon": "1"}); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 1 || sub.Live() == nil || sub.Live().Name != "m1" {
		t.Fatalf("after first publish: len=%d live=%v", sub.Len(), sub.Live())
	}
	if sub.Live().Meta["epsilon"] != "1" {
		t.Errorf("replicated meta: %v", sub.Live().Meta)
	}

	// A second publish replicates as a named version but must NOT move
	// the follower's live model (same policy as a local publish).
	if _, err := pub.Publish("m2", linear(4, 2), nil); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Live().Name != "m1" {
		t.Fatalf("after second publish: len=%d live=%q", sub.Len(), sub.Live().Name)
	}

	// An explicit swap on the publisher replicates through the
	// designation file.
	if _, err := pub.SetLive("m2"); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sub.Live().Name != "m2" {
		t.Fatalf("after SetLive(m2): follower live %q", sub.Live().Name)
	}

	// Republishing the live name swaps the follower to the new weights.
	if _, err := pub.Publish("m2", linear(4, -2), nil); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	if w := sub.Live().Classifier.(*eval.Linear).W[0]; w != -2 {
		t.Fatalf("republished live weights not followed: w[0]=%v", w)
	}

	// A deleted model file drops from the follower's map — but a
	// vanished designation target never un-designates the live model
	// (serving the last good model beats serving nothing).
	if err := os.Remove(filepath.Join(dir, "m1.json")); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 1 {
		t.Fatalf("after deleting m1: len=%d", sub.Len())
	}
	if _, ok := sub.Get("m1"); ok {
		t.Error("deleted model still registered")
	}
	if err := os.Remove(filepath.Join(dir, "m2.json")); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sub.Live() == nil || sub.Live().Name != "m2" {
		t.Error("live model un-designated by file deletion")
	}
}

// TestWatchGoroutineConvergence drives the actual Watch loop: a
// follower polling at a short interval converges on a publish + swap
// without any explicit Refresh call.
func TestWatchGoroutineConvergence(t *testing.T) {
	dir := t.TempDir()
	pub, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sub.WatchEvery(ctx, 5*time.Millisecond) }()

	if _, err := pub.Publish("hot", linear(2, 1), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := sub.Live(); m != nil && m.Name == "hot" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower did not converge on the publish")
		}
		time.Sleep(2 * time.Millisecond)
	}

	cancel()
	if err := <-done; err != context.Canceled {
		t.Errorf("Watch returned %v, want context.Canceled", err)
	}
}

// TestWatchSkipsCorruptFileAndRetries pins the failure policy: a model
// file that fails to load is reported and skipped — the rest of the
// scan still applies — and a subsequent scan picks up the repaired
// file.
func TestWatchSkipsCorruptFileAndRetries(t *testing.T) {
	dir := t.TempDir()
	pub, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish("good", linear(2, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err == nil {
		t.Error("corrupt file did not surface in the scan error")
	}
	if _, ok := sub.Get("good"); !ok {
		t.Error("corrupt file blocked the rest of the scan")
	}
	// Repair: publish a real model under the broken name.
	if _, err := pub.Publish("broken", linear(2, 2), nil); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatalf("repaired file still erroring: %v", err)
	}
	if _, ok := sub.Get("broken"); !ok {
		t.Error("repaired file not loaded on retry")
	}
}

// TestWatchInMemoryRejected: there is no directory to watch.
func TestWatchInMemoryRejected(t *testing.T) {
	r, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Watch(context.Background()); err == nil {
		t.Error("Watch accepted an in-memory registry")
	}
	if err := r.Refresh(); err == nil {
		t.Error("Refresh accepted an in-memory registry")
	}
}

// TestWatchDesignationWithoutModel: a live designation naming a model
// the scan has not loaded yet (publish raced ahead of the designation's
// target on a different replica) applies on the tick that sees the
// model, not before.
func TestWatchDesignationWithoutModel(t *testing.T) {
	dir := t.TempDir()
	sub, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, liveFile), []byte("future\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sub.Live() != nil {
		t.Fatal("designation applied before its model exists")
	}
	pub, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish("future", linear(2, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sub.Live() == nil || sub.Live().Name != "future" {
		t.Error("designation not applied once its model arrived")
	}
}

// TestWatchSameSecondSameSizeRewrite pins the content-CRC tiebreaker:
// a republish whose file has the same size AND the same mtime as its
// predecessor (coarse-mtime filesystem, simulated with Chtimes) is
// invisible to the (mtime, size) diff but must still be observed by
// the follower.
func TestWatchSameSecondSameSizeRewrite(t *testing.T) {
	dir := t.TempDir()
	pub, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := pub.Publish("m", linear(4, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "m.json")
	fi0, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// Republish with different weights but the identical byte length,
	// then pin mtime back to the original — the exact blind spot of the
	// (mtime, size) stamp.
	if _, err := pub.Publish("m", linear(4, 2), nil); err != nil {
		t.Fatal(err)
	}
	fi1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi0.Size() != fi1.Size() {
		t.Fatalf("test setup: sizes differ (%d vs %d), rewrite not size-preserving", fi0.Size(), fi1.Size())
	}
	if err := os.Chtimes(path, fi0.ModTime(), fi0.ModTime()); err != nil {
		t.Fatal(err)
	}

	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	got := sub.Live().Classifier.(*eval.Linear).W[0]
	if got != 2 {
		t.Fatalf("same-second same-size rewrite missed: follower w[0]=%v, want 2", got)
	}
}

// TestFileStampSuspect pins when the CRC tiebreak is consulted at all:
// only stamps recorded inside the mtime quantum of the write stay
// suspect; verified or old stamps poll stat-only.
func TestFileStampSuspect(t *testing.T) {
	now := time.Now()
	fresh := fileStamp{mtime: now, seenAt: now, crc: 7}
	if !fresh.suspect() {
		t.Error("stamp recorded at its own mtime is not suspect")
	}
	retired := fileStamp{mtime: now.Add(-time.Minute), seenAt: now, crc: 7}
	if retired.suspect() {
		t.Error("stamp verified after the quantum is still suspect")
	}
	unknown := fileStamp{mtime: now, seenAt: now}
	if unknown.suspect() {
		t.Error("stamp without a CRC cannot be CRC-verified")
	}
}
