package serve

import "math"

// The float32 scoring tier.
//
// Batch scoring in the columnar form is memory-bound, not
// compute-bound: every ⟨w, x⟩ against a sparse row touches nnz random
// positions of the weight rows, so the working set is the model itself
// — classes × dim float64s. Quantizing the published weights to
// float32 halves that working set (and the cache traffic behind every
// margin) without changing the serving contract: margins are still
// accumulated in float64 (each term is float64(w32[i])·val[i]), so the
// only rounding introduced is the one-time float64→float32 weight
// conversion, a relative perturbation of at most 2⁻²⁴ per coordinate.
// Labels can only flip on rows whose margin magnitude is below roughly
// ‖w‖·‖x‖·2⁻²⁴ — empirically ≪0.1% of rows (TestServeF32LabelParity
// pins ≥99.9% agreement on the KDD workload).
//
// The tier is built once at publish time, routes only the columnar
// /predict/batch path (Config.Float64Batch opts a server back into
// full-precision batches), and reuses the f64 tier's tie rules
// verbatim: Linear ties (score exactly 0) go to +1, OneVsAll argmax
// prefers the lowest class index on exact ties.

// quantize32 converts one weight row to the float32 tier.
func quantize32(w []float64) []float32 {
	q := make([]float32, len(w))
	for i, v := range w {
		q[i] = float32(v)
	}
	return q
}

// dot32 is the tier's kernel: a sparse margin against a quantized
// weight row, accumulated in float64.
func dot32(w []float32, idx []int, val []float64) float64 {
	var s float64
	for k, i := range idx {
		s += float64(w[i]) * val[k]
	}
	return s
}

// predictSparse32 scores one canonical coordinate row through the
// float32 tier, replicating the eval tie rules exactly.
func (m *Model) predictSparse32(idx []int, val []float64) float64 {
	if len(m.w32) == 1 { // binary: sign with ties to +1
		if dot32(m.w32[0], idx, val) >= 0 {
			return 1
		}
		return -1
	}
	best, bestScore := 0, math.Inf(-1)
	for c, w := range m.w32 {
		if s := dot32(w, idx, val); s > bestScore {
			best, bestScore = c, s
		}
	}
	return float64(best)
}

// BatchTier reports the scoring tier the server's columnar batch path
// uses: "float32" (default) or "float64" (Config.Float64Batch).
func (s *Server) BatchTier() string {
	if s.cfg.Float64Batch {
		return tierFloat64
	}
	return tierFloat32
}

const (
	tierFloat32 = "float32"
	tierFloat64 = "float64"
)
