package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"boltondp/internal/eval"
)

// admissionServer builds a server whose scoring handlers block inside
// the admission-held section until release is closed, so tests can
// saturate the gate deterministically.
func admissionServer(t *testing.T, cfg Config) (*Server, chan struct{}, chan struct{}) {
	t.Helper()
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("m", &eval.Linear{W: []float64{1, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	s := New(reg, cfg)
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	s.testHookScoring = func() {
		entered <- struct{}{}
		<-release
	}
	return s, entered, release
}

// TestAdmissionOverload saturates the gate and pins the whole overload
// contract at once: slot-holders and queued requests complete with 200
// (admitted work is never abandoned), the overflow request sheds
// immediately with 429 + Retry-After, /healthz reports the shed-state
// while it is happening, and the shed counter records it.
func TestAdmissionOverload(t *testing.T) {
	s, entered, release := admissionServer(t, Config{
		MaxInflight: 2, MaxQueue: 1, QueueTimeout: 30 * time.Second,
	})
	h := s.Handler()

	codes := make(chan int, 3)
	var wg sync.WaitGroup
	send := func() {
		defer wg.Done()
		w, _ := do(t, h, "POST", "/predict", `{"x":[1,0]}`)
		codes <- w.Code
	}

	// Two requests take the slots and block inside scoring.
	wg.Add(2)
	go send()
	go send()
	<-entered
	<-entered

	// A third queues; wait until the gate sees it.
	wg.Add(1)
	go send()
	waitFor(t, func() bool { return s.adm.state().Queued == 1 })

	// The gate is saturated: /healthz must say so (and still answer —
	// introspection bypasses admission).
	w, out := do(t, h, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", w.Code)
	}
	adm, _ := out["admission"].(map[string]any)
	if adm == nil || adm["shedding"] != true || adm["inflight"] != 2.0 || adm["queued"] != 1.0 {
		t.Errorf("healthz admission state: %v", out["admission"])
	}

	// The fourth request is shed immediately with the retry hint.
	req := httptest.NewRequest("POST", "/predict", strings.NewReader(`{"x":[1,0]}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d, want 429", rec.Code)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("overflow Retry-After %q", rec.Header().Get("Retry-After"))
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Errorf("shed response body: %s", rec.Body.String())
	}

	// Releasing the blocked batches lets every admitted request finish:
	// zero dropped in-flight or queued work.
	close(release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted request finished with %d", code)
		}
	}
	if sheds := s.adm.sheds.Load(); sheds != 1 {
		t.Errorf("shed counter %d, want 1", sheds)
	}
}

// TestAdmissionQueueCtxEviction: a queued request whose own context
// dies is evicted from the queue (503) without ever taking a slot.
func TestAdmissionQueueCtxEviction(t *testing.T) {
	s, entered, release := admissionServer(t, Config{
		MaxInflight: 1, MaxQueue: 4, QueueTimeout: 30 * time.Second,
	})
	h := s.Handler()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		do(t, h, "POST", "/predict", `{"x":[1,0]}`)
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/predict", strings.NewReader(`{"x":[1,0]}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	evicted := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(evicted)
	}()
	waitFor(t, func() bool { return s.adm.state().Queued == 1 })
	cancel()
	select {
	case <-evicted:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request still queued")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("evicted request: status %d, want 503", rec.Code)
	}
	if s.adm.state().Queued != 0 {
		t.Error("eviction leaked a queue slot")
	}
	close(release)
	wg.Wait()
}

// TestAdmissionQueueTimeout: a queue wait longer than QueueTimeout
// sheds with 429 — whoever queued behind a stuck batch gets a fast
// answer, not a slow one.
func TestAdmissionQueueTimeout(t *testing.T) {
	s, entered, release := admissionServer(t, Config{
		MaxInflight: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond,
	})
	h := s.Handler()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		do(t, h, "POST", "/predict", `{"x":[1,0]}`)
	}()
	<-entered

	w, _ := do(t, h, "POST", "/predict", `{"x":[1,0]}`)
	if w.Code != http.StatusTooManyRequests {
		t.Errorf("timed-out queue wait: status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("timed-out queue wait missing Retry-After")
	}
	close(release)
	wg.Wait()
}

// TestAdmissionDisabled: MaxInflight 0 leaves the gate off entirely —
// no admission block in /healthz, no gating of requests.
func TestAdmissionDisabled(t *testing.T) {
	_, h := testServer(t, Config{})
	w, out := do(t, h, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	if _, present := out["admission"]; present {
		t.Errorf("admission block reported with the gate off: %v", out)
	}
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
