package serve

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
	"time"

	"boltondp/internal/data"
	"boltondp/internal/eval"
)

// kddCSR builds the full KDDSimSparse test split in columnar form plus
// a registry model over it — the fixture for the f32 parity gate.
func kddCSR(tb testing.TB) (*Model, []int, []int, []float64) {
	tb.Helper()
	r := rand.New(rand.NewSource(7))
	_, test := data.KDDSimSparse(r, 0.1)
	w := make([]float64, test.Dim())
	for i := range w {
		w[i] = r.NormFloat64()
	}
	m, err := newModel("kdd", &eval.Linear{W: w}, nil)
	if err != nil {
		tb.Fatal(err)
	}
	indptr := make([]int, 1, test.Len()+1)
	var idx []int
	var val []float64
	for i := 0; i < test.Len(); i++ {
		sp, _ := test.AtSparse(i)
		idx = append(idx, sp.Idx...)
		val = append(val, sp.Val...)
		indptr = append(indptr, len(idx))
	}
	return m, indptr, idx, val
}

// TestServeF32LabelParity is the precision acceptance gate: on the
// KDDSimSparse workload under a random linear model — margins far
// noisier than any trained model's — the float32 tier must agree with
// full precision on at least 99.9% of labels.
func TestServeF32LabelParity(t *testing.T) {
	m, indptr, idx, val := kddCSR(t)
	f64, err := m.ScoreBatchCSR(indptr, idx, val, 1)
	if err != nil {
		t.Fatal(err)
	}
	f32, err := m.ScoreBatchCSRF32(indptr, idx, val, 1)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range f64 {
		if f64[i] == f32[i] {
			agree++
		}
	}
	rate := float64(agree) / float64(len(f64))
	t.Logf("f32/f64 label agreement: %d/%d = %.5f", agree, len(f64), rate)
	if rate < 0.999 {
		t.Fatalf("label agreement %.5f below the 0.999 acceptance floor", rate)
	}
}

// The float32 tier must replicate the eval tie rules bit for bit:
// Linear sends an exactly-zero margin to +1, OneVsAll argmax keeps the
// lowest class index on exact ties.
func TestServeF32TieRules(t *testing.T) {
	lin, err := newModel("lin", &eval.Linear{W: []float64{1, -1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Row {1, 1}: margin exactly 0 in both precisions → +1.
	y := lin.predictSparse32([]int{0, 1}, []float64{1, 1})
	if y != 1 {
		t.Errorf("zero-margin tie went to %v, want +1", y)
	}
	if got, _ := lin.scoreSparse([]int{0, 1}, []float64{1, 1}); got != y {
		t.Errorf("tie rule diverges from f64 tier: f32 %v f64 %v", y, got)
	}

	ova, err := newModel("ova", &eval.OneVsAll{W: [][]float64{
		{1, 0}, {1, 0}, {0.5, 0},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Classes 0 and 1 score identically → argmax must keep class 0.
	if y := ova.predictSparse32([]int{0}, []float64{2}); y != 0 {
		t.Errorf("argmax tie went to class %v, want 0", y)
	}
}

// The /predict/batch columnar path scores through the f32 tier by
// default, Config.Float64Batch opts back into full precision, and
// /modelz reports whichever tier is active.
func TestServeBatchTierRouting(t *testing.T) {
	m, indptr, idx, val := kddCSR(t)
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("kdd", m.Classifier, nil); err != nil {
		t.Fatal(err)
	}
	req, err := json.Marshal(map[string]any{"indptr": indptr[:257], "idx": idx[:indptr[256]], "val": val[:indptr[256]]})
	if err != nil {
		t.Fatal(err)
	}
	want32, err := m.ScoreBatchCSRF32(indptr[:257], idx[:indptr[256]], val[:indptr[256]], 1)
	if err != nil {
		t.Fatal(err)
	}
	want64, err := m.ScoreBatchCSR(indptr[:257], idx[:indptr[256]], val[:indptr[256]], 1)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		cfg    Config
		tier   string
		labels []float64
	}{
		{"default-f32", Config{}, "float32", want32},
		{"opt-out-f64", Config{Float64Batch: true}, "float64", want64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(reg, tc.cfg)
			w, out := do(t, srv.Handler(), "POST", "/predict/batch", string(req))
			if w.Code != 200 {
				t.Fatalf("batch: %d %v", w.Code, out)
			}
			labels := out["labels"].([]any)
			if len(labels) != len(tc.labels) {
				t.Fatalf("got %d labels, want %d", len(labels), len(tc.labels))
			}
			for i, l := range labels {
				if l.(float64) != tc.labels[i] {
					t.Fatalf("label %d = %v, want %v (tier %s)", i, l, tc.labels[i], tc.tier)
				}
			}
			w, out = do(t, srv.Handler(), "GET", "/modelz", "")
			if w.Code != 200 || out["batchTier"] != tc.tier {
				t.Errorf("modelz batchTier = %v, want %q", out["batchTier"], tc.tier)
			}
		})
	}
}

// bigModelWorkload builds the throughput fixture the tier exists for: a
// one-vs-all model whose weight rows dwarf the cache (8 classes ×
// 2¹⁸ dims = 16 MiB of float64 weights, 8 MiB quantized), scored
// against sparse rows with uniformly random support — every margin
// walks classes·nnz random weight positions, so throughput tracks the
// working-set size.
func bigModelWorkload(tb testing.TB, rows int) (*Model, []int, []int, []float64) {
	tb.Helper()
	const classes, dim, nnz = 8, 1 << 18, 64
	r := rand.New(rand.NewSource(3))
	w := make([][]float64, classes)
	for c := range w {
		w[c] = make([]float64, dim)
		for i := range w[c] {
			w[c][i] = r.NormFloat64()
		}
	}
	m, err := newModel("big", &eval.OneVsAll{W: w}, nil)
	if err != nil {
		tb.Fatal(err)
	}
	indptr := make([]int, 1, rows+1)
	var idx []int
	var val []float64
	seen := make(map[int]bool, nnz)
	for i := 0; i < rows; i++ {
		for k := range seen {
			delete(seen, k)
		}
		for len(seen) < nnz {
			seen[r.Intn(dim)] = true
		}
		row := make([]int, 0, nnz)
		for k := range seen {
			row = append(row, k)
		}
		sort.Ints(row)
		for _, k := range row {
			idx = append(idx, k)
			val = append(val, r.NormFloat64())
		}
		indptr = append(indptr, len(idx))
	}
	return m, indptr, idx, val
}

// TestServeF32Throughput is the speed acceptance gate: on the
// cache-pressure workload the float32 tier must score at least 1.3×
// the rows/s of the full-precision tier. Timing-sensitive — skipped
// under -race and -short; CI enforces it in the serve benchmark smoke.
func TestServeF32Throughput(t *testing.T) {
	if raceEnabled {
		t.Skip("timing gate is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	m, indptr, idx, val := bigModelWorkload(t, 2048)
	score := func(f32 bool) time.Duration {
		start := time.Now()
		var err error
		if f32 {
			_, err = m.ScoreBatchCSRF32(indptr, idx, val, 1)
		} else {
			_, err = m.ScoreBatchCSR(indptr, idx, val, 1)
		}
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	score(false)
	score(true)
	const rounds = 5
	f64t, f32t := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		if d := score(false); d < f64t {
			f64t = d
		}
		if d := score(true); d < f32t {
			f32t = d
		}
	}
	speedup := float64(f64t) / float64(f32t)
	t.Logf("batch scoring: f64 %v, f32 %v, speedup %.2f×", f64t, f32t, speedup)
	if speedup < 1.3 {
		t.Fatalf("f32 speedup %.2f× below the 1.3× acceptance floor", speedup)
	}
}

// BenchmarkServeBatchF32: the float32 tier on the cache-pressure
// workload (in-process columnar scoring, no HTTP).
func BenchmarkServeBatchF32(b *testing.B) {
	m, indptr, idx, val := bigModelWorkload(b, 2048)
	rows := float64(len(indptr) - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ScoreBatchCSRF32(indptr, idx, val, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkServeBatchF64 is the full-precision denominator of the
// ≥1.3× tier speedup claim.
func BenchmarkServeBatchF64(b *testing.B) {
	m, indptr, idx, val := bigModelWorkload(b, 2048)
	rows := float64(len(indptr) - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ScoreBatchCSR(indptr, idx, val, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
