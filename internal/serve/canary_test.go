package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// canaryServer builds a server with live model "stable" (all +1
// weights over dim 4) and candidate "cand" (all -1 weights), so the
// label's sign identifies which model scored each row.
func canaryServer(t *testing.T, cfg Config) (*Registry, *Server) {
	t.Helper()
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("stable", linear(4, 1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("cand", linear(4, -1), nil); err != nil {
		t.Fatal(err)
	}
	return reg, New(reg, cfg)
}

// canaryRows builds n single-nonzero sparse rows with positive values,
// so "stable" labels them +1 and "cand" labels them -1.
func canaryRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Idx: []int{i % 4}, Val: []float64{float64(i + 1)}}
	}
	return rows
}

// TestCanaryDeterministicRouting pins the routing contract exactly:
// for a configured pct, the set of canary-scored rows is precisely
// {row : rowBucket(row) < pct} — no sampling, no approximation — and
// the canary row counter matches. Verified at 0, a middle value, and
// 100, over both batch encodings.
func TestCanaryDeterministicRouting(t *testing.T) {
	const n = 400
	rows := canaryRows(n)
	want := make([]bool, n) // want[i] = row i routes at pct=30
	routed := 0
	for i := range rows {
		if rowBucket(rows[i].Idx, rows[i].Val) < 30 {
			want[i] = true
			routed++
		}
	}
	if routed == 0 || routed == n {
		t.Fatalf("degenerate fixture: %d/%d rows route at 30%%", routed, n)
	}

	for _, enc := range []string{"csr", "rows"} {
		for _, pct := range []int{0, 30, 100} {
			reg, s := canaryServer(t, Config{})
			if err := reg.SetCanary("cand", pct); err != nil {
				t.Fatal(err)
			}
			var body []byte
			if enc == "csr" {
				indptr, idx, val, err := PackCSR(rows)
				if err != nil {
					t.Fatal(err)
				}
				body, _ = json.Marshal(map[string]any{"indptr": indptr, "idx": idx, "val": val})
			} else {
				body, _ = json.Marshal(map[string]any{"rows": rows})
			}
			w, out := do(t, s.Handler(), "POST", "/predict/batch", string(body))
			if w.Code != http.StatusOK {
				t.Fatalf("%s pct=%d: status %d body %v", enc, pct, w.Code, out)
			}
			labels := out["labels"].([]any)
			miscount := 0
			for i, l := range labels {
				toCanary := pct == 100 || (pct == 30 && want[i])
				wantLabel := 1.0
				if toCanary {
					wantLabel = -1.0
				}
				if l != wantLabel {
					miscount++
					t.Errorf("%s pct=%d row %d: label %v, want %v", enc, pct, i, l, wantLabel)
					if miscount > 4 {
						t.Fatalf("%s pct=%d: giving up after %d misroutes", enc, pct, miscount)
					}
				}
			}
			_, _, gotRows, gotErrs := reg.Canary()
			wantRows := uint64(0)
			switch pct {
			case 30:
				wantRows = uint64(routed)
			case 100:
				wantRows = n
			}
			if gotRows != wantRows || gotErrs != 0 {
				t.Errorf("%s pct=%d: canary counters rows=%d errs=%d, want rows=%d errs=0", enc, pct, gotRows, gotErrs, wantRows)
			}
		}
	}
}

// TestCanaryBucketDenseSparseAgreement: a dense row and its sparse
// encoding land in the same bucket, so a client's encoding choice
// cannot flip a row across the rollout boundary.
func TestCanaryBucketDenseSparseAgreement(t *testing.T) {
	for i := 0; i < 50; i++ {
		x := make([]float64, 8)
		x[i%8] = float64(i + 1)
		x[(i+3)%8] = float64(2*i + 1)
		sp := Row{}
		for j, v := range x {
			if v != 0 {
				sp.Idx = append(sp.Idx, j)
				sp.Val = append(sp.Val, v)
			}
		}
		if d, s := rowBucketDense(x), rowBucket(sp.Idx, sp.Val); d != s {
			t.Fatalf("row %d: dense bucket %d != sparse bucket %d", i, d, s)
		}
	}
}

// TestCanaryNamedModelBypasses: a request addressing an explicit
// version never routes to the canary.
func TestCanaryNamedModelBypasses(t *testing.T) {
	reg, s := canaryServer(t, Config{})
	if err := reg.SetCanary("cand", 100); err != nil {
		t.Fatal(err)
	}
	w, out := do(t, s.Handler(), "POST", "/predict/batch",
		`{"model":"stable","rows":[{"idx":[0],"val":[1]}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %v", w.Code, out)
	}
	if out["labels"].([]any)[0] != 1.0 {
		t.Error("named-model request was canary-routed")
	}
	if _, _, rows, _ := reg.Canary(); rows != 0 {
		t.Errorf("named-model request counted %d canary rows", rows)
	}
}

// TestCanaryFallbackAndAutoRollback injects a regressing canary (wrong
// feature dimension, so every routed row fails to score on it) and
// pins the fail-safe contract: every row falls back to the live model
// — the request succeeds with live labels — the errors are counted,
// and the error-rate gate rolls the rollout back automatically.
func TestCanaryFallbackAndAutoRollback(t *testing.T) {
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("stable", linear(4, 1), nil); err != nil {
		t.Fatal(err)
	}
	// The canary has dim 2: any row touching features 2..3 errors on it.
	if _, err := reg.Publish("bad", linear(2, -1), nil); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{CanaryMinRows: 10, CanaryErrorRate: 0.1})
	if err := reg.SetCanary("bad", 100); err != nil {
		t.Fatal(err)
	}

	rows := make([]Row, 32)
	for i := range rows {
		rows[i] = Row{Idx: []int{3}, Val: []float64{float64(i + 1)}}
	}
	indptr, idx, val, err := PackCSR(rows)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"indptr": indptr, "idx": idx, "val": val})
	w, out := do(t, s.Handler(), "POST", "/predict/batch", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("fail-safe batch: status %d body %v", w.Code, out)
	}
	for i, l := range out["labels"].([]any) {
		if l != 1.0 {
			t.Fatalf("row %d: label %v — canary failure leaked into the response", i, l)
		}
	}
	if cm, _, _, _ := reg.Canary(); cm != nil {
		t.Error("regressed canary still active after the batch")
	}
	if got := s.metrics.canaryRollbacks.Load(); got != 1 {
		t.Errorf("rollback counter %d, want 1", got)
	}
	// The rollback must be visible in the scrape.
	w, _ = do(t, s.Handler(), "GET", "/metrics", "")
	if !strings.Contains(w.Body.String(), "dpserve_canary_rollbacks_total 1") {
		t.Error("rollback not visible in /metrics")
	}
}

// TestCanaryPromoteClearAndValidation covers the remaining state-machine
// arcs and the argument checks.
func TestCanaryPromoteClearAndValidation(t *testing.T) {
	reg, _ := canaryServer(t, Config{})
	if err := reg.SetCanary("cand", 101); err == nil {
		t.Error("pct 101 accepted")
	}
	if err := reg.SetCanary("nope", 10); err == nil {
		t.Error("unknown canary name accepted")
	}
	if _, err := reg.PromoteCanary(); err == nil {
		t.Error("promoted a non-existent canary")
	}

	if err := reg.SetCanary("cand", 25); err != nil {
		t.Fatal(err)
	}
	reg.ClearCanary()
	if cm, _, _, _ := reg.Canary(); cm != nil {
		t.Error("ClearCanary left the rollout active")
	}

	if err := reg.SetCanary("cand", 25); err != nil {
		t.Fatal(err)
	}
	m, err := reg.PromoteCanary()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "cand" || reg.Live() != m {
		t.Errorf("promotion: live %v", reg.Live())
	}
	if cm, _, _, _ := reg.Canary(); cm != nil {
		t.Error("promotion left the rollout active")
	}
}

// TestCanaryModelzVisibility: the active rollout shows up in /modelz —
// both the summary block and the per-model flag.
func TestCanaryModelzVisibility(t *testing.T) {
	reg, s := canaryServer(t, Config{})
	if err := reg.SetCanary("cand", 15); err != nil {
		t.Fatal(err)
	}
	w, out := do(t, s.Handler(), "GET", "/modelz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("modelz: %d", w.Code)
	}
	c, _ := out["canary"].(map[string]any)
	if c == nil || c["model"] != "cand" || c["pct"] != 15.0 {
		t.Fatalf("modelz canary block: %v", out["canary"])
	}
	for _, mi := range out["models"].([]any) {
		m := mi.(map[string]any)
		isCand := m["name"] == "cand"
		if flagged, _ := m["canary"].(bool); flagged != isCand {
			t.Errorf("model %v canary flag %v", m["name"], m["canary"])
		}
	}
	// And in /metrics.
	w, _ = do(t, s.Handler(), "GET", "/metrics", "")
	if !strings.Contains(w.Body.String(), fmt.Sprintf("dpserve_canary_pct{model=%q} 15", "cand")) {
		t.Error("canary pct gauge missing from /metrics")
	}
}
