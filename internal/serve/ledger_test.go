package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boltondp/internal/account"
	"boltondp/internal/account/compose"
	"boltondp/internal/dp"
	"boltondp/internal/eval"
)

// A model published through an accountant carries the audited ledger in
// its metadata, and /modelz round-trips it (acceptance criterion of the
// accountant tentpole): GET /modelz → meta["dp.ledger"] → ParseLedger
// must recover the exact spend record, both for an in-memory publish
// and for a registry reloaded from disk.
func TestModelzRoundTripsLedger(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}

	acct := account.MustNew(dp.Budget{Epsilon: 1, Delta: 1e-6})
	if err := acct.Reserve("train(logistic)", dp.Budget{Epsilon: 0.75, Delta: 1e-6}); err != nil {
		t.Fatal(err)
	}
	meta := map[string]string{"loss": "logistic"}
	if err := acct.StampMeta(meta); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("fraud", &eval.Linear{W: []float64{1, -1}}, meta); err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, reg *Registry) {
		t.Helper()
		w, _ := do(t, New(reg, Config{}).Handler(), "GET", "/modelz", "")
		if w.Code != http.StatusOK {
			t.Fatalf("/modelz status %d: %s", w.Code, w.Body.String())
		}
		var resp struct {
			Models []struct {
				Name string            `json:"name"`
				Meta map[string]string `json:"meta"`
			} `json:"models"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Models) != 1 || resp.Models[0].Name != "fraud" {
			t.Fatalf("models: %+v", resp.Models)
		}
		l, ok, err := account.LedgerFromMeta(resp.Models[0].Meta)
		if err != nil || !ok {
			t.Fatalf("/modelz meta carries no ledger: ok=%v err=%v meta=%v", ok, err, resp.Models[0].Meta)
		}
		if l.Total() != (dp.Budget{Epsilon: 1, Delta: 1e-6}) {
			t.Errorf("ledger total: %v", l.Total())
		}
		if l.Spent() != (dp.Budget{Epsilon: 0.75, Delta: 1e-6}) {
			t.Errorf("ledger spent: %v", l.Spent())
		}
		if len(l.Entries) != 1 || l.Entries[0].Label != "train(logistic)" || l.Entries[0].Epsilon != 0.75 {
			t.Errorf("ledger entries: %+v", l.Entries)
		}
		if resp.Models[0].Meta["dp.total"] == "" || resp.Models[0].Meta["dp.spent"] == "" {
			t.Errorf("human-readable summary keys missing: %v", resp.Models[0].Meta)
		}
	}

	t.Run("live registry", func(t *testing.T) { check(t, reg) })

	// The ledger survives persistence: a fresh registry loaded from the
	// same directory serves the identical record.
	t.Run("reloaded registry", func(t *testing.T) {
		reloaded, err := NewRegistry(dir)
		if err != nil {
			t.Fatal(err)
		}
		check(t, reloaded)
	})

	// And the on-disk model file itself carries it (SaveClassifier
	// metadata path, readable without a server).
	t.Run("model file", func(t *testing.T) {
		_, meta, err := eval.LoadClassifier(filepath.Join(dir, "fraud.json"))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := account.LedgerFromMeta(meta); !ok || err != nil {
			data, _ := os.ReadFile(filepath.Join(dir, "fraud.json"))
			t.Fatalf("model file carries no ledger (ok=%v err=%v): %s", ok, err, data)
		}
	})
}

// The acceptance path for the rdp accounting rule: a gradperturb-style
// publish stamps an rdp ledger (sgm entry + per-order rule state), and
// it survives save → publish → /modelz → reload byte-faithfully; the
// /metrics endpoint reports the rule as a gauge label.
func TestModelzRoundTripsRDPLedger(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}

	acct, err := account.NewWithRule(compose.RuleRDP, dp.Budget{Epsilon: 2, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if err := acct.ReserveSubsampledGaussian("gradperturb(logistic)", 1.5, 0.01, 500, 1e-6); err != nil {
		t.Fatal(err)
	}
	want := acct.Ledger()
	meta := map[string]string{"loss": "logistic"}
	if err := acct.StampMeta(meta); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("gp", &eval.Linear{W: []float64{1, -1}}, meta); err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, reg *Registry) {
		t.Helper()
		w, _ := do(t, New(reg, Config{}).Handler(), "GET", "/modelz", "")
		if w.Code != http.StatusOK {
			t.Fatalf("/modelz status %d: %s", w.Code, w.Body.String())
		}
		var resp struct {
			Models []struct {
				Meta map[string]string `json:"meta"`
			} `json:"models"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Models) != 1 {
			t.Fatalf("models: %+v", resp.Models)
		}
		l, ok, err := account.LedgerFromMeta(resp.Models[0].Meta)
		if err != nil || !ok {
			t.Fatalf("no ledger: ok=%v err=%v", ok, err)
		}
		if !l.Same(want) {
			t.Fatalf("rdp ledger did not round-trip:\n%+v\nvs\n%+v", l, want)
		}
		if l.Rule != compose.RuleRDP || len(l.RuleState) == 0 {
			t.Errorf("rule/state lost: rule=%q state=%d bytes", l.Rule, len(l.RuleState))
		}
		e := l.Entries[0]
		if compose.Kind(e.Kind) != compose.KindSGM || e.Sigma != 1.5 || e.Q != 0.01 || e.Steps != 500 {
			t.Errorf("sgm entry detail lost: %+v", e)
		}
		// The rdp composed spend is below the entry's standalone price —
		// the tighter rule survived serialization, not just the name.
		if l.SpentEpsilon >= e.Epsilon {
			t.Errorf("composed spent %v not below linear entry price %v", l.SpentEpsilon, e.Epsilon)
		}
	}

	t.Run("live registry", func(t *testing.T) { check(t, reg) })
	t.Run("reloaded registry", func(t *testing.T) {
		reloaded, err := NewRegistry(dir)
		if err != nil {
			t.Fatal(err)
		}
		check(t, reloaded)
	})

	// /metrics exposes the rule as dpserve_dp_rule{model,rule}.
	t.Run("metrics rule gauge", func(t *testing.T) {
		w, _ := do(t, New(reg, Config{}).Handler(), "GET", "/metrics", "")
		if w.Code != http.StatusOK {
			t.Fatalf("/metrics status %d", w.Code)
		}
		if !strings.Contains(w.Body.String(), `dpserve_dp_rule{model="gp",rule="rdp"} 1`) {
			t.Errorf("missing dpserve_dp_rule gauge:\n%s", w.Body.String())
		}
	})
}
