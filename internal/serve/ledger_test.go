package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"boltondp/internal/account"
	"boltondp/internal/dp"
	"boltondp/internal/eval"
)

// A model published through an accountant carries the audited ledger in
// its metadata, and /modelz round-trips it (acceptance criterion of the
// accountant tentpole): GET /modelz → meta["dp.ledger"] → ParseLedger
// must recover the exact spend record, both for an in-memory publish
// and for a registry reloaded from disk.
func TestModelzRoundTripsLedger(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}

	acct := account.MustNew(dp.Budget{Epsilon: 1, Delta: 1e-6})
	if err := acct.Reserve("train(logistic)", dp.Budget{Epsilon: 0.75, Delta: 1e-6}); err != nil {
		t.Fatal(err)
	}
	meta := map[string]string{"loss": "logistic"}
	if err := acct.StampMeta(meta); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("fraud", &eval.Linear{W: []float64{1, -1}}, meta); err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, reg *Registry) {
		t.Helper()
		w, _ := do(t, New(reg, Config{}).Handler(), "GET", "/modelz", "")
		if w.Code != http.StatusOK {
			t.Fatalf("/modelz status %d: %s", w.Code, w.Body.String())
		}
		var resp struct {
			Models []struct {
				Name string            `json:"name"`
				Meta map[string]string `json:"meta"`
			} `json:"models"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Models) != 1 || resp.Models[0].Name != "fraud" {
			t.Fatalf("models: %+v", resp.Models)
		}
		l, ok, err := account.LedgerFromMeta(resp.Models[0].Meta)
		if err != nil || !ok {
			t.Fatalf("/modelz meta carries no ledger: ok=%v err=%v meta=%v", ok, err, resp.Models[0].Meta)
		}
		if l.Total() != (dp.Budget{Epsilon: 1, Delta: 1e-6}) {
			t.Errorf("ledger total: %v", l.Total())
		}
		if l.Spent() != (dp.Budget{Epsilon: 0.75, Delta: 1e-6}) {
			t.Errorf("ledger spent: %v", l.Spent())
		}
		if len(l.Entries) != 1 || l.Entries[0].Label != "train(logistic)" || l.Entries[0].Epsilon != 0.75 {
			t.Errorf("ledger entries: %+v", l.Entries)
		}
		if resp.Models[0].Meta["dp.total"] == "" || resp.Models[0].Meta["dp.spent"] == "" {
			t.Errorf("human-readable summary keys missing: %v", resp.Models[0].Meta)
		}
	}

	t.Run("live registry", func(t *testing.T) { check(t, reg) })

	// The ledger survives persistence: a fresh registry loaded from the
	// same directory serves the identical record.
	t.Run("reloaded registry", func(t *testing.T) {
		reloaded, err := NewRegistry(dir)
		if err != nil {
			t.Fatal(err)
		}
		check(t, reloaded)
	})

	// And the on-disk model file itself carries it (SaveClassifier
	// metadata path, readable without a server).
	t.Run("model file", func(t *testing.T) {
		_, meta, err := eval.LoadClassifier(filepath.Join(dir, "fraud.json"))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := account.LedgerFromMeta(meta); !ok || err != nil {
			data, _ := os.ReadFile(filepath.Join(dir, "fraud.json"))
			t.Fatalf("model file carries no ledger (ok=%v err=%v): %s", ok, err, data)
		}
	})
}
