package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"boltondp/internal/eval"
)

// testServer returns a handler over a registry holding a live binary
// model "lin" (dim 4, w = [1,1,-1,-1]) and a named multiclass model
// "ova" (3 classes over dim 2).
func testServer(t *testing.T, cfg Config) (*Registry, http.Handler) {
	t.Helper()
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("ova", &eval.OneVsAll{W: [][]float64{{1, 0}, {0, 1}, {-1, -1}}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("lin", &eval.Linear{W: []float64{1, 1, -1, -1}}, map[string]string{"epsilon": "0.1"}); err != nil {
		t.Fatal(err)
	}
	// Publishing into a non-empty registry no longer steals live.
	if _, err := reg.SetLive("lin"); err != nil {
		t.Fatal(err)
	}
	return reg, New(reg, cfg).Handler()
}

func do(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	// Non-JSON bodies (the mux's own 405 page) yield a nil map; tests
	// that inspect fields will fail loudly on it.
	var out map[string]any
	json.Unmarshal(w.Body.Bytes(), &out)
	return w, out
}

func TestPredictDenseAndSparse(t *testing.T) {
	_, h := testServer(t, Config{})
	cases := []struct {
		name, body string
		label      float64
	}{
		{"dense positive", `{"x":[1,0,0,0]}`, 1},
		{"dense negative", `{"x":[0,0,1,0]}`, -1},
		{"sparse", `{"idx":[0],"val":[2]}`, 1},
		{"sparse out-of-order", `{"idx":[3,0],"val":[1,3]}`, 1},
		{"sparse duplicates summed", `{"idx":[2,2],"val":[1,1]}`, -1},
		{"named ova model", `{"model":"ova","x":[0.2,0.9]}`, 1},
		{"named ova sparse", `{"model":"ova","idx":[1],"val":[1]}`, 1},
	}
	for _, tc := range cases {
		w, out := do(t, h, "POST", "/predict", tc.body)
		if w.Code != http.StatusOK {
			t.Errorf("%s: status %d body %v", tc.name, w.Code, out)
			continue
		}
		if out["label"] != tc.label {
			t.Errorf("%s: label %v, want %v", tc.name, out["label"], tc.label)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	_, h := testServer(t, Config{})
	cases := []struct {
		name, body string
		code       int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown field", `{"vector":[1]}`, http.StatusBadRequest},
		{"empty row", `{}`, http.StatusBadRequest},
		{"both forms", `{"x":[1,0,0,0],"idx":[0],"val":[1]}`, http.StatusBadRequest},
		{"dim mismatch", `{"x":[1,2]}`, http.StatusBadRequest},
		{"sparse index out of range", `{"idx":[9],"val":[1]}`, http.StatusBadRequest},
		{"negative sparse index", `{"idx":[-1],"val":[1]}`, http.StatusBadRequest},
		{"idx/val length mismatch", `{"idx":[0,1],"val":[1]}`, http.StatusBadRequest},
		{"unknown model", `{"model":"nope","x":[1,0,0,0]}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		w, out := do(t, h, "POST", "/predict", tc.body)
		if w.Code != tc.code {
			t.Errorf("%s: status %d want %d (%v)", tc.name, w.Code, tc.code, out)
		}
		if msg, _ := out["error"].(string); msg == "" {
			t.Errorf("%s: missing error message in %v", tc.name, out)
		}
	}
	if w, _ := do(t, h, "GET", "/predict", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict: status %d", w.Code)
	}
}

func TestPredictNoLiveModel(t *testing.T) {
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	h := New(reg, Config{}).Handler()
	if w, _ := do(t, h, "POST", "/predict", `{"x":[1]}`); w.Code != http.StatusServiceUnavailable {
		t.Errorf("predict without live model: status %d", w.Code)
	}
	if w, _ := do(t, h, "GET", "/healthz", ""); w.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz without live model: status %d", w.Code)
	}
}

func TestBatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, h := testServer(t, Config{Workers: workers})
		w, out := do(t, h, "POST", "/predict/batch",
			`{"rows":[{"x":[1,0,0,0]},{"idx":[2],"val":[1]},{"idx":[3,0],"val":[1,3]}]}`)
		if w.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d body %v", workers, w.Code, out)
		}
		labels, _ := out["labels"].([]any)
		want := []float64{1, -1, 1}
		if len(labels) != len(want) {
			t.Fatalf("workers=%d: labels %v", workers, labels)
		}
		for i, l := range labels {
			if l != want[i] {
				t.Errorf("workers=%d row %d: label %v want %v", workers, i, l, want[i])
			}
		}
	}
}

func TestBatchCSR(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, h := testServer(t, Config{Workers: workers})
		// Rows: {0:1}, {2:1}, {0:3, 3:1} against w = [1,1,-1,-1].
		w, out := do(t, h, "POST", "/predict/batch",
			`{"indptr":[0,1,2,4],"idx":[0,2,0,3],"val":[1,1,3,1]}`)
		if w.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d body %v", workers, w.Code, out)
		}
		labels, _ := out["labels"].([]any)
		want := []float64{1, -1, 1}
		if len(labels) != len(want) {
			t.Fatalf("workers=%d: labels %v", workers, labels)
		}
		for i, l := range labels {
			if l != want[i] {
				t.Errorf("workers=%d row %d: label %v want %v", workers, i, l, want[i])
			}
		}
	}
}

func TestBatchCSRErrors(t *testing.T) {
	_, h := testServer(t, Config{})
	cases := []struct {
		name, body string
		code       int
	}{
		{"both forms", `{"rows":[{"x":[1,0,0,0]}],"indptr":[0,0],"idx":[],"val":[]}`, http.StatusBadRequest},
		{"indptr too short", `{"indptr":[0],"idx":[],"val":[]}`, http.StatusBadRequest},
		{"indptr wrong end", `{"indptr":[0,3],"idx":[0],"val":[1]}`, http.StatusBadRequest},
		{"indptr not monotone", `{"indptr":[0,2,1,2],"idx":[0,1],"val":[1,1]}`, http.StatusBadRequest},
		{"indptr negative interior", `{"indptr":[0,-1,2],"idx":[0,1],"val":[1,1]}`, http.StatusBadRequest},
		{"missing indptr", `{"idx":[0],"val":[1]}`, http.StatusBadRequest},
		{"idx/val mismatch", `{"indptr":[0,2],"idx":[0,1],"val":[1]}`, http.StatusBadRequest},
		{"index out of range", `{"indptr":[0,1],"idx":[99],"val":[1]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		w, out := do(t, h, "POST", "/predict/batch", tc.body)
		if w.Code != tc.code {
			t.Errorf("%s: status %d want %d (%v)", tc.name, w.Code, tc.code, out)
		}
	}
}

func TestBatchRowStrictness(t *testing.T) {
	// A typo'd field inside a batch row must 400 exactly like /predict.
	_, h := testServer(t, Config{})
	w, out := do(t, h, "POST", "/predict/batch", `{"rows":[{"vals":[1]}]}`)
	if w.Code != http.StatusBadRequest {
		t.Errorf("unknown row field: status %d (%v)", w.Code, out)
	}
}

func TestPackCSR(t *testing.T) {
	rows := []Row{{Idx: []int{0, 3}, Val: []float64{1, 2}}, {Idx: []int{5}, Val: []float64{-1}}, {}}
	indptr, idx, val, err := PackCSR(rows)
	if err != nil {
		t.Fatal(err)
	}
	wantPtr, wantIdx, wantVal := []int{0, 2, 3, 3}, []int{0, 3, 5}, []float64{1, 2, -1}
	if fmt.Sprint(indptr) != fmt.Sprint(wantPtr) || fmt.Sprint(idx) != fmt.Sprint(wantIdx) || fmt.Sprint(val) != fmt.Sprint(wantVal) {
		t.Errorf("packed %v %v %v", indptr, idx, val)
	}
	if _, _, _, err := PackCSR([]Row{{X: []float64{1}}}); err == nil {
		t.Error("dense row packed into CSR")
	}
}

func TestBatchErrors(t *testing.T) {
	_, h := testServer(t, Config{MaxBatch: 2, Workers: 2})
	if w, _ := do(t, h, "POST", "/predict/batch", `{"rows":[]}`); w.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", w.Code)
	}
	if w, _ := do(t, h, "POST", "/predict/batch",
		`{"rows":[{"x":[1,0,0,0]},{"x":[1,0,0,0]},{"x":[1,0,0,0]}]}`); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d", w.Code)
	}
	// A bad row fails the whole batch with its index.
	w, out := do(t, h, "POST", "/predict/batch", `{"rows":[{"x":[1,0,0,0]},{"x":[1]}]}`)
	if w.Code != http.StatusBadRequest {
		t.Errorf("bad row: status %d", w.Code)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "row 1") {
		t.Errorf("bad row error %q does not name the row", msg)
	}
}

func TestBodyCap(t *testing.T) {
	_, h := testServer(t, Config{MaxBody: 64})
	big := `{"x":[` + strings.Repeat("1,", 200) + `1]}`
	if w, _ := do(t, h, "POST", "/predict", big); w.Code != http.StatusBadRequest {
		t.Errorf("oversized body: status %d", w.Code)
	}
}

func TestHealthzAndModelz(t *testing.T) {
	reg, h := testServer(t, Config{})
	w, out := do(t, h, "GET", "/healthz", "")
	if w.Code != http.StatusOK || out["status"] != "ok" || out["live"] != "lin" || out["models"] != 2.0 {
		t.Errorf("healthz: %d %v", w.Code, out)
	}

	w, out = do(t, h, "GET", "/modelz", "")
	if w.Code != http.StatusOK || out["live"] != "lin" {
		t.Fatalf("modelz: %d %v", w.Code, out)
	}
	models, _ := out["models"].([]any)
	if len(models) != 2 {
		t.Fatalf("modelz models: %v", models)
	}
	lin := models[0].(map[string]any)
	if lin["name"] != "lin" || lin["dim"] != 4.0 || lin["classes"] != 2.0 || lin["live"] != true {
		t.Errorf("modelz lin entry: %v", lin)
	}
	meta, _ := lin["meta"].(map[string]any)
	if meta["epsilon"] != "0.1" {
		t.Errorf("modelz meta: %v", lin["meta"])
	}
	ova := models[1].(map[string]any)
	if ova["name"] != "ova" || ova["classes"] != 3.0 || ova["live"] != false {
		t.Errorf("modelz ova entry: %v", ova)
	}

	// Hot-swap is visible through the introspection endpoints.
	if _, err := reg.SetLive("ova"); err != nil {
		t.Fatal(err)
	}
	if _, out := do(t, h, "GET", "/healthz", ""); out["live"] != "ova" {
		t.Errorf("healthz after swap: %v", out)
	}
}

// TestHealthzSnapshotConsistency hammers /healthz while models publish
// and swap concurrently (run under -race). The handler reads the live
// model and the version count in one registry snapshot, so no response
// may ever pair a live name with a model count from a different
// registry state — concretely: a reported live model implies a
// non-zero model count.
func TestHealthzSnapshotConsistency(t *testing.T) {
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	h := New(reg, Config{MaxInflight: 4}).Handler()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 100; k++ {
			name := fmt.Sprintf("v%d", k%5)
			if _, err := reg.Publish(name, &eval.Linear{W: []float64{1, 1}}, nil); err != nil {
				t.Error(err)
				return
			}
			if _, err := reg.SetLive(name); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				w, out := do(t, h, "GET", "/healthz", "")
				if w.Code != http.StatusOK && w.Code != http.StatusServiceUnavailable {
					t.Errorf("healthz status %d", w.Code)
					return
				}
				live, _ := out["live"].(string)
				models, _ := out["models"].(float64)
				if live != "" && models < 1 {
					t.Errorf("torn snapshot: live %q with %v models", live, models)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestServePredictDuringHotSwap drives the full HTTP path concurrently
// with hot-swaps: every response must come from a coherent model
// version (label ±1 for the all-equal-weight Linears involved).
func TestServePredictDuringHotSwap(t *testing.T) {
	reg, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("v0", &eval.Linear{W: []float64{1, 1, 1, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	h := New(reg, Config{Workers: 2}).Handler()

	const requests = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				req := httptest.NewRequest("POST", "/predict/batch",
					strings.NewReader(`{"rows":[{"idx":[0,3],"val":[1,1]},{"x":[0,1,0,1]}]}`))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("status %d: %s", w.Code, w.Body.String())
					return
				}
				var out batchResponse
				if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
					t.Error(err)
					return
				}
				for _, l := range out.Labels {
					if l != 1 && l != -1 {
						t.Errorf("incoherent label %v from model %s", l, out.Model)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			sign := float64(1 - 2*(k%2))
			if _, err := reg.Publish("swap", &eval.Linear{W: []float64{sign, sign, sign, sign}}, nil); err != nil {
				t.Error(err)
				return
			}
			if k == 0 {
				// First publish needs explicit promotion; every
				// republish of the now-live name follows automatically.
				if _, err := reg.SetLive("swap"); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
}
