package serve

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Canary rollout: route a deterministic fraction of batch rows to a
// candidate model version, watch its error rate, and either promote it
// live or roll it back automatically.
//
// State machine (DESIGN.md §10 has the full table):
//
//	inactive --SetCanary(name,pct)--> active(name,pct)
//	active --PromoteCanary--> inactive   (canary becomes live)
//	active --ClearCanary--> inactive     (manual rollback)
//	active --error-rate > threshold--> inactive (automatic rollback,
//	         recorded in the rollback counter and /metrics)
//
// Routing is deterministic: a row goes to the canary iff
// rowBucket(row) < pct, where rowBucket hashes the row's coordinates
// into [0,100). The same row always lands on the same side — across
// requests, replicas and retries — so a misrouted-row fraction is an
// exact function of the row set, not a sampling accident, and A/B
// comparisons of a specific row are meaningful. Only live-model batch
// requests route; single-row /predict and requests naming an explicit
// model version always score on the addressed model.
//
// Fail-safe scoring: a canary row whose canary scoring errors (wrong
// dimension, version skew) counts an error and falls back to the live
// model, so a broken canary degrades the rollout — never the request.

// canaryState is one canary deployment: an immutable designation plus
// its (atomic) outcome counters. SetCanary installs a fresh state, so
// counters always describe exactly one rollout.
type canaryState struct {
	model *Model
	pct   int

	rows   atomic.Uint64 // rows routed to the canary
	errors atomic.Uint64 // canary scoring failures (fell back to live)
}

// SetCanary starts a staged rollout: pct percent of live-model batch
// rows (deterministically selected by row hash) score on the named
// version instead of the live model. pct must be in [0,100]; the name
// must be registered. A subsequent SetCanary replaces the rollout and
// resets its counters.
func (r *Registry) SetCanary(name string, pct int) error {
	if pct < 0 || pct > 100 {
		return fmt.Errorf("serve: canary percentage %d outside [0,100]", pct)
	}
	r.mu.RLock()
	m := r.models[name]
	r.mu.RUnlock()
	if m == nil {
		return fmt.Errorf("serve: no model %q (have %v)", name, r.Names())
	}
	r.canary.Store(&canaryState{model: m, pct: pct})
	return nil
}

// Canary reports the active rollout: the candidate model, its traffic
// percentage, and the rows/errors it has scored so far. model == nil
// means no rollout is active.
func (r *Registry) Canary() (model *Model, pct int, rows, errs uint64) {
	cs := r.canary.Load()
	if cs == nil {
		return nil, 0, 0, 0
	}
	return cs.model, cs.pct, cs.rows.Load(), cs.errors.Load()
}

// ClearCanary ends the rollout without promoting (manual rollback).
func (r *Registry) ClearCanary() {
	r.canary.Store(nil)
}

// PromoteCanary ends the rollout by making the canary version live
// (persisting the designation on a directory-backed registry, so
// watching replicas follow the promotion).
func (r *Registry) PromoteCanary() (*Model, error) {
	cs := r.canary.Load()
	if cs == nil {
		return nil, fmt.Errorf("serve: no canary to promote")
	}
	m, err := r.SetLive(cs.model.Name)
	if err != nil {
		return nil, err
	}
	// Only clear the rollout we promoted: a concurrent SetCanary must
	// not be wiped by a stale promotion.
	r.canary.CompareAndSwap(cs, nil)
	return m, nil
}

// rollbackCanary ends the given rollout if it is still the active one
// — the automatic-rollback path. The compare-and-swap makes rollback
// idempotent across concurrent batches and can never cancel a newer
// rollout installed after the regression was measured.
func (r *Registry) rollbackCanary(cs *canaryState) bool {
	return r.canary.CompareAndSwap(cs, nil)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a state, byte by byte.
func fnvMix(h, x uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (x >> s) & 0xff
		h *= fnvPrime64
	}
	return h
}

// rowBucket hashes one coordinate-form row into [0,100) — the
// deterministic canary routing key. FNV-1a over the (index, value)
// words: cheap (a few ns per nonzero), stable across processes, and
// independent of batch framing.
func rowBucket(idx []int, val []float64) int {
	h := uint64(fnvOffset64)
	for k := range idx {
		h = fnvMix(h, uint64(idx[k]))
		h = fnvMix(h, math.Float64bits(val[k]))
	}
	return int(h % 100)
}

// rowBucketDense hashes a dense wire row into [0,100) by folding its
// nonzero coordinates through the same scheme, so a dense row and its
// sparse encoding land in the same bucket.
func rowBucketDense(x []float64) int {
	h := uint64(fnvOffset64)
	for i, v := range x {
		if v == 0 {
			continue
		}
		h = fnvMix(h, uint64(i))
		h = fnvMix(h, math.Float64bits(v))
	}
	return int(h % 100)
}
