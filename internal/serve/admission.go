package serve

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Admission control and load-shedding: a bounded queue in front of the
// scoring paths.
//
// Invariants (DESIGN.md §10, pinned by the overload tests):
//
//   - At most MaxInflight requests hold a scoring slot at once; at
//     most MaxQueue more wait for one. Everything beyond that is shed
//     *immediately* with 429 + Retry-After — an overloaded replica
//     answers in microseconds instead of stacking goroutines, which is
//     what lets a load balancer route around it.
//   - Admitted work is never abandoned: a request that holds a slot
//     runs to completion (its own ctx aside). Shedding only ever
//     happens at the door.
//   - Queued requests honor deadline propagation: the wait select
//     includes the request ctx, so a client that disconnects or times
//     out while queued is evicted without ever taking a slot.
//   - A queue wait longer than QueueTimeout sheds: whoever queued
//     behind a stuck batch gets a fast 429, not a slow one.
//   - Introspection routes (/healthz, /modelz, /metrics) bypass
//     admission entirely — an overloaded replica must still be
//     observable, or the fleet cannot see that it is shedding.
type admission struct {
	maxInflight  int
	maxQueue     int
	queueTimeout time.Duration

	slots  chan struct{} // cap maxInflight; a held token is a scoring slot
	queued atomic.Int64
	sheds  atomic.Uint64
}

// errShed marks a load-shedding rejection (429 + Retry-After).
var errShed = errors.New("serve: overloaded, request shed")

// newAdmission builds the gate, or nil when admission is unlimited.
func newAdmission(cfg Config) *admission {
	if cfg.MaxInflight <= 0 {
		return nil
	}
	return &admission{
		maxInflight:  cfg.MaxInflight,
		maxQueue:     cfg.MaxQueue,
		queueTimeout: cfg.QueueTimeout,
		slots:        make(chan struct{}, cfg.MaxInflight),
	}
}

// acquire obtains a scoring slot. It returns a release function on
// admission; errShed when the request was shed (queue full or queue
// wait exceeded QueueTimeout); or ctx.Err() when the request context
// died while queued.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	// All slots busy: join the bounded queue or shed on overflow.
	if a.queued.Add(1) > int64(a.maxQueue) {
		a.queued.Add(-1)
		a.sheds.Add(1)
		return nil, errShed
	}
	defer a.queued.Add(-1)
	t := time.NewTimer(a.queueTimeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-t.C:
		a.sheds.Add(1)
		return nil, errShed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() {
	<-a.slots
}

// retryAfterSeconds is the Retry-After hint on a shed response: the
// queue timeout rounded up to whole seconds — the horizon after which
// a queue slot is guaranteed to have turned over — and at least 1.
func (a *admission) retryAfterSeconds() int {
	s := int(math.Ceil(a.queueTimeout.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// admissionState is the gate's observable state, reported by /healthz
// and /metrics.
type admissionState struct {
	MaxInflight int    `json:"maxInflight"`
	MaxQueue    int    `json:"maxQueue"`
	Inflight    int    `json:"inflight"`
	Queued      int64  `json:"queued"`
	Sheds       uint64 `json:"sheds"`
	// Shedding reports whether the gate is saturated right now: every
	// slot held and the queue full, so an arriving request would shed.
	Shedding bool `json:"shedding"`
}

func (a *admission) state() admissionState {
	inflight, queued := len(a.slots), a.queued.Load()
	return admissionState{
		MaxInflight: a.maxInflight,
		MaxQueue:    a.maxQueue,
		Inflight:    inflight,
		Queued:      queued,
		Sheds:       a.sheds.Load(),
		Shedding:    inflight == a.maxInflight && queued >= int64(a.maxQueue),
	}
}

// admit wraps a scoring handler behind the gate. Introspection routes
// are mounted without it.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	if s.adm == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.adm.acquire(r.Context())
		if err != nil {
			if errors.Is(err, errShed) {
				w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
				s.httpError(w, http.StatusTooManyRequests, "overloaded: %d in flight, %d queued; retry later", s.adm.maxInflight, s.adm.maxQueue)
				return
			}
			// The client's deadline or connection died while queued.
			s.httpError(w, http.StatusServiceUnavailable, "request cancelled while queued: %v", err)
			return
		}
		defer release()
		h(w, r)
	}
}
