package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"boltondp/internal/eval"
)

// Registry watch: directory polling so N serving replicas over one
// shared registry directory converge on publishes and live-swaps
// without restart.
//
// The replication mechanism is the filesystem itself — the same choice
// the persistence layer already made. Every write into a registry
// directory is temp+rename (model files and the live designation
// alike), so a poller can never observe a half-written file: a scan
// sees the old content or the new content, atomically. That makes a
// plain (name, mtime, size) diff a sound change detector, and the
// convergence argument one sentence long: after any quiescent point,
// every replica's next successful scan loads exactly the set of
// renamed-in files and the designation they name, so all replicas
// converge on the publisher's state within one poll interval (the
// incremental-view-maintenance shape: maintain the artifact, swap on
// update, converge on the swap).
//
// Failure policy: a scan that cannot read the directory reports its
// error but the watcher keeps running (transient NFS hiccups must not
// kill a fleet); a model file that fails to load is skipped and
// retried next tick (it can only mean a reader/writer version skew or
// corruption — the file cannot be mid-write); the live designation is
// applied only when it names a loaded model, so a designation that
// races ahead of its model file lands one tick later. A replica never
// un-designates its live model just because the designation file
// vanished — serving the last good model beats serving nothing.

// DefaultWatchInterval is the poll interval Watch uses when the caller
// passes a non-positive one.
const DefaultWatchInterval = 2 * time.Second

// Watch polls the registry directory until ctx is cancelled, folding
// every observed change into the registry: new and republished model
// files are loaded and registered, deleted files are dropped, and the
// live designation file is followed. Scan errors are logged
// (Registry.Logf) and do not stop the watcher. Watch returns ctx.Err()
// once the context dies. Watching an in-memory registry is an error.
func (r *Registry) Watch(ctx context.Context) error {
	return r.WatchEvery(ctx, DefaultWatchInterval)
}

// WatchEvery is Watch at an explicit poll interval (every <= 0 polls
// at DefaultWatchInterval).
func (r *Registry) WatchEvery(ctx context.Context, every time.Duration) error {
	if r.dir == "" {
		return fmt.Errorf("serve: cannot watch an in-memory registry")
	}
	if every <= 0 {
		every = DefaultWatchInterval
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if err := r.Refresh(); err != nil {
				r.logf("serve: watch scan of %s: %v", r.dir, err)
			}
		}
	}
}

// Refresh performs one synchronous watch scan: diff the directory
// against the last-seen state, load what changed, drop what vanished,
// and follow the live designation. It is the unit Watch loops on,
// exported so tests (and operators wiring their own schedules) can
// drive convergence deterministically. The returned error aggregates
// per-file load failures; the rest of the scan still applies.
func (r *Registry) Refresh() error {
	if r.dir == "" {
		return fmt.Errorf("serve: cannot refresh an in-memory registry")
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	// Stat pass first, without the lock: loading a model file is the
	// expensive step and must not block predictions' Get/Snapshot.
	present := map[string]fileStamp{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // raced with a concurrent rename; next tick sees it
		}
		present[strings.TrimSuffix(e.Name(), ".json")] = fileStamp{mtime: fi.ModTime(), size: fi.Size()}
	}

	r.mu.RLock()
	changed := make([]string, 0, 4)
	verify := make([]string, 0, 2)
	for name, st := range present {
		have, ok := r.seen[name]
		switch {
		case !ok || have.mtime != st.mtime || have.size != st.size:
			changed = append(changed, name)
		case have.suspect():
			// Same cheap stamp, but recorded inside the rewrite-race
			// window — a same-second same-size republish would be
			// invisible to (mtime, size). Tiebreak on content CRC below.
			verify = append(verify, name)
		}
	}
	removed := make([]string, 0, 4)
	for name := range r.seen {
		if _, ok := present[name]; !ok {
			removed = append(removed, name)
		}
	}
	r.mu.RUnlock()

	scanAt := time.Now()
	verified := make(map[string]uint32, len(verify))
	for _, name := range verify {
		crc, err := fileCRC(filepath.Join(r.dir, name+".json"))
		if err != nil {
			continue // raced with a rename; the mtime diff catches it next tick
		}
		r.mu.RLock()
		same := r.seen[name].crc == crc
		r.mu.RUnlock()
		if same {
			verified[name] = crc
		} else {
			changed = append(changed, name)
		}
	}

	var errs []error
	loaded := make(map[string]*Model, len(changed))
	stamps := make(map[string]fileStamp, len(changed))
	for _, name := range changed {
		path := filepath.Join(r.dir, name+".json")
		c, meta, err := eval.LoadClassifier(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("serve: loading %q: %w", name+".json", err))
			continue
		}
		m, err := newModel(name, c, meta)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		m.Published = present[name].mtime
		loaded[name] = m
		st := present[name]
		st.seenAt = time.Now()
		if crc, err := fileCRC(path); err == nil {
			st.crc = crc
		}
		stamps[name] = st
	}

	liveName, haveLive := r.readLiveFile()

	r.mu.Lock()
	// A clean CRC check moves seenAt forward; once the file's mtime
	// quantum has passed, suspect() goes false and polling is stat-only
	// again.
	for name, crc := range verified {
		if st, ok := r.seen[name]; ok && st.crc == crc {
			st.seenAt = scanAt
			r.seen[name] = st
		}
	}
	for name, m := range loaded {
		r.models[name] = m
		r.seen[name] = stamps[name]
		// The live designation names a version, not a pointer: a
		// republish of the live name from another replica swaps here
		// exactly as a local Publish would.
		if cur := r.live.Load(); cur != nil && cur.Name == name {
			r.live.Store(m)
		}
	}
	for _, name := range removed {
		delete(r.models, name)
		delete(r.seen, name)
		// The live pointer is deliberately left alone: a deleted live
		// file fails safe by serving the last good model.
	}
	if haveLive {
		if m := r.models[liveName]; m != nil && r.live.Load() != m {
			r.live.Store(m)
		}
	}
	r.mu.Unlock()

	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	return nil
}

// stdlog is the default sink for operational log lines.
func stdlog(format string, args ...any) {
	log.Printf(format, args...)
}
