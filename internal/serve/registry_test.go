package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"boltondp/internal/eval"
	"boltondp/internal/vec"
)

func linear(dim int, v float64) *eval.Linear {
	w := make([]float64, dim)
	for i := range w {
		w[i] = v
	}
	return &eval.Linear{W: w}
}

func TestRegistryPublishGetLive(t *testing.T) {
	r, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	if r.Live() != nil {
		t.Error("empty registry has a live model")
	}
	m, err := r.Publish("a", linear(3, 1), map[string]string{"epsilon": "0.1"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim != 3 || m.Classes != 2 || m.Sparse == nil {
		t.Errorf("model %+v", m)
	}
	if r.Live() != m {
		t.Error("publish did not hot-swap live")
	}
	if got, ok := r.Get("a"); !ok || got != m {
		t.Error("Get(a) missing")
	}
	// A second publish under a new name does NOT steal live: promotion
	// is explicit (SetLive or canary promotion).
	m2, err := r.Publish("b", linear(4, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Live() != m {
		t.Error("publish of a new name stole the live designation")
	}
	if _, err := r.SetLive("b"); err != nil {
		t.Fatal(err)
	}
	if r.Live() != m2 {
		t.Error("SetLive(b) did not swap")
	}
	// Republishing the live *name* follows: the designation names a
	// version, not a pointer.
	m2b, err := r.Publish("b", linear(4, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Live() != m2b {
		t.Error("republish of the live name did not follow")
	}
	if _, err := r.SetLive("a"); err != nil {
		t.Fatal(err)
	}
	if r.Live() != m {
		t.Error("SetLive(a) did not swap")
	}
	if _, err := r.SetLive("nope"); err == nil {
		t.Error("SetLive accepted unknown name")
	}
	if names := r.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names %v", names)
	}
	if r.Len() != 2 || len(r.Models()) != 2 {
		t.Errorf("len %d models %d", r.Len(), len(r.Models()))
	}
}

func TestRegistryMetaIsCopied(t *testing.T) {
	r, _ := NewRegistry("")
	meta := map[string]string{"epsilon": "0.1"}
	m, err := r.Publish("a", linear(2, 1), meta)
	if err != nil {
		t.Fatal(err)
	}
	meta["epsilon"] = "mutated"
	if m.Meta["epsilon"] != "0.1" {
		t.Error("registry shares the caller's meta map")
	}
}

func TestRegistryRejects(t *testing.T) {
	r, _ := NewRegistry("")
	for name, publish := range map[string]func() error{
		"empty name":    func() error { _, err := r.Publish("", linear(2, 1), nil); return err },
		"path name":     func() error { _, err := r.Publish("a/b", linear(2, 1), nil); return err },
		"dot name":      func() error { _, err := r.Publish(".hidden", linear(2, 1), nil); return err },
		"empty weights": func() error { _, err := r.Publish("a", &eval.Linear{}, nil); return err },
		"one-class ova": func() error { _, err := r.Publish("a", &eval.OneVsAll{W: [][]float64{{1}}}, nil); return err },
		"ragged ova":    func() error { _, err := r.Publish("a", &eval.OneVsAll{W: [][]float64{{1, 2}, {3}}}, nil); return err },
		"unknown type":  func() error { _, err := r.Publish("a", stubClassifier{}, nil); return err },
	} {
		if publish() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if r.Len() != 0 || r.Live() != nil {
		t.Error("rejected publishes left state behind")
	}
}

type stubClassifier struct{}

func (stubClassifier) Predict([]float64) float64 { return 0 }

func TestRegistryPersistence(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	ova := &eval.OneVsAll{W: [][]float64{{1, 0}, {0, 1}, {-1, -1}}}
	if _, err := r.Publish("digits", ova, map[string]string{"epsilon": "1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("fraud", linear(2, 0.5), nil); err != nil {
		t.Fatal(err)
	}

	// A fresh registry over the same directory sees both versions and
	// follows the persisted live designation: "digits" went live on
	// first publish (empty registry) and "fraud" never stole it.
	r2, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 {
		t.Fatalf("reloaded %d models, want 2", r2.Len())
	}
	if r2.Live() == nil || r2.Live().Name != "digits" {
		t.Error("persisted live designation not followed on reload")
	}
	m, err := r2.SetLive("digits")
	if err != nil {
		t.Fatal(err)
	}
	if m.Classes != 3 || m.Dim != 2 {
		t.Errorf("reloaded digits %+v", m)
	}
	got := m.Classifier.(*eval.OneVsAll)
	for c := range ova.W {
		if !vec.Equal(got.W[c], ova.W[c], 0) {
			t.Errorf("class %d weights drifted through the round trip", c)
		}
	}
	if m.Meta["epsilon"] != "1" {
		t.Errorf("meta %v", m.Meta)
	}

	// Without a designation file (models copied into a fresh dir), two
	// candidates are ambiguous: no live model is auto-selected.
	if err := os.Remove(filepath.Join(dir, liveFile)); err != nil {
		t.Fatal(err)
	}
	r3, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Live() != nil {
		t.Error("ambiguous live model auto-selected without a designation")
	}

	// A single-model directory auto-selects its only model.
	solo := t.TempDir()
	rs, err := NewRegistry(solo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Publish("only", linear(2, 1), nil); err != nil {
		t.Fatal(err)
	}
	rs2, err := NewRegistry(solo)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Live() == nil || rs2.Live().Name != "only" {
		t.Error("single model not auto-live after reload")
	}
}

// TestRegistrySweepsStaleTempFiles: a crashed publish's leftover temp
// file is removed at open — but only once it is demonstrably stale, so
// a concurrent publisher's live temp survives the sweep.
func TestRegistrySweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "crashed.1234.tmp")
	fresh := filepath.Join(dir, "inflight.5678.tmp")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial model write"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpSweepAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived the sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("concurrent publisher's fresh temp file was swept")
	}
}

func TestRegistryIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"README.txt", "half.json.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("not a model"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("loaded %d models from foreign files", r.Len())
	}
	// A corrupt .json model file is a loud error, not a silent skip.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(dir); err == nil {
		t.Error("corrupt model file accepted")
	}
}

// TestRegistryHotSwapRace is the subsystem's foundational guarantee: N
// goroutines predicting while M goroutines hot-swap must be data-race
// free (run under -race) and must never observe a torn model. Every
// published version has all-equal weights, so any mixture of two
// versions is detectable from a single Live() load.
func TestRegistryHotSwapRace(t *testing.T) {
	const (
		readers  = 8
		writers  = 4
		versions = 60
		dim      = 128
	)
	r, err := NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("v", linear(dim, 1), nil); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var torn atomic.Int32
	var readerWG, writerWG sync.WaitGroup

	probe := &vec.Sparse{Idx: []int{0, dim / 2, dim - 1}, Val: []float64{1, 1, 1}}
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for !stop.Load() {
				m := r.Live()
				w := m.Classifier.(*eval.Linear).W
				v0 := w[0]
				for _, v := range w {
					if v != v0 {
						torn.Add(1)
						return
					}
				}
				// Exercise both scoring tiers while swaps are landing.
				if got := m.Sparse.PredictSparse(probe); got != 1 && got != -1 {
					torn.Add(1)
					return
				}
			}
		}()
	}

	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for k := 1; k <= versions; k++ {
				// Writers alternate between promoting fresh versions
				// (publish + SetLive, since publish alone no longer
				// steals live) and re-pointing live at an old one —
				// both swap paths stay hot.
				if k%3 == 0 {
					if _, err := r.SetLive("v"); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				name := fmt.Sprintf("v%d-%d", g, k)
				if _, err := r.Publish(name, linear(dim, float64(k)), nil); err != nil {
					t.Error(err)
					return
				}
				if _, err := r.SetLive(name); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	writerWG.Wait() // all swaps landed; release the readers
	stop.Store(true)
	readerWG.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn model observations", n)
	}
}
