package online

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"boltondp/internal/account"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
	"boltondp/internal/serve"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
	"boltondp/internal/vec"
)

// synth builds a binary sparse dataset with a planted separator on
// coordinate 0 and the given +1 label rate: rows are unit-norm, the
// label follows sign(x0) for the first posRate fraction and -sign(x0)
// inverted labels otherwise — so posRate ~0.5 looks like the training
// population and posRate ~1 is a drifted prior.
func synth(r *rand.Rand, m, dim int, posRate float64) *data.SparseDataset {
	ds := data.NewSparseDataset("synth", dim)
	for i := 0; i < m; i++ {
		idx := []int{0, 1 + r.Intn(dim-1)}
		val := []float64{0.5 + r.Float64(), r.NormFloat64()}
		y := 1.0
		if float64(i%100)/100 >= posRate {
			y = -1
			val[0] = -val[0]
		}
		x := &vec.Sparse{Idx: idx, Val: val}
		if nrm := x.Norm(); nrm > 1 {
			x.Scale(1 / nrm)
		}
		if err := ds.Append(x, y); err != nil {
			panic(err)
		}
	}
	return ds
}

// TestOnlineLoopEndToEnd is the acceptance loop: train → publish →
// serve → AppendSegment → drift fires → warm retrain on a per-window
// draw → canary publish → promote; then a rollback variant; the final
// ledger audits every window; and an integrity-violating segment is
// rejected fail-closed before visibility.
func TestOnlineLoopEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const dim = 16
	ctx := context.Background()
	f := loss.NewLogistic(1e-2, 0)

	// --- Seed the segment directory with the initial training data.
	dirPath := t.TempDir() + "/segments"
	base := synth(r, 600, dim, 0.5)
	if _, err := store.AppendSegment(dirPath, base, store.Options{}); err != nil {
		t.Fatal(err)
	}
	dir, err := store.OpenDir(dirPath)
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()

	// --- Initial training: one accountant owns the whole ε; the first
	// run draws an explicit slice and the continual windows split the
	// rest.
	total := dp.Budget{Epsilon: 4, Delta: 1e-6}
	acct, err := account.NewWithRule("rdp", total)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.TrainCtx(ctx, dir, f,
		core.WithBudget(dp.Budget{Epsilon: 1, Delta: 2.5e-7}),
		core.WithAccountant(acct), core.WithSpendLabel("initial"),
		core.WithPasses(2), core.WithBatch(20), core.WithRadius(100),
		core.WithRand(rand.New(rand.NewSource(2))))
	if err != nil {
		t.Fatal(err)
	}

	// --- Publish into a directory-backed registry (the dpserve path)
	// with the ledger and training snapshot stamped.
	reg, err := serve.NewRegistry(t.TempDir() + "/registry")
	if err != nil {
		t.Fatal(err)
	}
	meta := map[string]string{}
	if err := acct.StampMeta(meta); err != nil {
		t.Fatal(err)
	}
	StampMeta(meta, Stats(dir, res.W), 0)
	if _, err := reg.Publish("model", &eval.Linear{W: res.W}, meta); err != nil {
		t.Fatal(err)
	}
	live := reg.Live()
	if live == nil || live.Name != "model" {
		t.Fatalf("live = %v", live)
	}
	// Serve: the published model answers a prediction.
	x0, _ := dir.AtSparse(0)
	if p := live.Sparse.PredictSparse(x0); p != 1 && p != -1 {
		t.Fatalf("served prediction = %v", p)
	}

	// --- Continual trainer over the remaining budget, 3 windows.
	const N = 3
	tr, err := core.NewContinualTrainer(acct, N, f,
		core.WithPasses(2), core.WithBatch(20), core.WithRadius(100),
		core.WithRand(rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	run := &Runner{Dir: dir, Registry: reg, Trainer: tr, CanaryPct: 25,
		Logf: t.Logf}

	// --- A same-distribution segment must NOT fire.
	calm := synth(rand.New(rand.NewSource(4)), 200, dim, 0.5)
	rep, err := run.Ingest(ctx, calm, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fired {
		t.Fatalf("calm segment fired: %+v", rep)
	}
	if dir.Len() != 800 {
		t.Fatalf("union len = %d after calm ingest, want 800", dir.Len())
	}
	if tr.Window() != 0 {
		t.Fatalf("calm ingest spent a window")
	}

	// --- A drifted segment (label prior flips to ~1.0) fires, spends
	// window 1, and stages a canary.
	drift := synth(rand.New(rand.NewSource(5)), 200, dim, 1.0)
	rep, err = run.Ingest(ctx, drift, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fired {
		t.Fatalf("drifted segment did not fire: %+v", rep)
	}
	if tr.Window() != 1 {
		t.Fatalf("Window() = %d after drift, want 1", tr.Window())
	}
	cm, pct, _, _ := reg.Canary()
	if cm == nil || cm.Name != "model-w1" || pct != 25 {
		t.Fatalf("canary = %v at %d%%", cm, pct)
	}
	// The canary's warm start came from the live model: retraining was
	// warm, not from scratch — pinned by the trainer's weight state
	// having been seeded with the live weights.
	if tr.Weights() == nil {
		t.Fatal("trainer has no weights after window 1")
	}

	// --- Promote: the window-1 model goes live.
	if _, err := run.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Live().Name; got != "model-w1" {
		t.Fatalf("live after promote = %q", got)
	}
	if cm, _, _, _ := reg.Canary(); cm != nil {
		t.Fatal("canary still staged after promote")
	}
	// The promoted model's metadata audits the spend so far.
	l, ok, err := account.LedgerFromMeta(reg.Live().Meta)
	if err != nil || !ok {
		t.Fatalf("promoted model carries no ledger: %v", err)
	}
	if len(l.Entries) != 2 || l.Entries[1].Label != "window[1/3]" {
		t.Fatalf("promoted ledger entries: %+v", l.Entries)
	}

	// --- Rollback variant: another drifted segment stages window 2;
	// the operator rolls it back. The live model stays window 1 and the
	// window budget stays spent (released is released).
	drift2 := synth(rand.New(rand.NewSource(6)), 200, dim, 0.0)
	rep, err = run.Ingest(ctx, drift2, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fired || tr.Window() != 2 {
		t.Fatalf("second drift: fired=%v window=%d", rep.Fired, tr.Window())
	}
	if cm, _, _, _ := reg.Canary(); cm == nil || cm.Name != "model-w1-w2" {
		t.Fatalf("canary before rollback = %v", cm)
	}
	run.Rollback()
	if cm, _, _, _ := reg.Canary(); cm != nil {
		t.Fatal("canary still staged after rollback")
	}
	if got := reg.Live().Name; got != "model-w1" {
		t.Fatalf("live after rollback = %q", got)
	}

	// --- Integrity violation: a segment with a wider dimension is
	// rejected fail-closed — no new segment visible, no window spent.
	lenBefore, winBefore := dir.Len(), tr.Window()
	bad := data.NewSparseDataset("bad", dim+7)
	for i := 0; i < 50; i++ {
		if err := bad.Append(&vec.Sparse{Idx: []int{dim + 6}, Val: []float64{1}}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := run.Ingest(ctx, bad, store.Options{}); err == nil || !strings.Contains(err.Error(), "dim") {
		t.Fatalf("integrity-violating ingest: %v", err)
	}
	if dir.Len() != lenBefore || tr.Window() != winBefore {
		t.Fatalf("rejected ingest changed state: len %d→%d window %d→%d",
			lenBefore, dir.Len(), winBefore, tr.Window())
	}

	// --- Final audit: the accountant's ledger records the initial run
	// plus every spent window, within the total.
	fl := tr.Ledger()
	labels := make([]string, len(fl.Entries))
	for i, e := range fl.Entries {
		labels[i] = e.Label
	}
	want := []string{"initial", "window[1/3]", "window[2/3]"}
	if len(labels) != len(want) {
		t.Fatalf("ledger labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("ledger labels = %v, want %v", labels, want)
		}
	}
	if sp := fl.Spent(); sp.Epsilon > total.Epsilon*(1+1e-9) || sp.Delta > total.Delta*(1+1e-9) {
		t.Fatalf("spent %v exceeds total %v", sp, total)
	}
}

// TestRunnerWindowsExhaust: once every window is spent, a drifting
// segment still ingests and reports, but the retrain fails closed with
// ErrOverdraw.
func TestRunnerWindowsExhaust(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const dim = 8
	ctx := context.Background()
	f := loss.NewLogistic(1e-2, 0)

	dirPath := t.TempDir() + "/segments"
	if _, err := store.AppendSegment(dirPath, synth(r, 300, dim, 0.5), store.Options{}); err != nil {
		t.Fatal(err)
	}
	dir, err := store.OpenDir(dirPath)
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()

	tr, err := core.NewContinualRDP(dp.Budget{Epsilon: 2, Delta: 1e-6}, 1, f,
		core.WithPasses(1), core.WithBatch(10), core.WithRadius(100),
		core.WithRand(rand.New(rand.NewSource(10))))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := serve.NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	w0 := make([]float64, dim)
	w0[0] = 1
	meta := map[string]string{}
	StampMeta(meta, Stats(dir, w0), 0)
	if _, err := reg.Publish("m", &eval.Linear{W: w0}, meta); err != nil {
		t.Fatal(err)
	}
	run := &Runner{Dir: dir, Registry: reg, Trainer: tr, Logf: t.Logf}

	if rep, err := run.Ingest(ctx, synth(rand.New(rand.NewSource(11)), 100, dim, 1.0), store.Options{}); err != nil || !rep.Fired {
		t.Fatalf("first drift: rep=%v err=%v", rep, err)
	}
	rep, err := run.Ingest(ctx, synth(rand.New(rand.NewSource(12)), 100, dim, 0.0), store.Options{})
	if !errors.Is(err, account.ErrOverdraw) {
		t.Fatalf("exhausted retrain = %v, want ErrOverdraw", err)
	}
	if rep == nil || !rep.Fired {
		t.Fatalf("drift report lost on exhaustion: %v", rep)
	}
}

// TestStatsAndDetect covers the statistic pair and threshold logic on
// hand-built rows, both tiers.
func TestStatsAndDetect(t *testing.T) {
	s := &sgd.SliceSamples{
		X: [][]float64{{1, 0}, {1, 0}, {-1, 0}, {1, 0}},
		Y: []float64{1, 1, -1, -1},
	}
	w := []float64{2, 0}
	snap := Stats(s, w)
	if snap.LabelRate != 0.5 {
		t.Errorf("LabelRate = %v, want 0.5", snap.LabelRate)
	}
	// margins: 2, 2, 2, -2 → mean 1.
	if snap.MeanMargin != 1 {
		t.Errorf("MeanMargin = %v, want 1", snap.MeanMargin)
	}

	sp := data.NewSparseDataset("s", 2)
	for i := range s.Y {
		x := &vec.Sparse{Idx: []int{0}, Val: []float64{s.X[i][0]}}
		if err := sp.Append(x, s.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := Stats(sp, w); got != snap {
		t.Errorf("sparse Stats = %+v, dense %+v", got, snap)
	}
	if got := Stats(&sgd.SliceSamples{}, w); got != (Snapshot{}) {
		t.Errorf("empty Stats = %+v", got)
	}

	rep := Detect(snap, Snapshot{LabelRate: 0.9, MeanMargin: 1.1}, Thresholds{})
	if !rep.Fired || math.Abs(rep.LabelShift-0.4) > 1e-15 {
		t.Errorf("label drift: %+v", rep)
	}
	rep = Detect(snap, Snapshot{LabelRate: 0.5, MeanMargin: -1}, Thresholds{})
	if !rep.Fired || rep.MarginShift != 2 {
		t.Errorf("margin drift: %+v", rep)
	}
	rep = Detect(snap, Snapshot{LabelRate: 0.55, MeanMargin: 1.2}, Thresholds{})
	if rep.Fired {
		t.Errorf("calm snapshot fired: %+v", rep)
	}
	rep = Detect(snap, Snapshot{LabelRate: 0.6, MeanMargin: 1}, Thresholds{LabelRate: 0.05})
	if !rep.Fired {
		t.Errorf("tight threshold did not fire: %+v", rep)
	}
}

// TestSnapshotMetaRoundTrip: StampMeta → SnapshotFromMeta is exact.
func TestSnapshotMetaRoundTrip(t *testing.T) {
	snap := Snapshot{LabelRate: 1.0 / 3, MeanMargin: -0.12345678901234567}
	meta := map[string]string{}
	StampMeta(meta, snap, 4)
	got, ok, err := SnapshotFromMeta(meta)
	if err != nil || !ok {
		t.Fatalf("SnapshotFromMeta: ok=%v err=%v", ok, err)
	}
	if got != snap {
		t.Errorf("round trip %+v != %+v", got, snap)
	}
	if w := WindowFromMeta(meta); w != 4 {
		t.Errorf("WindowFromMeta = %d", w)
	}
	if _, ok, _ := SnapshotFromMeta(map[string]string{}); ok {
		t.Error("empty meta claims a snapshot")
	}
	if _, ok, err := SnapshotFromMeta(map[string]string{MetaLabelRate: "x", MetaMeanMargin: "1"}); !ok || err == nil {
		t.Error("corrupt snapshot not rejected")
	}
	if w := WindowFromMeta(map[string]string{}); w != 0 {
		t.Errorf("absent window = %d", w)
	}
}
