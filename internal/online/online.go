// Package online closes the production loop the paper's "bolt-on"
// pitch implies: train → publish → serve → ingest → retrain. It ties
// the segment store (immutable appends behind fail-closed integrity
// checks), the continual trainer (per-window budget draws from one
// accountant) and the serving registry (canary rollout machinery) into
// a drift-driven retraining pipeline:
//
//	AppendSegment      new rows become visible only after the
//	                   integrity gate (store.AppendSegment)
//	Detect             population statistics of the new segment —
//	                   label rate and mean margin under the live
//	                   model — are compared against the training-time
//	                   snapshot stamped into the live model's metadata
//	Retrain            past a threshold, one continual window is spent
//	                   on a warm-started retrain over the full union
//	Canary             the window model is published as a canary
//	                   version and routed a traffic fraction through
//	                   serve.Registry's staged-rollout machinery;
//	                   promotion and rollback are operator (or test)
//	                   decisions through the same state machine
//
// The privacy story is unchanged by any of this: every retrain draws
// its window from the accountant (fail-closed past the last window),
// the drift statistics are computed from raw data on the trusted side
// and never released — only the decision to retrain depends on them —
// and the published model's ledger audits every window.
package online

import (
	"fmt"
	"math"
	"strconv"

	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Snapshot is the population statistic pair the drift detector
// compares: the label rate (fraction of +1 labels) and the mean margin
// y·⟨w, x⟩ under a fixed model w. Both are one-number summaries that
// move when the data distribution moves: label-prior shift moves the
// first, covariate shift relative to the decision boundary moves the
// second even at a constant label rate.
type Snapshot struct {
	LabelRate  float64
	MeanMargin float64
}

// Stats computes the snapshot of s under model w. The sparse tier is
// used when s implements sgd.SparseSamples. An empty s or an empty w
// yields the zero snapshot.
func Stats(s sgd.Samples, w []float64) Snapshot {
	m := s.Len()
	if m == 0 {
		return Snapshot{}
	}
	var pos, margin float64
	if sp, ok := s.(sgd.SparseSamples); ok {
		for i := 0; i < m; i++ {
			x, y := sp.AtSparse(i)
			if y > 0 {
				pos++
			}
			margin += y * x.Dot(w)
		}
	} else {
		for i := 0; i < m; i++ {
			x, y := s.At(i)
			if y > 0 {
				pos++
			}
			margin += y * vec.Dot(x, w)
		}
	}
	return Snapshot{LabelRate: pos / float64(m), MeanMargin: margin / float64(m)}
}

// Thresholds are the maximum absolute shifts a segment may show before
// the detector fires. Zero fields fall back to the defaults.
type Thresholds struct {
	// LabelRate is the maximum |segment − baseline| label-rate shift
	// (default 0.2: a 20-point prior swing).
	LabelRate float64
	// Margin is the maximum |segment − baseline| mean-margin shift
	// (default 0.5).
	Margin float64
}

// DefaultThresholds are the Thresholds zero-value fallbacks.
var DefaultThresholds = Thresholds{LabelRate: 0.2, Margin: 0.5}

func (t Thresholds) withDefaults() Thresholds {
	if t.LabelRate == 0 {
		t.LabelRate = DefaultThresholds.LabelRate
	}
	if t.Margin == 0 {
		t.Margin = DefaultThresholds.Margin
	}
	return t
}

// Report is one drift decision: the compared snapshots, the absolute
// shifts, and whether either crossed its threshold.
type Report struct {
	// Segment names the ingested segment the decision is about.
	Segment string
	// Base is the training-time snapshot; Seg the new segment's.
	Base, Seg Snapshot
	// LabelShift and MarginShift are the absolute deviations.
	LabelShift, MarginShift float64
	// Fired reports whether either shift crossed its threshold.
	Fired bool
}

// Detect compares a segment snapshot against the baseline under thr.
func Detect(base, seg Snapshot, thr Thresholds) Report {
	thr = thr.withDefaults()
	r := Report{
		Base:        base,
		Seg:         seg,
		LabelShift:  math.Abs(seg.LabelRate - base.LabelRate),
		MarginShift: math.Abs(seg.MeanMargin - base.MeanMargin),
	}
	r.Fired = r.LabelShift > thr.LabelRate || r.MarginShift > thr.Margin
	return r
}

// Model-metadata keys the online tier stamps. The snapshot rides with
// the published model so a later process (or another replica) compares
// new segments against the statistics of the data the live model was
// actually trained on, not whatever happens to be in memory.
const (
	// MetaLabelRate and MetaMeanMargin persist the training snapshot.
	MetaLabelRate  = "online.label_rate"
	MetaMeanMargin = "online.mean_margin"
	// MetaWindow records which continual window produced the model
	// (0 = the initial full training run).
	MetaWindow = "online.window"
)

// StampMeta records the training snapshot and window index into a
// model-metadata map (alongside the accountant's ledger stamp).
func StampMeta(meta map[string]string, snap Snapshot, window int) {
	meta[MetaLabelRate] = strconv.FormatFloat(snap.LabelRate, 'g', -1, 64)
	meta[MetaMeanMargin] = strconv.FormatFloat(snap.MeanMargin, 'g', -1, 64)
	meta[MetaWindow] = strconv.Itoa(window)
}

// SnapshotFromMeta extracts a stamped training snapshot. ok is false
// when the map carries none.
func SnapshotFromMeta(meta map[string]string) (snap Snapshot, ok bool, err error) {
	lr, okL := meta[MetaLabelRate]
	mm, okM := meta[MetaMeanMargin]
	if !okL || !okM {
		return Snapshot{}, false, nil
	}
	if snap.LabelRate, err = strconv.ParseFloat(lr, 64); err != nil {
		return Snapshot{}, true, fmt.Errorf("online: parsing %s: %w", MetaLabelRate, err)
	}
	if snap.MeanMargin, err = strconv.ParseFloat(mm, 64); err != nil {
		return Snapshot{}, true, fmt.Errorf("online: parsing %s: %w", MetaMeanMargin, err)
	}
	return snap, true, nil
}

// WindowFromMeta extracts the stamped window index (0 when absent).
func WindowFromMeta(meta map[string]string) int {
	n, err := strconv.Atoi(meta[MetaWindow])
	if err != nil || n < 0 {
		return 0
	}
	return n
}
