package online

import (
	"context"
	"fmt"
	"log"

	"boltondp/internal/core"
	"boltondp/internal/eval"
	"boltondp/internal/serve"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
)

// Runner wires the online loop together over one segment directory and
// one registry. It is deliberately mechanism-free: every privacy
// decision lives in the ContinualTrainer's accountant, every
// visibility decision in the store's manifest commit, and every
// rollout decision in the registry's canary state machine — the Runner
// only sequences them.
//
// The Runner serves binary linear models (*eval.Linear): the drift
// margin statistic and the warm start are defined on one weight
// vector. One-vs-all models would need a per-class loop here and a
// per-class budget story; they stay on the full-retrain path.
type Runner struct {
	// Dir is the segment directory holding the training data union.
	Dir *store.Dir
	// Registry is the serving registry the live model is published in
	// (directory-backed for the dpserve-compatible path, but an
	// in-memory registry works for tests).
	Registry *serve.Registry
	// Trainer draws one budget window per drift-triggered retrain.
	Trainer *core.ContinualTrainer
	// Probe, when non-nil, is the held-out probe set baselines are
	// computed on when the live model's metadata carries no stamped
	// snapshot. Falling back to the training union itself is sound but
	// mixes the new segment into its own baseline on later ingests.
	Probe sgd.Samples
	// Thresholds configure the drift detector (zero = defaults).
	Thresholds Thresholds
	// CanaryPct is the traffic fraction a drift-triggered canary gets
	// (default 10).
	CanaryPct int
	// Logf receives operational log lines; nil logs via the standard
	// library logger.
	Logf func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// liveLinear returns the live model and its weight vector.
func (r *Runner) liveLinear() (*serve.Model, []float64, error) {
	live := r.Registry.Live()
	if live == nil {
		return nil, nil, fmt.Errorf("online: registry has no live model")
	}
	lin, ok := live.Classifier.(*eval.Linear)
	if !ok {
		return nil, nil, fmt.Errorf("online: live model %q is %T, the online loop serves binary *eval.Linear models", live.Name, live.Classifier)
	}
	return live, lin.W, nil
}

// baseline resolves the snapshot new segments are compared against:
// the one stamped into the live model's metadata, else Probe under the
// live weights, else the pre-ingest training union.
func (r *Runner) baseline(w []float64, oldLen int, meta map[string]string) (Snapshot, error) {
	if snap, ok, err := SnapshotFromMeta(meta); ok {
		if err != nil {
			return Snapshot{}, err
		}
		return snap, nil
	}
	if r.Probe != nil {
		return Stats(r.Probe, w), nil
	}
	return Stats(r.Dir.Shard(0, oldLen), w), nil
}

// Ingest appends one batch of rows as a new segment (fail-closed: rows
// that violate the directory's integrity invariants never become
// visible), runs the drift detector over the new segment under the
// live model, and — when it fires — spends one continual window on a
// warm-started retrain and publishes the result as a canary version
// "<live>-w<k>" at CanaryPct traffic. Promotion or rollback of that
// canary is a separate decision (Promote / Rollback), mirroring the
// operator workflow.
//
// The returned Report carries the drift decision whether or not it
// fired; rep.Fired && err == nil means a canary is now staged.
func (r *Runner) Ingest(ctx context.Context, src sgd.SparseSamples, opt store.Options) (*Report, error) {
	live, w, err := r.liveLinear()
	if err != nil {
		return nil, err
	}
	oldLen := r.Dir.Len()

	seg, err := store.AppendSegment(r.Dir.Path(), src, opt)
	if err != nil {
		return nil, fmt.Errorf("online: ingest rejected: %w", err)
	}
	if err := r.Dir.Reload(); err != nil {
		return nil, err
	}

	base, err := r.baseline(w, oldLen, live.Meta)
	if err != nil {
		return nil, err
	}
	cur := Stats(r.Dir.Shard(oldLen, r.Dir.Len()), w)
	rep := Detect(base, cur, r.Thresholds)
	rep.Segment = seg
	if !rep.Fired {
		r.logf("online: segment %s ingested, no drift (Δlabel=%.3f Δmargin=%.3f)", seg, rep.LabelShift, rep.MarginShift)
		return &rep, nil
	}
	r.logf("online: segment %s drifted (Δlabel=%.3f Δmargin=%.3f), retraining window %d/%d",
		seg, rep.LabelShift, rep.MarginShift, r.Trainer.Window()+1, r.Trainer.Windows())

	if r.Trainer.Weights() == nil {
		// First window of this process: warm-start from the live
		// (released, hence data-independent) model.
		r.Trainer.SetWarmStart(w)
	}
	res, err := r.Trainer.Retrain(ctx, r.Dir)
	if err != nil {
		return &rep, err
	}

	window := r.Trainer.Window()
	name := fmt.Sprintf("%s-w%d", live.Name, window)
	meta := map[string]string{}
	if err := r.Trainer.Accountant().StampMeta(meta); err != nil {
		return &rep, err
	}
	StampMeta(meta, Stats(r.Dir, res.W), window)
	if _, err := r.Registry.Publish(name, &eval.Linear{W: res.W}, meta); err != nil {
		return &rep, err
	}
	pct := r.CanaryPct
	if pct == 0 {
		pct = 10
	}
	if err := r.Registry.SetCanary(name, pct); err != nil {
		return &rep, err
	}
	r.logf("online: window %d model published as canary %q at %d%%", window, name, pct)
	return &rep, nil
}

// Promote makes the staged canary live (the rollout succeeded).
func (r *Runner) Promote() (*serve.Model, error) {
	return r.Registry.PromoteCanary()
}

// Rollback ends the staged rollout without promoting; the previous
// live model keeps serving. The spent window is NOT refunded — the
// canary model was released to the serving tier, so its budget is
// gone either way (the conservative reading the accountant enforces).
func (r *Runner) Rollback() {
	r.Registry.ClearCanary()
}
