package baselines

import (
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func separable(r *rand.Rand, m, d int) *sgd.SliceSamples {
	s := &sgd.SliceSamples{X: make([][]float64, m), Y: make([]float64, m)}
	for i := 0; i < m; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		if math.Abs(x[0]) < 0.3 {
			x[0] = math.Copysign(0.3, x[0])
		}
		vec.Normalize(x)
		s.X[i] = x
		s.Y[i] = math.Copysign(1, x[0])
	}
	return s
}

func accuracy(s sgd.Samples, w []float64) float64 {
	correct := 0
	for i := 0; i < s.Len(); i++ {
		x, y := s.At(i)
		if math.Copysign(1, vec.Dot(w, x)) == y {
			correct++
		}
	}
	return float64(correct) / float64(s.Len())
}

func TestNoiselessConvex(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := separable(r, 1000, 5)
	res, err := Noiseless(s, loss.NewLogistic(0, 0), Options{Passes: 5, Batch: 10, Rand: r})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(s, res.W); acc < 0.95 {
		t.Errorf("noiseless accuracy %v on separable data", acc)
	}
	if res.NoiseDraws != 0 {
		t.Errorf("noiseless drew noise %d times", res.NoiseDraws)
	}
	if res.Updates != 5*100 {
		t.Errorf("Updates = %d", res.Updates)
	}
}

func TestNoiselessStronglyConvexUsesInvT(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := separable(r, 1000, 5)
	res, err := Noiseless(s, loss.NewLogistic(1e-3, 0), Options{Passes: 5, Batch: 10, Rand: r})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(s, res.W); acc < 0.9 {
		t.Errorf("noiseless strongly convex accuracy %v", acc)
	}
}

func TestSCS13PureAndApprox(t *testing.T) {
	for _, budget := range []dp.Budget{{Epsilon: 1}, {Epsilon: 1, Delta: 1e-6}} {
		r := rand.New(rand.NewSource(3))
		s := separable(r, 2000, 5)
		res, err := SCS13(s, loss.NewLogistic(0, 0), Options{
			Budget: budget, Passes: 2, Batch: 50, Rand: r,
		})
		if err != nil {
			t.Fatalf("%v: %v", budget, err)
		}
		wantUpdates := 2 * 2000 / 50
		if res.Updates != wantUpdates {
			t.Errorf("%v: Updates = %d, want %d", budget, res.Updates, wantUpdates)
		}
		if res.NoiseDraws != wantUpdates {
			t.Errorf("%v: NoiseDraws = %d, want one per batch (%d)", budget, res.NoiseDraws, wantUpdates)
		}
	}
}

func TestSCS13NoiseShrinksWithBatch(t *testing.T) {
	// With larger batches the per-iteration sensitivity drops by b, so
	// accuracy at fixed ε should (statistically) improve. We check the
	// weaker invariant that large-batch SCS13 beats batch-1 SCS13 on
	// average over a few seeds.
	avg := func(b int) float64 {
		var sum float64
		for seed := int64(0); seed < 5; seed++ {
			r := rand.New(rand.NewSource(seed))
			s := separable(r, 2000, 5)
			res, err := SCS13(s, loss.NewLogistic(0, 0), Options{
				Budget: dp.Budget{Epsilon: 0.5}, Passes: 2, Batch: b, Rand: r,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += accuracy(s, res.W)
		}
		return sum / 5
	}
	if a1, a50 := avg(1), avg(50); a50 <= a1-0.05 {
		t.Errorf("batch-50 SCS13 accuracy %v unexpectedly below batch-1 %v", a50, a1)
	}
}

func TestBST14RequiresDelta(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := separable(r, 100, 3)
	_, err := BST14Convex(s, loss.NewLogistic(0, 0), Options{
		Budget: dp.Budget{Epsilon: 1}, Radius: 1, Rand: r,
	})
	if err == nil {
		t.Error("BST14 accepted pure ε-DP")
	}
}

func TestBST14RequiresRadius(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := separable(r, 100, 3)
	_, err := BST14Convex(s, loss.NewLogistic(0, 0), Options{
		Budget: dp.Budget{Epsilon: 1, Delta: 1e-6}, Rand: r,
	})
	if err == nil {
		t.Error("BST14 accepted Radius <= 0")
	}
}

func TestBST14ConvexRuns(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	s := separable(r, 2000, 5)
	res, err := BST14Convex(s, loss.NewLogistic(0, 0), Options{
		Budget: dp.Budget{Epsilon: 2, Delta: 1e-6},
		Passes: 2, Batch: 50, Radius: 10, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantT := 2 * 2000 / 50
	if res.Updates != wantT {
		t.Errorf("Updates = %d, want %d", res.Updates, wantT)
	}
	if res.NoiseDraws != wantT {
		t.Errorf("NoiseDraws = %d, want %d", res.NoiseDraws, wantT)
	}
	if n := vec.Norm(res.W); n > 10+1e-9 {
		t.Errorf("‖w‖ = %v violates the radius", n)
	}
}

func TestBST14StronglyConvexRuns(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := separable(r, 2000, 5)
	lambda := 1e-2
	res, err := BST14StronglyConvex(s, loss.NewLogistic(lambda, 0), Options{
		Budget: dp.Budget{Epsilon: 2, Delta: 1e-6},
		Passes: 2, Batch: 50, Radius: 1 / lambda, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 2*2000/50 {
		t.Errorf("Updates = %d", res.Updates)
	}
}

func TestBST14StronglyConvexRejectsConvexLoss(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	s := separable(r, 100, 3)
	_, err := BST14StronglyConvex(s, loss.NewLogistic(0, 0), Options{
		Budget: dp.Budget{Epsilon: 1, Delta: 1e-6}, Radius: 1, Rand: r,
	})
	if err == nil {
		t.Error("γ=0 loss accepted")
	}
}

func TestBST14Dispatch(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := separable(r, 500, 3)
	// Strongly convex loss routes to Algorithm 5 (finishes and projects
	// to R = 1/λ).
	if _, err := BST14(s, loss.NewLogistic(1e-2, 0), Options{
		Budget: dp.Budget{Epsilon: 1, Delta: 1e-6}, Radius: 100, Rand: r,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := BST14(s, loss.NewLogistic(0, 0), Options{
		Budget: dp.Budget{Epsilon: 1, Delta: 1e-6}, Radius: 1, Rand: r,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBST14NoiseDerivation(t *testing.T) {
	// The derived σ must shrink as ε grows and grow with T (smaller
	// per-step budget).
	_, s1 := bst14Noise(0.1, 1e-6, 1, 10000, 1)
	_, s2 := bst14Noise(1.0, 1e-6, 1, 10000, 1)
	if s2 >= s1 {
		t.Errorf("σ(ε=1) = %v should be < σ(ε=0.1) = %v", s2, s1)
	}
	T1, _ := bst14Noise(1, 1e-6, 1, 10000, 1)
	T2, _ := bst14Noise(1, 1e-6, 10, 10000, 1)
	if T1 != 10000 || T2 != 100000 {
		t.Errorf("T = %d, %d; want 10000, 100000", T1, T2)
	}
}

func TestErrorPaths(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	s := separable(r, 10, 2)
	empty := &sgd.SliceSamples{}
	f := loss.NewLogistic(0, 0)
	if _, err := Noiseless(empty, f, Options{Rand: r}); err == nil {
		t.Error("Noiseless accepted empty data")
	}
	if _, err := Noiseless(s, f, Options{}); err == nil {
		t.Error("Noiseless accepted nil Rand")
	}
	if _, err := SCS13(empty, f, Options{Budget: dp.Budget{Epsilon: 1}, Rand: r}); err == nil {
		t.Error("SCS13 accepted empty data")
	}
	if _, err := SCS13(s, f, Options{Budget: dp.Budget{Epsilon: 0}, Rand: r}); err == nil {
		t.Error("SCS13 accepted ε=0")
	}
	if _, err := SCS13(s, f, Options{Budget: dp.Budget{Epsilon: 1}}); err == nil {
		t.Error("SCS13 accepted nil Rand")
	}
	if _, err := BST14Convex(empty, f, Options{
		Budget: dp.Budget{Epsilon: 1, Delta: 1e-6}, Radius: 1, Rand: r,
	}); err == nil {
		t.Error("BST14 accepted empty data")
	}
	if _, err := BST14Convex(s, f, Options{
		Budget: dp.Budget{Epsilon: 1, Delta: 1e-6}, Radius: 1,
	}); err == nil {
		t.Error("BST14 accepted nil Rand")
	}
}

// The headline comparison of the paper, in miniature: at moderate ε on
// a well-separated problem, output perturbation (tested in core) should
// beat SCS13 because SCS13 pays noise every iteration. Here we only
// lock in that SCS13's accuracy degrades as ε shrinks — the shape of
// every accuracy figure.
func TestSCS13DegradesWithSmallEpsilon(t *testing.T) {
	avg := func(eps float64) float64 {
		var sum float64
		for seed := int64(0); seed < 6; seed++ {
			r := rand.New(rand.NewSource(100 + seed))
			s := separable(r, 1000, 10)
			res, err := SCS13(s, loss.NewLogistic(0, 0), Options{
				Budget: dp.Budget{Epsilon: eps}, Passes: 1, Batch: 10, Rand: r,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += accuracy(s, res.W)
		}
		return sum / 6
	}
	hi, lo := avg(4), avg(0.01)
	if hi <= lo {
		t.Errorf("accuracy at ε=4 (%v) should exceed accuracy at ε=0.01 (%v)", hi, lo)
	}
}
