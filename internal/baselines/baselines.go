// Package baselines implements the comparison algorithms of the
// paper's evaluation: noiseless PSGD, SCS13 (Song, Chaudhuri and
// Sarwate 2013 — per-iteration noise), and the paper's extended BST14
// (Bassily, Smith and Thakurta 2014) variants for a constant number of
// passes, reproduced verbatim from Algorithms 4 and 5.
//
// SCS13 and BST14 are "white box": they must inject noise into every
// mini-batch gradient update. SCS13 is expressed through the PSGD
// GradNoise hook — the code-level analogue of the deep changes to
// Bismarck's transition function that Figure 1(C) illustrates. BST14
// cannot reuse the PSGD engine at all because it samples examples
// uniformly with replacement rather than by permutation, so it carries
// its own update loop.
//
// All permutation-based runs here execute through internal/engine:
// Noiseless honors Options.Strategy/Workers (so it remains the
// like-for-like baseline for sharded and streaming private runs),
// while the white-box algorithms are pinned to the Sequential strategy
// — their per-batch noise has no sharded or streaming sensitivity
// analysis.
package baselines

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/account"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/rng"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Options configures a baseline run.
type Options struct {
	// Budget is the privacy guarantee. Noiseless ignores it. BST14
	// requires Delta > 0 (it has no pure ε-DP form — §4.1).
	Budget dp.Budget
	// Passes is k (default 1).
	Passes int
	// Batch is the mini-batch size b (default 1).
	Batch int
	// Radius is the projection radius R. BST14 requires it (its step
	// size is 2R/(G√t)); for the others non-positive means
	// unconstrained.
	Radius float64
	// Strategy selects the execution-engine strategy for Noiseless
	// (default Sequential). The white-box algorithms reject anything
	// but Sequential: their per-batch noise has no sharded or streaming
	// analysis.
	Strategy engine.Strategy
	// Workers is the shard count for Noiseless under the Sharded
	// strategy (default 1).
	Workers int
	// KernelWorkers is the intra-batch parallelism degree of the SGD
	// kernel for Noiseless (sgd.Config.KernelWorkers; 0 or 1 =
	// sequential). Bit-identical to sequential for every value, so the
	// baseline stays like-for-like with private runs at any setting.
	KernelWorkers int
	// Rand is the randomness source (permutations, sampling, noise).
	Rand *rand.Rand
	// Ctx, when non-nil, makes the run cancellable: every baseline
	// checks it once per mini-batch update (the engine-backed ones
	// through sgd.Config.Ctx, BST14 inside its own loop) and returns
	// ctx.Err() on cancellation.
	Ctx context.Context
	// Accountant, when non-nil, is the privacy-budget accountant the
	// private baselines (SCS13, BST14) reserve Budget from before any
	// training work, failing closed on overdraw. Noiseless spends no
	// privacy and never draws from it.
	Accountant *account.Accountant
}

// reserve debits the run's budget from its accountant under label, when
// one is attached.
func (o *Options) reserve(label string) error {
	if o.Accountant == nil {
		return nil
	}
	return o.Accountant.Reserve(label, o.Budget)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Passes == 0 {
		out.Passes = 1
	}
	if out.Batch == 0 {
		out.Batch = 1
	}
	return out
}

// Result reports a baseline training run.
type Result struct {
	// W is the trained (for SCS13/BST14: differentially private) model.
	W []float64
	// Updates is the number of gradient updates performed.
	Updates int
	// NoiseDraws counts d-dimensional noise vectors sampled during the
	// run — the per-batch sampling cost responsible for the runtime
	// overhead the paper measures in Figure 5.
	NoiseDraws int
}

// Noiseless runs plain PSGD with the noiseless step sizes of Table 4:
// constant 1/√m for convex losses, 1/(γt) for strongly convex ones. It
// honors Options.Strategy/Workers, making it the like-for-like speed
// and accuracy baseline for the engine's sharded and streaming private
// runs.
func Noiseless(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	o := opt.withDefaults()
	if o.Rand == nil {
		return nil, errors.New("baselines: Options.Rand is required")
	}
	m := s.Len()
	if m == 0 {
		return nil, errors.New("baselines: empty training set")
	}
	if o.Workers > 1 && o.Strategy != engine.Sharded {
		return nil, fmt.Errorf("baselines: Workers=%d requires the Sharded strategy, got %v", o.Workers, o.Strategy)
	}
	p := f.Params()
	n := m // schedule size: the smallest shard for sharded runs
	if o.Strategy == engine.Sharded && o.Workers > 1 {
		var err error
		if n, err = engine.ShardSize(m, o.Workers); err != nil {
			return nil, err
		}
	}
	var step sgd.Schedule
	if p.StronglyConvex() {
		step = sgd.InvT(p.Gamma)
	} else {
		step = sgd.Constant(1 / math.Sqrt(float64(n)))
	}
	res, err := engine.Run(s, engine.Config{
		Strategy: o.Strategy,
		Workers:  o.Workers,
		SGD: sgd.Config{
			Loss: f, Step: step, Passes: o.Passes, Batch: o.Batch,
			Radius: o.Radius, KernelWorkers: o.KernelWorkers, Rand: o.Rand, Ctx: o.Ctx,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{W: res.W, Updates: res.Updates}, nil
}

// SCS13 runs the per-iteration-noise private SGD of Song, Chaudhuri and
// Sarwate (GlobalSIP 2013), extended to k passes as in §4.1 of the
// paper. Each averaged mini-batch gradient (per-batch L2-sensitivity
// 2L/b) is released with noise calibrated to a per-pass budget of
// (ε/k, δ/k): within one pass the mini-batches partition the data, so
// parallel composition charges each pass once, and simple composition
// sums the k passes. The step size is 1/√t (Table 4).
func SCS13(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	o := opt.withDefaults()
	if o.Strategy != engine.Sequential || o.Workers > 1 {
		return nil, errors.New("baselines: SCS13 injects per-batch noise and is sequential-only; Strategy/Workers do not apply")
	}
	if err := o.Budget.Validate(); err != nil {
		return nil, err
	}
	if o.Rand == nil {
		return nil, errors.New("baselines: Options.Rand is required")
	}
	m := s.Len()
	if m == 0 {
		return nil, errors.New("baselines: empty training set")
	}
	if err := o.reserve("scs13"); err != nil {
		return nil, err
	}
	p := f.Params()
	perPass := o.Budget.Split(o.Passes)
	sens := 2 * p.L / float64(o.Batch)

	draws := 0
	noise := make([]float64, s.Dim())
	hook := func(t int, grad []float64) {
		if perPass.Pure() {
			rng.GammaSphere(o.Rand, noise, sens, perPass.Epsilon)
		} else {
			sigma := rng.GaussianSigma(sens, perPass.Epsilon, perPass.Delta)
			rng.GaussianVec(o.Rand, noise, sigma)
		}
		draws++
		vec.Axpy(grad, 1, noise)
	}

	res, err := engine.Run(s, engine.Config{
		Strategy: engine.Sequential, // white-box noise is sequential-only
		SGD: sgd.Config{
			Loss: f, Step: sgd.InvSqrtT(1), Passes: o.Passes, Batch: o.Batch,
			Radius: o.Radius, Rand: o.Rand, GradNoise: hook, Ctx: o.Ctx,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{W: res.W, Updates: res.Updates, NoiseDraws: draws}, nil
}

// BST14NoiseParams exposes the per-iteration noise derivation of
// Algorithms 4–5 (lines 2–7) so other integrations — notably the
// Bismarck UDA in internal/bismarck — can calibrate the same noise.
func BST14NoiseParams(eps, delta float64, k, m, b int) (T int, sigma float64) {
	return bst14Noise(eps, delta, k, m, b)
}

// bst14Noise derives the per-iteration noise level of Algorithms 4–5,
// lines 2–7: T = k·m/b iterations, δ₁ = δ/T, ε₁ from the advanced
// composition solver, ε₂ = min(1, m·ε₁/2) (the subsampling
// amplification step of BST14), σ² = 2 ln(1.25/δ₁)/ε₂².
func bst14Noise(eps, delta float64, k, m, b int) (T int, sigma float64) {
	T = k * m / b
	if T < 1 {
		T = 1
	}
	delta1 := delta / float64(T)
	eps1 := dp.SolveEps1(eps, T, delta1)
	eps2 := math.Min(1, float64(m)*eps1/2)
	sigma = math.Sqrt(2*math.Log(1.25/delta1)) / eps2
	return T, sigma
}

// BST14Convex is Algorithm 4 ("Convex BST14 with Constant Epochs"): T
// uniformly-with-replacement sampled mini-batches, per-iteration
// Gaussian noise N(0, σ²I_d) added to the summed batch gradient, and
// step size η_t = 2R/(G√t) with G = √(dσ² + b²L²). Requires δ > 0 and
// a positive Radius (W must be bounded for the step size to exist).
func BST14Convex(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	return bst14(s, f, opt, false)
}

// BST14StronglyConvex is Algorithm 5: identical noise derivation, step
// size η_t = 1/(γt). Requires a strongly convex loss, δ > 0 and a
// positive Radius.
func BST14StronglyConvex(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	return bst14(s, f, opt, true)
}

// BST14 dispatches on the loss's strong convexity, mirroring core.Train.
func BST14(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	return bst14(s, f, opt, f.Params().StronglyConvex())
}

func bst14(s sgd.Samples, f loss.Function, opt Options, stronglyConvex bool) (*Result, error) {
	o := opt.withDefaults()
	if o.Strategy != engine.Sequential || o.Workers > 1 {
		return nil, errors.New("baselines: BST14 injects per-iteration noise and is sequential-only; Strategy/Workers do not apply")
	}
	if err := o.Budget.Validate(); err != nil {
		return nil, err
	}
	if o.Budget.Pure() {
		return nil, errors.New("baselines: BST14 supports only (ε,δ)-DP with δ > 0 (advanced composition)")
	}
	if o.Rand == nil {
		return nil, errors.New("baselines: Options.Rand is required")
	}
	if o.Radius <= 0 {
		return nil, errors.New("baselines: BST14 requires a positive Radius (bounded hypothesis space)")
	}
	m := s.Len()
	if m == 0 {
		return nil, errors.New("baselines: empty training set")
	}
	p := f.Params()
	if stronglyConvex && !p.StronglyConvex() {
		return nil, fmt.Errorf("baselines: loss %q is not strongly convex", f.Name())
	}
	d := s.Dim()
	b := o.Batch
	if b > m {
		b = m
	}
	if err := o.reserve("bst14"); err != nil {
		return nil, err
	}
	T, sigma := bst14Noise(o.Budget.Epsilon, o.Budget.Delta, o.Passes, m, b)
	// G bounds the norm of the noisy summed batch gradient (Alg 4,
	// line 12): √(dσ² + b²L²).
	G := math.Sqrt(float64(d)*sigma*sigma + float64(b*b)*p.L*p.L)

	w := make([]float64, d)
	grad := make([]float64, d)
	gbuf := make([]float64, d)
	z := make([]float64, d)
	draws := 0
	for t := 1; t <= T; t++ {
		if o.Ctx != nil {
			if err := o.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		vec.Zero(grad)
		for i := 0; i < b; i++ {
			// Line 10: i_t ~ [m] uniformly (with replacement).
			x, y := s.At(o.Rand.Intn(m))
			f.Grad(gbuf, w, x, y)
			vec.Axpy(grad, 1, gbuf)
		}
		// Line 11: z ~ N(0, σ²·ι·I_d), ι = 1 for logistic regression.
		rng.GaussianVec(o.Rand, z, sigma)
		draws++
		vec.Axpy(grad, 1, z)
		var eta float64
		if stronglyConvex {
			eta = 1 / (p.Gamma * float64(t)) // Alg 5, line 12
		} else {
			eta = 2 * o.Radius / (G * math.Sqrt(float64(t))) // Alg 4, line 12
		}
		vec.Axpy(w, -eta, grad)
		vec.ProjectBall(w, o.Radius)
	}
	return &Result{W: w, Updates: T, NoiseDraws: draws}, nil
}
