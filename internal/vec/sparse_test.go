package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSparseValidation(t *testing.T) {
	if _, err := NewSparse([]int{0, 2, 5}, []float64{1, 2, 3}); err != nil {
		t.Errorf("valid sparse rejected: %v", err)
	}
	cases := []struct {
		name string
		idx  []int
		val  []float64
	}{
		{"length mismatch", []int{0}, []float64{1, 2}},
		{"negative index", []int{-1}, []float64{1}},
		{"not increasing", []int{2, 2}, []float64{1, 1}},
		{"decreasing", []int{3, 1}, []float64{1, 1}},
	}
	for _, c := range cases {
		if _, err := NewSparse(c.idx, c.val); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDenseToSparseRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(30)
		x := make([]float64, d)
		for i := range x {
			if r.Float64() < 0.3 {
				x[i] = r.NormFloat64()
			}
		}
		s := DenseToSparse(x)
		back := make([]float64, d)
		s.Scatter(back)
		return Equal(x, back, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSparseDotMatchesDense(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(30)
		x := make([]float64, d)
		w := make([]float64, d)
		for i := range x {
			if r.Float64() < 0.4 {
				x[i] = r.NormFloat64()
			}
			w[i] = r.NormFloat64()
		}
		s := DenseToSparse(x)
		return math.Abs(s.Dot(w)-Dot(x, w)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSparseDotSparse(t *testing.T) {
	a := DenseToSparse([]float64{1, 0, 2, 0, 3})
	b := DenseToSparse([]float64{0, 5, 4, 0, 1})
	// overlap at 2 (2*4) and 4 (3*1) = 11.
	if got := SparseDot(a, b); math.Abs(got-11) > 1e-12 {
		t.Errorf("SparseDot = %v, want 11", got)
	}
	empty := &Sparse{}
	if SparseDot(a, empty) != 0 {
		t.Error("dot with empty should be 0")
	}
}

func TestSparseNormScaleNNZ(t *testing.T) {
	s := DenseToSparse([]float64{3, 0, 4})
	if s.NNZ() != 2 {
		t.Errorf("NNZ = %d", s.NNZ())
	}
	if math.Abs(s.Norm()-5) > 1e-12 {
		t.Errorf("Norm = %v", s.Norm())
	}
	s.Scale(2)
	if math.Abs(s.Norm()-10) > 1e-12 {
		t.Errorf("scaled Norm = %v", s.Norm())
	}
	if s.MaxIndex() != 2 {
		t.Errorf("MaxIndex = %d", s.MaxIndex())
	}
	if (&Sparse{}).MaxIndex() != -1 {
		t.Error("empty MaxIndex should be -1")
	}
}

func TestSparseAxpyInto(t *testing.T) {
	dst := []float64{1, 1, 1}
	s := DenseToSparse([]float64{0, 2, 0})
	s.AxpyInto(dst, 3)
	if !Equal(dst, []float64{1, 7, 1}, 1e-12) {
		t.Errorf("AxpyInto = %v", dst)
	}
}

func TestSparseAxpyIntoDelta(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(30)
		dst := make([]float64, d)
		x := make([]float64, d)
		for i := range dst {
			dst[i] = r.NormFloat64()
			if r.Float64() < 0.4 {
				x[i] = r.NormFloat64()
			}
		}
		alpha := r.NormFloat64()
		before := Norm(dst)
		s := DenseToSparse(x)
		want := make([]float64, d)
		copy(want, dst)
		Axpy(want, alpha, x)
		delta := s.AxpyIntoDelta(dst, alpha)
		after := Norm(dst)
		if !Equal(dst, want, 1e-12) {
			return false
		}
		return math.Abs((before*before+delta)-after*after) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSparseDotTruncatesBeyondDense(t *testing.T) {
	s, err := NewSparse([]int{0, 10}, []float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Dense of length 2: index 10 ignored.
	if got := s.Dot([]float64{2, 3}); got != 2 {
		t.Errorf("Dot = %v, want 2", got)
	}
}

func TestSortedCopy(t *testing.T) {
	s, err := SortedCopy([]int{5, 1, 5, 0}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicates at 5 summed: (0:4, 1:2, 5:4).
	wantIdx := []int{0, 1, 5}
	wantVal := []float64{4, 2, 4}
	if len(s.Idx) != 3 {
		t.Fatalf("Idx = %v", s.Idx)
	}
	for i := range wantIdx {
		if s.Idx[i] != wantIdx[i] || s.Val[i] != wantVal[i] {
			t.Fatalf("SortedCopy = %v/%v, want %v/%v", s.Idx, s.Val, wantIdx, wantVal)
		}
	}
	if _, err := SortedCopy([]int{0}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SortedCopy([]int{-2}, []float64{1}); err == nil {
		t.Error("negative index accepted")
	}
}
