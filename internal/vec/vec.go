// Package vec provides the dense vector and matrix kernels used across
// the repository: inner products, norms, scaled additions, projections
// onto L2 balls and simple dense matrices for random projection.
//
// All operations are written against plain []float64 so that callers can
// slice into row-major storage (the Bismarck page store hands out row
// views without copying). Functions that write results take the
// destination first, following the stdlib copy convention, and panic on
// length mismatches: a mismatch is always a programming error, never a
// data error.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the standard inner product <a, b>.
// It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float64) float64 {
	// Two-pass scaling is unnecessary here: all quantities in this
	// codebase are normalized to the unit ball or perturbed with noise
	// of moderate magnitude, so naive accumulation does not overflow.
	var s float64
	for _, ai := range a {
		s += ai * ai
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of a.
func Norm1(a []float64) float64 {
	var s float64
	for _, ai := range a {
		s += math.Abs(ai)
	}
	return s
}

// NormInf returns the L-infinity norm of a.
func NormInf(a []float64) float64 {
	var s float64
	for _, ai := range a {
		if v := math.Abs(ai); v > s {
			s = v
		}
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
// It panics if the lengths differ.
func Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dist length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, ai := range a {
		d := ai - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Axpy computes dst += alpha * x elementwise.
// It panics if the lengths differ.
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d != %d", len(dst), len(x)))
	}
	for i, xi := range x {
		dst[i] += alpha * xi
	}
}

// Scale multiplies every element of a by alpha in place.
func Scale(a []float64, alpha float64) {
	for i := range a {
		a[i] *= alpha
	}
}

// Add computes dst = a + b. dst may alias a or b.
func Add(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b. dst may alias a or b.
func Sub(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Copy returns a newly allocated copy of a.
func Copy(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Zero sets every element of a to 0.
func Zero(a []float64) {
	for i := range a {
		a[i] = 0
	}
}

// Fill sets every element of a to v.
func Fill(a []float64, v float64) {
	for i := range a {
		a[i] = v
	}
}

// ProjectBall projects w in place onto the L2 ball of radius r centered
// at the origin: if ||w|| > r the vector is rescaled to norm exactly r,
// otherwise it is left untouched. This is the projection operator
// Π_C of the paper's constrained update rule (7) for C = {w : ||w|| ≤ r}.
// A non-positive r means "unconstrained" and is a no-op, matching the
// paper's unconstrained convex experiments.
func ProjectBall(w []float64, r float64) {
	if r <= 0 {
		return
	}
	n := Norm(w)
	if n > r {
		Scale(w, r/n)
	}
}

// Normalize rescales a in place to unit L2 norm. Zero vectors are left
// unchanged. This is the feature preprocessing the paper assumes
// (each ||x|| ≤ 1, §2).
func Normalize(a []float64) {
	n := Norm(a)
	if n > 0 {
		Scale(a, 1/n)
	}
}

// Mean computes dst = the elementwise mean of the given vectors.
// It panics if vs is empty or lengths differ.
func Mean(dst []float64, vs ...[]float64) {
	if len(vs) == 0 {
		panic("vec: Mean of no vectors")
	}
	Zero(dst)
	for _, v := range vs {
		Axpy(dst, 1, v)
	}
	Scale(dst, 1/float64(len(vs)))
}

// Matrix is a dense row-major matrix. It is the minimal representation
// needed for Gaussian random projection (paper §2, "Random Projection").
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("vec: NewMatrix invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec computes dst = M * x where x has length Cols and dst length
// Rows. dst must not alias x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("vec: MulVec shape mismatch m=%dx%d len(x)=%d len(dst)=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// Equal reports whether a and b have the same length and all elements
// within tol of each other.
func Equal(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
